// Quickstart: build a badly imbalanced overdecomposed workload, run
// TemperedLB, and print the imbalance before and after.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"temperedlb"
)

func main() {
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	// 1000 tasks with random loads, all crammed onto 4 of 64 ranks —
	// the kind of distribution a freshly partitioned simulation with a
	// localized hot spot produces.
	rng := rand.New(rand.NewSource(*seed))
	a := temperedlb.NewAssignment(64)
	for i := 0; i < 1000; i++ {
		a.Add(0.2+rng.Float64(), temperedlb.Rank(rng.Intn(4)))
	}
	fmt.Printf("initial imbalance I = %.3f\n", a.Imbalance())

	// TemperedLB with the paper's defaults: relaxed criterion, modified
	// CMF, Fewest Migrations ordering, 10 trials x 8 iterations.
	eng, err := temperedlb.NewEngine(temperedlb.Tempered())
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(a)
	if err != nil {
		log.Fatal(err)
	}
	res.Apply(a)

	fmt.Printf("final   imbalance I = %.3f (best found at trial %d, iteration %d)\n",
		a.Imbalance(), res.BestTrial, res.BestIteration)
	fmt.Printf("moved %d of %d tasks, %.1f load units of migration volume\n",
		len(res.Moves), a.NumTasks(), res.MovedLoad(a))

	// The per-iteration history is the paper's table format: transfers,
	// rejections, and the imbalance trajectory.
	fmt.Println("\ntrial 1 trajectory:")
	for _, it := range res.History {
		if it.Trial != 1 {
			break
		}
		fmt.Printf("  iter %d: %4d transfers, %4d rejected (%.1f%%), I = %.3f\n",
			it.Iteration, it.Transfers, it.Rejected, it.RejectionRate(), it.Imbalance)
	}
}
