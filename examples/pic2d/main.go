// pic2d is a miniature particle-in-cell application running for real on
// the AMT runtime: the domain is overdecomposed into a Collection of
// color objects that own their particles, particle exchange between
// colors travels as object-directed active messages, per-phase work is
// instrumented and smoothed by a persistence-based LoadModel, and the
// fully distributed TemperedLB periodically migrates colors between
// ranks — the EMPIRE pattern of the paper's §VI at laptop scale.
//
//	go run ./examples/pic2d
//
// Pass -trace (and/or -metrics) to watch the protocol work: the whole
// run — phases, exchange epochs, gossip, migrations, termination tokens
// — is exported as a Chrome trace with one track per rank, loadable in
// ui.perfetto.dev.
//
//	go run ./examples/pic2d -trace pic2d.trace.json -metrics pic2d.prom
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"

	"temperedlb"
)

// Domain: an 8x4 grid of colors over the unit square, homed 4 colors per
// rank on 8 ranks. Colors are the migratable tasks.
const (
	colorsX, colorsY = 8, 4
	numRanks         = 8
	steps            = 60
	lbEvery          = 20
	particlesInit    = 4000
	dt               = 1.0 / steps
	colorCollection  = 1
)

// colorAt maps a position to its color index — static knowledge every
// rank shares, like a mesh coloring.
func colorAt(x, y float64) int {
	cx := int(x * colorsX)
	cy := int(y * colorsY)
	if cx >= colorsX {
		cx = colorsX - 1
	}
	if cy >= colorsY {
		cy = colorsY - 1
	}
	return cy*colorsX + cx
}

// color is the migratable element state: the particles it owns.
type color struct {
	Index     int
	Particles []particle
}

type particle struct{ X, Y, VX, VY float64 }

// Wire codec for the particle exchange payload, in the application band
// (≥64), so the example runs unchanged on a socket transport. Field
// order is the wire format.
func init() {
	temperedlb.RegisterWirePayload(64,
		func(e *temperedlb.WireEncoder, v []particle) {
			e.U32(uint32(len(v)))
			for _, p := range v {
				e.F64(p.X)
				e.F64(p.Y)
				e.F64(p.VX)
				e.F64(p.VY)
			}
		},
		func(d *temperedlb.WireDecoder) []particle {
			n := int(d.U32())
			if n*32 > d.Remaining() {
				d.Failf("particle batch claims %d particles with %d bytes left", n, d.Remaining())
				return nil
			}
			out := make([]particle, n)
			for i := range out {
				out[i].X = d.F64()
				out[i].Y = d.F64()
				out[i].VX = d.F64()
				out[i].VY = d.F64()
			}
			return out
		})
}

const (
	hExchange temperedlb.HandlerID = iota // particles entering a color
	lbBase                                // +1, +2 claimed by the balancer
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the run (open in Perfetto)")
	metricsOut := flag.String("metrics", "", "write runtime metrics in Prometheus text format")
	seedFlag := flag.Int64("seed", 99, "base seed for the per-rank particle streams")
	flag.Parse()

	var opts []temperedlb.RuntimeOption
	var rec *temperedlb.TraceRecorder
	if *traceOut != "" {
		rec = temperedlb.NewTraceRecorder()
		opts = append(opts, temperedlb.WithTracer(rec))
	}
	if *metricsOut != "" {
		opts = append(opts, temperedlb.WithMetrics())
	}
	rt := temperedlb.NewRuntime(numRanks, opts...)
	lbh := temperedlb.RegisterLBHandlers(rt, lbBase)
	rt.NameHandler(hExchange, "pic2d.exchange")

	rt.RegisterObject(hExchange, func(rc *temperedlb.RankContext, obj temperedlb.ObjectID, state any, from temperedlb.Rank, data any) {
		c := state.(*color)
		c.Particles = append(c.Particles, data.([]particle)...)
	})

	var report sync.Mutex
	lbRuns := 0

	rt.Run(func(rc *temperedlb.RankContext) {
		rng := rand.New(rand.NewSource(*seedFlag + int64(rc.Rank())))
		// The collection gives every rank the same index→object mapping
		// with no communication.
		colors := rc.CreateCollection(colorCollection, colorsX*colorsY,
			func(i int) any { return &color{Index: i} })
		model := temperedlb.NewLoadModel(0.7) // smoothed persistence
		rc.Barrier()

		if rc.Rank() == 0 {
			// All particles start in the lower-left hot spot, inside
			// rank 0's colors.
			c0, _ := rc.ObjectState(colors.Element(0))
			for i := 0; i < particlesInit; i++ {
				c0.(*color).Particles = append(c0.(*color).Particles, particle{
					X: rng.Float64() * 0.1, Y: rng.Float64() * 0.2,
					VX: 0.3 + rng.NormFloat64()*0.2, VY: 0.2 + rng.NormFloat64()*0.2,
				})
			}
		}
		rc.Barrier()

		for step := 1; step <= steps; step++ {
			// Phase: push the particles of every local color; work is
			// proportional to the particles touched (virtual time).
			rc.PhaseBegin()
			type outgoing struct {
				idx  int
				part []particle
			}
			var sends []outgoing
			for _, idx := range colors.LocalIndices(rc) {
				id := colors.Element(idx)
				st, _ := rc.ObjectState(id)
				c := st.(*color)
				kept := c.Particles[:0]
				moved := map[int][]particle{}
				for _, p := range c.Particles {
					p.X += p.VX * dt
					p.Y += p.VY * dt
					// Reflecting walls.
					if p.X < 0 {
						p.X, p.VX = -p.X, -p.VX
					}
					if p.X > 1 {
						p.X, p.VX = 2-p.X, -p.VX
					}
					if p.Y < 0 {
						p.Y, p.VY = -p.Y, -p.VY
					}
					if p.Y > 1 {
						p.Y, p.VY = 2-p.Y, -p.VY
					}
					if tgt := colorAt(p.X, p.Y); tgt != c.Index {
						moved[tgt] = append(moved[tgt], p)
					} else {
						kept = append(kept, p)
					}
				}
				c.Particles = kept
				rc.RecordWork(id, float64(len(kept))+1)
				// Drain moved in sorted target order: sends is later
				// sorted by target with a non-stable sort, so entries
				// sharing a target would otherwise keep map order.
				tgts := make([]int, 0, len(moved))
				for tgt := range moved {
					tgts = append(tgts, tgt)
				}
				sort.Ints(tgts)
				for _, tgt := range tgts {
					sends = append(sends, outgoing{tgt, moved[tgt]})
				}
			}
			stats := rc.PhaseEnd()
			model.Observe(stats)

			// Exchange epoch: deliver migrating particles; termination
			// detection guarantees every color saw its arrivals before
			// the next step.
			sort.Slice(sends, func(i, j int) bool { return sends[i].idx < sends[j].idx })
			rc.Epoch(func() {
				for _, s := range sends {
					colors.Send(rc, s.idx, hExchange, s.part)
				}
			})

			if step%lbEvery == 0 {
				cfg := temperedlb.Tempered()
				cfg.Trials, cfg.Iterations, cfg.Rounds, cfg.Fanout = 3, 4, 4, 3
				cfg.Seed = int64(step)
				// Predict next-phase loads for the colors still here.
				loads := map[temperedlb.ObjectID]float64{}
				for _, idx := range colors.LocalIndices(rc) {
					id := colors.Element(idx)
					loads[id] = model.Predict(id)
				}
				res, err := temperedlb.RunDistributedLB(rc, lbh, cfg, loads)
				if err != nil {
					log.Fatal(err)
				}
				// Predictions for migrated-away colors belong to their
				// new hosts now.
				for id := range loads {
					if !rc.HasObject(id) {
						model.Forget(id)
					}
				}
				if rc.Rank() == 0 {
					report.Lock()
					lbRuns++
					report.Unlock()
					fmt.Printf("step %3d: LB brought I from %.3f to %.3f (%d colors migrated off rank 0)\n",
						step, res.InitialImbalance, res.FinalImbalance, res.Migrations)
				}
			}
		}
		rc.Barrier()

		report.Lock()
		fmt.Printf("rank %d ends with %d colors\n", rc.Rank(), len(colors.LocalIndices(rc)))
		report.Unlock()
	})

	if lbRuns == 0 {
		log.Fatal("no LB invocations ran")
	}
	fmt.Println("done: load balancing tracked the drifting particle cloud")

	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := temperedlb.WriteChromeTrace(f, rec.Events()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d trace events to %s — open it at ui.perfetto.dev\n", len(rec.Events()), *traceOut)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := temperedlb.WritePrometheus(f, rt.Metrics()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}
