// amr models the first motivating domain of the paper's introduction:
// adaptive mesh refinement. A shock front sweeps across a patch-based
// mesh; patches near the front refine (their cost multiplies) and
// coarsen again once it passes. The demo advances the simulated phases
// twice — once keeping the naive static mapping, once rebalancing with
// TemperedLB on the interval — and compares the accumulated virtual
// time, illustrating the time-varying imbalance the paper targets.
//
//	go run ./examples/amr
package main

import (
	"fmt"
	"log"
	"math"

	"temperedlb"
)

const (
	patchesX, patchesY = 32, 16 // 512 patches...
	numRanks           = 16     // ...32 per rank
	phases             = 200
	lbEvery            = 10
	baseCost           = 1.0
	refineFactor       = 12.0 // refined patch costs 12x a coarse one
	frontWidth         = 0.08
)

// patchLoad returns the cost of patch (px,py) when the shock front sits
// at position f in [0,1]: patches within frontWidth of the front are
// refined.
func patchLoad(px, py int, f float64) float64 {
	x := (float64(px) + 0.5) / patchesX
	// A slightly slanted front so it crosses rank boundaries unevenly.
	y := (float64(py) + 0.5) / patchesY
	d := math.Abs(x + 0.15*y - f)
	if d < frontWidth {
		return baseCost * refineFactor
	}
	return baseCost
}

// run advances all phases and returns the total virtual time (sum over
// phases of the max per-rank load) plus the number of migrations.
func run(rebalance bool) (total float64, migrations int) {
	a := temperedlb.NewAssignment(numRanks)
	// Static block mapping: contiguous patch columns per rank.
	for py := 0; py < patchesY; py++ {
		for px := 0; px < patchesX; px++ {
			rank := temperedlb.Rank(px * numRanks / patchesX)
			a.Add(baseCost, rank)
		}
	}
	id := func(px, py int) temperedlb.TaskID { return temperedlb.TaskID(py*patchesX + px) }

	for phase := 1; phase <= phases; phase++ {
		// The front sweeps the domain 1.5 times over the run.
		f := 1.5 * float64(phase) / phases
		for py := 0; py < patchesY; py++ {
			for px := 0; px < patchesX; px++ {
				a.SetLoad(id(px, py), patchLoad(px, py, f))
			}
		}
		// Execute the phase: ranks synchronize on the slowest.
		max := 0.0
		for r := 0; r < numRanks; r++ {
			if l := a.RankLoad(temperedlb.Rank(r)); l > max {
				max = l
			}
		}
		total += max

		if rebalance && phase%lbEvery == 0 {
			cfg := temperedlb.Tempered()
			cfg.Trials, cfg.Iterations = 4, 4
			cfg.Seed = int64(phase)
			eng, err := temperedlb.NewEngine(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := eng.Run(a)
			if err != nil {
				log.Fatal(err)
			}
			res.Apply(a)
			migrations += len(res.Moves)
		}
	}
	return total, migrations
}

func main() {
	static, _ := run(false)
	balanced, migs := run(true)
	fmt.Printf("AMR shock sweep over %d phases on %d ranks (%d patches)\n",
		phases, numRanks, patchesX*patchesY)
	fmt.Printf("  static mapping:     %8.0f virtual seconds\n", static)
	fmt.Printf("  TemperedLB every %2d: %7.0f virtual seconds (%d patch migrations)\n",
		lbEvery, balanced, migs)
	fmt.Printf("  speedup:            %8.2fx\n", static/balanced)
	if static <= balanced {
		log.Fatal("load balancing should have helped on a moving refinement front")
	}
}
