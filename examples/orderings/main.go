// orderings compares the four task traversal orderings of the paper's
// §V-E on the same skewed workload: how many migrations each needs and
// what imbalance it reaches.
//
//	go run ./examples/orderings
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"temperedlb"
)

func buildWorkload(seed int64) *temperedlb.Assignment {
	rng := rand.New(rand.NewSource(seed))
	a := temperedlb.NewAssignment(48)
	// A mixture of many light tasks and a band of heavy ones, clustered
	// on 3 ranks — heavy tasks make the ordering choice matter.
	for i := 0; i < 600; i++ {
		a.Add(0.05+0.3*rng.Float64(), temperedlb.Rank(rng.Intn(3)))
	}
	for i := 0; i < 60; i++ {
		a.Add(1.5+rng.Float64(), temperedlb.Rank(rng.Intn(3)))
	}
	return a
}

func main() {
	seed := flag.Int64("seed", 11, "workload seed")
	flag.Parse()
	orderings := []temperedlb.Ordering{
		temperedlb.OrderArbitrary,
		temperedlb.OrderLoadIntensive,
		temperedlb.OrderFewestMigrations,
		temperedlb.OrderLightest,
	}
	fmt.Printf("%-20s %12s %12s %14s\n", "ordering", "final I", "migrations", "moved load")
	for _, ord := range orderings {
		a := buildWorkload(*seed)
		cfg := temperedlb.Tempered()
		cfg.Order = ord
		cfg.Trials, cfg.Iterations = 4, 6
		eng, err := temperedlb.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %12.3f %12d %14.1f\n",
			ord.String(), res.FinalImbalance, len(res.Moves), res.MovedLoad(a))
	}
	fmt.Println("\nFewest Migrations aims for the fewest moves; Lightest for the")
	fmt.Println("highest acceptance odds; Load-Intensive is the paper's straw-man.")
}
