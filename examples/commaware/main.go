// commaware demonstrates the communication-aware extension the paper's
// conclusion names as future work: balancing a workload of communicating
// task cliques with and without the affinity bias, and comparing the
// cross-rank communication volume each leaves behind.
//
//	go run ./examples/commaware
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"temperedlb"
)

// Build 40 cliques of 6 tasks each; tasks inside a clique exchange halo
// data every phase (think: neighboring mesh chunks). Everything starts
// on 3 of 32 ranks.
func buildWorkload(seed int64) (*temperedlb.Assignment, *temperedlb.CommGraph) {
	rng := rand.New(rand.NewSource(seed))
	const cliques, size = 40, 6
	a := temperedlb.NewAssignment(32)
	g := temperedlb.NewCommGraph(cliques * size)
	for c := 0; c < cliques; c++ {
		ids := make([]temperedlb.TaskID, size)
		for i := range ids {
			ids[i] = a.Add(0.3+rng.Float64(), temperedlb.Rank(rng.Intn(3)))
		}
		// Ring topology inside the clique, like ghost exchanges.
		for i := range ids {
			g.Connect(ids[i], ids[(i+1)%size], 2.0)
		}
	}
	return a, g
}

func main() {
	seed := flag.Int64("seed", 17, "workload seed")
	flag.Parse()
	fmt.Printf("%-10s %10s %14s %16s\n", "bias", "final I", "remote volume", "volume fraction")
	for _, bias := range []float64{0, 0.3, 0.6, 0.9} {
		a, g := buildWorkload(*seed)
		cfg := temperedlb.Tempered()
		cfg.Trials, cfg.Iterations = 4, 6
		cfg.CommBias = bias
		eng, err := temperedlb.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.RunWithComm(a, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.1f %10.3f %14.1f %15.1f%%\n",
			bias, res.FinalImbalance, res.RemoteVolumeAfter,
			100*res.RemoteVolumeAfter/g.TotalVolume())
	}
	fmt.Println("\nHigher bias keeps cliques together (less remote traffic) at a")
	fmt.Println("small cost in load balance — the locality/balance trade-off the")
	fmt.Println("paper's future work targets.")
}
