// customstrategy shows the Strategy extension point: a user-defined
// balancer (a naive round-robin scatter) plugged into the same harness
// as the built-in ones, compared on quality and migration volume.
//
//	go run ./examples/customstrategy
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"temperedlb"
)

// roundRobin scatters every task over the ranks in task order. Perfectly
// scalable, oblivious to loads — a useful foil for real balancers.
type roundRobin struct{}

func (roundRobin) Name() string { return "RoundRobin" }

func (roundRobin) Rebalance(a *temperedlb.Assignment) (*temperedlb.Plan, error) {
	plan := &temperedlb.Plan{InitialImbalance: a.Imbalance(), Epochs: 1}
	loads := make([]float64, a.NumRanks())
	for id := 0; id < a.NumTasks(); id++ {
		tid := temperedlb.TaskID(id)
		to := temperedlb.Rank(id % a.NumRanks())
		loads[to] += a.Load(tid)
		if a.Owner(tid) != to {
			plan.Moves = append(plan.Moves, temperedlb.Move{Task: tid, From: a.Owner(tid), To: to})
			plan.MovedLoad += a.Load(tid)
		}
	}
	plan.FinalImbalance = temperedlb.Imbalance(loads)
	return plan, nil
}

func buildWorkload(seed int64) *temperedlb.Assignment {
	rng := rand.New(rand.NewSource(seed))
	a := temperedlb.NewAssignment(32)
	for i := 0; i < 500; i++ {
		// Pareto-ish loads: a few elephants, many mice.
		load := 0.1 / (0.05 + rng.Float64())
		a.Add(load, temperedlb.Rank(rng.Intn(4)))
	}
	return a
}

func main() {
	seed := flag.Int64("seed", 3, "workload seed")
	flag.Parse()
	strategies := []temperedlb.Strategy{
		roundRobin{},
		temperedlb.NewGreedyLB(),
		temperedlb.NewHierLB(4),
		temperedlb.NewRefineLB(),
		temperedlb.NewGrapevineLB(),
		temperedlb.NewTemperedLB(),
	}
	fmt.Printf("%-14s %10s %10s %12s %14s\n", "strategy", "I before", "I after", "migrations", "moved load")
	for _, s := range strategies {
		a := buildWorkload(*seed)
		plan, err := s.Rebalance(a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.3f %10.3f %12d %14.1f\n",
			s.Name(), plan.InitialImbalance, plan.FinalImbalance,
			plan.MovedTasks(), plan.MovedLoad)
	}
	fmt.Println("\nRound-robin ignores loads entirely; note its migration volume —")
	fmt.Println("it moves nearly everything every time, where TemperedLB moves only")
	fmt.Println("what the imbalance requires.")
}
