package exper

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 mean "one per
// available CPU" (GOMAXPROCS), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run invokes job(i) for every i in [0, n), spreading calls across up to
// workers goroutines. Jobs are claimed in index order from a shared
// counter; with workers == 1 the loop runs inline on the caller's
// goroutine. Run returns once every job has finished.
func Run(n, workers int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs job(i) for every i in [0, n) under the same pool as Run and
// returns the results indexed by i — submission order, independent of
// completion order, which is what makes parallel sweeps bit-identical
// to serial ones.
func Map[T any](n, workers int, job func(i int) T) []T {
	out := make([]T, n)
	Run(n, workers, func(i int) { out[i] = job(i) })
	return out
}

// MapErr is Map for fallible jobs. All jobs run to completion; if any
// failed, the error of the lowest-indexed failure is returned alongside
// the partial results (the same error a serial loop that kept going
// would report first, so the choice is deterministic).
func MapErr[T any](n, workers int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	Run(n, workers, func(i int) { out[i], errs[i] = job(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
