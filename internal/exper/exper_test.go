package exper

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 129
		hits := make([]atomic.Int32, n)
		Run(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	Run(0, 4, func(int) { t.Fatal("job called for n=0") })
}

func TestMapResultsInSubmissionOrder(t *testing.T) {
	serial := Map(100, 1, func(i int) int { return i * i })
	for _, workers := range []int{2, 8, 0} {
		got := Map(100, workers, func(i int) int { return i * i })
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestMapErrReportsLowestIndexFailure(t *testing.T) {
	fail := func(i int) (int, error) {
		if i%3 == 2 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	}
	want := "job 2 failed"
	for _, workers := range []int{1, 4} {
		out, err := MapErr(10, workers, fail)
		if err == nil || err.Error() != want {
			t.Fatalf("workers=%d: err = %v, want %q", workers, err, want)
		}
		if out[1] != 1 || out[9] != 9 {
			t.Fatalf("workers=%d: successful results not retained: %v", workers, out)
		}
	}
}

func TestMapErrNoFailure(t *testing.T) {
	out, err := MapErr(5, 3, func(i int) (string, error) { return fmt.Sprint(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 || out[4] != "4" {
		t.Fatalf("out = %v", out)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive count must pass through")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("non-positive counts must resolve to at least one worker")
	}
}

func TestSerialModeStaysInline(t *testing.T) {
	// workers == 1 must execute in strict index order on the calling
	// goroutine — observable as deterministic sequential side effects.
	var order []int
	Run(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestMapErrAllJobsRunDespiteFailure(t *testing.T) {
	var ran atomic.Int32
	_, err := MapErr(20, 4, func(i int) (struct{}, error) {
		ran.Add(1)
		return struct{}{}, errors.New("x")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d of 20 jobs", ran.Load())
	}
}
