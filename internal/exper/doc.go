// Package exper is the parallel experiment runner: a small worker pool
// that fans independent, seeded jobs — engine configurations of a sweep,
// simulator trackers of a figure, ablation rows — across a bounded
// number of goroutines while keeping results in submission order.
//
// Every experiment in this repository owns its random streams (each
// engine run derives per-rank, per-trial seeds from its Config.Seed; see
// DESIGN.md §5), so running N configurations concurrently and collecting
// results by index is bit-identical to running them serially. That
// property is what lets the §V tables, the footnote-2 sweeps and the
// Figs. 2–4 simulator rows scale to GOMAXPROCS with no change in output;
// it is asserted by serial-vs-parallel equality tests in lbaf and sim.
//
// # Concurrency contract
//
// Run, Map and MapErr are safe to call concurrently from multiple
// goroutines; each call owns its pool. Job functions run on distinct
// goroutines and must not share mutable state unless that state is
// itself concurrency-safe (the obs.Recorder tracer and obs metrics are;
// a core.Engine is not — give each job its own). workers <= 0 uses
// GOMAXPROCS; workers == 1 degenerates to an inline serial loop on the
// calling goroutine, with no goroutines spawned at all.
package exper
