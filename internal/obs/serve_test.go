package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestServeSnapshotAndFrames(t *testing.T) {
	s := NewStream(8)
	m := NewMetrics()
	m.Counter("test_total").Add(3)
	srv := httptest.NewServer(NewServeMux(s, m))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/snapshot before frames: status %d, want 404", resp.StatusCode)
	}

	s.Publish(Snapshot{Source: "test", Ranks: 2, Loads: []float64{1, 3}})
	s.Publish(Snapshot{Source: "test", Ranks: 2, Loads: []float64{2, 2}})

	resp, err = http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var f Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if f.Seq != 1 || f.Loads[0] != 2 {
		t.Fatalf("/snapshot = %+v, want seq 1", f)
	}

	resp, err = http.Get(srv.URL + "/frames")
	if err != nil {
		t.Fatal(err)
	}
	frames, err := ReadSnapshots(resp.Body)
	resp.Body.Close()
	if err != nil || len(frames) != 2 {
		t.Fatalf("/frames = %d frames (err %v), want 2", len(frames), err)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "test_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

func TestServeStreamTailsLiveFrames(t *testing.T) {
	s := NewStream(8)
	srv := httptest.NewServer(NewServeMux(s, nil))
	defer srv.Close()

	s.Publish(Snapshot{Trial: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	lines := make(chan Snapshot)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var f Snapshot
			if json.Unmarshal(sc.Bytes(), &f) == nil {
				lines <- f
			}
		}
		close(lines)
	}()

	// Replayed frame first.
	f := <-lines
	if f.Trial != 1 {
		t.Fatalf("replay frame = %+v, want Trial 1", f)
	}
	// Then a live frame published after the client connected.
	s.Publish(Snapshot{Trial: 2})
	select {
	case f = <-lines:
		if f.Trial != 2 {
			t.Fatalf("live frame = %+v, want Trial 2", f)
		}
	case <-ctx.Done():
		t.Fatal("timed out waiting for live frame")
	}
	cancel() // disconnect; the handler must return via ctx.Done
}

func TestServeStreamSinceSkipsReplay(t *testing.T) {
	s := NewStream(8)
	for i := 0; i < 5; i++ {
		s.Publish(Snapshot{Iteration: i})
	}
	srv := httptest.NewServer(NewServeMux(s, nil))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/stream?since=3", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var got []int64
	for len(got) < 2 && sc.Scan() {
		var f Snapshot
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatal(err)
		}
		got = append(got, f.Seq)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("since=3 replayed seqs %v, want [3 4]", got)
	}
}

func TestServeNilStream404(t *testing.T) {
	srv := httptest.NewServer(NewServeMux(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/stream", "/frames", "/snapshot", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestStartServerBindsEphemeralPort(t *testing.T) {
	s := NewStream(4)
	s.Publish(Snapshot{Ranks: 1})
	srv, addr, err := StartServer("127.0.0.1:0", s, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
