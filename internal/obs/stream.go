package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot is one frame of the live observability stream: the state of a
// balancing run at one instant, small enough to publish every iteration
// and self-contained enough to render without history. Counter fields
// (messages, bytes, faults, collectives) are cumulative since the start
// of the run; consumers difference consecutive frames to obtain rates.
type Snapshot struct {
	// Seq and TimeMs are stamped by Stream.Publish: a dense frame
	// sequence number and milliseconds since the stream was created.
	Seq    int64   `json:"seq"`
	TimeMs float64 `json:"time_ms"`

	// Source names the producer ("distributed", "engine", or a
	// simulation configuration name); Phase locates the frame inside the
	// producer's protocol: "init", "iter", "commit" for balancer runs,
	// "step" for per-timestep simulation frames.
	Source string `json:"source,omitempty"`
	Phase  string `json:"phase,omitempty"`

	// Step is the simulation timestep (Source = tracker frames only);
	// Trial and Iteration locate refinement frames.
	Step      int `json:"step,omitempty"`
	Trial     int `json:"trial,omitempty"`
	Iteration int `json:"iter,omitempty"`

	// Ranks is the rank count; Loads the per-rank load vector (may be
	// elided by producers at very large scale).
	Ranks int       `json:"ranks"`
	Loads []float64 `json:"loads,omitempty"`

	// Imbalance statistics over Loads: O = MaxLoad, the mean, the
	// population standard deviation σ, and I = max/avg − 1.
	MaxLoad   float64 `json:"max_load"`
	MinLoad   float64 `json:"min_load"`
	AvgLoad   float64 `json:"avg_load"`
	StdDev    float64 `json:"stddev"`
	Imbalance float64 `json:"imbalance"`

	// Protocol traffic, cumulative: gossip messages and payload entries,
	// transfer proposals, and object migrations.
	GossipMsgs    int64 `json:"gossip_msgs,omitempty"`
	GossipEntries int64 `json:"gossip_entries,omitempty"`
	TransferMsgs  int64 `json:"transfer_msgs,omitempty"`
	Migrations    int64 `json:"migrations,omitempty"`

	// Transport totals, cumulative: every message of every kind, and
	// payload bytes when byte accounting is on.
	Msgs  int64 `json:"msgs,omitempty"`
	Bytes int64 `json:"bytes,omitempty"`

	// Fault injections and recovery, cumulative.
	Dropped    int64 `json:"dropped,omitempty"`
	Duplicated int64 `json:"duplicated,omitempty"`
	Retries    int64 `json:"retries,omitempty"`
	DupDrops   int64 `json:"dup_drops,omitempty"`

	// Collective rounds and epochs run by the publishing rank,
	// cumulative.
	Collectives int64 `json:"collectives,omitempty"`
	Epochs      int64 `json:"epochs,omitempty"`

	// Socket-transport totals, cumulative; zero on the in-memory
	// transport (a single-process run moves no wire bytes).
	WireBytesOut int64 `json:"wire_bytes_out,omitempty"`
	WireBytesIn  int64 `json:"wire_bytes_in,omitempty"`
	WirePeers    int64 `json:"wire_peers,omitempty"`

	// IterMs is the duration of the step this frame closes (slowest rank
	// for distributed frames), in milliseconds.
	IterMs float64 `json:"iter_ms,omitempty"`
}

// FillLoadStats computes the imbalance statistics from Loads. Ranks is
// set from len(Loads) when zero. A frame with no load vector is left
// untouched.
func (s *Snapshot) FillLoadStats() {
	if len(s.Loads) == 0 {
		return
	}
	if s.Ranks == 0 {
		s.Ranks = len(s.Loads)
	}
	max, min, sum := s.Loads[0], s.Loads[0], 0.0
	for _, l := range s.Loads {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
		sum += l
	}
	avg := sum / float64(len(s.Loads))
	varSum := 0.0
	for _, l := range s.Loads {
		d := l - avg
		varSum += d * d
	}
	s.MaxLoad, s.MinLoad, s.AvgLoad = max, min, avg
	s.StdDev = math.Sqrt(varSum / float64(len(s.Loads)))
	if avg > 0 {
		s.Imbalance = max/avg - 1
	} else {
		s.Imbalance = 0
	}
}

// Stream is a lock-light publisher of Snapshot frames: a fixed-size ring
// of the most recent frames plus a set of subscribers with drop-oldest
// backpressure. Producers call Publish from any goroutine; a slow
// subscriber loses its oldest undelivered frames, never stalls the
// publisher, and the ring lets late joiners replay recent history.
//
// The disabled path is the nil *Stream: every producer guards its
// publishing block with one nil check, so runs without -serve keep their
// determinism and benchmark profiles untouched.
type Stream struct {
	start time.Time

	mu   sync.Mutex
	ring []Snapshot // capacity-sized; frame seq s lives at s % cap
	next int64      // seq to assign to the next published frame
	subs []*Subscriber
}

// DefaultStreamCapacity is the ring size used by NewStream when the
// caller passes a non-positive capacity: enough for several hundred
// iterations of history without unbounded growth.
const DefaultStreamCapacity = 512

// NewStream creates a stream holding the last capacity frames
// (DefaultStreamCapacity when capacity <= 0).
func NewStream(capacity int) *Stream {
	if capacity <= 0 {
		capacity = DefaultStreamCapacity
	}
	return &Stream{start: time.Now(), ring: make([]Snapshot, 0, capacity)}
}

// Publish stamps the frame's Seq and TimeMs, stores it in the ring
// (evicting the oldest frame when full), fans it out to subscribers, and
// returns the stamped frame. Safe for concurrent use; the fan-out
// happens outside the stream lock.
func (s *Stream) Publish(f Snapshot) Snapshot {
	s.mu.Lock()
	f.Seq = s.next
	f.TimeMs = float64(time.Since(s.start).Nanoseconds()) / 1e6
	s.next++
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, f)
	} else {
		s.ring[f.Seq%int64(cap(s.ring))] = f
	}
	var subs []*Subscriber
	if len(s.subs) > 0 {
		subs = append(subs, s.subs...)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		sub.offer(f)
	}
	return f
}

// Len returns the number of frames currently held in the ring.
func (s *Stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Latest returns the most recently published frame, or false when
// nothing has been published yet.
func (s *Stream) Latest() (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next == 0 {
		return Snapshot{}, false
	}
	return s.ring[(s.next-1)%int64(cap(s.ring))], true
}

// Frames returns a copy of the ring's frames in publication order
// (oldest first).
func (s *Stream) Frames() []Snapshot { return s.Since(0) }

// Since returns a copy of the ring's frames with Seq >= seq, oldest
// first. Frames already evicted from the ring are gone; Since(0) is the
// full surviving history.
func (s *Stream) Since(seq int64) []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	oldest := s.next - int64(len(s.ring))
	if seq < oldest {
		seq = oldest
	}
	if seq >= s.next {
		return nil
	}
	out := make([]Snapshot, 0, s.next-seq)
	for q := seq; q < s.next; q++ {
		out = append(out, s.ring[q%int64(cap(s.ring))])
	}
	return out
}

// Subscriber receives published frames on a buffered channel. When the
// buffer is full the publisher evicts the subscriber's oldest
// undelivered frame (counted by Dropped) rather than blocking.
type Subscriber struct {
	ch      chan Snapshot
	dropped atomic.Int64
}

// Subscribe registers a subscriber with the given channel buffer
// (minimum 1). Unsubscribe it when done; the channel is never closed by
// the stream, so receivers should select against their own cancellation
// signal.
func (s *Stream) Subscribe(buffer int) *Subscriber {
	if buffer < 1 {
		buffer = 1
	}
	sub := &Subscriber{ch: make(chan Snapshot, buffer)}
	s.mu.Lock()
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return sub
}

// Unsubscribe removes the subscriber; no frames are delivered after it
// returns.
func (s *Stream) Unsubscribe(sub *Subscriber) {
	s.mu.Lock()
	for i, have := range s.subs {
		if have == sub {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// Frames returns the subscriber's delivery channel.
func (sub *Subscriber) Frames() <-chan Snapshot { return sub.ch }

// Dropped returns how many frames were evicted undelivered because the
// subscriber fell behind.
func (sub *Subscriber) Dropped() int64 { return sub.dropped.Load() }

// offer delivers one frame with drop-oldest backpressure: if the buffer
// is full, evict the oldest queued frame and retry once. Runs outside
// the stream lock so a blocked channel can never serialize publishers,
// and never blocks the calling goroutine.
func (sub *Subscriber) offer(f Snapshot) {
	select {
	case sub.ch <- f:
		return
	default:
	}
	select {
	case <-sub.ch:
		sub.dropped.Add(1)
	default:
	}
	select {
	case sub.ch <- f:
	default:
		// Another publisher refilled the buffer between evict and retry:
		// count this frame as the dropped one and move on.
		sub.dropped.Add(1)
	}
}

// WriteSnapshots writes frames as NDJSON (one JSON object per line), the
// stream's recording format: `lbplay -frames` produces it and
// `lbtop -replay` consumes it.
func WriteSnapshots(w io.Writer, frames []Snapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshots reads an NDJSON frame recording, skipping blank lines.
func ReadSnapshots(r io.Reader) ([]Snapshot, error) {
	var out []Snapshot
	dec := json.NewDecoder(r)
	for {
		var f Snapshot
		if err := dec.Decode(&f); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: frame %d: %w", len(out), err)
		}
		out = append(out, f)
	}
}
