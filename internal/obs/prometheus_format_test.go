package obs

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// promSampleRE matches one sample line of the text exposition format:
// a valid metric name, an optional well-formed label body, and a value.
var promSampleRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})? \S+$`)

// auditMetrics builds a registry exercising every exporter hazard: HELP
// text, many labelled series per family, label values needing escaping,
// and a histogram that itself carries labels.
func auditMetrics() *Metrics {
	m := NewMetrics()
	m.SetHelp("comm_messages_total", "Transport messages sent, by kind.")
	m.SetHelp("rt_epoch_seconds", "Epoch duration in seconds.")
	m.Counter(LabeledName("comm_messages_total", "kind", "user")).Add(10)
	m.Counter(LabeledName("comm_messages_total", "kind", "token")).Add(4)
	m.Counter(LabeledName("weird_total", "name", "a\\b\"c\nd")).Add(1)
	m.Gauge("plain_gauge").Set(1.5)
	h := m.Histogram(LabeledName("rt_epoch_seconds", "cfg", "tempered"), []float64{0.01, 0.1})
	h.Observe(0, 0.005)
	h.Observe(0, 0.5)
	return m
}

// TestPrometheusFormatAudit validates the full exposition output
// line-by-line: every non-comment line is a well-formed sample, every
// HELP/TYPE appears exactly once per family and before that family's
// first sample, and every counter family ends in _total.
func TestPrometheusFormatAudit(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, auditMetrics()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("exposition must end with a newline")
	}
	helpSeen := map[string]int{}
	typeSeen := map[string]int{}
	counterFams := map[string]bool{}
	samplesStarted := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fam := strings.Fields(line)[2]
			helpSeen[fam]++
			if samplesStarted[fam] {
				t.Errorf("HELP for %s after its samples", fam)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			fam, kind := fields[2], fields[3]
			typeSeen[fam]++
			if samplesStarted[fam] {
				t.Errorf("TYPE for %s after its samples", fam)
			}
			if kind == "counter" {
				counterFams[fam] = true
			}
		default:
			if !promSampleRE.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
			}
			fam := family(strings.SplitN(line, " ", 2)[0])
			// _bucket/_sum/_count samples belong to the histogram family.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if typeSeen[strings.TrimSuffix(fam, suffix)] > 0 {
					fam = strings.TrimSuffix(fam, suffix)
					break
				}
			}
			samplesStarted[fam] = true
			if typeSeen[fam] == 0 {
				t.Errorf("sample before TYPE for family %s: %q", fam, line)
			}
		}
	}
	for fam, n := range typeSeen {
		if n != 1 {
			t.Errorf("TYPE for %s emitted %d times", fam, n)
		}
	}
	for fam, n := range helpSeen {
		if n != 1 {
			t.Errorf("HELP for %s emitted %d times", fam, n)
		}
	}
	if helpSeen["comm_messages_total"] != 1 || helpSeen["rt_epoch_seconds"] != 1 {
		t.Errorf("registered HELP missing: %v", helpSeen)
	}
	for fam := range counterFams {
		if !strings.HasSuffix(fam, "_total") {
			t.Errorf("counter family %s does not end in _total", fam)
		}
	}
	// The labelled histogram must merge its labels with le, not nest
	// braces after them.
	if !strings.Contains(out, `rt_epoch_seconds_bucket{cfg="tempered",le="0.01"} 1`) {
		t.Errorf("labelled histogram bucket malformed:\n%s", out)
	}
	if !strings.Contains(out, `rt_epoch_seconds_sum{cfg="tempered"}`) ||
		!strings.Contains(out, `rt_epoch_seconds_count{cfg="tempered"} 2`) {
		t.Errorf("labelled histogram sum/count malformed:\n%s", out)
	}
	if !strings.Contains(out, `weird_total{name="a\\b\"c\nd"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		`back\slash`: `back\\slash`,
		`qu"ote`:     `qu\"ote`,
		"new\nline":  `new\nline`,
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
	if got := LabeledName("fam", "k", `v"1`); got != `fam{k="v\"1"}` {
		t.Errorf("LabeledName = %q", got)
	}
	if got := LabeledName("fam"); got != "fam" {
		t.Errorf("LabeledName bare = %q", got)
	}
}

// TestExportersEmptyInputs pins the exporters' output on an empty event
// stream and an empty registry — the zero-iteration shapes downstream
// tooling must still parse.
func TestExportersEmptyInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n"; got != want {
		t.Errorf("empty Chrome trace = %q, want %q", got, want)
	}

	buf.Reset()
	if err := WriteEventsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	want := "ts_us,type,rank,peer,trial,iteration,epoch,object,value,bytes,fanout,depth,dur_us,name\n"
	if buf.String() != want {
		t.Errorf("empty CSV = %q, want header only", buf.String())
	}

	buf.Reset()
	if err := WriteEventsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty JSON = %q, want []", buf.String())
	}

	buf.Reset()
	if err := WritePrometheus(&buf, NewMetrics()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "" {
		t.Errorf("empty registry exposition = %q, want empty", buf.String())
	}
}

// TestHistogramSnapshotMergeDeterminism checks that a histogram snapshot
// is independent of observation interleaving: concurrent observers on
// different shards must merge to the same counts, count and sum as a
// sequential replay. Loads are dyadic so per-shard float accumulation is
// order-exact.
func TestHistogramSnapshotMergeDeterminism(t *testing.T) {
	bounds := []float64{0.25, 1, 4}
	values := []float64{0.125, 0.5, 2, 8, 0.25, 1, 4, 0.0625}

	seq := newHistogram(bounds)
	for rank := 0; rank < 32; rank++ {
		for _, v := range values {
			seq.Observe(rank, v)
		}
	}
	want := seq.Snapshot()

	for round := 0; round < 4; round++ {
		conc := newHistogram(bounds)
		var wg sync.WaitGroup
		for rank := 0; rank < 32; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for _, v := range values {
					conc.Observe(rank, v)
				}
			}(rank)
		}
		wg.Wait()
		got := conc.Snapshot()
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("round %d: count/sum = %d/%g, want %d/%g",
				round, got.Count, got.Sum, want.Count, want.Sum)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("round %d: bucket %d = %d, want %d",
					round, i, got.Counts[i], want.Counts[i])
			}
		}
	}
}
