package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event JSON format
// (docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// chromePhase classifies an event into a trace_event phase: "B"/"E" for
// the paired span types, "X" (complete) when a duration was measured,
// "i" (instant) otherwise.
func chromePhase(e Event) string {
	switch e.Type {
	case EvEpochOpen, EvPhaseBegin, EvIterBegin, EvLBBegin:
		return "B"
	case EvEpochClose, EvPhaseEnd, EvIterEnd, EvLBEnd:
		return "E"
	}
	if e.Dur > 0 {
		return "X"
	}
	return "i"
}

// WriteChromeTrace writes the events as Chrome trace_event JSON loadable
// by chrome://tracing and Perfetto, with one thread track per rank
// (pid 0, tid = rank). Events need not be sorted; paired Open/Close
// types become B/E spans, events carrying a Dur become complete slices,
// everything else an instant.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return WriteChromeTraceNamed(w, events, nil)
}

// WriteChromeTraceNamed is WriteChromeTrace with explicit track names:
// a rank whose number appears in names gets that label instead of the
// default "rank N" (used e.g. when tracks are simulation configurations
// rather than real ranks).
func WriteChromeTraceNamed(w io.Writer, events []Event, names map[int]string) error {
	sorted := append([]Event(nil), events...)
	sortEvents(sorted)
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	ranks := map[int]bool{}
	for _, e := range sorted {
		ranks[e.Rank] = true
	}
	for _, r := range sortedInts(ranks) {
		name := names[r]
		if name == "" {
			name = fmt.Sprintf("rank %d", r)
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: r,
			Args: map[string]any{"name": name},
		})
	}

	for _, e := range sorted {
		ce := chromeEvent{
			Name: e.Type.String(),
			Ph:   chromePhase(e),
			TS:   usec(e.TS),
			PID:  0,
			TID:  e.Rank,
		}
		if e.Name != "" {
			ce.Name = e.Type.String() + ":" + e.Name
		}
		switch ce.Ph {
		case "X":
			// The emitting site stamps events at activity end; Chrome
			// wants the start.
			ce.TS = usec(e.TS - e.Dur)
			ce.Dur = usec(e.Dur)
		case "i":
			ce.S = "t"
		case "E":
			ce.Name = "" // E inherits the matching B's name
		}
		if ce.Ph != "E" {
			ce.Args = eventArgs(e)
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// eventArgs exposes the informative event fields in the trace UI.
func eventArgs(e Event) map[string]any {
	args := map[string]any{}
	if e.Peer >= 0 {
		args["peer"] = e.Peer
	}
	if e.Trial > 0 {
		args["trial"] = e.Trial
	}
	if e.Iteration > 0 {
		args["iteration"] = e.Iteration
	}
	if e.Epoch != 0 {
		args["epoch"] = e.Epoch
	}
	if e.Object >= 0 {
		args["object"] = e.Object
	}
	if e.Value != 0 {
		args["value"] = e.Value
	}
	if e.Bytes != 0 {
		args["bytes"] = e.Bytes
	}
	if e.Fanout != 0 {
		args["fanout"] = e.Fanout
	}
	if e.Depth != 0 {
		args["depth"] = e.Depth
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// WriteEventsCSV writes the events as a flat CSV (one row per event,
// microsecond timestamps), the format the experiment harness ingests
// alongside internal/sim's per-step series dumps.
func WriteEventsCSV(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	sortEvents(sorted)
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"ts_us", "type", "rank", "peer", "trial", "iteration",
		"epoch", "object", "value", "bytes", "fanout", "depth",
		"dur_us", "name",
	}); err != nil {
		return err
	}
	for _, e := range sorted {
		rec := []string{
			strconv.FormatFloat(usec(e.TS), 'f', 3, 64),
			e.Type.String(),
			strconv.Itoa(e.Rank),
			strconv.Itoa(e.Peer),
			strconv.Itoa(e.Trial),
			strconv.Itoa(e.Iteration),
			strconv.FormatInt(e.Epoch, 10),
			strconv.FormatInt(e.Object, 10),
			strconv.FormatFloat(e.Value, 'g', -1, 64),
			strconv.Itoa(e.Bytes),
			strconv.Itoa(e.Fanout),
			strconv.Itoa(e.Depth),
			strconv.FormatFloat(usec(e.Dur), 'f', 3, 64),
			e.Name,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonEvent mirrors Event with stable JSON field names.
type jsonEvent struct {
	TSMicros  float64 `json:"ts_us"`
	Type      string  `json:"type"`
	Rank      int     `json:"rank"`
	Peer      int     `json:"peer,omitempty"`
	Trial     int     `json:"trial,omitempty"`
	Iteration int     `json:"iteration,omitempty"`
	Epoch     int64   `json:"epoch,omitempty"`
	Object    int64   `json:"object,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Bytes     int     `json:"bytes,omitempty"`
	Fanout    int     `json:"fanout,omitempty"`
	Depth     int     `json:"depth,omitempty"`
	DurMicros float64 `json:"dur_us,omitempty"`
	Name      string  `json:"name,omitempty"`
}

// WriteEventsJSON writes the events as a JSON array, timestamp-sorted.
func WriteEventsJSON(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	sortEvents(sorted)
	out := make([]jsonEvent, len(sorted))
	for i, e := range sorted {
		out[i] = jsonEvent{
			TSMicros: usec(e.TS), Type: e.Type.String(), Rank: e.Rank,
			Peer: e.Peer, Trial: e.Trial, Iteration: e.Iteration,
			Epoch: e.Epoch, Object: e.Object, Value: e.Value,
			Bytes: e.Bytes, Fanout: e.Fanout, Depth: e.Depth,
			DurMicros: usec(e.Dur), Name: e.Name,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// splitLabels splits a metric name in exposition syntax into its family
// (the part before any label brace) and the label body between the
// braces ("" when unlabelled).
func splitLabels(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// family returns the metric family of an exposition-syntax name.
func family(name string) string {
	f, _ := splitLabels(name)
	return f
}

// EscapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote and newline become \\, \"
// and \n.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// LabeledName renders family{k1="v1",...} in exposition syntax with the
// label values escaped — the way registry names carrying labels (see
// Metrics) should be built. kv alternates keys and values; an odd tail
// or empty kv returns the bare family.
func LabeledName(fam string, kv ...string) string {
	if len(kv) < 2 {
		return fam
	}
	var b strings.Builder
	b.WriteString(fam)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sampleName joins a family (plus optional suffix such as _bucket) with
// a base label body and one extra label, producing a well-formed sample
// name whether or not either label part is empty.
func sampleName(fam, suffix, labels, extra string) string {
	name := fam + suffix
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, then histograms with
// cumulative le-labelled buckets. Each family is preceded by its HELP
// text (when registered via Metrics.SetHelp) and a TYPE line, each
// emitted exactly once per family even when many labelled series share
// it; histogram label suffixes merge with the le label instead of
// nesting braces.
func WritePrometheus(w io.Writer, m *Metrics) error {
	bw := bufio.NewWriter(w)
	seenHeader := map[string]bool{}
	header := func(fam, kind string) {
		if seenHeader[fam] {
			return
		}
		seenHeader[fam] = true
		if help := m.helpFor(fam); help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam, help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam, kind)
	}
	m.visit(
		func(name string, c *Counter) {
			header(family(name), "counter")
			fmt.Fprintf(bw, "%s %d\n", name, c.Value())
		},
		func(name string, g *Gauge) {
			header(family(name), "gauge")
			fmt.Fprintf(bw, "%s %s\n", name, formatFloat(g.Value()))
		},
		func(name string, h *Histogram) {
			fam, labels := splitLabels(name)
			header(fam, "histogram")
			snap := h.Snapshot()
			cum := int64(0)
			for i, bound := range snap.Bounds {
				cum += snap.Counts[i]
				fmt.Fprintf(bw, "%s %d\n",
					sampleName(fam, "_bucket", labels, `le="`+formatFloat(bound)+`"`), cum)
			}
			fmt.Fprintf(bw, "%s %d\n", sampleName(fam, "_bucket", labels, `le="+Inf"`), snap.Count)
			fmt.Fprintf(bw, "%s %s\n", sampleName(fam, "_sum", labels, ""), formatFloat(snap.Sum))
			fmt.Fprintf(bw, "%s %d\n", sampleName(fam, "_count", labels, ""), snap.Count)
		},
	)
	return bw.Flush()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
