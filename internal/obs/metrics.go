package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use; the fast path is a single atomic add.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Store overwrites the counter; used when folding externally accumulated
// totals (e.g. transport counters) into a registry snapshot.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histogramShards bounds the per-histogram shard count; shards are
// selected by the caller-provided rank, so contention only occurs when
// more ranks than shards observe the same histogram simultaneously.
const histogramShards = 16

// Histogram accumulates float64 observations into fixed buckets,
// sharded so concurrent ranks do not serialize on one set of counters.
// Bucket upper bounds are inclusive (Prometheus "le" semantics), with an
// implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	shards [histogramShards]histogramShard
}

type histogramShard struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
	buckets []atomic.Int64
	_       [32]byte // decouple neighbouring shards' cache lines
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	sort.Float64s(h.bounds)
	for i := range h.shards {
		h.shards[i].buckets = make([]atomic.Int64, len(h.bounds)+1)
	}
	return h
}

// Observe records v on the shard selected by rank. Callers pass their
// rank (or any stable per-goroutine index) so the hot path needs no
// shared state to pick a shard.
func (h *Histogram) Observe(rank int, v float64) {
	s := &h.shards[uint(rank)%histogramShards]
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	s.buckets[i].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a merged view of a histogram's shards.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending; Counts has one extra +Inf slot
	Counts []int64   // per-bucket counts (not cumulative)
	Count  int64
	Sum    float64
}

// Snapshot merges all shards.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.bounds)+1),
	}
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.buckets {
			snap.Counts[b] += s.buckets[b].Load()
		}
		snap.Count += s.count.Load()
		snap.Sum += math.Float64frombits(s.sumBits.Load())
	}
	return snap
}

// DefaultLatencyBounds are the histogram buckets used for the runtime's
// latency metrics, in seconds: 1µs to ~16s in powers of four.
func DefaultLatencyBounds() []float64 {
	return []float64{1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16}
}

// Metrics is a registry of named instruments. Get-or-create lookups take
// a write lock and are meant for setup time; the returned instrument
// pointers are cached by the instrumented code, so steady-state updates
// are pure atomic operations.
//
// Names follow Prometheus conventions and may carry a label suffix in
// exposition syntax, e.g. `comm_messages_total{kind="user"}`; the
// exporter treats everything before the brace as the metric family.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // family -> HELP text
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// SetHelp records the HELP text for a metric family (the name without
// any label suffix); the exporter emits it once per family, before the
// TYPE line. Idempotent and safe for concurrent use.
func (m *Metrics) SetHelp(family, text string) {
	m.mu.Lock()
	m.help[family] = text
	m.mu.Unlock()
}

// helpFor returns the registered HELP text for a family, "" when none.
func (m *Metrics) helpFor(family string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.help[family]
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds).
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = newHistogram(bounds)
		m.hists[name] = h
	}
	return h
}

// visit walks all instruments in deterministic name order.
func (m *Metrics) visit(counter func(name string, c *Counter), gauge func(name string, g *Gauge), hist func(name string, h *Histogram)) {
	m.mu.Lock()
	cn := sortedKeys(m.counters)
	gn := sortedKeys(m.gauges)
	hn := sortedKeys(m.hists)
	m.mu.Unlock()
	for _, n := range cn {
		counter(n, m.Counter(n))
	}
	for _, n := range gn {
		gauge(n, m.Gauge(n))
	}
	for _, n := range hn {
		hist(n, m.Histogram(n, nil))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
