package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// fixtureEvents is a deterministic event stream exercising every phase
// class of the Chrome exporter: B/E spans, X completes, and instants.
func fixtureEvents() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		{Type: EvLBBegin, Rank: 0, Peer: -1, Object: -1, TS: ms(0)},
		{Type: EvIterBegin, Rank: 0, Peer: -1, Object: -1, Trial: 1, Iteration: 1, TS: ms(1)},
		{Type: EvEpochOpen, Rank: 0, Peer: -1, Object: -1, Epoch: 1, TS: ms(2)},
		{Type: EvEpochOpen, Rank: 1, Peer: -1, Object: -1, Epoch: 1, TS: ms(2)},
		{Type: EvInformSend, Rank: 0, Peer: 1, Object: -1, Trial: 1, Iteration: 1, Value: 3, TS: ms(3)},
		{Type: EvInformRecv, Rank: 1, Peer: 0, Object: -1, Trial: 1, Iteration: 1, Value: 3, TS: ms(4)},
		{Type: EvHandler, Rank: 1, Peer: 0, Object: -1, Name: "lb.gossip", TS: ms(5), Dur: ms(1)},
		{Type: EvTokenRound, Rank: 1, Peer: 0, Object: -1, Epoch: 1, Value: 2, TS: ms(6)},
		{Type: EvMigration, Rank: 0, Peer: 1, Object: 7, Bytes: 128, TS: ms(7)},
		{Type: EvEpochClose, Rank: 1, Peer: -1, Object: -1, Epoch: 1, TS: ms(8), Dur: ms(6)},
		{Type: EvEpochClose, Rank: 0, Peer: -1, Object: -1, Epoch: 1, TS: ms(8), Dur: ms(6)},
		{Type: EvCollective, Rank: 0, Peer: -1, Object: -1, Name: "allreduce", TS: ms(9), Dur: ms(1)},
		{Type: EvIterEnd, Rank: 0, Peer: -1, Object: -1, Trial: 1, Iteration: 1, Value: 0.25, TS: ms(10)},
		{Type: EvLBEnd, Rank: 0, Peer: -1, Object: -1, Value: 0.25, TS: ms(11)},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.json.golden", buf.Bytes())
}

// TestChromeTraceRoundTrip re-parses the exported JSON and verifies the
// structural properties Perfetto relies on: one named track per rank,
// balanced B/E pairs per track, and X events with non-negative start.
func TestChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	events := fixtureEvents()
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var parsed chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	names := map[int]string{}
	depth := map[int]int{}
	var payload int
	for _, ce := range parsed.TraceEvents {
		switch ce.Ph {
		case "M":
			names[ce.TID] = ce.Args["name"].(string)
		case "B":
			depth[ce.TID]++
			payload++
		case "E":
			depth[ce.TID]--
			if depth[ce.TID] < 0 {
				t.Fatalf("unbalanced E on tid %d", ce.TID)
			}
			payload++
		case "X":
			if ce.TS < 0 || ce.Dur <= 0 {
				t.Fatalf("bad X event: %+v", ce)
			}
			payload++
		case "i":
			payload++
		default:
			t.Fatalf("unknown phase %q", ce.Ph)
		}
	}
	if payload != len(events) {
		t.Fatalf("round-trip lost events: %d of %d", payload, len(events))
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %d left %d spans open", tid, d)
		}
	}
	if names[0] != "rank 0" || names[1] != "rank 1" {
		t.Errorf("track names = %v", names)
	}
}

func fixtureMetrics() *Metrics {
	m := NewMetrics()
	m.Counter(`comm_messages_total{kind="user"}`).Add(42)
	m.Counter(`comm_messages_total{kind="token"}`).Add(7)
	m.Counter("lb_transfers_total").Add(13)
	m.Gauge("lb_final_imbalance").Set(0.125)
	h := m.Histogram("amt_epoch_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0, 0.0005)
	h.Observe(1, 0.02)
	h.Observe(2, 5)
	return m
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, fixtureMetrics()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

// TestPrometheusRoundTrip parses the exposition text back and checks the
// sample values survive, including cumulative histogram buckets.
func TestPrometheusRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, fixtureMetrics()); err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	want := map[string]float64{
		`comm_messages_total{kind="user"}`:     42,
		`comm_messages_total{kind="token"}`:    7,
		"lb_transfers_total":                   13,
		"lb_final_imbalance":                   0.125,
		`amt_epoch_seconds_bucket{le="0.001"}`: 1,
		`amt_epoch_seconds_bucket{le="0.01"}`:  1,
		`amt_epoch_seconds_bucket{le="0.1"}`:   2,
		`amt_epoch_seconds_bucket{le="+Inf"}`:  3,
		"amt_epoch_seconds_count":              3,
	}
	for name, w := range want {
		if got, ok := samples[name]; !ok || got != w {
			t.Errorf("sample %s = %g (present %v), want %g", name, got, ok, w)
		}
	}
}

func TestEventsCSVAndJSON(t *testing.T) {
	events := fixtureEvents()
	var buf bytes.Buffer
	if err := WriteEventsCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(events)+1 {
		t.Fatalf("CSV rows = %d, want %d + header", len(lines)-1, len(events))
	}
	if !strings.HasPrefix(lines[0], "ts_us,type,rank") {
		t.Fatalf("CSV header = %q", lines[0])
	}

	buf.Reset()
	if err := WriteEventsJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	var parsed []jsonEvent
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("JSON events = %d, want %d", len(parsed), len(events))
	}
	if parsed[0].Type != "lb.run" || parsed[len(parsed)-1].Type != "lb.run" {
		t.Errorf("ordering lost: first %q last %q", parsed[0].Type, parsed[len(parsed)-1].Type)
	}
}
