package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestRecorderCollectsAndSorts(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Emit(Event{Type: EvMigration, Rank: i % 7, Peer: (i + 1) % 7, Object: int64(i)})
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	events := r.Events()
	if len(events) != 100 {
		t.Fatalf("Events len = %d, want 100", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("events not sorted at %d: %v < %v", i, events[i].TS, events[i-1].TS)
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	r := NewRecorder()
	const ranks, per = 16, 500
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(Event{Type: EvInformSend, Rank: rank, Peer: i % ranks})
			}
		}(rank)
	}
	wg.Wait()
	if got := r.Len(); got != ranks*per {
		t.Fatalf("Len = %d, want %d", got, ranks*per)
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("test_total")
	g := m.Gauge("test_gauge")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(42.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 42.5 {
		t.Errorf("gauge = %g, want 42.5", g.Value())
	}
	// Registry returns the same instrument on re-lookup.
	if m.Counter("test_total") != c {
		t.Error("Counter lookup not idempotent")
	}
}

func TestHistogramShardedObserve(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1})
	var wg sync.WaitGroup
	const ranks, per = 32, 250
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(rank, 0.005)
			}
		}(rank)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != ranks*per {
		t.Fatalf("count = %d, want %d", snap.Count, ranks*per)
	}
	if math.Abs(snap.Sum-float64(ranks*per)*0.005) > 1e-6 {
		t.Fatalf("sum = %g", snap.Sum)
	}
	// 0.005 lands in the (0.001, 0.01] bucket (index 1).
	if snap.Counts[1] != ranks*per {
		t.Fatalf("bucket counts = %v", snap.Counts)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(0, 0.5)  // <= 1
	h.Observe(0, 1)    // <= 1 (le is inclusive)
	h.Observe(0, 5)    // <= 10
	h.Observe(0, 1000) // +Inf
	snap := h.Snapshot()
	want := []int64{2, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("counts = %v, want %v", snap.Counts, want)
		}
	}
}

func TestEventTypeNames(t *testing.T) {
	seen := map[string]EventType{}
	for ty := EventType(0); int(ty) < numEventTypes; ty++ {
		name := ty.String()
		if name == "" {
			t.Fatalf("event type %d has no name", ty)
		}
		// Paired span types intentionally share a name; everything else
		// must be unique.
		if prev, dup := seen[name]; dup && !pairedSpan(prev, ty) {
			t.Fatalf("name %q reused by %d and %d", name, prev, ty)
		}
		seen[name] = ty
	}
	if got := EventType(200).String(); got != "event(200)" {
		t.Fatalf("unknown type name = %q", got)
	}
}

func pairedSpan(a, b EventType) bool {
	pairs := map[EventType]EventType{
		EvEpochOpen: EvEpochClose, EvPhaseBegin: EvPhaseEnd,
		EvIterBegin: EvIterEnd, EvLBBegin: EvLBEnd,
	}
	return pairs[a] == b || pairs[b] == a
}

func TestRecorderStampsMonotonic(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Type: EvEpochOpen, Rank: 0})
	time.Sleep(time.Millisecond)
	r.Emit(Event{Type: EvEpochClose, Rank: 0})
	ev := r.Events()
	if ev[1].TS <= ev[0].TS {
		t.Fatalf("timestamps not increasing: %v then %v", ev[0].TS, ev[1].TS)
	}
}
