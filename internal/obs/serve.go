package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewServeMux builds the observability HTTP surface for a live run:
//
//	/           endpoint index (text)
//	/stream     live NDJSON frame stream: replays the ring, then tails
//	            new frames until the client disconnects; ?since=N skips
//	            the replay ahead to frame sequence N
//	/frames     the ring's current frames as NDJSON, then closes (the
//	            recording format lbtop -replay reads)
//	/snapshot   the latest frame as a single JSON object
//	/metrics    the registry in Prometheus text exposition format
//	/debug/pprof/*  the stdlib profiler (CPU, heap, mutex, goroutine)
//
// stream and metrics may each be nil; their endpoints then report 404.
// pprof is wired explicitly because the stdlib only self-registers on
// http.DefaultServeMux, which a library must not touch.
func NewServeMux(stream *Stream, metrics *Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "temperedlb observability\n\n"+
			"/stream    live NDJSON frames (?since=N)\n"+
			"/frames    recorded ring as NDJSON\n"+
			"/snapshot  latest frame as JSON\n"+
			"/metrics   Prometheus text format\n"+
			"/debug/pprof/  profiler index\n")
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		if stream == nil {
			http.NotFound(w, r)
			return
		}
		serveStream(w, r, stream)
	})
	mux.HandleFunc("/frames", func(w http.ResponseWriter, r *http.Request) {
		if stream == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		WriteSnapshots(w, stream.Frames())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if stream == nil {
			http.NotFound(w, r)
			return
		}
		f, ok := stream.Latest()
		if !ok {
			http.Error(w, "no frames published yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(f)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if metrics == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, metrics)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveStream replays the ring from the requested sequence and then
// tails live frames as NDJSON, flushing after every frame so dashboards
// see them immediately. Subscribing before the replay (and skipping
// already-written sequence numbers) closes the window in which a frame
// published mid-handoff would be lost.
func serveStream(w http.ResponseWriter, r *http.Request, stream *Stream) {
	since := int64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	sub := stream.Subscribe(256)
	defer stream.Unsubscribe(sub)

	lastSeq := int64(-1)
	for _, f := range stream.Since(since) {
		if err := enc.Encode(&f); err != nil {
			return
		}
		lastSeq = f.Seq
	}
	if flusher != nil {
		flusher.Flush()
	}
	ctx := r.Context()
	for {
		select {
		case f := <-sub.Frames():
			if f.Seq <= lastSeq {
				continue // already written during the replay
			}
			if err := enc.Encode(&f); err != nil {
				return
			}
			lastSeq = f.Seq
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			return
		}
	}
}

// StartServer listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves
// the observability mux in a background goroutine. It returns the
// running server and the bound address — useful with port 0 — or an
// error if the listen fails. Shut down with srv.Close.
func StartServer(addr string, stream *Stream, metrics *Metrics) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: serve %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewServeMux(stream, metrics)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
