package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestStreamRingEviction(t *testing.T) {
	s := NewStream(4)
	if _, ok := s.Latest(); ok {
		t.Fatal("Latest on empty stream reported a frame")
	}
	for i := 0; i < 10; i++ {
		f := s.Publish(Snapshot{Ranks: i})
		if f.Seq != int64(i) {
			t.Fatalf("frame %d stamped seq %d", i, f.Seq)
		}
	}
	frames := s.Frames()
	if len(frames) != 4 {
		t.Fatalf("ring holds %d frames, want 4", len(frames))
	}
	for i, f := range frames {
		if want := int64(6 + i); f.Seq != want {
			t.Fatalf("frames[%d].Seq = %d, want %d", i, f.Seq, want)
		}
	}
	last, ok := s.Latest()
	if !ok || last.Seq != 9 || last.Ranks != 9 {
		t.Fatalf("Latest = %+v, ok=%v; want seq 9", last, ok)
	}
	if got := s.Since(8); len(got) != 2 || got[0].Seq != 8 {
		t.Fatalf("Since(8) = %+v, want seqs 8,9", got)
	}
	if got := s.Since(99); got != nil {
		t.Fatalf("Since past the head = %+v, want nil", got)
	}
}

func TestStreamSubscriberDropOldest(t *testing.T) {
	s := NewStream(16)
	sub := s.Subscribe(2)
	defer s.Unsubscribe(sub)
	for i := 0; i < 5; i++ {
		s.Publish(Snapshot{Trial: i})
	}
	// Buffer of 2: frames 0..2 were evicted to admit 3 and 4.
	if d := sub.Dropped(); d != 3 {
		t.Fatalf("Dropped = %d, want 3", d)
	}
	got := []int{}
	for len(sub.Frames()) > 0 {
		got = append(got, (<-sub.Frames()).Trial)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("delivered %v, want [3 4] (newest survive)", got)
	}
}

func TestStreamUnsubscribeStopsDelivery(t *testing.T) {
	s := NewStream(16)
	sub := s.Subscribe(8)
	s.Publish(Snapshot{})
	s.Unsubscribe(sub)
	s.Publish(Snapshot{})
	if n := len(sub.Frames()); n != 1 {
		t.Fatalf("got %d frames after unsubscribe, want 1", n)
	}
}

func TestStreamConcurrentPublish(t *testing.T) {
	s := NewStream(64)
	sub := s.Subscribe(4) // deliberately tiny: exercises eviction races
	defer s.Unsubscribe(sub)
	const publishers, each = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Publish(Snapshot{Step: p*each + i})
			}
		}(p)
	}
	wg.Wait()
	frames := s.Frames()
	if len(frames) != 64 {
		t.Fatalf("ring holds %d frames, want 64", len(frames))
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].Seq != frames[i-1].Seq+1 {
			t.Fatalf("ring seqs not dense at %d: %d then %d", i, frames[i-1].Seq, frames[i].Seq)
		}
	}
	if last, _ := s.Latest(); last.Seq != publishers*each-1 {
		t.Fatalf("Latest.Seq = %d, want %d", last.Seq, publishers*each-1)
	}
	// Conservation: everything offered was either delivered or counted.
	delivered := 0
	for len(sub.Frames()) > 0 {
		<-sub.Frames()
		delivered++
	}
	if total := delivered + int(sub.Dropped()); total != publishers*each {
		t.Fatalf("delivered %d + dropped %d = %d, want %d",
			delivered, sub.Dropped(), total, publishers*each)
	}
}

func TestFillLoadStats(t *testing.T) {
	f := Snapshot{Loads: []float64{1, 2, 3, 4, 10}}
	f.FillLoadStats()
	if f.Ranks != 5 || f.MaxLoad != 10 || f.MinLoad != 1 || f.AvgLoad != 4 {
		t.Fatalf("stats = %+v", f)
	}
	if want := 10.0/4.0 - 1; math.Abs(f.Imbalance-want) > 1e-12 {
		t.Fatalf("Imbalance = %g, want %g", f.Imbalance, want)
	}
	if want := math.Sqrt((9.0 + 4 + 1 + 0 + 36) / 5); math.Abs(f.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %g, want %g", f.StdDev, want)
	}

	zero := Snapshot{Loads: []float64{0, 0}}
	zero.FillLoadStats()
	if zero.Imbalance != 0 {
		t.Fatalf("all-zero loads: Imbalance = %g, want 0", zero.Imbalance)
	}
}

func TestSnapshotNDJSONRoundTrip(t *testing.T) {
	in := []Snapshot{
		{Seq: 0, Source: "distributed", Phase: "init", Ranks: 4, Loads: []float64{1, 0, 2, 1}},
		{Seq: 1, Source: "distributed", Phase: "iter", Trial: 1, Iteration: 2,
			Ranks: 4, GossipMsgs: 12, TransferMsgs: 3, Imbalance: 0.5, IterMs: 1.25},
	}
	var buf bytes.Buffer
	if err := WriteSnapshots(&buf, in); err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != 2 {
		t.Fatalf("NDJSON wrote %d lines, want 2", lines)
	}
	out, err := ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].GossipMsgs != 12 || out[1].IterMs != 1.25 ||
		len(out[0].Loads) != 4 || out[0].Loads[2] != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
