package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// EventType discriminates the protocol events of the distributed stack.
type EventType uint8

// The event vocabulary. Span-like activities are bracketed by paired
// Open/Begin and Close/End events on the same rank (epochs, phases, LB
// iterations); point-in-time activities are single events, optionally
// carrying a Dur when the emitting site timed the activity (handler
// dispatch, collectives).
const (
	// EvEpochOpen and EvEpochClose bracket one epoch under termination
	// detection on one rank. Epoch carries the epoch id; the close event
	// carries the epoch's wall-clock Dur and, in Value, the number of
	// termination-token waves observed by rank 0 (0 elsewhere).
	EvEpochOpen EventType = iota
	EvEpochClose
	// EvHandler is one active-message handler dispatch; Name is the
	// handler's registered name, Peer the sending rank, Dur the handler
	// run time.
	EvHandler
	// EvInformSend and EvInformRecv are gossip messages of the inform
	// stage leaving/arriving at a rank; Value carries the entry count of
	// the payload, Trial/Iteration locate the refinement step.
	EvInformSend
	EvInformRecv
	// EvTransferPropose is one transfer proposal sent to Peer (Object,
	// Value = task load). EvTransferReject and EvTransferNoCandidate
	// summarize the rejected/no-candidate decision counts of one rank's
	// transfer stage in Value. EvTransferNack is a recipient veto.
	EvTransferPropose
	EvTransferReject
	EvTransferNoCandidate
	EvTransferNack
	// EvTokenRound is one hand-off of the termination-detection token;
	// Value is the wave number, Peer the ring successor.
	EvTokenRound
	// EvMigration is one object migration leaving a rank for Peer,
	// carrying Bytes of serialized state.
	EvMigration
	// EvPhaseBegin and EvPhaseEnd bracket one application phase; the end
	// event carries the rank's summed task load in Value.
	EvPhaseBegin
	EvPhaseEnd
	// EvCollective is one completed collective call (Name identifies the
	// algorithm: "barrier", "allreduce", "allreduce_summary",
	// "allreduce_vec", "allgather"); Dur spans entry to completion. Value
	// carries the messages this rank sent for the collective, and
	// Fanout/Depth describe the reduction tree it rode.
	EvCollective
	// EvIterBegin and EvIterEnd bracket one LB refinement iteration
	// (Trial/Iteration set); the end event carries the evaluated
	// imbalance in Value.
	EvIterBegin
	EvIterEnd
	// EvLBBegin and EvLBEnd bracket one whole LB invocation; the end
	// event carries the final imbalance in Value.
	EvLBBegin
	EvLBEnd
	// EvRetry is one retransmission of an unacknowledged epoch message
	// by the runtime's reliability layer; Peer is the destination rank,
	// Value the attempt number (2 = first retransmission).
	EvRetry
	// EvDupDrop is the receiver-side discard of an already-delivered
	// epoch message (a transport duplicate or a redundant
	// retransmission); Peer is the sending rank.
	EvDupDrop

	numEventTypes = int(EvDupDrop) + 1
)

var eventNames = [numEventTypes]string{
	EvEpochOpen:           "epoch",
	EvEpochClose:          "epoch",
	EvHandler:             "handler",
	EvInformSend:          "inform.send",
	EvInformRecv:          "inform.recv",
	EvTransferPropose:     "transfer.propose",
	EvTransferReject:      "transfer.reject",
	EvTransferNoCandidate: "transfer.nocandidate",
	EvTransferNack:        "transfer.nack",
	EvTokenRound:          "token.round",
	EvMigration:           "migration",
	EvPhaseBegin:          "phase",
	EvPhaseEnd:            "phase",
	EvCollective:          "collective",
	EvIterBegin:           "lb.iteration",
	EvIterEnd:             "lb.iteration",
	EvLBBegin:             "lb.run",
	EvLBEnd:               "lb.run",
	EvRetry:               "retry",
	EvDupDrop:             "dup.drop",
}

// String returns the stable name used in exports.
func (t EventType) String() string {
	if int(t) < numEventTypes {
		return eventNames[t]
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Event is one protocol event. Zero-valued fields mean "not applicable";
// Peer and Object use -1 for that instead, since 0 is a valid rank and
// object id.
type Event struct {
	Type EventType
	// Rank is the emitting rank (the trace track the event lands on).
	Rank int
	// Peer is the other rank of the interaction, or -1.
	Peer int
	// Trial and Iteration locate LB refinement events (1-based, 0 when
	// not inside the balancer).
	Trial     int
	Iteration int
	// Epoch is the runtime epoch id the event belongs to (0 = none).
	Epoch int64
	// Object is the migratable object concerned, or -1.
	Object int64
	// Value is an event-type-specific magnitude (entry count, load,
	// imbalance, wave number).
	Value float64
	// Bytes is the payload size where accounted.
	Bytes int
	// Fanout and Depth describe the collective tree for EvCollective
	// events: the configured arity and the depth of its deepest rank
	// (0 when not applicable).
	Fanout int
	Depth  int
	// Name further qualifies the event (handler or collective name).
	Name string
	// TS is the event timestamp on the recorder's monotonic clock
	// (time since recording started). The Recorder stamps it on Emit;
	// hand-built event slices (e.g. virtual-time exports) set it
	// directly.
	TS time.Duration
	// Dur is the activity duration for events that time a completed
	// activity (handlers, collectives, close events); 0 for instants.
	Dur time.Duration
}

// Tracer consumes protocol events. Implementations must be safe for
// concurrent Emit from many rank goroutines. A nil Tracer means tracing
// is disabled; emitting sites must check for nil before building events
// so the disabled hot path pays only the comparison.
type Tracer interface {
	Emit(Event)
}

// recorderShards spreads concurrent emitters over independent locks;
// events are re-ordered by timestamp at export time, so shard assignment
// only matters for contention, not correctness.
const recorderShards = 16

// Recorder is the standard collecting Tracer: events are appended to
// per-shard buffers (sharded by emitting rank) under short critical
// sections and merged on demand. All timestamps are relative to the
// Recorder's creation.
type Recorder struct {
	start  time.Time
	shards [recorderShards]recorderShard
}

type recorderShard struct {
	mu     sync.Mutex
	events []Event
	_      [32]byte // keep neighbouring shard locks off one cache line
}

// NewRecorder creates an empty Recorder; its clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// Emit stamps the event with the recorder-relative timestamp and stores
// it. Safe for concurrent use.
func (r *Recorder) Emit(e Event) {
	e.TS = time.Since(r.start)
	s := &r.shards[uint(e.Rank)%recorderShards]
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// Events returns a copy of all recorded events sorted by timestamp.
func (r *Recorder) Events() []Event {
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	sortEvents(out)
	return out
}

// Reset discards all recorded events and restarts the clock.
func (r *Recorder) Reset() {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.events = nil
		s.mu.Unlock()
	}
	r.start = time.Now()
}

// sortEvents orders by TS, breaking ties by rank then type so exports
// are deterministic for events stamped in the same clock tick.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Type < b.Type
	})
}
