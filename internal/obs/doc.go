// Package obs is the protocol-level observability layer of the
// distributed stack: typed trace events emitted by the transport, the
// AMT runtime, termination detection and the distributed balancer, plus
// a lock-cheap metrics registry, with exporters to Chrome trace_event
// JSON (chrome://tracing, Perfetto), Prometheus text exposition, and
// CSV/JSON dumps.
//
// The design goal is a hot path that pays exactly one nil-check when
// tracing is disabled: instrumented code holds a Tracer interface value
// that is nil by default and only constructs and emits events inside
// `if tr != nil` guards. Metrics follow the same discipline — instrument
// pointers are resolved once at setup and the disabled path never
// touches them.
//
// # Concurrency
//
// Everything here is goroutine-safe by design, because one Recorder and
// one Metrics registry are shared by every rank goroutine of a
// distributed run — and, since the parallel experiment harness, by
// concurrent engine runs. Recorder.Emit appends to mutex-sharded
// buffers keyed by rank; Events merges them into one timestamp-sorted
// view. Counters and gauges are atomics; histograms shard their buckets
// by rank. It is safe to attach a single Recorder/Metrics pair as the
// tracer of every configuration in a parallel sweep.
package obs
