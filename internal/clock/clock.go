// Package clock is the single sanctioned wall-clock access point for
// the protocol packages (core, lb, amt, comm, termination).
//
// The repo's determinism contract (DESIGN.md §5/§7/§8) requires that
// protocol outcomes — gossip knowledge, transfer decisions, collective
// results, everything compared by the faulted-equals-fault-free tests —
// never depend on when the wall clock says they happened. Wall-clock
// reads are still legitimate for two purposes:
//
//   - observability: stamping trace spans and filling ElapsedSeconds
//     statistics, which describe a run without influencing it;
//   - pacing: retransmission deadlines and timed receive waits, which
//     decide WHEN a recovery action fires but never WHAT the protocol
//     computes (exactly-once delivery makes retry timing invisible to
//     results).
//
// Routing every such read through this package keeps them explicit and
// auditable: `lbvet`'s nodeterminism analyzer forbids direct time.Now,
// time.Since and time.Until calls inside the protocol packages, so a
// future wall-clock read must either come through here — where review
// can check it against the two sanctioned purposes — or be flagged.
package clock

import "time"

// Now returns the current wall-clock time. Protocol code may use the
// value for observability stamps and retry deadlines only; it must never
// influence protocol results.
func Now() time.Time { return time.Now() }

// Since returns the time elapsed since t.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Until returns the duration until t; negative when t is in the past.
func Until(t time.Time) time.Duration { return time.Until(t) }
