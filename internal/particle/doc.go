// Package particle implements the Lagrangian particle substrate of the
// EMPIRE-like PIC application: a particle population driven by a
// time-varying focusing field that concentrates particles spatially,
// with an injection schedule that ramps the total particle work up over
// the run. Together these reproduce the B-Dot problem's signature the
// paper exploits: a large, highly-variable, dynamic load imbalance whose
// relative magnitude decreases as the average load grows (Fig. 4c).
//
// # Concurrency
//
// A Population is single-owner: one goroutine advances it (the empire
// App's physics loop). The per-cell counts it reports each step are
// plain data that downstream consumers may read concurrently.
package particle
