package particle

import (
	"fmt"
	"math"
	"math/rand"
)

// Particle is one macro-particle in the unit square.
type Particle struct {
	X, Y   float64
	VX, VY float64
}

// Field supplies the acceleration a particle feels.
type Field interface {
	// Accel returns the acceleration at a position and time.
	Accel(x, y, t float64) (ax, ay float64)
}

// FocusingField attracts particles toward a slowly drifting focal point
// — the stand-in for the B-Dot problem's magnetic compression. The
// attraction is linear in the offset (a harmonic trap), so a cloud
// relaxes toward a Gaussian around the focus whose width is set by the
// velocity spread; the drift moves the hot spot across rank boundaries
// over time.
type FocusingField struct {
	// Strength is the trap stiffness.
	Strength float64
	// CX0, CY0 and DriftX, DriftY define the focus trajectory
	// (CX0+DriftX·t, CY0+DriftY·t).
	CX0, CY0       float64
	DriftX, DriftY float64
}

// Accel implements Field.
func (f FocusingField) Accel(x, y, t float64) (ax, ay float64) {
	cx := f.CX0 + f.DriftX*t
	cy := f.CY0 + f.DriftY*t
	return -f.Strength * (x - cx), -f.Strength * (y - cy)
}

// Focus returns the focal point at time t.
func (f FocusingField) Focus(t float64) (x, y float64) {
	return f.CX0 + f.DriftX*t, f.CY0 + f.DriftY*t
}

// System is a particle population with reflecting walls on [0,1]².
type System struct {
	Particles []Particle
	rng       *rand.Rand
	time      float64
}

// NewSystem creates an empty system with a seeded generator.
func NewSystem(seed int64) *System {
	return &System{rng: rand.New(rand.NewSource(seed))}
}

// Len returns the particle count.
func (s *System) Len() int { return len(s.Particles) }

// Time returns the accumulated simulation time.
func (s *System) Time() float64 { return s.time }

// InjectGaussian adds n particles in a Gaussian spot of width sigma
// around (cx, cy), with thermal velocity spread vth. Positions are
// clamped into the domain.
func (s *System) InjectGaussian(n int, cx, cy, sigma, vth float64) {
	for i := 0; i < n; i++ {
		s.Particles = append(s.Particles, Particle{
			X:  clamp01(cx + s.rng.NormFloat64()*sigma),
			Y:  clamp01(cy + s.rng.NormFloat64()*sigma),
			VX: s.rng.NormFloat64() * vth,
			VY: s.rng.NormFloat64() * vth,
		})
	}
}

// InjectDisk adds n particles uniformly over a disk of radius r around
// (cx, cy) — a plasma filament cross-section. Positions are clamped into
// the domain.
func (s *System) InjectDisk(n int, cx, cy, r, vth float64) {
	for i := 0; i < n; i++ {
		// Uniform over the disk via sqrt-radius sampling.
		rr := r * math.Sqrt(s.rng.Float64())
		th := 2 * math.Pi * s.rng.Float64()
		s.Particles = append(s.Particles, Particle{
			X:  clamp01(cx + rr*math.Cos(th)),
			Y:  clamp01(cy + rr*math.Sin(th)),
			VX: s.rng.NormFloat64() * vth,
			VY: s.rng.NormFloat64() * vth,
		})
	}
}

// InjectUniform adds n particles spread uniformly over the domain — the
// background plasma that keeps every rank busy.
func (s *System) InjectUniform(n int, vth float64) {
	for i := 0; i < n; i++ {
		s.Particles = append(s.Particles, Particle{
			X:  s.rng.Float64(),
			Y:  s.rng.Float64(),
			VX: s.rng.NormFloat64() * vth,
			VY: s.rng.NormFloat64() * vth,
		})
	}
}

// Step advances all particles by dt under the field using a symplectic
// (kick-drift) update, reflecting at the walls. Particle count is
// conserved.
func (s *System) Step(dt float64, f Field) {
	if dt <= 0 {
		panic(fmt.Sprintf("particle: Step with dt=%g", dt))
	}
	t := s.time
	for i := range s.Particles {
		p := &s.Particles[i]
		ax, ay := f.Accel(p.X, p.Y, t)
		p.VX += ax * dt
		p.VY += ay * dt
		p.X += p.VX * dt
		p.Y += p.VY * dt
		reflect(&p.X, &p.VX)
		reflect(&p.Y, &p.VY)
	}
	s.time += dt
}

// reflect bounces a coordinate back into [0,1], flipping its velocity.
func reflect(x, v *float64) {
	for *x < 0 || *x > 1 {
		if *x < 0 {
			*x = -*x
			*v = -*v
		}
		if *x > 1 {
			*x = 2 - *x
			*v = -*v
		}
	}
}

func clamp01(x float64) float64 {
	return math.Min(1, math.Max(0, x))
}

// CountPer bins particles by an arbitrary spatial classifier with
// numBins classes; the PIC driver uses it with the mesh coloring to get
// per-color particle counts.
func (s *System) CountPer(numBins int, binOf func(x, y float64) int) []int {
	counts := make([]int, numBins)
	for i := range s.Particles {
		p := &s.Particles[i]
		b := binOf(p.X, p.Y)
		if b < 0 || b >= numBins {
			panic(fmt.Sprintf("particle: classifier returned bin %d of %d for (%g,%g)", b, numBins, p.X, p.Y))
		}
		counts[b]++
	}
	return counts
}

// Spread returns the standard deviation of particle positions around
// their centroid — the cloud width observable used to calibrate the
// imbalance trajectory.
func (s *System) Spread() float64 {
	n := float64(len(s.Particles))
	if n == 0 {
		return 0
	}
	mx, my := 0.0, 0.0
	for i := range s.Particles {
		mx += s.Particles[i].X
		my += s.Particles[i].Y
	}
	mx /= n
	my /= n
	ss := 0.0
	for i := range s.Particles {
		dx, dy := s.Particles[i].X-mx, s.Particles[i].Y-my
		ss += dx*dx + dy*dy
	}
	return math.Sqrt(ss / (2 * n))
}
