package particle

import (
	"math"
	"testing"
)

func TestInjectGaussianCentersAndClamps(t *testing.T) {
	s := NewSystem(1)
	s.InjectGaussian(5000, 0.5, 0.5, 0.05, 0.01)
	if s.Len() != 5000 {
		t.Fatalf("Len = %d", s.Len())
	}
	mx, my := 0.0, 0.0
	for _, p := range s.Particles {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("particle outside domain: %+v", p)
		}
		mx += p.X
		my += p.Y
	}
	mx /= 5000
	my /= 5000
	if math.Abs(mx-0.5) > 0.01 || math.Abs(my-0.5) > 0.01 {
		t.Errorf("centroid (%g,%g), want ~(0.5,0.5)", mx, my)
	}
}

func TestInjectDiskWithinRadius(t *testing.T) {
	s := NewSystem(2)
	s.InjectDisk(3000, 0.4, 0.6, 0.02, 0)
	for _, p := range s.Particles {
		dx, dy := p.X-0.4, p.Y-0.6
		if dx*dx+dy*dy > 0.02*0.02*1.0001 {
			t.Fatalf("disk particle outside radius: %+v", p)
		}
	}
}

func TestInjectUniformCoverage(t *testing.T) {
	s := NewSystem(3)
	s.InjectUniform(8000, 0.01)
	quad := [4]int{}
	for _, p := range s.Particles {
		i := 0
		if p.X > 0.5 {
			i |= 1
		}
		if p.Y > 0.5 {
			i |= 2
		}
		quad[i]++
	}
	for q, n := range quad {
		if n < 1700 || n > 2300 {
			t.Errorf("quadrant %d has %d of 8000", q, n)
		}
	}
}

func TestStepConservesCount(t *testing.T) {
	s := NewSystem(4)
	s.InjectUniform(1000, 0.1)
	f := FocusingField{Strength: 1, CX0: 0.5, CY0: 0.5}
	for i := 0; i < 100; i++ {
		s.Step(0.01, f)
	}
	if s.Len() != 1000 {
		t.Errorf("count changed: %d", s.Len())
	}
}

func TestStepKeepsParticlesInDomain(t *testing.T) {
	s := NewSystem(5)
	s.InjectUniform(500, 0.5) // hot particles bounce a lot
	f := FocusingField{Strength: 0.1, CX0: 0.5, CY0: 0.5}
	for i := 0; i < 200; i++ {
		s.Step(0.01, f)
		for _, p := range s.Particles {
			if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
				t.Fatalf("escaped: %+v", p)
			}
		}
	}
}

func TestStepAdvancesTime(t *testing.T) {
	s := NewSystem(6)
	s.InjectUniform(1, 0)
	f := FocusingField{}
	s.Step(0.25, f)
	s.Step(0.25, f)
	if math.Abs(s.Time()-0.5) > 1e-12 {
		t.Errorf("Time = %g", s.Time())
	}
}

func TestStepZeroDtPanics(t *testing.T) {
	s := NewSystem(7)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Step(0, FocusingField{})
}

func TestFocusingFieldPullsTowardFocus(t *testing.T) {
	f := FocusingField{Strength: 2, CX0: 0.5, CY0: 0.5}
	ax, ay := f.Accel(0.7, 0.3, 0)
	if ax >= 0 || ay <= 0 {
		t.Errorf("acceleration (%g,%g) not toward focus", ax, ay)
	}
	// At the focus the force vanishes.
	ax, ay = f.Accel(0.5, 0.5, 0)
	if ax != 0 || ay != 0 {
		t.Errorf("nonzero accel at focus: (%g,%g)", ax, ay)
	}
}

func TestFocusingFieldDrift(t *testing.T) {
	f := FocusingField{Strength: 1, CX0: 0.2, CY0: 0.3, DriftX: 0.1, DriftY: 0.2}
	x, y := f.Focus(1.0)
	if math.Abs(x-0.3) > 1e-12 || math.Abs(y-0.5) > 1e-12 {
		t.Errorf("Focus(1) = (%g,%g)", x, y)
	}
}

func TestTrapConfinesCloud(t *testing.T) {
	// A cold cloud in a strong trap must stay near the focus.
	s := NewSystem(8)
	s.InjectGaussian(500, 0.5, 0.5, 0.02, 0.01)
	f := FocusingField{Strength: 10, CX0: 0.5, CY0: 0.5}
	for i := 0; i < 300; i++ {
		s.Step(0.005, f)
	}
	if sp := s.Spread(); sp > 0.1 {
		t.Errorf("cloud spread to %g under strong trap", sp)
	}
}

func TestFreeStreamingSpreads(t *testing.T) {
	s := NewSystem(9)
	s.InjectGaussian(2000, 0.5, 0.5, 0.01, 0.1)
	before := s.Spread()
	for i := 0; i < 50; i++ {
		s.Step(0.01, FocusingField{}) // no force
	}
	if after := s.Spread(); after <= before {
		t.Errorf("free cloud did not spread: %g -> %g", before, after)
	}
}

func TestCountPer(t *testing.T) {
	s := NewSystem(10)
	s.InjectUniform(1000, 0)
	counts := s.CountPer(2, func(x, y float64) int {
		if x < 0.5 {
			return 0
		}
		return 1
	})
	if counts[0]+counts[1] != 1000 {
		t.Fatalf("counts %v do not sum to population", counts)
	}
	if counts[0] < 350 || counts[0] > 650 {
		t.Errorf("half-domain count %d suspicious", counts[0])
	}
}

func TestCountPerBadClassifierPanics(t *testing.T) {
	s := NewSystem(11)
	s.InjectUniform(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.CountPer(1, func(x, y float64) int { return 5 })
}

func TestReflect(t *testing.T) {
	x, v := -0.1, -1.0
	reflect(&x, &v)
	if x != 0.1 || v != 1.0 {
		t.Errorf("reflect low: x=%g v=%g", x, v)
	}
	x, v = 1.3, 0.5
	reflect(&x, &v)
	if math.Abs(x-0.7) > 1e-12 || v != -0.5 {
		t.Errorf("reflect high: x=%g v=%g", x, v)
	}
	// Multiple bounces converge into the domain.
	x, v = 2.7, 1.0
	reflect(&x, &v)
	if x < 0 || x > 1 {
		t.Errorf("multi-bounce left x=%g", x)
	}
}

func TestSpreadEmptyAndSingle(t *testing.T) {
	s := NewSystem(12)
	if s.Spread() != 0 {
		t.Error("spread of empty system nonzero")
	}
	s.InjectDisk(1, 0.5, 0.5, 0, 0)
	if s.Spread() != 0 {
		t.Error("spread of single particle nonzero")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, b := NewSystem(42), NewSystem(42)
	a.InjectUniform(100, 0.1)
	b.InjectUniform(100, 0.1)
	f := FocusingField{Strength: 1, CX0: 0.5, CY0: 0.5}
	for i := 0; i < 20; i++ {
		a.Step(0.01, f)
		b.Step(0.01, f)
	}
	for i := range a.Particles {
		if a.Particles[i] != b.Particles[i] {
			t.Fatal("same seed diverged")
		}
	}
}
