package sim

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"temperedlb/internal/core"
	"temperedlb/internal/empire"
	"temperedlb/internal/lb"
	"temperedlb/internal/lb/greedy"
	"temperedlb/internal/lb/tempered"
)

func quickTweak(c core.Config) core.Config {
	c.Trials = 2
	c.Iterations = 3
	c.Rounds = 3
	return c
}

func runSmall(t *testing.T) []*Tracker {
	t.Helper()
	trackers := StandardTrackers(quickTweak)
	if _, err := RunTrackers(empire.Small(), trackers); err != nil {
		t.Fatal(err)
	}
	return trackers
}

// runMedium runs the 64-rank configuration that exhibits the paper's
// quality gaps; cached across tests needing it.
func runMedium(t *testing.T) []*Tracker {
	t.Helper()
	trackers := StandardTrackers(func(c core.Config) core.Config {
		c.Trials, c.Iterations, c.Rounds = 4, 4, 3
		return c
	})
	if _, err := RunTrackers(empire.Medium(), trackers); err != nil {
		t.Fatal(err)
	}
	return trackers
}

func TestStandardTrackersComposition(t *testing.T) {
	trackers := StandardTrackers(nil)
	if len(trackers) != 6 {
		t.Fatalf("%d trackers, want 6", len(trackers))
	}
	if trackers[0].AMT || trackers[0].Strategy != nil {
		t.Error("first tracker must be the SPMD baseline")
	}
	if !trackers[1].AMT || trackers[1].Strategy != nil {
		t.Error("second tracker must be AMT without LB")
	}
	for _, tr := range trackers[2:] {
		if !tr.AMT || tr.Strategy == nil {
			t.Errorf("%s must be an AMT+LB configuration", tr.Name)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	trackers := runMedium(t)
	byName := map[string]*Tracker{}
	for _, tr := range trackers {
		byName[tr.Name] = tr
	}
	spmd := byName["SPMD (no AMT)"]
	noLB := byName["AMT without LB"]
	grape := byName["AMT w/GrapevineLB"]
	tmp := byName["AMT w/TemperedLB"]
	greedyT := byName["AMT w/GreedyLB"]

	// AMT without LB pays the tasking overhead on particle time.
	wantOverhead := 1 + empire.Medium().AMTOverhead
	if r := noLB.Breakdown.TP / spmd.Breakdown.TP; math.Abs(r-wantOverhead) > 0.02 {
		t.Errorf("AMT overhead ratio %g, want ~%g", r, wantOverhead)
	}
	// Every balancer beats no-LB on particle time; TemperedLB beats
	// GrapevineLB (the paper's headline).
	for _, tr := range []*Tracker{grape, tmp, greedyT} {
		if tr.Breakdown.TP >= noLB.Breakdown.TP {
			t.Errorf("%s did not improve on no-LB: %g vs %g", tr.Name, tr.Breakdown.TP, noLB.Breakdown.TP)
		}
	}
	if tmp.Breakdown.TP >= grape.Breakdown.TP {
		t.Errorf("TemperedLB (%g) did not beat GrapevineLB (%g)",
			tmp.Breakdown.TP, grape.Breakdown.TP)
	}
	// Balancers pay a nonzero LB cost; the baselines pay none.
	if spmd.Breakdown.TLB != 0 || noLB.Breakdown.TLB != 0 {
		t.Error("baselines charged t_lb")
	}
	if tmp.Breakdown.TLB <= 0 || greedyT.Breakdown.TLB <= 0 {
		t.Error("balancers not charged t_lb")
	}
}

// TestTemperedLBCostHighest mirrors Fig. 3's t_lb column: with the
// paper's full 10x8 refinement, TemperedLB is the most expensive
// balancer even though its migration volume is modest.
func TestTemperedLBCostHighest(t *testing.T) {
	trackers := []*Tracker{
		{Name: "greedy", AMT: true, Strategy: greedy.New()},
		{Name: "tempered", AMT: true, Strategy: tempered.NewTempered()},
	}
	if _, err := RunTrackers(empire.Medium(), trackers); err != nil {
		t.Fatal(err)
	}
	if trackers[1].Breakdown.TLB <= trackers[0].Breakdown.TLB {
		t.Errorf("TemperedLB t_lb %g <= GreedyLB %g",
			trackers[1].Breakdown.TLB, trackers[0].Breakdown.TLB)
	}
	if trackers[1].Breakdown.TP >= trackers[0].Breakdown.TP*1.5 {
		t.Errorf("TemperedLB particle time %g should be near GreedyLB's %g",
			trackers[1].Breakdown.TP, trackers[0].Breakdown.TP)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	for _, tr := range runSmall(t) {
		sum := tr.Breakdown.TN + tr.Breakdown.TP + tr.Breakdown.TLB
		if math.Abs(sum-tr.Breakdown.TTotal) > 1e-9 {
			t.Errorf("%s: breakdown sums to %g, total %g", tr.Name, sum, tr.Breakdown.TTotal)
		}
		stepSum := 0.0
		for _, v := range tr.Series.StepTime {
			stepSum += v
		}
		if math.Abs(stepSum-tr.Breakdown.TTotal) > 1e-6 {
			t.Errorf("%s: step series sums to %g, total %g", tr.Name, stepSum, tr.Breakdown.TTotal)
		}
	}
}

func TestSeriesLengthsAndBounds(t *testing.T) {
	cfg := empire.Small()
	for _, tr := range runSmall(t) {
		if len(tr.Series.StepTime) != cfg.Steps || len(tr.Series.Imbalance) != cfg.Steps {
			t.Fatalf("%s: series lengths %d/%d, want %d", tr.Name,
				len(tr.Series.StepTime), len(tr.Series.Imbalance), cfg.Steps)
		}
		for s := range tr.Series.MaxLoad {
			if tr.Series.MaxLoad[s] < tr.Series.MinLoad[s] {
				t.Fatalf("%s step %d: max < min", tr.Name, s)
			}
			if tr.Series.MaxLoad[s] < tr.Series.LowerBound[s]-1e-9 {
				t.Fatalf("%s step %d: max load %g below lower bound %g",
					tr.Name, s, tr.Series.MaxLoad[s], tr.Series.LowerBound[s])
			}
			if tr.Series.Imbalance[s] < 0 {
				t.Fatalf("%s step %d: negative imbalance", tr.Name, s)
			}
		}
	}
}

func TestLBReducesImbalanceSeries(t *testing.T) {
	trackers := runSmall(t)
	var noLB, tmp *Tracker
	for _, tr := range trackers {
		switch tr.Name {
		case "AMT without LB":
			noLB = tr
		case "AMT w/TemperedLB":
			tmp = tr
		}
	}
	// Compare time-averaged imbalance after the first LB step.
	avg := func(xs []float64) float64 {
		sum := 0.0
		for _, x := range xs[10:] {
			sum += x
		}
		return sum / float64(len(xs)-10)
	}
	if avg(tmp.Series.Imbalance) >= avg(noLB.Series.Imbalance)/2 {
		t.Errorf("TemperedLB average I %g vs no-LB %g: too weak",
			avg(tmp.Series.Imbalance), avg(noLB.Series.Imbalance))
	}
}

func TestOrderingTrackers(t *testing.T) {
	trackers := OrderingTrackers(quickTweak)
	if len(trackers) != 3 {
		t.Fatalf("%d ordering trackers", len(trackers))
	}
	if _, err := RunTrackers(empire.Small(), trackers); err != nil {
		t.Fatal(err)
	}
	for _, tr := range trackers {
		if tr.Breakdown.TP <= 0 {
			t.Errorf("%s recorded no particle time", tr.Name)
		}
		if !strings.Contains(tr.Name, "TemperedLB/") {
			t.Errorf("unexpected name %s", tr.Name)
		}
	}
}

func TestLBStatsAccumulate(t *testing.T) {
	cfg := empire.Small()
	tr := &Tracker{Name: "x", AMT: true, Strategy: greedy.New()}
	if _, err := RunTrackers(cfg, []*Tracker{tr}); err != nil {
		t.Fatal(err)
	}
	wantInvocs := 0
	for s := 1; s <= cfg.Steps; s++ {
		if cfg.LBDue(s) {
			wantInvocs++
		}
	}
	if tr.LBStats.Invocations != wantInvocs {
		t.Errorf("invocations %d, want %d", tr.LBStats.Invocations, wantInvocs)
	}
	if tr.LBStats.MovedTasks <= 0 || tr.LBStats.MovedLoad <= 0 {
		t.Errorf("no movement recorded: %+v", tr.LBStats)
	}
}

func TestHierScheduleExtraInvocation(t *testing.T) {
	cfg := empire.Small()
	plain := &Tracker{Name: "plain", AMT: true, Strategy: greedy.New()}
	sched := &Tracker{Name: "sched", AMT: true, Strategy: greedy.New(), HierSchedule: true}
	if _, err := RunTrackers(cfg, []*Tracker{plain, sched}); err != nil {
		t.Fatal(err)
	}
	if sched.LBStats.Invocations != plain.LBStats.Invocations+1 {
		t.Errorf("HierSchedule invocations %d, want %d+1",
			sched.LBStats.Invocations, plain.LBStats.Invocations)
	}
}

func TestCostModelComposition(t *testing.T) {
	cm := CostModel{PerMessage: 1, PerEpoch: 10, PerMovedLoad: 100, Fixed: 5}
	plan := &lb.Plan{Messages: 20, Epochs: 2, MovedLoad: 3}
	got := cm.Invocation(plan, 10)
	want := 5.0 + 10*2 + 1*20/10.0 + 100*3/10.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Invocation = %g, want %g", got, want)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	trackers := runSmall(t)
	var b strings.Builder
	RenderFig2(&b, trackers)
	RenderFig3(&b, trackers)
	RenderLBStats(&b, trackers)
	RenderFig4a(&b, trackers, 20)
	RenderFig4b(&b, trackers, 20)
	RenderFig4c(&b, trackers, 20)
	RenderFig4d(&b, trackers, 20)
	out := b.String()
	for _, want := range []string{"Fig. 2", "Fig. 3", "Fig. 4a", "Fig. 4b", "Fig. 4c", "Fig. 4d", "speedup", "t_lb", "moved-load"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func TestNewExperimentBadConfig(t *testing.T) {
	cfg := empire.Small()
	cfg.Steps = 0
	if _, err := NewExperiment(cfg, DefaultCostModel(), nil); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRebalanceReseedsStrategy(t *testing.T) {
	cfg := empire.Small()
	strat := tempered.New(quickTweak(core.Tempered()))
	seedBefore := strat.Config().Seed
	tr := &Tracker{Name: "x", AMT: true, Strategy: strat}
	if _, err := RunTrackers(cfg, []*Tracker{tr}); err != nil {
		t.Fatal(err)
	}
	if strat.Config().Seed == seedBefore {
		t.Error("strategy seed never refreshed")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	trackers := runSmall(t)
	dir := t.TempDir()
	if err := WriteSeriesCSV(dir, trackers); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig4a.csv", "fig4b.csv", "fig4c.csv", "breakdown.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		switch name {
		case "breakdown.csv":
			if lines != len(trackers)+1 {
				t.Errorf("%s has %d lines, want %d", name, lines, len(trackers)+1)
			}
		default:
			if lines != empire.Small().Steps+1 {
				t.Errorf("%s has %d lines, want %d", name, lines, empire.Small().Steps+1)
			}
		}
		if !strings.Contains(string(data), "SPMD (no AMT)") {
			t.Errorf("%s missing config name", name)
		}
	}
}

func TestWriteSeriesCSVNoTrackers(t *testing.T) {
	if err := WriteSeriesCSV(t.TempDir(), nil); err == nil {
		t.Error("expected error with no trackers")
	}
}

func TestPlotsRender(t *testing.T) {
	trackers := runSmall(t)
	var b strings.Builder
	PlotStepTime(&b, trackers, 60, 10)
	PlotImbalance(&b, trackers, 60, 10)
	out := b.String()
	if !strings.Contains(out, "Fig. 4a (ASCII)") || !strings.Contains(out, "Fig. 4c (ASCII)") {
		t.Error("plot titles missing")
	}
	if !strings.Contains(out, "a=SPMD (no AMT)") {
		t.Error("legend missing")
	}
}
