package sim

import (
	"fmt"

	"temperedlb/internal/core"
	"temperedlb/internal/empire"
	"temperedlb/internal/exper"
	"temperedlb/internal/lb"
	"temperedlb/internal/lb/hier"
	"temperedlb/internal/mesh"
	"temperedlb/internal/obs"
	"temperedlb/internal/stats"
)

// CostModel prices a load balancing invocation in virtual seconds.
type CostModel struct {
	// PerMessage is the cost of one algorithm message on the critical
	// path; total messages are assumed spread across the ranks.
	PerMessage float64
	// PerEpoch is the latency of one sequential communication phase
	// (epoch under termination detection, gather/scatter round, tree
	// level); it is what makes TemperedLB's 10×8 refinement the most
	// expensive balancer in Fig. 3 despite its modest migration volume.
	PerEpoch float64
	// PerMovedLoad charges migration volume: moving a task costs this
	// factor times its instrumented load (task state scales with the
	// particles it carries), spread across ranks.
	PerMovedLoad float64
	// Fixed is the per-invocation constant (allreduce, RDMA buffer
	// resizing).
	Fixed float64
}

// DefaultCostModel matches the paper's t_lb magnitudes: a few hundred
// milliseconds per invocation, with the refinement epochs dominating
// TemperedLB and migration volume dominating GreedyLB.
func DefaultCostModel() CostModel {
	return CostModel{PerMessage: 2.0e-5, PerEpoch: 5.0e-3, PerMovedLoad: 0.5, Fixed: 0.25}
}

// Invocation returns the virtual time charged for one LB run: the
// per-phase latencies, the algorithm's message traffic and the
// migration volume (both spread across the ranks), plus the fixed
// per-invocation overhead.
func (c CostModel) Invocation(plan *lb.Plan, numRanks int) float64 {
	p := float64(numRanks)
	return c.Fixed + c.PerEpoch*float64(plan.Epochs) +
		c.PerMessage*float64(plan.Messages)/p + c.PerMovedLoad*plan.MovedLoad/p
}

// Breakdown is the Fig. 3 row: non-particle, particle, LB, and total
// virtual time.
type Breakdown struct {
	TN, TP, TLB, TTotal float64
}

// Series holds the per-step observables of Fig. 4.
type Series struct {
	// StepTime is the full step time (Fig. 4a).
	StepTime []float64
	// MaxLoad, MinLoad and LowerBound are the per-rank task load extrema
	// and the achievable lower bound (Fig. 4b).
	MaxLoad, MinLoad, LowerBound []float64
	// Imbalance is I on the per-rank particle task loads (Fig. 4c).
	Imbalance []float64
}

// Tracker accounts one configuration (one bar of Fig. 2) as the shared
// physics advances.
type Tracker struct {
	// Name labels the configuration.
	Name string
	// Strategy is the balancer; nil disables LB.
	Strategy lb.Strategy
	// AMT enables overdecomposition: colors are migratable and particle
	// work pays the tasking overhead. SPMD keeps the static mapping.
	AMT bool
	// HierSchedule applies the paper's special HierLB schedule:
	// load-intensive tasks preferred at step 2, lightweight at step 4.
	HierSchedule bool
	// Stream, when non-nil, receives one frame per simulation step with
	// the tracker's per-rank loads and cumulative LB accounting; frames
	// carry the tracker's Name as their source. Trackers advance
	// concurrently within a step, so sharing one stream interleaves
	// sources (Publish is thread-safe); per-step frame order across
	// trackers is scheduling-dependent, per-tracker order is not.
	Stream *obs.Stream

	Breakdown Breakdown
	Series    Series

	// LBStats aggregates the balancer's work across all invocations.
	LBStats LBStats

	assign   *core.Assignment
	overhead float64
	cost     CostModel
	lbSeq    int64
}

// LBStats totals the balancing activity of one configuration.
type LBStats struct {
	Invocations int
	Messages    int
	MovedTasks  int
	MovedLoad   float64
}

// Experiment advances one shared EMPIRE-like physics run while every
// tracker consumes the same per-step color loads — the balancers change
// placement, never the physics, so all configurations see identical
// workloads (as on the real machine).
type Experiment struct {
	App      *empire.App
	Trackers []*Tracker
	// Workers caps the goroutines advancing trackers within each step:
	// 0 means GOMAXPROCS, 1 runs the trackers serially inline. Any value
	// produces identical results — each tracker owns its assignment and
	// strategy, and the shared per-step loads are read-only.
	Workers int
	cost    CostModel
}

// NewExperiment builds the application and wires the trackers.
func NewExperiment(cfg empire.Config, cost CostModel, trackers []*Tracker) (*Experiment, error) {
	app, err := empire.NewApp(cfg)
	if err != nil {
		return nil, err
	}
	numRanks := cfg.NumRanks()
	numColors := app.Coloring.NumColors()
	for _, t := range trackers {
		t.assign = core.NewAssignment(numRanks)
		for c := 0; c < numColors; c++ {
			t.assign.Add(0, app.Coloring.HomeRank(mesh.ColorID(c)))
		}
		t.overhead = 1
		if t.AMT {
			t.overhead = 1 + cfg.AMTOverhead
		}
		t.cost = cost
	}
	return &Experiment{App: app, Trackers: trackers, cost: cost}, nil
}

// Run advances the configured number of steps. The trackers are
// independent consumers of the shared per-step loads, so within each
// step they advance concurrently on the exper worker pool, bounded by
// e.Workers.
func (e *Experiment) Run() error {
	cfg := e.App.Cfg
	errs := make([]error, len(e.Trackers))
	for s := 1; s <= cfg.Steps; s++ {
		counts := e.App.Step()
		loads := e.App.ColorLoads(counts)
		tn := e.App.NonParticleTimePerStep()
		if s%cfg.LBPeriod == 0 {
			tn += cfg.DiagCost // physics diagnostics share the interval
		}
		exper.Run(len(e.Trackers), e.Workers, func(i int) {
			t := e.Trackers[i]
			if err := t.step(s, cfg, loads, tn); err != nil && errs[i] == nil {
				errs[i] = fmt.Errorf("sim: tracker %s: %w", t.Name, err)
			}
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// step charges one timestep to the tracker.
func (t *Tracker) step(stepNum int, cfg empire.Config, colorLoads []float64, tn float64) error {
	for c, l := range colorLoads {
		t.assign.SetLoad(core.TaskID(c), l)
	}
	rankLoads := t.assign.RankLoads()
	maxL, minL := 0.0, rankLoads[0]
	for _, l := range rankLoads {
		if l > maxL {
			maxL = l
		}
		if l < minL {
			minL = l
		}
	}
	tp := maxL * t.overhead

	// The paper runs HierLB twice early (steps 2 and 4, with different
	// task preferences) before settling on the shared 100-step interval.
	lbDue := cfg.LBDue(stepNum) || (t.HierSchedule && stepNum == 4)
	tlb := 0.0
	if t.AMT && t.Strategy != nil && lbDue {
		plan, err := t.rebalance(stepNum)
		if err != nil {
			return err
		}
		plan.Apply(t.assign)
		tlb = t.cost.Invocation(plan, t.assign.NumRanks())
		t.LBStats.Invocations++
		t.LBStats.Messages += plan.Messages
		t.LBStats.MovedTasks += plan.MovedTasks()
		t.LBStats.MovedLoad += plan.MovedLoad
	}

	t.Breakdown.TN += tn
	t.Breakdown.TP += tp
	t.Breakdown.TLB += tlb
	t.Breakdown.TTotal += tn + tp + tlb

	t.Series.StepTime = append(t.Series.StepTime, tn+tp+tlb)
	t.Series.MaxLoad = append(t.Series.MaxLoad, maxL*t.overhead)
	t.Series.MinLoad = append(t.Series.MinLoad, minL*t.overhead)
	ave := t.assign.AveLoad()
	t.Series.LowerBound = append(t.Series.LowerBound,
		stats.LowerBoundMax(ave, t.assign.MaxTaskLoad())*t.overhead)
	t.Series.Imbalance = append(t.Series.Imbalance, t.assign.Imbalance())

	if t.Stream != nil {
		f := obs.Snapshot{
			Source: t.Name, Phase: "step", Step: stepNum,
			Loads:        rankLoads, // fresh copy from RankLoads above
			TransferMsgs: int64(t.LBStats.Messages),
			Migrations:   int64(t.LBStats.MovedTasks),
			IterMs:       (tn + tp + tlb) * 1e3,
		}
		f.FillLoadStats()
		t.Stream.Publish(f)
	}
	return nil
}

// rebalance runs the strategy, applying the HierLB special schedule and
// refreshing randomized strategies' seeds.
func (t *Tracker) rebalance(stepNum int) (*lb.Plan, error) {
	t.lbSeq++
	if r, ok := t.Strategy.(lb.Reseeder); ok {
		r.Reseed(t.lbSeq * 7919)
	}
	if t.HierSchedule {
		if h, ok := t.Strategy.(*hier.Strategy); ok {
			switch stepNum {
			case 2:
				h.Preference = hier.PreferHeavy
			case 4:
				h.Preference = hier.PreferLight
			default:
				h.Preference = hier.PreferBestFit
			}
		}
	}
	return t.Strategy.Rebalance(t.assign)
}

// Assignment exposes the tracker's current color→rank mapping for
// inspection in tests.
func (t *Tracker) Assignment() *core.Assignment { return t.assign }
