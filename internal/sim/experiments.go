package sim

import (
	"fmt"
	"io"

	"temperedlb/internal/core"
	"temperedlb/internal/empire"
	"temperedlb/internal/lb/greedy"
	"temperedlb/internal/lb/hier"
	"temperedlb/internal/lb/tempered"
	"temperedlb/internal/viz"
)

// StandardTrackers returns the five configurations of Fig. 2:
// SPMD (no AMT), AMT without LB, AMT w/GrapevineLB, AMT w/GreedyLB,
// AMT w/HierLB, AMT w/TemperedLB. tweak, when non-nil, adjusts the
// tempered-family configurations (e.g. fewer trials for quick runs).
func StandardTrackers(tweak func(core.Config) core.Config) []*Tracker {
	adjust := func(cfg core.Config) core.Config {
		if tweak != nil {
			return tweak(cfg)
		}
		return cfg
	}
	return []*Tracker{
		{Name: "SPMD (no AMT)"},
		{Name: "AMT without LB", AMT: true},
		{Name: "AMT w/GrapevineLB", AMT: true, Strategy: tempered.New(adjust(core.Grapevine()))},
		{Name: "AMT w/GreedyLB", AMT: true, Strategy: greedy.New()},
		{Name: "AMT w/HierLB", AMT: true, Strategy: hier.New(8), HierSchedule: true},
		{Name: "AMT w/TemperedLB", AMT: true, Strategy: tempered.New(adjust(core.Tempered()))},
	}
}

// OrderingTrackers returns the Fig. 4d configurations: TemperedLB with
// the three traversal orderings of §V-E.
func OrderingTrackers(tweak func(core.Config) core.Config) []*Tracker {
	mk := func(ord core.Ordering) *Tracker {
		cfg := core.Tempered()
		cfg.Order = ord
		if tweak != nil {
			cfg = tweak(cfg)
		}
		return &Tracker{
			Name:     "TemperedLB/" + ord.String(),
			AMT:      true,
			Strategy: tempered.New(cfg),
		}
	}
	return []*Tracker{
		mk(core.OrderLoadIntensive),
		mk(core.OrderFewestMigrations),
		mk(core.OrderLightest),
	}
}

// RunTrackers builds the experiment and runs it to completion with the
// default worker count (GOMAXPROCS).
func RunTrackers(cfg empire.Config, trackers []*Tracker) (*Experiment, error) {
	return RunTrackersWith(cfg, trackers, 0)
}

// RunTrackersWith is RunTrackers with an explicit tracker-worker cap
// (0 means GOMAXPROCS, 1 runs serially). The results are identical at
// any worker count; the knob exists for the cmd/empire -workers flag
// and the serial-vs-parallel determinism tests.
func RunTrackersWith(cfg empire.Config, trackers []*Tracker, workers int) (*Experiment, error) {
	e, err := NewExperiment(cfg, DefaultCostModel(), trackers)
	if err != nil {
		return nil, err
	}
	e.Workers = workers
	if err := e.Run(); err != nil {
		return nil, err
	}
	return e, nil
}

// baseline locates the SPMD tracker for speedup computation (falls back
// to the first tracker).
func baseline(trackers []*Tracker) *Tracker {
	for _, t := range trackers {
		if !t.AMT && t.Strategy == nil {
			return t
		}
	}
	return trackers[0]
}

// RenderFig2 writes the overall-performance comparison: the stacked
// particle/non-particle totals and the speedup multipliers against the
// SPMD baseline that annotate the bars of Fig. 2.
func RenderFig2(w io.Writer, trackers []*Tracker) {
	base := baseline(trackers)
	fmt.Fprintf(w, "Fig. 2: overall performance (virtual seconds)\n")
	fmt.Fprintf(w, "%-22s %10s %10s %10s %10s %10s\n",
		"Configuration", "particle", "non-part.", "total", "speedup", "p-speedup")
	for _, t := range trackers {
		fmt.Fprintf(w, "%-22s %10.0f %10.0f %10.0f %9.2fx %9.2fx\n",
			t.Name, t.Breakdown.TP, t.Breakdown.TN+t.Breakdown.TLB, t.Breakdown.TTotal,
			base.Breakdown.TTotal/t.Breakdown.TTotal,
			base.Breakdown.TP/t.Breakdown.TP)
	}
}

// RenderFig3 writes the execution-time breakdown table of Fig. 3.
func RenderFig3(w io.Writer, trackers []*Tracker) {
	fmt.Fprintf(w, "Fig. 3: execution time breakdown (virtual seconds)\n")
	fmt.Fprintf(w, "%-22s %8s %8s %8s %8s\n", "Type", "t_n", "t_p", "t_lb", "t_total")
	for _, t := range trackers {
		fmt.Fprintf(w, "%-22s %8.0f %8.0f %8.0f %8.0f\n",
			t.Name, t.Breakdown.TN, t.Breakdown.TP, t.Breakdown.TLB, t.Breakdown.TTotal)
	}
}

// RenderLBStats writes the per-configuration balancing activity totals
// (invocations, messages, migrations) behind the t_lb column.
func RenderLBStats(w io.Writer, trackers []*Tracker) {
	fmt.Fprintf(w, "LB activity totals\n")
	fmt.Fprintf(w, "%-22s %8s %12s %12s %12s\n", "Configuration", "invocs", "messages", "moved-tasks", "moved-load")
	for _, t := range trackers {
		fmt.Fprintf(w, "%-22s %8d %12d %12d %12.2f\n",
			t.Name, t.LBStats.Invocations, t.LBStats.Messages, t.LBStats.MovedTasks, t.LBStats.MovedLoad)
	}
}

// RenderFig4a writes the per-timestep full-step time series, sampled
// every `every` steps to keep the output readable.
func RenderFig4a(w io.Writer, trackers []*Tracker, every int) {
	fmt.Fprintf(w, "Fig. 4a: full step time per timestep (virtual seconds)\n")
	renderSeries(w, trackers, every, func(t *Tracker) []float64 { return t.Series.StepTime })
}

// RenderFig4b writes the per-rank task load extrema and the achievable
// lower bound for the LB-enabled configurations.
func RenderFig4b(w io.Writer, trackers []*Tracker, every int) {
	fmt.Fprintf(w, "Fig. 4b: per-rank task load extrema over time\n")
	var cols []*Tracker
	for _, t := range trackers {
		if t.AMT && t.Strategy != nil {
			cols = append(cols, t)
		}
	}
	if len(cols) == 0 {
		cols = trackers
	}
	fmt.Fprintf(w, "%-6s", "step")
	for _, t := range cols {
		fmt.Fprintf(w, " %14s-max %14s-min", short(t.Name), short(t.Name))
	}
	fmt.Fprintf(w, " %18s\n", "lower-bound(max)")
	n := len(cols[0].Series.MaxLoad)
	for s := 0; s < n; s += every {
		fmt.Fprintf(w, "%-6d", s+1)
		for _, t := range cols {
			fmt.Fprintf(w, " %18.4f %18.4f", t.Series.MaxLoad[s], t.Series.MinLoad[s])
		}
		fmt.Fprintf(w, " %18.4f\n", cols[len(cols)-1].Series.LowerBound[s])
	}
}

// RenderFig4c writes the imbalance metric over time per configuration.
func RenderFig4c(w io.Writer, trackers []*Tracker, every int) {
	fmt.Fprintf(w, "Fig. 4c: imbalance metric I over time\n")
	renderSeries(w, trackers, every, func(t *Tracker) []float64 { return t.Series.Imbalance })
}

// RenderFig4d writes the particle-update comparison of the traversal
// orderings: totals plus the sampled per-step series.
func RenderFig4d(w io.Writer, trackers []*Tracker, every int) {
	fmt.Fprintf(w, "Fig. 4d: particle update time by traversal ordering\n")
	for _, t := range trackers {
		fmt.Fprintf(w, "%-32s total particle time %10.0f\n", t.Name, t.Breakdown.TP)
	}
	renderSeries(w, trackers, every, func(t *Tracker) []float64 { return t.Series.MaxLoad })
}

func renderSeries(w io.Writer, trackers []*Tracker, every int, get func(*Tracker) []float64) {
	if every < 1 {
		every = 1
	}
	fmt.Fprintf(w, "%-6s", "step")
	for _, t := range trackers {
		fmt.Fprintf(w, " %18s", short(t.Name))
	}
	fmt.Fprintln(w)
	n := len(get(trackers[0]))
	for s := 0; s < n; s += every {
		fmt.Fprintf(w, "%-6d", s+1)
		for _, t := range trackers {
			fmt.Fprintf(w, " %18.4f", get(t)[s])
		}
		fmt.Fprintln(w)
	}
}

// short abbreviates configuration names for column headers.
func short(name string) string {
	if len(name) <= 18 {
		return name
	}
	return name[len(name)-18:]
}

// PlotStepTime renders an ASCII chart of the per-step full step time
// (Fig. 4a's visual form) for the terminal.
func PlotStepTime(w io.Writer, trackers []*Tracker, width, height int) {
	plotSeries(w, "Fig. 4a (ASCII): full step time per timestep", trackers, width, height,
		func(t *Tracker) []float64 { return t.Series.StepTime })
}

// PlotImbalance renders an ASCII chart of the imbalance series
// (Fig. 4c's visual form).
func PlotImbalance(w io.Writer, trackers []*Tracker, width, height int) {
	plotSeries(w, "Fig. 4c (ASCII): imbalance metric I over time", trackers, width, height,
		func(t *Tracker) []float64 { return t.Series.Imbalance })
}

func plotSeries(w io.Writer, title string, trackers []*Tracker, width, height int, get func(*Tracker) []float64) {
	names := make([]string, len(trackers))
	series := make([][]float64, len(trackers))
	for i, t := range trackers {
		names[i] = t.Name
		series[i] = get(t)
	}
	viz.Plot(w, title, names, series, width, height)
}
