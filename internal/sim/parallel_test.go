package sim

import (
	"os"
	"path/filepath"
	"testing"

	"temperedlb/internal/core"
	"temperedlb/internal/empire"
)

// runCSV runs the standard configurations at the given worker count and
// returns the contents of every CSV file WriteSeriesCSV produces.
func runCSV(t *testing.T, workers int) map[string][]byte {
	t.Helper()
	cfg := empire.Small()
	cfg.Steps = 12
	tweak := func(c core.Config) core.Config {
		c.Trials, c.Iterations = 2, 3
		return c
	}
	trackers := StandardTrackers(tweak)
	if _, err := RunTrackersWith(cfg, trackers, workers); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteSeriesCSV(dir, trackers); err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, name := range []string{"fig4a.csv", "fig4b.csv", "fig4c.csv", "breakdown.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatalf("%s is empty", name)
		}
		out[name] = b
	}
	return out
}

// TestCSVSerialVsParallelBitIdentical asserts that running the trackers
// serially and on 4 workers produces byte-for-byte identical CSV dumps:
// the per-step fan-out changes scheduling, never results.
func TestCSVSerialVsParallelBitIdentical(t *testing.T) {
	serial := runCSV(t, 1)
	parallel := runCSV(t, 4)
	for name, want := range serial {
		if got := parallel[name]; string(got) != string(want) {
			t.Errorf("%s differs between serial and 4 workers:\n--- serial ---\n%s--- parallel ---\n%s",
				name, want, got)
		}
	}
}
