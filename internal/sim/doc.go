// Package sim is the virtual-time execution model and experiment harness
// that regenerates the paper's EMPIRE evaluation (Figs. 2, 3, 4a–d). A
// phase's elapsed time is the maximum per-rank task load — ranks
// synchronize at phase end (§III-C) — plus the balanced non-particle
// time; AMT configurations pay the tasking overhead of Fig. 2 on
// particle work and are charged an LB cost model (algorithm messages
// plus migration volume) whenever the balancer runs.
//
// # Concurrency
//
// One goroutine owns the Experiment and steps the shared physics.
// Within each step the trackers are independent consumers of the same
// read-only color loads, so they advance concurrently on the exper
// worker pool, bounded by Experiment.Workers (0 = GOMAXPROCS, 1 =
// serial). Each Tracker — its assignment, strategy and series — is
// touched by exactly one goroutine per step, and every randomized
// strategy is reseeded deterministically per invocation, so the results
// (and the WriteSeriesCSV dumps) are byte-identical at any worker
// count.
package sim
