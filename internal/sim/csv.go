package sim

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteSeriesCSV dumps the trackers' per-step series as CSV files under
// dir — fig4a.csv (full step time), fig4b.csv (per-rank task load
// extrema and lower bound), fig4c.csv (imbalance) — plus breakdown.csv
// with the Fig. 3 totals, for plotting outside this repository.
func WriteSeriesCSV(dir string, trackers []*Tracker) error {
	if len(trackers) == 0 {
		return fmt.Errorf("sim: no trackers to dump")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeSeries(filepath.Join(dir, "fig4a.csv"), trackers,
		func(t *Tracker) []float64 { return t.Series.StepTime },
		func(t *Tracker) string { return t.Name }); err != nil {
		return err
	}
	if err := writeFig4b(filepath.Join(dir, "fig4b.csv"), trackers); err != nil {
		return err
	}
	if err := writeSeries(filepath.Join(dir, "fig4c.csv"), trackers,
		func(t *Tracker) []float64 { return t.Series.Imbalance },
		func(t *Tracker) string { return t.Name }); err != nil {
		return err
	}
	return writeBreakdown(filepath.Join(dir, "breakdown.csv"), trackers)
}

func writeSeries(path string, trackers []*Tracker, get func(*Tracker) []float64, name func(*Tracker) string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"step"}
	for _, t := range trackers {
		header = append(header, name(t))
	}
	if err := w.Write(header); err != nil {
		return err
	}
	n := len(get(trackers[0]))
	for s := 0; s < n; s++ {
		row := []string{strconv.Itoa(s + 1)}
		for _, t := range trackers {
			row = append(row, formatF(get(t)[s]))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeFig4b(path string, trackers []*Tracker) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"step"}
	for _, t := range trackers {
		header = append(header, t.Name+" max", t.Name+" min", t.Name+" lower-bound")
	}
	if err := w.Write(header); err != nil {
		return err
	}
	n := len(trackers[0].Series.MaxLoad)
	for s := 0; s < n; s++ {
		row := []string{strconv.Itoa(s + 1)}
		for _, t := range trackers {
			row = append(row, formatF(t.Series.MaxLoad[s]), formatF(t.Series.MinLoad[s]), formatF(t.Series.LowerBound[s]))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func writeBreakdown(path string, trackers []*Tracker) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"configuration", "t_n", "t_p", "t_lb", "t_total"}); err != nil {
		return err
	}
	for _, t := range trackers {
		if err := w.Write([]string{
			t.Name, formatF(t.Breakdown.TN), formatF(t.Breakdown.TP),
			formatF(t.Breakdown.TLB), formatF(t.Breakdown.TTotal),
		}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
