package workload

import (
	"math"
	"testing"

	"temperedlb/internal/core"
)

func evolveBase(t *testing.T) *core.Assignment {
	t.Helper()
	a, err := Generate(Spec{
		NumRanks: 8, NumTasks: 100,
		Placement: PlaceUniform, Loads: LoadUniform, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestEvolverFrozen(t *testing.T) {
	a := evolveBase(t)
	e, err := NewEvolver(a, 1.0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), e.Loads()...)
	for p := 0; p < 10; p++ {
		after := e.Step()
		for i := range before {
			if before[i] != after[i] {
				t.Fatal("frozen loads changed")
			}
		}
	}
}

func TestEvolverMeanReverts(t *testing.T) {
	a := evolveBase(t)
	e, err := NewEvolver(a, 0.5, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Long-run average per task should hover near its baseline.
	n := a.NumTasks()
	sums := make([]float64, n)
	const phases = 400
	for p := 0; p < phases; p++ {
		loads := e.Step()
		for i, l := range loads {
			sums[i] += l
		}
	}
	for i := 0; i < n; i++ {
		mean := sums[i] / phases
		base := a.Load(core.TaskID(i))
		if math.Abs(mean-base) > 0.25*base+0.05 {
			t.Fatalf("task %d drifted: mean %g vs baseline %g", i, mean, base)
		}
	}
}

func TestEvolverZeroPersistenceDecorrelates(t *testing.T) {
	a := evolveBase(t)
	e, _ := NewEvolver(a, 0.0, 0.5, 4)
	prev := append([]float64(nil), e.Step()...)
	next := e.Step()
	// Successive deviations should be essentially uncorrelated: compute
	// the sample correlation of (l_t - b) and (l_{t+1} - b).
	var sxy, sxx, syy float64
	for i := range prev {
		b := a.Load(core.TaskID(i))
		x, y := prev[i]-b, next[i]-b
		sxy += x * y
		sxx += x * x
		syy += y * y
	}
	if sxx == 0 || syy == 0 {
		t.Skip("degenerate sample")
	}
	corr := sxy / math.Sqrt(sxx*syy)
	if math.Abs(corr) > 0.35 {
		t.Errorf("rho=0 loads correlated: %g", corr)
	}
}

func TestEvolverPositivityUnderHugeNoise(t *testing.T) {
	a := evolveBase(t)
	e, _ := NewEvolver(a, 0.2, 10, 5)
	for p := 0; p < 100; p++ {
		for _, l := range e.Step() {
			if l <= 0 {
				t.Fatal("non-positive load")
			}
		}
	}
}

func TestEvolverValidatesArgs(t *testing.T) {
	a := evolveBase(t)
	if _, err := NewEvolver(a, -0.1, 0, 1); err == nil {
		t.Error("negative persistence accepted")
	}
	if _, err := NewEvolver(a, 2, 0, 1); err == nil {
		t.Error("persistence > 1 accepted")
	}
	if _, err := NewEvolver(a, 0.5, -0.1, 1); err == nil {
		t.Error("negative noise accepted")
	}
}
