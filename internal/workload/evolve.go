package workload

import (
	"fmt"
	"math/rand"

	"temperedlb/internal/core"
)

// Evolver generates per-phase task loads with controllable persistence,
// for studying the principle of persistence (§III-B of the paper): load
// balancing assumes past phases predict future ones, which holds only
// when loads are correlated across phases.
//
// Loads follow a mean-reverting AR(1) process around each task's
// baseline b_i:
//
//	l_i(t+1) = b_i + rho·(l_i(t) − b_i) + sigma·b_i·eps
//
// with eps ~ N(0,1), clamped at a small positive floor. Persistence=1
// keeps loads frozen; Persistence=0 redraws them every phase.
type Evolver struct {
	persistence float64
	noise       float64
	baseline    []float64
	current     []float64
	rng         *rand.Rand
}

// NewEvolver starts from the assignment's current task loads as
// baselines. persistence must be in [0,1]; noise is the per-phase
// relative perturbation scale.
func NewEvolver(a *core.Assignment, persistence, noise float64, seed int64) (*Evolver, error) {
	if persistence < 0 || persistence > 1 {
		return nil, fmt.Errorf("workload: persistence %g out of [0,1]", persistence)
	}
	if noise < 0 {
		return nil, fmt.Errorf("workload: negative noise %g", noise)
	}
	e := &Evolver{
		persistence: persistence,
		noise:       noise,
		baseline:    make([]float64, a.NumTasks()),
		current:     make([]float64, a.NumTasks()),
		rng:         rand.New(rand.NewSource(seed)),
	}
	for i := range e.baseline {
		e.baseline[i] = a.Load(core.TaskID(i))
		e.current[i] = e.baseline[i]
	}
	return e, nil
}

// Step advances one phase and returns the new per-task loads. The
// returned slice is reused across calls; copy it to retain.
func (e *Evolver) Step() []float64 {
	const floor = 1e-6
	for i := range e.current {
		b := e.baseline[i]
		l := b + e.persistence*(e.current[i]-b) + e.noise*b*e.rng.NormFloat64()
		if l < floor {
			l = floor
		}
		e.current[i] = l
	}
	return e.current
}

// Loads returns the current per-task loads without advancing.
func (e *Evolver) Loads() []float64 { return e.current }
