package workload

import (
	"math"
	"testing"

	"temperedlb/internal/core"
)

func TestVBCaseShape(t *testing.T) {
	spec := VBCase(1)
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRanks() != 4096 || a.NumTasks() != 10000 {
		t.Fatalf("dims: %d ranks %d tasks", a.NumRanks(), a.NumTasks())
	}
	// All tasks on the first 16 ranks.
	for r := 16; r < a.NumRanks(); r++ {
		if a.TaskCount(core.Rank(r)) != 0 {
			t.Fatalf("rank %d unexpectedly holds tasks", r)
		}
	}
	// Initial imbalance near the paper's 280.
	if i0 := a.Imbalance(); i0 < 200 || i0 > 350 {
		t.Errorf("initial imbalance %g, want ~280", i0)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVBCaseMixtureSplitsAroundAverage(t *testing.T) {
	a, err := Generate(VBCase(2))
	if err != nil {
		t.Fatal(err)
	}
	ave := a.AveLoad()
	heavy, light := 0, 0
	for id := 0; id < a.NumTasks(); id++ {
		if a.Load(core.TaskID(id)) > ave {
			heavy++
		} else {
			light++
		}
	}
	// ~20% heavy by construction.
	frac := float64(heavy) / float64(a.NumTasks())
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("heavy fraction %g, want ~0.20", frac)
	}
	// Heavy tasks must be strictly above the average rank load but below
	// 1.6×ave so the relaxed criterion can converge to I < 1.
	for id := 0; id < a.NumTasks(); id++ {
		l := a.Load(core.TaskID(id))
		if l > ave && l > 1.65*ave {
			t.Fatalf("heavy task %d load %g > 1.65·ave %g", id, l, 1.65*ave)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := VBCase(7)
	a1, _ := Generate(s)
	a2, _ := Generate(s)
	if a1.NumTasks() != a2.NumTasks() {
		t.Fatal("task counts differ")
	}
	for id := 0; id < a1.NumTasks(); id++ {
		tid := core.TaskID(id)
		if a1.Load(tid) != a2.Load(tid) || a1.Owner(tid) != a2.Owner(tid) {
			t.Fatalf("task %d differs between identical specs", id)
		}
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	a1, _ := Generate(VBCase(1))
	a2, _ := Generate(VBCase(2))
	diff := false
	for id := 0; id < a1.NumTasks() && !diff; id++ {
		tid := core.TaskID(id)
		if a1.Load(tid) != a2.Load(tid) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical loads")
	}
}

func TestGenerateUniformPlacement(t *testing.T) {
	spec := Spec{NumRanks: 64, NumTasks: 6400, Placement: PlaceUniform, Loads: LoadUnit, Seed: 3}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 64; r++ {
		c := a.TaskCount(core.Rank(r))
		if c < 40 || c > 170 {
			t.Errorf("uniform placement rank %d has %d tasks", r, c)
		}
	}
}

func TestGenerateSkewedPlacement(t *testing.T) {
	spec := Spec{NumRanks: 64, NumTasks: 6400, Placement: PlaceSkewed, Loads: LoadUnit, Seed: 4}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	lowHalf, highHalf := 0, 0
	for r := 0; r < 32; r++ {
		lowHalf += a.TaskCount(core.Rank(r))
	}
	for r := 32; r < 64; r++ {
		highHalf += a.TaskCount(core.Rank(r))
	}
	if lowHalf <= highHalf {
		t.Errorf("skewed placement not skewed: low %d high %d", lowHalf, highHalf)
	}
}

func TestGenerateLoadModels(t *testing.T) {
	for _, lm := range []LoadModel{LoadUnit, LoadUniform, LoadExponential} {
		spec := Spec{NumRanks: 8, NumTasks: 100, Placement: PlaceUniform, Loads: lm, Seed: 5}
		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("model %d: %v", lm, err)
		}
		for id := 0; id < a.NumTasks(); id++ {
			if l := a.Load(core.TaskID(id)); l <= 0 || math.IsNaN(l) {
				t.Fatalf("model %d produced load %g", lm, l)
			}
		}
	}
}

func TestGenerateUnitLoads(t *testing.T) {
	spec := Spec{NumRanks: 4, NumTasks: 10, Placement: PlaceUniform, Loads: LoadUnit, Seed: 6}
	a, _ := Generate(spec)
	for id := 0; id < 10; id++ {
		if a.Load(core.TaskID(id)) != 1 {
			t.Fatal("LoadUnit produced non-unit load")
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{NumRanks: 0, NumTasks: 1},
		{NumRanks: 4, NumTasks: -1},
		{NumRanks: 4, NumTasks: 1, Placement: PlaceClustered, LoadedRanks: 0},
		{NumRanks: 4, NumTasks: 1, Placement: PlaceClustered, LoadedRanks: 5},
		{NumRanks: 4, NumTasks: 1, Placement: PlaceUniform, HeavyFraction: 1.5},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGenerateEmptyWorkload(t *testing.T) {
	spec := Spec{NumRanks: 4, NumTasks: 0, Placement: PlaceUniform, Loads: LoadUnit, Seed: 1}
	a, err := Generate(spec)
	if err != nil || a.NumTasks() != 0 {
		t.Errorf("empty workload: %v tasks=%d", err, a.NumTasks())
	}
}
