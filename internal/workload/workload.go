package workload

import (
	"fmt"
	"math"
	"math/rand"

	"temperedlb/internal/core"
)

// Spec describes a synthetic workload to generate.
type Spec struct {
	// NumRanks is the total number of ranks P.
	NumRanks int
	// NumTasks is the number of migratable tasks.
	NumTasks int
	// Placement selects where tasks initially live.
	Placement Placement
	// LoadedRanks is the number of ranks that initially hold tasks when
	// Placement is PlaceClustered (the paper's case uses 16 of 4096).
	LoadedRanks int
	// Loads selects the task-load distribution.
	Loads LoadModel
	// HeavyFraction is, for LoadMixture, the fraction of tasks whose
	// load exceeds the global average rank load (making them permanently
	// unplaceable under the original criterion).
	HeavyFraction float64
	// Seed drives all random choices.
	Seed int64
}

// Placement selects the initial task→rank mapping.
type Placement int

const (
	// PlaceClustered puts all tasks on the first LoadedRanks ranks,
	// leaving the rest empty — the §V-B case.
	PlaceClustered Placement = iota
	// PlaceUniform scatters tasks uniformly at random over all ranks.
	PlaceUniform
	// PlaceSkewed scatters tasks with probability proportional to
	// rank^(-1/2), a mild power-law hot spot.
	PlaceSkewed
)

// LoadModel selects the task-load distribution.
type LoadModel int

const (
	// LoadUnit gives every task load 1.
	LoadUnit LoadModel = iota
	// LoadUniform draws loads uniformly from (0.5, 1.5).
	LoadUniform
	// LoadExponential draws loads from Exp(1) + 0.01.
	LoadExponential
	// LoadMixture draws a light/heavy mixture calibrated against the
	// average rank load l_ave: light tasks with loads uniform in
	// (0.1, 0.9) and heavy tasks uniform in (1.05, 1.6)·l_ave. Heavy
	// tasks cannot be placed anywhere under the original criterion
	// (their load alone exceeds l_ave), reproducing the §V-B rejection
	// pathology, while remaining light enough that the relaxed criterion
	// can converge to I below 1.
	LoadMixture
)

// VBCase returns the paper's §V-B/§V-D analysis case: 10^4 tasks on 16
// of 2^12 ranks with a light/heavy load mixture tuned so the initial
// imbalance is ≈ 280.
func VBCase(seed int64) Spec {
	return Spec{
		NumRanks:      1 << 12,
		NumTasks:      10_000,
		Placement:     PlaceClustered,
		LoadedRanks:   1 << 4,
		Loads:         LoadMixture,
		HeavyFraction: 0.20,
		Seed:          seed,
	}
}

// Validate reports whether the spec is generable.
func (s Spec) Validate() error {
	switch {
	case s.NumRanks < 1:
		return fmt.Errorf("workload: NumRanks must be >= 1, got %d", s.NumRanks)
	case s.NumTasks < 0:
		return fmt.Errorf("workload: NumTasks must be >= 0, got %d", s.NumTasks)
	case s.Placement == PlaceClustered && (s.LoadedRanks < 1 || s.LoadedRanks > s.NumRanks):
		return fmt.Errorf("workload: LoadedRanks %d out of range [1,%d]", s.LoadedRanks, s.NumRanks)
	case s.HeavyFraction < 0 || s.HeavyFraction > 1:
		return fmt.Errorf("workload: HeavyFraction %g out of [0,1]", s.HeavyFraction)
	}
	return nil
}

// Generate builds the assignment described by the spec.
func Generate(s Spec) (*core.Assignment, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	a := core.NewAssignment(s.NumRanks)

	loads := genLoads(s, rng)
	for i := 0; i < s.NumTasks; i++ {
		a.Add(loads[i], pickRank(s, rng, i))
	}
	return a, nil
}

func genLoads(s Spec, rng *rand.Rand) []float64 {
	loads := make([]float64, s.NumTasks)
	switch s.Loads {
	case LoadUnit:
		for i := range loads {
			loads[i] = 1
		}
	case LoadUniform:
		for i := range loads {
			loads[i] = 0.5 + rng.Float64()
		}
	case LoadExponential:
		for i := range loads {
			loads[i] = rng.ExpFloat64() + 0.01
		}
	case LoadMixture:
		// Calibrate against the average rank load that a light-only
		// workload of unit-mean tasks would produce, then rescale so the
		// heavy class sits strictly above the realized l_ave.
		mixtureLoads(loads, s, rng)
	}
	return loads
}

// mixtureLoads fills loads with the light/heavy mixture. The calibration
// iterates once: draw shapes, compute the implied average rank load,
// then scale heavy tasks to (1.2, 3.0)×l_ave. Because scaling heavy
// tasks changes l_ave, a fixed point is found by solving the linear
// relation exactly instead of iterating.
func mixtureLoads(loads []float64, s Spec, rng *rand.Rand) {
	n := len(loads)
	heavy := make([]bool, n)
	numHeavy := 0
	for i := range loads {
		if rng.Float64() < s.HeavyFraction {
			heavy[i] = true
			numHeavy++
		}
	}
	// Light shapes ~ U(0.1, 0.9), heavy shapes ~ U(1.05, 1.6); heavy
	// tasks get load shape_h · l_ave. With S_l the light sum and S_h the
	// heavy shape sum: total = S_l + S_h·l_ave and l_ave = total/P, so
	// l_ave = S_l / (P − S_h), requiring S_h < P.
	lightSum, heavySum := 0.0, 0.0
	shape := make([]float64, n)
	for i := range loads {
		if heavy[i] {
			shape[i] = 1.05 + 0.55*rng.Float64()
			heavySum += shape[i]
		} else {
			shape[i] = 0.1 + 0.8*rng.Float64()
			lightSum += shape[i]
		}
	}
	p := float64(s.NumRanks)
	ave := lightSum / math.Max(p-heavySum, 1)
	for i := range loads {
		if heavy[i] {
			loads[i] = shape[i] * ave
		} else {
			loads[i] = shape[i]
		}
	}
}

func pickRank(s Spec, rng *rand.Rand, i int) core.Rank {
	switch s.Placement {
	case PlaceClustered:
		return core.Rank(rng.Intn(s.LoadedRanks))
	case PlaceUniform:
		return core.Rank(rng.Intn(s.NumRanks))
	case PlaceSkewed:
		// Probability ∝ 1/sqrt(rank+1) via inverse-CDF of the continuous
		// analogue: F(x) ∝ sqrt(x), so x = u² · P.
		u := rng.Float64()
		r := int(u * u * float64(s.NumRanks))
		if r >= s.NumRanks {
			r = s.NumRanks - 1
		}
		return core.Rank(r)
	default:
		return 0
	}
}
