// Package workload generates synthetic task distributions for exercising
// the load balancers: the paper's §V-B analysis case (10^4 tasks
// clustered on 16 of 4096 ranks with a light/heavy load mixture),
// uniform and clustered distributions, and time-varying load drifts.
//
// # Concurrency
//
// Generate is pure up to its own seeded RNG, which it derives from
// Spec.Seed and owns for the duration of the call — concurrent Generate
// calls (even with identical specs) are safe and deterministic. The
// returned Assignment is exclusively the caller's.
package workload
