// Package lbaf is the Load Balancing Analysis Framework: a deterministic
// harness for exploring, testing and comparing load balancing strategies
// outside the runtime, mirroring the role of the Python LBAF tool the
// paper uses in §V. It drives the core engine over synthetic workloads
// and renders the per-iteration tables of §V-B and §V-D, the
// original-vs-relaxed comparison, and configuration sweeps over the
// algorithm's gossip and refinement knobs.
//
// # Concurrency
//
// The *Parallel runners (RunSweepParallel, RunComparisonOnParallel) fan
// independent configuration runs across the exper worker pool: one
// fresh core.Engine per configuration, all reading one shared
// assignment that Engine.Run never mutates. Because every run draws
// from its own seeded streams, the rendered output is byte-identical at
// any worker count — the serial-vs-parallel tests pin this. Table,
// Sweep and Comparison values are plain data once returned.
package lbaf
