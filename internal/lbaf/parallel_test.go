package lbaf

import (
	"fmt"
	"strings"
	"testing"

	"temperedlb/internal/core"
	"temperedlb/internal/exper"
	"temperedlb/internal/obs"
	"temperedlb/internal/workload"
)

// renderSweep runs a sweep at the given worker count and returns its
// rendered table.
func renderSweep(t *testing.T, workers int) string {
	t.Helper()
	base := core.Tempered()
	base.Trials, base.Iterations = 2, 3
	configs := append(
		GossipSweepConfigs(base, []int{2, 4}, []int{2, 4}),
		RefinementSweepConfigs(base, []int{1, 2}, []int{1, 3})...)
	sw, err := RunSweepParallel("determinism", smallVB(33), configs, workers)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	sw.Render(&b)
	return b.String()
}

// TestSweepSerialVsParallelBitIdentical asserts the runner's core
// promise: fanning the sweep configurations across workers changes
// nothing about the output, byte for byte.
func TestSweepSerialVsParallelBitIdentical(t *testing.T) {
	serial := renderSweep(t, 1)
	for _, workers := range []int{2, 4, 0} {
		if got := renderSweep(t, workers); got != serial {
			t.Fatalf("workers=%d output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}

// TestComparisonSerialVsParallelBitIdentical runs the §V-D comparison
// (original vs relaxed criterion on the identical initial distribution)
// serially and with 4 workers, and requires byte-identical tables.
func TestComparisonSerialVsParallelBitIdentical(t *testing.T) {
	a, err := workload.Generate(smallVB(44))
	if err != nil {
		t.Fatal(err)
	}
	base := smallConfig()
	serial, err := RunComparisonOnParallel(a, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunComparisonOnParallel(a, base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("§V-D comparison differs between serial and 4 workers:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if serial.Relaxed.InitialImbalance <= serial.Relaxed.Rows[len(serial.Relaxed.Rows)-1].Imbalance {
		t.Error("relaxed criterion failed to improve the imbalance")
	}
}

// TestParallelSweepWithObsIsRaceFree drives a parallel sweep with a
// shared tracer and shared metrics attached to every configuration.
// Under `go test -race` (make race / make check) this proves the obs
// path is safe to thread through concurrent engine runs.
func TestParallelSweepWithObsIsRaceFree(t *testing.T) {
	rec := obs.NewRecorder()
	m := obs.NewMetrics()
	base := core.Tempered()
	base.Trials, base.Iterations = 1, 2
	configs := GossipSweepConfigs(base, []int{2, 3, 4}, []int{2, 3})
	a, err := workload.Generate(smallVB(55))
	if err != nil {
		t.Fatal(err)
	}
	tables, err := exper.MapErr(len(configs), 8, func(i int) (Table, error) {
		cfg := configs[i].Cfg
		cfg.Tracer = rec // shared: Recorder shards by rank and is Emit-safe
		tab, err := RunIterationTableOn(configs[i].Label, a, cfg)
		if err != nil {
			return Table{}, err
		}
		m.Counter("sweep_points_total").Inc()
		m.Counter("sweep_transfers_total").Add(int64(sumTransfers(tab)))
		m.Histogram("sweep_final_imbalance", []float64{1, 10, 100}).Observe(i, finalImbalance(tab))
		return tab, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("sweep_points_total").Value(); got != int64(len(configs)) {
		t.Fatalf("metrics counted %d points, want %d", got, len(configs))
	}
	// Every table emits LBBegin/LBEnd plus per-iteration begin/end pairs.
	wantEvents := len(configs) * (2 + 2*base.Iterations)
	if got := len(rec.Events()); got != wantEvents {
		t.Fatalf("recorder holds %d events, want %d", got, wantEvents)
	}
	for i, tab := range tables {
		if tab.Title != configs[i].Label {
			t.Fatalf("table %d out of order: %q", i, tab.Title)
		}
	}
}

func sumTransfers(t Table) int {
	n := 0
	for _, r := range t.Rows {
		n += r.Transfers
	}
	return n
}

func finalImbalance(t Table) float64 {
	if len(t.Rows) == 0 {
		return t.InitialImbalance
	}
	return t.Rows[len(t.Rows)-1].Imbalance
}

// TestSweepConfigNamedType pins the exported configuration type so the
// grid builders and RunSweep compose without anonymous structs.
func TestSweepConfigNamedType(t *testing.T) {
	grid := GossipSweepConfigs(core.Tempered(), []int{2}, []int{3})
	var sc SweepConfig = grid[0]
	if sc.Label != "f=2 k=3" || sc.Cfg.Fanout != 2 || sc.Cfg.Rounds != 3 {
		t.Fatalf("unexpected SweepConfig %+v", sc)
	}
	if _, err := RunSweep("typed", smallVB(66), []SweepConfig{{Label: "pt", Cfg: smallConfig()}}); err != nil {
		t.Fatal(err)
	}
	_ = fmt.Sprintf("%v", sc)
}
