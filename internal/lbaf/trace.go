package lbaf

import (
	"encoding/json"
	"fmt"
	"io"

	"temperedlb/internal/core"
)

// TraceTask is one task record of a workload trace.
type TraceTask struct {
	ID   int     `json:"id"`
	Load float64 `json:"load"`
	Rank int     `json:"rank"`
}

// Trace is the framework's JSON interchange format for workloads,
// mirroring the task files the paper's Python LBAF tool consumes: a
// rank count plus per-task load and initial placement. Analyses can be
// re-run offline on traces captured from real applications.
type Trace struct {
	NumRanks int         `json:"num_ranks"`
	Tasks    []TraceTask `json:"tasks"`
}

// CaptureTrace snapshots an assignment into a trace.
func CaptureTrace(a *core.Assignment) Trace {
	t := Trace{NumRanks: a.NumRanks()}
	for id := 0; id < a.NumTasks(); id++ {
		tid := core.TaskID(id)
		t.Tasks = append(t.Tasks, TraceTask{
			ID:   id,
			Load: a.Load(tid),
			Rank: int(a.Owner(tid)),
		})
	}
	return t
}

// Assignment rebuilds the workload the trace describes. Task records
// must appear with consecutive ids starting at 0 (the dense id space
// assignments use).
func (t Trace) Assignment() (*core.Assignment, error) {
	if t.NumRanks < 1 {
		return nil, fmt.Errorf("lbaf: trace has %d ranks", t.NumRanks)
	}
	a := core.NewAssignment(t.NumRanks)
	for i, task := range t.Tasks {
		if task.ID != i {
			return nil, fmt.Errorf("lbaf: trace task %d has id %d; ids must be dense and ordered", i, task.ID)
		}
		if task.Rank < 0 || task.Rank >= t.NumRanks {
			return nil, fmt.Errorf("lbaf: trace task %d on rank %d of %d", i, task.Rank, t.NumRanks)
		}
		if task.Load < 0 {
			return nil, fmt.Errorf("lbaf: trace task %d has negative load %g", i, task.Load)
		}
		a.Add(task.Load, core.Rank(task.Rank))
	}
	return a, nil
}

// SaveWorkload writes the assignment as a JSON trace.
func SaveWorkload(w io.Writer, a *core.Assignment) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(CaptureTrace(a))
}

// LoadWorkload reads a JSON trace and rebuilds the assignment.
func LoadWorkload(r io.Reader) (*core.Assignment, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("lbaf: decoding trace: %w", err)
	}
	return t.Assignment()
}
