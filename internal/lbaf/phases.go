package lbaf

import (
	"fmt"

	"temperedlb/internal/core"
	"temperedlb/internal/lb"
	"temperedlb/internal/workload"
)

// PhaseStudyResult summarizes a multi-phase strategy study.
type PhaseStudyResult struct {
	// AchievedTime is the accumulated virtual time: per phase, the
	// maximum per-rank load under the mapping in force.
	AchievedTime float64
	// IdealTime is the unattainable floor: per phase, the average rank
	// load (perfect instantaneous balance).
	IdealTime float64
	// StaticTime is the no-LB baseline: the initial mapping held fixed.
	StaticTime float64
	// Rebalances counts LB invocations; MovedTasks their total moves.
	Rebalances int
	MovedTasks int
}

// Efficiency is IdealTime/AchievedTime in (0,1]: 1 means every phase
// ran perfectly balanced.
func (r PhaseStudyResult) Efficiency() float64 {
	if r.AchievedTime == 0 {
		return 1
	}
	return r.IdealTime / r.AchievedTime
}

// Speedup is StaticTime/AchievedTime: the gain over never balancing.
func (r PhaseStudyResult) Speedup() float64 {
	if r.AchievedTime == 0 {
		return 1
	}
	return r.StaticTime / r.AchievedTime
}

// RunPhaseStudy drives a strategy over an evolving workload for the
// given number of phases, rebalancing every period phases. Crucially,
// each LB decision is computed from the loads of the phase that just
// finished and applied to the following phases — the instrumentation
// staleness the principle of persistence (§III-B) is about. With highly
// persistent loads the stale decision stays good; as persistence drops
// the decision decays immediately, and efficiency falls toward the
// static baseline's.
func RunPhaseStudy(a *core.Assignment, ev *workload.Evolver, strat lb.Strategy, phases, period int) (PhaseStudyResult, error) {
	if phases < 1 || period < 1 {
		return PhaseStudyResult{}, fmt.Errorf("lbaf: phases %d and period %d must be >= 1", phases, period)
	}
	var res PhaseStudyResult
	work := a.Clone()
	staticOwners := a.Owners()

	for p := 1; p <= phases; p++ {
		loads := ev.Step()
		maxRank, sum := 0.0, 0.0
		staticLoads := make([]float64, a.NumRanks())
		for i, l := range loads {
			id := core.TaskID(i)
			work.SetLoad(id, l)
			staticLoads[staticOwners[i]] += l
			sum += l
		}
		for r := 0; r < work.NumRanks(); r++ {
			if l := work.RankLoad(core.Rank(r)); l > maxRank {
				maxRank = l
			}
		}
		staticMax := 0.0
		for _, l := range staticLoads {
			if l > staticMax {
				staticMax = l
			}
		}
		res.AchievedTime += maxRank
		res.StaticTime += staticMax
		res.IdealTime += sum / float64(work.NumRanks())

		if p%period == 0 {
			if r, ok := strat.(lb.Reseeder); ok {
				r.Reseed(int64(p) * 31)
			}
			plan, err := strat.Rebalance(work)
			if err != nil {
				return res, err
			}
			plan.Apply(work)
			res.Rebalances++
			res.MovedTasks += plan.MovedTasks()
		}
	}
	return res, nil
}
