package lbaf

import (
	"fmt"
	"io"
	"strings"

	"temperedlb/internal/core"
	"temperedlb/internal/exper"
	"temperedlb/internal/workload"
)

// Row is one line of an iteration table: the §V-B/§V-D columns.
type Row struct {
	Iteration     int
	Transfers     int
	Rejected      int
	RejectionRate float64 // percent
	Imbalance     float64
}

// Table is a rendered-ready iteration table. Row 0 (the initial
// distribution, no transfer columns) is represented by InitialImbalance.
type Table struct {
	Title            string
	InitialImbalance float64
	Rows             []Row
	// GossipMessages and GossipEntries total the communication volume of
	// all inform stages, for the footnote-2 scalability discussion.
	GossipMessages int
	GossipEntries  int
}

// RunIterationTable generates the workload, runs a single trial of
// cfg.Iterations inform+transfer passes, and tabulates each iteration.
// Trials is forced to 1 because the paper's tables trace one trial.
func RunIterationTable(title string, spec workload.Spec, cfg core.Config) (Table, error) {
	a, err := workload.Generate(spec)
	if err != nil {
		return Table{}, err
	}
	return RunIterationTableOn(title, a, cfg)
}

// RunIterationTableOn is RunIterationTable over a pre-built assignment.
func RunIterationTableOn(title string, a *core.Assignment, cfg core.Config) (Table, error) {
	cfg.Trials = 1
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return Table{}, err
	}
	res, err := eng.Run(a)
	if err != nil {
		return Table{}, err
	}
	t := Table{Title: title, InitialImbalance: res.InitialImbalance}
	for _, it := range res.History {
		t.Rows = append(t.Rows, Row{
			Iteration:     it.Iteration,
			Transfers:     it.Transfers,
			Rejected:      it.Rejected,
			RejectionRate: it.RejectionRate(),
			Imbalance:     it.Imbalance,
		})
		t.GossipMessages += it.GossipMessages
		t.GossipEntries += it.GossipEntries
	}
	return t, nil
}

// Render writes the table in the paper's column layout.
func (t Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%-10s %-10s %-10s %-14s %-12s\n", "Iteration", "Transfers", "Rejected", "Rejection(%)", "Imbalance")
	fmt.Fprintf(w, "%-10d %-10s %-10s %-14s %-12.4g\n", 0, "-", "-", "-", t.InitialImbalance)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10d %-10d %-10d %-14.2f %-12.4g\n",
			r.Iteration, r.Transfers, r.Rejected, r.RejectionRate, r.Imbalance)
	}
	fmt.Fprintf(w, "gossip: %d messages, %d payload entries\n", t.GossipMessages, t.GossipEntries)
}

// String renders the table to a string.
func (t Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Comparison is the §V-D side-by-side imbalance table: the original
// criterion (line 35) against the relaxed criterion (line 37) on the
// same case.
type Comparison struct {
	Original Table
	Relaxed  Table
}

// RunComparison builds both tables over the identical initial
// distribution.
func RunComparison(spec workload.Spec, base core.Config) (Comparison, error) {
	a, err := workload.Generate(spec)
	if err != nil {
		return Comparison{}, err
	}
	return RunComparisonOn(a, base)
}

// RunComparisonOn is RunComparison over a pre-built assignment (e.g. a
// loaded workload trace).
func RunComparisonOn(a *core.Assignment, base core.Config) (Comparison, error) {
	return RunComparisonOnParallel(a, base, 1)
}

// RunComparisonOnParallel is RunComparisonOn running the two criterion
// tables on up to workers goroutines (0 means GOMAXPROCS). Each table
// owns its engine and seeded streams over the shared read-only
// assignment, so the output is bit-identical to the serial run.
func RunComparisonOnParallel(a *core.Assignment, base core.Config, workers int) (Comparison, error) {
	origCfg := base
	origCfg.Criterion = core.CriterionOriginal
	origCfg.CMF = core.CMFOriginal
	origCfg.RecomputeCMF = false

	relCfg := base
	relCfg.Criterion = core.CriterionRelaxed
	relCfg.CMF = core.CMFModified
	relCfg.RecomputeCMF = true

	jobs := []struct {
		title string
		cfg   core.Config
	}{
		{"criterion 35 (original)", origCfg},
		{"criterion 37 (relaxed)", relCfg},
	}
	tables, err := exper.MapErr(len(jobs), workers, func(i int) (Table, error) {
		return RunIterationTableOn(jobs[i].title, a, jobs[i].cfg)
	})
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Original: tables[0], Relaxed: tables[1]}, nil
}

// Render writes the comparison in the paper's layout: iteration index,
// imbalance under each criterion.
func (c Comparison) Render(w io.Writer) {
	fmt.Fprintf(w, "%-10s %-18s %-18s\n", "Iteration", "Criterion 35 (I)", "Criterion 37 (I)")
	fmt.Fprintf(w, "%-10d %-18.4g %-18.4g\n", 0, c.Original.InitialImbalance, c.Relaxed.InitialImbalance)
	n := len(c.Original.Rows)
	if len(c.Relaxed.Rows) > n {
		n = len(c.Relaxed.Rows)
	}
	for i := 0; i < n; i++ {
		var o, r string
		if i < len(c.Original.Rows) {
			o = fmt.Sprintf("%.4g", c.Original.Rows[i].Imbalance)
		}
		if i < len(c.Relaxed.Rows) {
			r = fmt.Sprintf("%.4g", c.Relaxed.Rows[i].Imbalance)
		}
		fmt.Fprintf(w, "%-10d %-18s %-18s\n", i+1, o, r)
	}
}

// String renders the comparison to a string.
func (c Comparison) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}
