package lbaf

import (
	"strings"
	"testing"

	"temperedlb/internal/core"
	"temperedlb/internal/workload"
)

// smallVB is a scaled-down §V-B case that keeps the qualitative shape
// (clustered placement, light/heavy mixture) while running fast.
func smallVB(seed int64) workload.Spec {
	s := workload.VBCase(seed)
	s.NumRanks = 512
	s.LoadedRanks = 8
	s.NumTasks = 1500
	return s
}

func smallConfig() core.Config {
	cfg := core.Grapevine()
	cfg.Iterations = 6
	cfg.Rounds = 6
	cfg.Fanout = 4
	return cfg
}

func TestRunIterationTableOriginalStalls(t *testing.T) {
	table, err := RunIterationTable("orig", smallVB(1), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	first := table.Rows[0].Imbalance
	last := table.Rows[len(table.Rows)-1].Imbalance
	// Original criterion: improves in iteration 1, then stalls high —
	// heavy tasks above l_ave are permanently unplaceable.
	if first >= table.InitialImbalance {
		t.Errorf("iteration 1 did not improve: %g -> %g", table.InitialImbalance, first)
	}
	if last < 5 {
		t.Errorf("original criterion converged too well (I=%g); mixture should trap it", last)
	}
	// Late iterations reach near-total rejection.
	lastRow := table.Rows[len(table.Rows)-1]
	if lastRow.RejectionRate < 90 {
		t.Errorf("late rejection rate %g%%, want >90%%", lastRow.RejectionRate)
	}
}

func TestRunIterationTableRelaxedConverges(t *testing.T) {
	cfg := smallConfig()
	cfg.Criterion = core.CriterionRelaxed
	cfg.CMF = core.CMFModified
	cfg.RecomputeCMF = true
	table, err := RunIterationTable("relaxed", smallVB(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := table.Rows[len(table.Rows)-1].Imbalance
	if last > 2 {
		t.Errorf("relaxed criterion stuck at I=%g, want < 2", last)
	}
	// Early rejection must be low (the §V-D signature).
	if table.Rows[0].RejectionRate > 30 {
		t.Errorf("iteration-1 rejection %g%%, want low", table.Rows[0].RejectionRate)
	}
}

func TestRunComparisonRelaxedWins(t *testing.T) {
	c, err := RunComparison(smallVB(2), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Original.InitialImbalance != c.Relaxed.InitialImbalance {
		t.Errorf("comparison not on identical initial distributions: %g vs %g",
			c.Original.InitialImbalance, c.Relaxed.InitialImbalance)
	}
	oLast := c.Original.Rows[len(c.Original.Rows)-1].Imbalance
	rLast := c.Relaxed.Rows[len(c.Relaxed.Rows)-1].Imbalance
	if rLast >= oLast/3 {
		t.Errorf("relaxed (%g) should beat original (%g) by a wide margin", rLast, oLast)
	}
}

func TestTableRender(t *testing.T) {
	table, err := RunIterationTable("title-x", smallVB(3), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := table.String()
	if !strings.Contains(s, "title-x") || !strings.Contains(s, "Iteration") {
		t.Errorf("render missing headers:\n%s", s)
	}
	// One line per iteration plus header, title, row 0 and gossip line.
	lines := strings.Count(s, "\n")
	if lines != len(table.Rows)+4 {
		t.Errorf("render has %d lines, want %d", lines, len(table.Rows)+4)
	}
}

func TestComparisonRender(t *testing.T) {
	c, err := RunComparison(smallVB(4), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := c.String()
	if !strings.Contains(s, "Criterion 35") || !strings.Contains(s, "Criterion 37") {
		t.Errorf("comparison render missing columns:\n%s", s)
	}
}

func TestRunIterationTableForcesSingleTrial(t *testing.T) {
	cfg := smallConfig()
	cfg.Trials = 5
	table, err := RunIterationTable("x", smallVB(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != cfg.Iterations {
		t.Errorf("rows %d, want %d (single trial)", len(table.Rows), cfg.Iterations)
	}
}

func TestRunIterationTableBadSpec(t *testing.T) {
	spec := smallVB(1)
	spec.NumRanks = 0
	if _, err := RunIterationTable("x", spec, smallConfig()); err == nil {
		t.Error("expected error for bad spec")
	}
}

func TestRunIterationTableBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Fanout = 0
	if _, err := RunIterationTable("x", smallVB(1), cfg); err == nil {
		t.Error("expected error for bad config")
	}
}

func TestRunIterationTableDeterministic(t *testing.T) {
	t1, err := RunIterationTable("x", smallVB(6), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := RunIterationTable("x", smallVB(6), smallConfig())
	if t1.String() != t2.String() {
		t.Error("tables differ across identical runs")
	}
}

func TestGossipAccountingPositive(t *testing.T) {
	table, err := RunIterationTable("x", smallVB(7), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if table.GossipMessages == 0 || table.GossipEntries == 0 {
		t.Errorf("gossip accounting empty: %d msgs %d entries",
			table.GossipMessages, table.GossipEntries)
	}
}

func TestRunSweepGossipGrid(t *testing.T) {
	base := core.Tempered()
	base.Trials, base.Iterations = 1, 3
	configs := GossipSweepConfigs(base, []int{2, 4}, []int{2, 4})
	if len(configs) != 4 {
		t.Fatalf("grid size %d", len(configs))
	}
	sw, err := RunSweep("gossip", smallVB(20), configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 4 {
		t.Fatalf("points %d", len(sw.Points))
	}
	// More fanout and rounds never reduce the message count.
	first, last := sw.Points[0], sw.Points[3]
	if last.GossipMessages <= first.GossipMessages {
		t.Errorf("f=4,k=4 messages %d <= f=2,k=2 %d", last.GossipMessages, first.GossipMessages)
	}
	var b strings.Builder
	sw.Render(&b)
	if !strings.Contains(b.String(), "f=2 k=2") {
		t.Error("render missing labels")
	}
}

func TestRunSweepRefinementGrid(t *testing.T) {
	base := core.Tempered()
	base.Rounds, base.Fanout = 4, 3
	configs := RefinementSweepConfigs(base, []int{1, 3}, []int{1, 4})
	sw, err := RunSweep("refinement", smallVB(21), configs)
	if err != nil {
		t.Fatal(err)
	}
	// The biggest budget must be at least as good as the smallest.
	if sw.Points[3].FinalImbalance > sw.Points[0].FinalImbalance+1e-9 {
		t.Errorf("3x4 budget (%g) worse than 1x1 (%g)",
			sw.Points[3].FinalImbalance, sw.Points[0].FinalImbalance)
	}
}

func TestRunSweepBadConfig(t *testing.T) {
	bad := core.Tempered()
	bad.Fanout = 0
	_, err := RunSweep("x", smallVB(22), []SweepConfig{{Label: "bad", Cfg: bad}})
	if err == nil {
		t.Error("bad config accepted")
	}
}
