package lbaf

import (
	"testing"

	"temperedlb/internal/core"
	"temperedlb/internal/lb/greedy"
	"temperedlb/internal/lb/tempered"
	"temperedlb/internal/workload"
)

func phaseWorkload(t *testing.T, seed int64) *core.Assignment {
	t.Helper()
	a, err := workload.Generate(workload.Spec{
		NumRanks: 24, NumTasks: 360,
		Placement: workload.PlaceClustered, LoadedRanks: 3,
		Loads: workload.LoadUniform, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func phaseStrategy() *tempered.Strategy {
	cfg := core.Tempered()
	cfg.Trials, cfg.Iterations = 2, 4
	cfg.Rounds, cfg.Fanout = 4, 3
	return tempered.New(cfg)
}

func TestPhaseStudyPersistentLoadsNearIdeal(t *testing.T) {
	a := phaseWorkload(t, 1)
	ev, err := workload.NewEvolver(a, 1.0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPhaseStudy(a, ev, phaseStrategy(), 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Frozen loads: after the first rebalance (end of phase 2) every
	// later phase runs near the ideal floor; only the two warmup phases
	// at the initial imbalance drag the aggregate down.
	if res.Efficiency() < 0.65 {
		t.Errorf("efficiency %g with frozen loads, want near 1 after warmup", res.Efficiency())
	}
	if res.Speedup() < 2 {
		t.Errorf("speedup %g over static, want substantial", res.Speedup())
	}
	if res.Rebalances != 30 {
		t.Errorf("rebalances = %d, want 30", res.Rebalances)
	}
}

// TestPhaseStudyPersistenceMatters is the §III-B experiment: efficiency
// must decline monotonically (within tolerance) as phase-to-phase
// correlation drops, because every LB decision is computed from stale
// instrumentation.
func TestPhaseStudyPersistenceMatters(t *testing.T) {
	eff := func(persistence float64) float64 {
		a := phaseWorkload(t, 3)
		ev, err := workload.NewEvolver(a, persistence, 0.4, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunPhaseStudy(a, ev, phaseStrategy(), 60, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.Efficiency()
	}
	high := eff(0.98)
	low := eff(0.0)
	if high <= low {
		t.Errorf("efficiency should fall with persistence: rho=0.98 -> %g, rho=0 -> %g", high, low)
	}
}

func TestPhaseStudyDoesNotModifyInput(t *testing.T) {
	a := phaseWorkload(t, 5)
	owners := a.Owners()
	loads := a.RankLoads()
	ev, _ := workload.NewEvolver(a, 0.9, 0.1, 6)
	if _, err := RunPhaseStudy(a, ev, greedy.New(), 20, 5); err != nil {
		t.Fatal(err)
	}
	for i, o := range a.Owners() {
		if owners[i] != o {
			t.Fatal("input owners mutated")
		}
	}
	for r, l := range a.RankLoads() {
		if loads[r] != l {
			t.Fatal("input loads mutated")
		}
	}
}

func TestPhaseStudyValidation(t *testing.T) {
	a := phaseWorkload(t, 7)
	ev, _ := workload.NewEvolver(a, 0.9, 0.1, 8)
	if _, err := RunPhaseStudy(a, ev, greedy.New(), 0, 5); err == nil {
		t.Error("zero phases accepted")
	}
	if _, err := RunPhaseStudy(a, ev, greedy.New(), 5, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestEvolverValidation(t *testing.T) {
	a := phaseWorkload(t, 9)
	if _, err := workload.NewEvolver(a, -0.1, 0.1, 1); err == nil {
		t.Error("negative persistence accepted")
	}
	if _, err := workload.NewEvolver(a, 1.1, 0.1, 1); err == nil {
		t.Error("persistence > 1 accepted")
	}
	if _, err := workload.NewEvolver(a, 0.5, -1, 1); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestEvolverFrozenAndPositive(t *testing.T) {
	a := phaseWorkload(t, 10)
	frozen, _ := workload.NewEvolver(a, 1.0, 0, 11)
	before := append([]float64(nil), frozen.Loads()...)
	after := frozen.Step()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("frozen loads changed")
		}
	}
	noisy, _ := workload.NewEvolver(a, 0.0, 5.0, 12)
	for p := 0; p < 50; p++ {
		for _, l := range noisy.Step() {
			if l <= 0 {
				t.Fatal("load went non-positive")
			}
		}
	}
}
