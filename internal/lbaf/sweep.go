package lbaf

import (
	"fmt"
	"io"

	"temperedlb/internal/core"
	"temperedlb/internal/workload"
)

// SweepPoint is one cell of a parameter sweep: the configuration values
// swept plus the outcome.
type SweepPoint struct {
	Label          string
	FinalImbalance float64
	GossipMessages int
	GossipEntries  int
	Transfers      int
}

// Sweep holds the results of running the engine across a set of
// configurations on the same workload.
type Sweep struct {
	Title  string
	Points []SweepPoint
}

// RunSweep evaluates each labeled configuration on a fresh copy of the
// generated workload, so every point starts from the identical initial
// distribution.
func RunSweep(title string, spec workload.Spec, configs []struct {
	Label string
	Cfg   core.Config
}) (Sweep, error) {
	a, err := workload.Generate(spec)
	if err != nil {
		return Sweep{}, err
	}
	sw := Sweep{Title: title}
	for _, c := range configs {
		eng, err := core.NewEngine(c.Cfg)
		if err != nil {
			return Sweep{}, fmt.Errorf("lbaf: sweep %q: %w", c.Label, err)
		}
		res, err := eng.Run(a)
		if err != nil {
			return Sweep{}, err
		}
		pt := SweepPoint{Label: c.Label, FinalImbalance: res.FinalImbalance}
		for _, it := range res.History {
			pt.GossipMessages += it.GossipMessages
			pt.GossipEntries += it.GossipEntries
			pt.Transfers += it.Transfers
		}
		sw.Points = append(sw.Points, pt)
	}
	return sw, nil
}

// GossipSweepConfigs builds the fanout/rounds grid of the footnote-2
// study on top of a base configuration.
func GossipSweepConfigs(base core.Config, fanouts, rounds []int) []struct {
	Label string
	Cfg   core.Config
} {
	var out []struct {
		Label string
		Cfg   core.Config
	}
	for _, f := range fanouts {
		for _, k := range rounds {
			cfg := base
			cfg.Fanout, cfg.Rounds = f, k
			out = append(out, struct {
				Label string
				Cfg   core.Config
			}{fmt.Sprintf("f=%d k=%d", f, k), cfg})
		}
	}
	return out
}

// RefinementSweepConfigs builds the trials/iterations grid of the
// Algorithm-3 budget study.
func RefinementSweepConfigs(base core.Config, trials, iters []int) []struct {
	Label string
	Cfg   core.Config
} {
	var out []struct {
		Label string
		Cfg   core.Config
	}
	for _, tr := range trials {
		for _, it := range iters {
			cfg := base
			cfg.Trials, cfg.Iterations = tr, it
			out = append(out, struct {
				Label string
				Cfg   core.Config
			}{fmt.Sprintf("trials=%d iters=%d", tr, it), cfg})
		}
	}
	return out
}

// Render writes the sweep as a table.
func (s Sweep) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", s.Title)
	fmt.Fprintf(w, "%-20s %12s %12s %14s %12s\n", "point", "final I", "messages", "entries", "transfers")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%-20s %12.4g %12d %14d %12d\n",
			p.Label, p.FinalImbalance, p.GossipMessages, p.GossipEntries, p.Transfers)
	}
}
