package lbaf

import (
	"fmt"
	"io"

	"temperedlb/internal/core"
	"temperedlb/internal/exper"
	"temperedlb/internal/workload"
)

// SweepConfig is one labeled engine configuration of a parameter sweep.
type SweepConfig struct {
	Label string
	Cfg   core.Config
}

// SweepPoint is one cell of a parameter sweep: the configuration values
// swept plus the outcome.
type SweepPoint struct {
	Label          string
	FinalImbalance float64
	GossipMessages int
	GossipEntries  int
	Transfers      int
}

// Sweep holds the results of running the engine across a set of
// configurations on the same workload.
type Sweep struct {
	Title  string
	Points []SweepPoint
}

// RunSweep evaluates each labeled configuration on the same generated
// workload, so every point starts from the identical initial
// distribution. It is RunSweepParallel with one worker.
func RunSweep(title string, spec workload.Spec, configs []SweepConfig) (Sweep, error) {
	return RunSweepParallel(title, spec, configs, 1)
}

// RunSweepParallel is RunSweep fanning the configurations across up to
// workers goroutines (0 means GOMAXPROCS). Each point runs its own
// engine over the shared read-only assignment with its own seeded random
// streams, and results are collected in configuration order, so the
// sweep is bit-identical to a serial run at any worker count.
func RunSweepParallel(title string, spec workload.Spec, configs []SweepConfig, workers int) (Sweep, error) {
	a, err := workload.Generate(spec)
	if err != nil {
		return Sweep{}, err
	}
	pts, err := exper.MapErr(len(configs), workers, func(i int) (SweepPoint, error) {
		c := configs[i]
		eng, err := core.NewEngine(c.Cfg)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("lbaf: sweep %q: %w", c.Label, err)
		}
		res, err := eng.Run(a)
		if err != nil {
			return SweepPoint{}, err
		}
		pt := SweepPoint{Label: c.Label, FinalImbalance: res.FinalImbalance}
		for _, it := range res.History {
			pt.GossipMessages += it.GossipMessages
			pt.GossipEntries += it.GossipEntries
			pt.Transfers += it.Transfers
		}
		return pt, nil
	})
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Title: title, Points: pts}, nil
}

// GossipSweepConfigs builds the fanout/rounds grid of the footnote-2
// study on top of a base configuration.
func GossipSweepConfigs(base core.Config, fanouts, rounds []int) []SweepConfig {
	var out []SweepConfig
	for _, f := range fanouts {
		for _, k := range rounds {
			cfg := base
			cfg.Fanout, cfg.Rounds = f, k
			out = append(out, SweepConfig{Label: fmt.Sprintf("f=%d k=%d", f, k), Cfg: cfg})
		}
	}
	return out
}

// RefinementSweepConfigs builds the trials/iterations grid of the
// Algorithm-3 budget study.
func RefinementSweepConfigs(base core.Config, trials, iters []int) []SweepConfig {
	var out []SweepConfig
	for _, tr := range trials {
		for _, it := range iters {
			cfg := base
			cfg.Trials, cfg.Iterations = tr, it
			out = append(out, SweepConfig{Label: fmt.Sprintf("trials=%d iters=%d", tr, it), Cfg: cfg})
		}
	}
	return out
}

// Render writes the sweep as a table.
func (s Sweep) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", s.Title)
	fmt.Fprintf(w, "%-20s %12s %12s %14s %12s\n", "point", "final I", "messages", "entries", "transfers")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%-20s %12.4g %12d %14d %12d\n",
			p.Label, p.FinalImbalance, p.GossipMessages, p.GossipEntries, p.Transfers)
	}
}
