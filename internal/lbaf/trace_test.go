package lbaf

import (
	"bytes"
	"strings"
	"testing"

	"temperedlb/internal/core"
	"temperedlb/internal/workload"
)

func TestTraceRoundTrip(t *testing.T) {
	a, err := workload.Generate(smallVB(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveWorkload(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := LoadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRanks() != a.NumRanks() || b.NumTasks() != a.NumTasks() {
		t.Fatalf("dims differ: %d/%d vs %d/%d", b.NumRanks(), b.NumTasks(), a.NumRanks(), a.NumTasks())
	}
	for id := 0; id < a.NumTasks(); id++ {
		tid := core.TaskID(id)
		if a.Load(tid) != b.Load(tid) || a.Owner(tid) != b.Owner(tid) {
			t.Fatalf("task %d differs after round trip", id)
		}
	}
}

func TestTraceAnalysisMatchesDirect(t *testing.T) {
	a, _ := workload.Generate(smallVB(10))
	var buf bytes.Buffer
	if err := SaveWorkload(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := LoadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := RunIterationTableOn("x", a, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunIterationTableOn("x", b, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if t1.String() != t2.String() {
		t.Error("analysis differs between original and round-tripped workload")
	}
}

func TestLoadWorkloadValidation(t *testing.T) {
	cases := []string{
		`{"num_ranks":0,"tasks":[]}`,
		`{"num_ranks":2,"tasks":[{"id":1,"load":1,"rank":0}]}`,
		`{"num_ranks":2,"tasks":[{"id":0,"load":1,"rank":5}]}`,
		`{"num_ranks":2,"tasks":[{"id":0,"load":-1,"rank":0}]}`,
		`not json`,
	}
	for i, c := range cases {
		if _, err := LoadWorkload(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad trace accepted", i)
		}
	}
}

func TestLoadWorkloadMinimal(t *testing.T) {
	a, err := LoadWorkload(strings.NewReader(`{"num_ranks":3,"tasks":[{"id":0,"load":2.5,"rank":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRanks() != 3 || a.Load(0) != 2.5 || a.Owner(0) != 1 {
		t.Errorf("minimal trace decoded wrong")
	}
}

func FuzzLoadWorkload(f *testing.F) {
	f.Add([]byte(`{"num_ranks":3,"tasks":[{"id":0,"load":2.5,"rank":1}]}`))
	f.Add([]byte(`{"num_ranks":0}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := LoadWorkload(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must be a structurally valid assignment.
		if err := a.Validate(); err != nil {
			t.Fatalf("accepted trace produced invalid assignment: %v", err)
		}
	})
}
