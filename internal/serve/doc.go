// Package serve is the online balancer service: the layer that decides
// WHEN to rebalance, where the tempered protocol underneath decides
// HOW.
//
// The batch harness invokes the balancer every iteration. For a
// long-running workload with time-varying imbalance that is the wrong
// default — rebalancing has a cost, and a workload that is balanced for
// long stretches should not pay it every phase. Run drives a continuous
// stream of task arrivals, departures and load drift (deterministic
// seeded generators: ramp, diurnal, burst, churn — see Scenario), folds
// each phase's observations into an extended amt.LoadModel (Holt's
// level+trend smoothing, following the imbalance-anticipation approach
// of Boulmier et al., arXiv:1909.07168), and asks a pluggable Trigger
// whether the next phase justifies an invocation. The Forecast trigger
// implements the LB-invocation criterion of Boulmier et al.
// (arXiv:2104.01688): fire when the cumulative realized imbalance cost
// plus the forecast next-phase cost reaches the amortized cost of a
// rebalancing.
//
// # Determinism
//
// The service holds the repository-wide bit-determinism contract — the
// same trigger-decision log and final assignment on the in-memory,
// Unix-socket and TCP transports at any node count — by construction:
//
//  1. The scenario is a pure function of its Spec. Every rank builds an
//     identical copy; no event needs to cross the wire.
//  2. An object's load is a function of (item, phase), and the item
//     index rides in the object state through migrations, so whichever
//     rank hosts an object computes the same work for it.
//  3. The trigger consumes only Summary values assembled from
//     AllReduceVec collectives (fixed tree combine order) and shared
//     configuration. Trigger state is per-rank but evolves only through
//     Decide, so by induction over phases every rank's instance sees
//     the same inputs and reaches the same fire/skip decision — the
//     collective call sequence can never diverge.
//  4. Each invocation hands the balancer the model's predictions summed
//     and iterated in sorted object-id order, and seeds it from the
//     phase index, keeping the protocol's own determinism guarantees
//     intact.
//
// Tune replays a recorded Trace of the event stream against a grid of
// trigger parameters under a greedy rebalance model, picking the
// cheapest configuration offline before committing the live service to
// it.
package serve
