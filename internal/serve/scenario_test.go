package serve

import (
	"reflect"
	"testing"
)

func testSpec(kind Kind) Spec {
	return Spec{Kind: kind, Ranks: 6, Phases: 24, Items: 40, Seed: 7}
}

func TestScenarioDeterministicConstruction(t *testing.T) {
	for _, kind := range []Kind{KindRamp, KindDiurnal, KindBurst, KindChurn} {
		a, err := NewScenario(testSpec(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, _ := NewScenario(testSpec(kind))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two constructions differ", kind)
		}
		for i := 0; i < a.NumItems(); i++ {
			for p := 0; p < a.Spec.Phases; p++ {
				if a.Load(i, p) != b.Load(i, p) {
					t.Fatalf("%s: item %d phase %d load differs", kind, i, p)
				}
			}
		}
	}
}

func TestScenarioInvariants(t *testing.T) {
	for _, kind := range []Kind{KindRamp, KindDiurnal, KindBurst, KindChurn} {
		sc, err := NewScenario(testSpec(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		covered := 0
		for r := 0; r < sc.Spec.Ranks; r++ {
			prevStart, prevIdx := -1, -1
			for _, i := range sc.Arrivals(r) {
				it := sc.Item(i)
				if it.Home != r {
					t.Fatalf("%s: item %d in rank %d's arrivals but homed on %d", kind, i, r, it.Home)
				}
				if it.Start < prevStart || (it.Start == prevStart && i <= prevIdx) {
					t.Fatalf("%s: rank %d arrivals out of creation order", kind, r)
				}
				prevStart, prevIdx = it.Start, i
				covered++
			}
		}
		if covered != sc.NumItems() {
			t.Errorf("%s: arrivals cover %d of %d items", kind, covered, sc.NumItems())
		}
		for i := 0; i < sc.NumItems(); i++ {
			it := sc.Item(i)
			if it.Start < 0 || it.End > sc.Spec.Phases || it.Start >= it.End {
				t.Fatalf("%s: item %d has lifetime [%d,%d) outside [0,%d)", kind, i, it.Start, it.End, sc.Spec.Phases)
			}
			for p := 0; p < sc.Spec.Phases; p++ {
				l := sc.Load(i, p)
				if sc.Alive(i, p) && l <= 0 {
					t.Fatalf("%s: item %d alive at %d with load %g", kind, i, p, l)
				}
				if !sc.Alive(i, p) && l != 0 {
					t.Fatalf("%s: item %d dead at %d with load %g", kind, i, p, l)
				}
			}
		}
	}
}

func TestScenarioKindsShapeLoad(t *testing.T) {
	// Each generator must actually produce its advertised time shape.
	ramp, _ := NewScenario(testSpec(KindRamp))
	hotEarly, hotLate := rankLoad(ramp, 0, 0), rankLoad(ramp, 0, ramp.Spec.Phases-1)
	if hotLate <= hotEarly {
		t.Errorf("ramp: hot rank load did not grow: %g -> %g", hotEarly, hotLate)
	}

	burst, _ := NewScenario(testSpec(KindBurst))
	if len(burst.bursts) == 0 {
		t.Fatal("burst: no burst windows")
	}
	w := burst.bursts[0]
	quiet := rankLoad(burst, w.Victim, 0)
	spiked := rankLoad(burst, w.Victim, w.Start)
	if spiked < 2*quiet {
		t.Errorf("burst: victim %d load %g at spike vs %g quiet", w.Victim, spiked, quiet)
	}

	churn, _ := NewScenario(testSpec(KindChurn))
	varies := false
	prev := aliveCount(churn, 0)
	for p := 1; p < churn.Spec.Phases; p++ {
		if c := aliveCount(churn, p); c != prev {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("churn: alive item count constant over the whole run")
	}

	diurnal, _ := NewScenario(testSpec(KindDiurnal))
	lo, hi := rankLoad(diurnal, 0, 0), rankLoad(diurnal, 0, diurnal.period/2)
	if hi <= lo {
		t.Errorf("diurnal: no wave on the hot rank: %g at trough, %g at peak", lo, hi)
	}
}

func TestScenarioRejectsBadSpec(t *testing.T) {
	bad := []Spec{
		{Kind: KindRamp, Ranks: 0, Phases: 10, Items: 10},
		{Kind: KindRamp, Ranks: 4, Phases: 0, Items: 10},
		{Kind: KindRamp, Ranks: 4, Phases: 10, Items: 0},
		{Kind: KindRamp, Ranks: 4, Phases: 10, Items: 10, Hot: 9},
	}
	for i, s := range bad {
		if _, err := NewScenario(s); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}

// rankLoad sums a rank's home items' loads at one phase.
func rankLoad(sc *Scenario, rank, phase int) float64 {
	s := 0.0
	for i := 0; i < sc.NumItems(); i++ {
		if sc.Item(i).Home == rank {
			s += sc.Load(i, phase)
		}
	}
	return s
}

func aliveCount(sc *Scenario, phase int) int {
	n := 0
	for i := 0; i < sc.NumItems(); i++ {
		if sc.Alive(i, phase) {
			n++
		}
	}
	return n
}
