package serve

import (
	"fmt"
	"sort"

	"temperedlb/internal/amt"
)

// Trace is a recorded event stream: for every phase, the alive items
// with their loads and home ranks. It is the offline replay format —
// record one from a scenario (or a production workload), then Simulate
// candidate triggers against it without paying for live protocol runs.
type Trace struct {
	Ranks  int          `json:"ranks"`
	Phases []TracePhase `json:"phases"`
}

// TracePhase is one phase of a Trace.
type TracePhase struct {
	Items []TraceItem `json:"items"`
}

// TraceItem is one alive item's observation in one phase.
type TraceItem struct {
	ID   int     `json:"id"`
	Home int     `json:"home"`
	Load float64 `json:"load"`
}

// RecordTrace renders a scenario into its trace: per phase, the alive
// items in ascending id order.
func RecordTrace(sc *Scenario) Trace {
	tr := Trace{Ranks: sc.Spec.Ranks}
	for p := 0; p < sc.Spec.Phases; p++ {
		var ph TracePhase
		for i := 0; i < sc.NumItems(); i++ {
			if sc.Alive(i, p) {
				ph.Items = append(ph.Items, TraceItem{ID: i, Home: sc.Item(i).Home, Load: sc.Load(i, p)})
			}
		}
		tr.Phases = append(tr.Phases, ph)
	}
	return tr
}

// SimConfig are the replay knobs, mirroring the live service's
// predictor and cost parameters.
type SimConfig struct {
	Alpha, Beta float64
	MaxAge      int
	LBCost      float64
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Beta == 0 {
		c.Beta = 0.3
	}
	if c.MaxAge == 0 {
		c.MaxAge = amt.DefaultMaxAge
	}
	if c.LBCost == 0 {
		c.LBCost = 20
	}
	return c
}

// SimResult is one replay's cost accounting — the same objective the
// live Result reports, so offline and online numbers compare directly.
type SimResult struct {
	Trigger      string
	Fires, Skips int
	TotalWaste   float64
	LBPaid       float64
	TotalCost    float64
}

// Simulate replays a trace against one trigger configuration: items
// start at their homes, each phase's per-rank loads feed the same
// Summary the live service would assemble, and a fired trigger applies
// a greedy longest-processing-time rebalance over the model's predicted
// loads (the offline stand-in for the tempered protocol). Deterministic
// in its inputs.
func Simulate(tr Trace, ts TriggerSpec, sim SimConfig) (SimResult, error) {
	sim = sim.withDefaults()
	if tr.Ranks < 1 {
		return SimResult{}, fmt.Errorf("serve: trace has %d ranks", tr.Ranks)
	}
	trig, err := ts.New()
	if err != nil {
		return SimResult{}, err
	}
	model := amt.NewLoadModel(sim.Alpha)
	model.SetTrend(sim.Beta)
	model.SetMaxAge(sim.MaxAge)

	assign := map[int]int{} // item id -> current rank
	res := SimResult{Trigger: trig.Name()}
	n := float64(tr.Ranks)
	sinceLB := 0

	for p, ph := range tr.Phases {
		loads := make([]float64, tr.Ranks)
		obsLoads := make(map[amt.ObjectID]float64, len(ph.Items))
		for _, it := range ph.Items {
			r, ok := assign[it.ID]
			if !ok {
				r = it.Home
				assign[it.ID] = r
			}
			loads[r] += it.Load
			obsLoads[simID(it.ID)] = it.Load
		}
		model.Observe(amt.PhaseStats{Loads: obsLoads})

		max, total := 0.0, 0.0
		for _, l := range loads {
			if l > max {
				max = l
			}
			total += l
		}
		predLoads := make([]float64, tr.Ranks)
		predMax, predTotal := 0.0, 0.0
		for _, id := range model.IDs() {
			r, ok := assign[itemOf(id)]
			if !ok {
				continue
			}
			predLoads[r] += model.Predict(id)
		}
		for _, l := range predLoads {
			if l > predMax {
				predMax = l
			}
			predTotal += l
		}

		sum := Summary{
			Phase: p, Max: max, Avg: total / n,
			PredMax: predMax, PredAvg: predTotal / n,
			SinceLB: sinceLB, LBCost: sim.LBCost,
		}
		res.TotalWaste += sum.Waste()
		d := trig.Decide(sum)
		if d.Fire {
			rebalance(model, assign, tr.Ranks)
			res.Fires++
			res.LBPaid += sim.LBCost
			sinceLB = 0
		} else {
			res.Skips++
			sinceLB++
		}
	}
	res.TotalCost = res.TotalWaste + res.LBPaid
	return res, nil
}

// simID wraps an item id into a synthetic ObjectID so the replay can
// drive the real amt.LoadModel.
func simID(item int) amt.ObjectID { return amt.MakeObjectID(0, int64(item+1)) }

// itemOf inverts simID.
func itemOf(id amt.ObjectID) int { return int(int64(id)&(1<<40-1)) - 1 }

// rebalance applies greedy LPT over the model's predictions: items in
// descending predicted load (ties by id), each to the currently
// least-loaded rank (ties by rank index) — a deterministic stand-in
// for what a live invocation achieves.
func rebalance(model *amt.LoadModel, assign map[int]int, ranks int) {
	ids := model.IDs()
	sort.SliceStable(ids, func(a, b int) bool {
		la, lb := model.Predict(ids[a]), model.Predict(ids[b])
		if la != lb {
			return la > lb
		}
		return ids[a] < ids[b]
	})
	loads := make([]float64, ranks)
	for _, id := range ids {
		best := 0
		for r := 1; r < ranks; r++ {
			if loads[r] < loads[best] {
				best = r
			}
		}
		loads[best] += model.Predict(id)
		assign[itemOf(id)] = best
	}
}

// Candidate is one grid point of a tuning sweep.
type Candidate struct {
	Spec   TriggerSpec
	Result SimResult
}

// Tune grid-searches trigger parameters against a trace and returns
// the cheapest candidate (ties broken by fewer fires, then grid
// order — fully deterministic). families selects which trigger
// families to sweep; nil sweeps all three.
func Tune(tr Trace, families []string, sim SimConfig) (Candidate, []Candidate, error) {
	if families == nil {
		families = []string{"every", "threshold", "forecast"}
	}
	var grid []TriggerSpec
	for _, fam := range families {
		switch fam {
		case "every":
			for _, k := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
				grid = append(grid, TriggerSpec{Family: "every", K: k})
			}
		case "threshold":
			for _, h := range []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.75, 1} {
				grid = append(grid, TriggerSpec{Family: "threshold", Threshold: h})
			}
		case "forecast":
			for _, head := range []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4} {
				grid = append(grid, TriggerSpec{Family: "forecast", Headroom: head})
			}
		default:
			return Candidate{}, nil, fmt.Errorf("serve: unknown trigger family %q", fam)
		}
	}
	var all []Candidate
	best := -1
	for _, ts := range grid {
		r, err := Simulate(tr, ts, sim)
		if err != nil {
			return Candidate{}, nil, err
		}
		all = append(all, Candidate{Spec: ts, Result: r})
		i := len(all) - 1
		if best < 0 ||
			r.TotalCost < all[best].Result.TotalCost ||
			(r.TotalCost == all[best].Result.TotalCost && r.Fires < all[best].Result.Fires) {
			best = i
		}
	}
	return all[best], all, nil
}
