package serve

import (
	"encoding/json"
	"reflect"
	"testing"
)

func testTrace(t *testing.T, kind Kind) Trace {
	t.Helper()
	sc, err := NewScenario(testSpec(kind))
	if err != nil {
		t.Fatal(err)
	}
	return RecordTrace(sc)
}

func TestTraceRoundTripsThroughJSON(t *testing.T) {
	tr := testTrace(t, KindBurst)
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Error("trace changed through JSON")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	tr := testTrace(t, KindChurn)
	ts := TriggerSpec{Family: "forecast", Headroom: 1}
	a, err := Simulate(tr, ts, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(tr, ts, SimConfig{})
	if a != b {
		t.Errorf("two replays differ: %+v vs %+v", a, b)
	}
	if a.Fires+a.Skips != len(tr.Phases) {
		t.Errorf("fires %d + skips %d != %d phases", a.Fires, a.Skips, len(tr.Phases))
	}
}

func TestSimulateRebalanceReducesWaste(t *testing.T) {
	// Rebalancing every phase must not cost more waste than never
	// rebalancing on a clustered burst trace.
	tr := testTrace(t, KindBurst)
	never, err := Simulate(tr, TriggerSpec{Family: "threshold", Threshold: 1e12}, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	always, err := Simulate(tr, TriggerSpec{Family: "every", K: 1}, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if never.Fires != 0 {
		t.Fatalf("never-trigger fired %d times", never.Fires)
	}
	if always.TotalWaste >= never.TotalWaste {
		t.Errorf("always-rebalance waste %.2f not below never-rebalance %.2f", always.TotalWaste, never.TotalWaste)
	}
}

func TestTunePicksCheapestAndIsDeterministic(t *testing.T) {
	tr := testTrace(t, KindBurst)
	best, all, err := Tune(tr, nil, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("empty grid")
	}
	for _, c := range all {
		if c.Result.TotalCost < best.Result.TotalCost {
			t.Errorf("candidate %s cost %.2f beats reported best %s %.2f",
				c.Spec, c.Result.TotalCost, best.Spec, best.Result.TotalCost)
		}
	}
	best2, all2, _ := Tune(tr, nil, SimConfig{})
	if !reflect.DeepEqual(best, best2) || !reflect.DeepEqual(all, all2) {
		t.Error("two tuning sweeps differ")
	}
	if _, _, err := Tune(tr, []string{"nope"}, SimConfig{}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestTuneFamilySubset(t *testing.T) {
	tr := testTrace(t, KindDiurnal)
	best, all, err := Tune(tr, []string{"forecast"}, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		if c.Spec.Family != "forecast" {
			t.Fatalf("family subset leaked %s", c.Spec)
		}
	}
	if best.Spec.Family != "forecast" {
		t.Errorf("best %s outside requested family", best.Spec)
	}
}
