package serve

import (
	"strings"
	"testing"
)

// sum builds a Summary with the fields the triggers read.
func sum(phase int, max, avg, predMax, predAvg float64, sinceLB int, lbCost float64) Summary {
	return Summary{Phase: phase, Max: max, Avg: avg, PredMax: predMax, PredAvg: predAvg, SinceLB: sinceLB, LBCost: lbCost}
}

func TestEveryKHandTrace(t *testing.T) {
	trig := &EveryK{K: 3}
	// SinceLB as the service maintains it: 0 after an LB, growing while
	// skipping. K=3 fires on the 3rd phase after each invocation.
	want := []bool{false, false, true, false, false, true}
	since := 0
	for p, w := range want {
		d := trig.Decide(sum(p, 10, 5, 10, 5, since, 20))
		if d.Fire != w {
			t.Errorf("phase %d: fire=%v, want %v", p, d.Fire, w)
		}
		if d.Fire {
			since = 0
		} else {
			since++
		}
	}
}

func TestEveryOneIsAlwaysLB(t *testing.T) {
	trig := &EveryK{K: 1}
	for p := 0; p < 5; p++ {
		if !trig.Decide(sum(p, 1, 1, 1, 1, 0, 20)).Fire {
			t.Fatalf("phase %d: every:1 skipped", p)
		}
	}
}

func TestImbalanceThresholdHandTrace(t *testing.T) {
	trig := &ImbalanceThreshold{H: 0.25}
	cases := []struct {
		max, avg float64
		fire     bool
	}{
		{10, 10, false},   // I = 0
		{12, 10, false},   // I = 0.2
		{12.5, 10, false}, // I = 0.25, not strictly above
		{13, 10, true},    // I = 0.3
		{0, 0, false},     // idle system
	}
	for i, c := range cases {
		d := trig.Decide(sum(i, c.max, c.avg, 0, 0, i, 20))
		if d.Fire != c.fire {
			t.Errorf("case %d (max %g avg %g): fire=%v, want %v", i, c.max, c.avg, d.Fire, c.fire)
		}
	}
}

// TestForecastHandTrace follows the rent-to-buy accumulator by hand:
// waste (max−avg) accrues each phase, the forecast next-phase waste is
// added on top, and the trigger fires exactly when the total reaches
// LBCost — then resets.
func TestForecastHandTrace(t *testing.T) {
	trig := &Forecast{}
	const cost = 20.0
	steps := []struct {
		max, avg, predMax, predAvg float64
		fire                       bool
	}{
		// accum 6, next 6: 12 < 20.
		{16, 10, 16, 10, false},
		// accum 12, next 6: 18 < 20.
		{16, 10, 16, 10, false},
		// accum 18, next 6: 24 >= 20 — fire, reset.
		{16, 10, 16, 10, true},
		// accum 6, next 0: 6 < 20 (balanced forecast).
		{16, 10, 10, 10, false},
		// accum 6+16=22 >= 20 — a burst fires immediately.
		{26, 10, 30, 10, true},
	}
	for i, s := range steps {
		d := trig.Decide(sum(i, s.max, s.avg, s.predMax, s.predAvg, i, cost))
		if d.Fire != s.fire {
			t.Errorf("step %d: fire=%v (%s), want %v", i, d.Fire, d.Why, s.fire)
		}
	}
}

func TestForecastPredWasteClamped(t *testing.T) {
	trig := &Forecast{}
	// Predicted max below predicted avg can't subtract from the accum.
	d := trig.Decide(sum(0, 30, 10, 5, 10, 0, 20))
	if !d.Fire {
		t.Errorf("realized waste 20 >= cost 20 must fire even with a negative forecast: %s", d.Why)
	}
}

func TestForecastHeadroom(t *testing.T) {
	tight := &Forecast{Headroom: 0.5}
	loose := &Forecast{Headroom: 2}
	s := sum(0, 16, 10, 16, 10, 0, 20) // accum 6 + next 6 = 12
	if !tight.Decide(s).Fire {
		t.Error("headroom 0.5 (budget 10) should fire at 12")
	}
	if loose.Decide(s).Fire {
		t.Error("headroom 2 (budget 40) should not fire at 12")
	}
}

func TestParseTriggerRoundTrip(t *testing.T) {
	for _, s := range []string{"always", "every:4", "threshold:0.25", "forecast", "forecast:headroom=1.5"} {
		ts, err := ParseTrigger(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		trig, err := ts.New()
		if err != nil {
			t.Fatalf("%q: New: %v", s, err)
		}
		if trig.Name() == "" {
			t.Fatalf("%q: empty name", s)
		}
		// String must reparse to the same spec.
		ts2, err := ParseTrigger(ts.String())
		if err != nil {
			t.Fatalf("%q: reparse %q: %v", s, ts.String(), err)
		}
		if ts2 != ts {
			t.Errorf("%q: round trip %+v != %+v", s, ts2, ts)
		}
	}
}

func TestParseTriggerRejects(t *testing.T) {
	for _, s := range []string{"", "sometimes", "every:0", "every:x", "threshold:-1", "forecast:headroom=0", "forecast:x=1", "always:2"} {
		if _, err := ParseTrigger(s); err == nil {
			t.Errorf("%q: accepted", s)
		}
	}
}

func TestTriggerDecisionsAreDeterministic(t *testing.T) {
	// Two instances fed the same summary sequence agree bit-for-bit —
	// the per-rank lockstep property the service's induction needs.
	mk := func() []Trigger {
		return []Trigger{&EveryK{K: 2}, &ImbalanceThreshold{H: 0.2}, &Forecast{}}
	}
	a, b := mk(), mk()
	for p := 0; p < 20; p++ {
		s := sum(p, float64(10+p%7), 8, float64(9+p%5), 8, p%3, 15)
		for i := range a {
			da, db := a[i].Decide(s), b[i].Decide(s)
			if da != db {
				t.Fatalf("trigger %s phase %d: %+v != %+v", a[i].Name(), p, da, db)
			}
			if strings.ContainsAny(da.Why, "\n") {
				t.Fatalf("trigger %s: multi-line Why breaks the log format", a[i].Name())
			}
		}
	}
}
