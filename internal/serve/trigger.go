package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// Summary is the rank-identical view of one finished phase, assembled
// from two AllReduceVec collectives over [observed total, predicted
// total]. Because every field is a collective output (or configuration
// shared by every rank), a deterministic Trigger fed the phase-ordered
// sequence of Summaries reaches the same decision on every rank — the
// induction the service's determinism rests on (see the package doc).
type Summary struct {
	// Phase is the zero-based phase index.
	Phase int
	// Max and Avg are the observed per-rank load maximum and mean.
	Max, Avg float64
	// PredMax and PredAvg are the predictor's view of the next phase:
	// the maximum and mean of the per-rank predicted totals.
	PredMax, PredAvg float64
	// SinceLB counts phases since the balancer last ran (0 in the phase
	// right after an invocation; grows while skipping).
	SinceLB int
	// LBCost is the configured cost of one balancer invocation, in load
	// units — the currency the forecast criterion trades in.
	LBCost float64
}

// Imbalance is the observed I = max/avg − 1 (0 on an idle system).
func (s Summary) Imbalance() float64 {
	if s.Avg == 0 {
		return 0
	}
	return s.Max/s.Avg - 1
}

// PredImbalance is the predicted next-phase I = max/avg − 1.
func (s Summary) PredImbalance() float64 {
	if s.PredAvg == 0 {
		return 0
	}
	return s.PredMax/s.PredAvg - 1
}

// Waste is the phase's imbalance cost: the work the slowest rank did
// beyond the mean, max − avg. Summed over phases this is exactly the
// wall-clock lost to imbalance, the quantity the LB-invocation
// criterion of arXiv:2104.01688 balances against the cost of
// rebalancing.
func (s Summary) Waste() float64 { return s.Max - s.Avg }

// PredWaste is the forecast next-phase imbalance cost, clamped at 0.
func (s Summary) PredWaste() float64 {
	w := s.PredMax - s.PredAvg
	if w < 0 {
		return 0
	}
	return w
}

// Decision is a trigger's verdict for one phase.
type Decision struct {
	Fire bool
	// Why is a short deterministic explanation, rendered into the
	// trigger log (and therefore into the serve-smoke golden) — format
	// values with fixed precision only.
	Why string
}

// Trigger decides, once per finished phase, whether to invoke the
// balancer. Implementations may keep state between calls but must be
// pure functions of their configuration and the Summary sequence —
// no clocks, no randomness, no rank identity — so that every rank's
// instance stays in lockstep.
type Trigger interface {
	Name() string
	Decide(s Summary) Decision
}

// EveryK fires every k-th phase — k = 1 is the always-LB baseline of
// the batch harness, the policy the smarter triggers are measured
// against.
type EveryK struct{ K int }

// Name implements Trigger.
func (t *EveryK) Name() string { return fmt.Sprintf("every:%d", t.K) }

// Decide implements Trigger: fire once SinceLB reaches K−1, i.e. every
// K-th phase.
func (t *EveryK) Decide(s Summary) Decision {
	if s.SinceLB >= t.K-1 {
		return Decision{Fire: true, Why: fmt.Sprintf("period %d reached", t.K)}
	}
	return Decision{Why: fmt.Sprintf("phase %d of %d", s.SinceLB+1, t.K)}
}

// ImbalanceThreshold fires whenever the observed imbalance exceeds H —
// reactive: it waits for damage to materialize, then rebalances.
type ImbalanceThreshold struct{ H float64 }

// Name implements Trigger.
func (t *ImbalanceThreshold) Name() string { return fmt.Sprintf("threshold:%.4g", t.H) }

// Decide implements Trigger.
func (t *ImbalanceThreshold) Decide(s Summary) Decision {
	imb := s.Imbalance()
	if imb > t.H {
		return Decision{Fire: true, Why: fmt.Sprintf("imb %.4f > %.4f", imb, t.H)}
	}
	return Decision{Why: fmt.Sprintf("imb %.4f <= %.4f", imb, t.H)}
}

// Forecast implements the LB-invocation criterion of Boulmier et al.
// (arXiv:2104.01688), in its rent-to-buy form: accumulate the realized
// imbalance cost since the last rebalancing and add the predicted
// next-phase cost from the load model; once that total reaches the
// (headroom-scaled) cost of one balancer invocation, rebalancing pays
// for itself — fire and reset. On steady workloads the accumulator
// grows slowly and LB stays rare; when a burst hits, the realized and
// forecast waste cross the threshold within a phase or two.
type Forecast struct {
	// Headroom scales the LB cost the accumulator must reach (default
	// 1). Above 1 the trigger tolerates more imbalance before paying
	// for a rebalance; below 1 it fires earlier.
	Headroom float64

	accum float64
}

// Name implements Trigger.
func (t *Forecast) Name() string { return fmt.Sprintf("forecast:%.4g", t.headroom()) }

func (t *Forecast) headroom() float64 {
	if t.Headroom <= 0 {
		return 1
	}
	return t.Headroom
}

// Decide implements Trigger.
func (t *Forecast) Decide(s Summary) Decision {
	t.accum += s.Waste()
	next := s.PredWaste()
	budget := s.LBCost * t.headroom()
	if t.accum+next >= budget {
		why := fmt.Sprintf("accum %.4f + next %.4f >= budget %.4f", t.accum, next, budget)
		t.accum = 0
		return Decision{Fire: true, Why: why}
	}
	return Decision{Why: fmt.Sprintf("accum %.4f + next %.4f < budget %.4f", t.accum, next, budget)}
}

// TriggerSpec is a parseable, comparable description of a trigger —
// the form configuration flags and the tuner trade in. Each rank (and
// each simulation) constructs its own Trigger instance from the spec,
// so per-rank trigger state is never shared.
type TriggerSpec struct {
	// Family is "every", "threshold" or "forecast".
	Family string
	// K is the period for "every" (default 1).
	K int
	// Threshold is the imbalance bound for "threshold" (default 0.1).
	Threshold float64
	// Headroom scales the forecast budget (default 1).
	Headroom float64
}

// ParseTrigger parses a trigger directive:
//
//	always                 — alias for every:1
//	every:K                — fire every K-th phase
//	threshold:H            — fire when observed imbalance exceeds H
//	forecast[:headroom=X]  — the arXiv:2104.01688 criterion
func ParseTrigger(s string) (TriggerSpec, error) {
	fam, arg, hasArg := strings.Cut(s, ":")
	switch fam {
	case "always":
		if hasArg {
			return TriggerSpec{}, fmt.Errorf("serve: trigger %q: always takes no argument", s)
		}
		return TriggerSpec{Family: "every", K: 1}, nil
	case "every":
		k := 1
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return TriggerSpec{}, fmt.Errorf("serve: trigger %q: want every:K with K >= 1", s)
			}
			k = v
		}
		return TriggerSpec{Family: "every", K: k}, nil
	case "threshold":
		h := 0.1
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || v < 0 {
				return TriggerSpec{}, fmt.Errorf("serve: trigger %q: want threshold:H with H >= 0", s)
			}
			h = v
		}
		return TriggerSpec{Family: "threshold", Threshold: h}, nil
	case "forecast":
		head := 1.0
		if hasArg {
			key, val, ok := strings.Cut(arg, "=")
			if !ok || key != "headroom" {
				return TriggerSpec{}, fmt.Errorf("serve: trigger %q: want forecast or forecast:headroom=X", s)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v <= 0 {
				return TriggerSpec{}, fmt.Errorf("serve: trigger %q: headroom must be > 0", s)
			}
			head = v
		}
		return TriggerSpec{Family: "forecast", Headroom: head}, nil
	}
	return TriggerSpec{}, fmt.Errorf("serve: unknown trigger family %q (want always, every, threshold or forecast)", fam)
}

// New constructs a fresh Trigger from the spec.
func (ts TriggerSpec) New() (Trigger, error) {
	switch ts.Family {
	case "every":
		k := ts.K
		if k < 1 {
			k = 1
		}
		return &EveryK{K: k}, nil
	case "threshold":
		return &ImbalanceThreshold{H: ts.Threshold}, nil
	case "forecast":
		head := ts.Headroom
		if head <= 0 {
			head = 1
		}
		return &Forecast{Headroom: head}, nil
	}
	return nil, fmt.Errorf("serve: unknown trigger family %q", ts.Family)
}

// String renders the spec in the form ParseTrigger accepts.
func (ts TriggerSpec) String() string {
	switch ts.Family {
	case "every":
		return fmt.Sprintf("every:%d", ts.K)
	case "threshold":
		return fmt.Sprintf("threshold:%g", ts.Threshold)
	case "forecast":
		return fmt.Sprintf("forecast:headroom=%g", ts.Headroom)
	}
	return ts.Family
}
