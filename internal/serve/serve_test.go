package serve

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"temperedlb/internal/amt"
	"temperedlb/internal/comm/wire"
	"temperedlb/internal/lb/tempered"
)

func serveConfig(kind Kind) Config {
	return Config{
		Scenario: Spec{Kind: kind, Ranks: 6, Phases: 18, Items: 36, Seed: 11},
		Trigger:  TriggerSpec{Family: "forecast", Headroom: 1},
	}
}

// runService executes one service run on the named transport and
// returns every rank's Result. For "unix" and "tcp" the job is an
// in-process cluster of `nodes` partial networks joined by real
// sockets, one runtime per node — exactly how cmd/lbserve hosts them.
func runService(t *testing.T, transport string, nodes int, cfg Config) []Result {
	t.Helper()
	n := cfg.Scenario.Ranks
	results := make([]Result, n)
	body := func(h *tempered.Handlers) func(rc *amt.Context) {
		return func(rc *amt.Context) {
			res, err := Run(rc, h, cfg)
			if err != nil {
				t.Errorf("rank %d: %v", rc.Rank(), err)
				return
			}
			results[rc.Rank()] = res
		}
	}
	if transport == "memory" {
		rt := amt.New(n)
		rt.Run(body(tempered.RegisterHandlers(rt, 100)))
		return results
	}
	cluster, err := wire.NewCluster(transport, n, nodes, 0x5e12e)
	if err != nil {
		t.Fatalf("%s cluster: %v", transport, err)
	}
	defer cluster.Close()
	var wg sync.WaitGroup
	for _, tr := range cluster.Transports {
		rt := amt.New(n, amt.WithTransport(tr))
		b := body(tempered.RegisterHandlers(rt, 100))
		wg.Add(1)
		go func(rt *amt.Runtime) {
			defer wg.Done()
			rt.Run(b)
		}(rt)
	}
	wg.Wait()
	for _, tr := range cluster.Transports {
		if err := tr.Err(); err != nil {
			t.Fatalf("%s transport failed: %v", transport, err)
		}
	}
	return results
}

// stripLocal zeroes the one legitimately rank-local field so results
// can be compared across ranks.
func stripLocal(r Result) Result {
	r.LocalMigrations = 0
	return r
}

// TestServiceRankAgreement: every rank of one run must produce the
// same trigger-decision log and cost accounting — the collective
// agreement the whole design rests on.
func TestServiceRankAgreement(t *testing.T) {
	for _, kind := range []Kind{KindBurst, KindChurn} {
		results := runService(t, "memory", 1, serveConfig(kind))
		want := stripLocal(results[0])
		if want.Fires == 0 {
			t.Errorf("%s: trigger never fired; scenario too tame to test agreement", kind)
		}
		if want.AssignFP == 0 {
			t.Errorf("%s: zero assignment fingerprint", kind)
		}
		for r := 1; r < len(results); r++ {
			if !reflect.DeepEqual(stripLocal(results[r]), want) {
				t.Errorf("%s: rank %d disagrees with rank 0", kind, r)
			}
		}
	}
}

// TestServiceCrossTransportIdentity is the tentpole acceptance test:
// the same spec and seed must produce a bit-identical trigger log and
// result on the in-memory transport and on Unix/TCP socket clusters at
// two different node counts.
func TestServiceCrossTransportIdentity(t *testing.T) {
	cfg := serveConfig(KindBurst)
	want := stripLocal(runService(t, "memory", 1, cfg)[0])

	for _, tc := range []struct {
		transport string
		nodes     int
	}{
		{"unix", 2}, {"unix", 3}, {"tcp", 2},
	} {
		results := runService(t, tc.transport, tc.nodes, cfg)
		for r := range results {
			if got := stripLocal(results[r]); !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%d nodes: rank %d result differs from memory run", tc.transport, tc.nodes, r)
				break
			}
		}
	}
}

// TestServiceLogDeterministic: WriteLog output is byte-identical across
// two independent runs (the serve-smoke contract, in-process).
func TestServiceLogDeterministic(t *testing.T) {
	cfg := serveConfig(KindBurst)
	var a, b bytes.Buffer
	if err := WriteLog(&a, cfg, runService(t, "memory", 1, cfg)[0]); err != nil {
		t.Fatal(err)
	}
	if err := WriteLog(&b, cfg, runService(t, "memory", 1, cfg)[0]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical runs rendered different logs")
	}
	if a.Len() == 0 {
		t.Error("empty log")
	}
}

// TestServiceMigratedWorkFollowsObject: after invocations move objects
// off their homes, total observed work per phase must still equal the
// scenario's alive-item load sum — work follows the object, wherever
// it lives.
func TestServiceMigratedWorkFollowsObject(t *testing.T) {
	cfg := serveConfig(KindBurst)
	cfg.Trigger = TriggerSpec{Family: "every", K: 2}
	results := runService(t, "memory", 1, cfg)
	if sumMigrations(results) == 0 {
		t.Fatal("no migrations at all; test exercises nothing")
	}
	sc, _ := NewScenario(cfg.Scenario.withDefaults())
	for p, row := range results[0].Rows {
		want := 0.0
		for i := 0; i < sc.NumItems(); i++ {
			want += sc.Load(i, p)
		}
		got := row.Avg * float64(cfg.Scenario.Ranks)
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("phase %d: observed total %g, scenario total %g", p, got, want)
		}
	}
}

// TestForecastBeatsAlwaysOnBurst: on a bursty workload the forecast
// criterion must undercut always-LB on total cost (waste + LB paid) —
// the acceptance claim the EXPERIMENTS entry documents.
func TestForecastBeatsAlwaysOnBurst(t *testing.T) {
	cfg := serveConfig(KindBurst)
	cfg.Scenario.Phases = 30

	always := cfg
	always.Trigger = TriggerSpec{Family: "every", K: 1}
	alwaysRes := runService(t, "memory", 1, always)[0]

	forecast := cfg
	forecast.Trigger = TriggerSpec{Family: "forecast", Headroom: 1}
	forecastRes := runService(t, "memory", 1, forecast)[0]

	if forecastRes.Fires >= alwaysRes.Fires {
		t.Errorf("forecast fired %d times, always %d — no invocation savings", forecastRes.Fires, alwaysRes.Fires)
	}
	if forecastRes.TotalCost >= alwaysRes.TotalCost {
		t.Errorf("forecast total cost %.2f not below always-LB %.2f (waste %.2f vs %.2f, paid %.2f vs %.2f)",
			forecastRes.TotalCost, alwaysRes.TotalCost,
			forecastRes.TotalWaste, alwaysRes.TotalWaste,
			forecastRes.LBPaid, alwaysRes.LBPaid)
	}
}

// TestServiceRejectsBadConfig covers the early-error paths.
func TestServiceRejectsBadConfig(t *testing.T) {
	rt := amt.New(4)
	h := tempered.RegisterHandlers(rt, 100)
	rt.Run(func(rc *amt.Context) {
		cfg := serveConfig(KindBurst) // scenario says 6 ranks, runtime has 4
		if _, err := Run(rc, h, cfg); err == nil {
			t.Error("rank mismatch accepted")
		}
		cfg = serveConfig(KindBurst)
		cfg.Scenario.Ranks = 4
		cfg.Trigger = TriggerSpec{Family: "nope"}
		if _, err := Run(rc, h, cfg); err == nil {
			t.Error("unknown trigger accepted")
		}
	})
}

func sumMigrations(rs []Result) int {
	n := 0
	for _, r := range rs {
		n += r.LocalMigrations
	}
	return n
}
