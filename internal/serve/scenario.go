package serve

import (
	"fmt"

	"temperedlb/internal/core"
)

// Kind selects one of the deterministic workload generators. Each kind
// produces a different flavour of time-varying imbalance, so the
// trigger policies can be compared on the regimes the LB-invocation
// literature cares about (arXiv:2104.01688 §V).
type Kind int

const (
	// KindRamp grows the hot ranks' loads linearly: imbalance drifts
	// upward phase over phase, the regime where the trend term of the
	// predictor (arXiv:1909.07168) pays off.
	KindRamp Kind = iota
	// KindDiurnal oscillates loads on a triangle wave, hot ranks in
	// anti-phase with the rest: imbalance rises and falls periodically.
	KindDiurnal
	// KindBurst keeps loads steady except for short seeded spikes that
	// multiply one home-rank's items severalfold: long quiet stretches
	// punctuated by sudden imbalance, the worst case for always-LB.
	KindBurst
	// KindChurn gives items finite lifetimes — arrivals and departures
	// shift the load distribution continuously.
	KindChurn
)

// String names the kind as accepted by ParseKind.
func (k Kind) String() string {
	switch k {
	case KindRamp:
		return "ramp"
	case KindDiurnal:
		return "diurnal"
	case KindBurst:
		return "burst"
	case KindChurn:
		return "churn"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses a scenario name: ramp | diurnal | burst | churn.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "ramp":
		return KindRamp, nil
	case "diurnal":
		return KindDiurnal, nil
	case "burst":
		return KindBurst, nil
	case "churn":
		return KindChurn, nil
	}
	return 0, fmt.Errorf("serve: unknown scenario %q (want ramp, diurnal, burst or churn)", s)
}

// Spec parameterizes a scenario. Every process of a job must construct
// its scenario from an identical Spec: the generator is a pure function
// of the spec, so the resulting event stream — and therefore every
// trigger input — is identical everywhere without any coordination.
type Spec struct {
	Kind   Kind
	Ranks  int
	Phases int
	// Items is the number of logical tasks generated over the whole run.
	Items int
	Seed  int64
	// Hot is the number of ranks that home the skewed share of the
	// items (default max(1, Ranks/4)).
	Hot int
}

func (s Spec) withDefaults() Spec {
	if s.Hot <= 0 {
		s.Hot = s.Ranks / 4
		if s.Hot < 1 {
			s.Hot = 1
		}
	}
	return s
}

func (s Spec) validate() error {
	if s.Ranks < 1 {
		return fmt.Errorf("serve: scenario needs at least 1 rank, got %d", s.Ranks)
	}
	if s.Phases < 1 {
		return fmt.Errorf("serve: scenario needs at least 1 phase, got %d", s.Phases)
	}
	if s.Items < 1 {
		return fmt.Errorf("serve: scenario needs at least 1 item, got %d", s.Items)
	}
	if s.Hot > s.Ranks {
		return fmt.Errorf("serve: %d hot ranks exceed %d ranks", s.Hot, s.Ranks)
	}
	return nil
}

// Item is one logical task of the stream: homed on a rank, alive for
// [Start, End) phases, with a per-phase load curve determined by the
// scenario kind. The curve is a function of the item and the phase
// only, never of current placement, so whichever rank hosts the item
// can compute its load locally and identically.
type Item struct {
	Home       int
	Start, End int
	Base       float64
	Slope      float64 // ramp: fractional load growth per phase
	Offset     int     // diurnal: phase shift into the triangle wave
}

// burstWindow multiplies the loads of every item homed on Victim by
// Mult during phases [Start, End).
type burstWindow struct {
	Start, End int
	Victim     int
	Mult       float64
}

// Scenario is a fully precomputed event stream: items with homes,
// lifetimes and load curves, plus (for KindBurst) the spike windows.
// Construction is deterministic in the Spec — two processes that build
// the same Spec hold bit-identical scenarios.
type Scenario struct {
	Spec   Spec
	items  []Item
	bursts []burstWindow
	period int // diurnal wave period

	// arrivals[rank] lists item indices in creation order: ascending by
	// (Start, index). The service loop creates each rank's objects in
	// exactly this order, so object ids are reproducible.
	arrivals [][]int
}

// NewScenario builds the deterministic event stream for a spec.
func NewScenario(spec Spec) (*Scenario, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	sc := &Scenario{Spec: spec}
	sc.period = spec.Phases / 4
	if sc.period < 8 {
		sc.period = 8
	}

	// Item construction draws from per-item seeded streams, so the
	// generator is insensitive to evaluation order and future spec
	// fields can add streams without disturbing existing ones.
	for i := 0; i < spec.Items; i++ {
		rng := core.SeededRNG(spec.Seed, int64(i), 0x5ce)
		it := Item{Start: 0, End: spec.Phases}
		// Placement: three quarters of the items cluster on the hot
		// ranks, the rest spread uniformly — the clustered placement of
		// the batch harness, extended in time.
		if rng.Float64() < 0.75 {
			it.Home = int(rng.Int63n(int64(spec.Hot)))
		} else {
			it.Home = int(rng.Int63n(int64(spec.Ranks)))
		}
		it.Base = 1 + 4*rng.Float64()
		switch spec.Kind {
		case KindRamp:
			if it.Home < spec.Hot {
				it.Slope = 0.1 + 0.2*rng.Float64()
			}
		case KindDiurnal:
			// Hot-rank items peak together; the rest are in anti-phase,
			// so the wave moves load between the two groups.
			if it.Home < spec.Hot {
				it.Offset = 0
			} else {
				it.Offset = sc.period / 2
			}
		case KindChurn:
			it.Start = int(rng.Int63n(int64(3*spec.Phases/4 + 1)))
			life := spec.Phases/6 + int(rng.Int63n(int64(spec.Phases/3+1)))
			if life < 1 {
				life = 1
			}
			it.End = it.Start + life
			if it.End > spec.Phases {
				it.End = spec.Phases
			}
		}
		sc.items = append(sc.items, it)
	}

	if spec.Kind == KindBurst {
		n := spec.Phases / 12
		if n < 1 {
			n = 1
		}
		for b := 0; b < n; b++ {
			rng := core.SeededRNG(spec.Seed, int64(b), 0xb1257)
			w := burstWindow{
				Victim: int(rng.Int63n(int64(spec.Hot))),
				Mult:   4 + 4*rng.Float64(),
			}
			// Spread the windows over the run, skipping the first few
			// phases so the predictor has a baseline to contrast.
			span := spec.Phases / n
			w.Start = b*span + span/3
			w.End = w.Start + 2 + int(rng.Int63n(3))
			if w.End > spec.Phases {
				w.End = spec.Phases
			}
			sc.bursts = append(sc.bursts, w)
		}
	}

	sc.arrivals = make([][]int, spec.Ranks)
	for p := 0; p < spec.Phases; p++ {
		for i, it := range sc.items {
			if it.Start == p {
				sc.arrivals[it.Home] = append(sc.arrivals[it.Home], i)
			}
		}
	}
	return sc, nil
}

// NumItems returns the total item count.
func (sc *Scenario) NumItems() int { return len(sc.items) }

// Item returns item i.
func (sc *Scenario) Item(i int) Item { return sc.items[i] }

// Arrivals returns the indices of the items a rank must create, in
// creation order: items arriving at earlier phases first, ties by item
// index. ArrivalsAt restricts to one phase.
func (sc *Scenario) Arrivals(rank int) []int { return sc.arrivals[rank] }

// ArrivalsAt returns the items a rank creates at the given phase, in
// index order.
func (sc *Scenario) ArrivalsAt(rank, phase int) []int {
	var out []int
	for _, i := range sc.arrivals[rank] {
		if sc.items[i].Start == phase {
			out = append(out, i)
		}
	}
	return out
}

// Alive reports whether item i does work in the given phase.
func (sc *Scenario) Alive(i, phase int) bool {
	it := sc.items[i]
	return phase >= it.Start && phase < it.End
}

// Load returns item i's load in the given phase (0 when not alive).
// The curve uses only arithmetic whose result is fully determined by
// IEEE-754 — in particular a triangle wave rather than a sine, so the
// stream is reproducible across platforms and golden files hold.
func (sc *Scenario) Load(i, phase int) float64 {
	it := sc.items[i]
	if phase < it.Start || phase >= it.End {
		return 0
	}
	l := it.Base
	switch sc.Spec.Kind {
	case KindRamp:
		l *= 1 + it.Slope*float64(phase-it.Start)
	case KindDiurnal:
		l *= 0.25 + 1.5*triangle(phase+it.Offset, sc.period)
	case KindBurst:
		for _, w := range sc.bursts {
			if it.Home == w.Victim && phase >= w.Start && phase < w.End {
				l *= w.Mult
			}
		}
	}
	return l
}

// triangle is a [0,1] triangle wave of the given period: 0 at phase 0,
// 1 at period/2, back to 0 at period.
func triangle(phase, period int) float64 {
	pos := phase % period
	t := float64(pos) / float64(period)
	if t < 0.5 {
		return 2 * t
	}
	return 2 - 2*t
}
