package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"temperedlb/internal/amt"
	"temperedlb/internal/core"
	"temperedlb/internal/lb/tempered"
	"temperedlb/internal/obs"
)

// Config parameterizes one service run. Every rank of the job must be
// handed an identical Config (the same discipline as core.Config for
// the batch protocol).
type Config struct {
	Scenario Spec
	Trigger  TriggerSpec

	// LB is the tempered configuration used for each invocation. A zero
	// value selects the service default: the shipped TemperedLB
	// configuration with Rounds pinned to 1 (single-round gossip is a
	// pure canonicalized merge, so results are identical across
	// transports — the same pin as the cross-transport suite), Trials 2,
	// Iterations 4, and the scenario seed.
	LB core.Config

	// Alpha and Beta are the load model's level and trend smoothing
	// factors (defaults 0.5 and 0.3); MaxAge its absence age-out
	// (default amt.DefaultMaxAge).
	Alpha, Beta float64
	MaxAge      int

	// LBCost is the cost of one balancer invocation in load units — what
	// the forecast criterion weighs cumulative imbalance against, and
	// what the cost accounting charges per fire (default 20).
	LBCost float64
}

func (c Config) withDefaults() Config {
	if c.LB.Fanout == 0 {
		c.LB = core.Tempered()
		c.LB.Rounds = 1
		c.LB.Trials, c.LB.Iterations = 2, 4
		c.LB.Seed = c.Scenario.Seed
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Beta == 0 {
		c.Beta = 0.3
	}
	if c.MaxAge == 0 {
		c.MaxAge = amt.DefaultMaxAge
	}
	if c.LBCost == 0 {
		c.LBCost = 20
	}
	c.Scenario = c.Scenario.withDefaults()
	return c
}

// Row is one phase's entry in the trigger-decision log. Every field
// derives from collective outputs or shared configuration, so the log
// is identical on every rank — `make serve-smoke` diffs it against a
// golden and across transports.
type Row struct {
	Phase            int
	Max, Avg         float64
	PredMax, PredAvg float64
	Fired            bool
	Why              string
	FinalImb         float64 // post-LB imbalance, only when Fired
	InitialImb       float64 // pre-LB imbalance, only when Fired
}

// Result sums up a service run. Identical on every rank apart from
// LocalMigrations, which counts only the calling rank's shipped
// objects.
type Result struct {
	Trigger       string
	Ranks, Phases int
	Fires, Skips  int

	// TotalWaste is Σ over phases of (max − avg): the work lost to
	// imbalance. LBPaid is Fires × LBCost. TotalCost is their sum — the
	// objective the trigger policies compete on.
	TotalWaste, LBPaid, TotalCost float64

	// ForecastMAE is the mean absolute error of the predicted max rank
	// load against the next phase's observed max — the serve_* metric
	// for judging the load model.
	ForecastMAE float64

	// AssignFP is a collectively agreed 52-bit fingerprint of the final
	// object→rank assignment: identical on every rank, and equal across
	// transports iff every object ended the run on the same rank.
	AssignFP uint64

	Rows []Row

	// LocalMigrations counts objects this rank shipped out across all
	// invocations (rank-local by nature).
	LocalMigrations int
}

// Run executes the balancer service on the calling rank: Phases times,
// generate the phase's work from the scenario, fold the observations
// into the load model, agree on the phase summary with two vector
// collectives, ask the trigger, and — when it fires — run the tempered
// distributed protocol over the model's predictions. All ranks must
// call it collectively, with identical cfg, after registering the LB
// handlers.
//
// Determinism: the scenario is a pure function of the spec; each
// object's load is a function of (item, phase) carried in the object
// state, so work is computable wherever the object migrates; the
// trigger consumes only collectively-agreed summaries. By induction
// every rank makes the same fire/skip decision at every phase, so the
// collective call sequence never diverges — the property the
// cross-transport tests pin down.
func Run(rc *amt.Context, h *tempered.Handlers, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	sc, err := NewScenario(cfg.Scenario)
	if err != nil {
		return Result{}, err
	}
	if rc.NumRanks() != sc.Spec.Ranks {
		return Result{}, fmt.Errorf("serve: scenario spans %d ranks but the runtime has %d", sc.Spec.Ranks, rc.NumRanks())
	}
	trig, err := cfg.Trigger.New()
	if err != nil {
		return Result{}, err
	}
	model := amt.NewLoadModel(cfg.Alpha)
	model.SetTrend(cfg.Beta)
	model.SetMaxAge(cfg.MaxAge)

	self := int(rc.Rank())
	n := float64(rc.NumRanks())
	res := Result{Trigger: trig.Name(), Ranks: sc.Spec.Ranks, Phases: sc.Spec.Phases}

	// Streaming agreement, once per run: within a process the stream is
	// runtime-wide, but across processes it is not a local fact, so the
	// nodes agree with one scalar reduce (the discipline introduced for
	// streaming in the distributed balancer).
	stream := rc.Stream()
	streaming := stream != nil
	if _, wired := rc.WireTotals(); wired {
		var on float64
		if streaming {
			on = 1
		}
		streaming = rc.AllReduce(on, amt.ReduceMax) > 0
	}

	met := rc.Metrics()
	if met != nil {
		for fam, help := range map[string]string{
			"serve_phases_total":         "Service phases completed.",
			"serve_triggers_fired_total": "Phases on which the trigger invoked the balancer.",
			"serve_phases_skipped_total": "Phases on which the trigger skipped the balancer.",
			"serve_waste_total":          "Cumulative imbalance cost, sum of (max - avg) load per phase.",
			"serve_lb_cost_total":        "Cumulative balancer cost, fires times the configured LBCost.",
			"serve_forecast_mae":         "Mean absolute error of the predicted max rank load.",
		} {
			met.SetHelp(fam, help)
		}
	}

	var forecastAbsErr float64
	var forecastN int
	prevPredMax := 0.0
	havePrev := false
	sinceLB := 0

	for p := 0; p < sc.Spec.Phases; p++ {
		// Arrivals: create this phase's new local items, in index order
		// so object ids are reproducible. The state is the item index —
		// enough for any future owner to compute the item's load curve.
		for _, it := range sc.ArrivalsAt(self, p) {
			rc.CreateObject(float64(it))
		}

		// Work the phase: every local, alive object records its
		// scenario-determined load.
		rc.PhaseBegin()
		for _, id := range rc.LocalObjects() {
			st, _ := rc.ObjectState(id)
			it := int(st.(float64))
			if sc.Alive(it, p) {
				rc.RecordWork(id, sc.Load(it, p))
			}
		}
		stats := rc.PhaseEnd()
		model.Observe(stats)

		// Agree on the phase summary: element 0 is the observed rank
		// total, element 1 the predicted next-phase total. One Max and
		// one Sum sweep give every rank the same Summary bits.
		own := stats.Total
		predOwn := predictedTotal(model)
		maxes := rc.AllReduceVec([]float64{own, predOwn}, amt.ReduceMax)
		sums := rc.AllReduceVec([]float64{own, predOwn}, amt.ReduceSum)
		sum := Summary{
			Phase:   p,
			Max:     maxes[0],
			Avg:     sums[0] / n,
			PredMax: maxes[1],
			PredAvg: sums[1] / n,
			SinceLB: sinceLB,
			LBCost:  cfg.LBCost,
		}
		res.TotalWaste += sum.Waste()
		if havePrev {
			forecastAbsErr += math.Abs(prevPredMax - sum.Max)
			forecastN++
		}
		prevPredMax, havePrev = sum.PredMax, true

		if streaming {
			loadsVec := rc.AllGather(own)
			if self == 0 && stream != nil {
				stream.Publish(serveFrame(p, loadsVec))
			}
		}

		d := trig.Decide(sum)
		row := Row{
			Phase: p, Max: sum.Max, Avg: sum.Avg,
			PredMax: sum.PredMax, PredAvg: sum.PredAvg,
			Fired: d.Fire, Why: d.Why,
		}
		if d.Fire {
			lbCfg := cfg.LB
			// A distinct seed stream per invocation, derived
			// deterministically from the phase, so successive
			// invocations don't replay identical gossip dice.
			lbCfg.Seed = cfg.LB.Seed + int64(p+1)*7919
			dres, err := tempered.RunDistributed(rc, h, lbCfg, model.Predictions())
			if err != nil {
				return Result{}, fmt.Errorf("serve: phase %d LB invocation: %w", p, err)
			}
			row.InitialImb = dres.InitialImbalance
			row.FinalImb = dres.FinalImbalance
			res.Fires++
			res.LBPaid += cfg.LBCost
			res.LocalMigrations += dres.Migrations
			sinceLB = 0
			// Forget what migrated away: the receiving rank's model
			// starts fresh from its own observations (the ownership
			// handoff the predictor tests pin down).
			for _, id := range model.IDs() {
				if !rc.HasObject(id) {
					model.Forget(id)
				}
			}
		} else {
			res.Skips++
			sinceLB++
		}
		res.Rows = append(res.Rows, row)

		if met != nil {
			// Every rank stores the same collective-derived values, so
			// the serve_* families exist on every node of a
			// multi-process job.
			met.Counter("serve_phases_total").Store(int64(p + 1))
			met.Counter("serve_triggers_fired_total").Store(int64(res.Fires))
			met.Counter("serve_phases_skipped_total").Store(int64(res.Skips))
			met.Gauge("serve_waste_total").Set(res.TotalWaste)
			met.Gauge("serve_lb_cost_total").Set(res.LBPaid)
			if forecastN > 0 {
				met.Gauge("serve_forecast_mae").Set(forecastAbsErr / float64(forecastN))
			}
		}
	}

	res.TotalCost = res.TotalWaste + res.LBPaid
	if forecastN > 0 {
		res.ForecastMAE = forecastAbsErr / float64(forecastN)
	}
	res.AssignFP = assignmentFingerprint(rc)
	return res, nil
}

// assignmentFingerprint folds the final object→rank assignment into one
// agreed value: each rank FNV-hashes its sorted local object ids,
// truncated to 52 bits so the digest is exact in a float64, the
// per-rank digests are all-gathered, and every rank hashes the vector
// in rank order. A migration that left any object on a different rank
// under a different transport changes some rank's digest and therefore
// the fingerprint — the final-assignment identity the serve smoke and
// the cross-transport tests assert.
func assignmentFingerprint(rc *amt.Context) uint64 {
	const mask = 1<<52 - 1
	var buf [8]byte
	h := fnv.New64a()
	for _, id := range rc.LocalObjects() {
		binary.BigEndian.PutUint64(buf[:], uint64(id))
		h.Write(buf[:])
	}
	vec := rc.AllGather(float64(h.Sum64() & mask))
	g := fnv.New64a()
	for _, v := range vec {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		g.Write(buf[:])
	}
	return g.Sum64() & mask
}

// predictedTotal sums the model's one-phase-ahead predictions in
// ascending object-id order — the fixed FP combine order that keeps the
// collective inputs, and so the whole service, bit-deterministic.
func predictedTotal(m *amt.LoadModel) float64 {
	s := 0.0
	for _, id := range m.IDs() {
		s += m.Predict(id)
	}
	return s
}

// serveFrame builds the per-phase observability frame from the gathered
// load vector; the imbalance statistics use the vector's natural rank
// order.
func serveFrame(phase int, loads []float64) obs.Snapshot {
	f := obs.Snapshot{Source: "serve", Phase: "phase", Step: phase, Ranks: len(loads), Loads: loads}
	if len(loads) == 0 {
		return f
	}
	f.MinLoad = loads[0]
	for _, l := range loads {
		if l > f.MaxLoad {
			f.MaxLoad = l
		}
		if l < f.MinLoad {
			f.MinLoad = l
		}
		f.AvgLoad += l
	}
	f.AvgLoad /= float64(len(loads))
	for _, l := range loads {
		d := l - f.AvgLoad
		f.StdDev += d * d
	}
	f.StdDev = math.Sqrt(f.StdDev / float64(len(loads)))
	if f.AvgLoad > 0 {
		f.Imbalance = f.MaxLoad/f.AvgLoad - 1
	}
	return f
}

// WriteLog renders the trigger-decision log: a header line naming the
// run, then one line per phase. Everything printed is rank-identical
// and wall-clock free, so two runs of the same spec — on any transport,
// at any node count — produce byte-identical logs (the serve-smoke
// contract).
func WriteLog(w io.Writer, cfg Config, res Result) error {
	cfg = cfg.withDefaults()
	if _, err := fmt.Fprintf(w, "# serve scenario=%s ranks=%d phases=%d items=%d seed=%d trigger=%s lbcost=%g\n",
		cfg.Scenario.Kind, cfg.Scenario.Ranks, cfg.Scenario.Phases, cfg.Scenario.Items,
		cfg.Scenario.Seed, res.Trigger, cfg.LBCost); err != nil {
		return err
	}
	for _, r := range res.Rows {
		verdict := "skip"
		if r.Fired {
			verdict = "FIRE"
		}
		if _, err := fmt.Fprintf(w, "phase %3d  max %9.4f  avg %9.4f  pred_max %9.4f  %s  (%s)",
			r.Phase, r.Max, r.Avg, r.PredMax, verdict, r.Why); err != nil {
			return err
		}
		if r.Fired {
			if _, err := fmt.Fprintf(w, "  imb %.4f -> %.4f", r.InitialImb, r.FinalImb); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# fires %d  skips %d  waste %.4f  lb_paid %.4f  total_cost %.4f  forecast_mae %.4f  assign_fp %013x\n",
		res.Fires, res.Skips, res.TotalWaste, res.LBPaid, res.TotalCost, res.ForecastMAE, res.AssignFP)
	return err
}
