package stats

import (
	"fmt"
	"math"
	"sort"
)

// Imbalance computes the load imbalance metric
//
//	I = l_max / l_ave - 1
//
// over the given per-rank loads (Eq. 1). A perfectly balanced
// distribution has I = 0. Imbalance returns 0 for an empty slice or when
// the total load is zero (an all-idle system is trivially balanced).
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	max, sum := 0.0, 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	ave := sum / float64(len(loads))
	return max/ave - 1
}

// Summary captures the constant-size statistical data the ranks exchange
// in the initial all-reduce of the gossip protocol: the extrema, average,
// and total of the per-rank loads.
type Summary struct {
	Count int
	Min   float64
	Max   float64
	Sum   float64
	Ave   float64
}

// Summarize reduces per-rank loads to a Summary. It is the local
// equivalent of the all-reduce that starts every LB invocation.
func Summarize(loads []float64) Summary {
	s := Summary{Count: len(loads)}
	if len(loads) == 0 {
		return s
	}
	s.Min = math.Inf(1)
	for _, l := range loads {
		if l < s.Min {
			s.Min = l
		}
		if l > s.Max {
			s.Max = l
		}
		s.Sum += l
	}
	s.Ave = s.Sum / float64(s.Count)
	return s
}

// Imbalance returns the imbalance metric computed from the summary.
func (s Summary) Imbalance() float64 {
	if s.Count == 0 || s.Sum == 0 {
		return 0
	}
	return s.Max/s.Ave - 1
}

// Merge combines two summaries as an all-reduce combiner would: counts and
// sums add, extrema take the min/max. Merging with a zero-count summary is
// the identity.
func (s Summary) Merge(o Summary) Summary {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	m := Summary{
		Count: s.Count + o.Count,
		Min:   math.Min(s.Min, o.Min),
		Max:   math.Max(s.Max, o.Max),
		Sum:   s.Sum + o.Sum,
	}
	m.Ave = m.Sum / float64(m.Count)
	return m
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("count=%d min=%.4g max=%.4g ave=%.4g sum=%.4g I=%.4g",
		s.Count, s.Min, s.Max, s.Ave, s.Sum, s.Imbalance())
}

// Quantiles returns the values at the given fractions (each in [0,1]) of
// the sorted data. The input slice is not modified. Linear interpolation
// is used between order statistics. Quantiles of an empty slice are zero.
func Quantiles(data []float64, fracs ...float64) []float64 {
	out := make([]float64, len(fracs))
	if len(data) == 0 {
		return out
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	for i, f := range fracs {
		if f <= 0 {
			out[i] = sorted[0]
			continue
		}
		if f >= 1 {
			out[i] = sorted[len(sorted)-1]
			continue
		}
		pos := f * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			out[i] = sorted[lo]
		} else {
			frac := pos - float64(lo)
			out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
		}
	}
	return out
}

// StdDev returns the population standard deviation of the data.
func StdDev(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	ss := 0.0
	for _, v := range data {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(data)))
}

// LowerBoundMax returns the lower bound for the best achievable maximum
// per-rank load: the larger of the average rank load and the largest
// single task load (a task cannot be split across ranks). This is the
// "Lower bound (max)" curve of Fig. 4b.
func LowerBoundMax(rankAve, maxTaskLoad float64) float64 {
	return math.Max(rankAve, maxTaskLoad)
}
