package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestImbalanceBalanced(t *testing.T) {
	if got := Imbalance([]float64{3, 3, 3, 3}); !almostEqual(got, 0) {
		t.Errorf("Imbalance(balanced) = %g, want 0", got)
	}
}

func TestImbalanceKnownValue(t *testing.T) {
	// max = 6, ave = 3 -> I = 1.
	if got := Imbalance([]float64{6, 2, 2, 2}); !almostEqual(got, 1) {
		t.Errorf("Imbalance = %g, want 1", got)
	}
}

func TestImbalanceEmptyAndZero(t *testing.T) {
	if got := Imbalance(nil); got != 0 {
		t.Errorf("Imbalance(nil) = %g, want 0", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 0 {
		t.Errorf("Imbalance(zeros) = %g, want 0", got)
	}
}

func TestImbalanceSingleRank(t *testing.T) {
	if got := Imbalance([]float64{5}); !almostEqual(got, 0) {
		t.Errorf("Imbalance(single) = %g, want 0", got)
	}
}

func TestImbalanceNonNegativeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		loads := make([]float64, len(raw))
		for i, v := range raw {
			loads[i] = float64(v)
		}
		return Imbalance(loads) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImbalanceScaleInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = rng.Float64() * 10
		}
		scale := 0.1 + rng.Float64()*10
		scaled := make([]float64, n)
		for i := range loads {
			scaled[i] = loads[i] * scale
		}
		if a, b := Imbalance(loads), Imbalance(scaled); !almostEqual(a, b) {
			t.Fatalf("imbalance not scale invariant: %g vs %g (scale %g)", a, b, scale)
		}
	}
}

func TestImbalanceZeroIffEqualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = 1 + rng.Float64()
		}
		if Imbalance(loads) <= 1e-12 {
			t.Fatalf("random unequal loads gave I=0: %v", loads)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || !almostEqual(s.Min, 1) || !almostEqual(s.Max, 4) ||
		!almostEqual(s.Sum, 10) || !almostEqual(s.Ave, 2.5) {
		t.Errorf("Summarize = %+v", s)
	}
	if got, want := s.Imbalance(), 4/2.5-1; !almostEqual(got, want) {
		t.Errorf("Summary.Imbalance = %g, want %g", got, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Imbalance() != 0 {
		t.Errorf("Summarize(nil) = %+v", s)
	}
}

func TestSummaryMergeMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = rng.Float64() * 100
		}
		cut := rng.Intn(n + 1)
		merged := Summarize(loads[:cut]).Merge(Summarize(loads[cut:]))
		whole := Summarize(loads)
		if merged.Count != whole.Count || !almostEqual(merged.Min, whole.Min) ||
			!almostEqual(merged.Max, whole.Max) || !almostEqual(merged.Sum, whole.Sum) ||
			!almostEqual(merged.Ave, whole.Ave) {
			t.Fatalf("merge mismatch: %+v vs %+v", merged, whole)
		}
	}
}

func TestSummaryMergeIdentity(t *testing.T) {
	s := Summarize([]float64{2, 4})
	if got := s.Merge(Summary{}); got != s {
		t.Errorf("Merge with zero = %+v, want %+v", got, s)
	}
	if got := (Summary{}).Merge(s); got != s {
		t.Errorf("zero Merge = %+v, want %+v", got, s)
	}
}

func TestQuantiles(t *testing.T) {
	data := []float64{4, 1, 3, 2}
	q := Quantiles(data, 0, 0.5, 1)
	if !almostEqual(q[0], 1) || !almostEqual(q[1], 2.5) || !almostEqual(q[2], 4) {
		t.Errorf("Quantiles = %v", q)
	}
	// Input must be unmodified.
	if data[0] != 4 {
		t.Error("Quantiles modified its input")
	}
}

func TestQuantilesEmpty(t *testing.T) {
	q := Quantiles(nil, 0.5)
	if q[0] != 0 {
		t.Errorf("Quantiles(nil) = %v", q)
	}
}

func TestQuantilesOutOfRangeFracs(t *testing.T) {
	q := Quantiles([]float64{1, 2, 3}, -1, 2)
	if q[0] != 1 || q[1] != 3 {
		t.Errorf("clamped quantiles = %v, want [1 3]", q)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); !almostEqual(got, 0) {
		t.Errorf("StdDev(const) = %g", got)
	}
	// Population stddev of {1,3} is 1.
	if got := StdDev([]float64{1, 3}); !almostEqual(got, 1) {
		t.Errorf("StdDev = %g, want 1", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %g", got)
	}
}

func TestLowerBoundMax(t *testing.T) {
	if got := LowerBoundMax(2, 5); got != 5 {
		t.Errorf("LowerBoundMax = %g, want 5", got)
	}
	if got := LowerBoundMax(7, 5); got != 7 {
		t.Errorf("LowerBoundMax = %g, want 7", got)
	}
}
