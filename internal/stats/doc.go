// Package stats provides the load statistics used throughout the load
// balancing algorithms: the imbalance metric of Menon et al. (Eq. 1 of
// the paper), per-rank load summaries, and small descriptive-statistics
// helpers shared by the simulator and the runtime.
//
// # Concurrency
//
// Every function is pure — no package state, no mutation of arguments —
// so all of them are safe to call from any number of goroutines.
package stats
