package amt

import (
	"fmt"
	"time"

	"temperedlb/internal/clock"
	"temperedlb/internal/comm"
	"temperedlb/internal/core"
	"temperedlb/internal/obs"
	"temperedlb/internal/termination"
)

// Transport-level message kinds. All collectives share one up kind and
// one down kind: they differ only in payload width and combine op, both
// of which live on the calling ranks, never on the wire.
const (
	kindUser comm.Kind = iota
	kindObject
	kindMigrate
	kindLocUpdate
	kindToken
	kindDone
	kindCollUp
	kindCollDown
	kindAck
)

// envelope wraps user payloads with the epoch tag used by termination
// detection. EpochID 0 means the message is not part of any epoch.
type envelope struct {
	EpochID int64
	Data    any
}

// objEnvelope routes object-directed messages.
type objEnvelope struct {
	EpochID int64
	Obj     ObjectID
	Origin  core.Rank // logical sender (preserved across forwards)
	Data    any
}

// migrateEnvelope carries a migrating object's state.
type migrateEnvelope struct {
	EpochID int64
	Obj     ObjectID
	State   any
	Bytes   int
}

// locEnvelope updates the home rank's location directory.
type locEnvelope struct {
	EpochID int64
	Obj     ObjectID
	Loc     core.Rank
}

// tokenEnvelope carries the Safra probe.
type tokenEnvelope struct {
	EpochID int64
	Token   termination.Token
}

// Context is a logical rank's handle to the runtime. All of its methods
// must be called from the rank's own goroutine (the one running main or
// a handler dispatched on it).
type Context struct {
	rt   *Runtime
	rank core.Rank
	n    int

	epochSeq  int64 // id of the current (or last) epoch entered
	inEpoch   bool
	epochDone bool
	detectors map[int64]*termination.Detector
	pending   map[int64][]comm.Message

	// rel is the ack/retry reliability layer, non-nil only when the
	// runtime's fault plan can drop or duplicate counted messages.
	rel *reliableState

	// Collective tree geometry, fixed at construction from the runtime's
	// fanout k: parent is (rank−1)/k (−1 on the root), children are the
	// contiguous range [childBase, childBase+nKids). treeDepth is the
	// depth of the deepest rank, collMsgs the messages this rank sends
	// per collective (one up-partial plus one down-copy per child) —
	// both stamped onto EvCollective spans.
	parent    int
	childBase int
	nKids     int
	treeDepth int
	collMsgs  int

	collSeq       int64
	collUp        map[int64]*collState // child partials per collective seq
	collResult    map[int64][]float64  // down-phase results received
	collHasResult map[int64]bool
	smallBuf      [3]float64 // scratch for the scalar collective wrappers

	// batch is the reusable drain buffer of Epoch's message pump (one
	// inbox lock per burst instead of per message).
	batch []comm.Message

	objects  map[ObjectID]any
	location map[ObjectID]core.Rank
	objSeq   int64

	phase phaseState

	// tr and ins mirror the runtime's tracer and metric handles; both are
	// nil when observability is off, so instrumented paths pay one
	// pointer comparison.
	tr  obs.Tracer
	ins *instruments

	// Stats counts this rank's traffic for experiment accounting.
	Stats ContextStats
}

// ContextStats aggregates per-rank runtime statistics.
type ContextStats struct {
	UserSent       int
	ObjectSent     int
	Forwards       int
	Migrations     int
	MigrationBytes int
	EpochsRun      int
	Collectives    int
}

func newContext(rt *Runtime, rank core.Rank) *Context {
	rc := &Context{
		rt:            rt,
		rank:          rank,
		n:             rt.n,
		detectors:     make(map[int64]*termination.Detector),
		pending:       make(map[int64][]comm.Message),
		collUp:        make(map[int64]*collState),
		collResult:    make(map[int64][]float64),
		collHasResult: make(map[int64]bool),
		objects:       make(map[ObjectID]any),
		location:      make(map[ObjectID]core.Rank),
		tr:            rt.tracer,
		ins:           rt.ins,
	}
	k := rt.fanout
	r := int(rank)
	rc.parent = -1
	if r > 0 {
		rc.parent = (r - 1) / k
	}
	rc.childBase = k*r + 1
	if rc.childBase < rt.n {
		rc.nKids = rt.n - rc.childBase
		if rc.nKids > k {
			rc.nKids = k
		}
	} else {
		rc.childBase = rt.n // empty range even for huge ranks
	}
	for d := rt.n - 1; d > 0; d = (d - 1) / k {
		rc.treeDepth++
	}
	rc.collMsgs = rc.nKids
	if rc.parent >= 0 {
		rc.collMsgs++
	}
	if rt.reliable {
		rc.rel = newReliableState(rt.n, rt.retryBase, rt.retryCap)
	}
	return rc
}

// Rank returns this context's rank.
func (rc *Context) Rank() core.Rank { return rc.rank }

// NumRanks returns the number of ranks.
func (rc *Context) NumRanks() int { return rc.n }

// Tracer returns the runtime's tracer, nil when tracing is disabled.
// Application code (the distributed balancer) uses it to emit its own
// protocol events alongside the runtime's.
func (rc *Context) Tracer() obs.Tracer { return rc.tr }

// Metrics returns the runtime's metrics registry, nil when disabled.
// Use at setup time to resolve instrument handles; do not call per
// event.
func (rc *Context) Metrics() *obs.Metrics { return rc.rt.metrics }

// Stream returns the runtime's observability stream, nil when streaming
// is disabled. Protocol loops publish periodic Snapshot frames to it;
// guard each publishing block with one nil check.
func (rc *Context) Stream() *obs.Stream { return rc.rt.stream }

// TransportTotals returns the transport's cumulative message and
// payload-byte counts across all kinds (bytes are zero unless byte
// accounting is on — metrics or streaming enabled). Safe to call during
// Run; the totals are monotone atomics.
func (rc *Context) TransportTotals() (msgs, bytes int64) {
	return rc.rt.nw.TotalSent(), rc.rt.nw.TotalBytes()
}

// WireTotals returns the socket transport's frame counters and reports
// whether the runtime is on one; on the in-memory transport ok is
// false. Safe to call during Run.
func (rc *Context) WireTotals() (st comm.WireStats, ok bool) {
	ws, ok := rc.rt.nw.(comm.WireStater)
	if !ok {
		return comm.WireStats{}, false
	}
	return ws.WireStats(), true
}

// FaultTotals returns the runtime's cumulative fault-injection and
// recovery counters (all zero without a fault plan). Safe to call
// during Run.
func (rc *Context) FaultTotals() FaultStats { return rc.rt.FaultStats() }

// Emit stamps the event with this context's rank and forwards it to the
// tracer; a no-op when tracing is disabled.
func (rc *Context) Emit(e obs.Event) {
	if rc.tr == nil {
		return
	}
	e.Rank = int(rc.rank)
	rc.tr.Emit(e)
}

// Send delivers an active message to the named handler on rank to. Sends
// made while an epoch is open are counted by its termination detection.
func (rc *Context) Send(to core.Rank, h HandlerID, data any) {
	if _, ok := rc.rt.handlers[h]; !ok {
		panic(fmt.Sprintf("amt: Send to unregistered handler %d", h))
	}
	rc.Stats.UserSent++
	rc.send(comm.Message{
		From:    int(rc.rank),
		To:      int(to),
		Kind:    kindUser,
		Handler: int32(h),
		Data:    envelope{EpochID: rc.activeEpoch(), Data: data},
	})
}

// send stamps epoch accounting and hands the message to the transport.
// Under the reliability layer every epoch-counted send also gets a
// MsgID and a retransmission credit (see reliable.go).
func (rc *Context) send(m comm.Message) {
	if id := msgEpoch(m); id != 0 {
		rc.detector(id).OnSend()
		if rc.rel != nil {
			rc.rel.track(&m, id)
		}
	}
	rc.rt.nw.Send(m)
}

func (rc *Context) activeEpoch() int64 {
	if rc.inEpoch {
		return rc.epochSeq
	}
	return 0
}

func (rc *Context) detector(id int64) *termination.Detector {
	d, ok := rc.detectors[id]
	if !ok {
		d = termination.New(int(rc.rank), rc.n)
		rc.detectors[id] = d
	}
	return d
}

// msgEpoch extracts the epoch tag from any counted message kind.
func msgEpoch(m comm.Message) int64 {
	switch m.Kind {
	case kindUser:
		return m.Data.(envelope).EpochID
	case kindObject:
		return m.Data.(objEnvelope).EpochID
	case kindMigrate:
		return m.Data.(migrateEnvelope).EpochID
	case kindLocUpdate:
		return m.Data.(locEnvelope).EpochID
	default:
		return 0
	}
}

// Poll processes one pending message if any is queued and reports
// whether it did. Use it to keep the scheduler turning during local
// work outside epochs.
func (rc *Context) Poll() bool {
	m, ok := rc.rt.nw.Recv(int(rc.rank))
	if !ok {
		return false
	}
	rc.dispatch(m)
	return true
}

// Epoch runs body — typically a burst of sends that trigger cascading
// handlers — and then processes messages until distributed termination
// detection concludes that every causally related message, on every
// rank, has been received and processed. All ranks must call Epoch
// collectively and in the same order.
func (rc *Context) Epoch(body func()) {
	if rc.inEpoch {
		panic("amt: nested Epoch; epochs must be sequential")
	}
	rc.epochSeq++
	rc.inEpoch = true
	rc.epochDone = false
	rc.Stats.EpochsRun++
	d := rc.detector(rc.epochSeq)

	var epochStart time.Time
	if rc.tr != nil || rc.ins != nil {
		epochStart = clock.Now()
	}
	if rc.tr != nil {
		rc.Emit(obs.Event{Type: obs.EvEpochOpen, Peer: -1, Object: -1, Epoch: rc.epochSeq})
	}

	body()

	// Deliver messages that raced ahead of our entry — after body, so the
	// rank's own burst always runs on pre-epoch state: whether a peer's
	// message beat us into the epoch (a scheduling and transport-delay
	// accident) cannot change what body observes.
	if stash := rc.pending[rc.epochSeq]; len(stash) > 0 {
		delete(rc.pending, rc.epochSeq)
		for _, m := range stash {
			rc.dispatch(m)
		}
	}

	for !rc.epochDone {
		// Drain everything already queued — we are active while messages
		// remain — in batches: one inbox lock per burst, with the buffer
		// (and the payload references it holds) reused and scrubbed
		// between bursts.
		for {
			rc.batch = rc.rt.nw.RecvBatch(int(rc.rank), rc.batch[:0])
			if len(rc.batch) == 0 {
				break
			}
			for i := range rc.batch {
				rc.dispatch(rc.batch[i])
				rc.batch[i] = comm.Message{}
			}
		}
		if rc.epochDone {
			break
		}
		// Passive: participate in the termination probe.
		if t, next, send := d.TryHandOff(); send {
			if rc.tr != nil {
				rc.Emit(obs.Event{Type: obs.EvTokenRound, Peer: next, Object: -1,
					Epoch: rc.epochSeq, Value: float64(t.Wave)})
			}
			rc.rt.nw.Send(comm.Message{
				From: int(rc.rank), To: next, Kind: kindToken,
				Data: tokenEnvelope{EpochID: rc.epochSeq, Token: t},
			})
		}
		if d.Terminated() { // only rank 0
			rc.forwardDone(rc.epochSeq)
			break
		}
		m, ok := rc.recvEpoch()
		if !ok {
			panic("amt: network closed inside epoch")
		}
		rc.dispatch(m)
	}
	rc.assertAcked(rc.epochSeq)
	waves := d.Wave()
	rc.inEpoch = false
	delete(rc.detectors, rc.epochSeq)
	if rc.tr != nil || rc.ins != nil {
		elapsed := clock.Since(epochStart)
		if rc.tr != nil {
			rc.Emit(obs.Event{Type: obs.EvEpochClose, Peer: -1, Object: -1,
				Epoch: rc.epochSeq, Value: float64(waves), Dur: elapsed})
		}
		if rc.ins != nil {
			rc.ins.epochs.Inc()
			rc.ins.epochSeconds.Observe(int(rc.rank), elapsed.Seconds())
			rc.ins.tokenRounds.Add(int64(waves))
		}
	}
}

// dispatch routes one transport message. Counted messages belonging to a
// future epoch are stashed until this rank enters it.
//
// Reliability runs first: acks retire sender credits, and counted
// messages carrying a MsgID pass the dedup filter BEFORE the epoch
// guards — a late duplicate of a finished epoch's message must be
// re-acked and discarded, not treated as a protocol violation. An
// accepted first copy is re-marked with MsgID -1 so its processing
// (immediately or later from the stash) uses ack-based detector
// accounting exactly once.
func (rc *Context) dispatch(m comm.Message) {
	if m.Kind == kindAck {
		rc.onAck(m)
		return
	}
	if m.MsgID > 0 {
		if !rc.accept(m) {
			return
		}
		m.MsgID = -1
	}
	if id := msgEpoch(m); id != 0 && (!rc.inEpoch || id != rc.epochSeq) {
		if id <= rc.epochSeq {
			panic(fmt.Sprintf("amt: rank %d got message for finished epoch %d (now %d)",
				rc.rank, id, rc.epochSeq))
		}
		rc.pending[id] = append(rc.pending[id], m)
		return
	}
	switch m.Kind {
	case kindUser:
		env := m.Data.(envelope)
		rc.countReceive(env.EpochID, m.MsgID)
		h := HandlerID(m.Handler)
		if rc.tr == nil && rc.ins == nil {
			rc.rt.handlers[h](rc, core.Rank(m.From), env.Data)
		} else {
			rc.timedHandler(h, m.From, -1, func() {
				rc.rt.handlers[h](rc, core.Rank(m.From), env.Data)
			})
		}
	case kindObject:
		rc.dispatchObject(m)
	case kindMigrate:
		rc.installMigration(m)
	case kindLocUpdate:
		env := m.Data.(locEnvelope)
		rc.countReceive(env.EpochID, m.MsgID)
		rc.location[env.Obj] = env.Loc
	case kindToken:
		env := m.Data.(tokenEnvelope)
		rc.stashableToken(env, m)
	case kindDone:
		id := m.Data.(int64)
		if !rc.inEpoch || id != rc.epochSeq {
			// Raced ahead of our entry: stash; the replay after entry
			// forwards it down the tree exactly once.
			rc.pending[id] = append(rc.pending[id], m)
			return
		}
		rc.forwardDone(id)
		rc.epochDone = true
	case kindCollUp:
		rc.onCollUp(m)
	case kindCollDown:
		rc.onCollDown(m)
	default:
		panic(fmt.Sprintf("amt: unknown message kind %d", m.Kind))
	}
}

// timedHandler runs a handler invocation under the tracer/metrics
// instrumentation. Only called when at least one of the two is active;
// the uninstrumented dispatch path never reaches it.
func (rc *Context) timedHandler(h HandlerID, from int, obj ObjectID, run func()) {
	start := clock.Now()
	run()
	elapsed := clock.Since(start)
	if rc.tr != nil {
		rc.Emit(obs.Event{Type: obs.EvHandler, Peer: from, Object: int64(obj),
			Name: rc.rt.handlerName(h), Dur: elapsed})
	}
	if rc.ins != nil {
		rc.ins.handlerCalls.Inc()
		rc.ins.handlerSeconds.Observe(int(rc.rank), elapsed.Seconds())
	}
}

// forwardDone relays the epoch-done announcement to this rank's tree
// children. The terminating root starts it, and every rank forwards it
// exactly once on processing, so the broadcast costs each rank at most
// fanout sends instead of putting all P−1 on the root.
func (rc *Context) forwardDone(id int64) {
	for c := rc.childBase; c < rc.childBase+rc.nKids; c++ {
		rc.rt.nw.Send(comm.Message{
			From: int(rc.rank), To: c, Kind: kindDone, Data: id,
		})
	}
}

func (rc *Context) stashableToken(env tokenEnvelope, m comm.Message) {
	if !rc.inEpoch || env.EpochID != rc.epochSeq {
		if env.EpochID <= rc.epochSeq {
			panic("amt: token for finished epoch")
		}
		rc.pending[env.EpochID] = append(rc.pending[env.EpochID], m)
		return
	}
	rc.detector(env.EpochID).OnToken(env.Token)
}

// countReceive feeds one counted receipt to the epoch's detector. A
// negative msgID marks a delivery the reliability layer accepted: the
// receiver only blackens, and the counter decrement happens on the
// sender when the ack arrives (see reliable.go).
func (rc *Context) countReceive(epochID, msgID int64) {
	if epochID == 0 {
		return
	}
	if msgID < 0 {
		rc.detector(epochID).OnDeliver()
		return
	}
	rc.detector(epochID).OnReceive()
}
