package amt

import (
	"sync"
	"sync/atomic"
	"testing"

	"temperedlb/internal/core"
)

const (
	hPing HandlerID = iota
	hCascade
	hCollect
	hObjPoke
	hObjAdd
)

func TestRunAllRanksExecute(t *testing.T) {
	rt := New(8)
	var count atomic.Int32
	rt.Run(func(rc *Context) {
		count.Add(1)
		if rc.NumRanks() != 8 {
			t.Errorf("NumRanks = %d", rc.NumRanks())
		}
	})
	if count.Load() != 8 {
		t.Errorf("ran %d ranks", count.Load())
	}
}

func TestSendAndHandle(t *testing.T) {
	rt := New(4)
	var mu sync.Mutex
	got := map[core.Rank][]any{}
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {
		mu.Lock()
		got[rc.Rank()] = append(got[rc.Rank()], data)
		mu.Unlock()
	})
	rt.Run(func(rc *Context) {
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				for r := 1; r < rc.NumRanks(); r++ {
					rc.Send(core.Rank(r), hPing, r*10)
				}
			}
		})
	})
	for r := 1; r < 4; r++ {
		msgs := got[core.Rank(r)]
		if len(msgs) != 1 || msgs[0] != r*10 {
			t.Errorf("rank %d got %v", r, msgs)
		}
	}
}

// TestEpochWaitsForCascade is the essential termination-detection test:
// an epoch only ends after a long causal chain of messages has fully
// played out on every rank.
func TestEpochWaitsForCascade(t *testing.T) {
	rt := New(6)
	var hops atomic.Int64
	rt.Register(hCascade, func(rc *Context, from core.Rank, data any) {
		n := data.(int)
		hops.Add(1)
		if n > 0 {
			next := (rc.Rank() + 1) % core.Rank(rc.NumRanks())
			rc.Send(next, hCascade, n-1)
		}
	})
	const chain = 100
	rt.Run(func(rc *Context) {
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				rc.Send(1, hCascade, chain)
			}
		})
		// The epoch must not return before the whole chain completed.
		if got := hops.Load(); got != chain+1 {
			t.Errorf("rank %d exited epoch after %d hops, want %d", rc.Rank(), got, chain+1)
		}
	})
}

func TestEpochEmptyBodyTerminates(t *testing.T) {
	rt := New(5)
	rt.Run(func(rc *Context) {
		for i := 0; i < 3; i++ {
			rc.Epoch(func() {})
		}
	})
}

func TestSequentialEpochsIsolated(t *testing.T) {
	rt := New(4)
	var epoch1, epoch2 atomic.Int64
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {
		if data.(int) == 1 {
			epoch1.Add(1)
		} else {
			epoch2.Add(1)
		}
	})
	rt.Run(func(rc *Context) {
		rc.Epoch(func() {
			rc.Send(core.Rank((int(rc.Rank())+1)%4), hPing, 1)
		})
		if rc.Rank() == 0 && epoch1.Load() != 4 {
			t.Errorf("epoch 1 incomplete at boundary: %d", epoch1.Load())
		}
		rc.Epoch(func() {
			rc.Send(core.Rank((int(rc.Rank())+2)%4), hPing, 2)
		})
	})
	if epoch1.Load() != 4 || epoch2.Load() != 4 {
		t.Errorf("deliveries: %d, %d", epoch1.Load(), epoch2.Load())
	}
}

func TestBarrier(t *testing.T) {
	rt := New(8)
	var phase atomic.Int32
	fail := atomic.Bool{}
	rt.Run(func(rc *Context) {
		phase.Add(1)
		rc.Barrier()
		// After the barrier, every rank must have completed the first
		// increment.
		if phase.Load() < 8 {
			fail.Store(true)
		}
		rc.Barrier()
	})
	if fail.Load() {
		t.Error("barrier released before all ranks arrived")
	}
}

func TestAllReduce(t *testing.T) {
	rt := New(6)
	var mu sync.Mutex
	var sums, maxs, mins []float64
	rt.Run(func(rc *Context) {
		v := float64(rc.Rank() + 1) // 1..6
		sum := rc.AllReduce(v, ReduceSum)
		max := rc.AllReduce(v, ReduceMax)
		min := rc.AllReduce(v, ReduceMin)
		mu.Lock()
		sums = append(sums, sum)
		maxs = append(maxs, max)
		mins = append(mins, min)
		mu.Unlock()
	})
	for i := range sums {
		if sums[i] != 21 || maxs[i] != 6 || mins[i] != 1 {
			t.Fatalf("reduce wrong: sum=%g max=%g min=%g", sums[i], maxs[i], mins[i])
		}
	}
}

func TestAllReduceSummary(t *testing.T) {
	rt := New(4)
	rt.Run(func(rc *Context) {
		max, min, sum := rc.AllReduceSummary(float64(rc.Rank()))
		if max != 3 || min != 0 || sum != 6 {
			t.Errorf("summary: %g %g %g", max, min, sum)
		}
	})
}

func TestManyCollectivesStress(t *testing.T) {
	rt := New(5)
	rt.Run(func(rc *Context) {
		for i := 0; i < 50; i++ {
			got := rc.AllReduce(1, ReduceSum)
			if got != 5 {
				t.Errorf("iteration %d: sum=%g", i, got)
			}
			rc.Barrier()
		}
	})
}

func TestEpochAfterBarrierRace(t *testing.T) {
	// A rank can enter the epoch and send while others still sit in the
	// preceding barrier; the stash mechanism must hold those messages.
	rt := New(8)
	var delivered atomic.Int64
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {
		delivered.Add(1)
	})
	rt.Run(func(rc *Context) {
		for i := 0; i < 20; i++ {
			rc.Barrier()
			rc.Epoch(func() {
				for r := 0; r < rc.NumRanks(); r++ {
					if core.Rank(r) != rc.Rank() {
						rc.Send(core.Rank(r), hPing, i)
					}
				}
			})
		}
	})
	if want := int64(20 * 8 * 7); delivered.Load() != want {
		t.Errorf("delivered %d, want %d", delivered.Load(), want)
	}
}

func TestRegisterAfterRunPanics(t *testing.T) {
	rt := New(1)
	rt.Run(func(rc *Context) {})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {})
}

func TestDuplicateHandlerPanics(t *testing.T) {
	rt := New(1)
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {})
}

func TestSendUnregisteredPanics(t *testing.T) {
	rt := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic propagated from rank")
		}
	}()
	rt.Run(func(rc *Context) {
		if rc.Rank() == 0 {
			rc.Send(1, HandlerID(99), nil)
		}
	})
}

func TestRankPanicPropagates(t *testing.T) {
	rt := New(3)
	defer func() {
		if recover() == nil {
			t.Error("rank panic not propagated")
		}
	}()
	rt.Run(func(rc *Context) {
		if rc.Rank() == 2 {
			panic("boom")
		}
	})
}

func TestTotalMessagesCounts(t *testing.T) {
	rt := New(3)
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {})
	rt.Run(func(rc *Context) {
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				rc.Send(1, hPing, nil)
			}
		})
	})
	if rt.TotalMessages() < 1 {
		t.Error("no messages counted")
	}
}

func TestNestedEpochPanics(t *testing.T) {
	rt := New(1)
	defer func() {
		if recover() == nil {
			t.Error("nested epoch accepted")
		}
	}()
	rt.Run(func(rc *Context) {
		rc.Epoch(func() {
			rc.Epoch(func() {})
		})
	})
}
