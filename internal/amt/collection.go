package amt

import (
	"fmt"

	"temperedlb/internal/core"
)

// CollectionID identifies a distributed collection; all ranks must use
// the same id for the same collection.
type CollectionID int32

// Collection is a distributed indexed array of migratable objects — the
// vt "collection" concept the paper's programming model is built
// around: EMPIRE's colors form a collection whose elements the load
// balancer migrates. Elements are addressed by dense index; the mapping
// from index to ObjectID is a pure function every rank computes without
// communication, and the location manager handles elements that have
// migrated away from their home.
type Collection struct {
	id   CollectionID
	size int
	n    int
}

// collection element ids live in a reserved ObjectID namespace so they
// can be computed independently on every rank without colliding with
// CreateObject's per-rank sequence numbers.
const collectionSeqBase = int64(1) << 38

func collectionSeq(id CollectionID, index int) int64 {
	return collectionSeqBase | int64(id)<<24 | int64(index)
}

// CreateCollection collectively creates a collection of size elements.
// Every rank must call it with the same id, size and factory; each rank
// instantiates the elements homed to it under the block mapping
// (element i lives on rank i·P/size initially). The factory builds
// element i's initial state. Collections must be created outside
// epochs, before any element messages are sent, and ids must not repeat.
func (rc *Context) CreateCollection(id CollectionID, size int, factory func(index int) any) *Collection {
	if size < 1 || size >= 1<<24 {
		panic(fmt.Sprintf("amt: CreateCollection size %d out of [1, 2^24)", size))
	}
	if id < 0 || int64(id) >= 1<<14 {
		panic(fmt.Sprintf("amt: CreateCollection id %d out of range", id))
	}
	c := &Collection{id: id, size: size, n: rc.n}
	for i := 0; i < size; i++ {
		if c.HomeRank(i) != rc.rank {
			continue
		}
		oid := c.Element(i)
		if _, dup := rc.objects[oid]; dup {
			panic(fmt.Sprintf("amt: collection %d recreated or id collision at element %d", id, i))
		}
		rc.objects[oid] = factory(i)
		rc.location[oid] = rc.rank
	}
	return c
}

// Size returns the number of elements.
func (c *Collection) Size() int { return c.size }

// HomeRank returns the element's initial (directory) rank under the
// block mapping.
func (c *Collection) HomeRank(index int) core.Rank {
	c.check(index)
	return core.Rank(index * c.n / c.size)
}

// Element returns the ObjectID of element index. The id is valid on
// every rank, wherever the element currently lives.
func (c *Collection) Element(index int) ObjectID {
	c.check(index)
	return MakeObjectID(c.HomeRank(index), collectionSeq(c.id, index))
}

// Index recovers the element index from a collection element's
// ObjectID, and whether the id belongs to this collection.
func (c *Collection) Index(id ObjectID) (int, bool) {
	seq := int64(id) & (1<<40 - 1)
	if seq&collectionSeqBase == 0 {
		return 0, false
	}
	if CollectionID(seq>>24&(1<<14-1)) != c.id {
		return 0, false
	}
	idx := int(seq & (1<<24 - 1))
	if idx >= c.size || c.Element(idx) != id {
		return 0, false
	}
	return idx, true
}

// Send delivers an object message to element index, wherever it lives.
func (c *Collection) Send(rc *Context, index int, h HandlerID, data any) {
	rc.SendObject(c.Element(index), h, data)
}

// LocalIndices returns the indices of the collection's elements
// currently hosted on this rank, in ascending order.
func (c *Collection) LocalIndices(rc *Context) []int {
	var out []int
	for _, id := range rc.LocalObjects() {
		if idx, ok := c.Index(id); ok {
			out = append(out, idx)
		}
	}
	sortInts(out)
	return out
}

// Broadcast runs the handler on every element of the collection. It is
// collective: each rank delivers locally to the elements it hosts, so
// the broadcast costs no messages; callers needing a happens-before
// boundary should wrap it (plus any resulting sends) in an Epoch.
func (c *Collection) Broadcast(rc *Context, h HandlerID, data any) {
	handler, ok := rc.rt.objHandlers[h]
	if !ok {
		panic(fmt.Sprintf("amt: Broadcast to unregistered object handler %d", h))
	}
	for _, idx := range c.LocalIndices(rc) {
		id := c.Element(idx)
		state := rc.objects[id]
		handler(rc, id, state, rc.rank, data)
	}
}

// Migrate moves element index to dest; the element must currently live
// on this rank.
func (c *Collection) Migrate(rc *Context, index int, dest core.Rank) {
	rc.Migrate(c.Element(index), dest)
}

func (c *Collection) check(index int) {
	if index < 0 || index >= c.size {
		panic(fmt.Sprintf("amt: collection index %d out of [0,%d)", index, c.size))
	}
}

// sortInts is a tiny insertion sort; local element lists are short.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
