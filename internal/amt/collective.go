package amt

import (
	"fmt"
	"math"
	"time"

	"temperedlb/internal/comm"
	"temperedlb/internal/core"
	"temperedlb/internal/obs"
)

// ReduceOp selects the combining operation of AllReduce.
type ReduceOp int

const (
	// ReduceSum adds contributions.
	ReduceSum ReduceOp = iota
	// ReduceMax takes the maximum contribution.
	ReduceMax
	// ReduceMin takes the minimum contribution.
	ReduceMin
)

func (op ReduceOp) combine(a, b float64) float64 {
	switch op {
	case ReduceSum:
		return a + b
	case ReduceMax:
		return math.Max(a, b)
	case ReduceMin:
		return math.Min(a, b)
	default:
		panic(fmt.Sprintf("amt: unknown reduce op %d", op))
	}
}

// collStart opens a collective's instrumentation window; the returned
// closer emits the EvCollective span and bumps the counter. Both calls
// are single nil-checks when observability is off.
func (rc *Context) collStart(name string) func() {
	if rc.tr == nil && rc.ins == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		if rc.tr != nil {
			rc.Emit(obs.Event{Type: obs.EvCollective, Peer: -1, Object: -1,
				Name: name, Dur: time.Since(start)})
		}
		if rc.ins != nil {
			rc.ins.collectives.Inc()
		}
	}
}

type barrierArrive struct{ Seq int64 }

type reduceArrive struct {
	Seq   int64
	Value float64
	Op    ReduceOp
}

type reduceResult struct {
	Seq   int64
	Value float64
}

// Barrier blocks until every rank has reached the same barrier call.
// Collectives must be called by all ranks in the same order; they are
// coordinated by rank 0. While waiting, the rank keeps scheduling
// incoming messages, so application traffic cannot deadlock a barrier.
func (rc *Context) Barrier() {
	defer rc.collStart("barrier")()
	rc.collSeq++
	seq := rc.collSeq
	if rc.rank == 0 {
		rc.onBarrierArrive(comm.Message{From: 0, Data: barrierArrive{Seq: seq}})
	} else {
		rc.rt.nw.Send(comm.Message{
			From: int(rc.rank), To: 0, Kind: kindBarrier,
			Data: barrierArrive{Seq: seq},
		})
	}
	for !rc.barReleased[seq] {
		m, ok := rc.rt.nw.RecvWait(int(rc.rank))
		if !ok {
			panic("amt: network closed inside barrier")
		}
		rc.dispatch(m)
	}
	delete(rc.barReleased, seq)
}

func (rc *Context) onBarrierArrive(m comm.Message) {
	ba := m.Data.(barrierArrive)
	rc.barArrivals[ba.Seq]++
	if rc.barArrivals[ba.Seq] == rc.n {
		delete(rc.barArrivals, ba.Seq)
		rc.barReleased[ba.Seq] = true // local release for rank 0
		for r := 1; r < rc.n; r++ {
			rc.rt.nw.Send(comm.Message{
				From: 0, To: r, Kind: kindRelease, Data: ba.Seq,
			})
		}
	}
}

// AllReduce combines value across all ranks with op and returns the
// result on every rank. This is the constant-size statistics all-reduce
// that precedes every LB invocation (§IV-B).
func (rc *Context) AllReduce(value float64, op ReduceOp) float64 {
	defer rc.collStart("allreduce")()
	rc.collSeq++
	seq := rc.collSeq
	if rc.rank == 0 {
		rc.onReduceArrive(comm.Message{From: 0, Data: reduceArrive{Seq: seq, Value: value, Op: op}})
	} else {
		rc.rt.nw.Send(comm.Message{
			From: int(rc.rank), To: 0, Kind: kindReduce,
			Data: reduceArrive{Seq: seq, Value: value, Op: op},
		})
	}
	for !rc.redHasResult[seq] {
		m, ok := rc.rt.nw.RecvWait(int(rc.rank))
		if !ok {
			panic("amt: network closed inside allreduce")
		}
		rc.dispatch(m)
	}
	v := rc.redResult[seq]
	delete(rc.redResult, seq)
	delete(rc.redHasResult, seq)
	return v
}

func (rc *Context) onReduceArrive(m comm.Message) {
	ra := m.Data.(reduceArrive)
	st, ok := rc.redState[ra.Seq]
	if !ok {
		st = &reduce{acc: ra.Value, op: ra.Op, count: 1}
		rc.redState[ra.Seq] = st
	} else {
		st.acc = st.op.combine(st.acc, ra.Value)
		st.count++
	}
	if st.count == rc.n {
		delete(rc.redState, ra.Seq)
		rc.redResult[ra.Seq] = st.acc // local result for rank 0
		rc.redHasResult[ra.Seq] = true
		for r := 1; r < rc.n; r++ {
			rc.rt.nw.Send(comm.Message{
				From: 0, To: r, Kind: kindReduceResult,
				Data: reduceResult{Seq: ra.Seq, Value: st.acc},
			})
		}
	}
}

// AllReduceSummary composes the three reductions of the gossip
// prologue: per-rank load max, min and sum, returning them to all ranks.
func (rc *Context) AllReduceSummary(load float64) (max, min, sum float64) {
	max = rc.AllReduce(load, ReduceMax)
	min = rc.AllReduce(load, ReduceMin)
	sum = rc.AllReduce(load, ReduceSum)
	return max, min, sum
}

type gatherArrive struct {
	Seq   int64
	Rank  core.Rank
	Value float64
}

type gatherResult struct {
	Seq    int64
	Values []float64
}

// AllGather collects one float64 from every rank and returns the full
// vector, indexed by rank, on every rank. Like the other collectives it
// must be called by all ranks in matching order.
func (rc *Context) AllGather(value float64) []float64 {
	defer rc.collStart("allgather")()
	rc.collSeq++
	seq := rc.collSeq
	if rc.rank == 0 {
		rc.onGatherArrive(comm.Message{From: 0, Data: gatherArrive{Seq: seq, Rank: 0, Value: value}})
	} else {
		rc.rt.nw.Send(comm.Message{
			From: int(rc.rank), To: 0, Kind: kindGather,
			Data: gatherArrive{Seq: seq, Rank: rc.rank, Value: value},
		})
	}
	for rc.gatherResult[seq] == nil {
		m, ok := rc.rt.nw.RecvWait(int(rc.rank))
		if !ok {
			panic("amt: network closed inside allgather")
		}
		rc.dispatch(m)
	}
	v := rc.gatherResult[seq]
	delete(rc.gatherResult, seq)
	return v
}

func (rc *Context) onGatherArrive(m comm.Message) {
	ga := m.Data.(gatherArrive)
	st := rc.gatherState[ga.Seq]
	if st == nil {
		st = &gather{values: make([]float64, rc.n), seen: make([]bool, rc.n)}
		rc.gatherState[ga.Seq] = st
	}
	if !st.seen[ga.Rank] {
		st.seen[ga.Rank] = true
		st.values[ga.Rank] = ga.Value
		st.count++
	}
	if st.count == rc.n {
		delete(rc.gatherState, ga.Seq)
		rc.gatherResult[ga.Seq] = st.values // local result for rank 0
		for r := 1; r < rc.n; r++ {
			out := append([]float64(nil), st.values...)
			rc.rt.nw.Send(comm.Message{
				From: 0, To: r, Kind: kindGatherResult,
				Data: gatherResult{Seq: ga.Seq, Values: out},
			})
		}
	}
}

type gather struct {
	values []float64
	seen   []bool
	count  int
}

type vecArrive struct {
	Seq    int64
	Values []float64
	Op     ReduceOp
}

type vecResult struct {
	Seq    int64
	Values []float64
}

type vecReduce struct {
	count int
	acc   []float64
	op    ReduceOp
}

// AllReduceVec combines a fixed-width vector elementwise across all
// ranks with op and returns the result on every rank — one collective
// where a loop of AllReduce calls would cost a round-trip per element.
// The distributed balancer uses it to aggregate its per-iteration
// statistics in a single exchange. All ranks must pass the same length.
func (rc *Context) AllReduceVec(values []float64, op ReduceOp) []float64 {
	defer rc.collStart("allreduce_vec")()
	rc.collSeq++
	seq := rc.collSeq
	in := append([]float64(nil), values...)
	if rc.rank == 0 {
		rc.onVecArrive(comm.Message{From: 0, Data: vecArrive{Seq: seq, Values: in, Op: op}})
	} else {
		rc.rt.nw.Send(comm.Message{
			From: int(rc.rank), To: 0, Kind: kindReduceVec,
			Data: vecArrive{Seq: seq, Values: in, Op: op},
		})
	}
	for rc.vecResult[seq] == nil {
		m, ok := rc.rt.nw.RecvWait(int(rc.rank))
		if !ok {
			panic("amt: network closed inside allreduce_vec")
		}
		rc.dispatch(m)
	}
	v := rc.vecResult[seq]
	delete(rc.vecResult, seq)
	return v
}

func (rc *Context) onVecArrive(m comm.Message) {
	va := m.Data.(vecArrive)
	st := rc.vecState[va.Seq]
	if st == nil {
		st = &vecReduce{acc: append([]float64(nil), va.Values...), op: va.Op, count: 1}
		rc.vecState[va.Seq] = st
	} else {
		if len(va.Values) != len(st.acc) {
			panic(fmt.Sprintf("amt: AllReduceVec length mismatch: %d vs %d",
				len(va.Values), len(st.acc)))
		}
		for i, v := range va.Values {
			st.acc[i] = st.op.combine(st.acc[i], v)
		}
		st.count++
	}
	if st.count == rc.n {
		delete(rc.vecState, va.Seq)
		rc.vecResult[va.Seq] = st.acc // local result for rank 0
		for r := 1; r < rc.n; r++ {
			out := append([]float64(nil), st.acc...)
			rc.rt.nw.Send(comm.Message{
				From: 0, To: r, Kind: kindReduceVecResult,
				Data: vecResult{Seq: va.Seq, Values: out},
			})
		}
	}
}
