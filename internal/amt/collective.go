package amt

import (
	"fmt"
	"math"

	"temperedlb/internal/clock"
	"temperedlb/internal/comm"
	"temperedlb/internal/obs"
)

// ReduceOp selects the combining operation of AllReduce.
type ReduceOp int

const (
	// ReduceSum adds contributions.
	ReduceSum ReduceOp = iota
	// ReduceMax takes the maximum contribution.
	ReduceMax
	// ReduceMin takes the minimum contribution.
	ReduceMin
)

func (op ReduceOp) combine(a, b float64) float64 {
	switch op {
	case ReduceSum:
		return a + b
	case ReduceMax:
		return math.Max(a, b)
	case ReduceMin:
		return math.Min(a, b)
	default:
		panic(fmt.Sprintf("amt: unknown reduce op %d", op))
	}
}

// collMsg is the wire payload of both tree-collective phases: a child's
// folded partial on its way up (kindCollUp) and the final result on its
// way down (kindCollDown). Values is nil for barriers.
type collMsg struct {
	Seq    int64
	Values []float64
}

// collState accumulates one collective's child contributions on their
// parent. Contributions are keyed by fixed child position, not arrival
// order, so the fold below is topology-deterministic.
type collState struct {
	kids [][]float64 // one slot per tree child, in ascending rank order
	got  int
}

// collStart opens a collective's instrumentation window; the returned
// closer emits the EvCollective span (stamped with the tree geometry and
// the messages this rank sent for the collective) and bumps the
// counters. Both calls are single nil-checks when observability is off.
func (rc *Context) collStart(name string) func() {
	if rc.tr == nil && rc.ins == nil {
		return func() {}
	}
	start := clock.Now()
	return func() {
		if rc.tr != nil {
			rc.Emit(obs.Event{Type: obs.EvCollective, Peer: -1, Object: -1,
				Name: name, Value: float64(rc.collMsgs),
				Fanout: rc.rt.fanout, Depth: rc.treeDepth,
				Dur: clock.Since(start)})
		}
		if rc.ins != nil {
			rc.ins.collectives.Inc()
			rc.ins.collMsgs.Add(int64(rc.collMsgs))
		}
	}
}

// treeCollective is the one engine under every collective: a reduce up
// the runtime's k-ary rank tree followed by a broadcast back down.
//
// Up phase: the rank waits for a partial vector from each of its tree
// children, folds them into its own contribution in fixed order — local
// value first, then children in ascending rank order — and forwards the
// partial to its parent. Because the combine order is a function of the
// topology alone (never of message arrival order), floating-point
// reductions are bit-identical across runs, under jitter, delays and
// stragglers included. Down phase: the root's fold is the result; every
// rank forwards a private copy to each child (see dispatch), so the
// returned slice is exclusively the caller's.
//
// ops selects a per-element combine (len(ops) == len(in)); a nil ops
// applies op to every element. Per-rank traffic is at most fanout+1
// sends (and as many receives) instead of the star topology's 2(P−1)
// messages through rank 0, and the critical path is one up+down sweep
// of depth ceil(log_k P).
//
// While waiting, the rank keeps scheduling incoming messages, so
// application traffic cannot deadlock a collective. As before, all ranks
// must call collectives in matching order.
func (rc *Context) treeCollective(name string, in []float64, op ReduceOp, ops []ReduceOp) []float64 {
	defer rc.collStart(name)()
	rc.collSeq++
	rc.Stats.Collectives++
	seq := rc.collSeq

	acc := append([]float64(nil), in...)
	if rc.nKids > 0 {
		for st := rc.collUp[seq]; st == nil || st.got < rc.nKids; st = rc.collUp[seq] {
			m, ok := rc.rt.nw.RecvWait(int(rc.rank))
			if !ok {
				panic("amt: network closed inside " + name)
			}
			rc.dispatch(m)
		}
		st := rc.collUp[seq]
		delete(rc.collUp, seq)
		for _, kid := range st.kids {
			if len(kid) != len(acc) {
				panic(fmt.Sprintf("amt: %s length mismatch: %d vs %d",
					name, len(kid), len(acc)))
			}
			if ops != nil {
				for j, v := range kid {
					acc[j] = ops[j].combine(acc[j], v)
				}
			} else {
				for j, v := range kid {
					acc[j] = op.combine(acc[j], v)
				}
			}
		}
	}

	if rc.parent >= 0 {
		rc.rt.nw.Send(comm.Message{
			From: int(rc.rank), To: rc.parent, Kind: kindCollUp,
			Data: collMsg{Seq: seq, Values: acc},
		})
		for !rc.collHasResult[seq] {
			m, ok := rc.rt.nw.RecvWait(int(rc.rank))
			if !ok {
				panic("amt: network closed inside " + name)
			}
			rc.dispatch(m)
		}
		acc = rc.collResult[seq]
		delete(rc.collResult, seq)
		delete(rc.collHasResult, seq)
		return acc
	}
	// Root: the local fold is the global result; start the down phase.
	rc.sendDown(seq, acc)
	return acc
}

// sendDown forwards a private copy of the result to each tree child.
func (rc *Context) sendDown(seq int64, result []float64) {
	for c := rc.childBase; c < rc.childBase+rc.nKids; c++ {
		var out []float64
		if result != nil {
			out = append([]float64(nil), result...)
		}
		rc.rt.nw.Send(comm.Message{
			From: int(rc.rank), To: c, Kind: kindCollDown,
			Data: collMsg{Seq: seq, Values: out},
		})
	}
}

// onCollUp stores one child's partial for the keyed collective. Children
// may race ahead of this rank's own entry into the collective (or even
// into the next one); contributions are therefore buffered by sequence
// and folded only once this rank reaches the matching call.
func (rc *Context) onCollUp(m comm.Message) {
	cm := m.Data.(collMsg)
	st := rc.collUp[cm.Seq]
	if st == nil {
		st = &collState{kids: make([][]float64, rc.nKids)}
		rc.collUp[cm.Seq] = st
	}
	st.kids[m.From-rc.childBase] = cm.Values
	st.got++
}

// onCollDown installs the result of the keyed collective and forwards a
// copy toward this rank's own subtree. A down message can only arrive
// after this rank sent its partial up, i.e. while it is blocked inside
// the matching collective call, so the result is consumed immediately.
func (rc *Context) onCollDown(m comm.Message) {
	cm := m.Data.(collMsg)
	rc.sendDown(cm.Seq, cm.Values)
	if cm.Values == nil {
		cm.Values = emptyResult
	}
	rc.collResult[cm.Seq] = cm.Values
	rc.collHasResult[cm.Seq] = true
}

// emptyResult stands in for a barrier's nil result vector so the zero
// length survives the result map without extra bookkeeping.
var emptyResult = []float64{}

// Barrier blocks until every rank has reached the same barrier call: a
// zero-length reduction, so release still takes one full up+down sweep.
func (rc *Context) Barrier() {
	rc.treeCollective("barrier", nil, ReduceSum, nil)
}

// AllReduce combines value across all ranks with op and returns the
// result on every rank. This is the constant-size statistics all-reduce
// that precedes every LB invocation (§IV-B).
func (rc *Context) AllReduce(value float64, op ReduceOp) float64 {
	rc.smallBuf[0] = value
	return rc.treeCollective("allreduce", rc.smallBuf[:1], op, nil)[0]
}

// summaryOps is AllReduceSummary's per-element combine: one vector round
// carrying [max, min, sum] instead of three sequential scalar rounds.
var summaryOps = []ReduceOp{ReduceMax, ReduceMin, ReduceSum}

// AllReduceSummary fuses the three reductions of the gossip prologue —
// per-rank load max, min and sum — into a single mixed-op vector
// collective, returning all three to every rank in one round.
func (rc *Context) AllReduceSummary(load float64) (max, min, sum float64) {
	rc.smallBuf[0], rc.smallBuf[1], rc.smallBuf[2] = load, load, load
	out := rc.treeCollective("allreduce_summary", rc.smallBuf[:3], ReduceSum, summaryOps)
	return out[0], out[1], out[2]
}

// AllGather collects one float64 from every rank and returns the full
// vector, indexed by rank, on every rank. It rides the tree engine as a
// one-hot sum — x + 0 is exact in floating point, so each slot arrives
// untouched. Like the other collectives it must be called by all ranks
// in matching order.
func (rc *Context) AllGather(value float64) []float64 {
	in := make([]float64, rc.n)
	in[rc.rank] = value
	return rc.treeCollective("allgather", in, ReduceSum, nil)
}

// AllReduceVec combines a fixed-width vector elementwise across all
// ranks with op and returns the result on every rank — one collective
// where a loop of AllReduce calls would cost a full tree sweep per
// element. The distributed balancer uses it to aggregate its
// per-iteration statistics in a single exchange. All ranks must pass the
// same length; the input slice is neither retained nor mutated.
func (rc *Context) AllReduceVec(values []float64, op ReduceOp) []float64 {
	return rc.treeCollective("allreduce_vec", values, op, nil)
}
