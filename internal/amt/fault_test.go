package amt

import (
	"sync/atomic"
	"testing"
	"time"

	"temperedlb/internal/comm"
	"temperedlb/internal/core"
	"temperedlb/internal/obs"
)

// lossySpec is an aggressive drop+dup+delay plan used by the chaos
// tests: every fifth message lost, every fifth duplicated, deliveries
// smeared over a millisecond.
func lossySpec(seed int64) comm.FaultSpec {
	return comm.FaultSpec{
		Seed: seed, Drop: 0.2, Dup: 0.2,
		DelayMax:  time.Millisecond,
		RetryBase: time.Millisecond,
	}
}

// TestChaosFaultyEpochs runs cascading epochs and collectives over a
// transport that drops, duplicates and delays epoch messages: the
// ack/retry layer must deliver every hop exactly once and termination
// detection must still find quiescence.
func TestChaosFaultyEpochs(t *testing.T) {
	rt := New(6)
	if err := rt.SetFaults(lossySpec(42)); err != nil {
		t.Fatal(err)
	}
	var hops atomic.Int64
	rt.Register(hCascade, func(rc *Context, from core.Rank, data any) {
		n := data.(int)
		hops.Add(1)
		if n > 0 {
			rc.Send((rc.Rank()+1)%core.Rank(rc.NumRanks()), hCascade, n-1)
		}
	})
	rt.Run(func(rc *Context) {
		for round := 0; round < 3; round++ {
			rc.Epoch(func() {
				if rc.Rank() == 0 {
					rc.Send(1, hCascade, 30)
				}
			})
			// Termination must imply the whole chain ran despite drops.
			if got := hops.Load(); got%31 != 0 {
				t.Errorf("round %d: epoch ended mid-chain at %d hops", round, got)
			}
			if sum := rc.AllReduce(1, ReduceSum); sum != 6 {
				t.Errorf("allreduce under faults: %g", sum)
			}
			rc.Barrier()
		}
	})
	if hops.Load() != 3*31 {
		t.Errorf("total hops %d, want 93", hops.Load())
	}
	st := rt.FaultStats()
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Errorf("fault plan injected nothing: %+v", st)
	}
	if st.Retries == 0 {
		t.Errorf("drops recovered without retries: %+v", st)
	}
	if st.DupDrops == 0 {
		t.Errorf("duplicates were not filtered: %+v", st)
	}
}

// TestChaosFaultyMigrations shuffles objects and chases them with
// object messages while the transport drops and duplicates: census and
// exactly-once poke delivery must survive, including for the migrate
// and location-update kinds.
func TestChaosFaultyMigrations(t *testing.T) {
	const nRanks, nObjs = 5, 30
	rt := New(nRanks)
	if err := rt.SetFaults(lossySpec(7)); err != nil {
		t.Fatal(err)
	}
	var pokes atomic.Int64
	rt.RegisterObject(hObjAdd, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		state.(*counterState).Value += data.(int)
		pokes.Add(1)
	})
	rt.Run(func(rc *Context) {
		var ids []ObjectID
		if rc.Rank() == 0 {
			for i := 0; i < nObjs; i++ {
				ids = append(ids, rc.CreateObject(&counterState{}))
			}
		}
		rc.Barrier()
		for round := 0; round < 3; round++ {
			rc.Epoch(func() {
				for _, id := range rc.LocalObjects() {
					rc.Migrate(id, core.Rank((int(id)+round+1)%nRanks))
				}
			})
			rc.Epoch(func() {
				if rc.Rank() == 0 {
					for _, id := range ids {
						rc.SendObject(id, hObjAdd, 1)
					}
				}
			})
		}
		rc.Barrier()
		count := rc.AllReduce(float64(len(rc.LocalObjects())), ReduceSum)
		if count != nObjs {
			t.Errorf("census %g, want %d", count, nObjs)
		}
		local := 0.0
		for _, id := range rc.LocalObjects() {
			s, _ := rc.ObjectState(id)
			local += float64(s.(*counterState).Value)
		}
		total := rc.AllReduce(local, ReduceSum)
		if int64(total) != pokes.Load() || pokes.Load() != 3*nObjs {
			t.Errorf("pokes %d, object sum %g, want %d", pokes.Load(), total, 3*nObjs)
		}
	})
}

// TestChaosFaultyStragglers combines drops with a slowed rank: the
// straggler's traffic limps, everyone else's races ahead, and the
// protocols must still converge.
func TestChaosFaultyStragglers(t *testing.T) {
	rt := New(4)
	sp := comm.FaultSpec{
		Seed: 3, Drop: 0.1,
		SlowRanks: map[int]time.Duration{2: 2 * time.Millisecond},
		RetryBase: time.Millisecond,
	}
	if err := rt.SetFaults(sp); err != nil {
		t.Fatal(err)
	}
	var hops atomic.Int64
	rt.Register(hCascade, func(rc *Context, from core.Rank, data any) {
		n := data.(int)
		hops.Add(1)
		if n > 0 {
			rc.Send((rc.Rank()+1)%core.Rank(rc.NumRanks()), hCascade, n-1)
		}
	})
	rt.Run(func(rc *Context) {
		rc.Epoch(func() {
			rc.Send((rc.Rank()+1)%4, hCascade, 10)
		})
	})
	if got := hops.Load(); got != 4*11 {
		t.Errorf("hops %d, want 44", got)
	}
}

// TestFaultsInstrumented checks the observability story of a faulted
// run: the drop/duplicate counters fold into the metrics registry and
// the trace carries retry and dup-drop events matching FaultStats.
func TestFaultsInstrumented(t *testing.T) {
	rec := obs.NewRecorder()
	rt := New(4, WithTracer(rec), WithMetrics())
	if err := rt.SetFaults(lossySpec(99)); err != nil {
		t.Fatal(err)
	}
	rt.Register(hCascade, func(rc *Context, from core.Rank, data any) {
		n := data.(int)
		if n > 0 {
			rc.Send((rc.Rank()+1)%core.Rank(rc.NumRanks()), hCascade, n-1)
		}
	})
	rt.Run(func(rc *Context) {
		for round := 0; round < 2; round++ {
			rc.Epoch(func() {
				rc.Send((rc.Rank()+1)%4, hCascade, 20)
			})
		}
	})
	st := rt.FaultStats()
	if st.Dropped == 0 || st.Retries == 0 || st.DupDrops == 0 {
		t.Fatalf("expected a lossy run, got %+v", st)
	}
	m := rt.Metrics()
	if got := m.Counter(`comm_dropped_total{kind="user"}`).Value(); got != st.Dropped {
		t.Errorf("comm_dropped_total{user} = %d, want %d", got, st.Dropped)
	}
	if got := m.Counter("amt_retries_total").Value(); got != st.Retries {
		t.Errorf("amt_retries_total = %d, want %d", got, st.Retries)
	}
	if got := m.Counter("amt_duplicates_dropped_total").Value(); got != st.DupDrops {
		t.Errorf("amt_duplicates_dropped_total = %d, want %d", got, st.DupDrops)
	}
	retryEvents, dupEvents := int64(0), int64(0)
	for _, e := range rec.Events() {
		switch e.Type {
		case obs.EvRetry:
			retryEvents++
		case obs.EvDupDrop:
			dupEvents++
		}
	}
	if retryEvents != st.Retries || dupEvents != st.DupDrops {
		t.Errorf("trace has %d retries / %d dup-drops, FaultStats %+v",
			retryEvents, dupEvents, st)
	}
}

// TestEmptyFaultSpecLeavesFastPath pins the zero-cost-when-off
// contract: an empty spec neither perturbs delivery nor enables the
// reliability layer.
func TestEmptyFaultSpecLeavesFastPath(t *testing.T) {
	rt := New(2)
	if err := rt.SetFaults(comm.FaultSpec{}); err != nil {
		t.Fatal(err)
	}
	if rt.reliable {
		t.Fatal("empty spec enabled reliable mode")
	}
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {})
	rt.Run(func(rc *Context) {
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				rc.Send(1, hPing, nil)
			}
		})
	})
	if st := rt.FaultStats(); st != (FaultStats{}) {
		t.Errorf("empty spec produced fault activity: %+v", st)
	}
}

func TestSetFaultsValidates(t *testing.T) {
	rt := New(4)
	for _, sp := range []comm.FaultSpec{
		{Drop: 1.0},
		{Dup: -0.5},
		{DelayMin: 2 * time.Millisecond, DelayMax: time.Millisecond},
		{SlowRanks: map[int]time.Duration{9: time.Millisecond}},
	} {
		if err := rt.SetFaults(sp); err == nil {
			t.Errorf("SetFaults(%+v): expected error", sp)
		}
	}
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {})
	rt.Run(func(rc *Context) {})
	defer func() {
		if recover() == nil {
			t.Error("expected panic calling SetFaults after Run")
		}
	}()
	_ = rt.SetFaults(comm.FaultSpec{Drop: 0.1})
}
