package amt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temperedlb/internal/comm"
	"temperedlb/internal/core"
)

// TestTreeGeometry pins the k-ary tree layout the collectives ride:
// parent/child relations must be mutually consistent, the recorded depth
// must equal the longest walk to the root, and the per-collective send
// count of every rank must stay within the advertised
// fanout·ceil(log_fanout P) bound.
func TestTreeGeometry(t *testing.T) {
	cases := []struct {
		n, k, wantDepth int
	}{
		{1, 4, 0}, {2, 4, 1}, {5, 4, 1}, {6, 4, 2}, {16, 4, 2},
		{21, 4, 2}, {64, 4, 3}, {7, 2, 2}, {8, 2, 3}, {10, 3, 2},
	}
	for _, c := range cases {
		rt := New(c.n, WithFanout(c.k))
		if rt.Fanout() != c.k {
			t.Fatalf("n=%d: Fanout() = %d, want %d", c.n, rt.Fanout(), c.k)
		}
		bound := 0
		for p := 1; p < c.n; p *= c.k {
			bound += c.k
		}
		var mu sync.Mutex
		parents := make([]int, c.n)
		rt.Run(func(rc *Context) {
			r := int(rc.Rank())
			wantParent := -1
			if r > 0 {
				wantParent = (r - 1) / c.k
			}
			mu.Lock()
			if rc.parent != wantParent {
				t.Errorf("n=%d k=%d rank %d: parent %d, want %d", c.n, c.k, r, rc.parent, wantParent)
			}
			parents[r] = rc.parent
			if rc.nKids < 0 || rc.nKids > c.k {
				t.Errorf("n=%d k=%d rank %d: %d children", c.n, c.k, r, rc.nKids)
			}
			for ch := rc.childBase; ch < rc.childBase+rc.nKids; ch++ {
				if ch <= r || ch >= c.n {
					t.Errorf("n=%d k=%d rank %d: child %d out of range", c.n, c.k, r, ch)
				}
				if (ch-1)/c.k != r {
					t.Errorf("n=%d k=%d: rank %d claims child %d whose parent is %d",
						c.n, c.k, r, ch, (ch-1)/c.k)
				}
			}
			if rc.treeDepth != c.wantDepth {
				t.Errorf("n=%d k=%d rank %d: depth %d, want %d", c.n, c.k, r, rc.treeDepth, c.wantDepth)
			}
			wantMsgs := rc.nKids
			if r > 0 {
				wantMsgs++
			}
			if rc.collMsgs != wantMsgs || (c.n > 1 && rc.collMsgs > bound) {
				t.Errorf("n=%d k=%d rank %d: collMsgs %d, want %d within bound %d",
					c.n, c.k, r, rc.collMsgs, wantMsgs, bound)
			}
			mu.Unlock()
			// The collectives must actually work on this geometry.
			if sum := rc.AllReduce(float64(r), ReduceSum); sum != float64(c.n*(c.n-1)/2) {
				t.Errorf("n=%d k=%d rank %d: allreduce sum %g", c.n, c.k, r, sum)
			}
		})
		// Every rank's parent chain must reach rank 0 within wantDepth hops.
		for r := 0; r < c.n; r++ {
			hops, cur := 0, r
			for cur > 0 {
				cur = parents[cur]
				hops++
			}
			if hops > c.wantDepth {
				t.Errorf("n=%d k=%d rank %d: %d hops to root, depth says %d",
					c.n, c.k, r, hops, c.wantDepth)
			}
		}
	}
}

// TestAllGather checks the one-hot-sum gather: every rank must receive
// the full by-rank vector with each slot bit-exact (x + 0 is exact, so
// riding the sum tree cannot perturb the values).
func TestAllGather(t *testing.T) {
	const n = 13
	rt := New(n, WithFanout(3))
	rt.Run(func(rc *Context) {
		got := rc.AllGather(1.5*float64(rc.Rank()) + 0.25)
		if len(got) != n {
			t.Errorf("rank %d: gathered %d values", rc.Rank(), len(got))
			return
		}
		for r := 0; r < n; r++ {
			if want := 1.5*float64(r) + 0.25; got[r] != want {
				t.Errorf("rank %d: slot %d = %g, want %g", rc.Rank(), r, got[r], want)
			}
		}
	})
}

// TestChaosTreeCollectiveStorm1024 is the paper-scale collective stress:
// 1024 ranks hammer the tree with barriers, vector reduces and a scalar
// max while the transport duplicates and drops 10% of the interleaved
// epoch traffic and smears every delivery (collective hops included)
// over a delay window. Every reduction must come back exact on every
// rank and the epoch traffic must still be delivered exactly once.
func TestChaosTreeCollectiveStorm1024(t *testing.T) {
	const n, rounds = 1024, 2
	rt := New(n)
	if err := rt.SetFaults(comm.FaultSpec{
		Seed: 9, Drop: 0.1, Dup: 0.1,
		DelayMax: 200 * time.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	var pokes atomic.Int64
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {
		pokes.Add(1)
	})
	rt.Run(func(rc *Context) {
		for round := 0; round < rounds; round++ {
			rc.Barrier()
			vec := rc.AllReduceVec([]float64{1, float64(rc.Rank())}, ReduceSum)
			if vec[0] != n || vec[1] != n*(n-1)/2 {
				t.Errorf("rank %d round %d: vector reduce [%g %g]", rc.Rank(), round, vec[0], vec[1])
			}
			if max := rc.AllReduce(float64(rc.Rank()), ReduceMax); max != n-1 {
				t.Errorf("rank %d round %d: max %g", rc.Rank(), round, max)
			}
			rc.Epoch(func() {
				rc.Send((rc.Rank()+1)%n, hPing, round)
			})
		}
	})
	if pokes.Load() != rounds*n {
		t.Errorf("delivered %d pokes, want %d", pokes.Load(), rounds*n)
	}
	st := rt.FaultStats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Retries == 0 {
		t.Errorf("fault plan injected nothing at scale: %+v", st)
	}
}
