package amt

import (
	"sync/atomic"
	"testing"
	"time"

	"temperedlb/internal/core"
)

// TestChaosJitteredEpochs runs cascading epochs, migrations and
// collectives under randomized delivery delays: the protocols must
// produce the same outcomes as in-order delivery.
func TestChaosJitteredEpochs(t *testing.T) {
	rt := New(6)
	rt.SetJitter(2 * time.Millisecond)
	var hops atomic.Int64
	rt.Register(hCascade, func(rc *Context, from core.Rank, data any) {
		n := data.(int)
		hops.Add(1)
		if n > 0 {
			rc.Send((rc.Rank()+1)%core.Rank(rc.NumRanks()), hCascade, n-1)
		}
	})
	rt.Run(func(rc *Context) {
		for round := 0; round < 3; round++ {
			before := hops.Load()
			_ = before
			rc.Epoch(func() {
				if rc.Rank() == 0 {
					rc.Send(1, hCascade, 30)
				}
			})
			// Termination must imply the whole chain ran.
			if got := hops.Load(); got%31 != 0 {
				t.Errorf("round %d: epoch ended mid-chain at %d hops", round, got)
			}
			if sum := rc.AllReduce(1, ReduceSum); sum != 6 {
				t.Errorf("allreduce under jitter: %g", sum)
			}
			rc.Barrier()
		}
	})
	if hops.Load() != 3*31 {
		t.Errorf("total hops %d, want 93", hops.Load())
	}
}

// TestChaosJitteredMigrations shuffles objects under jitter and checks
// the census and message delivery-exactly-once invariants survive
// out-of-order delivery.
func TestChaosJitteredMigrations(t *testing.T) {
	const nRanks, nObjs = 5, 30
	rt := New(nRanks)
	rt.SetJitter(2 * time.Millisecond)
	var pokes atomic.Int64
	rt.RegisterObject(hObjAdd, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		state.(*counterState).Value += data.(int)
		pokes.Add(1)
	})
	rt.Run(func(rc *Context) {
		var ids []ObjectID
		if rc.Rank() == 0 {
			for i := 0; i < nObjs; i++ {
				ids = append(ids, rc.CreateObject(&counterState{}))
			}
		}
		rc.Barrier()
		for round := 0; round < 3; round++ {
			rc.Epoch(func() {
				for _, id := range rc.LocalObjects() {
					rc.Migrate(id, core.Rank((int(id)+round+1)%nRanks))
				}
			})
			// Poke every object by id from rank 0's original list —
			// forwarding must chase the jittered migrations.
			rc.Epoch(func() {
				if rc.Rank() == 0 {
					for _, id := range ids {
						rc.SendObject(id, hObjAdd, 1)
					}
				}
			})
		}
		rc.Barrier()
		count := rc.AllReduce(float64(len(rc.LocalObjects())), ReduceSum)
		if count != nObjs {
			t.Errorf("census %g, want %d", count, nObjs)
		}
		// Every poke delivered exactly once: sum of Values == pokes.
		local := 0.0
		for _, id := range rc.LocalObjects() {
			s, _ := rc.ObjectState(id)
			local += float64(s.(*counterState).Value)
		}
		total := rc.AllReduce(local, ReduceSum)
		if int64(total) != pokes.Load() || pokes.Load() != 3*nObjs {
			t.Errorf("pokes %d, object sum %g, want %d", pokes.Load(), total, 3*nObjs)
		}
	})
}
