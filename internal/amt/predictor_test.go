package amt

import (
	"math"
	"math/rand"
	"testing"
)

func obsOf(id ObjectID, load float64) PhaseStats {
	return PhaseStats{Loads: map[ObjectID]float64{id: load}, Total: load}
}

func TestLoadModelPurePersistence(t *testing.T) {
	m := NewLoadModel(1)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 3))
	m.Observe(obsOf(id, 7))
	if got := m.Predict(id); got != 7 {
		t.Errorf("persistence Predict = %g, want 7", got)
	}
}

func TestLoadModelSmoothing(t *testing.T) {
	m := NewLoadModel(0.5)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 4))
	m.Observe(obsOf(id, 8))
	// 0.5*8 + 0.5*4 = 6.
	if got := m.Predict(id); got != 6 {
		t.Errorf("smoothed Predict = %g, want 6", got)
	}
}

func TestLoadModelConvergesToConstant(t *testing.T) {
	m := NewLoadModel(0.3)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 0))
	for i := 0; i < 60; i++ {
		m.Observe(obsOf(id, 5))
	}
	if got := m.Predict(id); math.Abs(got-5) > 1e-6 {
		t.Errorf("did not converge: %g", got)
	}
}

func TestLoadModelSmoothingReducesNoiseVariance(t *testing.T) {
	// Noisy loads around a constant mean: the smoothed prediction's
	// error variance must undercut pure persistence's.
	rng := rand.New(rand.NewSource(1))
	persist := NewLoadModel(1)
	smooth := NewLoadModel(0.2)
	id := MakeObjectID(0, 1)
	const mean = 10.0
	varP, varS := 0.0, 0.0
	n := 0
	for i := 0; i < 500; i++ {
		load := mean + rng.NormFloat64()
		persist.Observe(obsOf(id, load))
		smooth.Observe(obsOf(id, load))
		if i > 50 { // after warmup
			dp := persist.Predict(id) - mean
			ds := smooth.Predict(id) - mean
			varP += dp * dp
			varS += ds * ds
			n++
		}
	}
	if varS >= varP {
		t.Errorf("smoothing variance %g >= persistence %g", varS/float64(n), varP/float64(n))
	}
}

func TestLoadModelUnknownAndForget(t *testing.T) {
	m := NewLoadModel(0.5)
	id := MakeObjectID(0, 1)
	if m.Predict(id) != 0 {
		t.Error("unknown object should predict 0")
	}
	m.Observe(obsOf(id, 2))
	if m.Len() != 1 {
		t.Error("Len wrong")
	}
	m.Forget(id)
	if m.Predict(id) != 0 || m.Len() != 0 {
		t.Error("Forget did not drop the object")
	}
}

func TestLoadModelPredictionsSnapshot(t *testing.T) {
	m := NewLoadModel(1)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 2))
	snap := m.Predictions()
	m.Observe(obsOf(id, 9))
	if snap[id] != 2 {
		t.Error("snapshot aliased live state")
	}
}

func TestLoadModelBadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %g accepted", a)
				}
			}()
			NewLoadModel(a)
		}()
	}
}
