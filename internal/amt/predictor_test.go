package amt

import (
	"math"
	"math/rand"
	"testing"
)

func obsOf(id ObjectID, load float64) PhaseStats {
	return PhaseStats{Loads: map[ObjectID]float64{id: load}, Total: load}
}

func TestLoadModelPurePersistence(t *testing.T) {
	m := NewLoadModel(1)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 3))
	m.Observe(obsOf(id, 7))
	if got := m.Predict(id); got != 7 {
		t.Errorf("persistence Predict = %g, want 7", got)
	}
}

func TestLoadModelSmoothing(t *testing.T) {
	m := NewLoadModel(0.5)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 4))
	m.Observe(obsOf(id, 8))
	// 0.5*8 + 0.5*4 = 6.
	if got := m.Predict(id); got != 6 {
		t.Errorf("smoothed Predict = %g, want 6", got)
	}
}

func TestLoadModelConvergesToConstant(t *testing.T) {
	m := NewLoadModel(0.3)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 0))
	for i := 0; i < 60; i++ {
		m.Observe(obsOf(id, 5))
	}
	if got := m.Predict(id); math.Abs(got-5) > 1e-6 {
		t.Errorf("did not converge: %g", got)
	}
}

func TestLoadModelSmoothingReducesNoiseVariance(t *testing.T) {
	// Noisy loads around a constant mean: the smoothed prediction's
	// error variance must undercut pure persistence's.
	rng := rand.New(rand.NewSource(1))
	persist := NewLoadModel(1)
	smooth := NewLoadModel(0.2)
	id := MakeObjectID(0, 1)
	const mean = 10.0
	varP, varS := 0.0, 0.0
	n := 0
	for i := 0; i < 500; i++ {
		load := mean + rng.NormFloat64()
		persist.Observe(obsOf(id, load))
		smooth.Observe(obsOf(id, load))
		if i > 50 { // after warmup
			dp := persist.Predict(id) - mean
			ds := smooth.Predict(id) - mean
			varP += dp * dp
			varS += ds * ds
			n++
		}
	}
	if varS >= varP {
		t.Errorf("smoothing variance %g >= persistence %g", varS/float64(n), varP/float64(n))
	}
}

func TestLoadModelUnknownAndForget(t *testing.T) {
	m := NewLoadModel(0.5)
	id := MakeObjectID(0, 1)
	if m.Predict(id) != 0 {
		t.Error("unknown object should predict 0")
	}
	m.Observe(obsOf(id, 2))
	if m.Len() != 1 {
		t.Error("Len wrong")
	}
	m.Forget(id)
	if m.Predict(id) != 0 || m.Len() != 0 {
		t.Error("Forget did not drop the object")
	}
}

func TestLoadModelPredictionsSnapshot(t *testing.T) {
	m := NewLoadModel(1)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 2))
	snap := m.Predictions()
	m.Observe(obsOf(id, 9))
	if snap[id] != 2 {
		t.Error("snapshot aliased live state")
	}
}

func TestLoadModelBadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %g accepted", a)
				}
			}()
			NewLoadModel(a)
		}()
	}
}

func TestLoadModelBadTrendAndAgePanic(t *testing.T) {
	for _, b := range []float64{-0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("beta %g accepted", b)
				}
			}()
			NewLoadModel(0.5).SetTrend(b)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative max age accepted")
			}
		}()
		NewLoadModel(0.5).SetMaxAge(-1)
	}()
}

// TestLoadModelStalePredictionsSwept is the regression test for the
// phantom-load bug: objects absent from every later phase (completed or
// migrated away without a Forget) must decay and then vanish from
// Predictions, instead of feeding their last observation to the
// balancer forever.
func TestLoadModelStalePredictionsSwept(t *testing.T) {
	m := NewLoadModel(0.5)
	alive := MakeObjectID(0, 1)
	stale := MakeObjectID(0, 2)
	m.Observe(PhaseStats{Loads: map[ObjectID]float64{alive: 4, stale: 8}})
	if m.Predict(stale) != 8 {
		t.Fatalf("setup: stale object predicts %g, want 8", m.Predict(stale))
	}
	// The stale object never works again; the alive one keeps going.
	prev := m.Predict(stale)
	for i := 0; i < DefaultMaxAge; i++ {
		m.Observe(obsOf(alive, 4))
		cur := m.Predict(stale)
		if cur > prev {
			t.Errorf("absent phase %d: stale prediction grew %g -> %g", i+1, prev, cur)
		}
		prev = cur
	}
	if m.Predict(stale) != 0 || m.Len() != 1 {
		t.Errorf("stale object survived %d absent phases: predict %g, len %d",
			DefaultMaxAge, m.Predict(stale), m.Len())
	}
	if _, ok := m.Predictions()[stale]; ok {
		t.Error("Predictions still carries the stale object")
	}
	if m.Predict(alive) == 0 {
		t.Error("sweep dropped a live object")
	}
}

// TestLoadModelLegacyNoSweep documents the pre-fix behaviour, kept
// reachable via SetMaxAge(0): absent objects persist forever.
func TestLoadModelLegacyNoSweep(t *testing.T) {
	m := NewLoadModel(0.5)
	m.SetMaxAge(0)
	alive, stale := MakeObjectID(0, 1), MakeObjectID(0, 2)
	m.Observe(PhaseStats{Loads: map[ObjectID]float64{alive: 4, stale: 8}})
	for i := 0; i < 3*DefaultMaxAge; i++ {
		m.Observe(obsOf(alive, 4))
	}
	if m.Predict(stale) != 8 {
		t.Errorf("legacy mode decayed the absent object to %g", m.Predict(stale))
	}
}

func TestLoadModelAbsenceCounterResets(t *testing.T) {
	m := NewLoadModel(1)
	alive, blinker := MakeObjectID(0, 1), MakeObjectID(0, 2)
	for cycle := 0; cycle < 4; cycle++ {
		m.Observe(PhaseStats{Loads: map[ObjectID]float64{alive: 1, blinker: 2}})
		for i := 0; i < DefaultMaxAge-1; i++ { // absent, but never long enough
			m.Observe(obsOf(alive, 1))
		}
		if m.Len() != 2 {
			t.Fatalf("cycle %d: blinker swept after only %d absent phases", cycle, DefaultMaxAge-1)
		}
	}
}

func TestLoadModelImmediateDrop(t *testing.T) {
	m := NewLoadModel(0.5)
	m.SetMaxAge(1)
	alive, once := MakeObjectID(0, 1), MakeObjectID(0, 2)
	m.Observe(PhaseStats{Loads: map[ObjectID]float64{alive: 4, once: 8}})
	m.Observe(obsOf(alive, 4))
	if m.Len() != 1 || m.Predict(once) != 0 {
		t.Errorf("MaxAge 1 kept the absent object: len %d, predict %g", m.Len(), m.Predict(once))
	}
}

// TestLoadModelTrend checks Holt's linear trend against hand-computed
// values: with alpha = beta = 1 the trend is exactly the last delta and
// the k-step forecast extrapolates it linearly.
func TestLoadModelTrend(t *testing.T) {
	m := NewLoadModel(1)
	m.SetTrend(1)
	id := MakeObjectID(0, 1)
	for _, load := range []float64{1, 2, 3} {
		m.Observe(obsOf(id, load))
	}
	if got := m.Trend(id); got != 1 {
		t.Errorf("trend = %g, want 1", got)
	}
	if got := m.Predict(id); got != 4 {
		t.Errorf("one-step forecast = %g, want 4", got)
	}
	if got := m.PredictAhead(id, 3); got != 6 {
		t.Errorf("three-step forecast = %g, want 6", got)
	}
	if got := m.PredictAhead(id, 0); got != 3 {
		t.Errorf("zero-step forecast = %g, want the level 3", got)
	}
}

func TestLoadModelTrendForecastClampsAtZero(t *testing.T) {
	m := NewLoadModel(1)
	m.SetTrend(1)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 4))
	m.Observe(obsOf(id, 1)) // level 1, trend -3
	if got := m.Predict(id); got != 0 {
		t.Errorf("negative forecast not clamped: %g", got)
	}
	if got := m.Predictions()[id]; got != 0 {
		t.Errorf("Predictions not clamped: %g", got)
	}
}

func TestLoadModelTrendDampedBySmoothing(t *testing.T) {
	// With beta < 1 the trend lags a sudden slope change instead of
	// jumping to it.
	m := NewLoadModel(1)
	m.SetTrend(0.5)
	id := MakeObjectID(0, 1)
	m.Observe(obsOf(id, 1))
	m.Observe(obsOf(id, 2)) // delta 1, trend 0.5
	if got := m.Trend(id); got != 0.5 {
		t.Errorf("damped trend = %g, want 0.5", got)
	}
}

// TestLoadModelForgetAfterMigrate models the ownership handoff: the
// sender forgets a migrated object, and the receiver's model starts
// fresh from its own observations with no inherited trend.
func TestLoadModelForgetAfterMigrate(t *testing.T) {
	sender, receiver := NewLoadModel(0.5), NewLoadModel(0.5)
	sender.SetTrend(0.5)
	receiver.SetTrend(0.5)
	id := MakeObjectID(0, 1)
	for _, load := range []float64{2, 4, 6} {
		sender.Observe(obsOf(id, load))
	}
	sender.Forget(id)
	if sender.Len() != 0 {
		t.Fatal("Forget left the object tracked")
	}
	receiver.Observe(obsOf(id, 6))
	if got := receiver.Predict(id); got != 6 {
		t.Errorf("receiver's fresh prediction = %g, want the observation 6", got)
	}
	if got := receiver.Trend(id); got != 0 {
		t.Errorf("receiver inherited a trend: %g", got)
	}
}

// TestLoadModelDeterministicConsumption: the model's outputs must not
// depend on map insertion or iteration order — IDs is sorted, and two
// models fed the same observations through differently-ordered maps
// agree exactly.
func TestLoadModelDeterministicConsumption(t *testing.T) {
	build := func(order []int64) *LoadModel {
		m := NewLoadModel(0.3)
		m.SetTrend(0.2)
		for phase := 0; phase < 5; phase++ {
			loads := make(map[ObjectID]float64)
			for _, seq := range order {
				loads[MakeObjectID(0, seq)] = float64(seq) + float64(phase)/3
			}
			m.Observe(PhaseStats{Loads: loads})
		}
		return m
	}
	a := build([]int64{1, 2, 3, 4, 5})
	b := build([]int64{5, 3, 1, 4, 2})
	ids := a.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not ascending: %v", ids)
		}
	}
	pa, pb := a.Predictions(), b.Predictions()
	if len(pa) != len(pb) {
		t.Fatalf("prediction sets differ: %d vs %d", len(pa), len(pb))
	}
	for id, v := range pa {
		if pb[id] != v {
			t.Errorf("object %v: %g vs %g", id, v, pb[id])
		}
	}
}
