package amt

import (
	"fmt"
	"slices"

	"temperedlb/internal/obs"
)

// phaseState is the per-rank instrumentation of the current application
// phase (§III-B): observed work per local object. The principle of
// persistence lets the balancers use these observations as predictors
// for the next phase.
type phaseState struct {
	active bool
	loads  map[ObjectID]float64
}

// PhaseStats is the instrumentation gathered over one phase on one rank.
type PhaseStats struct {
	// Loads maps each object that did work this phase to its observed
	// (virtual) load.
	Loads map[ObjectID]float64
	// Total is the rank's summed task load for the phase — l^p.
	Total float64
}

// MaxTaskLoad returns the largest single object load of the phase.
func (ps PhaseStats) MaxTaskLoad() float64 {
	max := 0.0
	for _, l := range ps.Loads {
		if l > max {
			max = l
		}
	}
	return max
}

// PhaseBegin opens an instrumentation window. Phases must not nest.
func (rc *Context) PhaseBegin() {
	if rc.phase.active {
		panic("amt: PhaseBegin inside an open phase")
	}
	rc.phase.active = true
	rc.phase.loads = make(map[ObjectID]float64)
	if rc.tr != nil {
		rc.Emit(obs.Event{Type: obs.EvPhaseBegin, Peer: -1, Object: -1})
	}
}

// RecordWork attributes load to a local object during the open phase.
// The load is virtual time: applications declare the cost of the task
// execution they just performed, which keeps runs deterministic. An
// object must be local — work happens where the object lives.
func (rc *Context) RecordWork(id ObjectID, load float64) {
	if !rc.phase.active {
		panic("amt: RecordWork outside a phase")
	}
	if load < 0 {
		panic(fmt.Sprintf("amt: RecordWork with negative load %g", load))
	}
	if _, ok := rc.objects[id]; !ok {
		panic(fmt.Sprintf("amt: RecordWork on non-local object %v", id))
	}
	rc.phase.loads[id] += load
}

// PhaseEnd closes the window and returns the observations.
func (rc *Context) PhaseEnd() PhaseStats {
	if !rc.phase.active {
		panic("amt: PhaseEnd without PhaseBegin")
	}
	rc.phase.active = false
	st := PhaseStats{Loads: rc.phase.loads}
	// Sum in sorted-key order: the total feeds imbalance comparisons on
	// every rank, so its FP combine order must not follow map order.
	ids := make([]ObjectID, 0, len(st.Loads))
	for id := range st.Loads {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		st.Total += st.Loads[id]
	}
	rc.phase.loads = nil
	if rc.tr != nil {
		rc.Emit(obs.Event{Type: obs.EvPhaseEnd, Peer: -1, Object: -1, Value: st.Total})
	}
	return st
}
