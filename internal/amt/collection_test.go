package amt

import (
	"sync"
	"sync/atomic"
	"testing"

	"temperedlb/internal/core"
)

type element struct {
	Index int
	Hits  int
}

const (
	hElemPoke HandlerID = 50 + iota
	hElemBcast
)

func TestCollectionCreationBlockMapped(t *testing.T) {
	rt := New(4)
	var mu sync.Mutex
	hosted := map[core.Rank][]int{}
	rt.Run(func(rc *Context) {
		col := rc.CreateCollection(1, 16, func(i int) any { return &element{Index: i} })
		if col.Size() != 16 {
			t.Errorf("Size = %d", col.Size())
		}
		mu.Lock()
		hosted[rc.Rank()] = col.LocalIndices(rc)
		mu.Unlock()
	})
	// Block mapping: 4 consecutive elements per rank.
	for r := 0; r < 4; r++ {
		idxs := hosted[core.Rank(r)]
		if len(idxs) != 4 {
			t.Fatalf("rank %d hosts %d elements", r, len(idxs))
		}
		for k, idx := range idxs {
			if idx != r*4+k {
				t.Errorf("rank %d hosts %v, want consecutive block", r, idxs)
			}
		}
	}
}

func TestCollectionElementIDsConsistentAcrossRanks(t *testing.T) {
	rt := New(3)
	ids := make([][]ObjectID, 3)
	rt.Run(func(rc *Context) {
		col := rc.CreateCollection(2, 9, func(i int) any { return &element{Index: i} })
		own := make([]ObjectID, 9)
		for i := 0; i < 9; i++ {
			own[i] = col.Element(i)
		}
		ids[rc.Rank()] = own
	})
	for r := 1; r < 3; r++ {
		for i := 0; i < 9; i++ {
			if ids[r][i] != ids[0][i] {
				t.Fatalf("element %d id differs between ranks", i)
			}
		}
	}
}

func TestCollectionIndexRoundTrip(t *testing.T) {
	rt := New(4)
	rt.Run(func(rc *Context) {
		if rc.Rank() != 0 {
			return
		}
		col := rc.CreateCollection(3, 100, func(i int) any { return &element{Index: i} })
		for i := 0; i < 100; i++ {
			idx, ok := col.Index(col.Element(i))
			if !ok || idx != i {
				t.Errorf("Index round trip failed for %d: %d %v", i, idx, ok)
			}
		}
		// Foreign ids are rejected.
		other := rc.CreateObject(&element{})
		if _, ok := col.Index(other); ok {
			t.Error("plain object id accepted as collection element")
		}
		col2 := rc.CreateCollection(4, 100, func(i int) any { return &element{Index: i} })
		if _, ok := col.Index(col2.Element(5)); ok {
			t.Error("other collection's id accepted")
		}
	})
}

func TestCollectionSendByIndex(t *testing.T) {
	rt := New(4)
	var hits atomic.Int32
	rt.RegisterObject(hElemPoke, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		e := state.(*element)
		if e.Index != data.(int) {
			t.Errorf("element %d received message for %d", e.Index, data)
		}
		hits.Add(1)
	})
	rt.Run(func(rc *Context) {
		col := rc.CreateCollection(5, 12, func(i int) any { return &element{Index: i} })
		rc.Barrier()
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				for i := 0; i < 12; i++ {
					col.Send(rc, i, hElemPoke, i)
				}
			}
		})
	})
	if hits.Load() != 12 {
		t.Errorf("hits = %d, want 12", hits.Load())
	}
}

func TestCollectionSendAfterMigration(t *testing.T) {
	rt := New(4)
	var handledOn atomic.Int32
	handledOn.Store(-1)
	rt.RegisterObject(hElemPoke, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		handledOn.Store(int32(rc.Rank()))
	})
	rt.Run(func(rc *Context) {
		col := rc.CreateCollection(6, 8, func(i int) any { return &element{Index: i} })
		rc.Barrier()
		// Element 0 is homed on rank 0; move it to rank 3.
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				col.Migrate(rc, 0, 3)
			}
		})
		// Rank 1 addresses it by index with stale knowledge.
		rc.Epoch(func() {
			if rc.Rank() == 1 {
				col.Send(rc, 0, hElemPoke, nil)
			}
		})
	})
	if handledOn.Load() != 3 {
		t.Errorf("handled on rank %d, want 3", handledOn.Load())
	}
}

func TestCollectionBroadcastLocalDelivery(t *testing.T) {
	rt := New(4)
	rt.RegisterObject(hElemBcast, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		state.(*element).Hits++
	})
	rt.Run(func(rc *Context) {
		col := rc.CreateCollection(7, 16, func(i int) any { return &element{Index: i} })
		rc.Barrier()
		col.Broadcast(rc, hElemBcast, nil)
		rc.Barrier()
		// Every local element got exactly one hit.
		for _, idx := range col.LocalIndices(rc) {
			st, _ := rc.ObjectState(col.Element(idx))
			if st.(*element).Hits != 1 {
				t.Errorf("element %d hits = %d", idx, st.(*element).Hits)
			}
		}
	})
}

func TestCollectionBroadcastFollowsMigration(t *testing.T) {
	rt := New(2)
	var total atomic.Int32
	rt.RegisterObject(hElemBcast, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		total.Add(1)
	})
	rt.Run(func(rc *Context) {
		col := rc.CreateCollection(8, 6, func(i int) any { return &element{Index: i} })
		rc.Barrier()
		rc.Epoch(func() {
			// Rank 0 ships all its elements to rank 1.
			if rc.Rank() == 0 {
				for _, idx := range col.LocalIndices(rc) {
					col.Migrate(rc, idx, 1)
				}
			}
		})
		col.Broadcast(rc, hElemBcast, nil)
		rc.Barrier()
		if rc.Rank() == 0 && len(col.LocalIndices(rc)) != 0 {
			t.Error("rank 0 still hosts elements")
		}
	})
	if total.Load() != 6 {
		t.Errorf("broadcast reached %d elements, want 6", total.Load())
	}
}

func TestCollectionValidation(t *testing.T) {
	rt := New(2)
	rt.Run(func(rc *Context) {
		if rc.Rank() != 0 {
			return
		}
		mustPanicAMT(t, "zero size", func() { rc.CreateCollection(9, 0, func(int) any { return nil }) })
		mustPanicAMT(t, "huge size", func() { rc.CreateCollection(9, 1<<24, func(int) any { return nil }) })
		mustPanicAMT(t, "bad id", func() { rc.CreateCollection(-1, 4, func(int) any { return nil }) })
		col := rc.CreateCollection(9, 4, func(i int) any { return &element{} })
		mustPanicAMT(t, "duplicate", func() { rc.CreateCollection(9, 4, func(i int) any { return &element{} }) })
		mustPanicAMT(t, "bad index", func() { col.Element(99) })
	})
}
