package amt

import (
	"fmt"
	"slices"
)

// LoadModel turns phase observations into next-phase load predictions
// under the principle of persistence (§III-B): computation in previous
// phases predicts computation in future phases. The model smooths
// observations exponentially — Alpha = 1 is pure persistence (last
// observation wins), smaller Alpha averages over more history, damping
// phase-to-phase noise at the cost of lagging genuine drift.
//
// With a trend factor (SetTrend, following the imbalance-anticipation
// approach of Boulmier et al., arXiv:1909.07168) the model becomes
// Holt's double exponential smoothing: each object carries a level and
// a per-phase trend, so steadily growing or shrinking loads are
// extrapolated instead of lagged. PredictAhead forecasts any number of
// phases out along the trend line.
//
// Objects absent from an observed phase (completed, or migrated away
// without a Forget) are decayed — their level folds in a zero
// observation — and dropped entirely after MaxAge consecutive absent
// phases, so Predictions never feeds phantom load to the balancer.
type LoadModel struct {
	alpha  float64
	beta   float64 // trend smoothing factor; 0 disables the trend term
	maxAge int     // consecutive absent phases before an object is dropped

	pred map[ObjectID]*objTrack

	// sweepBuf is reused by Observe's absence sweep so steady-state
	// observation allocates nothing.
	sweepBuf []ObjectID
}

// objTrack is one object's smoothing state.
type objTrack struct {
	level  float64
	trend  float64
	absent int // consecutive phases without an observation
}

// DefaultMaxAge is the number of consecutive absent phases after which
// an object is dropped from the model. Long enough to forgive an
// application phase that skips some objects, short enough that
// completed work stops shadowing the balancer within a few phases.
const DefaultMaxAge = 4

// NewLoadModel creates a model with smoothing factor alpha in (0, 1],
// no trend term, and the default absence age-out.
func NewLoadModel(alpha float64) *LoadModel {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("amt: NewLoadModel alpha %g out of (0,1]", alpha))
	}
	return &LoadModel{alpha: alpha, maxAge: DefaultMaxAge, pred: make(map[ObjectID]*objTrack)}
}

// SetTrend enables the second-order (trend) term with smoothing factor
// beta in [0, 1]. Beta 0 restores pure level smoothing.
func (m *LoadModel) SetTrend(beta float64) {
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("amt: SetTrend beta %g out of [0,1]", beta))
	}
	m.beta = beta
}

// SetMaxAge sets how many consecutive absent phases an object survives
// before it is dropped. age 0 disables the sweep entirely (the pre-fix
// behaviour: absent objects persist forever); age 1 drops an object the
// first phase it does no work.
func (m *LoadModel) SetMaxAge(age int) {
	if age < 0 {
		panic(fmt.Sprintf("amt: SetMaxAge %d negative", age))
	}
	m.maxAge = age
}

// Observe folds one phase's instrumentation into the predictions.
// Objects never seen before start at their observed load with zero
// trend. Tracked objects absent from stats decay toward zero (a phase
// with no recorded work is a zero observation) and are dropped after
// MaxAge consecutive absent phases.
func (m *LoadModel) Observe(stats PhaseStats) {
	for id, load := range stats.Loads {
		t, ok := m.pred[id]
		if !ok {
			m.pred[id] = &objTrack{level: load}
			continue
		}
		prev := t.level
		t.level = m.alpha*load + (1-m.alpha)*(t.level+t.trend)
		if m.beta > 0 {
			t.trend = m.beta*(t.level-prev) + (1-m.beta)*t.trend
		}
		t.absent = 0
	}
	if m.maxAge == 0 {
		return
	}
	// Absence sweep: collect first (sorted, so any debug hook or future
	// instrumentation sees a deterministic order), then decay and drop.
	m.sweepBuf = m.sweepBuf[:0]
	for id := range m.pred {
		if _, seen := stats.Loads[id]; !seen {
			m.sweepBuf = append(m.sweepBuf, id)
		}
	}
	slices.Sort(m.sweepBuf)
	for _, id := range m.sweepBuf {
		t := m.pred[id]
		t.absent++
		if t.absent >= m.maxAge {
			delete(m.pred, id)
			continue
		}
		// Fold a zero observation: the object demonstrably did no work.
		t.level = (1 - m.alpha) * (t.level + t.trend)
		if m.beta > 0 {
			t.trend = (1 - m.beta) * t.trend
		}
	}
}

// Predict returns the expected next-phase load of an object (0 when the
// object is not tracked). Forecasts are clamped at zero: a negative
// trend cannot predict negative work.
func (m *LoadModel) Predict(id ObjectID) float64 { return m.PredictAhead(id, 1) }

// PredictAhead forecasts an object's load k phases out along its trend
// line: level + k·trend, clamped at zero. k <= 0 returns the current
// level.
func (m *LoadModel) PredictAhead(id ObjectID, k int) float64 {
	t, ok := m.pred[id]
	if !ok {
		return 0
	}
	if k <= 0 {
		return t.level
	}
	f := t.level + float64(k)*t.trend
	if f < 0 {
		return 0
	}
	return f
}

// Trend returns an object's estimated per-phase load change (0 when the
// object is not tracked or the trend term is disabled).
func (m *LoadModel) Trend(id ObjectID) float64 {
	if t, ok := m.pred[id]; ok {
		return t.trend
	}
	return 0
}

// Predictions snapshots all current one-phase-ahead predictions — the
// loads map handed to the distributed balancer.
func (m *LoadModel) Predictions() map[ObjectID]float64 {
	out := make(map[ObjectID]float64, len(m.pred))
	for id := range m.pred {
		out[id] = m.PredictAhead(id, 1)
	}
	return out
}

// IDs returns the tracked object ids in ascending order, so callers
// consuming the model iterate deterministically.
func (m *LoadModel) IDs() []ObjectID {
	out := make([]ObjectID, 0, len(m.pred))
	for id := range m.pred {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Forget drops an object (e.g. one migrated away); the receiving rank
// starts fresh from its own observations.
func (m *LoadModel) Forget(id ObjectID) { delete(m.pred, id) }

// Len returns the number of tracked objects.
func (m *LoadModel) Len() int { return len(m.pred) }
