package amt

import "fmt"

// LoadModel turns phase observations into next-phase load predictions
// under the principle of persistence (§III-B): computation in previous
// phases predicts computation in future phases. The model smooths
// observations exponentially — Alpha = 1 is pure persistence (last
// observation wins), smaller Alpha averages over more history, damping
// phase-to-phase noise at the cost of lagging genuine drift.
type LoadModel struct {
	alpha float64
	pred  map[ObjectID]float64
}

// NewLoadModel creates a model with smoothing factor alpha in (0, 1].
func NewLoadModel(alpha float64) *LoadModel {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("amt: NewLoadModel alpha %g out of (0,1]", alpha))
	}
	return &LoadModel{alpha: alpha, pred: make(map[ObjectID]float64)}
}

// Observe folds one phase's instrumentation into the predictions.
// Objects never seen before start at their observed load.
func (m *LoadModel) Observe(stats PhaseStats) {
	for id, load := range stats.Loads {
		if old, ok := m.pred[id]; ok {
			m.pred[id] = m.alpha*load + (1-m.alpha)*old
		} else {
			m.pred[id] = load
		}
	}
}

// Predict returns the expected next-phase load of an object (0 when the
// object has never been observed).
func (m *LoadModel) Predict(id ObjectID) float64 { return m.pred[id] }

// Predictions snapshots all current predictions — the loads map handed
// to the distributed balancer.
func (m *LoadModel) Predictions() map[ObjectID]float64 {
	out := make(map[ObjectID]float64, len(m.pred))
	for id, l := range m.pred {
		out[id] = l
	}
	return out
}

// Forget drops an object (e.g. one migrated away); the receiving rank
// starts fresh from its own observations.
func (m *LoadModel) Forget(id ObjectID) { delete(m.pred, id) }

// Len returns the number of tracked objects.
func (m *LoadModel) Len() int { return len(m.pred) }
