package amt

import (
	"sync"
	"sync/atomic"
	"testing"

	"temperedlb/internal/core"
)

type counterState struct {
	Value int
	Tag   string
}

func TestObjectCreateAndLocalState(t *testing.T) {
	rt := New(2)
	rt.Run(func(rc *Context) {
		if rc.Rank() != 0 {
			return
		}
		id := rc.CreateObject(&counterState{Value: 7})
		if id.Home() != 0 {
			t.Errorf("home = %d", id.Home())
		}
		if !rc.HasObject(id) {
			t.Error("object not local after create")
		}
		s, ok := rc.ObjectState(id)
		if !ok || s.(*counterState).Value != 7 {
			t.Error("state lost")
		}
		if got := len(rc.LocalObjects()); got != 1 {
			t.Errorf("LocalObjects = %d", got)
		}
	})
}

func TestObjectIDComposition(t *testing.T) {
	id := MakeObjectID(5, 1234)
	if id.Home() != 5 || id.seq() != 1234 {
		t.Errorf("id decomposition: home=%d seq=%d", id.Home(), id.seq())
	}
	if id.String() == "" {
		t.Error("empty String")
	}
}

func TestSendObjectLocalDelivery(t *testing.T) {
	rt := New(2)
	var hit atomic.Int32
	rt.RegisterObject(hObjPoke, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		hit.Add(1)
		if state.(*counterState).Value != 3 {
			t.Error("wrong state delivered")
		}
	})
	rt.Run(func(rc *Context) {
		if rc.Rank() == 0 {
			id := rc.CreateObject(&counterState{Value: 3})
			rc.Epoch(func() {
				rc.SendObject(id, hObjPoke, nil)
			})
		} else {
			rc.Epoch(func() {})
		}
	})
	if hit.Load() != 1 {
		t.Errorf("handler ran %d times", hit.Load())
	}
}

func TestSendObjectRemoteDelivery(t *testing.T) {
	rt := New(3)
	var deliveredOn atomic.Int32
	deliveredOn.Store(-1)
	rt.RegisterObject(hObjPoke, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		deliveredOn.Store(int32(rc.Rank()))
		if from != 2 {
			t.Errorf("origin = %d, want 2", from)
		}
	})
	var id ObjectID
	var idReady sync.WaitGroup
	idReady.Add(1)
	rt.Run(func(rc *Context) {
		if rc.Rank() == 0 {
			id = rc.CreateObject(&counterState{})
			idReady.Done()
		}
		rc.Barrier()
		rc.Epoch(func() {
			if rc.Rank() == 2 {
				idReady.Wait()
				rc.SendObject(id, hObjPoke, "hello")
			}
		})
	})
	if deliveredOn.Load() != 0 {
		t.Errorf("delivered on rank %d, want 0", deliveredOn.Load())
	}
}

func TestMigratePreservesState(t *testing.T) {
	rt := New(2)
	rt.Run(func(rc *Context) {
		var id ObjectID
		if rc.Rank() == 0 {
			id = rc.CreateObject(&counterState{Value: 42, Tag: "keep"})
		}
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				rc.Migrate(id, 1)
			}
		})
		rc.Barrier()
		if rc.Rank() == 1 {
			objs := rc.LocalObjects()
			if len(objs) != 1 {
				t.Fatalf("rank 1 has %d objects", len(objs))
			}
			s, _ := rc.ObjectState(objs[0])
			cs := s.(*counterState)
			if cs.Value != 42 || cs.Tag != "keep" {
				t.Errorf("state corrupted: %+v", cs)
			}
		}
		if rc.Rank() == 0 && len(rc.LocalObjects()) != 0 {
			t.Error("object still on rank 0 after migration")
		}
	})
}

func TestMigrateToSelfIsNoop(t *testing.T) {
	rt := New(2)
	rt.Run(func(rc *Context) {
		if rc.Rank() != 0 {
			return
		}
		id := rc.CreateObject(&counterState{Value: 1})
		rc.Migrate(id, 0)
		if !rc.HasObject(id) {
			t.Error("self-migration lost the object")
		}
		if rc.Stats.Migrations != 0 {
			t.Error("self-migration counted")
		}
	})
}

func TestMigrateNonLocalPanics(t *testing.T) {
	rt := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	rt.Run(func(rc *Context) {
		if rc.Rank() == 1 {
			rc.Migrate(MakeObjectID(0, 1), 0)
		}
	})
}

// TestMessagesToMigratedObjectForwarded is the location-manager core
// test: messages sent using stale knowledge must be forwarded and
// handled exactly once on the object's actual location.
func TestMessagesToMigratedObjectForwarded(t *testing.T) {
	rt := New(4)
	var mu sync.Mutex
	handledOn := map[core.Rank]int{}
	rt.RegisterObject(hObjAdd, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		state.(*counterState).Value += data.(int)
		mu.Lock()
		handledOn[rc.Rank()]++
		mu.Unlock()
	})
	var id ObjectID
	rt.Run(func(rc *Context) {
		if rc.Rank() == 0 {
			id = rc.CreateObject(&counterState{})
		}
		rc.Barrier()
		// Move 0 -> 3 while other ranks address it via its home.
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				rc.Migrate(id, 3)
			}
		})
		rc.Epoch(func() {
			if rc.Rank() == 1 || rc.Rank() == 2 {
				for i := 0; i < 10; i++ {
					rc.SendObject(id, hObjAdd, 1)
				}
			}
		})
		rc.Barrier()
		if rc.Rank() == 3 {
			s, ok := rc.ObjectState(id)
			if !ok {
				t.Error("object missing on rank 3")
			} else if got := s.(*counterState).Value; got != 20 {
				t.Errorf("object saw %d adds, want 20", got)
			}
		}
	})
	if handledOn[3] != 20 {
		t.Errorf("handled on rank 3: %d, want 20", handledOn[3])
	}
	for r, c := range handledOn {
		if r != 3 && c != 0 {
			t.Errorf("handled %d messages on wrong rank %d", c, r)
		}
	}
}

func TestMigrationChainForwarding(t *testing.T) {
	// Object hops 0 -> 1 -> 2 -> 3; a message from rank 0 sent with
	// original knowledge must chase it down the chain within the epoch.
	rt := New(4)
	var finalVal atomic.Int32
	rt.RegisterObject(hObjAdd, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		state.(*counterState).Value += data.(int)
		finalVal.Store(int32(state.(*counterState).Value))
	})
	var id ObjectID
	rt.Run(func(rc *Context) {
		if rc.Rank() == 0 {
			id = rc.CreateObject(&counterState{})
		}
		rc.Barrier()
		for hop := 0; hop < 3; hop++ {
			rc.Epoch(func() {
				if rc.HasObject(id) && rc.Rank() == core.Rank(hop) {
					rc.Migrate(id, core.Rank(hop+1))
				}
			})
		}
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				rc.SendObject(id, hObjAdd, 5)
			}
		})
	})
	if finalVal.Load() != 5 {
		t.Errorf("message lost in chain: value %d", finalVal.Load())
	}
}

func TestMigrationStatsAccounted(t *testing.T) {
	rt := New(2)
	rt.Run(func(rc *Context) {
		var id ObjectID
		if rc.Rank() == 0 {
			id = rc.CreateObject(&counterState{Value: 9})
		}
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				rc.Migrate(id, 1)
			}
		})
		if rc.Rank() == 0 {
			if rc.Stats.Migrations != 1 || rc.Stats.MigrationBytes <= 0 {
				t.Errorf("stats: %+v", rc.Stats)
			}
		}
	})
}

func TestManyObjectsManyMigrations(t *testing.T) {
	// Shuffle 40 objects around 5 ranks over several epochs, then verify
	// nothing was lost or duplicated and all state survived.
	const nRanks, nObjs = 5, 40
	rt := New(nRanks)
	var mu sync.Mutex
	seen := map[int]int{}
	rt.Run(func(rc *Context) {
		var created []ObjectID
		if rc.Rank() == 0 {
			for i := 0; i < nObjs; i++ {
				created = append(created, rc.CreateObject(&counterState{Value: 1000 + i}))
			}
		}
		rc.Barrier()
		for round := 0; round < 4; round++ {
			rc.Epoch(func() {
				for _, id := range rc.LocalObjects() {
					dest := core.Rank((int(id) + round) % nRanks)
					rc.Migrate(id, dest)
				}
			})
		}
		rc.Barrier()
		mu.Lock()
		for _, id := range rc.LocalObjects() {
			s, _ := rc.ObjectState(id)
			seen[s.(*counterState).Value]++
		}
		mu.Unlock()
	})
	if len(seen) != nObjs {
		t.Fatalf("saw %d distinct objects, want %d", len(seen), nObjs)
	}
	for v, c := range seen {
		if c != 1 {
			t.Errorf("object value %d seen %d times", v, c)
		}
	}
}

func TestPhaseInstrumentation(t *testing.T) {
	rt := New(1)
	rt.Run(func(rc *Context) {
		a := rc.CreateObject(&counterState{})
		b := rc.CreateObject(&counterState{})
		rc.PhaseBegin()
		rc.RecordWork(a, 1.5)
		rc.RecordWork(b, 2.0)
		rc.RecordWork(a, 0.5)
		st := rc.PhaseEnd()
		if st.Total != 4.0 {
			t.Errorf("Total = %g", st.Total)
		}
		if st.Loads[a] != 2.0 || st.Loads[b] != 2.0 {
			t.Errorf("Loads = %v", st.Loads)
		}
		if st.MaxTaskLoad() != 2.0 {
			t.Errorf("MaxTaskLoad = %g", st.MaxTaskLoad())
		}
	})
}

func TestPhaseMisusePanics(t *testing.T) {
	rt := New(1)
	rt.Run(func(rc *Context) {
		id := rc.CreateObject(&counterState{})
		mustPanicAMT(t, "RecordWork outside phase", func() { rc.RecordWork(id, 1) })
		mustPanicAMT(t, "PhaseEnd outside phase", func() { rc.PhaseEnd() })
		rc.PhaseBegin()
		mustPanicAMT(t, "nested PhaseBegin", func() { rc.PhaseBegin() })
		mustPanicAMT(t, "negative load", func() { rc.RecordWork(id, -1) })
		mustPanicAMT(t, "non-local object", func() { rc.RecordWork(MakeObjectID(0, 999), 1) })
		rc.PhaseEnd()
	})
}

func mustPanicAMT(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestPollProcessesOutsideEpoch(t *testing.T) {
	rt := New(2)
	var got atomic.Int32
	rt.Register(hCollect, func(rc *Context, from core.Rank, data any) {
		got.Store(int32(data.(int)))
	})
	rt.Run(func(rc *Context) {
		rc.Barrier()
		if rc.Rank() == 0 {
			// Uncounted send outside any epoch.
			rc.Send(1, hCollect, 7)
		}
		if rc.Rank() == 1 {
			// Keep polling until the handler fired; Poll returns false
			// while the inbox is empty and true once it dispatched.
			for got.Load() != 7 {
				rc.Poll()
			}
		}
		rc.Barrier()
	})
}

func TestContextStatsCounts(t *testing.T) {
	rt := New(2)
	rt.Register(hCollect, func(rc *Context, from core.Rank, data any) {})
	rt.RegisterObject(hObjPoke, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {})
	rt.Run(func(rc *Context) {
		var id ObjectID
		if rc.Rank() == 0 {
			id = rc.CreateObject(&counterState{})
		}
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				rc.Send(1, hCollect, nil)
				rc.SendObject(id, hObjPoke, nil)
				rc.Migrate(id, 1)
			}
		})
		if rc.Rank() == 0 {
			if rc.Stats.UserSent != 1 || rc.Stats.ObjectSent != 1 || rc.Stats.Migrations != 1 {
				t.Errorf("stats: %+v", rc.Stats)
			}
			if rc.Stats.EpochsRun != 1 {
				t.Errorf("epochs: %d", rc.Stats.EpochsRun)
			}
		}
	})
}
