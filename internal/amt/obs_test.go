package amt

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"temperedlb/internal/core"
	"temperedlb/internal/obs"
)

// TestAllReduceVec checks the vector collective against elementwise
// scalar reductions.
func TestAllReduceVec(t *testing.T) {
	const n = 7
	rt := New(n)
	rt.Run(func(rc *Context) {
		r := float64(rc.Rank())
		sum := rc.AllReduceVec([]float64{r, 2 * r, 1}, ReduceSum)
		want := []float64{21, 42, 7} // 0+1+...+6 = 21
		for i := range want {
			if sum[i] != want[i] {
				t.Errorf("sum[%d] = %g, want %g", i, sum[i], want[i])
			}
		}
		min := rc.AllReduceVec([]float64{r, -r}, ReduceMin)
		if min[0] != 0 || min[1] != -6 {
			t.Errorf("min = %v", min)
		}
		max := rc.AllReduceVec([]float64{r}, ReduceMax)
		if max[0] != 6 {
			t.Errorf("max = %v", max)
		}
	})
}

// TestAllReduceVecInputAliasing verifies the collective does not retain
// or mutate the caller's slice.
func TestAllReduceVecInputAliasing(t *testing.T) {
	rt := New(3)
	rt.Run(func(rc *Context) {
		in := []float64{float64(rc.Rank())}
		out := rc.AllReduceVec(in, ReduceSum)
		if in[0] != float64(rc.Rank()) {
			t.Errorf("input mutated to %g", in[0])
		}
		if out[0] != 3 {
			t.Errorf("out = %g, want 3", out[0])
		}
	})
}

// TestRuntimeTracingAndMetrics drives every instrumented runtime path —
// epochs, rank and object handlers, migration, collectives, phases —
// with a recorder attached and checks both the event stream and the
// folded metrics registry.
func TestRuntimeTracingAndMetrics(t *testing.T) {
	const n = 4
	rec := obs.NewRecorder()
	rt := New(n, WithTracer(rec), WithMetrics())
	rt.NameHandler(hPing, "test.ping")
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {})
	rt.RegisterObject(hObjAdd, func(rc *Context, obj ObjectID, state any, from core.Rank, data any) {
		state.(*counterState).Value += data.(int)
	})

	rt.Run(func(rc *Context) {
		id := rc.CreateObject(&counterState{})
		rc.PhaseBegin()
		rc.RecordWork(id, 1.5)
		rc.PhaseEnd()

		rc.Epoch(func() {
			rc.Send(core.Rank((int(rc.Rank())+1)%n), hPing, 1)
			rc.SendObject(id, hObjAdd, 2)
		})
		rc.Epoch(func() {
			rc.Migrate(id, core.Rank((int(rc.Rank())+1)%n))
		})
		if s := rc.AllReduce(1, ReduceSum); s != n {
			t.Errorf("allreduce = %g", s)
		}
		rc.Barrier()
	})

	events := rec.Events()
	byType := map[obs.EventType]int{}
	ranks := map[int]bool{}
	for _, e := range events {
		byType[e.Type]++
		ranks[e.Rank] = true
	}
	if len(ranks) != n {
		t.Errorf("events cover %d ranks, want %d", len(ranks), n)
	}
	wantCounts := map[obs.EventType]int{
		obs.EvEpochOpen:  2 * n,
		obs.EvEpochClose: 2 * n,
		obs.EvPhaseBegin: n,
		obs.EvPhaseEnd:   n,
		obs.EvMigration:  n,
	}
	for ty, want := range wantCounts {
		if byType[ty] != want {
			t.Errorf("%v events = %d, want %d", ty, byType[ty], want)
		}
	}
	// Handlers ran (ping + object pokes, some possibly via forwards),
	// tokens circulated, and every rank saw the two collectives.
	if byType[obs.EvHandler] < 2*n {
		t.Errorf("handler events = %d, want >= %d", byType[obs.EvHandler], 2*n)
	}
	if byType[obs.EvTokenRound] == 0 {
		t.Error("no token-round events")
	}
	if byType[obs.EvCollective] != 2*n {
		t.Errorf("collective events = %d, want %d", byType[obs.EvCollective], 2*n)
	}
	// Epoch close events carry the wave count and a duration.
	for _, e := range events {
		if e.Type == obs.EvEpochClose && e.Rank == 0 {
			if e.Value < 1 {
				t.Errorf("epoch close wave = %g", e.Value)
			}
			if e.Dur <= 0 {
				t.Errorf("epoch close dur = %v", e.Dur)
			}
		}
	}

	m := rt.Metrics()
	if m == nil {
		t.Fatal("Metrics() = nil after EnableMetrics")
	}
	if got := m.Counter("amt_epochs_total").Value(); got != 2*n {
		t.Errorf("amt_epochs_total = %d, want %d", got, 2*n)
	}
	if got := m.Counter("amt_migrations_total").Value(); got != n {
		t.Errorf("amt_migrations_total = %d, want %d", got, n)
	}
	if m.Counter("amt_migration_bytes_total").Value() <= 0 {
		t.Error("amt_migration_bytes_total not recorded")
	}
	if m.Counter("amt_handler_invocations_total").Value() != int64(byType[obs.EvHandler]) {
		t.Errorf("handler counter %d != handler events %d",
			m.Counter("amt_handler_invocations_total").Value(), byType[obs.EvHandler])
	}
	// The folded transport counters must agree with the network totals.
	if got := m.Counter("comm_messages_all_total").Value(); got != rt.TotalMessages() {
		t.Errorf("comm_messages_all_total = %d, transport sent %d", got, rt.TotalMessages())
	}
	if got := m.Counter(`comm_messages_total{kind="user"}`).Value(); got != n {
		t.Errorf("user kind messages = %d, want %d", got, n)
	}
	if got := m.Counter(`comm_messages_total{kind="migrate"}`).Value(); got != n {
		t.Errorf("migrate kind messages = %d, want %d", got, n)
	}
	if m.Counter("comm_bytes_all_total").Value() <= 0 {
		t.Error("byte accounting produced no bytes")
	}
}

// TestRuntimeNoTracerUnaffected pins the default path: without options,
// no tracer and no metrics exist and behavior is identical.
func TestRuntimeNoTracerUnaffected(t *testing.T) {
	rt := New(2)
	if rt.Tracer() != nil {
		t.Error("default tracer not nil")
	}
	if rt.Metrics() != nil {
		t.Error("default metrics not nil")
	}
	rt.Register(hPing, func(rc *Context, from core.Rank, data any) {})
	rt.Run(func(rc *Context) {
		if rc.Tracer() != nil || rc.Metrics() != nil {
			t.Error("context sees observability that was never enabled")
		}
		rc.Emit(obs.Event{Type: obs.EvHandler}) // must be a safe no-op
		rc.Epoch(func() {
			if rc.Rank() == 0 {
				rc.Send(1, hPing, nil)
			}
		})
	})
}

// TestChaosInstrumentedJitter reruns the cascading-epochs chaos workload
// with the full observability stack attached and delivery order
// scrambled: the protocols must still converge, and the trace must stay
// structurally sound (epoch opens and closes balance per rank, waves are
// positive, handler totals match the metric counter).
func TestChaosInstrumentedJitter(t *testing.T) {
	const n, rounds, chain = 6, 3, 30
	rec := obs.NewRecorder()
	rt := New(n, WithTracer(rec), WithMetrics())
	rt.SetJitter(2 * time.Millisecond)
	rt.NameHandler(hCascade, "test.cascade")
	var hops atomic.Int64
	rt.Register(hCascade, func(rc *Context, from core.Rank, data any) {
		k := data.(int)
		hops.Add(1)
		if k > 0 {
			rc.Send((rc.Rank()+1)%core.Rank(rc.NumRanks()), hCascade, k-1)
		}
	})
	rt.Run(func(rc *Context) {
		for round := 0; round < rounds; round++ {
			rc.Epoch(func() {
				if rc.Rank() == 0 {
					rc.Send(1, hCascade, chain)
				}
			})
			if sum := rc.AllReduceVec([]float64{1, float64(rc.Rank())}, ReduceSum)[0]; sum != n {
				t.Errorf("vec allreduce under jitter: %g", sum)
			}
			rc.Barrier()
		}
	})
	if hops.Load() != rounds*(chain+1) {
		t.Errorf("hops = %d, want %d", hops.Load(), rounds*(chain+1))
	}

	open := map[int]int{}
	handlers := 0
	for _, e := range rec.Events() {
		switch e.Type {
		case obs.EvEpochOpen:
			open[e.Rank]++
		case obs.EvEpochClose:
			open[e.Rank]--
			if e.Value < 1 || math.IsNaN(e.Value) {
				t.Errorf("rank %d epoch close wave = %g", e.Rank, e.Value)
			}
		case obs.EvHandler:
			handlers++
			if e.Name != "test.cascade" {
				t.Errorf("handler name = %q", e.Name)
			}
		}
	}
	for r, d := range open {
		if d != 0 {
			t.Errorf("rank %d has %d unclosed epochs in trace", r, d)
		}
	}
	if handlers != rounds*(chain+1) {
		t.Errorf("trace handler events = %d, want %d", handlers, rounds*(chain+1))
	}
	m := rt.Metrics()
	if got := m.Counter("amt_handler_invocations_total").Value(); got != int64(handlers) {
		t.Errorf("handler counter = %d, trace saw %d", got, handlers)
	}
	if got := m.Counter("amt_epochs_total").Value(); got != rounds*n {
		t.Errorf("amt_epochs_total = %d, want %d", got, rounds*n)
	}
}
