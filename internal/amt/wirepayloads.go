package amt

import (
	"temperedlb/internal/comm/wire"
	"temperedlb/internal/core"
	"temperedlb/internal/termination"
)

// Wire codecs for every payload type the runtime itself puts on the
// transport. IDs 1–15 are envelopes and control payloads; 16–31 stay
// reserved for future runtime types. Field order here IS the wire
// protocol — reordering or widening a field is a wire.Version bump.
//
// The nested Data/State fields round-trip through Encoder.Any, so an
// application's payloads must be registered too (ids 64+); the balancer
// layer registers its own at 32–63 (see internal/lb/tempered).
func init() {
	wire.RegisterPayload(1,
		func(e *wire.Encoder, v envelope) {
			e.I64(v.EpochID)
			e.Any(v.Data)
		},
		func(d *wire.Decoder) envelope {
			return envelope{EpochID: d.I64(), Data: d.Any()}
		})
	wire.RegisterPayload(2,
		func(e *wire.Encoder, v objEnvelope) {
			e.I64(v.EpochID)
			e.I64(int64(v.Obj))
			e.I32(int32(v.Origin))
			e.Any(v.Data)
		},
		func(d *wire.Decoder) objEnvelope {
			return objEnvelope{
				EpochID: d.I64(),
				Obj:     ObjectID(d.I64()),
				Origin:  core.Rank(d.I32()),
				Data:    d.Any(),
			}
		})
	wire.RegisterPayload(3,
		func(e *wire.Encoder, v migrateEnvelope) {
			e.I64(v.EpochID)
			e.I64(int64(v.Obj))
			e.I64(int64(v.Bytes))
			e.Any(v.State)
		},
		func(d *wire.Decoder) migrateEnvelope {
			return migrateEnvelope{
				EpochID: d.I64(),
				Obj:     ObjectID(d.I64()),
				Bytes:   int(d.I64()),
				State:   d.Any(),
			}
		})
	wire.RegisterPayload(4,
		func(e *wire.Encoder, v locEnvelope) {
			e.I64(v.EpochID)
			e.I64(int64(v.Obj))
			e.I32(int32(v.Loc))
		},
		func(d *wire.Decoder) locEnvelope {
			return locEnvelope{
				EpochID: d.I64(),
				Obj:     ObjectID(d.I64()),
				Loc:     core.Rank(d.I32()),
			}
		})
	wire.RegisterPayload(5,
		func(e *wire.Encoder, v tokenEnvelope) {
			e.I64(v.EpochID)
			e.I64(int64(v.Token.Count))
			e.U8(uint8(v.Token.Color))
			e.I64(int64(v.Token.Wave))
		},
		func(d *wire.Decoder) tokenEnvelope {
			return tokenEnvelope{
				EpochID: d.I64(),
				Token: termination.Token{
					Count: int(d.I64()),
					Color: termination.Color(d.U8()),
					Wave:  int(d.I64()),
				},
			}
		})
	wire.RegisterPayload(6,
		func(e *wire.Encoder, v collMsg) {
			e.I64(v.Seq)
			e.F64Slice(v.Values)
		},
		func(d *wire.Decoder) collMsg {
			return collMsg{Seq: d.I64(), Values: d.F64Slice()}
		})

	// Scalar payloads the runtime sends bare: done announcements and
	// acks carry int64 ids; core.Rank rides object fetches; int and
	// float64 are common application payloads (lbplay's task loads).
	wire.RegisterPayload(7,
		func(e *wire.Encoder, v int64) { e.I64(v) },
		func(d *wire.Decoder) int64 { return d.I64() })
	wire.RegisterPayload(8,
		func(e *wire.Encoder, v int) { e.I64(int64(v)) },
		func(d *wire.Decoder) int { return int(d.I64()) })
	wire.RegisterPayload(9,
		func(e *wire.Encoder, v float64) { e.F64(v) },
		func(d *wire.Decoder) float64 { return d.F64() })
	wire.RegisterPayload(10,
		func(e *wire.Encoder, v core.Rank) { e.I32(int32(v)) },
		func(d *wire.Decoder) core.Rank { return core.Rank(d.I32()) })
}
