package amt

import (
	"fmt"
	"sort"
	"time"

	"temperedlb/internal/clock"
	"temperedlb/internal/comm"
	"temperedlb/internal/obs"
)

// Reliability layer: exactly-once delivery of epoch messages over a
// transport that drops and duplicates.
//
// When a fault plan drops or duplicates counted kinds, classical Safra
// accounting breaks both ways: a dropped message leaves the global
// balance permanently positive (the epoch never terminates) and a
// duplicated one drives it negative (the epoch can terminate early).
// The runtime therefore switches the detectors to ack-based
// (sender-credit) accounting:
//
//   - every counted send carries a MsgID unique per (sender, dest) pair
//     and is remembered by the sender until acknowledged;
//   - the receiver deduplicates per sender, acknowledges every copy
//     (kindAck, uncounted control traffic), and blackens without
//     touching its counter (termination.Detector.OnDeliver);
//   - the first ack retires the sender's credit
//     (termination.Detector.OnAck), so each counter equals the rank's
//     unacknowledged sends — non-negative, summing to the global number
//     of unacknowledged messages;
//   - unacknowledged sends are retransmitted with capped exponential
//     backoff whenever the rank goes passive inside an epoch.
//
// Termination (all counters zero in a white wave) then means every send
// was acknowledged, which implies every send was delivered exactly once
// — and no pending entry can outlive its epoch, so no timer state leaks
// across epochs. Late duplicates of an earlier epoch's messages are
// absorbed by the dedup filter before the "message for finished epoch"
// guard, and late acks for retired credits are ignored.

// Default retransmission tuning; FaultSpec.RetryBase/RetryCap override.
const (
	defaultRetryBase = 2 * time.Millisecond
	defaultRetryCap  = 64 * time.Millisecond
)

// pendKey identifies one unacknowledged send. MsgIDs are per-destination
// sequences, so the pair is unique for the context's lifetime.
type pendKey struct {
	dest int
	id   int64
}

// relPending is one unacknowledged counted send.
type relPending struct {
	m        comm.Message
	epoch    int64
	attempts int
	deadline time.Time
}

// seenSet deduplicates one sender's MsgID stream. IDs arrive from a
// contiguous per-(sender,dest) sequence, so a low-water mark absorbs the
// common case and the sparse overflow map stays tiny (only IDs that
// overtook a delayed predecessor).
type seenSet struct {
	low    int64
	sparse map[int64]struct{}
}

func (s *seenSet) seen(id int64) bool {
	if id <= s.low {
		return true
	}
	_, ok := s.sparse[id]
	return ok
}

func (s *seenSet) add(id int64) {
	if id == s.low+1 {
		s.low++
		for {
			if _, ok := s.sparse[s.low+1]; !ok {
				return
			}
			delete(s.sparse, s.low+1)
			s.low++
		}
	}
	if s.sparse == nil {
		s.sparse = make(map[int64]struct{})
	}
	s.sparse[id] = struct{}{}
}

// reliableState is one context's half of the protocol; nil when the
// runtime has no lossy fault plan, which keeps the fault-free hot path
// at a single pointer check.
type reliableState struct {
	seq       []int64 // next MsgID per destination
	pending   map[pendKey]*relPending
	seen      []seenSet // per-sender dedup
	base, cap time.Duration
}

func newReliableState(n int, base, cap time.Duration) *reliableState {
	if base <= 0 {
		base = defaultRetryBase
	}
	if cap < base {
		cap = defaultRetryCap
	}
	return &reliableState{
		seq:     make([]int64, n),
		pending: make(map[pendKey]*relPending),
		seen:    make([]seenSet, n),
		base:    base,
		cap:     cap,
	}
}

// track stamps a fresh MsgID on a counted send and records the credit.
// Called from Context.send for epoch-tagged messages.
func (rl *reliableState) track(m *comm.Message, epoch int64) {
	rl.seq[m.To]++
	m.MsgID = rl.seq[m.To]
	rl.pending[pendKey{dest: m.To, id: m.MsgID}] = &relPending{
		m: *m, epoch: epoch, attempts: 1, deadline: clock.Now().Add(rl.base),
	}
}

// accept runs the receiver side for a counted message carrying a MsgID:
// it acknowledges the copy and reports whether this is the first
// delivery (false = duplicate, already processed — drop it).
func (rc *Context) accept(m comm.Message) bool {
	rl := rc.rel
	s := &rl.seen[m.From]
	dup := s.seen(m.MsgID)
	if !dup {
		s.add(m.MsgID)
	}
	// Every copy is (re-)acknowledged: the first ack may have been
	// delayed or the sender may have retransmitted in the meantime.
	rc.rt.nw.Send(comm.Message{
		From: int(rc.rank), To: m.From, Kind: kindAck, Data: m.MsgID,
	})
	if dup {
		rc.rt.dupDrops.Add(1)
		if rc.tr != nil {
			rc.Emit(obs.Event{Type: obs.EvDupDrop, Peer: m.From, Object: -1})
		}
		if rc.ins != nil {
			rc.ins.dupDrops.Inc()
		}
	}
	return !dup
}

// onAck retires the credit of an acknowledged send. Late acks for
// already-retired credits (re-acks triggered by retransmitted copies)
// are ignored.
func (rc *Context) onAck(m comm.Message) {
	key := pendKey{dest: m.From, id: m.Data.(int64)}
	p, ok := rc.rel.pending[key]
	if !ok {
		return
	}
	delete(rc.rel.pending, key)
	rc.detector(p.epoch).OnAck()
}

// recvEpoch blocks for the next message inside an epoch. With
// unacknowledged sends outstanding it waits with a deadline and
// retransmits whatever falls due, so a dropped message can never wedge
// the epoch: every rank blocked here still pumps its own retries.
func (rc *Context) recvEpoch() (comm.Message, bool) {
	rl := rc.rel
	for {
		if rl == nil || len(rl.pending) == 0 {
			return rc.rt.nw.RecvWait(int(rc.rank))
		}
		wait := clock.Until(rc.nextRetryDeadline())
		if wait > 0 {
			m, ok, timedOut := rc.rt.nw.RecvWaitTimeout(int(rc.rank), wait)
			if !timedOut {
				return m, ok
			}
		}
		rc.retryDue()
	}
}

// nextRetryDeadline returns the earliest pending retransmission
// deadline; only called with pending non-empty.
func (rc *Context) nextRetryDeadline() time.Time {
	var min time.Time
	for _, p := range rc.rel.pending {
		if min.IsZero() || p.deadline.Before(min) {
			min = p.deadline
		}
	}
	return min
}

// retryDue retransmits every pending send whose deadline has passed,
// doubling its timeout up to the cap. Retransmissions bypass
// Context.send: the credit is already counted and the message keeps its
// MsgID, but the transport assigns a fresh sequence number, so the
// fault plan rolls fresh dice — a retransmission chain eventually gets
// a copy through.
func (rc *Context) retryDue() {
	if rc.rt.nw.Closed() {
		panic("amt: network closed inside epoch")
	}
	now := clock.Now()
	// Retransmit in (dest, id) order: retry timing is wall-clock-driven
	// and so inherently nondeterministic, but the relative order of the
	// retransmissions themselves must not also depend on map iteration.
	due := make([]pendKey, 0, len(rc.rel.pending))
	for k, p := range rc.rel.pending {
		if p.deadline.After(now) {
			continue
		}
		due = append(due, k)
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].dest != due[j].dest {
			return due[i].dest < due[j].dest
		}
		return due[i].id < due[j].id
	})
	for _, k := range due {
		p := rc.rel.pending[k]
		p.attempts++
		backoff := rc.rel.base << uint(p.attempts-1)
		if backoff > rc.rel.cap {
			backoff = rc.rel.cap
		}
		p.deadline = now.Add(backoff)
		rc.rt.retries.Add(1)
		if rc.tr != nil {
			rc.Emit(obs.Event{Type: obs.EvRetry, Peer: p.m.To, Object: -1,
				Epoch: p.epoch, Value: float64(p.attempts)})
		}
		if rc.ins != nil {
			rc.ins.retries.Inc()
		}
		rc.rt.nw.Send(p.m)
	}
}

// assertAcked panics if an epoch ends with unacknowledged sends — the
// termination invariant (all counters zero) makes that impossible, so
// tripping it means the accounting itself is broken.
func (rc *Context) assertAcked(epoch int64) {
	if rc.rel == nil || len(rc.rel.pending) == 0 {
		return
	}
	panic(fmt.Sprintf("amt: rank %d finished epoch %d with %d unacked sends",
		rc.rank, epoch, len(rc.rel.pending)))
}
