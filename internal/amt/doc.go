// Package amt is the asynchronous many-task runtime substrate — the
// stand-in for the paper's DARMA/vt tasking library (§III). It provides
// logical ranks driven by one goroutine each, active messages with
// registered handlers, epochs terminated by distributed termination
// detection (Safra's algorithm over the same transport), rank
// collectives (barrier, all-reduce, all-gather), migratable objects with
// a forwarding location manager, and per-phase task instrumentation
// feeding the load balancers.
//
// The programming model is SPMD-with-tasks: Runtime.Run starts one
// goroutine per rank executing the supplied main function; inside it,
// ranks exchange active messages and call collectives in matching order.
//
// # Collectives
//
// Every collective rides one engine (collective.go): a reduction up a
// k-ary rank tree (WithFanout, default 4) followed by a broadcast back
// down. Per collective a rank sends at most fanout+1 messages — and
// receives as many — instead of the 2(P−1) a star topology funnels
// through rank 0, and the critical path is one sweep of depth
// ceil(log_k P), which is what lets the distributed balancer run at the
// paper's 4096-rank scale. The combine order is fixed by the topology
// (own value, then children by ascending rank), never by message
// arrival order, so floating-point reductions are bit-identical across
// runs even under delays, stragglers and faults.
//
// When Runtime.SetFaults installs a lossy transport plan, epoch sends
// switch to reliable delivery (reliable.go): sequence-numbered sends,
// receiver-side deduplication, acks, and retransmission with backoff —
// and Safra's counter is settled by acks rather than deliveries, so
// termination still certifies exactly-once delivery under drops,
// duplicates and reordering. With no faults installed none of this
// machinery exists on the fast path.
//
// # Concurrency
//
// Each rank's handlers run only on that rank's goroutine, so handler
// state needs no locking — the same single-scheduler-per-rank discipline
// vt uses. Cross-rank interaction happens exclusively through the comm
// transport's goroutine-safe inboxes; a Context and everything reached
// from it (objects, phase instrumentation, collection slices) belong to
// the owning rank's goroutine and must not be touched from another.
// Register handlers and attach observability options before Runtime.Run;
// the registries are read-only while ranks execute.
package amt
