// Package amt is the asynchronous many-task runtime substrate — the
// stand-in for the paper's DARMA/vt tasking library (§III). It provides
// logical ranks driven by one goroutine each, active messages with
// registered handlers, epochs terminated by distributed termination
// detection (Safra's algorithm over the same transport), rank
// collectives (barrier, all-reduce), migratable objects with a
// forwarding location manager, and per-phase task instrumentation
// feeding the load balancers.
//
// The programming model is SPMD-with-tasks: Runtime.Run starts one
// goroutine per rank executing the supplied main function; inside it,
// ranks exchange active messages and call collectives in matching order.
// Each rank's handlers run only on that rank's goroutine, so handler
// state needs no locking — the same single-scheduler-per-rank discipline
// vt uses.
package amt

import (
	"fmt"
	"sync"
	"time"

	"temperedlb/internal/comm"
	"temperedlb/internal/core"
)

// HandlerID names a registered active-message handler.
type HandlerID int32

// Handler is a rank-level active-message handler. It runs on the
// destination rank's goroutine.
type Handler func(rc *Context, from core.Rank, data any)

// ObjectHandler is an object-level active-message handler: it receives
// the target object's state. It runs on the rank currently owning the
// object.
type ObjectHandler func(rc *Context, obj ObjectID, state any, from core.Rank, data any)

// Runtime owns the transport and the handler registries shared by all
// ranks. Register all handlers before calling Run.
type Runtime struct {
	n           int
	nw          *comm.Network
	handlers    map[HandlerID]Handler
	objHandlers map[HandlerID]ObjectHandler
	running     bool
}

// New creates a runtime over n logical ranks.
func New(n int) *Runtime {
	if n < 1 {
		panic(fmt.Sprintf("amt: New: n must be >= 1, got %d", n))
	}
	return &Runtime{
		n:           n,
		nw:          comm.NewNetwork(n),
		handlers:    make(map[HandlerID]Handler),
		objHandlers: make(map[HandlerID]ObjectHandler),
	}
}

// NumRanks returns the number of logical ranks.
func (rt *Runtime) NumRanks() int { return rt.n }

// Register installs a rank-level handler. It must be called before Run.
func (rt *Runtime) Register(id HandlerID, h Handler) {
	rt.mustNotRun("Register")
	if _, dup := rt.handlers[id]; dup {
		panic(fmt.Sprintf("amt: duplicate handler %d", id))
	}
	rt.handlers[id] = h
}

// RegisterObject installs an object-level handler. It must be called
// before Run.
func (rt *Runtime) RegisterObject(id HandlerID, h ObjectHandler) {
	rt.mustNotRun("RegisterObject")
	if _, dup := rt.objHandlers[id]; dup {
		panic(fmt.Sprintf("amt: duplicate object handler %d", id))
	}
	rt.objHandlers[id] = h
}

func (rt *Runtime) mustNotRun(op string) {
	if rt.running {
		panic("amt: " + op + " after Run")
	}
}

// Run executes main once per rank, each on its own goroutine, and
// returns when every rank's main has returned. A panic on any rank is
// re-raised on the caller after all other ranks are released.
func (rt *Runtime) Run(main func(rc *Context)) {
	rt.running = true
	var wg sync.WaitGroup
	panics := make([]any, rt.n)
	for r := 0; r < rt.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
					rt.nw.Close() // release ranks blocked in RecvWait
				}
			}()
			main(newContext(rt, core.Rank(rank)))
		}(r)
	}
	wg.Wait()
	rt.nw.Close()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("amt: rank %d panicked: %v", r, p))
		}
	}
}

// TotalMessages returns the number of transport messages sent so far
// (including control traffic).
func (rt *Runtime) TotalMessages() int64 { return rt.nw.TotalSent() }

// SetJitter delays every message delivery by a random duration up to
// max, deliberately breaking delivery ordering — a chaos-testing aid
// proving the epoch/termination/location protocols tolerate arbitrary
// interleavings. Call before Run.
func (rt *Runtime) SetJitter(max time.Duration) {
	rt.mustNotRun("SetJitter")
	rt.nw.SetJitter(max)
}
