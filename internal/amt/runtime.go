package amt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"temperedlb/internal/comm"
	"temperedlb/internal/core"
	"temperedlb/internal/obs"
)

// HandlerID names a registered active-message handler.
type HandlerID int32

// Handler is a rank-level active-message handler. It runs on the
// destination rank's goroutine.
type Handler func(rc *Context, from core.Rank, data any)

// ObjectHandler is an object-level active-message handler: it receives
// the target object's state. It runs on the rank currently owning the
// object.
type ObjectHandler func(rc *Context, obj ObjectID, state any, from core.Rank, data any)

// Runtime owns the transport and the handler registries shared by all
// ranks. Register all handlers before calling Run.
type Runtime struct {
	n            int
	nw           comm.Transport
	handlers     map[HandlerID]Handler
	objHandlers  map[HandlerID]ObjectHandler
	handlerNames map[HandlerID]string
	running      bool

	// fanout is the arity k of the collective tree: rank r's parent is
	// (r−1)/k and its children are k·r+1 … k·r+k. See collective.go.
	fanout int

	// Fault recovery (see SetFaults and reliable.go): reliable switches
	// the contexts to ack/retry delivery; the atomics aggregate the
	// per-rank recovery activity for FaultStats.
	reliable            bool
	retryBase, retryCap time.Duration
	retries             atomic.Int64
	dupDrops            atomic.Int64

	tracer  obs.Tracer
	metrics *obs.Metrics
	ins     *instruments
	stream  *obs.Stream
}

// instruments caches the resolved metric handles so the instrumented
// paths never touch the registry's lock; a nil *instruments disables
// metric recording entirely (one pointer check on the hot path).
type instruments struct {
	handlerCalls   *obs.Counter
	handlerSeconds *obs.Histogram
	epochs         *obs.Counter
	epochSeconds   *obs.Histogram
	tokenRounds    *obs.Counter
	migrations     *obs.Counter
	migrationBytes *obs.Counter
	collectives    *obs.Counter
	collMsgs       *obs.Counter
	retries        *obs.Counter
	dupDrops       *obs.Counter
}

// Option configures a Runtime at construction.
type Option func(*Runtime)

// WithTracer attaches a protocol tracer; every epoch, handler dispatch,
// collective, migration, termination-token round and phase boundary is
// emitted to it. A nil tracer (the default) costs the instrumented
// paths a single pointer comparison.
func WithTracer(t obs.Tracer) Option {
	return func(rt *Runtime) { rt.SetTracer(t) }
}

// WithMetrics enables the runtime's metrics registry (see
// EnableMetrics).
func WithMetrics() Option {
	return func(rt *Runtime) { rt.EnableMetrics() }
}

// WithFanout sets the arity of the collective tree (see SetFanout).
func WithFanout(k int) Option {
	return func(rt *Runtime) { rt.SetFanout(k) }
}

// WithStream attaches a live observability stream (see SetStream).
func WithStream(s *obs.Stream) Option {
	return func(rt *Runtime) { rt.SetStream(s) }
}

// WithTransport substitutes the message transport (see SetTransport).
func WithTransport(t comm.Transport) Option {
	return func(rt *Runtime) { rt.SetTransport(t) }
}

// DefaultFanout is the arity of the collective tree when none is
// configured: 4-ary keeps per-rank collective traffic at 2·4+2 messages
// while reaching 4096 ranks in 6 levels.
const DefaultFanout = 4

// New creates a runtime over n logical ranks.
func New(n int, opts ...Option) *Runtime {
	if n < 1 {
		panic(fmt.Sprintf("amt: New: n must be >= 1, got %d", n))
	}
	rt := &Runtime{
		n:            n,
		nw:           comm.NewNetwork(n),
		handlers:     make(map[HandlerID]Handler),
		objHandlers:  make(map[HandlerID]ObjectHandler),
		handlerNames: make(map[HandlerID]string),
		fanout:       DefaultFanout,
	}
	for _, opt := range opts {
		opt(rt)
	}
	return rt
}

// SetTracer attaches a protocol tracer. Call before Run.
func (rt *Runtime) SetTracer(t obs.Tracer) {
	rt.mustNotRun("SetTracer")
	rt.tracer = t
}

// SetTransport replaces the default in-memory transport, letting this
// runtime host only the transport's local rank range while remote
// ranks live in other processes (see internal/comm/wire and
// cmd/lbnode). The transport's total rank count must match the
// runtime's. Call before Run; byte accounting already requested by
// metrics or streaming is re-applied to the new transport.
func (rt *Runtime) SetTransport(t comm.Transport) {
	rt.mustNotRun("SetTransport")
	if t.NumRanks() != rt.n {
		panic(fmt.Sprintf("amt: SetTransport: transport spans %d ranks, runtime %d", t.NumRanks(), rt.n))
	}
	if rt.nw.ByteAccounting() {
		t.EnableByteAccounting()
	}
	rt.nw = t
}

// Transport returns the runtime's message transport.
func (rt *Runtime) Transport() comm.Transport { return rt.nw }

// SetFanout sets the arity k ≥ 2 of the k-ary collective tree. Larger k
// flattens the tree (fewer hops on the critical path) at the cost of
// more messages per interior rank; per-rank collective work is
// O(k·log_k P) either way. Call before Run.
func (rt *Runtime) SetFanout(k int) {
	rt.mustNotRun("SetFanout")
	if k < 2 {
		panic(fmt.Sprintf("amt: SetFanout: fanout must be >= 2, got %d", k))
	}
	rt.fanout = k
}

// Fanout returns the collective tree's arity.
func (rt *Runtime) Fanout() int { return rt.fanout }

// EnableMetrics switches on the runtime's metrics registry and the
// transport's payload byte accounting, and returns the registry. It is
// idempotent; call before Run.
func (rt *Runtime) EnableMetrics() *obs.Metrics {
	rt.mustNotRun("EnableMetrics")
	if rt.metrics != nil {
		return rt.metrics
	}
	m := obs.NewMetrics()
	lat := obs.DefaultLatencyBounds()
	rt.ins = &instruments{
		handlerCalls:   m.Counter("amt_handler_invocations_total"),
		handlerSeconds: m.Histogram("amt_handler_seconds", lat),
		epochs:         m.Counter("amt_epochs_total"),
		epochSeconds:   m.Histogram("amt_epoch_seconds", lat),
		tokenRounds:    m.Counter("termination_token_rounds_total"),
		migrations:     m.Counter("amt_migrations_total"),
		migrationBytes: m.Counter("amt_migration_bytes_total"),
		collectives:    m.Counter("amt_collectives_total"),
		collMsgs:       m.Counter("amt_collective_messages_total"),
		retries:        m.Counter("amt_retries_total"),
		dupDrops:       m.Counter("amt_duplicates_dropped_total"),
	}
	for fam, help := range map[string]string{
		"amt_handler_invocations_total":  "Active-message handler invocations.",
		"amt_handler_seconds":            "Handler execution time in seconds.",
		"amt_epochs_total":               "Epochs run under termination detection.",
		"amt_epoch_seconds":              "Epoch wall-clock duration in seconds.",
		"termination_token_rounds_total": "Safra termination-token rounds.",
		"amt_migrations_total":           "Objects migrated between ranks.",
		"amt_migration_bytes_total":      "Payload bytes carried by migrations.",
		"amt_collectives_total":          "Tree-collective rounds completed.",
		"amt_collective_messages_total":  "Messages sent by tree collectives.",
		"amt_retries_total":              "Retransmissions of unacknowledged epoch sends.",
		"amt_duplicates_dropped_total":   "Receiver-side discards of redundant deliveries.",
		"comm_messages_total":            "Transport messages sent, by kind.",
		"comm_bytes_total":               "Transport payload bytes sent, by kind.",
		"comm_dropped_total":             "Messages dropped by fault injection, by kind.",
		"comm_duplicated_total":          "Messages duplicated by fault injection, by kind.",
		"comm_messages_all_total":        "Transport messages sent, all kinds.",
		"comm_bytes_all_total":           "Transport payload bytes sent, all kinds.",
		"wire_frames_out_total":          "Encoded frames written to peer processes.",
		"wire_bytes_out_total":           "Frame bytes written to peer processes.",
		"wire_frames_in_total":           "Frames decoded from peer processes.",
		"wire_bytes_in_total":            "Frame bytes read from peer processes.",
		"wire_peers":                     "Connected peer processes.",
		"wire_redials_total":             "Connection attempts beyond the first, per peer.",
		"wire_queue_highwater":           "Deepest per-peer writer queue seen, in messages.",
	} {
		m.SetHelp(fam, help)
	}
	rt.metrics = m
	rt.nw.EnableByteAccounting()
	return m
}

// kindNames maps transport kinds to the labels of the comm_* metric
// families; keep in sync with the kind constants in context.go.
var kindNames = [...]string{
	"user", "object", "migrate", "locupdate", "token", "done",
	"coll_up", "coll_down", "ack",
}

// Metrics returns the runtime's registry with the transport-level
// per-kind message and byte totals folded in as of the call, or nil when
// metrics were not enabled. Safe to call during and after Run.
func (rt *Runtime) Metrics() *obs.Metrics {
	if rt.metrics == nil {
		return nil
	}
	var msgs, bytes int64
	for k, name := range kindNames {
		sent := rt.nw.SentByKind(comm.Kind(k))
		b := rt.nw.BytesByKind(comm.Kind(k))
		msgs += sent
		bytes += b
		if sent > 0 {
			rt.metrics.Counter(obs.LabeledName("comm_messages_total", "kind", name)).Store(sent)
		}
		if b > 0 {
			rt.metrics.Counter(obs.LabeledName("comm_bytes_total", "kind", name)).Store(b)
		}
		if d := rt.nw.DroppedByKind(comm.Kind(k)); d > 0 {
			rt.metrics.Counter(obs.LabeledName("comm_dropped_total", "kind", name)).Store(d)
		}
		if d := rt.nw.DuplicatedByKind(comm.Kind(k)); d > 0 {
			rt.metrics.Counter(obs.LabeledName("comm_duplicated_total", "kind", name)).Store(d)
		}
	}
	rt.metrics.Counter("comm_messages_all_total").Store(msgs)
	rt.metrics.Counter("comm_bytes_all_total").Store(bytes)
	if ws, ok := rt.nw.(comm.WireStater); ok {
		st := ws.WireStats()
		rt.metrics.Counter("wire_frames_out_total").Store(st.FramesOut)
		rt.metrics.Counter("wire_bytes_out_total").Store(st.BytesOut)
		rt.metrics.Counter("wire_frames_in_total").Store(st.FramesIn)
		rt.metrics.Counter("wire_bytes_in_total").Store(st.BytesIn)
		rt.metrics.Counter("wire_peers").Store(st.Peers)
		rt.metrics.Counter("wire_redials_total").Store(st.Redials)
		rt.metrics.Counter("wire_queue_highwater").Store(st.QueueHighWater)
	}
	return rt.metrics
}

// SetStream attaches a live observability stream: protocol loops built
// on the runtime (the distributed balancer) publish periodic Snapshot
// frames to it, and transport byte accounting is switched on so the
// frames can carry byte totals. A nil stream — the default — costs the
// publishing sites a single pointer comparison. Call before Run.
func (rt *Runtime) SetStream(s *obs.Stream) {
	rt.mustNotRun("SetStream")
	rt.stream = s
	if s != nil {
		rt.nw.EnableByteAccounting()
	}
}

// Stream returns the attached observability stream (nil when streaming
// is disabled).
func (rt *Runtime) Stream() *obs.Stream { return rt.stream }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (rt *Runtime) Tracer() obs.Tracer { return rt.tracer }

// NameHandler gives a registered handler a human-readable name used in
// trace events and exports; unnamed handlers appear as "h<id>".
func (rt *Runtime) NameHandler(id HandlerID, name string) {
	rt.mustNotRun("NameHandler")
	rt.handlerNames[id] = name
}

// handlerName resolves the display name of a handler id.
func (rt *Runtime) handlerName(id HandlerID) string {
	if n, ok := rt.handlerNames[id]; ok {
		return n
	}
	return fmt.Sprintf("h%d", id)
}

// NumRanks returns the number of logical ranks.
func (rt *Runtime) NumRanks() int { return rt.n }

// Register installs a rank-level handler. It must be called before Run.
func (rt *Runtime) Register(id HandlerID, h Handler) {
	rt.mustNotRun("Register")
	if _, dup := rt.handlers[id]; dup {
		panic(fmt.Sprintf("amt: duplicate handler %d", id))
	}
	rt.handlers[id] = h
}

// RegisterObject installs an object-level handler. It must be called
// before Run.
func (rt *Runtime) RegisterObject(id HandlerID, h ObjectHandler) {
	rt.mustNotRun("RegisterObject")
	if _, dup := rt.objHandlers[id]; dup {
		panic(fmt.Sprintf("amt: duplicate object handler %d", id))
	}
	rt.objHandlers[id] = h
}

func (rt *Runtime) mustNotRun(op string) {
	if rt.running {
		panic("amt: " + op + " after Run")
	}
}

// Run executes main once per local rank, each on its own goroutine,
// and returns when every local rank's main has returned. On the
// default in-memory transport every rank is local; on a wire transport
// this process drives only its LocalRange while sibling processes run
// the rest. A panic on any rank is re-raised on the caller after all
// other ranks are released.
func (rt *Runtime) Run(main func(rc *Context)) {
	rt.running = true
	lo, hi := rt.nw.LocalRange()
	var wg sync.WaitGroup
	panics := make([]any, rt.n)
	for r := lo; r < hi; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
					rt.nw.Close() // release ranks blocked in RecvWait
				}
			}()
			main(newContext(rt, core.Rank(rank)))
		}(r)
	}
	wg.Wait()
	rt.nw.Close()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("amt: rank %d panicked: %v", r, p))
		}
	}
}

// TotalMessages returns the number of transport messages sent so far
// (including control traffic).
func (rt *Runtime) TotalMessages() int64 { return rt.nw.TotalSent() }

// SetJitter delays every message delivery by a random duration up to
// max, deliberately breaking delivery ordering — a chaos-testing aid
// proving the epoch/termination/location protocols tolerate arbitrary
// interleavings. Call before Run.
func (rt *Runtime) SetJitter(max time.Duration) {
	rt.mustNotRun("SetJitter")
	rt.nw.SetJitter(max)
}

// SetFaults installs a fault-injection spec on the transport and, when
// the spec can lose or duplicate messages, switches the runtime to
// reliable (ack/retry, deduplicated) delivery of epoch messages so
// termination detection still observes quiescence (see reliable.go).
//
// Drop and duplication apply only to the counted epoch kinds (user,
// object, migrate, locupdate): the runtime's own control traffic —
// termination tokens, done announcements, acks, collectives — rides a
// reliable channel by construction, exactly as a production transport
// would layer its protocol state over TCP while application payloads
// take a lossy fast path. Delay windows and stragglers apply to every
// kind. Call before Run; an empty spec leaves the transport (and the
// fault-free fast path) untouched.
func (rt *Runtime) SetFaults(sp comm.FaultSpec) error {
	rt.mustNotRun("SetFaults")
	if err := sp.Validate(rt.n); err != nil {
		return err
	}
	if sp.Empty() {
		rt.nw.SetFaultPlan(nil)
		rt.reliable = false
		return nil
	}
	rt.nw.SetFaultPlan(sp.Plan(kindUser, kindObject, kindMigrate, kindLocUpdate))
	rt.reliable = sp.Drop > 0 || sp.Dup > 0
	rt.retryBase = sp.RetryBase
	if rt.retryBase == 0 {
		// The default must exceed the worst-case ack round trip under the
		// spec's own delay bounds, or every delayed delivery triggers a
		// spurious retransmission (harmless — the dedup filter absorbs it —
		// but it floods the transport and drowns the retry statistics).
		var slow time.Duration
		for _, d := range sp.SlowRanks {
			if d > slow {
				slow = d
			}
		}
		// Both legs of the round trip are delayed (the data message and its
		// ack), each by up to DelayMax plus two straggler penalties, and
		// queueing on a busy receiver adds more: give the first deadline
		// 2x the worst-case transport round trip before retransmitting.
		rt.retryBase = 4 * (sp.DelayMax + 2*slow)
		if rt.retryBase < defaultRetryBase {
			rt.retryBase = defaultRetryBase
		}
		// A socket transport adds real network latency on top of the
		// injected delays; pace the retransmission clock to its measured
		// round trip so cross-machine runs do not retransmit spuriously.
		if rh, ok := rt.nw.(comm.RTTHinter); ok {
			if floor := 4 * rh.RTTHint(); rt.retryBase < floor {
				rt.retryBase = floor
			}
		}
	}
	rt.retryCap = sp.RetryCap
	return nil
}

// FaultStats reports the damage a fault plan did and what recovery it
// took. Safe to call during and after Run.
type FaultStats struct {
	// Dropped and Duplicated count transport-level injections.
	Dropped, Duplicated int64
	// Retries counts retransmissions of unacknowledged epoch sends;
	// DupDrops counts receiver-side discards of redundant deliveries
	// (transport duplicates and redundant retransmissions).
	Retries, DupDrops int64
}

// FaultStats returns the accumulated fault-injection and recovery
// counters.
func (rt *Runtime) FaultStats() FaultStats {
	return FaultStats{
		Dropped:    rt.nw.TotalDropped(),
		Duplicated: rt.nw.TotalDuplicated(),
		Retries:    rt.retries.Load(),
		DupDrops:   rt.dupDrops.Load(),
	}
}
