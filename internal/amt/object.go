package amt

import (
	"fmt"
	"slices"

	"temperedlb/internal/comm"
	"temperedlb/internal/core"
	"temperedlb/internal/obs"
)

// ObjectID identifies a migratable object. The home rank (its creator)
// is encoded in the high bits and acts as the object's location
// directory: other ranks fall back to asking the home when they have no
// fresher knowledge, and the home is notified whenever the object lands
// somewhere new.
type ObjectID int64

// MakeObjectID composes an id from a home rank and a per-rank sequence
// number; exposed for tests and tooling.
func MakeObjectID(home core.Rank, seq int64) ObjectID {
	return ObjectID(int64(home)<<40 | seq)
}

// Home returns the object's home (creating) rank.
func (id ObjectID) Home() core.Rank { return core.Rank(id >> 40) }

func (id ObjectID) seq() int64 { return int64(id) & (1<<40 - 1) }

// String renders the id as home.sequence.
func (id ObjectID) String() string {
	return fmt.Sprintf("obj(%d.%d)", id.Home(), id.seq())
}

// CreateObject registers a new migratable object on this rank and
// returns its id. The state is owned by the runtime from here on and is
// handed to object handlers on whichever rank currently hosts it.
func (rc *Context) CreateObject(state any) ObjectID {
	rc.objSeq++
	id := MakeObjectID(rc.rank, rc.objSeq)
	rc.objects[id] = state
	rc.location[id] = rc.rank
	return id
}

// HasObject reports whether the object currently resides on this rank.
func (rc *Context) HasObject(id ObjectID) bool {
	_, ok := rc.objects[id]
	return ok
}

// ObjectState returns the local state of an object hosted here.
func (rc *Context) ObjectState(id ObjectID) (any, bool) {
	s, ok := rc.objects[id]
	return s, ok
}

// LocalObjects returns the ids of all objects currently hosted on this
// rank, in ascending order so callers iterate deterministically.
func (rc *Context) LocalObjects() []ObjectID {
	out := make([]ObjectID, 0, len(rc.objects))
	for id := range rc.objects {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// bestKnown returns where this rank believes the object lives.
func (rc *Context) bestKnown(id ObjectID) core.Rank {
	if loc, ok := rc.location[id]; ok {
		return loc
	}
	return id.Home()
}

// SendObject delivers an active message to the object, wherever it
// currently lives. Messages race with migration: any rank that no
// longer (or does not yet) host the object forwards toward its best
// knowledge, and the home rank always converges on the true location,
// so delivery happens exactly once.
func (rc *Context) SendObject(id ObjectID, h HandlerID, data any) {
	if _, ok := rc.rt.objHandlers[h]; !ok {
		panic(fmt.Sprintf("amt: SendObject to unregistered object handler %d", h))
	}
	rc.Stats.ObjectSent++
	env := objEnvelope{EpochID: rc.activeEpoch(), Obj: id, Origin: rc.rank, Data: data}
	rc.routeObject(comm.Message{
		From: int(rc.rank), To: int(rc.bestKnown(id)), Kind: kindObject,
		Handler: int32(h), Data: env,
	})
}

// routeObject sends or, when the destination is this rank and the
// object is local, dispatches in place.
func (rc *Context) routeObject(m comm.Message) {
	if m.To == int(rc.rank) {
		env := m.Data.(objEnvelope)
		if state, ok := rc.objects[env.Obj]; ok {
			rc.runObjectHandler(HandlerID(m.Handler), env, state)
			return
		}
		// We believe it is here but it is not (already migrated away):
		// fall through to a real send toward fresher knowledge.
		m.To = int(rc.bestKnown(env.Obj))
		if m.To == int(rc.rank) {
			panic(fmt.Sprintf("amt: object %v lost: local directory points here but object absent", env.Obj))
		}
	}
	rc.send(m)
}

// dispatchObject handles an incoming object message: run the handler if
// the object is here, otherwise forward it toward the current best
// knowledge.
func (rc *Context) dispatchObject(m comm.Message) {
	env := m.Data.(objEnvelope)
	rc.countReceive(env.EpochID, m.MsgID)
	if state, ok := rc.objects[env.Obj]; ok {
		rc.runObjectHandler(HandlerID(m.Handler), env, state)
		return
	}
	next := rc.bestKnown(env.Obj)
	if next == rc.rank {
		// We are the home but have no fresher knowledge yet; the
		// migration notice must be in flight. Requeue to ourselves: the
		// epoch cannot terminate before the notice arrives, so this
		// retry converges.
		next = rc.rank
	}
	rc.Stats.Forwards++
	// Re-stamp the epoch tag under our own detector.
	env.EpochID = rc.activeEpoch()
	rc.send(comm.Message{
		From: int(rc.rank), To: int(next), Kind: kindObject,
		Handler: m.Handler, Data: env,
	})
}

// Migrate moves a local object to dest, carrying its state. The home
// rank is notified so the location directory converges. Migration of a
// non-local object panics: the caller must own what it moves.
func (rc *Context) Migrate(id ObjectID, dest core.Rank) {
	state, ok := rc.objects[id]
	if !ok {
		panic(fmt.Sprintf("amt: Migrate of non-local object %v", id))
	}
	if dest == rc.rank {
		return
	}
	delete(rc.objects, id)
	rc.location[id] = dest
	bytes := comm.MeasureBytes(state)
	rc.Stats.Migrations++
	rc.Stats.MigrationBytes += bytes
	if rc.tr != nil {
		rc.Emit(obs.Event{Type: obs.EvMigration, Peer: int(dest),
			Object: int64(id), Bytes: bytes})
	}
	if rc.ins != nil {
		rc.ins.migrations.Inc()
		rc.ins.migrationBytes.Add(int64(bytes))
	}
	rc.send(comm.Message{
		From: int(rc.rank), To: int(dest), Kind: kindMigrate,
		Data: migrateEnvelope{EpochID: rc.activeEpoch(), Obj: id, State: state, Bytes: bytes},
	})
}

// runObjectHandler invokes an object handler, under the timing
// instrumentation when observability is on.
func (rc *Context) runObjectHandler(h HandlerID, env objEnvelope, state any) {
	if rc.tr == nil && rc.ins == nil {
		rc.rt.objHandlers[h](rc, env.Obj, state, env.Origin, env.Data)
		return
	}
	rc.timedHandler(h, int(env.Origin), env.Obj, func() {
		rc.rt.objHandlers[h](rc, env.Obj, state, env.Origin, env.Data)
	})
}

// installMigration receives a migrating object.
func (rc *Context) installMigration(m comm.Message) {
	env := m.Data.(migrateEnvelope)
	rc.countReceive(env.EpochID, m.MsgID)
	rc.objects[env.Obj] = env.State
	rc.location[env.Obj] = rc.rank
	if home := env.Obj.Home(); home != rc.rank {
		rc.send(comm.Message{
			From: int(rc.rank), To: int(home), Kind: kindLocUpdate,
			Data: locEnvelope{EpochID: rc.activeEpoch(), Obj: env.Obj, Loc: rc.rank},
		})
	}
}
