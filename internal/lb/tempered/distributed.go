package tempered

import (
	"math"
	"slices"

	"temperedlb/internal/amt"
	"temperedlb/internal/clock"
	"temperedlb/internal/core"
	"temperedlb/internal/obs"
)

// Handlers bundles the active-message handlers the distributed balancer
// needs. Register them on the runtime before Run, then hand the value to
// RunDistributed on every rank.
type Handlers struct {
	gossip amt.HandlerID
	xfer   amt.HandlerID
	fetch  amt.HandlerID
	st     []*rankState
}

// rankState is the per-rank balancer state touched by handlers; every
// handler runs on the owning rank's goroutine, so no locking is needed.
type rankState struct {
	inform  *core.InformState
	virtual map[amt.ObjectID]float64

	// trial and iter locate the current refinement step for trace
	// stamps; gossipSent/gossipEntries count this rank's outgoing gossip
	// traffic within the current iteration (Begin seeds plus handler
	// forwards), feeding the per-iteration stats reduce.
	trial, iter   int
	gossipSent    int
	gossipEntries int

	// Reused per-iteration buffers: the flattened working set and its
	// reverse id mapping, the load-summation key scratch, plus the
	// transfer stage's scratch. They keep the steady-state refinement
	// loop free of per-iteration map and slice churn.
	tasksBuf []core.Task
	idsBuf   []amt.ObjectID
	sumBuf   []amt.ObjectID
	xfer     core.TransferScratch
}

// sumLoad totals a working set in ascending object-id order. Go's map
// iteration order is randomized per run, and floating-point addition is
// not associative, so a naive range would make non-dyadic load totals
// differ between otherwise identical runs — the fixed order keeps the
// whole protocol bit-deterministic, matching the topology-fixed combine
// order of the tree collectives.
func (st *rankState) sumLoad(w map[amt.ObjectID]float64) float64 {
	st.sumBuf = st.sumBuf[:0]
	for obj := range w {
		st.sumBuf = append(st.sumBuf, obj)
	}
	slices.Sort(st.sumBuf)
	s := 0.0
	for _, obj := range st.sumBuf {
		s += w[obj]
	}
	return s
}

// xferMsg proposes one task relocation: the sender cedes the (virtual)
// task to the receiver for the current refinement iteration.
type xferMsg struct {
	Obj  amt.ObjectID
	Load float64
}

// RegisterHandlers installs the balancer's handlers on the runtime. The
// base handler id space must not collide with the application's; pass a
// free base id.
func RegisterHandlers(rt *amt.Runtime, base amt.HandlerID) *Handlers {
	h := &Handlers{
		gossip: base,
		xfer:   base + 1,
		fetch:  base + 2,
		st:     make([]*rankState, rt.NumRanks()),
	}
	for r := range h.st {
		h.st[r] = &rankState{}
	}
	rt.NameHandler(h.gossip, "lb.gossip")
	rt.NameHandler(h.xfer, "lb.transfer")
	rt.NameHandler(h.fetch, "lb.fetch")
	rt.Register(h.gossip, func(rc *amt.Context, from core.Rank, data any) {
		st := h.st[rc.Rank()]
		if st.inform == nil {
			panic("tempered: gossip before iteration setup")
		}
		m := data.(core.InformMsg)
		tracing := rc.Tracer() != nil
		if tracing {
			rc.Emit(obs.Event{Type: obs.EvInformRecv, Peer: int(from), Object: -1,
				Trial: st.trial, Iteration: st.iter, Value: float64(len(m.Entries))})
		}
		sends, _ := st.inform.Receive(m)
		for _, s := range sends {
			st.gossipSent++
			st.gossipEntries += len(s.Msg.Entries)
			if tracing {
				rc.Emit(obs.Event{Type: obs.EvInformSend, Peer: int(s.To), Object: -1,
					Trial: st.trial, Iteration: st.iter, Value: float64(len(s.Msg.Entries))})
			}
			rc.Send(s.To, h.gossip, s.Msg)
		}
	})
	rt.Register(h.xfer, func(rc *amt.Context, from core.Rank, data any) {
		m := data.(xferMsg)
		h.st[rc.Rank()].virtual[m.Obj] = m.Load
	})
	rt.RegisterObject(h.fetch, func(rc *amt.Context, obj amt.ObjectID, state any, from core.Rank, data any) {
		rc.Migrate(obj, data.(core.Rank))
	})
	return h
}

// DistResult reports a distributed LB invocation from one rank's
// perspective; the imbalance fields, History, and the message totals
// are identical on every rank (they are produced by collectives).
type DistResult struct {
	InitialImbalance float64
	FinalImbalance   float64
	BestTrial        int
	BestIteration    int
	// Migrations and MigrationBytes count the objects this rank shipped
	// out while committing the chosen distribution.
	Migrations     int
	MigrationBytes int
	// History holds per-iteration accounting aggregated over all ranks —
	// the distributed equivalents of the synchronous engine's
	// Result.History rows, reduced with one sum and one max collective
	// per iteration.
	History []core.IterationStats
	// GossipMessages and TransferMessages total the balancer's own
	// active messages (all ranks, all trials): every gossip message of
	// the inform stages and every transfer proposal of the transfer
	// stages. Their sum equals the transport's user-kind message count
	// when the balancer is the only application traffic.
	GossipMessages   int
	TransferMessages int
	// ElapsedSeconds is this rank's wall-clock time inside the
	// invocation.
	ElapsedSeconds float64
}

// StripTiming returns a copy of the result with every wall-clock field
// zeroed, leaving only protocol-determined state. Two runs of the same
// seed and configuration must compare reflect.DeepEqual after
// StripTiming regardless of scheduling, fault plan, or transport — the
// equality the chaos suite and `make wire-smoke` enforce.
func (r DistResult) StripTiming() DistResult {
	r.ElapsedSeconds = 0
	r.History = append([]core.IterationStats(nil), r.History...)
	for i := range r.History {
		r.History[i].ElapsedSeconds = 0
	}
	return r
}

// RunDistributed executes the full TemperedLB protocol on the calling
// rank: the statistics all-reduce, then Trials×Iterations of (gossip
// epoch, transfer epoch, imbalance all-reduce) over a virtual working
// set, and finally a commit epoch that migrates the real objects into
// the best distribution found (Algorithm 3's deferred transfers). All
// ranks must call it collectively with their local instrumented loads.
func RunDistributed(rc *amt.Context, h *Handlers, cfg core.Config, loads map[amt.ObjectID]float64) (DistResult, error) {
	if err := cfg.Validate(); err != nil {
		return DistResult{}, err
	}
	self := rc.Rank()
	n := rc.NumRanks()
	st := h.st[self]
	start := clock.Now()
	tr := rc.Tracer()

	// The whole gossip prologue is one fused collective round: the load
	// max and total (and the unused min) ride a single mixed-op vector
	// reduce instead of sequential scalar rounds.
	ownLoad := st.sumLoad(loads)
	maxLoad, _, total := rc.AllReduceSummary(ownLoad)
	ave := total / float64(n)
	res := DistResult{
		InitialImbalance: imbalance(maxLoad, ave),
	}
	res.FinalImbalance = res.InitialImbalance
	if tr != nil {
		rc.Emit(obs.Event{Type: obs.EvLBBegin, Peer: -1, Object: -1,
			Value: res.InitialImbalance})
	}
	// Streaming publishes one frame per protocol step from rank 0. The
	// load vectors ride an extra AllGather per frame; the stream is a
	// runtime-wide attachment, so within one process every rank takes
	// these collectives (or none does) and the collective-order contract
	// holds. In a multi-process job "runtime-wide" is only node-wide —
	// whether another node attached a stream is not a local fact — so
	// the nodes agree with one scalar reduce and stream-less ranks take
	// the AllGathers without publishing. Single-process runs skip the
	// agreement, keeping their collective sequence (and the obs-smoke
	// golden) exactly as before.
	stream := rc.Stream()
	streaming := stream != nil
	if _, wired := rc.WireTotals(); wired {
		var on float64
		if streaming {
			on = 1
		}
		streaming = rc.AllReduce(on, amt.ReduceMax) > 0
	}
	entriesTotal := 0
	if streaming {
		loadsVec := rc.AllGather(ownLoad)
		if self == 0 && stream != nil {
			publishFrame(rc, stream, &res, entriesTotal,
				obs.Snapshot{Phase: "init", Loads: loadsVec})
		}
	}
	if total == 0 {
		if tr != nil {
			rc.Emit(obs.Event{Type: obs.EvLBEnd, Peer: -1, Object: -1,
				Value: res.FinalImbalance, Dur: clock.Since(start)})
		}
		res.ElapsedSeconds = clock.Since(start).Seconds()
		return res, nil
	}

	best := copyInto(nil, loads)
	migBefore, bytesBefore := rc.Stats.Migrations, rc.Stats.MigrationBytes

	for trial := 1; trial <= cfg.Trials; trial++ {
		st.virtual = copyInto(st.virtual, loads) // Algorithm 3 line 3
		gossipRNG := core.SeededRNG(cfg.Seed, int64(trial), int64(self), 0x60551f)
		xferRNG := core.SeededRNG(cfg.Seed, int64(trial), int64(self), 0x7af)
		// One gossip state per trial, reset at each iteration: the
		// iteration's epoch has quiesced before the reset, so no in-flight
		// message can observe a recycled knowledge buffer. The RNG stream
		// is continuous across iterations, exactly as before.
		st.inform = core.NewInformState(self, n, &cfg, gossipRNG)

		for iter := 1; iter <= cfg.Iterations; iter++ {
			iterStart := clock.Now()
			st.trial, st.iter = trial, iter
			st.gossipSent, st.gossipEntries = 0, 0
			if tr != nil {
				rc.Emit(obs.Event{Type: obs.EvIterBegin, Peer: -1, Object: -1,
					Trial: trial, Iteration: iter})
			}

			// Inform stage: asynchronous gossip under termination
			// detection — no synchronized rounds (§IV-B).
			st.inform.Reset()
			rc.Epoch(func() {
				for _, s := range st.inform.Begin(ave, st.sumLoad(st.virtual)) {
					st.gossipSent++
					st.gossipEntries += len(s.Msg.Entries)
					if tr != nil {
						rc.Emit(obs.Event{Type: obs.EvInformSend, Peer: int(s.To),
							Object: -1, Trial: trial, Iteration: iter,
							Value: float64(len(s.Msg.Entries))})
					}
					rc.Send(s.To, h.gossip, s.Msg)
				}
			})

			// Transfer stage: every overloaded rank works concurrently
			// with its gossip-stale knowledge.
			var xfers int
			var ts core.TransferStats
			overloaded, knowledge := 0.0, 0.0
			rc.Epoch(func() {
				load := st.sumLoad(st.virtual)
				if load <= cfg.Threshold*ave {
					return
				}
				overloaded = 1
				// The gossip epoch has terminated, so no Entries snapshot is
				// in flight: sort the knowledge so candidate sampling does
				// not depend on message arrival order (or on the reordering
				// a fault plan injects).
				kn := st.inform.Knowledge()
				kn.Canonicalize()
				knowledge = float64(kn.Len())
				tasks, ids := st.virtualTasks()
				props, tstats, _ := core.RunTransferScratch(self, tasks, load, ave, kn, &cfg, xferRNG, nil, &st.xfer)
				ts = tstats
				for _, p := range props {
					obj := ids[p.Task]
					if tr != nil {
						rc.Emit(obs.Event{Type: obs.EvTransferPropose, Peer: int(p.To),
							Object: int64(obj), Trial: trial, Iteration: iter,
							Value: st.virtual[obj]})
					}
					xfers++
					rc.Send(p.To, h.xfer, xferMsg{Obj: obj, Load: st.virtual[obj]})
					delete(st.virtual, obj)
				}
				if tr != nil && ts.Rejected > 0 {
					rc.Emit(obs.Event{Type: obs.EvTransferReject, Peer: -1, Object: -1,
						Trial: trial, Iteration: iter, Value: float64(ts.Rejected)})
				}
				if tr != nil && ts.NoCandidate > 0 {
					rc.Emit(obs.Event{Type: obs.EvTransferNoCandidate, Peer: -1, Object: -1,
						Trial: trial, Iteration: iter, Value: float64(ts.NoCandidate)})
				}
			})

			// Evaluate the proposed distribution (Algorithm 3 line 9) and
			// aggregate the iteration's accounting: one elementwise sum
			// and one elementwise max across ranks. KnowledgeMin rides the
			// max reduce negated (ranks that were not overloaded
			// contribute -Inf, i.e. they don't constrain the minimum).
			negKnow := math.Inf(-1)
			if overloaded > 0 {
				negKnow = -knowledge
			}
			sums := rc.AllReduceVec([]float64{
				float64(st.gossipSent), float64(st.gossipEntries),
				float64(xfers), float64(ts.Rejected), float64(ts.NoCandidate),
				overloaded, overloaded * knowledge,
			}, amt.ReduceSum)
			curLoad := st.sumLoad(st.virtual)
			maxes := rc.AllReduceVec([]float64{
				curLoad, negKnow, clock.Since(iterStart).Seconds(),
			}, amt.ReduceMax)

			iterStat := core.IterationStats{
				Trial: trial, Iteration: iter,
				GossipMessages: int(sums[0]), GossipEntries: int(sums[1]),
				Transfers: int(sums[2]), Rejected: int(sums[3]), NoCandidate: int(sums[4]),
				Imbalance:      imbalance(maxes[0], ave),
				ElapsedSeconds: maxes[2],
			}
			if sums[5] > 0 {
				iterStat.KnowledgeAvg = sums[6] / sums[5]
				iterStat.KnowledgeMin = int(-maxes[1])
			}
			res.History = append(res.History, iterStat)
			res.GossipMessages += iterStat.GossipMessages
			res.TransferMessages += iterStat.Transfers
			if tr != nil {
				rc.Emit(obs.Event{Type: obs.EvIterEnd, Peer: -1, Object: -1,
					Trial: trial, Iteration: iter, Value: iterStat.Imbalance,
					Dur: clock.Since(iterStart)})
			}
			if iterStat.Imbalance < res.FinalImbalance {
				res.FinalImbalance = iterStat.Imbalance
				res.BestTrial, res.BestIteration = trial, iter
				best = copyInto(best, st.virtual)
			}
			entriesTotal += iterStat.GossipEntries
			if streaming {
				loadsVec := rc.AllGather(curLoad)
				if self == 0 && stream != nil {
					publishFrame(rc, stream, &res, entriesTotal, obs.Snapshot{
						Phase: "iter", Trial: trial, Iteration: iter,
						Loads: loadsVec, IterMs: maxes[2] * 1e3,
					})
				}
			}
		}
	}
	st.inform = nil

	// Commit (Algorithm 3 line 13): the chosen owner of each task pulls
	// it from wherever it actually lives; routing and forwarding handle
	// in-flight races, and the epoch ends only after every migration and
	// location update has landed.
	rc.Epoch(func() {
		// Fetch in sorted object order so the commit traffic is identical
		// run to run; the trials are over, so idsBuf is free to reuse.
		st.idsBuf = st.idsBuf[:0]
		for obj := range best {
			if !rc.HasObject(obj) {
				st.idsBuf = append(st.idsBuf, obj)
			}
		}
		slices.Sort(st.idsBuf)
		for _, obj := range st.idsBuf {
			rc.SendObject(obj, h.fetch, self)
		}
	})
	res.Migrations = rc.Stats.Migrations - migBefore
	res.MigrationBytes = rc.Stats.MigrationBytes - bytesBefore
	if streaming {
		loadsVec := rc.AllGather(st.sumLoad(best))
		migs := rc.AllReduce(float64(res.Migrations), amt.ReduceSum)
		if self == 0 && stream != nil {
			publishFrame(rc, stream, &res, entriesTotal, obs.Snapshot{
				Phase: "commit", Trial: res.BestTrial, Iteration: res.BestIteration,
				Loads: loadsVec, Migrations: int64(migs),
			})
		}
	}
	res.ElapsedSeconds = clock.Since(start).Seconds()
	if tr != nil {
		rc.Emit(obs.Event{Type: obs.EvLBEnd, Peer: -1, Object: -1,
			Value: res.FinalImbalance, Dur: clock.Since(start)})
	}
	return res, nil
}

// publishFrame stamps the run-wide counters onto a frame and publishes
// it. Only rank 0 calls it, after the collectives that filled f.Loads
// ran on every rank; the transport and fault totals are runtime-global,
// so the frame describes the whole run, not one rank.
func publishFrame(rc *amt.Context, stream *obs.Stream, res *DistResult, entries int, f obs.Snapshot) {
	f.Source = "distributed"
	f.Ranks = rc.NumRanks()
	f.FillLoadStats()
	f.GossipMsgs = int64(res.GossipMessages)
	f.GossipEntries = int64(entries)
	f.TransferMsgs = int64(res.TransferMessages)
	f.Msgs, f.Bytes = rc.TransportTotals()
	fs := rc.FaultTotals()
	f.Dropped, f.Duplicated = fs.Dropped, fs.Duplicated
	f.Retries, f.DupDrops = fs.Retries, fs.DupDrops
	f.Collectives = int64(rc.Stats.Collectives)
	f.Epochs = int64(rc.Stats.EpochsRun)
	if ws, ok := rc.WireTotals(); ok {
		f.WireBytesOut, f.WireBytesIn, f.WirePeers = ws.BytesOut, ws.BytesIn, ws.Peers
	}
	stream.Publish(f)
}

// virtualTasks flattens the working set into core tasks with dense local
// ids, deterministically ordered, plus the reverse mapping. Both slices
// are backed by the rank's reusable buffers and stay valid until the
// next call.
func (st *rankState) virtualTasks() ([]core.Task, []amt.ObjectID) {
	st.idsBuf = st.idsBuf[:0]
	for obj := range st.virtual {
		st.idsBuf = append(st.idsBuf, obj)
	}
	slices.Sort(st.idsBuf)
	ids := st.idsBuf
	st.tasksBuf = st.tasksBuf[:0]
	for i, obj := range ids {
		st.tasksBuf = append(st.tasksBuf, core.Task{ID: core.TaskID(i), Load: st.virtual[obj]})
	}
	//lint:ignore scratchescape documented contract: both slices are valid until the next call
	return st.tasksBuf, ids
}

// copyInto clears dst and copies src into it, allocating only when dst
// is nil. The working and best distributions are reset this way at each
// trial/improvement instead of allocating fresh maps.
func copyInto(dst, src map[amt.ObjectID]float64) map[amt.ObjectID]float64 {
	if dst == nil {
		dst = make(map[amt.ObjectID]float64, len(src))
	} else {
		clear(dst)
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func imbalance(max, ave float64) float64 {
	if ave == 0 {
		return 0
	}
	return max/ave - 1
}
