package tempered

import (
	"sort"

	"temperedlb/internal/amt"
	"temperedlb/internal/core"
)

// Handlers bundles the active-message handlers the distributed balancer
// needs. Register them on the runtime before Run, then hand the value to
// RunDistributed on every rank.
type Handlers struct {
	gossip amt.HandlerID
	xfer   amt.HandlerID
	fetch  amt.HandlerID
	st     []*rankState
}

// rankState is the per-rank balancer state touched by handlers; every
// handler runs on the owning rank's goroutine, so no locking is needed.
type rankState struct {
	inform  *core.InformState
	virtual map[amt.ObjectID]float64
}

// xferMsg proposes one task relocation: the sender cedes the (virtual)
// task to the receiver for the current refinement iteration.
type xferMsg struct {
	Obj  amt.ObjectID
	Load float64
}

// RegisterHandlers installs the balancer's handlers on the runtime. The
// base handler id space must not collide with the application's; pass a
// free base id.
func RegisterHandlers(rt *amt.Runtime, base amt.HandlerID) *Handlers {
	h := &Handlers{
		gossip: base,
		xfer:   base + 1,
		fetch:  base + 2,
		st:     make([]*rankState, rt.NumRanks()),
	}
	for r := range h.st {
		h.st[r] = &rankState{}
	}
	rt.Register(h.gossip, func(rc *amt.Context, from core.Rank, data any) {
		st := h.st[rc.Rank()]
		if st.inform == nil {
			panic("tempered: gossip before iteration setup")
		}
		sends, _ := st.inform.Receive(data.(core.InformMsg))
		for _, s := range sends {
			rc.Send(s.To, h.gossip, s.Msg)
		}
	})
	rt.Register(h.xfer, func(rc *amt.Context, from core.Rank, data any) {
		m := data.(xferMsg)
		h.st[rc.Rank()].virtual[m.Obj] = m.Load
	})
	rt.RegisterObject(h.fetch, func(rc *amt.Context, obj amt.ObjectID, state any, from core.Rank, data any) {
		rc.Migrate(obj, data.(core.Rank))
	})
	return h
}

// DistResult reports a distributed LB invocation from one rank's
// perspective; the imbalance fields are identical on every rank.
type DistResult struct {
	InitialImbalance float64
	FinalImbalance   float64
	BestTrial        int
	BestIteration    int
	// Migrations and MigrationBytes count the objects this rank shipped
	// out while committing the chosen distribution.
	Migrations     int
	MigrationBytes int
}

// RunDistributed executes the full TemperedLB protocol on the calling
// rank: the statistics all-reduce, then Trials×Iterations of (gossip
// epoch, transfer epoch, imbalance all-reduce) over a virtual working
// set, and finally a commit epoch that migrates the real objects into
// the best distribution found (Algorithm 3's deferred transfers). All
// ranks must call it collectively with their local instrumented loads.
func RunDistributed(rc *amt.Context, h *Handlers, cfg core.Config, loads map[amt.ObjectID]float64) (DistResult, error) {
	if err := cfg.Validate(); err != nil {
		return DistResult{}, err
	}
	self := rc.Rank()
	n := rc.NumRanks()
	st := h.st[self]

	sumLoad := func(w map[amt.ObjectID]float64) float64 {
		s := 0.0
		for _, l := range w {
			s += l
		}
		return s
	}
	ownLoad := sumLoad(loads)
	total := rc.AllReduce(ownLoad, amt.ReduceSum)
	ave := total / float64(n)
	res := DistResult{
		InitialImbalance: imbalance(rc.AllReduce(ownLoad, amt.ReduceMax), ave),
	}
	res.FinalImbalance = res.InitialImbalance
	if total == 0 {
		return res, nil
	}

	best := copyWorking(loads)
	migBefore, bytesBefore := rc.Stats.Migrations, rc.Stats.MigrationBytes

	for trial := 1; trial <= cfg.Trials; trial++ {
		st.virtual = copyWorking(loads) // Algorithm 3 line 3
		gossipRNG := core.SeededRNG(cfg.Seed, int64(trial), int64(self), 0x60551f)
		xferRNG := core.SeededRNG(cfg.Seed, int64(trial), int64(self), 0x7af)

		for iter := 1; iter <= cfg.Iterations; iter++ {
			// Inform stage: asynchronous gossip under termination
			// detection — no synchronized rounds (§IV-B).
			st.inform = core.NewInformState(self, n, &cfg, gossipRNG)
			rc.Epoch(func() {
				for _, s := range st.inform.Begin(ave, sumLoad(st.virtual)) {
					rc.Send(s.To, h.gossip, s.Msg)
				}
			})

			// Transfer stage: every overloaded rank works concurrently
			// with its gossip-stale knowledge.
			rc.Epoch(func() {
				load := sumLoad(st.virtual)
				if load <= cfg.Threshold*ave {
					return
				}
				tasks, ids := virtualTasks(st.virtual)
				props, _, _ := core.RunTransfer(self, tasks, load, ave, st.inform.Knowledge(), &cfg, xferRNG)
				for _, p := range props {
					obj := ids[p.Task]
					rc.Send(p.To, h.xfer, xferMsg{Obj: obj, Load: st.virtual[obj]})
					delete(st.virtual, obj)
				}
			})

			// Evaluate the proposed distribution (Algorithm 3 line 9).
			iterI := imbalance(rc.AllReduce(sumLoad(st.virtual), amt.ReduceMax), ave)
			if iterI < res.FinalImbalance {
				res.FinalImbalance = iterI
				res.BestTrial, res.BestIteration = trial, iter
				best = copyWorking(st.virtual)
			}
		}
	}
	st.inform = nil

	// Commit (Algorithm 3 line 13): the chosen owner of each task pulls
	// it from wherever it actually lives; routing and forwarding handle
	// in-flight races, and the epoch ends only after every migration and
	// location update has landed.
	rc.Epoch(func() {
		for obj := range best {
			if !rc.HasObject(obj) {
				rc.SendObject(obj, h.fetch, self)
			}
		}
	})
	res.Migrations = rc.Stats.Migrations - migBefore
	res.MigrationBytes = rc.Stats.MigrationBytes - bytesBefore
	return res, nil
}

// virtualTasks flattens the working set into core tasks with dense local
// ids, deterministically ordered, plus the reverse mapping.
func virtualTasks(w map[amt.ObjectID]float64) ([]core.Task, []amt.ObjectID) {
	ids := make([]amt.ObjectID, 0, len(w))
	for obj := range w {
		ids = append(ids, obj)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	tasks := make([]core.Task, len(ids))
	for i, obj := range ids {
		tasks[i] = core.Task{ID: core.TaskID(i), Load: w[obj]}
	}
	return tasks, ids
}

func copyWorking(w map[amt.ObjectID]float64) map[amt.ObjectID]float64 {
	c := make(map[amt.ObjectID]float64, len(w))
	for k, v := range w {
		c[k] = v
	}
	return c
}

func imbalance(max, ave float64) float64 {
	if ave == 0 {
		return 0
	}
	return max/ave - 1
}
