package tempered

import (
	"temperedlb/internal/amt"
	"temperedlb/internal/comm/wire"
	"temperedlb/internal/core"
)

// Wire codecs for the distributed balancer's payloads, in the 32–63 id
// band reserved for balancer layers. Field order IS the wire protocol;
// changes are a wire.Version bump.
func init() {
	wire.RegisterPayload(32,
		func(e *wire.Encoder, v core.InformMsg) {
			e.I64(int64(v.Round))
			if v.Entries == nil {
				e.U32(0)
				return
			}
			e.U32(uint32(len(v.Entries)) + 1)
			for _, en := range v.Entries {
				e.I32(int32(en.Rank))
				e.F64(en.Load)
			}
		},
		func(d *wire.Decoder) core.InformMsg {
			m := core.InformMsg{Round: int(d.I64())}
			word := d.U32()
			if word == 0 || d.Err() != nil {
				return m
			}
			n := int(word - 1)
			if n*12 > d.Remaining() {
				d.Failf("inform message claims %d entries with %d bytes left", n, d.Remaining())
				return m
			}
			m.Entries = make([]core.RankLoad, n)
			for i := range m.Entries {
				m.Entries[i].Rank = core.Rank(d.I32())
				m.Entries[i].Load = d.F64()
			}
			return m
		})
	wire.RegisterPayload(33,
		func(e *wire.Encoder, v xferMsg) {
			e.I64(int64(v.Obj))
			e.F64(v.Load)
		},
		func(d *wire.Decoder) xferMsg {
			return xferMsg{Obj: amt.ObjectID(d.I64()), Load: d.F64()}
		})
}
