package tempered

import (
	"math/rand"
	"testing"

	"temperedlb/internal/core"
)

func skewed(p, hot, n int, seed int64) *core.Assignment {
	rng := rand.New(rand.NewSource(seed))
	a := core.NewAssignment(p)
	for i := 0; i < n; i++ {
		a.Add(0.2+rng.Float64(), core.Rank(rng.Intn(hot)))
	}
	return a
}

func fastTempered() *Strategy {
	cfg := core.Tempered()
	cfg.Trials = 2
	cfg.Iterations = 4
	cfg.Rounds = 5
	cfg.Fanout = 3
	return New(cfg)
}

func TestStrategyImproves(t *testing.T) {
	a := skewed(32, 2, 500, 1)
	plan, err := fastTempered().Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FinalImbalance >= plan.InitialImbalance/3 {
		t.Errorf("weak improvement: %g -> %g", plan.InitialImbalance, plan.FinalImbalance)
	}
	plan.Apply(a)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyNames(t *testing.T) {
	if NewTempered().Name() != "TemperedLB" {
		t.Error("tempered name")
	}
	if NewGrapevine().Name() != "GrapevineLB" {
		t.Error("grapevine name")
	}
}

func TestGrapevineConfigMatchesOriginal(t *testing.T) {
	cfg := NewGrapevine().Config()
	if cfg.Criterion != core.CriterionOriginal || cfg.CMF != core.CMFOriginal ||
		cfg.RecomputeCMF || cfg.Order != core.OrderArbitrary ||
		cfg.Trials != 1 || cfg.Iterations != 1 {
		t.Errorf("grapevine config drifted: %+v", cfg)
	}
}

func TestTemperedConfigMatchesPaper(t *testing.T) {
	cfg := NewTempered().Config()
	if cfg.Criterion != core.CriterionRelaxed || cfg.CMF != core.CMFModified ||
		!cfg.RecomputeCMF || cfg.Order != core.OrderFewestMigrations ||
		cfg.Trials != 10 || cfg.Iterations != 8 {
		t.Errorf("tempered config drifted: %+v", cfg)
	}
}

func TestWithSeedIndependent(t *testing.T) {
	s := fastTempered()
	s2 := s.WithSeed(42)
	if s2.Config().Seed != 42 {
		t.Error("seed not applied")
	}
	if s.Config().Seed == 42 {
		t.Error("WithSeed mutated the receiver")
	}
}

func TestStrategyMessagesAccounted(t *testing.T) {
	a := skewed(32, 2, 200, 2)
	plan, err := fastTempered().Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Messages <= 0 {
		t.Error("no gossip messages accounted")
	}
	if plan.MovedLoad <= 0 || plan.MovedTasks() == 0 {
		t.Error("no moves on a skewed workload")
	}
}

func TestStrategyBadConfig(t *testing.T) {
	cfg := core.Tempered()
	cfg.Rounds = 0
	if _, err := New(cfg).Rebalance(skewed(8, 1, 10, 3)); err == nil {
		t.Error("bad config accepted")
	}
}
