package tempered

import (
	"reflect"
	"sync"
	"testing"

	"temperedlb/internal/amt"
	"temperedlb/internal/comm"
	"temperedlb/internal/comm/wire"
	"temperedlb/internal/core"
)

// registerColorState installs the wire codec for the test object state,
// in the application id band, so migrations can cross process-style
// transport boundaries. The Blob padding is never written by any test,
// so only Load crosses the wire and the decoded state is equal.
var registerColorState = sync.OnceFunc(func() {
	wire.RegisterPayload(100,
		func(e *wire.Encoder, s *colorState) { e.F64(s.Load) },
		func(d *wire.Decoder) *colorState { return &colorState{Load: d.F64()} })
})

// crossTransportConfig pins Rounds to 1: single-round gossip knowledge
// is a pure canonicalized merge, independent of arrival order, whereas
// multi-round epidemic forwarding suppresses re-sends based on what
// arrived first and so legitimately varies across transports. Every
// other knob matches the chaos suite's distConfig.
func crossTransportConfig() core.Config {
	cfg := distConfig()
	cfg.Rounds = 1
	return cfg
}

// runOnTransport executes the standard chaos workload (hot ranks own
// all objects, dyadic loads) on the named transport and returns the
// per-rank results. For "unix" and "tcp" the job runs as a 3-node
// cluster of partial networks joined by real sockets, one runtime per
// node exactly as cmd/lbnode hosts one per process.
func runOnTransport(t *testing.T, transport string, nRanks, hot, objsPerHot int, sp *comm.FaultSpec) []DistResult {
	t.Helper()
	registerColorState()
	cfg := crossTransportConfig()

	results := make([]DistResult, nRanks)
	makeBody := func(h *Handlers) func(rc *amt.Context) {
		return func(rc *amt.Context) {
			loads := make(map[amt.ObjectID]float64)
			if int(rc.Rank()) < hot {
				for i := 0; i < objsPerHot; i++ {
					l := dyadicLoad(int(rc.Rank()), i, objsPerHot)
					id := rc.CreateObject(&colorState{Load: l})
					loads[id] = l
				}
			}
			rc.Barrier()
			res, err := RunDistributed(rc, h, cfg, loads)
			if err != nil {
				t.Errorf("rank %d: %v", rc.Rank(), err)
				return
			}
			results[rc.Rank()] = res
		}
	}

	if transport == "memory" {
		rt := amt.New(nRanks)
		if sp != nil {
			if err := rt.SetFaults(*sp); err != nil {
				t.Fatal(err)
			}
		}
		rt.Run(makeBody(RegisterHandlers(rt, 100)))
		return results
	}

	const nodes = 3
	cluster, err := wire.NewCluster(transport, nRanks, nodes, 0xC0FFEE)
	if err != nil {
		t.Fatalf("%s cluster: %v", transport, err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	for _, tr := range cluster.Transports {
		rt := amt.New(nRanks, amt.WithTransport(tr))
		if sp != nil {
			if err := rt.SetFaults(*sp); err != nil {
				t.Fatal(err)
			}
		}
		body := makeBody(RegisterHandlers(rt, 100))
		wg.Add(1)
		go func(rt *amt.Runtime) {
			defer wg.Done()
			rt.Run(body)
		}(rt)
	}
	wg.Wait()
	for _, tr := range cluster.Transports {
		if err := tr.Err(); err != nil {
			t.Fatalf("%s transport failed: %v", transport, err)
		}
	}
	return results
}

// TestCrossTransportIdentity is the tentpole acceptance test: the same
// seed and configuration must produce a bit-identical DistResult on the
// in-memory, Unix-socket and TCP transports — with and without a fault
// plan — because the protocol stack cannot observe the substrate. Only
// wall-clock fields may differ (StripTiming removes them).
func TestCrossTransportIdentity(t *testing.T) {
	const nRanks, hot, objsPerHot = 10, 2, 12
	faults := &comm.FaultSpec{}
	*faults, _ = comm.ParseFaultSpec("drop=0.05,dup=0.05,delay=500us,seed=42")

	for _, tc := range []struct {
		name string
		sp   *comm.FaultSpec
	}{
		{"faultfree", nil},
		{"faulted", faults},
	} {
		t.Run(tc.name, func(t *testing.T) {
			baseline := runOnTransport(t, "memory", nRanks, hot, objsPerHot, tc.sp)
			for _, transport := range []string{"unix", "tcp"} {
				got := runOnTransport(t, transport, nRanks, hot, objsPerHot, tc.sp)
				for r := range baseline {
					want, have := baseline[r].StripTiming(), got[r].StripTiming()
					if !reflect.DeepEqual(want, have) {
						t.Errorf("%s: rank %d diverges from memory transport:\nmemory: %+v\n%s: %+v",
							transport, r, want, transport, have)
					}
				}
			}
		})
	}
}
