package tempered

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"temperedlb/internal/amt"
	"temperedlb/internal/comm"
	"temperedlb/internal/obs"
)

// runStreamCase mirrors runChaosCase with a frame stream attached to the
// runtime, returning the published frames alongside the per-rank results.
func runStreamCase(t *testing.T, nRanks, hot, objsPerHot int, sp *comm.FaultSpec) ([]DistResult, []obs.Snapshot) {
	t.Helper()
	cfg := distConfig()
	cfg.Rounds = 1
	rt := amt.New(nRanks)
	stream := obs.NewStream(obs.DefaultStreamCapacity)
	rt.SetStream(stream)
	if sp != nil {
		if err := rt.SetFaults(*sp); err != nil {
			t.Fatal(err)
		}
	}
	h := RegisterHandlers(rt, 100)
	results := make([]DistResult, nRanks)
	var mu sync.Mutex

	rt.Run(func(rc *amt.Context) {
		loads := make(map[amt.ObjectID]float64)
		if int(rc.Rank()) < hot {
			for i := 0; i < objsPerHot; i++ {
				l := dyadicLoad(int(rc.Rank()), i, objsPerHot)
				id := rc.CreateObject(&colorState{Load: l})
				loads[id] = l
			}
		}
		rc.Barrier()
		res, err := RunDistributed(rc, h, cfg, loads)
		if err != nil {
			t.Errorf("rank %d: %v", rc.Rank(), err)
			return
		}
		mu.Lock()
		results[rc.Rank()] = res
		mu.Unlock()
	})
	return results, stream.Frames()
}

// stripVolatileFrame zeroes the frame fields that legitimately depend on
// wall clock, goroutine scheduling or fault activity — timestamps,
// transport volume (retries and termination-token rounds vary with
// timing) and the injection counters — leaving the protocol-determined
// content for exact comparison.
func stripVolatileFrame(f obs.Snapshot) obs.Snapshot {
	f.TimeMs = 0
	f.IterMs = 0
	f.Msgs, f.Bytes = 0, 0
	f.Dropped, f.Duplicated, f.Retries, f.DupDrops = 0, 0, 0, 0
	f.WireBytesOut, f.WireBytesIn, f.WirePeers = 0, 0, 0
	return f
}

// TestDistributedZeroLoadResult pins the zero-iteration shape: a run
// where no rank has any load takes the early return after the prologue
// — no history rows, zero imbalances, no transfers — and with a stream
// attached still publishes exactly the init frame, which survives an
// NDJSON round trip.
func TestDistributedZeroLoadResult(t *testing.T) {
	results, frames := runStreamCase(t, 6, 0, 0, nil)
	for r, res := range results {
		if len(res.History) != 0 || res.InitialImbalance != 0 ||
			res.FinalImbalance != 0 || res.GossipMessages != 0 ||
			res.TransferMessages != 0 || res.Migrations != 0 {
			t.Errorf("rank %d: zero-load result not empty: %+v", r, res)
		}
	}
	if len(frames) != 1 || frames[0].Phase != "init" {
		t.Fatalf("zero-load run published %d frames (want 1 init): %+v", len(frames), frames)
	}
	if frames[0].Ranks != 6 || len(frames[0].Loads) != 6 || frames[0].Imbalance != 0 {
		t.Errorf("init frame malformed: %+v", frames[0])
	}
	var buf bytes.Buffer
	if err := obs.WriteSnapshots(&buf, frames); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(frames, back) {
		t.Errorf("NDJSON round trip changed the frame:\nin:  %+v\nout: %+v", frames, back)
	}
}

// TestDistributedStreamingChaosIdentity pins two contracts at once:
// attaching a frame stream must not change any balancing decision, and
// the faulted==fault-free identity must survive with streaming enabled —
// including the frame contents themselves, up to timing and transport
// volume.
func TestDistributedStreamingChaosIdentity(t *testing.T) {
	cfg := distConfig()
	cfg.Rounds = 1
	bare, _, _ := runChaosCase(t, 10, 2, 32, cfg, nil, dyadicLoad)
	clean, cleanFrames := runStreamCase(t, 10, 2, 32, nil)
	sp := &comm.FaultSpec{
		Seed: 7, Drop: 0.1, Dup: 0.1,
		DelayMax:  time.Millisecond,
		RetryBase: time.Millisecond,
	}
	faulted, faultedFrames := runStreamCase(t, 10, 2, 32, sp)

	for r := range bare {
		if !reflect.DeepEqual(stripTiming(bare[r]), stripTiming(clean[r])) {
			t.Errorf("rank %d: attaching a stream changed the outcome", r)
		}
		c, f := stripTiming(clean[r]), stripTiming(faulted[r])
		if !reflect.DeepEqual(c, f) {
			t.Errorf("rank %d diverged under faults with streaming:\nclean:   %+v\nfaulted: %+v", r, c, f)
		}
	}

	wantFrames := 1 + cfg.Trials*cfg.Iterations + 1 // init + iters + commit
	if len(cleanFrames) != wantFrames {
		t.Fatalf("clean run published %d frames, want %d", len(cleanFrames), wantFrames)
	}
	if len(faultedFrames) != len(cleanFrames) {
		t.Fatalf("frame counts differ: clean %d, faulted %d",
			len(cleanFrames), len(faultedFrames))
	}
	if cleanFrames[0].Phase != "init" || cleanFrames[len(cleanFrames)-1].Phase != "commit" {
		t.Errorf("frame phases malformed: first %q, last %q",
			cleanFrames[0].Phase, cleanFrames[len(cleanFrames)-1].Phase)
	}
	for i := range cleanFrames {
		c, f := stripVolatileFrame(cleanFrames[i]), stripVolatileFrame(faultedFrames[i])
		if !reflect.DeepEqual(c, f) {
			t.Errorf("frame %d diverged under faults:\nclean:   %+v\nfaulted: %+v", i, c, f)
		}
	}

	commit := cleanFrames[len(cleanFrames)-1]
	if commit.Imbalance != clean[0].FinalImbalance {
		t.Errorf("commit frame imbalance %g, want final %g",
			commit.Imbalance, clean[0].FinalImbalance)
	}
	migs := int64(0)
	for _, r := range clean {
		migs += int64(r.Migrations)
	}
	if commit.Migrations != migs {
		t.Errorf("commit frame migrations %d, want %d", commit.Migrations, migs)
	}
}
