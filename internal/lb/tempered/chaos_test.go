package tempered

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"temperedlb/internal/amt"
	"temperedlb/internal/comm"
	"temperedlb/internal/core"
)

// dyadicLoad is the default chaos workload: multiples of 1/8, so any
// summation order is exact and faulted/fault-free runs cannot diverge by
// rounding even without ordering guarantees.
func dyadicLoad(rank, i, objsPerHot int) float64 {
	return float64((rank*objsPerHot+i)%8+1) / 8
}

// nonDyadicLoad deliberately picks loads whose sums round differently
// under different addition orders (sevenths and thirds have no finite
// binary expansion), so a test using it detects any arrival-order
// dependence in the floating-point aggregation paths.
func nonDyadicLoad(rank, i, objsPerHot int) float64 {
	k := rank*objsPerHot + i
	return 1.0/3.0 + float64(k%7)/7.0
}

// runChaosCase stands up a runtime with an optional fault spec, seeds a
// deterministic clustered workload via loadFn, runs the distributed
// balancer, and returns the per-rank results, fault statistics, and
// final object census.
func runChaosCase(t *testing.T, nRanks, hot, objsPerHot int, cfg core.Config, sp *comm.FaultSpec, loadFn func(rank, i, objsPerHot int) float64) ([]DistResult, amt.FaultStats, int) {
	t.Helper()
	rt := amt.New(nRanks)
	if sp != nil {
		if err := rt.SetFaults(*sp); err != nil {
			t.Fatal(err)
		}
	}
	h := RegisterHandlers(rt, 100)
	results := make([]DistResult, nRanks)
	census := make([]int, nRanks)
	var mu sync.Mutex

	rt.Run(func(rc *amt.Context) {
		loads := make(map[amt.ObjectID]float64)
		if int(rc.Rank()) < hot {
			for i := 0; i < objsPerHot; i++ {
				l := loadFn(int(rc.Rank()), i, objsPerHot)
				id := rc.CreateObject(&colorState{Load: l})
				loads[id] = l
			}
		}
		rc.Barrier()
		res, err := RunDistributed(rc, h, cfg, loads)
		if err != nil {
			t.Errorf("rank %d: %v", rc.Rank(), err)
			return
		}
		results[rc.Rank()] = res
		rc.Barrier()
		mu.Lock()
		census[rc.Rank()] = len(rc.LocalObjects())
		mu.Unlock()
	})

	total := 0
	for _, c := range census {
		total += c
	}
	return results, rt.FaultStats(), total
}

// stripTiming zeroes the wall-clock fields of a result so runs can be
// compared for protocol-level equality.
func stripTiming(r DistResult) DistResult { return r.StripTiming() }

// TestDistributedChaosLossy runs the full TemperedLB protocol over a
// transport that drops, duplicates and delays the balancer's own
// messages: the run must terminate, conserve every object, agree across
// ranks, and still improve the imbalance.
func TestDistributedChaosLossy(t *testing.T) {
	sp := &comm.FaultSpec{
		Seed: 1, Drop: 0.05, Dup: 0.05,
		DelayMax:  2 * time.Millisecond,
		RetryBase: time.Millisecond,
	}
	results, st, census := runChaosCase(t, 12, 2, 40, distConfig(), sp, dyadicLoad)
	if census != 80 {
		t.Errorf("object census %d, want 80 (objects lost or duplicated under faults)", census)
	}
	res := results[0]
	if res.InitialImbalance < 3 {
		t.Fatalf("initial I only %g", res.InitialImbalance)
	}
	if res.FinalImbalance >= res.InitialImbalance/3 {
		t.Errorf("weak improvement under faults: %g -> %g",
			res.InitialImbalance, res.FinalImbalance)
	}
	for r := 1; r < len(results); r++ {
		if results[r].FinalImbalance != res.FinalImbalance ||
			results[r].BestTrial != res.BestTrial ||
			results[r].BestIteration != res.BestIteration {
			t.Errorf("rank %d disagrees under faults: %+v vs %+v", r, results[r], res)
		}
	}
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Errorf("fault plan injected nothing: %+v", st)
	}
	if st.Retries == 0 {
		t.Errorf("drops were not recovered by retries: %+v", st)
	}
}

// TestDistributedChaosMatchesFaultFree pins the determinism contract:
// with single-round gossip (no arrival-order-dependent forwarding) and
// canonicalized knowledge, a faulted run must produce the exact same
// balancing decisions as the fault-free run — drop, duplication and delay
// may only cost wall-clock time, never change the outcome.
func TestDistributedChaosMatchesFaultFree(t *testing.T) {
	cfg := distConfig()
	cfg.Rounds = 1
	clean, _, cleanCensus := runChaosCase(t, 10, 2, 32, cfg, nil, dyadicLoad)
	sp := &comm.FaultSpec{
		Seed: 7, Drop: 0.1, Dup: 0.1,
		DelayMax:  time.Millisecond,
		RetryBase: time.Millisecond,
	}
	faulted, st, faultedCensus := runChaosCase(t, 10, 2, 32, cfg, sp, dyadicLoad)
	if st.Dropped == 0 || st.Duplicated == 0 || st.Retries == 0 {
		t.Fatalf("fault plan injected nothing: %+v", st)
	}
	if cleanCensus != faultedCensus {
		t.Errorf("census differs: clean %d, faulted %d", cleanCensus, faultedCensus)
	}
	for r := range clean {
		c, f := stripTiming(clean[r]), stripTiming(faulted[r])
		if !reflect.DeepEqual(c, f) {
			t.Errorf("rank %d diverged under faults:\nclean:   %+v\nfaulted: %+v", r, c, f)
		}
	}
}

// TestDistributedChaosEmptyPlanIdentity pins the zero-cost-when-off
// contract end to end: installing an empty fault spec changes nothing
// about a distributed run's decisions.
func TestDistributedChaosEmptyPlanIdentity(t *testing.T) {
	cfg := distConfig()
	cfg.Rounds = 1
	plain, _, _ := runChaosCase(t, 8, 2, 24, cfg, nil, dyadicLoad)
	empty, st, _ := runChaosCase(t, 8, 2, 24, cfg, &comm.FaultSpec{}, dyadicLoad)
	if st != (amt.FaultStats{}) {
		t.Fatalf("empty spec produced fault activity: %+v", st)
	}
	for r := range plain {
		if !reflect.DeepEqual(stripTiming(plain[r]), stripTiming(empty[r])) {
			t.Errorf("rank %d: empty fault spec changed the outcome", r)
		}
	}
}

// TestDistributedDelayDeterminismNonDyadic pins the bit-determinism of
// the floating-point aggregation itself: with non-dyadic loads (whose
// sums depend on addition order), a run under message delays plus a
// straggler must produce a DistResult bit-identical to the fault-free
// run. This only holds because both local summation (sorted object
// order) and the tree collectives (combine order fixed by topology, not
// arrival order) are independent of message timing. A delay-only spec
// must also leave the reliability layer off: zero retries, zero drops.
func TestDistributedDelayDeterminismNonDyadic(t *testing.T) {
	cfg := distConfig()
	cfg.Rounds = 1
	clean, _, cleanCensus := runChaosCase(t, 12, 3, 24, cfg, nil, nonDyadicLoad)
	sp := &comm.FaultSpec{
		Seed:      5,
		DelayMax:  2 * time.Millisecond,
		SlowRanks: map[int]time.Duration{2: 3 * time.Millisecond},
	}
	delayed, st, delayedCensus := runChaosCase(t, 12, 3, 24, cfg, sp, nonDyadicLoad)
	if st != (amt.FaultStats{}) {
		t.Fatalf("delay-only spec engaged the reliability layer: %+v", st)
	}
	if cleanCensus != delayedCensus {
		t.Errorf("census differs: clean %d, delayed %d", cleanCensus, delayedCensus)
	}
	for r := range clean {
		c, d := stripTiming(clean[r]), stripTiming(delayed[r])
		if !reflect.DeepEqual(c, d) {
			t.Errorf("rank %d: delays perturbed a float result:\nclean:   %+v\ndelayed: %+v", r, c, d)
		}
	}
}

// TestDistributedChaosStraggler slows one rank's traffic on top of drops:
// the protocol must still converge and agree.
func TestDistributedChaosStraggler(t *testing.T) {
	sp := &comm.FaultSpec{
		Seed: 3, Drop: 0.05,
		SlowRanks: map[int]time.Duration{1: 2 * time.Millisecond},
		RetryBase: time.Millisecond,
	}
	results, st, census := runChaosCase(t, 8, 1, 32, distConfig(), sp, dyadicLoad)
	if census != 32 {
		t.Errorf("census %d, want 32", census)
	}
	if st.Dropped == 0 {
		t.Errorf("no drops injected: %+v", st)
	}
	for r := 1; r < len(results); r++ {
		if results[r].FinalImbalance != results[0].FinalImbalance {
			t.Errorf("rank %d disagrees with straggler present", r)
		}
	}
}
