package tempered

import (
	"temperedlb/internal/core"
	"temperedlb/internal/lb"
)

// Strategy adapts the core engine to the lb.Strategy interface.
type Strategy struct {
	cfg  core.Config
	name string
}

// New returns a TemperedLB strategy with the given configuration.
func New(cfg core.Config) *Strategy {
	return &Strategy{cfg: cfg, name: "TemperedLB"}
}

// NewGrapevine returns the configuration matching the original
// GrapevineLB algorithm (the paper's AMT w/GrapevineLB bar).
func NewGrapevine() *Strategy {
	return &Strategy{cfg: core.Grapevine(), name: "GrapevineLB"}
}

// NewTempered returns the paper's TemperedLB defaults (relaxed
// criterion, modified CMF, recomputed, Fewest Migrations, 10×8
// refinement).
func NewTempered() *Strategy {
	return &Strategy{cfg: core.Tempered(), name: "TemperedLB"}
}

// Config returns the underlying configuration.
func (s *Strategy) Config() core.Config { return s.cfg }

// WithSeed returns a copy of the strategy with a new seed, so each LB
// invocation of a long run draws fresh randomness deterministically.
func (s *Strategy) WithSeed(seed int64) *Strategy {
	c := *s
	c.cfg.Seed = seed
	return &c
}

// Reseed changes the seed in place; the experiment harness calls it
// before every LB invocation so successive rebalances of a long run
// draw fresh but reproducible randomness (implements lb.Reseeder).
func (s *Strategy) Reseed(seed int64) { s.cfg.Seed = seed }

// Name implements lb.Strategy.
func (s *Strategy) Name() string { return s.name }

// Rebalance implements lb.Strategy.
func (s *Strategy) Rebalance(a *core.Assignment) (*lb.Plan, error) {
	eng, err := core.NewEngine(s.cfg)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(a)
	if err != nil {
		return nil, err
	}
	plan := &lb.Plan{
		Moves:            res.Moves,
		FinalImbalance:   res.FinalImbalance,
		InitialImbalance: res.InitialImbalance,
		MovedLoad:        res.MovedLoad(a),
	}
	for _, it := range res.History {
		plan.Messages += it.GossipMessages
	}
	// One transfer notification per move.
	plan.Messages += len(res.Moves)
	// Each refinement iteration is a gossip epoch plus a transfer epoch
	// under termination detection, plus the commit epoch and the
	// statistics all-reduce.
	plan.Epochs = 2*s.cfg.Trials*s.cfg.Iterations + 2
	return plan, nil
}
