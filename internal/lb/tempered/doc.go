// Package tempered exposes the paper's TemperedLB (and its GrapevineLB
// configuration) in two forms:
//
//   - Strategy: the offline form implementing lb.Strategy over the core
//     engine, used by the analysis framework and the virtual-time
//     experiment harness.
//   - RunDistributed: the fully distributed form running on the AMT
//     runtime — gossip as real active messages under epoch termination
//     detection, deferred transfers, and actual object migrations.
//
// # Concurrency
//
// A Strategy owns a core.Engine and its reusable scratch state, so it
// is single-owner: one tracker/goroutine per instance. Handlers must be
// registered once before Runtime.Run (the registry is read-only after
// that); RunDistributed is a collective — every rank's goroutine calls
// it together, and each rank's protocol state is confined to that
// rank's goroutine, with all cross-rank traffic going through the
// runtime's active messages.
package tempered
