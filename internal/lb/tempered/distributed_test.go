package tempered

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"temperedlb/internal/amt"
	"temperedlb/internal/core"
)

// colorState is the payload of a migratable test object.
type colorState struct {
	Load float64
	Blob [64]byte
}

func distConfig() core.Config {
	cfg := core.Tempered()
	cfg.Trials = 2
	cfg.Iterations = 3
	cfg.Rounds = 4
	cfg.Fanout = 3
	return cfg
}

// runDistributed stands up a runtime where the first hot ranks hold all
// the objects, runs the distributed balancer, and returns per-rank
// results plus the final object census.
func runDistributedCase(t *testing.T, nRanks, hot, objsPerHot int, cfg core.Config) ([]DistResult, map[core.Rank]int, float64) {
	t.Helper()
	rt := amt.New(nRanks)
	h := RegisterHandlers(rt, 100)
	results := make([]DistResult, nRanks)
	census := make(map[core.Rank]int)
	finalLoads := make([]float64, nRanks)
	var mu sync.Mutex

	rt.Run(func(rc *amt.Context) {
		rng := rand.New(rand.NewSource(int64(rc.Rank()) + 7))
		loads := make(map[amt.ObjectID]float64)
		if int(rc.Rank()) < hot {
			for i := 0; i < objsPerHot; i++ {
				l := 0.2 + rng.Float64()
				id := rc.CreateObject(&colorState{Load: l})
				loads[id] = l
			}
		}
		rc.Barrier()
		res, err := RunDistributed(rc, h, cfg, loads)
		if err != nil {
			t.Errorf("rank %d: %v", rc.Rank(), err)
			return
		}
		results[rc.Rank()] = res
		rc.Barrier()
		mu.Lock()
		census[rc.Rank()] = len(rc.LocalObjects())
		sum := 0.0
		for _, id := range rc.LocalObjects() {
			s, _ := rc.ObjectState(id)
			sum += s.(*colorState).Load
		}
		finalLoads[rc.Rank()] = sum
		mu.Unlock()
	})

	max, total := 0.0, 0.0
	for _, l := range finalLoads {
		if l > max {
			max = l
		}
		total += l
	}
	actualI := 0.0
	if total > 0 {
		actualI = max/(total/float64(nRanks)) - 1
	}
	return results, census, actualI
}

func TestDistributedImprovesAndMigrates(t *testing.T) {
	results, census, actualI := runDistributedCase(t, 12, 2, 40, distConfig())
	res := results[0]
	if res.InitialImbalance < 3 {
		t.Fatalf("initial I only %g", res.InitialImbalance)
	}
	if res.FinalImbalance >= res.InitialImbalance/3 {
		t.Errorf("weak improvement: %g -> %g", res.InitialImbalance, res.FinalImbalance)
	}
	// All ranks must agree on the imbalance trajectory.
	for r := 1; r < len(results); r++ {
		if results[r].FinalImbalance != res.FinalImbalance ||
			results[r].BestTrial != res.BestTrial ||
			results[r].BestIteration != res.BestIteration {
			t.Errorf("rank %d disagrees: %+v vs %+v", r, results[r], res)
		}
	}
	// No object lost or duplicated.
	totalObjs := 0
	for _, c := range census {
		totalObjs += c
	}
	if totalObjs != 80 {
		t.Errorf("object census %d, want 80", totalObjs)
	}
	// The committed physical distribution realizes the reported best I.
	if diff := actualI - res.FinalImbalance; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("physical I %g != reported best %g", actualI, res.FinalImbalance)
	}
}

func TestDistributedMigrationAccounting(t *testing.T) {
	results, _, _ := runDistributedCase(t, 8, 1, 32, distConfig())
	totalMigs := 0
	for _, r := range results {
		totalMigs += r.Migrations
		if r.Migrations > 0 && r.MigrationBytes <= 0 {
			t.Error("migrations without bytes")
		}
	}
	if totalMigs == 0 {
		t.Error("no migrations executed on a fully clustered workload")
	}
}

func TestDistributedBalancedInputNoMigrations(t *testing.T) {
	rt := amt.New(4)
	h := RegisterHandlers(rt, 100)
	var mu sync.Mutex
	totalMigs := 0
	rt.Run(func(rc *amt.Context) {
		loads := map[amt.ObjectID]float64{}
		id := rc.CreateObject(&colorState{Load: 1})
		loads[id] = 1
		rc.Barrier()
		res, err := RunDistributed(rc, h, distConfig(), loads)
		if err != nil {
			t.Error(err)
			return
		}
		if res.InitialImbalance != 0 {
			t.Errorf("balanced input I0 = %g", res.InitialImbalance)
		}
		mu.Lock()
		totalMigs += res.Migrations
		mu.Unlock()
	})
	if totalMigs != 0 {
		t.Errorf("balanced input migrated %d objects", totalMigs)
	}
}

func TestDistributedEmptySystem(t *testing.T) {
	rt := amt.New(3)
	h := RegisterHandlers(rt, 100)
	rt.Run(func(rc *amt.Context) {
		res, err := RunDistributed(rc, h, distConfig(), nil)
		if err != nil {
			t.Error(err)
		}
		if res.InitialImbalance != 0 || res.FinalImbalance != 0 {
			t.Errorf("empty system: %+v", res)
		}
	})
}

func TestDistributedBadConfig(t *testing.T) {
	rt := amt.New(2)
	h := RegisterHandlers(rt, 100)
	cfg := distConfig()
	cfg.Fanout = 0
	rt.Run(func(rc *amt.Context) {
		if _, err := RunDistributed(rc, h, cfg, nil); err == nil {
			t.Error("bad config accepted")
		}
	})
}

func TestDistributedRepeatedInvocations(t *testing.T) {
	// Two LB invocations back to back, as a time-varying application
	// would issue; the second starts from the improved distribution.
	rt := amt.New(8)
	h := RegisterHandlers(rt, 100)
	rt.Run(func(rc *amt.Context) {
		rng := rand.New(rand.NewSource(int64(rc.Rank())))
		loads := map[amt.ObjectID]float64{}
		if rc.Rank() == 0 {
			for i := 0; i < 24; i++ {
				l := 0.3 + rng.Float64()
				loads[rc.CreateObject(&colorState{Load: l})] = l
			}
		}
		rc.Barrier()
		res1, err := RunDistributed(rc, h, distConfig(), loads)
		if err != nil {
			t.Error(err)
			return
		}
		// Re-derive local loads from the objects now present.
		loads2 := map[amt.ObjectID]float64{}
		for _, id := range rc.LocalObjects() {
			s, _ := rc.ObjectState(id)
			loads2[id] = s.(*colorState).Load
		}
		cfg2 := distConfig()
		cfg2.Seed = 99
		res2, err := RunDistributed(rc, h, cfg2, loads2)
		if err != nil {
			t.Error(err)
			return
		}
		if rc.Rank() == 0 {
			if res2.InitialImbalance > res1.FinalImbalance+1e-9 {
				t.Errorf("second invocation saw I %g, first ended at %g",
					res2.InitialImbalance, res1.FinalImbalance)
			}
			if res2.FinalImbalance > res2.InitialImbalance {
				t.Errorf("second invocation worsened: %+v", res2)
			}
		}
	})
}

// TestDistributedStressInterleaved runs many LB invocations at a larger
// rank count with the hot spot shifting between rounds — collectives,
// epochs, migrations and gossip all interleaving. Run with -race in CI.
func TestDistributedStressInterleaved(t *testing.T) {
	const nRanks = 48
	rt := amt.New(nRanks)
	h := RegisterHandlers(rt, 100)
	rt.Run(func(rc *amt.Context) {
		rng := rand.New(rand.NewSource(int64(rc.Rank()) + 1))
		// Seed objects on a rotating pair of hot ranks each round by
		// migrating everything to them first.
		if rc.Rank() == 0 {
			for i := 0; i < 96; i++ {
				rc.CreateObject(&colorState{Load: 0.2 + rng.Float64()})
			}
		}
		rc.Barrier()
		prev := -1.0
		for round := 0; round < 4; round++ {
			loads := map[amt.ObjectID]float64{}
			for _, id := range rc.LocalObjects() {
				s, _ := rc.ObjectState(id)
				loads[id] = s.(*colorState).Load
			}
			cfg := distConfig()
			cfg.Seed = int64(round + 1)
			res, err := RunDistributed(rc, h, cfg, loads)
			if err != nil {
				t.Errorf("round %d: %v", round, err)
				return
			}
			if rc.Rank() == 0 {
				if prev >= 0 && res.InitialImbalance > prev+1e-9 {
					t.Errorf("round %d: starting I %g above previous best %g",
						round, res.InitialImbalance, prev)
				}
				prev = res.FinalImbalance
			}
			rc.Barrier()
		}
		// Census: objects conserved.
		count := rc.AllReduce(float64(len(rc.LocalObjects())), amt.ReduceSum)
		if count != 96 {
			t.Errorf("census %g, want 96", count)
		}
	})
}

// TestDistributedManyRanksConverges checks convergence quality at a
// rank count big enough that partial gossip knowledge matters.
func TestDistributedManyRanksConverges(t *testing.T) {
	results, _, actualI := runDistributedCase(t, 40, 4, 30, distConfig())
	if results[0].FinalImbalance >= results[0].InitialImbalance/3 {
		t.Errorf("weak convergence at 40 ranks: %g -> %g",
			results[0].InitialImbalance, results[0].FinalImbalance)
	}
	if actualI > results[0].FinalImbalance+1e-9 {
		t.Errorf("physical I %g exceeds reported %g", actualI, results[0].FinalImbalance)
	}
}

// TestDistributedUnderJitter runs the full distributed protocol with
// randomized delivery delays: quality and object conservation must
// survive arbitrary message interleavings.
func TestDistributedUnderJitter(t *testing.T) {
	rt := amt.New(10)
	rt.SetJitter(2 * time.Millisecond)
	h := RegisterHandlers(rt, 100)
	census := make([]int, 10)
	results := make([]DistResult, 10)
	rt.Run(func(rc *amt.Context) {
		rng := rand.New(rand.NewSource(int64(rc.Rank()) + 3))
		loads := map[amt.ObjectID]float64{}
		if rc.Rank() < 2 {
			for i := 0; i < 30; i++ {
				l := 0.2 + rng.Float64()
				loads[rc.CreateObject(&colorState{Load: l})] = l
			}
		}
		rc.Barrier()
		res, err := RunDistributed(rc, h, distConfig(), loads)
		if err != nil {
			t.Errorf("rank %d: %v", rc.Rank(), err)
			return
		}
		results[rc.Rank()] = res
		rc.Barrier()
		census[rc.Rank()] = len(rc.LocalObjects())
	})
	total := 0
	for _, c := range census {
		total += c
	}
	if total != 60 {
		t.Errorf("census %d, want 60", total)
	}
	if results[0].FinalImbalance >= results[0].InitialImbalance/2 {
		t.Errorf("weak improvement under jitter: %g -> %g",
			results[0].InitialImbalance, results[0].FinalImbalance)
	}
	for r := 1; r < 10; r++ {
		if results[r].FinalImbalance != results[0].FinalImbalance {
			t.Errorf("rank %d disagrees under jitter", r)
		}
	}
}
