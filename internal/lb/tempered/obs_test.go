package tempered

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"temperedlb/internal/amt"
	"temperedlb/internal/obs"
)

// TestDistributedTracingAcceptance is the observability acceptance run:
// RunDistributed on 16 ranks with the full stack attached must produce
// (a) a Chrome trace with one named track per rank and a rich event
// vocabulary, (b) per-iteration History identical on every rank, and
// (c) balancer-level gossip+transfer message counts that exactly match
// the transport's user-kind totals.
func TestDistributedTracingAcceptance(t *testing.T) {
	const nRanks, hot, objsPerHot = 16, 2, 24
	rec := obs.NewRecorder()
	rt := amt.New(nRanks, amt.WithTracer(rec), amt.WithMetrics())
	h := RegisterHandlers(rt, 100)
	results := make([]DistResult, nRanks)
	var mu sync.Mutex

	rt.Run(func(rc *amt.Context) {
		rng := rand.New(rand.NewSource(int64(rc.Rank()) + 11))
		loads := map[amt.ObjectID]float64{}
		if int(rc.Rank()) < hot {
			for i := 0; i < objsPerHot; i++ {
				l := 0.2 + rng.Float64()
				loads[rc.CreateObject(&colorState{Load: l})] = l
			}
		}
		rc.Barrier()
		res, err := RunDistributed(rc, h, distConfig(), loads)
		if err != nil {
			t.Errorf("rank %d: %v", rc.Rank(), err)
			return
		}
		mu.Lock()
		results[rc.Rank()] = res
		mu.Unlock()
	})

	// (c) Message accounting: the balancer is the only source of
	// user-kind traffic here, so its own counts must reconcile exactly
	// with the transport.
	res := results[0]
	user := rt.Metrics().Counter(`comm_messages_total{kind="user"}`).Value()
	if got := int64(res.GossipMessages + res.TransferMessages); got != user {
		t.Errorf("balancer counted %d gossip + %d transfer = %d user messages, transport sent %d",
			res.GossipMessages, res.TransferMessages, got, user)
	}
	if res.GossipMessages == 0 || res.TransferMessages == 0 {
		t.Errorf("degenerate accounting: gossip %d, transfers %d",
			res.GossipMessages, res.TransferMessages)
	}

	// (b) History: aggregated via collectives, so identical everywhere.
	cfg := distConfig()
	if len(res.History) != cfg.Trials*cfg.Iterations {
		t.Fatalf("history rows = %d, want %d", len(res.History), cfg.Trials*cfg.Iterations)
	}
	gSum, xSum := 0, 0
	for _, row := range res.History {
		gSum += row.GossipMessages
		xSum += row.Transfers
		if row.ElapsedSeconds <= 0 {
			t.Errorf("trial %d iter %d: elapsed %g", row.Trial, row.Iteration, row.ElapsedSeconds)
		}
	}
	if gSum != res.GossipMessages || xSum != res.TransferMessages {
		t.Errorf("history sums %d/%d != totals %d/%d",
			gSum, xSum, res.GossipMessages, res.TransferMessages)
	}
	for r := 1; r < nRanks; r++ {
		if len(results[r].History) != len(res.History) {
			t.Fatalf("rank %d history length differs", r)
		}
		for i := range res.History {
			if results[r].History[i] != res.History[i] {
				t.Errorf("rank %d history[%d] = %+v, rank 0 has %+v",
					r, i, results[r].History[i], res.History[i])
			}
		}
		if results[r].ElapsedSeconds <= 0 {
			t.Errorf("rank %d elapsed %g", r, results[r].ElapsedSeconds)
		}
	}

	// (a) Trace structure: every rank emitted events of a rich
	// vocabulary, and the Chrome export names one track per rank.
	events := rec.Events()
	types := map[obs.EventType]bool{}
	ranks := map[int]bool{}
	for _, e := range events {
		types[e.Type] = true
		ranks[e.Rank] = true
	}
	if len(ranks) != nRanks {
		t.Errorf("trace covers %d ranks, want %d", len(ranks), nRanks)
	}
	if len(types) < 6 {
		t.Errorf("trace has %d distinct event types, want >= 6: %v", len(types), types)
	}
	for _, must := range []obs.EventType{
		obs.EvEpochOpen, obs.EvEpochClose, obs.EvInformSend, obs.EvInformRecv,
		obs.EvTransferPropose, obs.EvTokenRound, obs.EvMigration,
		obs.EvCollective, obs.EvIterBegin, obs.EvIterEnd, obs.EvLBBegin, obs.EvLBEnd,
	} {
		if !types[must] {
			t.Errorf("trace missing %v events", must)
		}
	}

	// (d) Collective accounting on the k-ary tree: the gossip prologue is
	// exactly one collective round per rank (the fused summary reduce),
	// each iteration adds exactly two vector reduces, and no rank ever
	// sends more than fanout·ceil(log_fanout P) messages per collective —
	// the scaling contract that replaced the star's 2(P−1) on rank 0.
	fanout := rt.Fanout()
	bound := 0
	for p := 1; p < nRanks; p *= fanout {
		bound += fanout
	}
	perRank := map[int]int{}
	prologues := map[int]int{}
	for _, e := range events {
		if e.Type != obs.EvCollective {
			continue
		}
		perRank[e.Rank]++
		if e.Name == "allreduce_summary" {
			prologues[e.Rank]++
		}
		if int(e.Value) > bound {
			t.Errorf("rank %d sent %g messages in %q, tree bound is %d",
				e.Rank, e.Value, e.Name, bound)
		}
		if e.Fanout != fanout || e.Depth < 1 {
			t.Errorf("collective event geometry: fanout %d depth %d", e.Fanout, e.Depth)
		}
	}
	// One explicit barrier before the LB call, one prologue round, two
	// reduces per iteration.
	wantColl := 2 + 2*cfg.Trials*cfg.Iterations
	for r := 0; r < nRanks; r++ {
		if perRank[r] != wantColl {
			t.Errorf("rank %d ran %d collectives, want %d", r, perRank[r], wantColl)
		}
		if prologues[r] != 1 {
			t.Errorf("rank %d ran %d prologue rounds, want exactly 1", r, prologues[r])
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	tracks := map[int]string{}
	for _, ce := range parsed.TraceEvents {
		if ce.Ph == "M" {
			tracks[ce.TID], _ = ce.Args["name"].(string)
		}
	}
	if len(tracks) != nRanks {
		t.Errorf("chrome trace has %d named tracks, want %d", len(tracks), nRanks)
	}
	for tid, name := range tracks {
		if name == "" {
			t.Errorf("track %d unnamed", tid)
		}
	}
}

// TestDistributedStatsMatchSyncShape checks the distributed History rows
// carry the same accounting fields the synchronous engine populates,
// with values in plausible relation (gossip entries >= messages when
// payloads are non-empty, knowledge min <= avg).
func TestDistributedStatsMatchSyncShape(t *testing.T) {
	results, _, _ := runDistributedCase(t, 12, 2, 40, distConfig())
	sawOverload := false
	for _, row := range results[0].History {
		if row.GossipMessages > 0 && row.GossipEntries < row.GossipMessages {
			t.Errorf("trial %d iter %d: %d entries across %d messages",
				row.Trial, row.Iteration, row.GossipEntries, row.GossipMessages)
		}
		if row.KnowledgeAvg > 0 {
			sawOverload = true
			if float64(row.KnowledgeMin) > row.KnowledgeAvg {
				t.Errorf("trial %d iter %d: knowledge min %d > avg %g",
					row.Trial, row.Iteration, row.KnowledgeMin, row.KnowledgeAvg)
			}
		}
		if rr := row.RejectionRate(); rr < 0 || rr > 100 {
			t.Errorf("rejection rate %g out of range", rr)
		}
	}
	if !sawOverload {
		t.Error("no iteration recorded knowledge stats on a clustered workload")
	}
}

// TestDistributedUntracedStatsStillAggregate pins that History and the
// message totals are produced by the collectives, not by the tracer:
// they must be present with observability fully disabled.
func TestDistributedUntracedStatsStillAggregate(t *testing.T) {
	results, _, _ := runDistributedCase(t, 8, 1, 32, distConfig())
	res := results[0]
	if len(res.History) == 0 || res.GossipMessages == 0 {
		t.Fatalf("stats absent without tracer: %+v", res)
	}
	for r := 1; r < len(results); r++ {
		if results[r].GossipMessages != res.GossipMessages {
			t.Errorf("rank %d gossip total %d != %d", r, results[r].GossipMessages, res.GossipMessages)
		}
	}
}
