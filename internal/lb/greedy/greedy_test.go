package greedy

import (
	"math"
	"math/rand"
	"testing"

	"temperedlb/internal/core"
)

func TestGreedyBalancesUnitTasks(t *testing.T) {
	a := core.NewAssignment(4)
	for i := 0; i < 16; i++ {
		a.Add(1, 0)
	}
	plan, err := New().Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.FinalImbalance) > 1e-12 {
		t.Errorf("unit tasks should balance perfectly, I=%g", plan.FinalImbalance)
	}
	plan.Apply(a)
	for r := 0; r < 4; r++ {
		if a.RankLoad(core.Rank(r)) != 4 {
			t.Errorf("rank %d load %g", r, a.RankLoad(core.Rank(r)))
		}
	}
}

func TestGreedyNearOptimalOnRandomLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := core.NewAssignment(8)
	for i := 0; i < 200; i++ {
		a.Add(rng.Float64()*2, core.Rank(rng.Intn(2)))
	}
	plan, err := New().Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	// LPT guarantees max <= (4/3)·OPT; with 200 small tasks over 8 ranks
	// the result should be essentially perfect.
	if plan.FinalImbalance > 0.05 {
		t.Errorf("greedy I = %g, want near 0", plan.FinalImbalance)
	}
}

func TestGreedyLPTBoundProperty(t *testing.T) {
	// Graham's bound: l_max <= ave + (1 - 1/P)·maxTask, hence
	// I <= (1 - 1/P)·maxTask/ave.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		p := 2 + rng.Intn(8)
		a := core.NewAssignment(p)
		n := p + rng.Intn(100)
		for i := 0; i < n; i++ {
			a.Add(0.1+rng.Float64()*5, 0)
		}
		plan, err := New().Rebalance(a)
		if err != nil {
			t.Fatal(err)
		}
		bound := (1 - 1/float64(p)) * a.MaxTaskLoad() / a.AveLoad()
		if plan.FinalImbalance > bound+1e-9 {
			t.Fatalf("LPT bound violated: I=%g bound=%g", plan.FinalImbalance, bound)
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	mk := func() *core.Assignment {
		rng := rand.New(rand.NewSource(3))
		a := core.NewAssignment(6)
		for i := 0; i < 60; i++ {
			a.Add(rng.Float64(), core.Rank(rng.Intn(6)))
		}
		return a
	}
	p1, _ := New().Rebalance(mk())
	p2, _ := New().Rebalance(mk())
	if len(p1.Moves) != len(p2.Moves) {
		t.Fatal("nondeterministic move count")
	}
	for i := range p1.Moves {
		if p1.Moves[i] != p2.Moves[i] {
			t.Fatal("nondeterministic moves")
		}
	}
}

func TestGreedyMessagesCost(t *testing.T) {
	a := core.NewAssignment(10)
	a.Add(1, 0)
	plan, _ := New().Rebalance(a)
	if plan.Messages != 18 {
		t.Errorf("messages = %d, want 2(P-1)=18", plan.Messages)
	}
}

func TestGreedyEmpty(t *testing.T) {
	a := core.NewAssignment(4)
	plan, err := New().Rebalance(a)
	if err != nil || plan.MovedTasks() != 0 {
		t.Errorf("empty: %+v, %v", plan, err)
	}
}

func TestGreedyName(t *testing.T) {
	if New().Name() != "GreedyLB" {
		t.Error("name wrong")
	}
}

func TestGreedyDoesNotMutateInput(t *testing.T) {
	a := core.NewAssignment(4)
	for i := 0; i < 10; i++ {
		a.Add(1, 0)
	}
	owners := a.Owners()
	New().Rebalance(a)
	after := a.Owners()
	for i := range owners {
		if owners[i] != after[i] {
			t.Fatal("input mutated")
		}
	}
}
