package greedy

import (
	"container/heap"
	"sort"

	"temperedlb/internal/core"
	"temperedlb/internal/lb"
)

// Strategy is the centralized greedy balancer.
type Strategy struct{}

// New returns the GreedyLB baseline.
func New() *Strategy { return &Strategy{} }

// Name implements lb.Strategy.
func (*Strategy) Name() string { return "GreedyLB" }

// Rebalance implements lb.Strategy with LPT assignment from scratch.
func (*Strategy) Rebalance(a *core.Assignment) (*lb.Plan, error) {
	n := a.NumTasks()
	tasks := make([]core.Task, 0, n)
	for id := 0; id < n; id++ {
		tasks = append(tasks, core.Task{ID: core.TaskID(id), Load: a.Load(core.TaskID(id))})
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Load != tasks[j].Load {
			return tasks[i].Load > tasks[j].Load
		}
		return tasks[i].ID < tasks[j].ID
	})

	h := make(rankHeap, a.NumRanks())
	for r := range h {
		h[r] = rankLoad{rank: core.Rank(r)}
	}
	heap.Init(&h)

	proposed := make([]core.Rank, n)
	for _, task := range tasks {
		least := h[0]
		proposed[task.ID] = least.rank
		least.load += task.Load
		h[0] = least
		heap.Fix(&h, 0)
	}

	// Cost: every rank ships its task stats to rank 0 and receives its
	// new assignment back — 2(P−1) messages in two sequential phases.
	msgs := 2 * (a.NumRanks() - 1)
	plan := lb.PlanFromOwners(a, proposed, msgs)
	plan.Epochs = 2
	return plan, nil
}

type rankLoad struct {
	rank core.Rank
	load float64
}

// rankHeap is a min-heap on load with rank id as the deterministic tie
// breaker.
type rankHeap []rankLoad

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].rank < h[j].rank
}
func (h rankHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x any)   { *h = append(*h, x.(rankLoad)) }
func (h *rankHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
