// Package greedy implements the centralized GreedyLB baseline of the
// paper's evaluation (§VI-B): gather every task load on one rank, sort
// tasks by descending load, and repeatedly assign the heaviest remaining
// task to the least-loaded rank (LPT scheduling). It produces
// high-quality distributions but is "a non-scalable, centralized, greedy
// algorithm" — its gather/scatter traffic and O(T log T) central work
// grow with the whole machine, which is exactly why the paper uses it
// only as a quality yardstick.
//
// # Concurrency
//
// The strategy is stateless and deterministic; distinct instances (or
// even one instance from one goroutine at a time) serve concurrent
// experiment runs. It never mutates the assignment it is given.
package greedy
