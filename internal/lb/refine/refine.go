package refine

import (
	"container/heap"
	"fmt"
	"sort"

	"temperedlb/internal/core"
	"temperedlb/internal/lb"
)

// Strategy is the incremental refinement balancer.
type Strategy struct {
	// Tolerance is the relative overload allowed to remain: ranks are
	// refined until load <= (1+Tolerance)·ave or no candidate move
	// remains. Default 0.05.
	Tolerance float64
}

// New returns a RefineLB with the default 5% tolerance.
func New() *Strategy { return &Strategy{Tolerance: 0.05} }

// Name implements lb.Strategy.
func (*Strategy) Name() string { return "RefineLB" }

// Rebalance implements lb.Strategy.
func (s *Strategy) Rebalance(a *core.Assignment) (*lb.Plan, error) {
	tol := s.Tolerance
	if tol < 0 {
		return nil, fmt.Errorf("refine: negative tolerance %g", tol)
	}
	n := a.NumRanks()
	ave := a.AveLoad()
	limit := (1 + tol) * ave

	proposed := a.Owners()
	loads := a.RankLoads()

	// Donor task lists sorted descending by load, per rank.
	tasks := make([][]core.Task, n)
	for r := 0; r < n; r++ {
		ts := a.TasksOf(core.Rank(r))
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].Load != ts[j].Load {
				return ts[i].Load > ts[j].Load
			}
			return ts[i].ID < ts[j].ID
		})
		tasks[r] = ts
	}

	// Min-heap over rank loads for recipient selection.
	h := make(rankHeap, n)
	for r := range h {
		h[r] = rankLoad{rank: core.Rank(r), load: loads[r]}
	}
	heap.Init(&h)

	moves := 0
	guard := a.NumTasks() + 1
	for iter := 0; iter < guard; iter++ {
		// Most overloaded rank.
		donor, worst := -1, limit
		for r := 0; r < n; r++ {
			if loads[r] > worst {
				worst, donor = loads[r], r
			}
		}
		if donor < 0 {
			break
		}
		recipient := h.peekOther(core.Rank(donor))
		if recipient < 0 {
			break
		}
		// Largest task that does not push the recipient above the
		// limit; fall back to the donor's smallest task if none fits
		// but moving it still helps.
		task, ok := pickTask(tasks[donor], limit-loads[recipient], loads[donor]-loads[recipient])
		if !ok {
			break
		}
		// Execute the move.
		proposed[task.ID] = core.Rank(recipient)
		loads[donor] -= task.Load
		loads[recipient] += task.Load
		tasks[donor] = removeTask(tasks[donor], task.ID)
		moves++
		h.update(core.Rank(donor), loads[donor])
		h.update(core.Rank(recipient), loads[recipient])
	}

	plan := lb.PlanFromOwners(a, proposed, 2*(n-1)+moves)
	plan.Epochs = 2
	return plan, nil
}

// pickTask selects the task to move: the largest whose load fits within
// fit (keeping the recipient under the limit); failing that, the
// smallest task, provided moving it still narrows the donor/recipient
// gap (load < gap, the Lemma-1 condition, so the maximum cannot grow).
func pickTask(ts []core.Task, fit, gap float64) (core.Task, bool) {
	// ts is sorted descending: first task with load <= fit is the
	// largest fitting one.
	for _, task := range ts {
		if task.Load <= fit && task.Load > 0 {
			return task, true
		}
	}
	if len(ts) == 0 {
		return core.Task{}, false
	}
	smallest := ts[len(ts)-1]
	if smallest.Load > 0 && smallest.Load < gap {
		return smallest, true
	}
	return core.Task{}, false
}

func removeTask(ts []core.Task, id core.TaskID) []core.Task {
	for i := range ts {
		if ts[i].ID == id {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

type rankLoad struct {
	rank core.Rank
	load float64
}

type rankHeap []rankLoad

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].rank < h[j].rank
}
func (h rankHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x any)   { *h = append(*h, x.(rankLoad)) }
func (h *rankHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// peekOther returns the least-loaded rank other than exclude, or -1.
func (h rankHeap) peekOther(exclude core.Rank) int {
	if len(h) == 0 {
		return -1
	}
	if h[0].rank != exclude {
		return int(h[0].rank)
	}
	best := -1
	for i := 1; i < len(h); i++ {
		if best < 0 || h.Less(i, best) {
			best = i
		}
	}
	if best < 0 {
		return -1
	}
	return int(h[best].rank)
}

// update adjusts a rank's load in place and restores heap order.
func (h *rankHeap) update(r core.Rank, load float64) {
	for i := range *h {
		if (*h)[i].rank == r {
			(*h)[i].load = load
			heap.Fix(h, i)
			return
		}
	}
}
