package refine

import (
	"math/rand"
	"testing"

	"temperedlb/internal/core"
	"temperedlb/internal/lb/greedy"
)

func skewed(p, hot, n int, seed int64) *core.Assignment {
	rng := rand.New(rand.NewSource(seed))
	a := core.NewAssignment(p)
	for i := 0; i < n; i++ {
		a.Add(0.2+rng.Float64(), core.Rank(rng.Intn(hot)))
	}
	return a
}

func TestRefineReachesTolerance(t *testing.T) {
	a := skewed(16, 2, 400, 1)
	plan, err := New().Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FinalImbalance > 0.06 {
		t.Errorf("final I = %g, want <= tolerance 0.05 (+slack)", plan.FinalImbalance)
	}
	plan.Apply(a)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineMovesLessThanGreedy(t *testing.T) {
	// The point of refinement: on an ALREADY mostly balanced input it
	// must barely move anything, where greedy reshuffles everything.
	rng := rand.New(rand.NewSource(2))
	a := core.NewAssignment(16)
	for i := 0; i < 800; i++ {
		a.Add(0.5+rng.Float64(), core.Rank(i%16))
	}
	// Perturb one rank upward.
	for i := 0; i < 30; i++ {
		a.Add(1.0, 3)
	}
	refinePlan, err := New().Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	greedyPlan, err := greedy.New().Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if refinePlan.MovedTasks() >= greedyPlan.MovedTasks()/4 {
		t.Errorf("refine moved %d, greedy %d: refinement not incremental",
			refinePlan.MovedTasks(), greedyPlan.MovedTasks())
	}
	if refinePlan.FinalImbalance > 0.1 {
		t.Errorf("refine left I = %g", refinePlan.FinalImbalance)
	}
}

func TestRefineBalancedInputNoMoves(t *testing.T) {
	a := core.NewAssignment(8)
	for r := 0; r < 8; r++ {
		a.Add(1, core.Rank(r))
	}
	plan, err := New().Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedTasks() != 0 {
		t.Errorf("moved %d tasks on balanced input", plan.MovedTasks())
	}
}

func TestRefineSingleHeavyTask(t *testing.T) {
	// One indivisible heavy task: nothing useful to do, must terminate
	// without thrashing.
	a := core.NewAssignment(4)
	a.Add(100, 0)
	a.Add(1, 1)
	plan, err := New().Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	// The heavy task may move to the emptiest rank once at most; it
	// cannot reduce the max.
	if plan.MovedTasks() > 1 {
		t.Errorf("thrash: %d moves", plan.MovedTasks())
	}
}

func TestRefineDoesNotMutateInput(t *testing.T) {
	a := skewed(8, 1, 100, 3)
	owners := a.Owners()
	if _, err := New().Rebalance(a); err != nil {
		t.Fatal(err)
	}
	for i, o := range a.Owners() {
		if owners[i] != o {
			t.Fatal("input mutated")
		}
	}
}

func TestRefineDeterministic(t *testing.T) {
	p1, _ := New().Rebalance(skewed(16, 2, 300, 4))
	p2, _ := New().Rebalance(skewed(16, 2, 300, 4))
	if len(p1.Moves) != len(p2.Moves) {
		t.Fatal("nondeterministic")
	}
	for i := range p1.Moves {
		if p1.Moves[i] != p2.Moves[i] {
			t.Fatal("moves differ")
		}
	}
}

func TestRefineNegativeToleranceRejected(t *testing.T) {
	s := &Strategy{Tolerance: -1}
	if _, err := s.Rebalance(skewed(4, 1, 10, 5)); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestRefineEmpty(t *testing.T) {
	a := core.NewAssignment(4)
	plan, err := New().Rebalance(a)
	if err != nil || plan.MovedTasks() != 0 {
		t.Errorf("empty: %v %v", plan, err)
	}
}

func TestRefineName(t *testing.T) {
	if New().Name() != "RefineLB" {
		t.Error("name")
	}
}

func TestRefineNeverIncreasesImbalanceProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := core.NewAssignment(2 + rng.Intn(14))
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			a.Add(rng.Float64()*3, core.Rank(rng.Intn(a.NumRanks())))
		}
		plan, err := New().Rebalance(a)
		if err != nil {
			t.Fatal(err)
		}
		if plan.FinalImbalance > plan.InitialImbalance+1e-9 {
			t.Fatalf("seed %d: I worsened %g -> %g", seed, plan.InitialImbalance, plan.FinalImbalance)
		}
	}
}
