// Package refine implements a RefineLB-style incremental balancer in
// the tradition of Charm++'s refinement strategies: instead of
// reassigning every task (GreedyLB), it only peels work off ranks above
// a tolerance of the average, placing each moved task on the currently
// least-loaded rank. Quality is slightly below LPT but migration volume
// is minimal — a useful foil for the gossip balancers' migration
// accounting.
//
// # Concurrency
//
// The strategy is stateless and deterministic and never mutates the
// assignment it is given; use one instance per concurrent run as with
// every lb.Strategy.
package refine
