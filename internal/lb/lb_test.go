package lb

import (
	"math"
	"testing"

	"temperedlb/internal/core"
)

func TestPlanFromOwnersDiff(t *testing.T) {
	a := core.NewAssignment(4)
	t0 := a.Add(2, 0)
	t1 := a.Add(3, 0)
	t2 := a.Add(1, 1)
	proposed := []core.Rank{0, 2, 3} // move t1 to 2, t2 to 3
	plan := PlanFromOwners(a, proposed, 7)
	if plan.MovedTasks() != 2 {
		t.Fatalf("moves = %d", plan.MovedTasks())
	}
	if plan.Messages != 7 {
		t.Errorf("messages = %d", plan.Messages)
	}
	if math.Abs(plan.MovedLoad-4) > 1e-12 {
		t.Errorf("MovedLoad = %g, want 4", plan.MovedLoad)
	}
	// Proposed loads: r0=2, r1=0, r2=3, r3=1; ave=1.5, I=1.
	if math.Abs(plan.FinalImbalance-1) > 1e-12 {
		t.Errorf("FinalImbalance = %g, want 1", plan.FinalImbalance)
	}
	if plan.InitialImbalance <= plan.FinalImbalance {
		t.Errorf("initial %g should exceed final %g", plan.InitialImbalance, plan.FinalImbalance)
	}
	_ = t0
	_ = t1
	_ = t2
}

func TestPlanApply(t *testing.T) {
	a := core.NewAssignment(3)
	a.Add(1, 0)
	a.Add(1, 0)
	plan := PlanFromOwners(a, []core.Rank{1, 2}, 0)
	plan.Apply(a)
	if a.RankLoad(0) != 0 || a.RankLoad(1) != 1 || a.RankLoad(2) != 1 {
		t.Errorf("apply wrong: %v", a.RankLoads())
	}
	if got := a.Imbalance(); math.Abs(got-plan.FinalImbalance) > 1e-12 {
		t.Errorf("applied I %g != plan %g", got, plan.FinalImbalance)
	}
}

func TestPlanFromOwnersNoMoves(t *testing.T) {
	a := core.NewAssignment(2)
	a.Add(1, 0)
	plan := PlanFromOwners(a, []core.Rank{0}, 0)
	if plan.MovedTasks() != 0 || plan.MovedLoad != 0 {
		t.Errorf("phantom moves: %+v", plan)
	}
	if plan.FinalImbalance != plan.InitialImbalance {
		t.Error("imbalance changed with no moves")
	}
}

func TestPlanFromOwnersLengthMismatchPanics(t *testing.T) {
	a := core.NewAssignment(2)
	a.Add(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PlanFromOwners(a, []core.Rank{0, 1}, 0)
}
