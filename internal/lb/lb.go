package lb

import (
	"fmt"

	"temperedlb/internal/core"
)

// Plan is the outcome of one rebalancing decision: the task moves to
// execute and the accounting needed to charge its cost.
type Plan struct {
	// Moves relocate tasks; applying them to the input assignment yields
	// the strategy's proposed distribution.
	Moves []core.Move
	// FinalImbalance is I of the proposed distribution.
	FinalImbalance float64
	// InitialImbalance is I of the input distribution.
	InitialImbalance float64
	// Messages is the number of algorithm messages the strategy would
	// exchange on a real machine (gossip, gather/scatter, tree traffic).
	Messages int
	// Epochs counts the strategy's sequential communication phases —
	// gossip/transfer epochs under termination detection for the
	// distributed balancers, gather/scatter rounds for the centralized
	// and tree levels for the hierarchical one. Each contributes
	// latency to the critical path regardless of message volume.
	Epochs int
	// MovedLoad is the total instrumented load of the moved tasks, a
	// proxy for migration volume.
	MovedLoad float64
}

// MovedTasks returns the number of tasks the plan relocates.
func (p *Plan) MovedTasks() int { return len(p.Moves) }

// Apply commits the plan's moves to the assignment.
func (p *Plan) Apply(a *core.Assignment) {
	for _, m := range p.Moves {
		a.Move(m.Task, m.To)
	}
}

// Strategy computes task relocations for an overdecomposed workload.
// Implementations must treat the assignment as read-only.
type Strategy interface {
	// Name identifies the strategy in tables and plots.
	Name() string
	// Rebalance proposes moves for the current instrumented loads.
	Rebalance(a *core.Assignment) (*Plan, error)
}

// Reseeder is implemented by randomized strategies whose seed the
// experiment harness refreshes before every invocation.
type Reseeder interface {
	Reseed(seed int64)
}

// planFromOwners diffs an original assignment against a proposed owner
// vector and assembles the plan (shared by the concrete strategies).
func PlanFromOwners(a *core.Assignment, proposed []core.Rank, messages int) *Plan {
	if len(proposed) != a.NumTasks() {
		panic(fmt.Sprintf("lb: owner vector length %d, want %d", len(proposed), a.NumTasks()))
	}
	plan := &Plan{
		InitialImbalance: a.Imbalance(),
		Messages:         messages,
	}
	loads := make([]float64, a.NumRanks())
	orig := a.Owners()
	for id, to := range proposed {
		tid := core.TaskID(id)
		loads[to] += a.Load(tid)
		if orig[id] != to {
			plan.Moves = append(plan.Moves, core.Move{Task: tid, From: orig[id], To: to})
			plan.MovedLoad += a.Load(tid)
		}
	}
	max, sum := 0.0, 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum > 0 {
		plan.FinalImbalance = max/(sum/float64(a.NumRanks())) - 1
	}
	return plan
}
