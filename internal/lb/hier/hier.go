package hier

import (
	"fmt"
	"sort"

	"temperedlb/internal/core"
	"temperedlb/internal/lb"
)

// Preference biases which tasks a donor subtree offers first. The
// paper's EMPIRE runs configure HierLB to preferentially migrate the
// most load-intensive tasks on the second timestep and the most
// lightweight ones on the fourth (§VI-B).
type Preference int

const (
	// PreferBestFit picks the largest task not exceeding the deficit.
	PreferBestFit Preference = iota
	// PreferHeavy picks the heaviest movable task first.
	PreferHeavy
	// PreferLight picks the lightest movable task first.
	PreferLight
)

// Strategy is the hierarchical balancer.
type Strategy struct {
	// Fanout is the tree arity (children per node); ranks are leaves.
	Fanout int
	// Preference selects the donor task ordering.
	Preference Preference
	// Tolerance stops trading once a subtree is within this relative
	// distance of its share (default 2%).
	Tolerance float64
}

// New returns a HierLB with the given fanout (must be >= 2).
func New(fanout int) *Strategy {
	return &Strategy{Fanout: fanout, Tolerance: 0.02}
}

// Name implements lb.Strategy.
func (s *Strategy) Name() string { return "HierLB" }

// Rebalance implements lb.Strategy.
func (s *Strategy) Rebalance(a *core.Assignment) (*lb.Plan, error) {
	if s.Fanout < 2 {
		return nil, fmt.Errorf("hier: fanout must be >= 2, got %d", s.Fanout)
	}
	tol := s.Tolerance
	if tol <= 0 {
		tol = 0.02
	}
	w := &worker{
		a:        a,
		pref:     s.Preference,
		fanout:   s.Fanout,
		tol:      tol,
		proposed: a.Owners(),
		loads:    a.RankLoads(),
		tasks:    make([][]core.Task, a.NumRanks()),
	}
	for r := 0; r < a.NumRanks(); r++ {
		w.tasks[r] = a.TasksOf(core.Rank(r))
	}
	w.ave = a.AveLoad()
	w.balance(0, a.NumRanks())
	// Message cost: one gather and one scatter along every tree edge,
	// plus one message per executed move. Each tree level is a
	// sequential phase up and another down — the Ω(log P) critical path
	// of hierarchical schemes (§IV-A).
	edges, levels := 0, 0
	for span := a.NumRanks(); span > 1; span = (span + s.Fanout - 1) / s.Fanout {
		edges += span
		levels++
	}
	plan := lb.PlanFromOwners(a, w.proposed, 2*edges+w.moves)
	plan.Epochs = 3 * levels
	return plan, nil
}

type worker struct {
	a        *core.Assignment
	pref     Preference
	fanout   int
	tol      float64
	ave      float64
	proposed []core.Rank
	loads    []float64
	tasks    [][]core.Task
	moves    int
}

// balance recursively equalizes the subtree covering ranks [lo, hi).
func (w *worker) balance(lo, hi int) {
	n := hi - lo
	if n <= 1 {
		return
	}
	// Split into up to fanout children of near-equal width.
	children := splitRange(lo, hi, w.fanout)
	w.tradeAmongChildren(children)
	for _, c := range children {
		w.balance(c[0], c[1])
	}
}

// tradeAmongChildren moves tasks from children above their proportional
// share to children below it.
func (w *worker) tradeAmongChildren(children [][2]int) {
	type childState struct{ lo, hi int }
	var cs []childState
	for _, c := range children {
		cs = append(cs, childState{c[0], c[1]})
	}
	childLoad := func(c childState) float64 {
		sum := 0.0
		for r := c.lo; r < c.hi; r++ {
			sum += w.loads[r]
		}
		return sum
	}
	target := func(c childState) float64 { return w.ave * float64(c.hi-c.lo) }

	guard := w.a.NumTasks() + 1
	for iter := 0; iter < guard; iter++ {
		// Locate the most-overloaded and most-underloaded children.
		overIdx, underIdx := -1, -1
		var overAmt, underAmt float64
		for i, c := range cs {
			d := childLoad(c) - target(c)
			if d > overAmt {
				overAmt, overIdx = d, i
			}
			if -d > underAmt {
				underAmt, underIdx = -d, i
			}
		}
		if overIdx < 0 || underIdx < 0 {
			return
		}
		if overAmt <= w.tol*w.ave*float64(cs[overIdx].hi-cs[overIdx].lo) {
			return
		}
		task, from, ok := w.pickDonorTask(cs[overIdx].lo, cs[overIdx].hi, overAmt, underAmt)
		if !ok {
			return
		}
		to := w.lightestRank(cs[underIdx].lo, cs[underIdx].hi)
		w.moveTask(task, from, to)
	}
}

// pickDonorTask chooses a task to move out of the subtree [lo,hi)
// holding excess overAmt toward a subtree missing underAmt. The task
// comes from the subtree's most loaded rank; the preference decides the
// ordering among candidates. A move is only offered when it does not
// overshoot: the task must not exceed the smaller of the excess and the
// deficit plus tolerance (so trading terminates).
func (w *worker) pickDonorTask(lo, hi int, overAmt, underAmt float64) (core.Task, int, bool) {
	limit := overAmt
	if underAmt < limit {
		limit = underAmt
	}
	limit *= 1 + w.tol
	better := func(cand, cur core.Task) bool {
		switch w.pref {
		case PreferHeavy:
			return cand.Load > cur.Load
		case PreferLight:
			return cand.Load < cur.Load
		default: // PreferBestFit: largest not exceeding the limit
			return cand.Load > cur.Load
		}
	}
	// Prefer the most loaded rank; fall back to the others in descending
	// load order so a rank holding only oversized tasks does not stall
	// the whole trade.
	order := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool {
		if w.loads[order[i]] != w.loads[order[j]] {
			return w.loads[order[i]] > w.loads[order[j]]
		}
		return order[i] < order[j]
	})
	for _, from := range order {
		var best core.Task
		found := false
		for _, task := range w.tasks[from] {
			if task.Load <= 0 || task.Load > limit {
				continue
			}
			if !found || better(task, best) {
				best, found = task, true
			}
		}
		if found {
			return best, from, true
		}
	}
	return core.Task{}, 0, false
}

func (w *worker) lightestRank(lo, hi int) int {
	best := lo
	for r := lo + 1; r < hi; r++ {
		if w.loads[r] < w.loads[best] {
			best = r
		}
	}
	return best
}

func (w *worker) moveTask(task core.Task, from, to int) {
	w.proposed[task.ID] = core.Rank(to)
	w.loads[from] -= task.Load
	w.loads[to] += task.Load
	w.moves++
	list := w.tasks[from]
	for i := range list {
		if list[i].ID == task.ID {
			list[i] = list[len(list)-1]
			w.tasks[from] = list[:len(list)-1]
			break
		}
	}
	w.tasks[to] = append(w.tasks[to], task)
	// Keep donor lists deterministic after the swap-delete.
	sort.Slice(w.tasks[from], func(i, j int) bool { return w.tasks[from][i].ID < w.tasks[from][j].ID })
}

// splitRange divides [lo,hi) into up to k near-equal contiguous chunks.
func splitRange(lo, hi, k int) [][2]int {
	n := hi - lo
	if k > n {
		k = n
	}
	var out [][2]int
	start := lo
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}
