// Package hier implements the hierarchical HierLB baseline (§VI-B, in
// the style of Zheng's tree-based balancers): ranks form a tree with a
// fixed fanout, subtree loads are aggregated bottom-up, and excess load
// is traded between sibling subtrees top-down so every subtree converges
// to its proportional share of the total. Its critical path grows with
// the tree height, Ω(log P), which is why the paper expects distributed
// schemes to overtake it at extreme scale.
//
// # Concurrency
//
// A Strategy is single-owner: the experiment harness mutates its
// Preference field between invocations (the paper's special steps 2 and
// 4 schedule), so concurrent runs need separate instances. It never
// mutates the assignment it is given.
package hier
