package hier

import (
	"math/rand"
	"testing"

	"temperedlb/internal/core"
)

func skewed(p, hot, n int, seed int64) *core.Assignment {
	rng := rand.New(rand.NewSource(seed))
	a := core.NewAssignment(p)
	for i := 0; i < n; i++ {
		a.Add(0.2+rng.Float64(), core.Rank(rng.Intn(hot)))
	}
	return a
}

func TestHierImprovesSkewedLoad(t *testing.T) {
	a := skewed(16, 2, 400, 1)
	plan, err := New(4).Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.InitialImbalance < 3 {
		t.Fatalf("workload not skewed enough: %g", plan.InitialImbalance)
	}
	if plan.FinalImbalance > 0.2 {
		t.Errorf("HierLB left I = %g, want < 0.2", plan.FinalImbalance)
	}
}

func TestHierManyRanks(t *testing.T) {
	a := skewed(64, 4, 3000, 2)
	plan, err := New(8).Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FinalImbalance > 0.3 {
		t.Errorf("I = %g after HierLB on 64 ranks", plan.FinalImbalance)
	}
}

func TestHierNonPowerOfTwoRanks(t *testing.T) {
	a := skewed(13, 3, 300, 3)
	plan, err := New(3).Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.FinalImbalance >= plan.InitialImbalance {
		t.Errorf("no improvement: %g -> %g", plan.InitialImbalance, plan.FinalImbalance)
	}
	plan.Apply(a)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHierRejectsBadFanout(t *testing.T) {
	a := skewed(4, 1, 10, 4)
	if _, err := New(1).Rebalance(a); err == nil {
		t.Error("fanout 1 accepted")
	}
}

func TestHierPreferencesDiffer(t *testing.T) {
	mk := func() *core.Assignment { return skewed(16, 2, 200, 5) }
	heavy := New(4)
	heavy.Preference = PreferHeavy
	light := New(4)
	light.Preference = PreferLight
	ph, _ := heavy.Rebalance(mk())
	pl, _ := light.Rebalance(mk())
	// PreferLight needs more (smaller) moves to shift the same load.
	if pl.MovedTasks() <= ph.MovedTasks() {
		t.Errorf("light moves %d, heavy moves %d: expected light > heavy",
			pl.MovedTasks(), ph.MovedTasks())
	}
}

func TestHierDeterministic(t *testing.T) {
	p1, _ := New(4).Rebalance(skewed(16, 2, 200, 6))
	p2, _ := New(4).Rebalance(skewed(16, 2, 200, 6))
	if len(p1.Moves) != len(p2.Moves) {
		t.Fatal("nondeterministic")
	}
	for i := range p1.Moves {
		if p1.Moves[i] != p2.Moves[i] {
			t.Fatal("moves differ")
		}
	}
}

func TestHierDoesNotMutateInput(t *testing.T) {
	a := skewed(8, 1, 100, 7)
	owners := a.Owners()
	New(2).Rebalance(a)
	after := a.Owners()
	for i := range owners {
		if owners[i] != after[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestHierBalancedInputFewMoves(t *testing.T) {
	a := core.NewAssignment(8)
	for r := 0; r < 8; r++ {
		for i := 0; i < 10; i++ {
			a.Add(1, core.Rank(r))
		}
	}
	plan, err := New(2).Rebalance(a)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MovedTasks() != 0 {
		t.Errorf("balanced input moved %d tasks", plan.MovedTasks())
	}
}

func TestHierSingleRank(t *testing.T) {
	a := core.NewAssignment(1)
	a.Add(5, 0)
	plan, err := New(2).Rebalance(a)
	if err != nil || plan.MovedTasks() != 0 {
		t.Errorf("single rank: %+v %v", plan, err)
	}
}

func TestHierMessagesPositive(t *testing.T) {
	a := skewed(16, 2, 100, 8)
	plan, _ := New(4).Rebalance(a)
	if plan.Messages <= 0 {
		t.Errorf("messages = %d", plan.Messages)
	}
}

func TestSplitRange(t *testing.T) {
	cases := []struct {
		lo, hi, k int
		want      int
	}{
		{0, 10, 2, 2}, {0, 10, 3, 3}, {0, 3, 8, 3}, {5, 6, 4, 1},
	}
	for _, c := range cases {
		got := splitRange(c.lo, c.hi, c.k)
		if len(got) != c.want {
			t.Errorf("splitRange(%d,%d,%d) = %v", c.lo, c.hi, c.k, got)
		}
		// Chunks must tile the range exactly.
		at := c.lo
		for _, ch := range got {
			if ch[0] != at || ch[1] <= ch[0] {
				t.Errorf("bad chunk %v in %v", ch, got)
			}
			at = ch[1]
		}
		if at != c.hi {
			t.Errorf("chunks do not cover range: %v", got)
		}
	}
}
