// Package lb defines the load balancing strategy interface shared by
// the centralized, hierarchical and distributed balancers, plus the
// cost accounting (messages, epochs, moved load) the experiment harness
// charges for running them — the inputs to the t_lb column of Fig. 3.
//
// # Concurrency
//
// Strategy implementations must not mutate the Assignment they are
// given; they return a Plan of proposed moves instead. A Strategy value
// is single-owner (randomized strategies carry seeded RNG state), so
// concurrent experiment runs must each construct their own instance.
// Plan values are plain data and safe to read from anywhere once
// returned.
package lb
