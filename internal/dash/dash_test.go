package dash

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"temperedlb/internal/amt"
	"temperedlb/internal/core"
	"temperedlb/internal/lb/tempered"
	"temperedlb/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("%s mismatch:\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// fixtureFrames is a synthetic three-frame window: a skewed start, a
// partial improvement, and a near-balanced finish, with cumulative
// counters and timestamps set so the rates panel divides by one second.
func fixtureFrames() []obs.Snapshot {
	mk := func(seq int64, timeMs float64, phase string, trial, iter int, loads []float64) obs.Snapshot {
		f := obs.Snapshot{
			Seq: seq, TimeMs: timeMs, Source: "distributed", Phase: phase,
			Trial: trial, Iteration: iter, Loads: loads,
			GossipMsgs: 40 * seq, GossipEntries: 200 * seq, TransferMsgs: 10 * seq,
			Msgs: 100 * seq, Bytes: 4096 * seq,
			Dropped: 2 * seq, Duplicated: seq, Retries: 3 * seq, DupDrops: seq,
			Collectives: 5 * seq, Epochs: 2 * seq, IterMs: 12.5,
		}
		f.FillLoadStats()
		return f
	}
	return []obs.Snapshot{
		mk(1, 0, "init", 0, 0, []float64{8, 0, 0, 0, 4, 0, 0, 0}),
		mk(2, 500, "iter", 1, 1, []float64{5, 1, 1, 1, 2, 1, 1, 0}),
		mk(3, 1000, "iter", 1, 2, []float64{2, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1}),
	}
}

// TestRenderGolden pins the full layout, Unicode and ASCII, at a fixed
// width.
func TestRenderGolden(t *testing.T) {
	for _, tc := range []struct {
		name  string
		ascii bool
	}{{"render_unicode.golden", false}, {"render_ascii.golden", true}} {
		lines := Render(Model{Frames: fixtureFrames(), Width: 72, ASCII: tc.ascii})
		checkGolden(t, tc.name, []byte(strings.Join(lines, "\n")+"\n"))
	}
}

// TestRenderEdgeCases checks the degenerate shapes a live poller hits:
// no frames yet, a single frame (totals instead of rates), a missing
// load vector, and rank counts wider than the terminal.
func TestRenderEdgeCases(t *testing.T) {
	if got := Render(Model{}); len(got) != 1 || !strings.Contains(got[0], "waiting") {
		t.Errorf("empty model render = %q", got)
	}

	one := fixtureFrames()[:1]
	lines := Render(Model{Frames: one, Width: 60})
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	if !strings.Contains(lines[4], "total") {
		t.Errorf("single frame should report totals, got %q", lines[4])
	}
	for i, l := range lines {
		if n := len([]rune(l)); n > 60 {
			t.Errorf("line %d is %d runes wide: %q", i, n, l)
		}
	}

	noLoads := one[0]
	noLoads.Loads = nil
	if lines := Render(Model{Frames: []obs.Snapshot{noLoads}}); !strings.Contains(lines[2], "no load vector") {
		t.Errorf("missing loads not flagged: %q", lines[2])
	}

	wide := one[0]
	wide.Loads = make([]float64, 1024)
	for i := range wide.Loads {
		wide.Loads[i] = float64(i % 7)
	}
	wide.FillLoadStats()
	lines = Render(Model{Frames: []obs.Snapshot{wide}, Width: 40})
	if n := len([]rune(lines[2])); n > 40 {
		t.Errorf("1024 ranks not folded to width: %d runes", n)
	}
	// Bucketing is by max: the hottest value must survive folding.
	if !strings.ContainsRune(lines[2], '█') {
		t.Errorf("hot rank lost by folding: %q", lines[2])
	}
}

// TestObsSmoke is the end-to-end smoke path behind `make obs-smoke`: a
// short distributed run on the real runtime records frames through the
// stream, the frames are normalized (wall-clock and scheduling-
// dependent fields zeroed) and replayed through the renderer, and the
// resulting layout is pinned as a golden. It fails if the protocol's
// frame content, the frame schema, or the layout drifts.
func TestObsSmoke(t *testing.T) {
	stream := obs.NewStream(obs.DefaultStreamCapacity)
	rt := amt.New(8)
	rt.SetStream(stream)
	h := tempered.RegisterHandlers(rt, 100)
	cfg := core.Tempered()
	// Rounds must stay 1: multi-round gossip forwarding depends on
	// arrival timing, which would make GossipMsgs scheduling-dependent
	// and the golden flaky (same determinism boundary as the chaos
	// identity tests). Dyadic loads keep the FP statistics exact.
	cfg.Trials, cfg.Iterations, cfg.Rounds = 2, 2, 1
	cfg.Seed = 42

	var mu sync.Mutex
	rt.Run(func(rc *amt.Context) {
		loads := make(map[amt.ObjectID]float64)
		if rc.Rank() < 2 {
			for i := 0; i < 16; i++ {
				l := float64(i%8+1) / 8
				id := rc.CreateObject(l)
				loads[id] = l
			}
		}
		rc.Barrier()
		_, err := tempered.RunDistributed(rc, h, cfg, loads)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			t.Errorf("rank %d: %v", rc.Rank(), err)
		}
	})

	frames := stream.Frames()
	want := 1 + cfg.Trials*cfg.Iterations + 1
	if len(frames) != want {
		t.Fatalf("recorded %d frames, want %d", len(frames), want)
	}
	// Zero the fields that depend on wall clock or goroutine scheduling
	// (timing, transport volume, termination-token rounds ride Msgs);
	// everything else is bit-deterministic and safe to pin.
	for i := range frames {
		frames[i].TimeMs = 0
		frames[i].IterMs = 0
		frames[i].Msgs, frames[i].Bytes = 0, 0
	}
	lines := Render(Model{Frames: frames, Width: 72})
	checkGolden(t, "obs_smoke.golden", []byte(strings.Join(lines, "\n")+"\n"))
}
