// Package dash renders observability stream frames as a fixed-width
// text dashboard — the core of cmd/lbtop. Render is a pure function of
// its model: no terminal, no clock, no color state, so layouts are
// golden-testable and replayable from recorded frame files.
package dash

import (
	"fmt"
	"strings"

	"temperedlb/internal/obs"
)

// Model is everything a render needs: the frame window (chronological,
// last frame is the current state), the target line width, and whether
// to restrict the ramps to ASCII.
type Model struct {
	Frames []obs.Snapshot
	Width  int
	ASCII  bool
}

// DefaultWidth is used when the model leaves Width zero.
const DefaultWidth = 80

// Ramps from empty to full, one rune per intensity level.
var (
	unicodeRamp = []rune("▁▂▃▄▅▆▇█")
	asciiRamp   = []rune(".:-=+*#%@")
)

// Render lays the model out as one dashboard page. Lines are plain text
// (no ANSI escapes) and at most m.Width runes wide; the caller owns
// cursor movement and clearing.
func Render(m Model) []string {
	width := m.Width
	if width <= 0 {
		width = DefaultWidth
	}
	ramp := unicodeRamp
	if m.ASCII {
		ramp = asciiRamp
	}
	if len(m.Frames) == 0 {
		return []string{"lbtop — waiting for frames"}
	}
	cur := m.Frames[len(m.Frames)-1]

	lines := []string{
		clip(headerLine(cur), width),
		clip(loadLine(cur), width),
		clip("ranks "+heatline(cur.Loads, cur.MaxLoad, width-6, ramp), width),
		clip(imbalanceLine(m.Frames, width, ramp), width),
		clip(rateLine(m.Frames), width),
		clip(faultLine(cur), width),
	}
	return lines
}

func headerLine(f obs.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lbtop — %s", orDash(f.Source))
	fmt.Fprintf(&b, "  phase %s", orDash(f.Phase))
	switch {
	case f.Phase == "step":
		fmt.Fprintf(&b, "  step %d", f.Step)
	case f.Trial > 0:
		fmt.Fprintf(&b, "  trial %d  iter %d", f.Trial, f.Iteration)
	}
	fmt.Fprintf(&b, "  ranks %d  seq %d", f.Ranks, f.Seq)
	return b.String()
}

func loadLine(f obs.Snapshot) string {
	return fmt.Sprintf("load  max %s  avg %s  min %s  sd %s  I %.3f",
		num(f.MaxLoad), num(f.AvgLoad), num(f.MinLoad), num(f.StdDev), f.Imbalance)
}

// heatline maps the per-rank load vector onto one row of intensity
// runes scaled by the frame maximum. Wider-than-width vectors are
// bucketed by maximum — a hot rank must stay visible after folding.
func heatline(loads []float64, max float64, width int, ramp []rune) string {
	if len(loads) == 0 {
		return "(no load vector)"
	}
	if width < 1 {
		width = 1
	}
	cells := loads
	if len(loads) > width {
		cells = make([]float64, width)
		for i := range cells {
			lo, hi := i*len(loads)/width, (i+1)*len(loads)/width
			if hi == lo {
				hi = lo + 1
			}
			m := loads[lo]
			for _, l := range loads[lo+1 : hi] {
				if l > m {
					m = l
				}
			}
			cells[i] = m
		}
	}
	var b strings.Builder
	for _, l := range cells {
		b.WriteRune(level(l, max, ramp))
	}
	return b.String()
}

// imbalanceLine draws I across the frame window as a sparkline scaled
// by the window maximum, annotated with the current value.
func imbalanceLine(frames []obs.Snapshot, width int, ramp []rune) string {
	cur := frames[len(frames)-1]
	tail := fmt.Sprintf(" %.3f", cur.Imbalance)
	room := width - 6 - len(tail)
	if room < 1 {
		room = 1
	}
	if len(frames) > room {
		frames = frames[len(frames)-room:]
	}
	max := 0.0
	for _, f := range frames {
		if f.Imbalance > max {
			max = f.Imbalance
		}
	}
	var b strings.Builder
	b.WriteString("I     ")
	for _, f := range frames {
		b.WriteRune(level(f.Imbalance, max, ramp))
	}
	b.WriteString(tail)
	return b.String()
}

// rateLine differences the cumulative counters across the window and
// divides by the window's wall-clock span. A single frame (or a zero
// span, as after volatile-field normalization) reports totals instead.
func rateLine(frames []obs.Snapshot) string {
	first, last := frames[0], frames[len(frames)-1]
	dt := (last.TimeMs - first.TimeMs) / 1e3
	if len(frames) < 2 || dt <= 0 {
		return fmt.Sprintf("total gossip %d  xfer %d  migr %d  msgs %d  bytes %d",
			last.GossipMsgs, last.TransferMsgs, last.Migrations, last.Msgs, last.Bytes)
	}
	rate := func(a, b int64) string {
		return num(float64(b-a) / dt)
	}
	return fmt.Sprintf("rates gossip %s/s  xfer %s/s  msgs %s/s  %s B/s  iter %.1fms",
		rate(first.GossipMsgs, last.GossipMsgs),
		rate(first.TransferMsgs, last.TransferMsgs),
		rate(first.Msgs, last.Msgs),
		rate(first.Bytes, last.Bytes),
		last.IterMs)
}

func faultLine(f obs.Snapshot) string {
	return fmt.Sprintf("fault drop %d  dup %d  retry %d  dupdrop %d  coll %d  epochs %d",
		f.Dropped, f.Duplicated, f.Retries, f.DupDrops, f.Collectives, f.Epochs)
}

// level picks the ramp rune for value scaled against max; max <= 0
// renders the lowest level.
func level(v, max float64, ramp []rune) rune {
	if max <= 0 || v <= 0 {
		return ramp[0]
	}
	i := int(v / max * float64(len(ramp)))
	if i >= len(ramp) {
		i = len(ramp) - 1
	}
	return ramp[i]
}

// num formats a value compactly: integers without decimals, large
// values with SI-style suffixes, small ones with two decimals.
func num(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// clip truncates a line to width runes.
func clip(s string, width int) string {
	r := []rune(s)
	if len(r) <= width {
		return s
	}
	return string(r[:width])
}
