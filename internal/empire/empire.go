package empire

import (
	"fmt"
	"math/rand"

	"temperedlb/internal/mesh"
	"temperedlb/internal/particle"
)

// Config describes one EMPIRE-like run.
type Config struct {
	// RanksX, RanksY define the SPMD rank grid.
	RanksX, RanksY int
	// CellsPerRankX, CellsPerRankY define each rank's subdomain.
	CellsPerRankX, CellsPerRankY int
	// ODX, ODY define the per-rank coloring; ODX·ODY is the
	// overdecomposition factor (24 in the paper).
	ODX, ODY int

	// Steps is the number of timesteps; Dt the timestep size.
	Steps int
	Dt    float64

	// LBFirstStep and LBPeriod schedule load balancing: at LBFirstStep
	// and then every LBPeriod steps (the paper uses 2 and 100).
	LBFirstStep int
	LBPeriod    int

	// NumSpots filament spots of radius SpotRadius are seeded with
	// SpotInitial cold particles each (velocity spread SpotVth) and fed
	// InjectPerStep particles per step in total, round-robin. Spot
	// centers drift with speed ~SpotDrift and reflect at the walls.
	NumSpots      int
	SpotRadius    float64
	SpotVth       float64
	SpotInitial   int
	SpotDrift     float64
	InjectPerStep int

	// BackgroundInit particles seed the bulk plasma and
	// BackgroundPerStep more enter uniformly each step, with thermal
	// spread Vth.
	BackgroundInit    int
	BackgroundPerStep int
	Vth               float64

	// Field is the (weak) global field the particles feel.
	Field particle.FocusingField

	// Cost model (virtual seconds):
	// WorkPerParticle and WorkPerCell price the particle update;
	// NonParticlePerCell prices the balanced field solve;
	// AMTOverhead is the fractional tasking overhead of Fig. 2 (~0.23);
	// DiagCost is charged to every configuration on the LB interval
	// (the paper's physics diagnostics share that interval).
	WorkPerParticle    float64
	WorkPerCell        float64
	NonParticlePerCell float64
	AMTOverhead        float64
	DiagCost           float64

	Seed int64
}

// Default returns the paper-scale configuration: 400 ranks (20×20),
// overdecomposition 24 (6×4), 1500 timesteps, LB at step 2 then every
// 100 steps.
func Default() Config {
	return Config{
		RanksX: 20, RanksY: 20,
		CellsPerRankX: 12, CellsPerRankY: 12,
		ODX: 6, ODY: 4,
		Steps: 1500, Dt: 1.0 / 1500,
		LBFirstStep: 2, LBPeriod: 100,

		NumSpots:      20,
		SpotRadius:    0.011,
		SpotVth:       0.004,
		SpotInitial:   200,
		SpotDrift:     0.10,
		InjectPerStep: 30,

		BackgroundInit:    2000,
		BackgroundPerStep: 130,
		Vth:               0.06,

		Field: particle.FocusingField{Strength: 0.02, CX0: 0.5, CY0: 0.5},

		WorkPerParticle:    1.30e-3,
		WorkPerCell:        1.0e-6,
		NonParticlePerCell: 5.95e-3,
		AMTOverhead:        0.23,
		DiagCost:           0.35,
		Seed:               1,
	}
}

// Medium returns a reduced configuration (64 ranks, 300 steps) that
// still exhibits every qualitative effect of the paper-scale run --
// hot colors above the average rank load, the GrapevineLB quality gap,
// the t_lb ordering -- while finishing in about a second. Tests and
// benchmarks use it.
func Medium() Config {
	cfg := Default()
	cfg.RanksX, cfg.RanksY = 8, 8
	cfg.Steps = 300
	cfg.Dt = 1.0 / 300
	cfg.LBFirstStep = 2
	cfg.LBPeriod = 50
	cfg.NumSpots = 8
	cfg.SpotRadius = 0.02
	cfg.SpotInitial = 180
	cfg.SpotDrift = 0.10
	cfg.InjectPerStep = 40
	cfg.BackgroundInit = 1200
	cfg.BackgroundPerStep = 55
	cfg.WorkPerParticle = 4.4e-3
	cfg.NonParticlePerCell = 1.5e-2
	return cfg
}

// Small returns a test-scale configuration that keeps the qualitative
// shape (tight growing hot spots over a bulk background, slow drift)
// while running in well under a second.
func Small() Config {
	cfg := Default()
	cfg.RanksX, cfg.RanksY = 4, 4
	cfg.CellsPerRankX, cfg.CellsPerRankY = 6, 6
	cfg.ODX, cfg.ODY = 3, 2
	cfg.Steps = 120
	cfg.Dt = 1.0 / 120
	cfg.LBFirstStep = 2
	cfg.LBPeriod = 20
	cfg.NumSpots = 3
	cfg.SpotRadius = 0.06
	cfg.SpotInitial = 120
	cfg.InjectPerStep = 18
	cfg.BackgroundInit = 300
	cfg.BackgroundPerStep = 25
	// Rescale the cost constants so the small run keeps the paper's
	// t_p : t_n ratio (~2.7:1 for SPMD).
	cfg.NonParticlePerCell = 4.0e-3
	cfg.WorkPerParticle = 2.0e-3
	return cfg
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Steps < 1:
		return fmt.Errorf("empire: Steps must be >= 1")
	case c.Dt <= 0:
		return fmt.Errorf("empire: Dt must be > 0")
	case c.LBPeriod < 1:
		return fmt.Errorf("empire: LBPeriod must be >= 1")
	case c.AMTOverhead < 0:
		return fmt.Errorf("empire: AMTOverhead must be >= 0")
	case c.NumSpots < 0:
		return fmt.Errorf("empire: NumSpots must be >= 0")
	}
	return nil
}

// NumRanks returns the rank count.
func (c Config) NumRanks() int { return c.RanksX * c.RanksY }

// spot is one drifting filament.
type spot struct {
	x, y, vx, vy float64
}

// App is an instantiated EMPIRE-like run: mesh, coloring, and particle
// population. Calling Step advances the physics one timestep and
// returns the per-color particle counts, from which color loads are
// priced.
type App struct {
	Cfg      Config
	Coloring *mesh.Coloring
	sys      *particle.System
	spots    []spot
	step     int
	injected int // round-robin cursor over spots
}

// NewApp builds the mesh hierarchy and seeds the initial plasma.
func NewApp(cfg Config) (*App, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := mesh.NewGrid(cfg.RanksX*cfg.CellsPerRankX, cfg.RanksY*cfg.CellsPerRankY)
	if err != nil {
		return nil, err
	}
	part, err := mesh.NewPartition(g, cfg.RanksX, cfg.RanksY)
	if err != nil {
		return nil, err
	}
	col, err := mesh.NewColoring(part, cfg.ODX, cfg.ODY)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5b07))
	app := &App{Cfg: cfg, Coloring: col, sys: particle.NewSystem(cfg.Seed)}
	app.sys.InjectUniform(cfg.BackgroundInit, cfg.Vth)
	for i := 0; i < cfg.NumSpots; i++ {
		s := spot{
			// Keep spots off the walls so reflection does not distort
			// the initial census.
			x:  0.1 + 0.8*rng.Float64(),
			y:  0.1 + 0.8*rng.Float64(),
			vx: rng.NormFloat64() * cfg.SpotDrift,
			vy: rng.NormFloat64() * cfg.SpotDrift,
		}
		app.spots = append(app.spots, s)
		app.sys.InjectDisk(cfg.SpotInitial, s.x, s.y, cfg.SpotRadius, cfg.SpotVth)
	}
	return app, nil
}

// StepNumber returns the number of completed timesteps.
func (a *App) StepNumber() int { return a.step }

// NumParticles returns the current particle count.
func (a *App) NumParticles() int { return a.sys.Len() }

// SpotCenters exposes the filament centers for tests and tooling.
func (a *App) SpotCenters() [][2]float64 {
	out := make([][2]float64, len(a.spots))
	for i, s := range a.spots {
		out[i] = [2]float64{s.x, s.y}
	}
	return out
}

// Step advances the particles and spots one timestep (push + injection)
// and returns the per-color particle counts.
func (a *App) Step() []int {
	cfg := &a.Cfg
	a.sys.Step(cfg.Dt, cfg.Field)
	// Drift the filaments, reflecting off the walls, and feed them
	// round-robin.
	for i := range a.spots {
		s := &a.spots[i]
		s.x += s.vx * cfg.Dt
		s.y += s.vy * cfg.Dt
		reflectSpot(&s.x, &s.vx)
		reflectSpot(&s.y, &s.vy)
	}
	if cfg.NumSpots > 0 {
		for i := 0; i < cfg.InjectPerStep; i++ {
			s := &a.spots[a.injected%len(a.spots)]
			a.injected++
			a.sys.InjectDisk(1, s.x, s.y, cfg.SpotRadius, cfg.SpotVth)
		}
	}
	a.sys.InjectUniform(cfg.BackgroundPerStep, cfg.Vth)
	a.step++
	return a.sys.CountPer(a.Coloring.NumColors(), func(x, y float64) int {
		return int(a.Coloring.ColorOfPoint(x, y))
	})
}

func reflectSpot(x, v *float64) {
	if *x < 0.05 {
		*x = 0.1 - *x
		*v = -*v
	}
	if *x > 0.95 {
		*x = 1.9 - *x
		*v = -*v
	}
}

// ColorLoads prices per-color particle counts into particle-update work
// (virtual seconds), the instrumented task loads the balancers see.
func (a *App) ColorLoads(counts []int) []float64 {
	loads := make([]float64, len(counts))
	perColorCells := float64(a.Coloring.CellsPerColor())
	for i, n := range counts {
		loads[i] = a.Cfg.WorkPerParticle*float64(n) + a.Cfg.WorkPerCell*perColorCells
	}
	return loads
}

// NonParticleTimePerStep is the balanced field-solve cost every rank
// pays each step.
func (a *App) NonParticleTimePerStep() float64 {
	return a.Cfg.NonParticlePerCell * float64(a.Coloring.Part.CellsPerRank())
}

// LBDue reports whether the schedule calls for load balancing after the
// given (1-based) step.
func (c Config) LBDue(step int) bool {
	if step == c.LBFirstStep {
		return true
	}
	return step > c.LBFirstStep && step%c.LBPeriod == 0
}
