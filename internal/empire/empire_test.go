package empire

import (
	"testing"

	"temperedlb/internal/mesh"
	"temperedlb/internal/stats"
)

func TestDefaultMatchesPaperScale(t *testing.T) {
	cfg := Default()
	if cfg.NumRanks() != 400 {
		t.Errorf("ranks = %d, want 400", cfg.NumRanks())
	}
	if cfg.ODX*cfg.ODY != 24 {
		t.Errorf("overdecomposition = %d, want 24", cfg.ODX*cfg.ODY)
	}
	if cfg.Steps != 1500 || cfg.LBFirstStep != 2 || cfg.LBPeriod != 100 {
		t.Errorf("schedule drifted: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallValidates(t *testing.T) {
	if err := Small().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.LBPeriod = 0 },
		func(c *Config) { c.AMTOverhead = -1 },
		func(c *Config) { c.NumSpots = -1 },
	}
	for i, mod := range mods {
		cfg := Small()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewAppRejectsIndivisibleMesh(t *testing.T) {
	cfg := Small()
	cfg.ODX = 5 // 6 cells per rank not divisible by 5
	if _, err := NewApp(cfg); err == nil {
		t.Error("indivisible coloring accepted")
	}
}

func TestLBDueSchedule(t *testing.T) {
	cfg := Default() // first at 2, then every 100
	wantDue := map[int]bool{2: true, 100: true, 200: true, 1500: true}
	wantNot := []int{1, 3, 50, 99, 101, 150}
	for s, want := range wantDue {
		if cfg.LBDue(s) != want {
			t.Errorf("LBDue(%d) != %v", s, want)
		}
	}
	for _, s := range wantNot {
		if cfg.LBDue(s) {
			t.Errorf("LBDue(%d) unexpectedly true", s)
		}
	}
}

func TestStepCountsSumToPopulation(t *testing.T) {
	app, err := NewApp(Small())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		counts := app.Step()
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != app.NumParticles() {
			t.Fatalf("step %d: counts sum %d != population %d", s, total, app.NumParticles())
		}
	}
	if app.StepNumber() != 10 {
		t.Errorf("StepNumber = %d", app.StepNumber())
	}
}

func TestPopulationGrowsByInjection(t *testing.T) {
	cfg := Small()
	app, _ := NewApp(cfg)
	before := app.NumParticles()
	app.Step()
	want := before + cfg.InjectPerStep + cfg.BackgroundPerStep
	if app.NumParticles() != want {
		t.Errorf("population %d, want %d", app.NumParticles(), want)
	}
}

func TestWorkloadIsImbalanced(t *testing.T) {
	app, err := NewApp(Small())
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for s := 0; s < 30; s++ {
		counts = app.Step()
	}
	loads := app.ColorLoads(counts)
	// Aggregate to rank loads under the home mapping.
	rankLoads := make([]float64, app.Cfg.NumRanks())
	for c, l := range loads {
		rankLoads[app.Coloring.HomeRank(mesh.ColorID(c))] += l
	}
	if i := stats.Imbalance(rankLoads); i < 1 {
		t.Errorf("workload imbalance only %g; spots not concentrated enough", i)
	}
}

// TestHotColorsExceedAverageRankLoad checks the mechanism behind the
// GrapevineLB quality gap: some colors must individually outweigh the
// average rank load, making them unplaceable under the original
// criterion.
func TestHotColorsExceedAverageRankLoad(t *testing.T) {
	app, err := NewApp(Small())
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for s := 0; s < 60; s++ {
		counts = app.Step()
	}
	loads := app.ColorLoads(counts)
	total, maxColor := 0.0, 0.0
	for _, l := range loads {
		total += l
		if l > maxColor {
			maxColor = l
		}
	}
	ave := total / float64(app.Cfg.NumRanks())
	if maxColor <= ave {
		t.Errorf("max color %g <= ave rank load %g; original criterion would not be blocked", maxColor, ave)
	}
	if maxColor > 4*ave {
		t.Errorf("max color %g > 4x ave %g; even the relaxed criterion could not spread it well", maxColor, ave)
	}
}

func TestSpotsDriftOverTime(t *testing.T) {
	app, err := NewApp(Small())
	if err != nil {
		t.Fatal(err)
	}
	before := app.SpotCenters()
	for s := 0; s < 100; s++ {
		app.Step()
	}
	after := app.SpotCenters()
	moved := false
	for i := range before {
		dx := after[i][0] - before[i][0]
		dy := after[i][1] - before[i][1]
		if dx*dx+dy*dy > 1e-8 {
			moved = true
		}
		if after[i][0] < 0 || after[i][0] > 1 || after[i][1] < 0 || after[i][1] > 1 {
			t.Fatalf("spot %d escaped: %v", i, after[i])
		}
	}
	if !moved {
		t.Error("no spot drifted")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a1, _ := NewApp(Small())
	a2, _ := NewApp(Small())
	for s := 0; s < 5; s++ {
		c1, c2 := a1.Step(), a2.Step()
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatal("same seed diverged")
			}
		}
	}
}

func TestNonParticleTimeBalanced(t *testing.T) {
	app, _ := NewApp(Small())
	got := app.NonParticleTimePerStep()
	want := app.Cfg.NonParticlePerCell * float64(app.Cfg.CellsPerRankX*app.Cfg.CellsPerRankY)
	if got != want {
		t.Errorf("NonParticleTimePerStep = %g, want %g", got, want)
	}
}

func TestMediumValidatesAndScales(t *testing.T) {
	cfg := Medium()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumRanks() != 64 || cfg.Steps != 300 {
		t.Errorf("Medium dims drifted: %d ranks %d steps", cfg.NumRanks(), cfg.Steps)
	}
	if _, err := NewApp(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMediumExhibitsHeavyColors(t *testing.T) {
	app, err := NewApp(Medium())
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for s := 0; s < 120; s++ {
		counts = app.Step()
	}
	loads := app.ColorLoads(counts)
	total, maxColor := 0.0, 0.0
	for _, l := range loads {
		total += l
		if l > maxColor {
			maxColor = l
		}
	}
	ave := total / float64(app.Cfg.NumRanks())
	if maxColor <= ave {
		t.Errorf("Medium lost the heavy-color property: max %g <= ave %g", maxColor, ave)
	}
}

func TestSpotReflection(t *testing.T) {
	x, v := 0.02, -1.0
	reflectSpot(&x, &v)
	if x < 0.05 || v != 1.0 {
		t.Errorf("low reflection: x=%g v=%g", x, v)
	}
	x, v = 0.98, 1.0
	reflectSpot(&x, &v)
	if x > 0.95 || v != -1.0 {
		t.Errorf("high reflection: x=%g v=%g", x, v)
	}
	// In-range positions untouched.
	x, v = 0.5, 1.0
	reflectSpot(&x, &v)
	if x != 0.5 || v != 1.0 {
		t.Error("mid-range modified")
	}
}

func TestZeroSpotsStillRuns(t *testing.T) {
	cfg := Small()
	cfg.NumSpots = 0
	cfg.SpotInitial = 0
	cfg.InjectPerStep = 0
	app, err := NewApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := app.Step()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != app.NumParticles() {
		t.Error("census mismatch with zero spots")
	}
}
