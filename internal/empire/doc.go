// Package empire is the EMPIRE-like plasma PIC application of the
// paper's evaluation (§VI): a finite-element-style field solve whose
// cost is static and balanced across the SPMD partition, plus a
// particle-in-cell update whose cost follows the particles — spatially
// concentrated, drifting, and growing over the run (the B-Dot problem's
// time-varying imbalance). The application produces, per timestep, the
// per-color particle work that the load balancers operate on; the sim
// package turns those loads into virtual execution time for the five
// configurations of Fig. 2.
//
// The plasma has two populations. A uniform background carries most of
// the mass and grows steadily, which is why the relative imbalance
// decays over the run even though the hot spots keep growing (Fig. 4c's
// I ≈ 7 → 3.3 trajectory). On top of it, a set of cold, tight filament
// spots drift slowly across the mesh; each spot spans only a few color
// blocks, making those colors individually heavier than the average
// rank load. Such colors can never be placed by the original
// GrapevineLB criterion (l_x + LOAD(o) < l_ave fails for every
// recipient) — the §V-B pathology realized at application scale — while
// the relaxed TemperedLB criterion spreads them one per rank, which is
// precisely the quality gap Fig. 2 shows.
//
// # Concurrency
//
// An App is single-owner: one goroutine steps the physics. The per-step
// color-load slice it produces is safe to share read-only with any
// number of consumers — the sim package fans its trackers over exactly
// that slice.
package empire
