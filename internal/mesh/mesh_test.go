package mesh

import (
	"math/rand"
	"testing"

	"temperedlb/internal/core"
)

func mustHierarchy(t *testing.T, nx, ny, rx, ry, odx, ody int) *Coloring {
	t.Helper()
	g, err := NewGrid(nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition(g, rx, ry)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewColoring(p, odx, ody)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGridCellOf(t *testing.T) {
	g, _ := NewGrid(10, 5)
	cases := []struct {
		x, y   float64
		cx, cy int
	}{
		{0, 0, 0, 0},
		{0.05, 0.1, 0, 0},
		{0.15, 0.25, 1, 1},
		{0.999, 0.999, 9, 4},
		{1.0, 1.0, 9, 4},   // clamped
		{-0.1, -0.1, 0, 0}, // clamped
	}
	for _, c := range cases {
		cx, cy := g.CellOf(c.x, c.y)
		if cx != c.cx || cy != c.cy {
			t.Errorf("CellOf(%g,%g) = (%d,%d), want (%d,%d)", c.x, c.y, cx, cy, c.cx, c.cy)
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5); err == nil {
		t.Error("zero-width grid accepted")
	}
	g, _ := NewGrid(4, 4)
	if g.NumCells() != 16 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
}

func TestPartitionDivisibility(t *testing.T) {
	g, _ := NewGrid(10, 10)
	if _, err := NewPartition(g, 3, 2); err == nil {
		t.Error("indivisible partition accepted")
	}
	if _, err := NewPartition(g, 0, 2); err == nil {
		t.Error("zero rank grid accepted")
	}
	p, err := NewPartition(g, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRanks() != 10 || p.CellsPerRank() != 10 {
		t.Errorf("partition dims wrong: %d ranks, %d cells", p.NumRanks(), p.CellsPerRank())
	}
}

func TestRankOfCellLayout(t *testing.T) {
	g, _ := NewGrid(4, 4)
	p, _ := NewPartition(g, 2, 2)
	// Ranks: row-major over the 2x2 rank grid.
	if p.RankOfCell(0, 0) != 0 || p.RankOfCell(3, 0) != 1 ||
		p.RankOfCell(0, 3) != 2 || p.RankOfCell(3, 3) != 3 {
		t.Error("rank layout wrong")
	}
}

func TestColoringValidation(t *testing.T) {
	g, _ := NewGrid(12, 12)
	p, _ := NewPartition(g, 2, 2) // 6x6 cells per rank
	if _, err := NewColoring(p, 4, 2); err == nil {
		t.Error("indivisible coloring accepted")
	}
	if _, err := NewColoring(p, 0, 2); err == nil {
		t.Error("zero coloring accepted")
	}
	c, err := NewColoring(p, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Overdecomposition() != 6 || c.NumColors() != 24 || c.CellsPerColor() != 6 {
		t.Errorf("coloring dims wrong: OD=%d colors=%d cells=%d",
			c.Overdecomposition(), c.NumColors(), c.CellsPerColor())
	}
}

// TestColorsPartitionCells is the key invariant: every cell belongs to
// exactly one color, colors tile rank subdomains, and each color has
// exactly CellsPerColor cells.
func TestColorsPartitionCells(t *testing.T) {
	c := mustHierarchy(t, 24, 16, 4, 2, 3, 4)
	counts := make(map[ColorID]int)
	for cy := 0; cy < 16; cy++ {
		for cx := 0; cx < 24; cx++ {
			id := c.ColorOfCell(cx, cy)
			if id < 0 || int(id) >= c.NumColors() {
				t.Fatalf("color %d out of range", id)
			}
			counts[id]++
			// The color's home rank must be the cell's rank.
			if c.HomeRank(id) != c.Part.RankOfCell(cx, cy) {
				t.Fatalf("cell (%d,%d): color %d home %d != cell rank %d",
					cx, cy, id, c.HomeRank(id), c.Part.RankOfCell(cx, cy))
			}
		}
	}
	if len(counts) != c.NumColors() {
		t.Fatalf("%d distinct colors, want %d", len(counts), c.NumColors())
	}
	for id, n := range counts {
		if n != c.CellsPerColor() {
			t.Errorf("color %d has %d cells, want %d", id, n, c.CellsPerColor())
		}
	}
}

func TestHomeRankRange(t *testing.T) {
	c := mustHierarchy(t, 24, 16, 4, 2, 3, 4)
	for id := 0; id < c.NumColors(); id++ {
		h := c.HomeRank(ColorID(id))
		if h < 0 || int(h) >= c.Part.NumRanks() {
			t.Fatalf("color %d home %d out of range", id, h)
		}
	}
	// Every rank hosts exactly OD colors.
	perRank := make(map[core.Rank]int)
	for id := 0; id < c.NumColors(); id++ {
		perRank[c.HomeRank(ColorID(id))]++
	}
	for r, n := range perRank {
		if n != c.Overdecomposition() {
			t.Errorf("rank %d hosts %d colors, want %d", r, n, c.Overdecomposition())
		}
	}
}

func TestColorOfPointConsistentWithCell(t *testing.T) {
	c := mustHierarchy(t, 40, 40, 4, 4, 5, 2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x, y := rng.Float64(), rng.Float64()
		cx, cy := c.Part.Grid.CellOf(x, y)
		if c.ColorOfPoint(x, y) != c.ColorOfCell(cx, cy) {
			t.Fatalf("point (%g,%g): color mismatch", x, y)
		}
	}
}

func TestCellIndexRowMajor(t *testing.T) {
	g, _ := NewGrid(7, 3)
	if g.CellIndex(0, 0) != 0 || g.CellIndex(6, 0) != 6 || g.CellIndex(0, 1) != 7 || g.CellIndex(6, 2) != 20 {
		t.Error("CellIndex layout wrong")
	}
}
