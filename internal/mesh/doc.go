// Package mesh provides the spatial substrate of the EMPIRE-like PIC
// application: a 2-D structured cell grid over the unit square, an SPMD
// partition of it into rank subdomains, and the per-rank coloring that
// overdecomposes each subdomain into migratable chunks ("colors" in
// EMPIRE's terminology, Fig. 1 of the paper).
//
// # Concurrency
//
// Grids, partitions and colorings are immutable after construction, so
// any number of goroutines may query them concurrently — the sim
// harness shares one coloring across all trackers.
package mesh
