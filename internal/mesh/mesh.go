package mesh

import (
	"fmt"

	"temperedlb/internal/core"
)

// Grid is a structured NX×NY cell grid covering [0,1]².
type Grid struct {
	NX, NY int
}

// NewGrid validates the dimensions and returns the grid.
func NewGrid(nx, ny int) (Grid, error) {
	if nx < 1 || ny < 1 {
		return Grid{}, fmt.Errorf("mesh: grid %dx%d invalid", nx, ny)
	}
	return Grid{NX: nx, NY: ny}, nil
}

// NumCells returns the total cell count.
func (g Grid) NumCells() int { return g.NX * g.NY }

// CellOf maps a point in [0,1)² to its cell coordinates. Points on the
// high boundary are clamped into the last cell.
func (g Grid) CellOf(x, y float64) (cx, cy int) {
	cx = int(x * float64(g.NX))
	cy = int(y * float64(g.NY))
	if cx < 0 {
		cx = 0
	}
	if cx >= g.NX {
		cx = g.NX - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.NY {
		cy = g.NY - 1
	}
	return cx, cy
}

// CellIndex flattens cell coordinates row-major.
func (g Grid) CellIndex(cx, cy int) int { return cy*g.NX + cx }

// Partition is the static SPMD decomposition of a grid into RX×RY rank
// subdomains (Fig. 1a). Cell counts divide evenly by construction.
type Partition struct {
	Grid   Grid
	RX, RY int
	// cellsPerRankX/Y are the subdomain dimensions in cells.
	cellsPerRankX, cellsPerRankY int
}

// NewPartition builds the SPMD decomposition; the grid dimensions must
// be divisible by the rank grid dimensions.
func NewPartition(g Grid, rx, ry int) (*Partition, error) {
	if rx < 1 || ry < 1 {
		return nil, fmt.Errorf("mesh: rank grid %dx%d invalid", rx, ry)
	}
	if g.NX%rx != 0 || g.NY%ry != 0 {
		return nil, fmt.Errorf("mesh: grid %dx%d not divisible by rank grid %dx%d", g.NX, g.NY, rx, ry)
	}
	return &Partition{
		Grid: g, RX: rx, RY: ry,
		cellsPerRankX: g.NX / rx,
		cellsPerRankY: g.NY / ry,
	}, nil
}

// NumRanks returns the rank count RX·RY.
func (p *Partition) NumRanks() int { return p.RX * p.RY }

// CellsPerRank returns the number of cells in each rank subdomain.
func (p *Partition) CellsPerRank() int { return p.cellsPerRankX * p.cellsPerRankY }

// RankOfCell returns the home rank of a cell.
func (p *Partition) RankOfCell(cx, cy int) core.Rank {
	rx := cx / p.cellsPerRankX
	ry := cy / p.cellsPerRankY
	return core.Rank(ry*p.RX + rx)
}

// ColorID identifies a color (an overdecomposed chunk) globally:
// colors 0..OD-1 of rank 0, then rank 1, and so on.
type ColorID int32

// Coloring overdecomposes every rank subdomain into ODX×ODY rectangular
// color blocks (Fig. 1b), the migratable tasks of the AMT configuration.
type Coloring struct {
	Part     *Partition
	ODX, ODY int
	// cellsPerColorX/Y are the color block dimensions in cells.
	cellsPerColorX, cellsPerColorY int
}

// NewColoring builds the per-rank coloring; each subdomain's cell
// dimensions must divide by the color grid.
func NewColoring(p *Partition, odx, ody int) (*Coloring, error) {
	if odx < 1 || ody < 1 {
		return nil, fmt.Errorf("mesh: color grid %dx%d invalid", odx, ody)
	}
	if p.cellsPerRankX%odx != 0 || p.cellsPerRankY%ody != 0 {
		return nil, fmt.Errorf("mesh: rank subdomain %dx%d cells not divisible by color grid %dx%d",
			p.cellsPerRankX, p.cellsPerRankY, odx, ody)
	}
	return &Coloring{
		Part: p, ODX: odx, ODY: ody,
		cellsPerColorX: p.cellsPerRankX / odx,
		cellsPerColorY: p.cellsPerRankY / ody,
	}, nil
}

// Overdecomposition returns the number of colors per rank.
func (c *Coloring) Overdecomposition() int { return c.ODX * c.ODY }

// NumColors returns the total color count.
func (c *Coloring) NumColors() int { return c.Part.NumRanks() * c.Overdecomposition() }

// CellsPerColor returns the number of cells in each color block.
func (c *Coloring) CellsPerColor() int { return c.cellsPerColorX * c.cellsPerColorY }

// ColorOfCell returns the color owning a cell.
func (c *Coloring) ColorOfCell(cx, cy int) ColorID {
	rank := c.Part.RankOfCell(cx, cy)
	lx := (cx % c.Part.cellsPerRankX) / c.cellsPerColorX
	ly := (cy % c.Part.cellsPerRankY) / c.cellsPerColorY
	local := ly*c.ODX + lx
	return ColorID(int(rank)*c.Overdecomposition() + local)
}

// HomeRank returns the rank whose subdomain contains the color (its
// owner under the static SPMD mapping, before any migration).
func (c *Coloring) HomeRank(id ColorID) core.Rank {
	return core.Rank(int(id) / c.Overdecomposition())
}

// ColorOfPoint maps a point to its color.
func (c *Coloring) ColorOfPoint(x, y float64) ColorID {
	cx, cy := c.Part.Grid.CellOf(x, y)
	return c.ColorOfCell(cx, cy)
}
