// Package viz renders small ASCII visualizations for the experiment
// CLIs: sparklines for single series and multi-series line plots that
// approximate the paper's figures in a terminal.
//
// # Concurrency
//
// The renderers are pure functions of their inputs; concurrent calls
// are safe as long as callers do not share an io.Writer.
package viz
