package viz

import (
	"strings"
	"testing"
)

func TestSparklineShape(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("width %d, want 8", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("ramp not rendered: %q", s)
	}
	// Monotone input gives monotone sparkline.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("not monotone: %q", s)
		}
	}
}

func TestSparklineConstantSeries(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5}, 3)
	if len([]rune(s)) != 3 {
		t.Fatalf("width wrong: %q", s)
	}
	for _, r := range s {
		if r != '▁' {
			t.Errorf("constant series should be flat: %q", s)
		}
	}
}

func TestSparklineDownsamples(t *testing.T) {
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	s := Sparkline(long, 10)
	if len([]rune(s)) != 10 {
		t.Errorf("downsample width: %q", s)
	}
}

func TestSparklineEmpty(t *testing.T) {
	if Sparkline(nil, 10) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Error("degenerate inputs should yield empty string")
	}
}

func TestPlotRendersSeriesAndLegend(t *testing.T) {
	var b strings.Builder
	Plot(&b, "test plot",
		[]string{"up", "down"},
		[][]float64{{0, 1, 2, 3}, {3, 2, 1, 0}},
		20, 6)
	out := b.String()
	if !strings.Contains(out, "test plot") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "a=up") || !strings.Contains(out, "b=down") {
		t.Errorf("missing legend: %s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("missing marks")
	}
	// 6 grid rows + title + legend.
	if got := strings.Count(out, "\n"); got != 8 {
		t.Errorf("line count %d, want 8:\n%s", got, out)
	}
}

func TestPlotAxisLabels(t *testing.T) {
	var b strings.Builder
	Plot(&b, "t", []string{"s"}, [][]float64{{1, 9}}, 10, 4)
	out := b.String()
	if !strings.Contains(out, "9") || !strings.Contains(out, "1") {
		t.Errorf("missing scale labels:\n%s", out)
	}
}

func TestPlotDegenerate(t *testing.T) {
	var b strings.Builder
	Plot(&b, "t", nil, nil, 10, 4)
	Plot(&b, "t", []string{"x"}, [][]float64{{}}, 10, 4)
	Plot(&b, "t", []string{"x"}, [][]float64{{1, 2}}, 1, 1)
	// Constant series must not divide by zero.
	Plot(&b, "t", []string{"x"}, [][]float64{{2, 2, 2}}, 10, 4)
	if strings.Contains(b.String(), "NaN") {
		t.Error("NaN leaked into plot")
	}
}

func TestResampleExactAndStretch(t *testing.T) {
	got := resample([]float64{1, 3}, 4)
	if len(got) != 4 {
		t.Fatalf("stretch length %d", len(got))
	}
	got = resample([]float64{2, 4, 6, 8}, 2)
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("bucket averages = %v, want [3 7]", got)
	}
}
