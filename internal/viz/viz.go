package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as a one-line bar sketch of the given
// width, downsampling by averaging. An empty series yields an empty
// string.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width < 1 {
		return ""
	}
	buckets := resample(values, width)
	lo, hi := bounds(buckets)
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Plot renders the named series as an ASCII line chart of the given
// inner dimensions, one mark per series ('a', 'b', ...), with a y-axis
// scale and a legend. Series may have different lengths; each is
// resampled to the plot width independently.
func Plot(w io.Writer, title string, names []string, series [][]float64, width, height int) {
	if len(series) == 0 || width < 2 || height < 2 {
		return
	}
	marks := "abcdefghijklmnop"
	resampled := make([][]float64, len(series))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, s := range series {
		resampled[i] = resample(s, width)
		slo, shi := bounds(resampled[i])
		lo = math.Min(lo, slo)
		hi = math.Max(hi, shi)
	}
	if math.IsInf(lo, 1) {
		return
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range resampled {
		mark := marks[si%len(marks)]
		for x, v := range s {
			y := int((v - lo) / (hi - lo) * float64(height-1))
			row := height - 1 - y
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][x] = mark
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", hi)
		case height - 1:
			label = fmt.Sprintf("%8.3g", lo)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, line)
	}
	var legend []string
	for i, n := range names {
		if i >= len(series) {
			break
		}
		legend = append(legend, fmt.Sprintf("%c=%s", marks[i%len(marks)], n))
	}
	fmt.Fprintf(w, "%10s%s\n", "", strings.Join(legend, "  "))
}

// resample reduces (or stretches) the series to exactly width points by
// averaging each bucket.
func resample(values []float64, width int) []float64 {
	out := make([]float64, width)
	if len(values) == 0 {
		return out
	}
	for i := 0; i < width; i++ {
		start := i * len(values) / width
		end := (i + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		if end > len(values) {
			end = len(values)
		}
		if start >= len(values) {
			start = len(values) - 1
			end = len(values)
		}
		sum := 0.0
		for _, v := range values[start:end] {
			sum += v
		}
		out[i] = sum / float64(end-start)
	}
	return out
}

func bounds(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return 0, 0
	}
	return lo, hi
}
