package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestAssignmentAddAndQuery(t *testing.T) {
	a := NewAssignment(4)
	id0 := a.Add(2.0, 1)
	id1 := a.Add(3.0, 1)
	id2 := a.Add(1.5, 3)

	if a.NumTasks() != 3 || a.NumRanks() != 4 {
		t.Fatalf("counts: tasks=%d ranks=%d", a.NumTasks(), a.NumRanks())
	}
	if a.Owner(id0) != 1 || a.Owner(id2) != 3 {
		t.Errorf("owners wrong: %d %d", a.Owner(id0), a.Owner(id2))
	}
	if a.Load(id1) != 3.0 {
		t.Errorf("Load = %g", a.Load(id1))
	}
	if got := a.RankLoad(1); got != 5.0 {
		t.Errorf("RankLoad(1) = %g, want 5", got)
	}
	if got := a.RankLoad(0); got != 0 {
		t.Errorf("RankLoad(0) = %g, want 0", got)
	}
	if got := a.TotalLoad(); got != 6.5 {
		t.Errorf("TotalLoad = %g, want 6.5", got)
	}
	if got := a.AveLoad(); got != 6.5/4 {
		t.Errorf("AveLoad = %g", got)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAssignmentMove(t *testing.T) {
	a := NewAssignment(3)
	id := a.Add(2.0, 0)
	other := a.Add(1.0, 0)
	a.Move(id, 2)

	if a.Owner(id) != 2 {
		t.Errorf("Owner after move = %d", a.Owner(id))
	}
	if a.RankLoad(0) != 1.0 || a.RankLoad(2) != 2.0 {
		t.Errorf("loads after move: %v", a.RankLoads())
	}
	if a.Owner(other) != 0 {
		t.Errorf("unrelated task moved")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAssignmentMoveToSameRankIsNoop(t *testing.T) {
	a := NewAssignment(2)
	id := a.Add(1.0, 1)
	a.Move(id, 1)
	if a.Owner(id) != 1 || a.RankLoad(1) != 1.0 {
		t.Error("self-move changed state")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentSetLoad(t *testing.T) {
	a := NewAssignment(2)
	id := a.Add(1.0, 0)
	a.Add(2.0, 0)
	a.SetLoad(id, 4.0)
	if a.Load(id) != 4.0 {
		t.Errorf("Load = %g", a.Load(id))
	}
	if a.RankLoad(0) != 6.0 || a.TotalLoad() != 6.0 {
		t.Errorf("loads after SetLoad: rank=%g total=%g", a.RankLoad(0), a.TotalLoad())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentTasksOfSortedByID(t *testing.T) {
	a := NewAssignment(2)
	ids := []TaskID{a.Add(1, 0), a.Add(2, 0), a.Add(3, 0)}
	a.Move(ids[0], 1)
	a.Move(ids[0], 0) // returns at the end of the slice internally
	ts := a.TasksOf(0)
	for i := 1; i < len(ts); i++ {
		if ts[i-1].ID >= ts[i].ID {
			t.Fatalf("TasksOf not sorted: %v", ts)
		}
	}
	if len(ts) != 3 {
		t.Fatalf("TasksOf len = %d", len(ts))
	}
}

func TestAssignmentImbalance(t *testing.T) {
	a := NewAssignment(4)
	a.Add(4, 0) // loads: 4,0,0,0 -> ave 1, I = 3
	if got := a.Imbalance(); math.Abs(got-3) > 1e-12 {
		t.Errorf("Imbalance = %g, want 3", got)
	}
}

func TestAssignmentImbalanceEmptyIsZero(t *testing.T) {
	a := NewAssignment(4)
	if got := a.Imbalance(); got != 0 {
		t.Errorf("Imbalance(empty) = %g", got)
	}
}

func TestAssignmentCloneIsDeep(t *testing.T) {
	a := NewAssignment(3)
	id := a.Add(1.0, 0)
	c := a.Clone()
	c.Move(id, 2)
	if a.Owner(id) != 0 {
		t.Error("clone mutation leaked into original")
	}
	if c.Owner(id) != 2 {
		t.Error("clone did not record move")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentMaxTaskLoad(t *testing.T) {
	a := NewAssignment(2)
	if a.MaxTaskLoad() != 0 {
		t.Error("MaxTaskLoad of empty != 0")
	}
	a.Add(1, 0)
	a.Add(5, 1)
	a.Add(2, 0)
	if a.MaxTaskLoad() != 5 {
		t.Errorf("MaxTaskLoad = %g", a.MaxTaskLoad())
	}
}

func TestAssignmentOwnersSnapshot(t *testing.T) {
	a := NewAssignment(2)
	id := a.Add(1, 0)
	owners := a.Owners()
	a.Move(id, 1)
	if owners[id] != 0 {
		t.Error("Owners snapshot aliased live state")
	}
}

func TestAssignmentPanicsOnBadInput(t *testing.T) {
	a := NewAssignment(2)
	mustPanic(t, "negative load", func() { a.Add(-1, 0) })
	mustPanic(t, "NaN load", func() { a.Add(math.NaN(), 0) })
	mustPanic(t, "bad rank", func() { a.Add(1, 5) })
	mustPanic(t, "bad task", func() { a.Owner(99) })
	mustPanic(t, "bad ranks", func() { NewAssignment(0) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestAssignmentRandomOpsInvariant drives random Add/Move/SetLoad
// operations and validates the structural invariants plus exact load
// conservation throughout.
func TestAssignmentRandomOpsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := NewAssignment(8)
	var ids []TaskID
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ids) == 0:
			ids = append(ids, a.Add(rng.Float64()*5, Rank(rng.Intn(8))))
		case op == 1:
			a.Move(ids[rng.Intn(len(ids))], Rank(rng.Intn(8)))
		default:
			a.SetLoad(ids[rng.Intn(len(ids))], rng.Float64()*5)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("invariants violated after random ops: %v", err)
	}
	// Total load must equal the per-rank sum.
	sum := 0.0
	for _, l := range a.RankLoads() {
		sum += l
	}
	if math.Abs(sum-a.TotalLoad()) > 1e-6 {
		t.Errorf("total load drifted: ranks sum %g vs total %g", sum, a.TotalLoad())
	}
}
