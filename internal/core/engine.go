package core

import (
	"fmt"
	"math/rand"

	"temperedlb/internal/clock"
	"temperedlb/internal/obs"
)

// IterationStats records the accounting of one inform+transfer pass —
// the rows of the §V-B and §V-D tables.
type IterationStats struct {
	Trial     int // 1-based
	Iteration int // 1-based

	// GossipMessages is the number of gossip messages delivered;
	// GossipEntries the total payload entries carried by them (the
	// communication-volume concern of footnote 2).
	GossipMessages int
	GossipEntries  int

	// GossipDropped counts gossip messages lost to Config.GossipDrop
	// before delivery; GossipDuplicated counts extra deliveries injected
	// by Config.GossipDup (both always zero when the knobs are off).
	GossipDropped    int
	GossipDuplicated int

	// KnowledgeAvg and KnowledgeMin summarize how much of the
	// underloaded set the gossip stage spread: the mean and minimum
	// |S^p| over the ranks that were overloaded when the transfer stage
	// began (the ranks whose knowledge matters). Zero when no rank was
	// overloaded.
	KnowledgeAvg float64
	KnowledgeMin int

	// Transfers and Rejected are the accepted/rejected decision counts
	// summed over all ranks; NoCandidate counts transfer loops that
	// stopped for lack of CMF mass. Nacks counts transfers vetoed by
	// their recipient when Config.NegativeAcks is set.
	Transfers   int
	Rejected    int
	NoCandidate int
	Nacks       int

	// Imbalance is I of the working distribution after this iteration's
	// transfers were applied.
	Imbalance float64

	// ElapsedSeconds is the wall-clock time the iteration took. In the
	// synchronous engine that is the simulation cost of the pass; in the
	// distributed balancer it is the slowest rank's inform+transfer+
	// evaluate time.
	ElapsedSeconds float64
}

// RejectionRate returns Rejected/(Transfers+Rejected) in percent, the
// "Rejection Rate (%)" column, or 0 when no decision was evaluated.
func (s IterationStats) RejectionRate() float64 {
	total := s.Transfers + s.Rejected
	if total == 0 {
		return 0
	}
	return 100 * float64(s.Rejected) / float64(total)
}

// Move records that a task should migrate from one rank to another; the
// set of moves is the net effect of the best distribution found.
type Move struct {
	Task TaskID
	From Rank
	To   Rank
}

// Result is the outcome of Engine.Run.
type Result struct {
	// InitialImbalance and FinalImbalance bracket the refinement;
	// FinalImbalance is the best I over all trials and iterations.
	InitialImbalance float64
	FinalImbalance   float64
	// BestTrial and BestIteration locate the winning distribution
	// (both 0 when no iteration improved on the initial distribution).
	BestTrial     int
	BestIteration int
	// Moves is the net task relocation set of the best distribution
	// relative to the input assignment (Algorithm 3 line 13).
	Moves []Move
	// History holds per-iteration accounting across all trials in
	// execution order.
	History []IterationStats
	// RemoteVolumeBefore and RemoteVolumeAfter report the cross-rank
	// communication volume of the input and best distributions when a
	// CommGraph was supplied to RunWithComm (both zero otherwise).
	RemoteVolumeBefore float64
	RemoteVolumeAfter  float64
}

// MovedLoad returns the total load carried by the result's moves — the
// migration volume the runtime must pay.
func (r *Result) MovedLoad(a *Assignment) float64 {
	sum := 0.0
	for _, m := range r.Moves {
		sum += a.Load(m.Task)
	}
	return sum
}

// Engine runs the complete TemperedLB algorithm — Algorithm 3 wrapping
// Algorithms 1 and 2 — over an Assignment, simulating the distributed
// gossip with a deterministic asynchronous message queue. It is the
// LB-analysis twin of the distributed implementation in lb/tempered: the
// same per-rank decision logic, driven synchronously.
//
// An Engine is single-owner: it carries scratch buffers reused across
// trials, iterations and Run calls, so one Engine must not run
// concurrently with itself. Distinct Engines are fully independent —
// parallel experiment sweeps run one Engine per configuration, sharing
// the input Assignment read-only.
type Engine struct {
	cfg Config
	sc  engineScratch
}

// engineScratch holds every buffer the refinement loop reuses. All state
// is reset (or fully overwritten) at the points the old per-trial
// allocations happened, so results are bit-identical to the allocating
// implementation.
type engineScratch struct {
	states      []*InformState
	transferRNG []*rand.Rand
	orderRNG    *rand.Rand
	dropRNG     *rand.Rand    // gossip-loss dice, used only when cfg.GossipDrop > 0
	work        *Assignment   // working distribution, reset per trial
	queue       []Send        // gossip delivery queue, truncated per iteration
	events      []gossipEvent // virtual-time delivery heap (rich fault specs)
	order       []int         // rank traversal permutation
	tasks       []Task        // overloaded rank's task set
	owners      []Rank        // owner snapshot for the affinity closure
	bestOwners  []Rank        // owner vector of the best distribution
	haveBest    bool
	xfer        TransferScratch
}

// prepare sizes the scratch for numRanks ranks, allocating only when the
// engine has not run at this size before.
func (sc *engineScratch) prepare(numRanks int, cfg *Config) {
	if len(sc.states) == numRanks {
		return
	}
	// The placeholder streams are re-pointed at the trial's derived
	// seeds before any draw (see the Reseed loop in run); deriving the
	// placeholders from cfg.Seed keeps every construction site fed from
	// the plumbed seed.
	sc.states = make([]*InformState, numRanks)
	sc.transferRNG = make([]*rand.Rand, numRanks)
	for r := 0; r < numRanks; r++ {
		sc.states[r] = NewInformState(Rank(r), numRanks, cfg, newRNG(cfg.Seed))
		sc.transferRNG[r] = newRNG(cfg.Seed)
	}
	sc.orderRNG = newRNG(cfg.Seed)
	sc.dropRNG = newRNG(cfg.Seed)
	sc.order = make([]int, numRanks)
	sc.work = nil
}

// NewEngine validates the configuration and returns an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Run executes Trials×Iterations inform+transfer passes over a working
// copy of the assignment and returns the best distribution found. The
// input assignment is not modified; apply the result's Moves to commit.
func (e *Engine) Run(a *Assignment) (*Result, error) {
	return e.RunWithComm(a, nil)
}

// RunWithComm is Run with the communication-aware extension of §VII:
// when g is non-nil and Config.CommBias > 0, recipient selection is
// biased toward ranks hosting each task's communication partners (using
// the owner snapshot of the current iteration — the same staleness the
// gossip knowledge has), and the result reports the remote communication
// volume before and after.
func (e *Engine) RunWithComm(a *Assignment, g *CommGraph) (*Result, error) {
	if a.NumTasks() == 0 {
		return &Result{}, nil
	}
	ave := a.AveLoad()
	if ave == 0 {
		return &Result{InitialImbalance: 0, FinalImbalance: 0}, nil
	}
	res := &Result{
		InitialImbalance: a.Imbalance(),
	}
	res.FinalImbalance = res.InitialImbalance

	tr := e.cfg.Tracer
	if tr != nil {
		tr.Emit(obs.Event{Type: obs.EvLBBegin, Peer: -1, Object: -1,
			Value: res.InitialImbalance})
	}
	stream := e.cfg.Stream
	if stream != nil {
		e.publishFrame(obs.Snapshot{Phase: "init", Loads: a.RankLoads()}, res)
	}

	numRanks := a.NumRanks()
	sc := &e.sc
	sc.prepare(numRanks, &e.cfg)
	sc.haveBest = false

	for trial := 1; trial <= e.cfg.Trials; trial++ {
		// Algorithm 3 line 3: reset the working copy for each trial.
		if sc.work == nil {
			sc.work = a.Clone()
		} else {
			sc.work.CopyFrom(a)
		}
		work := sc.work
		// Re-point each rank's random streams at this trial's seeds; the
		// sequences are bit-identical to freshly allocated generators.
		for r := 0; r < numRanks; r++ {
			sc.states[r].Reseed(deriveSeed(e.cfg.Seed, int64(trial), int64(r), 0x60551f))
			reseed(sc.transferRNG[r], e.cfg.Seed, int64(trial), int64(r), 0x7af)
		}
		reseed(sc.orderRNG, e.cfg.Seed, int64(trial), 0x0deb)
		if e.cfg.GossipDrop > 0 {
			reseed(sc.dropRNG, e.cfg.Seed, int64(trial), 0xd209)
		}

		for iter := 1; iter <= e.cfg.Iterations; iter++ {
			st := IterationStats{Trial: trial, Iteration: iter}
			iterStart := clock.Now()
			if tr != nil {
				tr.Emit(obs.Event{Type: obs.EvIterBegin, Peer: -1, Object: -1,
					Trial: trial, Iteration: iter})
			}

			if !e.cfg.PersistKnowledge || iter == 1 {
				for _, s := range sc.states {
					s.Reset()
				}
			}
			e.gossip(work, ave, &st)
			e.transferPass(work, ave, g, &st)

			st.Imbalance = work.Imbalance() // Algorithm 3 line 9
			st.ElapsedSeconds = clock.Since(iterStart).Seconds()
			if tr != nil {
				tr.Emit(obs.Event{Type: obs.EvIterEnd, Peer: -1, Object: -1,
					Trial: trial, Iteration: iter, Value: st.Imbalance,
					Dur: clock.Since(iterStart)})
			}
			res.History = append(res.History, st)
			if stream != nil {
				e.publishFrame(obs.Snapshot{
					Phase: "iter", Trial: trial, Iteration: iter,
					Loads: work.RankLoads(), IterMs: st.ElapsedSeconds * 1e3,
				}, res)
			}
			if st.Imbalance < res.FinalImbalance { // line 10: keep the best
				res.FinalImbalance = st.Imbalance
				res.BestTrial, res.BestIteration = trial, iter
				sc.bestOwners = work.AppendOwners(sc.bestOwners[:0])
				sc.haveBest = true
			}
		}
	}

	if tr != nil {
		tr.Emit(obs.Event{Type: obs.EvLBEnd, Peer: -1, Object: -1,
			Value: res.FinalImbalance})
	}

	if sc.haveBest {
		orig := a.Owners()
		for id := range orig {
			if orig[id] != sc.bestOwners[id] {
				res.Moves = append(res.Moves, Move{Task: TaskID(id), From: orig[id], To: sc.bestOwners[id]})
			}
		}
	}
	if g != nil {
		res.RemoteVolumeBefore = g.RemoteVolume(a.Owners())
		if sc.haveBest {
			res.RemoteVolumeAfter = g.RemoteVolume(sc.bestOwners)
		} else {
			res.RemoteVolumeAfter = res.RemoteVolumeBefore
		}
	}
	return res, nil
}

// Apply commits the result's moves to the assignment.
func (r *Result) Apply(a *Assignment) {
	for _, m := range r.Moves {
		a.Move(m.Task, m.To)
	}
}

// gossip simulates the asynchronous inform stage: underloaded ranks seed
// messages, and a FIFO queue delivers them until quiescence — the
// synchronous stand-in for termination detection. Message and payload
// counts are recorded in st. The queue buffer is reused across
// iterations; each Send is copied into it, so the per-state send buffers
// may be recycled freely.
func (e *Engine) gossip(work *Assignment, ave float64, st *IterationStats) {
	if e.cfg.gossipFaultsRich() {
		e.gossipVirtualTime(work, ave, st)
		return
	}
	states := e.sc.states
	queue := e.sc.queue[:0]
	for r := range states {
		queue = append(queue, states[r].Begin(ave, work.RankLoad(Rank(r)))...)
	}
	drop := e.cfg.GossipDrop
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		if drop > 0 && e.sc.dropRNG.Float64() < drop {
			// Lost in transit: the payload never reaches its target, so no
			// merge and no forwarding cascade. The knowledge the receiver
			// would have gained simply stays unknown — exactly the engine-
			// level analogue of a dropped transport message.
			st.GossipDropped++
			continue
		}
		st.GossipMessages++
		st.GossipEntries += len(s.Msg.Entries)
		more, _ := states[s.To].Receive(s.Msg)
		queue = append(queue, more...)
	}
	e.sc.queue = queue
}

// transferPass runs the transfer stage for every overloaded rank, in a
// seeded random order, applying accepted transfers to the working
// assignment eagerly. Each rank decides with its own gossip-stale
// knowledge ("each overloaded rank working in isolation", §V-A), so an
// underloaded rank may still be overloaded by several senders; eager
// application only makes later-processed ranks see their true own load.
func (e *Engine) transferPass(work *Assignment, ave float64, g *CommGraph, st *IterationStats) {
	sc := &e.sc
	// Snapshot owners once per iteration for the communication-affinity
	// lookups: senders see partner locations with the same staleness
	// their gossip knowledge has.
	var affinity AffinityFunc
	if g != nil && e.cfg.CommBias > 0 {
		sc.owners = work.AppendOwners(sc.owners[:0])
		owners := sc.owners
		affinity = func(task TaskID, to Rank) float64 {
			sum := 0.0
			for _, edge := range g.Edges(task) {
				if owners[edge.Peer] == to {
					sum += edge.Volume
				}
			}
			return sum
		}
	}
	permInto(sc.orderRNG, sc.order)
	overloaded, knowSum := 0, 0
	for _, ri := range sc.order {
		r := Rank(ri)
		load := work.RankLoad(r)
		if load <= e.cfg.Threshold*ave {
			continue
		}
		overloaded++
		k := sc.states[r].Knowledge().Len()
		knowSum += k
		if overloaded == 1 || k < st.KnowledgeMin {
			st.KnowledgeMin = k
		}
		sc.tasks = work.AppendTasksOf(sc.tasks[:0], r)
		proposals, ts, _ := RunTransferScratch(r, sc.tasks, load, ave, sc.states[r].Knowledge(), &e.cfg, sc.transferRNG[r], affinity, &sc.xfer)
		st.Rejected += ts.Rejected
		st.NoCandidate += ts.NoCandidate
		for _, p := range proposals {
			if e.cfg.NegativeAcks {
				// Menon's recipient veto: the actual recipient bounces
				// a transfer that would push it past the average.
				if work.RankLoad(p.To)+work.Load(p.Task) >= ave {
					st.Nacks++
					continue
				}
			}
			st.Transfers++
			work.Move(p.Task, p.To)
		}
	}
	if overloaded > 0 {
		st.KnowledgeAvg = float64(knowSum) / float64(overloaded)
	}
}

// publishFrame stamps the engine's identity and cumulative accounting
// onto a frame and publishes it to the configured stream. Counters are
// re-summed from the history — at most Trials×Iterations rows, noise
// next to a gossip pass.
func (e *Engine) publishFrame(f obs.Snapshot, res *Result) {
	f.Source = e.cfg.StreamTag
	if f.Source == "" {
		f.Source = "engine"
	}
	f.Ranks = len(f.Loads)
	f.FillLoadStats()
	for _, st := range res.History {
		f.GossipMsgs += int64(st.GossipMessages)
		f.GossipEntries += int64(st.GossipEntries)
		f.TransferMsgs += int64(st.Transfers)
		f.Dropped += int64(st.GossipDropped)
		f.Duplicated += int64(st.GossipDuplicated)
	}
	e.cfg.Stream.Publish(f)
}

// String summarizes a result for logs.
func (r *Result) String() string {
	return fmt.Sprintf("I %.4g -> %.4g (best trial %d iter %d, %d moves)",
		r.InitialImbalance, r.FinalImbalance, r.BestTrial, r.BestIteration, len(r.Moves))
}
