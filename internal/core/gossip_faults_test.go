package core

import (
	"testing"
	"time"

	"temperedlb/internal/obs"
)

// TestEngineGossipFaultsRich drives the virtual-time gossip path with
// the full grammar: drops and duplicates land near their configured
// rates, refinement still improves, and the same seed reproduces the
// run exactly.
func TestEngineGossipFaultsRich(t *testing.T) {
	a := clusteredAssignment(64, 4, 400, 1)
	cfg := smallTempered()
	cfg.GossipDrop = 0.2
	cfg.GossipDup = 0.2
	cfg.GossipDelayMin = time.Millisecond
	cfg.GossipDelayMax = 5 * time.Millisecond
	cfg.GossipSlowRanks = map[int]time.Duration{1: 10 * time.Millisecond}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	dropped, duplicated, delivered := 0, 0, 0
	for _, st := range res.History {
		dropped += st.GossipDropped
		duplicated += st.GossipDuplicated
		delivered += st.GossipMessages
	}
	if dropped == 0 || duplicated == 0 {
		t.Fatalf("faults injected nothing: dropped %d duplicated %d", dropped, duplicated)
	}
	if rate := float64(dropped) / float64(dropped+delivered-duplicated); rate < 0.1 || rate > 0.35 {
		t.Errorf("observed drop rate %g, configured 0.2", rate)
	}
	if res.FinalImbalance >= res.InitialImbalance {
		t.Errorf("no improvement under rich faults: %g -> %g",
			res.InitialImbalance, res.FinalImbalance)
	}
	eng2, _ := NewEngine(cfg)
	res2, err := eng2.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalImbalance != res.FinalImbalance || len(res2.Moves) != len(res.Moves) {
		t.Errorf("rich faulted run not reproducible: %v vs %v", res2, res)
	}
	for i := range res.History {
		if res.History[i].GossipDropped != res2.History[i].GossipDropped ||
			res.History[i].GossipDuplicated != res2.History[i].GossipDuplicated {
			t.Fatalf("fault sequence not reproducible at row %d", i)
		}
	}
}

// TestEngineGossipZeroDelayRichMatchesFIFO pins the FIFO-degeneration
// contract of the virtual-time queue: a spec that forces the rich path
// without perturbing anything (one slow rank with a zero penalty, no
// drop, no dup, no delay band) must reproduce the legacy FIFO run's
// decisions exactly — every delivery lands at time zero and the
// enqueue-order tie-break is the FIFO order.
func TestEngineGossipZeroDelayRichMatchesFIFO(t *testing.T) {
	a := clusteredAssignment(48, 3, 300, 9)
	base, _ := NewEngine(smallTempered())
	resBase, err := base.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallTempered()
	cfg.GossipSlowRanks = map[int]time.Duration{0: 0}
	if !cfg.gossipFaultsRich() {
		t.Fatal("spec did not select the virtual-time path")
	}
	rich, _ := NewEngine(cfg)
	resRich, err := rich.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if resRich.FinalImbalance != resBase.FinalImbalance ||
		resRich.BestTrial != resBase.BestTrial ||
		resRich.BestIteration != resBase.BestIteration ||
		len(resRich.Moves) != len(resBase.Moves) {
		t.Errorf("zero-effect rich spec changed the outcome: %v vs %v", resRich, resBase)
	}
	for i := range resBase.History {
		b, r := resBase.History[i], resRich.History[i]
		if b.GossipMessages != r.GossipMessages || b.GossipEntries != r.GossipEntries ||
			b.Transfers != r.Transfers || b.Imbalance != r.Imbalance {
			t.Fatalf("row %d diverged: %+v vs %+v", i, b, r)
		}
	}
}

// TestEngineStreamFrames checks the engine's frame publishing: one init
// frame plus one per iteration, phases and cumulative counters correct,
// and the stream attachment changing no balancing decision.
func TestEngineStreamFrames(t *testing.T) {
	a := clusteredAssignment(32, 2, 200, 5)
	plain, _ := NewEngine(smallTempered())
	resPlain, err := plain.Run(a)
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallTempered()
	cfg.Stream = obs.NewStream(256)
	cfg.StreamTag = "engine-test"
	eng, _ := NewEngine(cfg)
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalImbalance != resPlain.FinalImbalance || len(res.Moves) != len(resPlain.Moves) {
		t.Errorf("attaching a stream changed the outcome: %v vs %v", res, resPlain)
	}

	frames := cfg.Stream.Frames()
	want := 1 + cfg.Trials*cfg.Iterations
	if len(frames) != want {
		t.Fatalf("published %d frames, want %d", len(frames), want)
	}
	if frames[0].Phase != "init" || frames[0].Source != "engine-test" {
		t.Errorf("first frame = %+v, want init from engine-test", frames[0])
	}
	last := frames[len(frames)-1]
	if last.Phase != "iter" || last.Ranks != a.NumRanks() || len(last.Loads) != a.NumRanks() {
		t.Errorf("last frame malformed: %+v", last)
	}
	gossip, xfers := 0, 0
	for _, st := range res.History {
		gossip += st.GossipMessages
		xfers += st.Transfers
	}
	if last.GossipMsgs != int64(gossip) || last.TransferMsgs != int64(xfers) {
		t.Errorf("cumulative counters wrong: frame %d/%d, history %d/%d",
			last.GossipMsgs, last.TransferMsgs, gossip, xfers)
	}
	// The frame recomputes the average from its loads vector, the history
	// row from the assignment's running totals — same value up to
	// summation rounding.
	if d := last.Imbalance - res.History[len(res.History)-1].Imbalance; d > 1e-9 || d < -1e-9 {
		t.Errorf("frame imbalance %g, want %g", last.Imbalance,
			res.History[len(res.History)-1].Imbalance)
	}
}

func TestGossipFaultConfigValidate(t *testing.T) {
	bad := []Config{}
	c := smallTempered()
	c.GossipDup = 1.0
	bad = append(bad, c)
	c = smallTempered()
	c.GossipDelayMin = -time.Millisecond
	bad = append(bad, c)
	c = smallTempered()
	c.GossipDelayMin = 2 * time.Millisecond
	c.GossipDelayMax = time.Millisecond
	bad = append(bad, c)
	c = smallTempered()
	c.GossipSlowRanks = map[int]time.Duration{-1: time.Millisecond}
	bad = append(bad, c)
	for i, cfg := range bad {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
