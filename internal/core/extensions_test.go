package core

import (
	"math/rand"
	"testing"
)

// TestNegativeAcksPreventRecipientOverload verifies Menon's veto: with
// NACKs on and the original criterion, no rank that was underloaded at
// the start of an iteration ends it above the average because of
// accepted transfers.
func TestNegativeAcksPreventRecipientOverload(t *testing.T) {
	a := clusteredAssignment(32, 2, 200, 1)
	cfg := Grapevine()
	cfg.Iterations = 4
	cfg.Rounds, cfg.Fanout = 4, 3
	cfg.NegativeAcks = true
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	nacks := 0
	for _, it := range res.History {
		nacks += it.Nacks
	}
	// The clustered workload forces collisions, so some vetoes must
	// fire; and the result must still improve the distribution.
	if nacks == 0 {
		t.Error("no NACKs fired on a collision-prone workload")
	}
	if res.FinalImbalance >= res.InitialImbalance {
		t.Errorf("no improvement with NACKs: %g -> %g", res.InitialImbalance, res.FinalImbalance)
	}
	// With the original criterion and vetoes enforced on true loads,
	// the applied distribution can have at most the sender ranks above
	// the average... verify recipients stayed below it.
	res.Apply(a)
	ave := a.AveLoad()
	above := 0
	for r := 0; r < a.NumRanks(); r++ {
		if a.RankLoad(Rank(r)) > ave {
			above++
		}
	}
	if above > 2 {
		t.Errorf("%d ranks above average despite NACKs (only the 2 senders may be)", above)
	}
}

// TestNegativeAcksSubsumedByIteration quantifies the paper's §V-A claim:
// iterative refinement without NACKs reaches at least the quality of
// single-shot balancing with NACKs.
func TestNegativeAcksSubsumedByIteration(t *testing.T) {
	mk := func() *Assignment { return clusteredAssignment(48, 3, 400, 2) }

	withNacks := Grapevine()
	withNacks.Criterion = CriterionRelaxed
	withNacks.CMF = CMFModified
	withNacks.NegativeAcks = true
	e1, _ := NewEngine(withNacks)
	r1, _ := e1.Run(mk())

	iterated := Tempered()
	iterated.Trials, iterated.Iterations = 2, 6
	iterated.Rounds, iterated.Fanout = 4, 3
	e2, _ := NewEngine(iterated)
	r2, _ := e2.Run(mk())

	if r2.FinalImbalance > r1.FinalImbalance {
		t.Errorf("refinement (%g) lost to NACKs (%g)", r2.FinalImbalance, r1.FinalImbalance)
	}
}

// TestMaxGossipEntriesCapsPayloads checks the limited-information mode:
// no message carries more than the cap, and balancing still works with
// bounded information.
func TestMaxGossipEntriesCapsPayloads(t *testing.T) {
	cfg := Grapevine()
	cfg.Rounds, cfg.Fanout = 5, 3
	cfg.MaxGossipEntries = 4
	st := NewInformState(0, 64, &cfg, rand.New(rand.NewSource(1)))
	// Give the state more knowledge than the cap.
	for r := 1; r <= 20; r++ {
		st.Knowledge().Add(Rank(r), float64(r))
	}
	sends, _ := st.Receive(InformMsg{Round: 1, Entries: []RankLoad{{Rank: 30, Load: 1}}})
	if len(sends) == 0 {
		t.Fatal("no forwards")
	}
	for _, s := range sends {
		if len(s.Msg.Entries) > 4 {
			t.Fatalf("payload %d exceeds cap 4", len(s.Msg.Entries))
		}
		// Every carried entry must be genuine knowledge.
		for _, e := range s.Msg.Entries {
			if !st.Knowledge().Contains(e.Rank) {
				t.Fatalf("payload invented entry %v", e)
			}
		}
	}
}

// TestLimitedInformationStillBalances: with a tight cap the engine
// converges more slowly but still improves substantially.
func TestLimitedInformationStillBalances(t *testing.T) {
	a := clusteredAssignment(64, 4, 400, 3)
	cfg := Tempered()
	cfg.Trials, cfg.Iterations = 2, 5
	cfg.Rounds, cfg.Fanout = 5, 3
	cfg.MaxGossipEntries = 8
	eng, _ := NewEngine(cfg)
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalImbalance >= res.InitialImbalance/2 {
		t.Errorf("limited info too weak: %g -> %g", res.InitialImbalance, res.FinalImbalance)
	}
}

// TestLimitedInformationReducesVolume compares gossip entry volume with
// and without the cap on the same workload.
func TestLimitedInformationReducesVolume(t *testing.T) {
	run := func(cap int) int {
		a := clusteredAssignment(64, 4, 300, 4)
		cfg := Tempered()
		cfg.Trials, cfg.Iterations = 1, 3
		cfg.Rounds, cfg.Fanout = 5, 3
		cfg.MaxGossipEntries = cap
		eng, _ := NewEngine(cfg)
		res, _ := eng.Run(a)
		entries := 0
		for _, it := range res.History {
			entries += it.GossipEntries
		}
		return entries
	}
	unlimited, capped := run(0), run(4)
	if capped >= unlimited {
		t.Errorf("cap did not reduce volume: %d vs %d", capped, unlimited)
	}
}
