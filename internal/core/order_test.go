package core

import (
	"math/rand"
	"sort"
	"testing"
)

func tasksFromLoads(loads ...float64) []Task {
	ts := make([]Task, len(loads))
	for i, l := range loads {
		ts[i] = Task{ID: TaskID(i), Load: l}
	}
	return ts
}

func isPermutation(in, out []Task) bool {
	if len(in) != len(out) {
		return false
	}
	seen := make(map[TaskID]int)
	for _, t := range in {
		seen[t.ID]++
	}
	for _, t := range out {
		seen[t.ID]--
	}
	for _, c := range seen {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestOrderArbitraryIsByID(t *testing.T) {
	in := []Task{{ID: 3, Load: 1}, {ID: 1, Load: 9}, {ID: 2, Load: 5}}
	out := OrderTasks(in, 1, 15, OrderArbitrary)
	for i := 1; i < len(out); i++ {
		if out[i-1].ID >= out[i].ID {
			t.Fatalf("not sorted by ID: %v", out)
		}
	}
}

func TestOrderLoadIntensiveDescending(t *testing.T) {
	in := tasksFromLoads(2, 9, 5, 7)
	out := OrderTasks(in, 1, 23, OrderLoadIntensive)
	for i := 1; i < len(out); i++ {
		if out[i-1].Load < out[i].Load {
			t.Fatalf("not descending: %v", out)
		}
	}
	if !isPermutation(in, out) {
		t.Error("not a permutation")
	}
}

func TestOrderDoesNotModifyInput(t *testing.T) {
	in := tasksFromLoads(2, 9, 5)
	OrderTasks(in, 1, 16, OrderLoadIntensive)
	if in[0].Load != 2 || in[1].Load != 9 || in[2].Load != 5 {
		t.Error("input slice reordered")
	}
}

func TestOrderFewestMigrationsCutoffFirst(t *testing.T) {
	// selfLoad 16, ave 6 -> excess 10. Task loads: 3, 8, 12, 15.
	// Cutoff = smallest load > 10 = 12: order should be 12 first, then
	// <=12 descending (8, 3), then >12 ascending (15).
	in := tasksFromLoads(3, 8, 12, 15)
	out := OrderTasks(in, 6, 16, OrderFewestMigrations)
	wantLoads := []float64{12, 8, 3, 15}
	for i, w := range wantLoads {
		if out[i].Load != w {
			t.Fatalf("order = %v, want loads %v", out, wantLoads)
		}
	}
	if !isPermutation(in, out) {
		t.Error("not a permutation")
	}
}

func TestOrderFewestMigrationsFallsBackToDescending(t *testing.T) {
	// No single task covers the excess (Algorithm 5 line 3).
	// selfLoad 20, ave 2 -> excess 18 > max load 9.
	in := tasksFromLoads(2, 9, 5, 4)
	out := OrderTasks(in, 2, 20, OrderFewestMigrations)
	for i := 1; i < len(out); i++ {
		if out[i-1].Load < out[i].Load {
			t.Fatalf("fallback not descending: %v", out)
		}
	}
}

func TestOrderLightestMarginalFirst(t *testing.T) {
	// selfLoad 13, ave 3 -> excess 10. Ascending loads: 1,2,3,4,8.
	// Prefix sums: 1,3,6,10 -> marginal load 4 (first reaching 10).
	// Order: <=4 descending: 4,3,2,1 then >4 ascending: 8.
	in := tasksFromLoads(3, 1, 8, 2, 4)
	out := OrderTasks(in, 3, 13, OrderLightest)
	wantLoads := []float64{4, 3, 2, 1, 8}
	for i, w := range wantLoads {
		if out[i].Load != w {
			t.Fatalf("order = %v, want loads %v", out, wantLoads)
		}
	}
}

func TestOrderLightestNotActuallyOverloaded(t *testing.T) {
	// Excess exceeds the total load: order stays ascending.
	in := tasksFromLoads(3, 1, 2)
	out := OrderTasks(in, 1, 100, OrderLightest)
	for i := 1; i < len(out); i++ {
		if out[i-1].Load > out[i].Load {
			t.Fatalf("not ascending: %v", out)
		}
	}
}

func TestOrderingsArePermutationsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	orders := []Ordering{OrderArbitrary, OrderLoadIntensive, OrderFewestMigrations, OrderLightest}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(30)
		in := make([]Task, n)
		for i := range in {
			in[i] = Task{ID: TaskID(i), Load: rng.Float64() * 10}
		}
		selfLoad := 0.0
		for _, task := range in {
			selfLoad += task.Load
		}
		ave := selfLoad * (0.1 + rng.Float64()*0.8) / float64(n)
		for _, ord := range orders {
			out := OrderTasks(in, ave, selfLoad, ord)
			if !isPermutation(in, out) {
				t.Fatalf("%v produced a non-permutation", ord)
			}
		}
	}
}

func TestOrderingDeterministicTies(t *testing.T) {
	in := []Task{{ID: 5, Load: 2}, {ID: 1, Load: 2}, {ID: 9, Load: 2}}
	out := OrderTasks(in, 1, 6, OrderLoadIntensive)
	ids := []TaskID{out[0].ID, out[1].ID, out[2].ID}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Errorf("ties not broken by ID: %v", ids)
	}
}

func TestOrderEmptyAndSingle(t *testing.T) {
	if out := OrderTasks(nil, 1, 1, OrderFewestMigrations); len(out) != 0 {
		t.Error("empty input should give empty output")
	}
	single := tasksFromLoads(4)
	for _, ord := range []Ordering{OrderArbitrary, OrderLoadIntensive, OrderFewestMigrations, OrderLightest} {
		out := OrderTasks(single, 1, 4, ord)
		if len(out) != 1 || out[0].Load != 4 {
			t.Errorf("%v on single task = %v", ord, out)
		}
	}
}

func TestParseOrdering(t *testing.T) {
	for _, ord := range []Ordering{OrderArbitrary, OrderLoadIntensive, OrderFewestMigrations, OrderLightest} {
		got, err := ParseOrdering(ord.String())
		if err != nil || got != ord {
			t.Errorf("ParseOrdering(%q) = %v, %v", ord.String(), got, err)
		}
	}
	if _, err := ParseOrdering("bogus"); err == nil {
		t.Error("ParseOrdering should fail on unknown name")
	}
}
