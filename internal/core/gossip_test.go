package core

import (
	"math/rand"
	"testing"
)

func gossipConfig(f, k int) Config {
	cfg := Grapevine()
	cfg.Fanout = f
	cfg.Rounds = k
	return cfg
}

// runGossip drives a synchronous FIFO delivery of the inform stage over
// the given per-rank loads and returns the states plus delivery count.
func runGossip(t *testing.T, loads []float64, cfg Config) ([]*InformState, int) {
	t.Helper()
	n := len(loads)
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	ave := sum / float64(n)
	states := make([]*InformState, n)
	for r := range states {
		states[r] = NewInformState(Rank(r), n, &cfg, rand.New(rand.NewSource(int64(r)+100)))
	}
	var queue []Send
	for r := range states {
		queue = append(queue, states[r].Begin(ave, loads[r])...)
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		if s.To < 0 || int(s.To) >= n {
			t.Fatalf("message to out-of-range rank %d", s.To)
		}
		more, _ := states[s.To].Receive(s.Msg)
		queue = append(queue, more...)
	}
	return states, len(queue)
}

func TestGossipOnlyUnderloadedSeed(t *testing.T) {
	cfg := gossipConfig(2, 3)
	// Loads 10,0,0,0 -> ave 2.5; rank 0 overloaded.
	states := make([]*InformState, 4)
	for r := range states {
		states[r] = NewInformState(Rank(r), 4, &cfg, rand.New(rand.NewSource(int64(r))))
	}
	if sends := states[0].Begin(2.5, 10); sends != nil {
		t.Error("overloaded rank should not seed gossip")
	}
	if sends := states[1].Begin(2.5, 0); len(sends) != 2 {
		t.Errorf("underloaded rank seeded %d messages, want fanout 2", len(sends))
	}
}

func TestGossipSelfKnowledge(t *testing.T) {
	cfg := gossipConfig(2, 3)
	st := NewInformState(1, 4, &cfg, rand.New(rand.NewSource(1)))
	st.Begin(2.5, 1.0)
	if !st.Knowledge().Contains(1) {
		t.Error("underloaded rank must know itself")
	}
	if got := st.Knowledge().Load(1); got != 1.0 {
		t.Errorf("self load = %g", got)
	}
}

func TestGossipNeverSendsToSelf(t *testing.T) {
	cfg := gossipConfig(4, 4)
	st := NewInformState(2, 8, &cfg, rand.New(rand.NewSource(2)))
	for trial := 0; trial < 100; trial++ {
		st.Reset()
		for _, s := range st.Begin(10, 1) {
			if s.To == 2 {
				t.Fatal("rank sent gossip to itself")
			}
		}
	}
}

func TestGossipRoundsRespected(t *testing.T) {
	cfg := gossipConfig(2, 2)
	st := NewInformState(0, 8, &cfg, rand.New(rand.NewSource(3)))
	// Round k messages must not be forwarded.
	sends, _ := st.Receive(InformMsg{Round: 2, Entries: []RankLoad{{Rank: 5, Load: 0.5}}})
	if sends != nil {
		t.Errorf("round k message forwarded: %v", sends)
	}
	// Fresh state: round k−1 messages are forwarded with round k.
	st2 := NewInformState(0, 8, &cfg, rand.New(rand.NewSource(4)))
	sends, _ = st2.Receive(InformMsg{Round: 1, Entries: []RankLoad{{Rank: 5, Load: 0.5}}})
	if len(sends) != 2 {
		t.Fatalf("forwarded %d messages, want 2", len(sends))
	}
	for _, s := range sends {
		if s.Msg.Round != 2 {
			t.Errorf("forwarded round = %d, want 2", s.Msg.Round)
		}
	}
}

func TestGossipForwardOncePerRound(t *testing.T) {
	cfg := gossipConfig(2, 5)
	st := NewInformState(0, 16, &cfg, rand.New(rand.NewSource(5)))
	first, _ := st.Receive(InformMsg{Round: 1, Entries: []RankLoad{{Rank: 3, Load: 1}}})
	if len(first) == 0 {
		t.Fatal("first round-1 message not forwarded")
	}
	second, _ := st.Receive(InformMsg{Round: 1, Entries: []RankLoad{{Rank: 4, Load: 1}}})
	if second != nil {
		t.Error("second round-1 message also forwarded")
	}
}

func TestGossipNoForwardWhenNothingNew(t *testing.T) {
	cfg := gossipConfig(2, 5)
	st := NewInformState(0, 16, &cfg, rand.New(rand.NewSource(6)))
	st.Receive(InformMsg{Round: 1, Entries: []RankLoad{{Rank: 3, Load: 1}}})
	// Same content at a later round: nothing new, no forward.
	sends, added := st.Receive(InformMsg{Round: 2, Entries: []RankLoad{{Rank: 3, Load: 1}}})
	if added != 0 || sends != nil {
		t.Errorf("redundant message forwarded: added=%d sends=%v", added, sends)
	}
}

func TestGossipFloodForwardAlwaysForwards(t *testing.T) {
	cfg := gossipConfig(2, 5)
	cfg.FloodForward = true
	st := NewInformState(0, 16, &cfg, rand.New(rand.NewSource(7)))
	st.Receive(InformMsg{Round: 1, Entries: []RankLoad{{Rank: 3, Load: 1}}})
	sends, _ := st.Receive(InformMsg{Round: 1, Entries: []RankLoad{{Rank: 3, Load: 1}}})
	if len(sends) != 2 {
		t.Errorf("flood mode forwarded %d, want 2", len(sends))
	}
}

func TestGossipKnowledgeGrowsMonotonically(t *testing.T) {
	cfg := gossipConfig(3, 4)
	loads := make([]float64, 64)
	for i := range loads {
		if i%4 == 0 {
			loads[i] = 8
		} else {
			loads[i] = 0.5
		}
	}
	states, _ := runGossip(t, loads, cfg)
	for r, st := range states {
		k := st.Knowledge()
		if k.Len() > 0 {
			// Every entry must be a genuinely underloaded rank.
			sum := 0.0
			for _, l := range loads {
				sum += l
			}
			ave := sum / float64(len(loads))
			for _, e := range k.Entries() {
				if loads[e.Rank] >= ave {
					t.Fatalf("rank %d knows overloaded rank %d", r, e.Rank)
				}
			}
		}
	}
}

// TestGossipReachesOverloadedRanks verifies the purpose of the inform
// stage: with reasonable f·k, overloaded ranks end up knowing a large
// fraction of the underloaded ranks.
func TestGossipReachesOverloadedRanks(t *testing.T) {
	cfg := gossipConfig(4, 6)
	n := 128
	loads := make([]float64, n)
	for i := 0; i < 4; i++ {
		loads[i] = 100
	}
	underloaded := n - 4
	states, _ := runGossip(t, loads, cfg)
	for r := 0; r < 4; r++ {
		got := states[r].Knowledge().Len()
		if got < underloaded/2 {
			t.Errorf("overloaded rank %d knows only %d/%d underloaded ranks", r, got, underloaded)
		}
	}
}

func TestGossipDeterministic(t *testing.T) {
	cfg := gossipConfig(3, 5)
	loads := make([]float64, 32)
	for i := range loads {
		loads[i] = float64(i % 5)
	}
	s1, n1 := runGossip(t, loads, cfg)
	s2, n2 := runGossip(t, loads, cfg)
	if n1 != n2 {
		t.Fatalf("message counts differ: %d vs %d", n1, n2)
	}
	for r := range s1 {
		e1, e2 := s1[r].Knowledge().Entries(), s2[r].Knowledge().Entries()
		if len(e1) != len(e2) {
			t.Fatalf("rank %d knowledge differs", r)
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("rank %d entry %d differs", r, i)
			}
		}
	}
}

func TestGossipTerminates(t *testing.T) {
	// Even in flood mode the rounds bound guarantees termination.
	cfg := gossipConfig(2, 3)
	cfg.FloodForward = true
	loads := make([]float64, 16)
	for i := range loads {
		loads[i] = float64(i)
	}
	_, delivered := runGossip(t, loads, cfg)
	if delivered <= 0 {
		t.Error("no messages delivered")
	}
}

func TestKnowledgeBasics(t *testing.T) {
	k := NewKnowledge(8)
	if !k.Add(3, 1.5) {
		t.Error("first Add returned false")
	}
	if k.Add(3, 9.9) {
		t.Error("duplicate Add returned true")
	}
	if k.Load(3) != 1.5 {
		t.Error("duplicate Add overwrote load")
	}
	k.Update(3, 2.0)
	if k.Load(3) != 2.0 {
		t.Error("Update did not apply")
	}
	if k.Len() != 1 || !k.Contains(3) || k.Contains(4) {
		t.Error("membership wrong")
	}
	if k.NumRanks() != 8 {
		t.Error("NumRanks wrong")
	}
	mustPanic(t, "Update unknown", func() { k.Update(5, 1) })
	mustPanic(t, "Load unknown", func() { k.Load(5) })
}

func TestKnowledgeEntriesSnapshotImmutable(t *testing.T) {
	k := NewKnowledge(8)
	k.Add(1, 1)
	snap := k.Entries()
	k.Add(2, 2)
	k.Update(1, 99)
	if len(snap) != 1 || snap[0].Load != 1 {
		t.Errorf("snapshot mutated: %v", snap)
	}
}

func TestKnowledgeMergeAndReset(t *testing.T) {
	k := NewKnowledge(8)
	added := k.Merge([]RankLoad{{1, 1}, {2, 2}, {1, 9}})
	if added != 2 || k.Len() != 2 {
		t.Errorf("Merge added %d, len %d", added, k.Len())
	}
	snap := k.Entries()
	k.Reset()
	if k.Len() != 0 || k.Contains(1) {
		t.Error("Reset did not clear")
	}
	if len(snap) != 2 {
		t.Error("Reset invalidated prior snapshot")
	}
	if !k.Add(1, 5) {
		t.Error("Add after Reset failed")
	}
	if k.Load(1) != 5 {
		t.Error("load after Reset wrong")
	}
}

func TestKnowledgeMaxLoad(t *testing.T) {
	k := NewKnowledge(8)
	if k.MaxLoad() != 0 {
		t.Error("MaxLoad of empty != 0")
	}
	k.Add(1, 3)
	k.Add(2, 7)
	k.Update(2, 1)
	k.Update(1, 4)
	if got := k.MaxLoad(); got != 4 {
		t.Errorf("MaxLoad = %g, want 4 (post-update values)", got)
	}
}
