package core

import (
	"math/rand"
	"sort"
)

// CMF is the cumulative mass function over a rank's known underloaded
// ranks built by BUILDCMF (Algorithm 2 lines 21–32). Sampling it picks
// the recipient of a prospective transfer, weighting ranks by their load
// deficit relative to the normalization level l_s.
type CMF struct {
	ranks []Rank
	cum   []float64
}

// BuildCMF constructs the CMF over the knowledge entries, excluding the
// building rank itself (a rank never transfers to itself). ok is false
// when no candidate has positive probability — every known rank sits at
// or above the normalization level — in which case sampling is
// impossible and the transfer loop must stop.
//
// For CMFOriginal, l_s = l_ave and any entry at or above the average
// contributes zero mass (the original algorithm assumes strictly
// underloaded entries; clamping keeps the function well-defined when the
// relaxed criterion has pushed a recipient past the average).
// For CMFModified, l_s = max(l_ave, max known load), the paper's §V-C
// fix that keeps every probability non-negative by construction.
func BuildCMF(know *Knowledge, self Rank, ave float64, kind CMFKind) (CMF, bool) {
	var c CMF
	ok := c.Rebuild(know, self, ave, kind)
	return c, ok
}

// Rebuild reconstructs the CMF in place over the current knowledge,
// reusing the receiver's backing arrays. It is the allocation-free core
// of BuildCMF, used by the transfer stage when cfg.RecomputeCMF rebuilds
// after every accepted transfer (line 7). It reports whether any
// candidate has positive mass; on false the receiver is left empty.
func (c *CMF) Rebuild(know *Knowledge, self Rank, ave float64, kind CMFKind) bool {
	c.ranks = c.ranks[:0]
	c.cum = c.cum[:0]
	ls := ave
	if kind == CMFModified {
		if m := know.MaxLoad(); m > ls {
			ls = m
		}
	}
	if ls <= 0 {
		return false
	}
	entries := know.Entries()
	z := 0.0
	for _, e := range entries {
		r := e.Rank
		if r == self {
			continue
		}
		p := 1 - know.Load(r)/ls
		if p < 0 {
			p = 0
		}
		z += p
		c.ranks = append(c.ranks, r)
		c.cum = append(c.cum, z)
	}
	if z <= 0 {
		c.ranks = c.ranks[:0]
		c.cum = c.cum[:0]
		return false
	}
	// Normalize so the final cumulative value is exactly 1.
	for i := range c.cum {
		c.cum[i] /= z
	}
	c.cum[len(c.cum)-1] = 1
	return true
}

// Len returns the number of candidate ranks.
func (c CMF) Len() int { return len(c.ranks) }

// Sample draws a recipient rank according to the mass function.
func (c CMF) Sample(rng *rand.Rand) Rank {
	u := rng.Float64()
	// Smallest i with cum[i] > u identifies the bucket whose cumulative
	// range (cum[i-1], cum[i]] contains u; buckets with zero mass have an
	// empty range and cannot be selected.
	i := sort.Search(len(c.cum), func(j int) bool { return c.cum[j] > u })
	if i >= len(c.ranks) {
		i = len(c.ranks) - 1
	}
	return c.ranks[i]
}

// Blend returns a CMF whose mass mixes this one with normalized
// per-rank weights: p'_i = (1−bias)·p_i + bias·w_i/Σw. It implements
// the communication-aware recipient selection of the §VII extension.
// When the weights sum to zero (the task has no partners on any
// candidate) the receiver is returned unchanged.
func (c CMF) Blend(weight func(Rank) float64, bias float64) CMF {
	if bias <= 0 || len(c.ranks) == 0 {
		return c
	}
	ws := make([]float64, len(c.ranks))
	sum := 0.0
	for i, r := range c.ranks {
		w := weight(r)
		if w < 0 {
			w = 0
		}
		ws[i] = w
		sum += w
	}
	if sum == 0 {
		return c
	}
	out := CMF{ranks: c.ranks, cum: make([]float64, len(c.cum))}
	acc := 0.0
	for i := range c.ranks {
		acc += (1-bias)*c.Prob(i) + bias*ws[i]/sum
		out.cum[i] = acc
	}
	out.cum[len(out.cum)-1] = 1
	return out
}

// Prob returns the probability mass assigned to the i-th candidate, for
// inspection in tests.
func (c CMF) Prob(i int) float64 {
	if i == 0 {
		return c.cum[0]
	}
	return c.cum[i] - c.cum[i-1]
}

// Rank returns the i-th candidate rank.
func (c CMF) Rank(i int) Rank { return c.ranks[i] }
