package core

import "time"

// This file is the engine-side twin of the transport fault injection in
// internal/comm: the same drop/dup/delay/slow grammar, applied to the
// one protocol the synchronous engine simulates asynchronously. The
// legacy drop-only path in gossip() keeps its dedicated RNG stream for
// bit-compatibility with earlier versions; any richer spec switches to
// the virtual-time queue below.

// gossipFaultsRich reports whether the configuration needs the
// virtual-time delivery queue instead of the legacy FIFO path.
func (c *Config) gossipFaultsRich() bool {
	return c.GossipDup > 0 || c.GossipDelayMin > 0 || c.GossipDelayMax > 0 ||
		len(c.GossipSlowRanks) > 0
}

// gossipEvent is one scheduled delivery in the virtual-time gossip
// transport. seq is the enqueue index: it breaks delivery-time ties, so
// an all-zero-delay spec degenerates to exact FIFO order, and it keys
// the per-message fault decisions.
type gossipEvent struct {
	at   time.Duration
	seq  uint64
	from Rank
	s    Send
}

// eventLess orders the heap by (delivery time, enqueue index).
func eventLess(a, b gossipEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushEvent and popEvent are a plain binary min-heap over the scratch
// slice; container/heap would force the slice behind an interface and
// allocate per operation.
func pushEvent(h []gossipEvent, ev gossipEvent) []gossipEvent {
	h = append(h, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func popEvent(h []gossipEvent) (gossipEvent, []gossipEvent) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && eventLess(h[l], h[min]) {
			min = l
		}
		if r < len(h) && eventLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top, h
}

// Salts separating the per-message fault decision streams.
const (
	gossipSaltDrop  = 0xd209
	gossipSaltDup   = 0xd7b1
	gossipSaltDelay = 0xde1a // +copy for the duplicate's own delay
)

// gossipFaultWord returns a uniform [0,1) draw for one decision about
// one enqueued message, as a stateless hash — no generator state, so
// delivery order cannot perturb later decisions.
func gossipFaultWord(base, seq, salt uint64) float64 {
	u := splitmix64(base ^ splitmix64(seq*0x9e3779b97f4a7c15^salt))
	return float64(u>>11) / (1 << 53)
}

// gossipVirtualTime delivers the inform stage through a virtual-time
// event queue with the full fault grammar: per-message drop and
// duplication decided by stateless hashes, a uniform latency band, and
// per-rank straggler penalties on both endpoints. Cascaded forwards
// inherit the triggering delivery's virtual time as their send time.
func (e *Engine) gossipVirtualTime(work *Assignment, ave float64, st *IterationStats) {
	cfg := &e.cfg
	states := e.sc.states
	fseed := cfg.GossipFaultSeed
	if fseed == 0 {
		fseed = cfg.Seed
	}
	base := uint64(deriveSeed(fseed, int64(st.Trial), int64(st.Iteration), 0xfa5e))

	delayFor := func(seq, nthCopy uint64, from, to Rank) time.Duration {
		d := time.Duration(0)
		if cfg.GossipDelayMax > 0 {
			band := cfg.GossipDelayMax - cfg.GossipDelayMin
			u := gossipFaultWord(base, seq, gossipSaltDelay+nthCopy)
			d = cfg.GossipDelayMin + time.Duration(u*float64(band))
		}
		d += cfg.GossipSlowRanks[int(from)]
		d += cfg.GossipSlowRanks[int(to)]
		return d
	}

	h := e.sc.events[:0]
	var seq uint64
	enqueue := func(s Send, from Rank, now time.Duration) {
		mySeq := seq
		seq++
		if cfg.GossipDrop > 0 && gossipFaultWord(base, mySeq, gossipSaltDrop) < cfg.GossipDrop {
			st.GossipDropped++
			return
		}
		h = pushEvent(h, gossipEvent{
			at: now + delayFor(mySeq, 0, from, s.To), seq: mySeq, from: from, s: s,
		})
		if cfg.GossipDup > 0 && gossipFaultWord(base, mySeq, gossipSaltDup) < cfg.GossipDup {
			st.GossipDuplicated++
			h = pushEvent(h, gossipEvent{
				at: now + delayFor(mySeq, 1, from, s.To), seq: mySeq, from: from, s: s,
			})
		}
	}

	for r := range states {
		for _, s := range states[r].Begin(ave, work.RankLoad(Rank(r))) {
			enqueue(s, Rank(r), 0)
		}
	}
	for len(h) > 0 {
		var ev gossipEvent
		ev, h = popEvent(h)
		st.GossipMessages++
		st.GossipEntries += len(ev.s.Msg.Entries)
		more, _ := states[ev.s.To].Receive(ev.s.Msg)
		for _, s := range more {
			enqueue(s, ev.s.To, ev.at)
		}
	}
	e.sc.events = h[:0]
}
