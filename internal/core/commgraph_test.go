package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestCommGraphConnectAccumulates(t *testing.T) {
	g := NewCommGraph(4)
	g.Connect(0, 1, 2)
	g.Connect(1, 0, 3) // symmetric accumulation
	g.Connect(0, 0, 5) // self edge ignored
	g.Connect(0, 2, 0) // zero volume ignored
	g.Connect(0, 3, -1)

	edges := g.Edges(0)
	if len(edges) != 1 || edges[0].Peer != 1 || edges[0].Volume != 5 {
		t.Errorf("edges(0) = %v", edges)
	}
	if got := g.TotalVolume(); got != 5 {
		t.Errorf("TotalVolume = %g", got)
	}
}

func TestCommGraphRemoteVolume(t *testing.T) {
	g := NewCommGraph(4)
	g.Connect(0, 1, 2)
	g.Connect(2, 3, 4)
	g.Connect(0, 3, 1)

	owners := []Rank{0, 0, 1, 1}
	// Edge 0-1 local, 2-3 local, 0-3 remote.
	if got := g.RemoteVolume(owners); got != 1 {
		t.Errorf("RemoteVolume = %g, want 1", got)
	}
	allSame := []Rank{5, 5, 5, 5}
	if got := g.RemoteVolume(allSame); got != 0 {
		t.Errorf("colocated RemoteVolume = %g", got)
	}
	allDiff := []Rank{0, 1, 2, 3}
	if got := g.RemoteVolume(allDiff); got != g.TotalVolume() {
		t.Errorf("scattered RemoteVolume = %g, want %g", got, g.TotalVolume())
	}
}

func TestCommGraphAffinity(t *testing.T) {
	g := NewCommGraph(5)
	g.Connect(0, 1, 2)
	g.Connect(0, 2, 3)
	g.Connect(0, 3, 4)
	owners := []Rank{9, 7, 7, 8, 8}
	aff := g.Affinity(0, owners)
	if aff[7] != 5 || aff[8] != 4 {
		t.Errorf("Affinity = %v", aff)
	}
	if _, ok := aff[9]; ok {
		t.Error("affinity to a rank with no partners present")
	}
}

func TestCommGraphPanicsOutOfRange(t *testing.T) {
	g := NewCommGraph(2)
	mustPanic(t, "Edges", func() { g.Edges(5) })
	mustPanic(t, "Connect", func() { g.Connect(0, 5, 1) })
	mustPanic(t, "RemoteVolume short owners", func() { g.RemoteVolume([]Rank{0}) })
}

func TestCMFBlendProperties(t *testing.T) {
	k := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 1}, RankLoad{2, 2})
	base, ok := BuildCMF(k, 9, 4, CMFOriginal)
	if !ok {
		t.Fatal("base CMF failed")
	}
	// Zero bias or zero weights: unchanged.
	same := base.Blend(func(r Rank) float64 { return 0 }, 0.5)
	for i := 0; i < base.Len(); i++ {
		if same.Prob(i) != base.Prob(i) {
			t.Error("zero-weight blend changed mass")
		}
	}
	// Full-ish bias concentrates on the weighted rank.
	heavy := base.Blend(func(r Rank) float64 {
		if r == 2 {
			return 1
		}
		return 0
	}, 0.9)
	if heavy.Prob(2) < 0.9 {
		t.Errorf("blended prob to favored rank = %g", heavy.Prob(2))
	}
	// Blended CMF remains a valid distribution.
	prev := 0.0
	for i := 0; i < heavy.Len(); i++ {
		if heavy.Prob(i) < -1e-12 || heavy.cum[i] < prev {
			t.Fatal("blend broke CMF validity")
		}
		prev = heavy.cum[i]
	}
	if math.Abs(heavy.cum[heavy.Len()-1]-1) > 1e-12 {
		t.Error("blend does not end at 1")
	}
}

// commClusteredWorkload builds tasks in communicating cliques, all
// placed on a few ranks: balancing must spread the load while the
// comm-aware mode should keep cliques together.
func commClusteredWorkload(seed int64) (*Assignment, *CommGraph) {
	rng := rand.New(rand.NewSource(seed))
	const ranks, cliques, perClique = 24, 30, 8
	a := NewAssignment(ranks)
	g := NewCommGraph(cliques * perClique)
	for c := 0; c < cliques; c++ {
		var ids []TaskID
		for i := 0; i < perClique; i++ {
			ids = append(ids, a.Add(0.3+rng.Float64(), Rank(rng.Intn(3))))
		}
		for i := 0; i < perClique; i++ {
			for j := i + 1; j < perClique; j++ {
				g.Connect(ids[i], ids[j], 1)
			}
		}
	}
	return a, g
}

// TestCommBiasReducesRemoteVolume is the headline test of the §VII
// extension: with the same refinement budget, biased recipient
// selection achieves lower cross-rank communication at comparable
// imbalance.
func TestCommBiasReducesRemoteVolume(t *testing.T) {
	run := func(bias float64) *Result {
		a, g := commClusteredWorkload(5)
		cfg := Tempered()
		cfg.Trials, cfg.Iterations = 3, 6
		cfg.Rounds, cfg.Fanout = 4, 3
		cfg.CommBias = bias
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunWithComm(a, g)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(0)
	aware := run(0.7)
	if aware.RemoteVolumeAfter >= plain.RemoteVolumeAfter {
		t.Errorf("comm bias did not reduce remote volume: %g vs %g",
			aware.RemoteVolumeAfter, plain.RemoteVolumeAfter)
	}
	// Imbalance must stay in the same ballpark (bias trades some I for
	// locality, not all of it).
	if aware.FinalImbalance > plain.FinalImbalance*3+0.5 {
		t.Errorf("comm bias destroyed balance: I %g vs %g",
			aware.FinalImbalance, plain.FinalImbalance)
	}
	// Both still improve on the input.
	if aware.FinalImbalance >= aware.InitialImbalance/2 {
		t.Errorf("comm-aware run failed to balance: %g -> %g",
			aware.InitialImbalance, aware.FinalImbalance)
	}
}

func TestRunWithCommReportsVolumes(t *testing.T) {
	a, g := commClusteredWorkload(6)
	cfg := Tempered()
	cfg.Trials, cfg.Iterations = 1, 2
	cfg.Rounds, cfg.Fanout = 3, 3
	eng, _ := NewEngine(cfg)
	res, err := eng.RunWithComm(a, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteVolumeBefore != g.RemoteVolume(a.Owners()) {
		t.Error("RemoteVolumeBefore mismatch")
	}
	res.Apply(a)
	if math.Abs(res.RemoteVolumeAfter-g.RemoteVolume(a.Owners())) > 1e-9 {
		t.Error("RemoteVolumeAfter does not match applied distribution")
	}
}

func TestRunWithoutCommReportsZero(t *testing.T) {
	a := clusteredAssignment(16, 2, 50, 7)
	eng, _ := NewEngine(smallTempered())
	res, _ := eng.Run(a)
	if res.RemoteVolumeBefore != 0 || res.RemoteVolumeAfter != 0 {
		t.Error("volumes reported without a graph")
	}
}

func TestConfigValidatesCommBias(t *testing.T) {
	cfg := Tempered()
	cfg.CommBias = 1.0
	if err := cfg.Validate(); err == nil {
		t.Error("CommBias=1 accepted")
	}
	cfg.CommBias = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative CommBias accepted")
	}
	cfg.CommBias = 0.5
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid CommBias rejected: %v", err)
	}
}
