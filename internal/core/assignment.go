package core

import (
	"fmt"
	"math"
	"sort"
)

// Rank identifies a logical process (an MPI-rank equivalent).
type Rank int32

// TaskID identifies a migratable task (a mesh "color" in EMPIRE terms).
// IDs are dense indices assigned by the Assignment that created the task.
type TaskID int32

// Task pairs a task with its instrumented load (seconds of work measured
// in the previous phase, per the principle of persistence, §III-B).
type Task struct {
	ID   TaskID
	Load float64
}

// Assignment tracks which rank owns each task and the per-rank load
// totals. It is the mutable object/rank distribution D of the paper's
// analysis. The zero value is unusable; construct with NewAssignment.
type Assignment struct {
	numRanks  int
	loads     []float64 // per task
	owner     []Rank    // per task
	rankTasks [][]TaskID
	pos       []int32 // index of task within its owner's list
	rankLoad  []float64
	totalLoad float64
}

// NewAssignment creates an empty assignment over numRanks ranks.
func NewAssignment(numRanks int) *Assignment {
	if numRanks < 1 {
		panic(fmt.Sprintf("core: NewAssignment: numRanks must be >= 1, got %d", numRanks))
	}
	return &Assignment{
		numRanks:  numRanks,
		rankTasks: make([][]TaskID, numRanks),
		rankLoad:  make([]float64, numRanks),
	}
}

// Add creates a new task with the given load on rank r and returns its ID.
// Loads must be non-negative.
func (a *Assignment) Add(load float64, r Rank) TaskID {
	if load < 0 || math.IsNaN(load) {
		panic(fmt.Sprintf("core: Add: invalid load %g", load))
	}
	a.checkRank(r)
	id := TaskID(len(a.loads))
	a.loads = append(a.loads, load)
	a.owner = append(a.owner, r)
	a.pos = append(a.pos, int32(len(a.rankTasks[r])))
	a.rankTasks[r] = append(a.rankTasks[r], id)
	a.rankLoad[r] += load
	a.totalLoad += load
	return id
}

// Move transfers task id to rank to, updating both ranks' loads.
func (a *Assignment) Move(id TaskID, to Rank) {
	a.checkTask(id)
	a.checkRank(to)
	from := a.owner[id]
	if from == to {
		return
	}
	// Swap-delete from the old owner's list.
	list := a.rankTasks[from]
	p := a.pos[id]
	last := list[len(list)-1]
	list[p] = last
	a.pos[last] = p
	a.rankTasks[from] = list[:len(list)-1]
	// Append to the new owner's list.
	a.pos[id] = int32(len(a.rankTasks[to]))
	a.rankTasks[to] = append(a.rankTasks[to], id)
	a.owner[id] = to
	a.rankLoad[from] -= a.loads[id]
	a.rankLoad[to] += a.loads[id]
}

// Owner returns the rank currently owning task id.
func (a *Assignment) Owner(id TaskID) Rank {
	a.checkTask(id)
	return a.owner[id]
}

// Load returns the instrumented load of task id.
func (a *Assignment) Load(id TaskID) float64 {
	a.checkTask(id)
	return a.loads[id]
}

// SetLoad replaces the load of task id (e.g. after a new phase's
// instrumentation) and updates the owning rank's total.
func (a *Assignment) SetLoad(id TaskID, load float64) {
	a.checkTask(id)
	if load < 0 || math.IsNaN(load) {
		panic(fmt.Sprintf("core: SetLoad: invalid load %g", load))
	}
	r := a.owner[id]
	a.rankLoad[r] += load - a.loads[id]
	a.totalLoad += load - a.loads[id]
	a.loads[id] = load
}

// RankLoad returns rank r's current total task load.
func (a *Assignment) RankLoad(r Rank) float64 {
	a.checkRank(r)
	return a.rankLoad[r]
}

// RankLoads returns a copy of the per-rank load vector.
func (a *Assignment) RankLoads() []float64 {
	return append([]float64(nil), a.rankLoad...)
}

// TotalLoad returns the sum of all task loads.
func (a *Assignment) TotalLoad() float64 { return a.totalLoad }

// AveLoad returns the average per-rank load l_ave, a global constant of
// any LB invocation since transfers conserve load.
func (a *Assignment) AveLoad() float64 { return a.totalLoad / float64(a.numRanks) }

// NumRanks returns the number of ranks.
func (a *Assignment) NumRanks() int { return a.numRanks }

// NumTasks returns the number of tasks.
func (a *Assignment) NumTasks() int { return len(a.loads) }

// TasksOf returns rank r's tasks sorted by ID ("identifying index
// order"), the deterministic arbitrary order of Algorithm 2 line 41.
func (a *Assignment) TasksOf(r Rank) []Task {
	return a.AppendTasksOf(nil, r)
}

// AppendTasksOf appends rank r's tasks in ascending ID order to dst and
// returns the extended slice, allocating only when dst lacks capacity.
// It is the buffer-reusing form of TasksOf for per-iteration hot paths.
func (a *Assignment) AppendTasksOf(dst []Task, r Rank) []Task {
	a.checkRank(r)
	ids := a.rankTasks[r]
	start := len(dst)
	for _, id := range ids {
		dst = append(dst, Task{ID: id, Load: a.loads[id]})
	}
	out := dst[start:]
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return dst
}

// TaskCount returns the number of tasks on rank r without allocating.
func (a *Assignment) TaskCount(r Rank) int {
	a.checkRank(r)
	return len(a.rankTasks[r])
}

// MaxTaskLoad returns the largest single task load (0 if no tasks), the
// second term of the Fig. 4b lower bound.
func (a *Assignment) MaxTaskLoad() float64 {
	max := 0.0
	for _, l := range a.loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Imbalance computes I = l_max/l_ave − 1 over the current rank loads.
func (a *Assignment) Imbalance() float64 {
	if a.totalLoad == 0 {
		return 0
	}
	max := 0.0
	for _, l := range a.rankLoad {
		if l > max {
			max = l
		}
	}
	return max/a.AveLoad() - 1
}

// Clone returns a deep copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{
		numRanks:  a.numRanks,
		loads:     append([]float64(nil), a.loads...),
		owner:     append([]Rank(nil), a.owner...),
		rankTasks: make([][]TaskID, a.numRanks),
		pos:       append([]int32(nil), a.pos...),
		rankLoad:  append([]float64(nil), a.rankLoad...),
		totalLoad: a.totalLoad,
	}
	for r, list := range a.rankTasks {
		c.rankTasks[r] = append([]TaskID(nil), list...)
	}
	return c
}

// Owners returns a copy of the task→rank owner vector, indexed by TaskID.
func (a *Assignment) Owners() []Rank {
	return append([]Rank(nil), a.owner...)
}

// AppendOwners appends the task→rank owner vector to dst and returns the
// extended slice — the buffer-reusing form of Owners.
func (a *Assignment) AppendOwners(dst []Rank) []Rank {
	return append(dst, a.owner...)
}

// CopyFrom makes a deep copy of src into a, reusing a's existing storage
// (including the per-rank task lists) where capacity allows. The engine
// uses it to reset its working distribution at each trial (Algorithm 3
// line 3) without re-cloning.
func (a *Assignment) CopyFrom(src *Assignment) {
	a.numRanks = src.numRanks
	a.loads = append(a.loads[:0], src.loads...)
	a.owner = append(a.owner[:0], src.owner...)
	a.pos = append(a.pos[:0], src.pos...)
	a.rankLoad = append(a.rankLoad[:0], src.rankLoad...)
	a.totalLoad = src.totalLoad
	if cap(a.rankTasks) < src.numRanks {
		old := a.rankTasks
		a.rankTasks = make([][]TaskID, src.numRanks)
		copy(a.rankTasks, old)
	}
	a.rankTasks = a.rankTasks[:src.numRanks]
	for r, list := range src.rankTasks {
		a.rankTasks[r] = append(a.rankTasks[r][:0], list...)
	}
}

// Validate checks the internal invariants: every task appears in exactly
// its owner's list at its recorded position, and per-rank loads match the
// sums of their tasks' loads within floating-point tolerance.
func (a *Assignment) Validate() error {
	seen := 0
	for r := range a.rankTasks {
		sum := 0.0
		for p, id := range a.rankTasks[r] {
			if int(id) >= len(a.loads) {
				return fmt.Errorf("core: rank %d lists unknown task %d", r, id)
			}
			if a.owner[id] != Rank(r) {
				return fmt.Errorf("core: task %d in rank %d's list but owned by %d", id, r, a.owner[id])
			}
			if int(a.pos[id]) != p {
				return fmt.Errorf("core: task %d position %d but recorded %d", id, p, a.pos[id])
			}
			sum += a.loads[id]
			seen++
		}
		if math.Abs(sum-a.rankLoad[r]) > 1e-6*(1+math.Abs(sum)) {
			return fmt.Errorf("core: rank %d load %g but tasks sum to %g", r, a.rankLoad[r], sum)
		}
	}
	if seen != len(a.loads) {
		return fmt.Errorf("core: %d tasks reachable from ranks, want %d", seen, len(a.loads))
	}
	return nil
}

func (a *Assignment) checkRank(r Rank) {
	if r < 0 || int(r) >= a.numRanks {
		panic(fmt.Sprintf("core: rank %d out of range [0,%d)", r, a.numRanks))
	}
}

func (a *Assignment) checkTask(id TaskID) {
	if id < 0 || int(id) >= len(a.loads) {
		panic(fmt.Sprintf("core: task %d out of range [0,%d)", id, len(a.loads)))
	}
}
