package core

import (
	"math"
	"math/rand"
	"testing"
)

// clusteredAssignment puts n tasks with seeded loads on the first k of p
// ranks — a small-scale version of the paper's §V-B case.
func clusteredAssignment(p, k, n int, seed int64) *Assignment {
	rng := rand.New(rand.NewSource(seed))
	a := NewAssignment(p)
	for i := 0; i < n; i++ {
		a.Add(0.2+rng.Float64(), Rank(rng.Intn(k)))
	}
	return a
}

func smallTempered() Config {
	cfg := Tempered()
	cfg.Trials = 2
	cfg.Iterations = 4
	cfg.Rounds = 5
	cfg.Fanout = 3
	return cfg
}

func TestEngineImprovesImbalance(t *testing.T) {
	a := clusteredAssignment(64, 4, 400, 1)
	eng, err := NewEngine(smallTempered())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialImbalance < 5 {
		t.Fatalf("test workload not imbalanced enough: %g", res.InitialImbalance)
	}
	if res.FinalImbalance >= res.InitialImbalance/2 {
		t.Errorf("engine barely improved: %g -> %g", res.InitialImbalance, res.FinalImbalance)
	}
}

func TestEngineDoesNotModifyInput(t *testing.T) {
	a := clusteredAssignment(32, 2, 100, 2)
	before := a.Owners()
	eng, _ := NewEngine(smallTempered())
	if _, err := eng.Run(a); err != nil {
		t.Fatal(err)
	}
	after := a.Owners()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Run modified the input assignment")
		}
	}
}

func TestEngineApplyReachesReportedImbalance(t *testing.T) {
	a := clusteredAssignment(32, 2, 200, 3)
	eng, _ := NewEngine(smallTempered())
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	res.Apply(a)
	if got := a.Imbalance(); math.Abs(got-res.FinalImbalance) > 1e-9 {
		t.Errorf("applied imbalance %g != reported %g", got, res.FinalImbalance)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineConservesLoad(t *testing.T) {
	a := clusteredAssignment(32, 2, 200, 4)
	total := a.TotalLoad()
	nTasks := a.NumTasks()
	eng, _ := NewEngine(smallTempered())
	res, _ := eng.Run(a)
	res.Apply(a)
	if math.Abs(a.TotalLoad()-total) > 1e-9 {
		t.Errorf("total load changed: %g -> %g", total, a.TotalLoad())
	}
	if a.NumTasks() != nTasks {
		t.Errorf("task count changed: %d -> %d", nTasks, a.NumTasks())
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() *Result {
		a := clusteredAssignment(48, 3, 300, 5)
		eng, _ := NewEngine(smallTempered())
		res, _ := eng.Run(a)
		return res
	}
	r1, r2 := run(), run()
	if r1.FinalImbalance != r2.FinalImbalance || len(r1.Moves) != len(r2.Moves) {
		t.Fatalf("non-deterministic: %v vs %v", r1, r2)
	}
	for i := range r1.Moves {
		if r1.Moves[i] != r2.Moves[i] {
			t.Fatalf("move %d differs", i)
		}
	}
	for i := range r1.History {
		// ElapsedSeconds is wall-clock and legitimately varies between
		// runs; everything else must be bit-identical.
		h1, h2 := r1.History[i], r2.History[i]
		if h1.ElapsedSeconds <= 0 || h2.ElapsedSeconds <= 0 {
			t.Errorf("history entry %d missing elapsed time: %g vs %g",
				i, h1.ElapsedSeconds, h2.ElapsedSeconds)
		}
		h1.ElapsedSeconds, h2.ElapsedSeconds = 0, 0
		if h1 != h2 {
			t.Fatalf("history entry %d differs: %+v vs %+v", i, h1, h2)
		}
	}
}

func TestEngineSeedChangesOutcome(t *testing.T) {
	a := clusteredAssignment(48, 3, 300, 6)
	cfg1 := smallTempered()
	cfg2 := smallTempered()
	cfg2.Seed = 999
	e1, _ := NewEngine(cfg1)
	e2, _ := NewEngine(cfg2)
	r1, _ := e1.Run(a)
	r2, _ := e2.Run(a)
	same := len(r1.Moves) == len(r2.Moves)
	if same {
		for i := range r1.Moves {
			if r1.Moves[i] != r2.Moves[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical move sets (suspicious)")
	}
}

func TestEngineNeverWorsensImbalance(t *testing.T) {
	// FinalImbalance is the best over iterations and can never exceed
	// the initial value (the engine keeps the original when nothing
	// improves).
	for seed := int64(0); seed < 10; seed++ {
		a := clusteredAssignment(24, 4, 60, seed)
		eng, _ := NewEngine(smallTempered())
		res, _ := eng.Run(a)
		if res.FinalImbalance > res.InitialImbalance+1e-12 {
			t.Fatalf("seed %d: imbalance worsened %g -> %g", seed, res.InitialImbalance, res.FinalImbalance)
		}
	}
}

func TestEngineEmptyAssignment(t *testing.T) {
	a := NewAssignment(8)
	eng, _ := NewEngine(smallTempered())
	res, err := eng.Run(a)
	if err != nil || len(res.Moves) != 0 {
		t.Errorf("empty run: %v %v", res, err)
	}
}

func TestEngineZeroLoadTasks(t *testing.T) {
	a := NewAssignment(8)
	for i := 0; i < 10; i++ {
		a.Add(0, 0)
	}
	eng, _ := NewEngine(smallTempered())
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalImbalance != 0 {
		t.Errorf("zero-load imbalance = %g", res.FinalImbalance)
	}
}

func TestEngineBalancedInputNoMoves(t *testing.T) {
	a := NewAssignment(4)
	for r := 0; r < 4; r++ {
		a.Add(1, Rank(r))
	}
	eng, _ := NewEngine(smallTempered())
	res, _ := eng.Run(a)
	if len(res.Moves) != 0 {
		t.Errorf("balanced input produced %d moves", len(res.Moves))
	}
	if res.FinalImbalance != res.InitialImbalance {
		t.Errorf("imbalance changed on balanced input")
	}
}

func TestEngineHistoryShape(t *testing.T) {
	cfg := smallTempered()
	a := clusteredAssignment(32, 2, 100, 7)
	eng, _ := NewEngine(cfg)
	res, _ := eng.Run(a)
	if len(res.History) != cfg.Trials*cfg.Iterations {
		t.Fatalf("history length %d, want %d", len(res.History), cfg.Trials*cfg.Iterations)
	}
	idx := 0
	for trial := 1; trial <= cfg.Trials; trial++ {
		for iter := 1; iter <= cfg.Iterations; iter++ {
			h := res.History[idx]
			if h.Trial != trial || h.Iteration != iter {
				t.Fatalf("history[%d] = trial %d iter %d", idx, h.Trial, h.Iteration)
			}
			idx++
		}
	}
}

func TestEngineGrapevineVsTemperedQuality(t *testing.T) {
	// The paper's core claim at small scale: the relaxed criterion with
	// refinement beats the original configuration on a clustered
	// workload with heavy tasks present.
	a := NewAssignment(64)
	rng := rand.New(rand.NewSource(8))
	// Mixture: light plus heavy-above-average tasks on 4 ranks.
	for i := 0; i < 300; i++ {
		a.Add(0.1+0.4*rng.Float64(), Rank(rng.Intn(4)))
	}
	for i := 0; i < 40; i++ {
		a.Add(2.0+rng.Float64(), Rank(rng.Intn(4)))
	}

	gv := Grapevine()
	gv.Iterations = 8
	gvEng, _ := NewEngine(gv)
	gvRes, _ := gvEng.Run(a)

	tp := Tempered()
	tp.Trials = 2
	tp.Iterations = 8
	tpEng, _ := NewEngine(tp)
	tpRes, _ := tpEng.Run(a)

	if tpRes.FinalImbalance >= gvRes.FinalImbalance {
		t.Errorf("TemperedLB (%g) did not beat GrapevineLB (%g)",
			tpRes.FinalImbalance, gvRes.FinalImbalance)
	}
}

func TestEngineRejectionRateStats(t *testing.T) {
	s := IterationStats{Transfers: 1, Rejected: 3}
	if got := s.RejectionRate(); math.Abs(got-75) > 1e-12 {
		t.Errorf("RejectionRate = %g, want 75", got)
	}
	if got := (IterationStats{}).RejectionRate(); got != 0 {
		t.Errorf("empty RejectionRate = %g", got)
	}
}

func TestEngineMovedLoad(t *testing.T) {
	a := clusteredAssignment(16, 2, 50, 9)
	eng, _ := NewEngine(smallTempered())
	res, _ := eng.Run(a)
	want := 0.0
	for _, m := range res.Moves {
		want += a.Load(m.Task)
	}
	if got := res.MovedLoad(a); math.Abs(got-want) > 1e-9 {
		t.Errorf("MovedLoad = %g, want %g", got, want)
	}
}

func TestNewEngineRejectsBadConfig(t *testing.T) {
	cfg := Tempered()
	cfg.Fanout = 0
	if _, err := NewEngine(cfg); err == nil {
		t.Error("NewEngine accepted invalid config")
	}
}

func TestDeriveSeedStreamsIndependent(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 100; i++ {
		s := deriveSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at stream %d", i)
		}
		seen[s] = true
	}
	if deriveSeed(1, 2, 3) == deriveSeed(1, 3, 2) {
		t.Error("stream order should matter")
	}
}

func TestEngineKnowledgeStats(t *testing.T) {
	a := clusteredAssignment(64, 4, 300, 11)
	cfg := smallTempered()
	eng, _ := NewEngine(cfg)
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	// The first iteration has overloaded ranks whose knowledge must be
	// nonempty (gossip ran) and bounded by the rank count.
	first := res.History[0]
	if first.KnowledgeAvg <= 0 {
		t.Errorf("KnowledgeAvg = %g on an imbalanced workload", first.KnowledgeAvg)
	}
	if first.KnowledgeMin < 0 || first.KnowledgeAvg > float64(a.NumRanks()) {
		t.Errorf("knowledge stats out of range: min=%d avg=%g", first.KnowledgeMin, first.KnowledgeAvg)
	}
	if float64(first.KnowledgeMin) > first.KnowledgeAvg {
		t.Errorf("min %d exceeds avg %g", first.KnowledgeMin, first.KnowledgeAvg)
	}
}

func TestEngineKnowledgeCappedByLimitedInfo(t *testing.T) {
	run := func(cap int) float64 {
		a := clusteredAssignment(64, 4, 300, 12)
		cfg := smallTempered()
		cfg.MaxGossipEntries = cap
		eng, _ := NewEngine(cfg)
		res, _ := eng.Run(a)
		return res.History[0].KnowledgeAvg
	}
	if capped, full := run(3), run(0); capped >= full {
		t.Errorf("payload cap did not shrink knowledge: %g vs %g", capped, full)
	}
}

// TestEngineGossipDrop exercises the engine's lossy-gossip knob: drops
// are counted, delivery shrinks, refinement still works, and the same
// seed reproduces the identical run.
func TestEngineGossipDrop(t *testing.T) {
	a := clusteredAssignment(64, 4, 400, 1)
	cfg := smallTempered()
	cfg.GossipDrop = 0.3
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	dropped, delivered := 0, 0
	for _, st := range res.History {
		dropped += st.GossipDropped
		delivered += st.GossipMessages
	}
	if dropped == 0 {
		t.Fatal("GossipDrop=0.3 dropped nothing")
	}
	if delivered == 0 {
		t.Fatal("GossipDrop=0.3 delivered nothing")
	}
	// Loss should land in the neighbourhood of the configured rate.
	rate := float64(dropped) / float64(dropped+delivered)
	if rate < 0.15 || rate > 0.45 {
		t.Errorf("observed drop rate %g, configured 0.3", rate)
	}
	// Lossy gossip degrades knowledge, not correctness.
	if res.FinalImbalance >= res.InitialImbalance {
		t.Errorf("no improvement under lossy gossip: %g -> %g",
			res.InitialImbalance, res.FinalImbalance)
	}
	// Seeded loss is reproducible.
	eng2, _ := NewEngine(cfg)
	res2, err := eng2.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalImbalance != res.FinalImbalance || len(res2.Moves) != len(res.Moves) {
		t.Errorf("seeded lossy run not reproducible: %v vs %v", res2, res)
	}
	for i := range res.History {
		if res.History[i].GossipDropped != res2.History[i].GossipDropped {
			t.Fatalf("drop sequence not reproducible at row %d", i)
		}
	}
}

// TestEngineGossipDropZeroIdentical pins that the knob is inert when off:
// a GossipDrop=0 run is identical to one with the field untouched.
func TestEngineGossipDropZeroIdentical(t *testing.T) {
	a := clusteredAssignment(48, 3, 300, 9)
	base, _ := NewEngine(smallTempered())
	resBase, err := base.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallTempered()
	cfg.GossipDrop = 0
	zero, _ := NewEngine(cfg)
	resZero, err := zero.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if resZero.FinalImbalance != resBase.FinalImbalance ||
		resZero.BestTrial != resBase.BestTrial ||
		resZero.BestIteration != resBase.BestIteration ||
		len(resZero.Moves) != len(resBase.Moves) {
		t.Errorf("GossipDrop=0 changed the outcome: %v vs %v", resZero, resBase)
	}
	for i := range resBase.History {
		if resBase.History[i].GossipDropped != 0 {
			t.Fatal("GossipDropped nonzero with the knob off")
		}
	}
}

func TestEngineGossipDropValidate(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.0, 1.5} {
		cfg := smallTempered()
		cfg.GossipDrop = bad
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("GossipDrop=%g accepted", bad)
		}
	}
}
