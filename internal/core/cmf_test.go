package core

import (
	"math"
	"math/rand"
	"testing"
)

func knowledgeFrom(t *testing.T, entries ...RankLoad) *Knowledge {
	t.Helper()
	max := Rank(0)
	for _, e := range entries {
		if e.Rank > max {
			max = e.Rank
		}
	}
	k := NewKnowledge(int(max) + 2)
	for _, e := range entries {
		k.Add(e.Rank, e.Load)
	}
	return k
}

func TestBuildCMFOriginalWeights(t *testing.T) {
	// ave = 4; loads 0 and 2 -> masses (1-0/4)=1 and (1-2/4)=0.5,
	// normalized to 2/3 and 1/3.
	k := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 2})
	cmf, ok := BuildCMF(k, 5, 4, CMFOriginal)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	if cmf.Len() != 2 {
		t.Fatalf("Len = %d", cmf.Len())
	}
	if got := cmf.Prob(0); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Prob(0) = %g, want 2/3", got)
	}
	if got := cmf.Prob(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Prob(1) = %g, want 1/3", got)
	}
}

func TestBuildCMFOriginalClampsOverloaded(t *testing.T) {
	// A known rank above the average gets zero probability, not negative.
	k := knowledgeFrom(t, RankLoad{0, 10}, RankLoad{1, 1})
	cmf, ok := BuildCMF(k, 5, 4, CMFOriginal)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	if got := cmf.Prob(0); got != 0 {
		t.Errorf("overloaded rank prob = %g, want 0", got)
	}
	if got := cmf.Prob(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("remaining prob = %g, want 1", got)
	}
}

func TestBuildCMFModifiedUsesMaxLoad(t *testing.T) {
	// ave = 2 but max known load is 6 -> l_s = 6;
	// masses (1-0/6)=1, (1-6/6)=0 -> probs 1, 0.
	k := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 6})
	cmf, ok := BuildCMF(k, 5, 2, CMFModified)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	if got := cmf.Prob(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Prob(0) = %g, want 1", got)
	}
	if got := cmf.Prob(1); got != 0 {
		t.Errorf("Prob(1) = %g, want 0", got)
	}
}

func TestBuildCMFExcludesSelf(t *testing.T) {
	k := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 0})
	cmf, ok := BuildCMF(k, 0, 4, CMFOriginal)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	if cmf.Len() != 1 || cmf.Rank(0) != 1 {
		t.Errorf("self not excluded: len=%d", cmf.Len())
	}
}

func TestBuildCMFNoMass(t *testing.T) {
	// Everything at or above the normalization level: no candidates.
	k := knowledgeFrom(t, RankLoad{0, 4}, RankLoad{1, 5})
	if _, ok := BuildCMF(k, 9, 4, CMFOriginal); ok {
		t.Error("expected ok=false for zero total mass")
	}
}

func TestBuildCMFModifiedNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		k := NewKnowledge(n + 1)
		for r := 0; r < n; r++ {
			k.Add(Rank(r), rng.Float64()*10)
		}
		ave := rng.Float64() * 5
		cmf, ok := BuildCMF(k, Rank(n), ave, CMFModified)
		if !ok {
			// Legal only when every load equals the max and exceeds ave,
			// collapsing all mass; skip.
			continue
		}
		prev := 0.0
		for i := 0; i < cmf.Len(); i++ {
			if p := cmf.Prob(i); p < 0 {
				t.Fatalf("negative probability %g", p)
			}
			if cmf.cum[i] < prev {
				t.Fatalf("non-monotone cum at %d", i)
			}
			prev = cmf.cum[i]
		}
		if math.Abs(cmf.cum[cmf.Len()-1]-1) > 1e-12 {
			t.Fatalf("cum does not end at 1: %g", cmf.cum[cmf.Len()-1])
		}
	}
}

func TestCMFSampleRespectsZeroMass(t *testing.T) {
	k := knowledgeFrom(t, RankLoad{0, 4}, RankLoad{1, 0}, RankLoad{2, 4})
	cmf, ok := BuildCMF(k, 9, 4, CMFOriginal)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if got := cmf.Sample(rng); got != 1 {
			t.Fatalf("sampled zero-mass rank %d", got)
		}
	}
}

func TestCMFSampleDistribution(t *testing.T) {
	// probs 2/3 and 1/3: empirical frequencies must be near.
	k := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 2})
	cmf, _ := BuildCMF(k, 9, 4, CMFOriginal)
	rng := rand.New(rand.NewSource(2))
	const n = 30000
	count := 0
	for i := 0; i < n; i++ {
		if cmf.Sample(rng) == 0 {
			count++
		}
	}
	freq := float64(count) / n
	if math.Abs(freq-2.0/3) > 0.02 {
		t.Errorf("empirical freq %g, want ~0.667", freq)
	}
}

// TestCMFEdgeCases pins the boundary behaviour of BUILDCMF for both
// normalization kinds: knowledge where every rank sits at or above the
// normalization level, degenerate all-zero mass, and single-candidate
// knowledge.
func TestCMFEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		kind    CMFKind
		ave     float64
		entries []RankLoad
		wantOK  bool
		// wantProbs is checked entry-by-entry when wantOK; keys are the
		// candidate positions of the insertion order.
		wantProbs []float64
	}{
		{
			// §V-C: with l_s = max load, equal loads at the max collapse
			// every probability to zero — the one case the modified CMF
			// cannot save.
			name: "modified all ranks at shared max", kind: CMFModified,
			ave: 2, entries: []RankLoad{{0, 6}, {1, 6}, {2, 6}}, wantOK: false,
		},
		{
			// §V-C: ranks above the average are exactly what the modified
			// CMF exists for — l_s stretches to the max known load, and
			// everyone below the max keeps positive mass.
			name: "modified all ranks above average", kind: CMFModified,
			ave: 2, entries: []RankLoad{{0, 6}, {1, 3}}, wantOK: true,
			wantProbs: []float64{0, 1},
		},
		{
			name: "modified everyone at the average", kind: CMFModified,
			ave: 4, entries: []RankLoad{{0, 4}, {1, 4}}, wantOK: false,
		},
		{
			name: "original all at or above average", kind: CMFOriginal,
			ave: 4, entries: []RankLoad{{0, 4}, {1, 9}}, wantOK: false,
		},
		{
			// l_s = ave = 0: mass is undefined, Rebuild must refuse.
			name: "zero average zero loads", kind: CMFOriginal,
			ave: 0, entries: []RankLoad{{0, 0}, {1, 0}}, wantOK: false,
		},
		{
			name: "modified zero average zero loads", kind: CMFModified,
			ave: 0, entries: []RankLoad{{0, 0}, {1, 0}}, wantOK: false,
		},
		{
			name: "single idle candidate", kind: CMFOriginal,
			ave: 4, entries: []RankLoad{{0, 0}}, wantOK: true,
			wantProbs: []float64{1},
		},
		{
			name: "empty knowledge", kind: CMFModified,
			ave: 4, entries: nil, wantOK: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := NewKnowledge(10)
			for _, e := range tc.entries {
				k.Add(e.Rank, e.Load)
			}
			cmf, ok := BuildCMF(k, 9, tc.ave, tc.kind)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				if cmf.Len() != 0 {
					t.Errorf("failed build left %d candidates", cmf.Len())
				}
				return
			}
			if cmf.Len() != len(tc.wantProbs) {
				t.Fatalf("Len = %d, want %d", cmf.Len(), len(tc.wantProbs))
			}
			for i, want := range tc.wantProbs {
				if got := cmf.Prob(i); math.Abs(got-want) > 1e-12 {
					t.Errorf("Prob(%d) = %g, want %g", i, got, want)
				}
			}
		})
	}
}

// TestCMFRebuildRecoversAfterFailure exercises the in-place Rebuild used
// by the RecomputeCMF transfer loop: a failed rebuild empties the
// receiver, and a subsequent successful one restores it.
func TestCMFRebuildRecoversAfterFailure(t *testing.T) {
	good := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 2})
	bad := knowledgeFrom(t, RankLoad{0, 4}, RankLoad{1, 5})
	var c CMF
	if !c.Rebuild(good, 9, 4, CMFOriginal) {
		t.Fatal("initial rebuild failed")
	}
	if c.Rebuild(bad, 9, 4, CMFOriginal) {
		t.Fatal("rebuild over zero-mass knowledge succeeded")
	}
	if c.Len() != 0 {
		t.Errorf("failed rebuild kept %d stale candidates", c.Len())
	}
	if !c.Rebuild(good, 9, 4, CMFOriginal) {
		t.Fatal("rebuild after failure failed")
	}
	if c.Len() != 2 || c.Rank(0) != 0 || c.Rank(1) != 1 {
		t.Errorf("recovered CMF wrong: len %d", c.Len())
	}
}

// TestCMFSampleSkipsTrailingZeroMass pins the binary-search boundary: a
// zero-mass bucket in the final position shares its cumulative value with
// its predecessor and must never be selected.
func TestCMFSampleSkipsTrailingZeroMass(t *testing.T) {
	// ls = 6: masses 2/3 for rank 0, exactly 0 for the trailing rank 1.
	k := knowledgeFrom(t, RankLoad{0, 2}, RankLoad{1, 6})
	cmf, ok := BuildCMF(k, 9, 2, CMFModified)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	if got := cmf.Prob(1); got != 0 {
		t.Fatalf("trailing prob = %g, want 0", got)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		if got := cmf.Sample(rng); got != 0 {
			t.Fatalf("sampled trailing zero-mass rank %d", got)
		}
	}
}

// TestKnowledgeCanonicalizeOrderIndependent checks that canonicalized
// knowledge produces the same CMF regardless of insertion (i.e. message
// arrival) order, and that sorting does not disturb contents.
func TestKnowledgeCanonicalizeOrderIndependent(t *testing.T) {
	entries := []RankLoad{{3, 1}, {0, 2}, {2, 0.5}, {1, 3}}
	forward := NewKnowledge(6)
	for _, e := range entries {
		forward.Add(e.Rank, e.Load)
	}
	backward := NewKnowledge(6)
	for i := len(entries) - 1; i >= 0; i-- {
		backward.Add(entries[i].Rank, entries[i].Load)
	}
	forward.Canonicalize()
	backward.Canonicalize()
	fe, be := forward.Entries(), backward.Entries()
	if len(fe) != len(entries) || len(be) != len(entries) {
		t.Fatalf("entry counts: %d, %d, want %d", len(fe), len(be), len(entries))
	}
	for i := range fe {
		if fe[i] != be[i] {
			t.Errorf("entry %d differs after canonicalize: %+v vs %+v", i, fe[i], be[i])
		}
		if i > 0 && fe[i].Rank <= fe[i-1].Rank {
			t.Errorf("entries not sorted by rank at %d", i)
		}
		if forward.Load(fe[i].Rank) != fe[i].Load {
			t.Errorf("load map disturbed for rank %d", fe[i].Rank)
		}
	}
	a, okA := BuildCMF(forward, 5, 2, CMFModified)
	b, okB := BuildCMF(backward, 5, 2, CMFModified)
	if !okA || !okB {
		t.Fatal("BuildCMF failed")
	}
	for i := 0; i < a.Len(); i++ {
		if a.Rank(i) != b.Rank(i) || a.Prob(i) != b.Prob(i) {
			t.Errorf("CMFs differ at %d after canonicalize", i)
		}
	}
}

func TestCMFSampleAlwaysKnownRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		k := NewKnowledge(n)
		for r := 0; r < n-1; r++ {
			k.Add(Rank(r), rng.Float64())
		}
		cmf, ok := BuildCMF(k, Rank(n-1), 2, CMFModified)
		if !ok {
			continue
		}
		for i := 0; i < 50; i++ {
			r := cmf.Sample(rng)
			if !k.Contains(r) {
				t.Fatalf("sampled unknown rank %d", r)
			}
			if r == Rank(n-1) {
				t.Fatalf("sampled self")
			}
		}
	}
}
