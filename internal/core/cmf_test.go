package core

import (
	"math"
	"math/rand"
	"testing"
)

func knowledgeFrom(t *testing.T, entries ...RankLoad) *Knowledge {
	t.Helper()
	max := Rank(0)
	for _, e := range entries {
		if e.Rank > max {
			max = e.Rank
		}
	}
	k := NewKnowledge(int(max) + 2)
	for _, e := range entries {
		k.Add(e.Rank, e.Load)
	}
	return k
}

func TestBuildCMFOriginalWeights(t *testing.T) {
	// ave = 4; loads 0 and 2 -> masses (1-0/4)=1 and (1-2/4)=0.5,
	// normalized to 2/3 and 1/3.
	k := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 2})
	cmf, ok := BuildCMF(k, 5, 4, CMFOriginal)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	if cmf.Len() != 2 {
		t.Fatalf("Len = %d", cmf.Len())
	}
	if got := cmf.Prob(0); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Prob(0) = %g, want 2/3", got)
	}
	if got := cmf.Prob(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Prob(1) = %g, want 1/3", got)
	}
}

func TestBuildCMFOriginalClampsOverloaded(t *testing.T) {
	// A known rank above the average gets zero probability, not negative.
	k := knowledgeFrom(t, RankLoad{0, 10}, RankLoad{1, 1})
	cmf, ok := BuildCMF(k, 5, 4, CMFOriginal)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	if got := cmf.Prob(0); got != 0 {
		t.Errorf("overloaded rank prob = %g, want 0", got)
	}
	if got := cmf.Prob(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("remaining prob = %g, want 1", got)
	}
}

func TestBuildCMFModifiedUsesMaxLoad(t *testing.T) {
	// ave = 2 but max known load is 6 -> l_s = 6;
	// masses (1-0/6)=1, (1-6/6)=0 -> probs 1, 0.
	k := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 6})
	cmf, ok := BuildCMF(k, 5, 2, CMFModified)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	if got := cmf.Prob(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("Prob(0) = %g, want 1", got)
	}
	if got := cmf.Prob(1); got != 0 {
		t.Errorf("Prob(1) = %g, want 0", got)
	}
}

func TestBuildCMFExcludesSelf(t *testing.T) {
	k := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 0})
	cmf, ok := BuildCMF(k, 0, 4, CMFOriginal)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	if cmf.Len() != 1 || cmf.Rank(0) != 1 {
		t.Errorf("self not excluded: len=%d", cmf.Len())
	}
}

func TestBuildCMFNoMass(t *testing.T) {
	// Everything at or above the normalization level: no candidates.
	k := knowledgeFrom(t, RankLoad{0, 4}, RankLoad{1, 5})
	if _, ok := BuildCMF(k, 9, 4, CMFOriginal); ok {
		t.Error("expected ok=false for zero total mass")
	}
}

func TestBuildCMFModifiedNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		k := NewKnowledge(n + 1)
		for r := 0; r < n; r++ {
			k.Add(Rank(r), rng.Float64()*10)
		}
		ave := rng.Float64() * 5
		cmf, ok := BuildCMF(k, Rank(n), ave, CMFModified)
		if !ok {
			// Legal only when every load equals the max and exceeds ave,
			// collapsing all mass; skip.
			continue
		}
		prev := 0.0
		for i := 0; i < cmf.Len(); i++ {
			if p := cmf.Prob(i); p < 0 {
				t.Fatalf("negative probability %g", p)
			}
			if cmf.cum[i] < prev {
				t.Fatalf("non-monotone cum at %d", i)
			}
			prev = cmf.cum[i]
		}
		if math.Abs(cmf.cum[cmf.Len()-1]-1) > 1e-12 {
			t.Fatalf("cum does not end at 1: %g", cmf.cum[cmf.Len()-1])
		}
	}
}

func TestCMFSampleRespectsZeroMass(t *testing.T) {
	k := knowledgeFrom(t, RankLoad{0, 4}, RankLoad{1, 0}, RankLoad{2, 4})
	cmf, ok := BuildCMF(k, 9, 4, CMFOriginal)
	if !ok {
		t.Fatal("BuildCMF failed")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if got := cmf.Sample(rng); got != 1 {
			t.Fatalf("sampled zero-mass rank %d", got)
		}
	}
}

func TestCMFSampleDistribution(t *testing.T) {
	// probs 2/3 and 1/3: empirical frequencies must be near.
	k := knowledgeFrom(t, RankLoad{0, 0}, RankLoad{1, 2})
	cmf, _ := BuildCMF(k, 9, 4, CMFOriginal)
	rng := rand.New(rand.NewSource(2))
	const n = 30000
	count := 0
	for i := 0; i < n; i++ {
		if cmf.Sample(rng) == 0 {
			count++
		}
	}
	freq := float64(count) / n
	if math.Abs(freq-2.0/3) > 0.02 {
		t.Errorf("empirical freq %g, want ~0.667", freq)
	}
}

func TestCMFSampleAlwaysKnownRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		k := NewKnowledge(n)
		for r := 0; r < n-1; r++ {
			k.Add(Rank(r), rng.Float64())
		}
		cmf, ok := BuildCMF(k, Rank(n-1), 2, CMFModified)
		if !ok {
			continue
		}
		for i := 0; i < 50; i++ {
			r := cmf.Sample(rng)
			if !k.Contains(r) {
				t.Fatalf("sampled unknown rank %d", r)
			}
			if r == Rank(n-1) {
				t.Fatalf("sampled self")
			}
		}
	}
}
