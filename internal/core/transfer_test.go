package core

import (
	"math"
	"math/rand"
	"testing"
)

func transferConfig(crit Criterion) Config {
	cfg := Grapevine()
	cfg.Criterion = crit
	if crit == CriterionRelaxed {
		cfg.CMF = CMFModified
		cfg.RecomputeCMF = true
	}
	return cfg
}

func TestRunTransferEmptyKnowledge(t *testing.T) {
	cfg := transferConfig(CriterionOriginal)
	know := NewKnowledge(4)
	props, st, load := RunTransfer(0, tasksFromLoads(5, 5), 10, 1, know, &cfg, rand.New(rand.NewSource(1)))
	if props != nil || st.Accepted != 0 || load != 10 {
		t.Errorf("transfer with no knowledge did something: %v %+v %g", props, st, load)
	}
}

func TestRunTransferNotOverloaded(t *testing.T) {
	cfg := transferConfig(CriterionOriginal)
	know := knowledgeFrom(t, RankLoad{1, 0})
	props, st, load := RunTransfer(0, tasksFromLoads(1), 1, 2, know, &cfg, rand.New(rand.NewSource(1)))
	if len(props) != 0 || st.Accepted+st.Rejected != 0 || load != 1 {
		t.Errorf("non-overloaded rank transferred: %v %+v", props, st)
	}
}

func TestRunTransferShedsUntilThreshold(t *testing.T) {
	cfg := transferConfig(CriterionRelaxed)
	// Rank 0 has 10 unit tasks; ave 2; plenty of empty recipients.
	know := knowledgeFrom(t, RankLoad{1, 0}, RankLoad{2, 0}, RankLoad{3, 0}, RankLoad{4, 0})
	tasks := tasksFromLoads(1, 1, 1, 1, 1, 1, 1, 1, 1, 1)
	props, st, load := RunTransfer(0, tasks, 10, 2, know, &cfg, rand.New(rand.NewSource(2)))
	if load > 2+1e-9 {
		t.Errorf("rank still overloaded: %g", load)
	}
	if len(props) != st.Accepted {
		t.Errorf("proposal count %d != accepted %d", len(props), st.Accepted)
	}
	if got := 10 - float64(len(props)); math.Abs(got-load) > 1e-9 {
		t.Errorf("load accounting: %g vs %g", got, load)
	}
}

func TestRunTransferOriginalNeverOverloadsKnownRecipient(t *testing.T) {
	// Under the original criterion, the sender's local view of every
	// recipient must stay strictly below the average.
	cfg := transferConfig(CriterionOriginal)
	cfg.Passes = 0
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		know := NewKnowledge(16)
		for r := 1; r < 12; r++ {
			know.Add(Rank(r), rng.Float64()*2)
		}
		var tasks []Task
		total := 0.0
		for i := 0; i < 20; i++ {
			l := rng.Float64() * 3
			tasks = append(tasks, Task{ID: TaskID(i), Load: l})
			total += l
		}
		ave := 2.5
		_, _, _ = RunTransfer(0, tasks, total, ave, know, &cfg, rng)
		for _, e := range know.Entries() {
			if know.Load(e.Rank) >= ave+1e-9 {
				t.Fatalf("recipient %d pushed to %g >= ave %g under original criterion",
					e.Rank, know.Load(e.Rank), ave)
			}
		}
	}
}

func TestRunTransferRelaxedRecipientBelowSenderPriorLoad(t *testing.T) {
	// Under the relaxed criterion, each accepted transfer leaves the
	// recipient (sender's view) strictly below the sender's load just
	// before the transfer; since sender load only decreases, every
	// recipient stays strictly below the sender's initial load.
	cfg := transferConfig(CriterionRelaxed)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		know := NewKnowledge(16)
		for r := 1; r < 10; r++ {
			know.Add(Rank(r), rng.Float64()*4)
		}
		var tasks []Task
		total := 0.0
		for i := 0; i < 15; i++ {
			l := 0.1 + rng.Float64()*3
			tasks = append(tasks, Task{ID: TaskID(i), Load: l})
			total += l
		}
		before := total
		_, _, _ = RunTransfer(0, tasks, total, 1.0, know, &cfg, rng)
		for _, e := range know.Entries() {
			if know.Load(e.Rank) >= before+1e-9 {
				t.Fatalf("recipient %d at %g >= sender initial %g", e.Rank, know.Load(e.Rank), before)
			}
		}
	}
}

func TestRunTransferConservation(t *testing.T) {
	// Sender's load drop must equal the sum of proposed task loads, and
	// the knowledge-side load increases must match too.
	cfg := transferConfig(CriterionRelaxed)
	rng := rand.New(rand.NewSource(5))
	know := NewKnowledge(8)
	for r := 1; r < 6; r++ {
		know.Add(Rank(r), 0)
	}
	tasks := tasksFromLoads(2, 3, 1, 4, 2, 2)
	var total float64
	for _, task := range tasks {
		total += task.Load
	}
	props, _, after := RunTransfer(0, tasks, total, 1.5, know, &cfg, rng)
	sent := 0.0
	for _, p := range props {
		sent += tasks[p.Task].Load
	}
	if math.Abs((total-after)-sent) > 1e-9 {
		t.Errorf("conservation: dropped %g but proposed %g", total-after, sent)
	}
	gained := 0.0
	for _, e := range know.Entries() {
		gained += know.Load(e.Rank)
	}
	if math.Abs(gained-sent) > 1e-9 {
		t.Errorf("knowledge gained %g, proposals carry %g", gained, sent)
	}
}

func TestRunTransferProposalsTargetKnownRanks(t *testing.T) {
	cfg := transferConfig(CriterionRelaxed)
	rng := rand.New(rand.NewSource(6))
	know := knowledgeFrom(t, RankLoad{2, 0}, RankLoad{5, 0.5})
	tasks := tasksFromLoads(1, 1, 1, 1)
	props, _, _ := RunTransfer(7, tasks, 4, 0.5, know, &cfg, rng)
	for _, p := range props {
		if p.To != 2 && p.To != 5 {
			t.Errorf("proposal to unknown rank %d", p.To)
		}
		if p.To == 7 {
			t.Error("proposal to self")
		}
	}
}

func TestRunTransferSinglePassBoundsEvaluations(t *testing.T) {
	cfg := transferConfig(CriterionOriginal)
	cfg.Passes = 1
	rng := rand.New(rand.NewSource(7))
	know := knowledgeFrom(t, RankLoad{1, 0})
	tasks := tasksFromLoads(5, 5, 5, 5, 5) // all unplaceable: 0+5 >= ave 1
	_, st, _ := RunTransfer(0, tasks, 25, 1, know, &cfg, rng)
	if st.Accepted != 0 {
		t.Errorf("accepted %d unplaceable tasks", st.Accepted)
	}
	if st.Rejected != len(tasks) {
		t.Errorf("single pass evaluated %d, want %d", st.Rejected, len(tasks))
	}
}

func TestRunTransferQuiescenceStops(t *testing.T) {
	// Until-quiescence must stop after one extra pass when nothing is
	// placeable, not loop forever.
	cfg := transferConfig(CriterionOriginal)
	cfg.Passes = 0
	rng := rand.New(rand.NewSource(8))
	know := knowledgeFrom(t, RankLoad{1, 0})
	tasks := tasksFromLoads(5, 5, 5)
	_, st, _ := RunTransfer(0, tasks, 15, 1, know, &cfg, rng)
	if st.Rejected != len(tasks) {
		t.Errorf("quiescence made %d rejections, want one pass of %d", st.Rejected, len(tasks))
	}
}

func TestRunTransferMultiPassRetriesRejected(t *testing.T) {
	// With two known recipients, one full and one empty, the original
	// CMF without recompute can sample the full one and reject; a later
	// pass can succeed. Multi-pass must strictly dominate single-pass
	// acceptance here (statistically; fixed seed makes it deterministic).
	base := transferConfig(CriterionOriginal)
	know1 := knowledgeFrom(t, RankLoad{1, 0}, RankLoad{2, 0.9})
	know2 := knowledgeFrom(t, RankLoad{1, 0}, RankLoad{2, 0.9})
	tasks := tasksFromLoads(0.5, 0.5, 0.5, 0.5)

	single := base
	single.Passes = 1
	_, st1, _ := RunTransfer(0, tasks, 2, 1.0, know1, &single, rand.New(rand.NewSource(9)))

	multi := base
	multi.Passes = 0
	_, st2, _ := RunTransfer(0, tasks, 2, 1.0, know2, &multi, rand.New(rand.NewSource(9)))

	if st2.Accepted < st1.Accepted {
		t.Errorf("multi-pass accepted %d < single-pass %d", st2.Accepted, st1.Accepted)
	}
}

func TestRunTransferNoCandidateMass(t *testing.T) {
	cfg := transferConfig(CriterionOriginal)
	// Every known rank at the average: zero CMF mass, loop must exit.
	know := knowledgeFrom(t, RankLoad{1, 2}, RankLoad{2, 2})
	_, st, load := RunTransfer(0, tasksFromLoads(1, 1, 1), 3, 2, know, &cfg, rand.New(rand.NewSource(10)))
	if st.NoCandidate == 0 {
		t.Error("expected NoCandidate exit")
	}
	if load != 3 {
		t.Errorf("load changed without candidates: %g", load)
	}
}
