package core

import "math/rand"

// deriveSeed mixes a base seed with stream identifiers (rank, trial, …)
// into an independent-looking seed using the splitmix64 finalizer, so
// per-rank and per-trial random streams do not correlate.
func deriveSeed(base int64, streams ...int64) int64 {
	x := uint64(base) ^ 0x9e3779b97f4a7c15
	for _, s := range streams {
		x ^= uint64(s) + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = splitmix64(x)
	}
	return int64(splitmix64(x) >> 1)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// newRNG returns a seeded generator for the given stream.
func newRNG(base int64, streams ...int64) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(base, streams...)))
}

// SeededRNG returns a generator for an independent random stream derived
// from a base seed and stream identifiers (rank, trial, …). The
// distributed balancer uses it to give every rank its own reproducible
// stream.
func SeededRNG(base int64, streams ...int64) *rand.Rand {
	return newRNG(base, streams...)
}
