package core

import "math/rand"

// deriveSeed mixes a base seed with stream identifiers (rank, trial, …)
// into an independent-looking seed using the splitmix64 finalizer, so
// per-rank and per-trial random streams do not correlate.
func deriveSeed(base int64, streams ...int64) int64 {
	x := uint64(base) ^ 0x9e3779b97f4a7c15
	for _, s := range streams {
		x ^= uint64(s) + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = splitmix64(x)
	}
	return int64(splitmix64(x) >> 1)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// splitmixSource is the generator behind every balancer stream: a
// splitmix64 counter. Unlike math/rand's default lagged-Fibonacci
// source, seeding is O(1) over 8 bytes of state instead of repopulating
// a ~5 KiB feed array — the balancers reseed two streams per rank per
// trial, which at 4096 ranks made seeding itself a top CPU entry.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmixSource) Uint64() uint64 {
	v := splitmix64(s.state)
	s.state += 0x9e3779b97f4a7c15
	return v
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// newRNG returns a seeded generator for the given stream.
func newRNG(base int64, streams ...int64) *rand.Rand {
	return rand.New(&splitmixSource{state: uint64(deriveSeed(base, streams...))})
}

// SeededRNG returns a generator for an independent random stream derived
// from a base seed and stream identifiers (rank, trial, …). The
// distributed balancer uses it to give every rank its own reproducible
// stream.
func SeededRNG(base int64, streams ...int64) *rand.Rand {
	return newRNG(base, streams...)
}

// reseed re-points an existing generator at the given stream. Seeding a
// reused *rand.Rand produces the exact same sequence as allocating a
// fresh one with newRNG, which lets the engine recycle its per-rank
// generators across trials without allocating.
func reseed(rng *rand.Rand, base int64, streams ...int64) {
	rng.Seed(deriveSeed(base, streams...))
}

// permInto fills buf with a pseudo-random permutation of [0, len(buf)),
// drawing from rng exactly as rand.Perm does — the inside-out
// Fisher–Yates of Knuth — so results are bit-identical to a Perm call
// while reusing the caller's buffer.
func permInto(rng *rand.Rand, buf []int) {
	for i := range buf {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
}
