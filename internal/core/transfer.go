package core

import "math/rand"

// Proposal is one scheduled task transfer produced by the transfer
// stage: task Task moves to rank To. Transfers are deferred — recorded
// in M^p and TARGET^p — and only executed once the refinement of
// Algorithm 3 has selected the best distribution.
type Proposal struct {
	Task TaskID
	To   Rank
}

// TransferStats counts the decisions of one transfer-stage execution.
type TransferStats struct {
	// Accepted is the number of proposed transfers (|M^p| growth).
	Accepted int
	// Rejected counts false EVALUATECRITERION outcomes.
	Rejected int
	// NoCandidate counts loop exits because the CMF had no positive mass
	// (every known rank at or above the normalization level).
	NoCandidate int
	// CMFBuilds counts BUILDCMF invocations.
	CMFBuilds int
}

// RunTransfer executes the transfer stage (Algorithm 2) for one
// overloaded rank.
//
// tasks is the rank's current task set T^p; selfLoad its load l^p; ave
// the global average l_ave. know is the rank's gossip knowledge and is
// mutated in place: accepted transfers bump the recipient's known load
// (line 12) so subsequent decisions — and the recomputed CMF, when
// cfg.RecomputeCMF is set — see them. rng must be the rank's private
// generator.
//
// It returns the proposals, the decision statistics, and the rank's
// load after the scheduled transfers.
func RunTransfer(self Rank, tasks []Task, selfLoad, ave float64, know *Knowledge, cfg *Config, rng *rand.Rand) ([]Proposal, TransferStats, float64) {
	return RunTransferAffinity(self, tasks, selfLoad, ave, know, cfg, rng, nil)
}

// AffinityFunc reports the communication volume a task exchanges with
// peers currently hosted on a candidate rank; the communication-aware
// extension biases recipient selection with it.
type AffinityFunc func(task TaskID, to Rank) float64

// RunTransferAffinity is RunTransfer with the communication-aware
// recipient bias of the §VII extension: when affinity is non-nil and
// cfg.CommBias > 0, each task samples from a CMF blended toward ranks
// hosting its communication partners.
func RunTransferAffinity(self Rank, tasks []Task, selfLoad, ave float64, know *Knowledge, cfg *Config, rng *rand.Rand, affinity AffinityFunc) ([]Proposal, TransferStats, float64) {
	var scr TransferScratch
	return RunTransferScratch(self, tasks, selfLoad, ave, know, cfg, rng, affinity, &scr)
}

// TransferScratch holds the buffers one transfer-stage execution needs —
// the CMF, the ordered/kept task double buffer, and the proposal list —
// so a driver that runs the stage once per overloaded rank per iteration
// (the engine, the distributed balancer) can reuse them and keep the hot
// loop allocation-free. The zero value is ready to use. A scratch must
// not be shared between concurrently running drivers.
type TransferScratch struct {
	cmf       CMF
	tasks     []Task
	kept      []Task
	proposals []Proposal
}

// RunTransferScratch is RunTransferAffinity drawing every buffer it
// needs from scr. The input tasks slice is copied, not modified. The
// returned proposals are backed by scr and remain valid only until the
// next call with the same scratch; callers that retain them across calls
// must copy.
func RunTransferScratch(self Rank, tasks []Task, selfLoad, ave float64, know *Knowledge, cfg *Config, rng *rand.Rand, affinity AffinityFunc, scr *TransferScratch) ([]Proposal, TransferStats, float64) {
	var st TransferStats
	scr.proposals = scr.proposals[:0]
	if know.Len() == 0 {
		return nil, st, selfLoad
	}
	if cfg.CommBias <= 0 {
		affinity = nil
	}

	maxPasses := cfg.Passes
	if maxPasses <= 0 {
		// Until quiescence: bounded by the task count since every pass
		// must accept at least one transfer to continue.
		maxPasses = len(tasks) + 1
	}

	scr.tasks = append(scr.tasks[:0], tasks...)
	remaining := scr.tasks
	for pass := 0; pass < maxPasses && selfLoad > cfg.Threshold*ave && len(remaining) > 0; pass++ {
		scr.kept = scr.kept[:0]
		accepted, done := transferPass(self, remaining, &selfLoad, ave, know, cfg, rng, affinity, scr, &st)
		// The rejected tasks become the next pass's input; the spent
		// buffer becomes the next pass's kept list (double buffering).
		scr.tasks, scr.kept = scr.kept, scr.tasks
		remaining = scr.tasks
		if done || accepted == 0 {
			break
		}
	}
	//lint:ignore scratchescape documented contract: proposals are valid until the scratch's next run
	return scr.proposals, st, selfLoad
}

// transferPass makes one traversal of the task list (the body of
// Algorithm 2's while loop). It appends accepted proposals to
// scr.proposals, keeps rejected tasks in scr.kept for a possible next
// pass, and reports the number of acceptances plus whether the loop
// ended for good (no longer overloaded or no candidate mass left).
// ordered is sorted in place; it must be scratch-owned.
func transferPass(self Rank, ordered []Task, selfLoad *float64, ave float64, know *Knowledge, cfg *Config, rng *rand.Rand, affinity AffinityFunc, scr *TransferScratch, st *TransferStats) (accepted int, done bool) {
	OrderTasksInPlace(ordered, ave, *selfLoad, cfg.Order)

	if !cfg.RecomputeCMF { // line 5: build once
		st.CMFBuilds++
		if !scr.cmf.Rebuild(know, self, ave, cfg.CMF) {
			st.NoCandidate++
			return 0, true
		}
	}

	n := 0
	for ; *selfLoad > cfg.Threshold*ave && n < len(ordered); n++ {
		if cfg.RecomputeCMF { // line 7: rebuild with updated knowledge
			st.CMFBuilds++
			if !scr.cmf.Rebuild(know, self, ave, cfg.CMF) {
				st.NoCandidate++
				scr.kept = append(scr.kept, ordered[n:]...)
				return accepted, true
			}
		}
		o := ordered[n]
		pick := scr.cmf
		if affinity != nil {
			pick = scr.cmf.Blend(func(r Rank) float64 { return affinity(o.ID, r) }, cfg.CommBias)
		}
		px := pick.Sample(rng)                                  // line 9
		lx := know.Load(px)                                     // line 10
		if cfg.Criterion.Evaluate(lx, o.Load, ave, *selfLoad) { // line 11
			know.Update(px, lx+o.Load) // line 12
			*selfLoad -= o.Load        // line 13
			scr.proposals = append(scr.proposals, Proposal{Task: o.ID, To: px})
			st.Accepted++
			accepted++
		} else {
			st.Rejected++
			scr.kept = append(scr.kept, o)
		}
	}
	scr.kept = append(scr.kept, ordered[n:]...)
	return accepted, false
}

// Objective is the paper's objective function F(D) = I_D − h + 1 =
// l_max/l_ave − h (§V-B). The transfer criterion of §V-C is proven to be
// the loosest one under which F monotonically decreases.
func Objective(loads []float64, h float64) float64 {
	if len(loads) == 0 {
		return -h
	}
	max, sum := 0.0, 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return -h
	}
	return max/(sum/float64(len(loads))) - h
}
