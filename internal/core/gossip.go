package core

import "math/rand"

// InformMsg is the payload of one gossip message of Algorithm 1: the
// sender's current knowledge of underloaded ranks plus the round number.
type InformMsg struct {
	Round   int
	Entries []RankLoad
}

// Send is a directed gossip message produced by the inform state machine;
// the caller (synchronous simulator or asynchronous runtime) is
// responsible for delivering it.
type Send struct {
	To  Rank
	Msg InformMsg
}

// InformState is the per-rank state machine of the inform/gossip stage
// (Algorithm 1). It is transport-agnostic: Begin and Receive return the
// messages to send, and the embedding layer delivers them — synchronously
// in the LBAF simulator, via active messages under termination detection
// in the AMT runtime.
type InformState struct {
	self      Rank
	numRanks  int
	cfg       *Config
	rng       *rand.Rand
	know      *Knowledge
	forwarded []bool // by round, when !cfg.FloodForward

	// Reused buffers: sendBuf backs the slices returned by Begin and
	// Receive (overwritten by the next call); permBuf serves the
	// capped-payload down-sampling and is consumed within one call.
	sendBuf []Send
	permBuf []int
}

// NewInformState creates the gossip state for one rank. The rng must be
// private to the rank for reproducibility.
func NewInformState(self Rank, numRanks int, cfg *Config, rng *rand.Rand) *InformState {
	return &InformState{
		self:      self,
		numRanks:  numRanks,
		cfg:       cfg,
		rng:       rng,
		know:      NewKnowledge(numRanks),
		forwarded: make([]bool, cfg.Rounds+2),
	}
}

// Knowledge exposes the rank's accumulated view S^p / LOAD^p.
func (st *InformState) Knowledge() *Knowledge { return st.know }

// Reset clears the knowledge and forwarding state for a fresh iteration.
func (st *InformState) Reset() {
	st.know.Reset()
	for i := range st.forwarded {
		st.forwarded[i] = false
	}
}

// Reseed re-points the state's private generator at a new stream and
// clears all gossip state, preparing the rank for a fresh trial without
// reallocating the state machine. The resulting random sequence is
// bit-identical to constructing a new state with the same seed.
func (st *InformState) Reseed(seed int64) {
	st.rng.Seed(seed)
	st.Reset()
}

// Begin implements INFORM (Algorithm 1 lines 5–14): if this rank is
// underloaded it records itself and seeds f round-1 messages to random
// ranks. The returned sends must be delivered by the caller; the slice
// is reused by the state's next Begin or Receive, so consume or copy it
// before driving this rank again.
func (st *InformState) Begin(ave, own float64) []Send {
	if own >= ave {
		return nil
	}
	st.know.Add(st.self, own)
	return st.fanOut(1)
}

// Receive implements INFORMHANDLER (Algorithm 1 lines 15–25): merge the
// incoming knowledge and, if more rounds remain, forward to f random
// ranks not already known to be underloaded. Unless cfg.FloodForward is
// set, a rank forwards a given round at most once and only when the
// message taught it something new (the standard epidemic suppression
// that keeps message volume near P·f·k instead of f^k); later or
// redundant messages of the same round only merge. It returns the number
// of newly learned entries alongside the messages to send; the sends
// slice is reused by the state's next Begin or Receive, so consume or
// copy it before driving this rank again.
func (st *InformState) Receive(m InformMsg) (sends []Send, added int) {
	added = st.know.Merge(m.Entries)
	if m.Round >= st.cfg.Rounds {
		return nil, added
	}
	if !st.cfg.FloodForward {
		if st.forwarded[m.Round] || added == 0 {
			return nil, added
		}
		st.forwarded[m.Round] = true
	}
	return st.fanOutAvoidKnown(m.Round + 1), added
}

// payload snapshots the knowledge to send, respecting the
// limited-information cap of cfg.MaxGossipEntries: an over-long
// knowledge list is down-sampled uniformly so message size stays
// bounded (footnote 2).
func (st *InformState) payload() []RankLoad {
	entries := st.know.Entries()
	max := st.cfg.MaxGossipEntries
	if max <= 0 || len(entries) <= max {
		return entries
	}
	if cap(st.permBuf) < len(entries) {
		st.permBuf = make([]int, len(entries))
	}
	perm := st.permBuf[:len(entries)]
	permInto(st.rng, perm)
	// The down-sampled payload must be freshly allocated: it rides in
	// messages that can be delivered after this state's next fan-out, so
	// unlike permBuf it cannot be reused.
	out := make([]RankLoad, max)
	for i, j := range perm[:max] {
		out[i] = entries[j]
	}
	return out
}

// fanOut picks f targets uniformly from all ranks except self (line 10).
func (st *InformState) fanOut(round int) []Send {
	if st.numRanks < 2 {
		return nil
	}
	entries := st.payload()
	st.sendBuf = st.sendBuf[:0]
	for i := 0; i < st.cfg.Fanout; i++ {
		t := Rank(st.rng.Intn(st.numRanks - 1))
		if t >= st.self {
			t++
		}
		st.sendBuf = append(st.sendBuf, Send{To: t, Msg: InformMsg{Round: round, Entries: entries}})
	}
	//lint:ignore scratchescape documented contract: the slice is valid until the next fanOut call
	return st.sendBuf
}

// fanOutAvoidKnown picks f targets from P \ S^p (lines 20–21), preferring
// ranks not yet known to be underloaded so knowledge spreads toward
// overloaded ranks. Rejection sampling is used with a bounded number of
// attempts; if nearly every rank is already known, it falls back to
// uniform sampling so the fanout is still honored.
func (st *InformState) fanOutAvoidKnown(round int) []Send {
	if st.numRanks < 2 {
		return nil
	}
	entries := st.payload()
	st.sendBuf = st.sendBuf[:0]
	for i := 0; i < st.cfg.Fanout; i++ {
		t := st.sampleUnknown()
		st.sendBuf = append(st.sendBuf, Send{To: t, Msg: InformMsg{Round: round, Entries: entries}})
	}
	//lint:ignore scratchescape documented contract: the slice is valid until the next fanOut call
	return st.sendBuf
}

func (st *InformState) sampleUnknown() Rank {
	const attempts = 16
	for i := 0; i < attempts; i++ {
		t := Rank(st.rng.Intn(st.numRanks - 1))
		if t >= st.self {
			t++
		}
		if !st.know.Contains(t) {
			return t
		}
	}
	// Nearly everything is known: fall back to a uniform choice.
	t := Rank(st.rng.Intn(st.numRanks - 1))
	if t >= st.self {
		t++
	}
	return t
}
