package core

import "fmt"

// CommEdge is one side of a symmetric communication relationship: the
// task exchanges Volume units (e.g. bytes per phase) with Peer.
type CommEdge struct {
	Peer   TaskID
	Volume float64
}

// CommGraph records inter-task communication volumes — the input to the
// communication-aware extension the paper's §VII names as future work:
// "our future work will consider inter-task communication costs in
// addition to task load." Edges are undirected; volumes accumulate.
type CommGraph struct {
	adj [][]CommEdge
}

// NewCommGraph creates an empty graph over numTasks tasks.
func NewCommGraph(numTasks int) *CommGraph {
	return &CommGraph{adj: make([][]CommEdge, numTasks)}
}

// NumTasks returns the size of the task space.
func (g *CommGraph) NumTasks() int { return len(g.adj) }

// Connect records volume units of communication between tasks a and b.
// Connecting a task to itself or with non-positive volume is ignored.
func (g *CommGraph) Connect(a, b TaskID, volume float64) {
	if a == b || volume <= 0 {
		return
	}
	g.check(a)
	g.check(b)
	g.bump(a, b, volume)
	g.bump(b, a, volume)
}

func (g *CommGraph) bump(from, to TaskID, volume float64) {
	for i := range g.adj[from] {
		if g.adj[from][i].Peer == to {
			g.adj[from][i].Volume += volume
			return
		}
	}
	g.adj[from] = append(g.adj[from], CommEdge{Peer: to, Volume: volume})
}

// Edges returns the task's communication partners. The returned slice
// is owned by the graph and must not be modified.
func (g *CommGraph) Edges(t TaskID) []CommEdge {
	g.check(t)
	return g.adj[t]
}

// RemoteVolume totals the communication crossing rank boundaries under
// the given task→rank owner vector (each undirected edge counted once).
// It is the secondary objective the communication-aware mode reduces.
func (g *CommGraph) RemoteVolume(owners []Rank) float64 {
	if len(owners) < len(g.adj) {
		panic(fmt.Sprintf("core: RemoteVolume: owner vector length %d < %d tasks", len(owners), len(g.adj)))
	}
	total := 0.0
	for t, edges := range g.adj {
		for _, e := range edges {
			if e.Peer > TaskID(t) && owners[t] != owners[e.Peer] {
				total += e.Volume
			}
		}
	}
	return total
}

// TotalVolume returns the sum of all edge volumes (each counted once).
func (g *CommGraph) TotalVolume() float64 {
	total := 0.0
	for t, edges := range g.adj {
		for _, e := range edges {
			if e.Peer > TaskID(t) {
				total += e.Volume
			}
		}
	}
	return total
}

// Affinity returns the communication volume between task t and each rank
// under the owner snapshot — how much of t's traffic would become local
// if t moved there. Ranks with no partner traffic are absent.
func (g *CommGraph) Affinity(t TaskID, owners []Rank) map[Rank]float64 {
	g.check(t)
	out := make(map[Rank]float64)
	for _, e := range g.adj[t] {
		out[owners[e.Peer]] += e.Volume
	}
	return out
}

func (g *CommGraph) check(t TaskID) {
	if t < 0 || int(t) >= len(g.adj) {
		panic(fmt.Sprintf("core: task %d out of range [0,%d)", t, len(g.adj)))
	}
}
