// Package core implements the paper's primary contribution: the
// TemperedLB family of fully distributed, gossip-based load balancing
// algorithms, of which the original GrapevineLB (Menon & Kalé, SC'13) is
// one configuration.
//
// The package provides:
//
//   - Task/Assignment bookkeeping for an overdecomposed workload
//     (many more migratable tasks than ranks).
//   - The inform (gossip) stage of Algorithm 1 as a reusable per-rank
//     state machine (InformState) so the same logic drives both the
//     synchronous LBAF-style simulator and the asynchronous AMT runtime.
//   - The transfer stage of Algorithm 2 (RunTransfer) with the original
//     and relaxed criteria, the original and modified CMFs, and optional
//     CMF recomputation.
//   - The four task traversal orderings of §V-E (OrderTasks).
//   - The iterative refinement with trials of Algorithm 3 (Engine), with
//     per-iteration accounting of transfers, rejections and imbalance.
//
// All randomness is drawn from seeded generators derived from
// Config.Seed, so every run is reproducible bit-for-bit.
//
// # Concurrency
//
// Nothing in this package locks. An Engine is single-owner: it keeps
// per-run scratch state (gossip states, RNGs, transfer buffers) between
// Run calls to avoid reallocation, so one Engine must never be shared
// between goroutines. Engine.Run only reads the Assignment it is given,
// which makes the parallel-sweep pattern safe: many engines, each owned
// by one worker goroutine, over one shared read-only input assignment.
// InformState, TransferScratch and Knowledge follow the same
// single-owner rule — in the distributed balancer each rank's goroutine
// owns its own set.
package core
