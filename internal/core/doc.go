// Package core implements the paper's primary contribution: the
// TemperedLB family of fully distributed, gossip-based load balancing
// algorithms, of which the original GrapevineLB (Menon & Kalé, SC'13) is
// one configuration.
//
// The package provides:
//
//   - Task/Assignment bookkeeping for an overdecomposed workload
//     (many more migratable tasks than ranks).
//   - The inform (gossip) stage of Algorithm 1 as a reusable per-rank
//     state machine (InformState) so the same logic drives both the
//     synchronous LBAF-style simulator and the asynchronous AMT runtime.
//   - The transfer stage of Algorithm 2 (RunTransfer) with the original
//     and relaxed criteria, the original and modified CMFs, and optional
//     CMF recomputation.
//   - The four task traversal orderings of §V-E (OrderTasks).
//   - The iterative refinement with trials of Algorithm 3 (Engine), with
//     per-iteration accounting of transfers, rejections and imbalance.
//
// All randomness is drawn from seeded generators derived from
// Config.Seed, so every run is reproducible bit-for-bit.
package core
