package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCfg bounds the case count so the full suite stays fast.
var quickCfg = &quick.Config{MaxCount: 200}

// TestQuickTransferConservation: for arbitrary knowledge, task lists and
// configs, the transfer stage conserves load exactly: the sender's drop
// equals the sum of the proposed tasks' loads, and matches the total
// growth of recipient knowledge.
func TestQuickTransferConservation(t *testing.T) {
	f := func(loads []uint8, recips []uint8, seed int64, relaxed bool) bool {
		if len(loads) == 0 || len(recips) == 0 {
			return true
		}
		if len(loads) > 64 {
			loads = loads[:64]
		}
		if len(recips) > 32 {
			recips = recips[:32]
		}
		cfg := Grapevine()
		if relaxed {
			cfg.Criterion = CriterionRelaxed
			cfg.CMF = CMFModified
			cfg.RecomputeCMF = true
		}
		know := NewKnowledge(len(recips) + 1)
		before := 0.0
		for i, r := range recips {
			l := float64(r) / 64
			know.Add(Rank(i), l)
			before += l
		}
		tasks := make([]Task, len(loads))
		total := 0.0
		for i, l := range loads {
			tasks[i] = Task{ID: TaskID(i), Load: float64(l) / 32}
			total += tasks[i].Load
		}
		self := Rank(len(recips))
		props, _, after := RunTransfer(self, tasks, total, 1.0, know, &cfg, rand.New(rand.NewSource(seed)))
		sent := 0.0
		for _, p := range props {
			sent += tasks[p.Task].Load
			if p.To == self {
				t.Fatalf("proposal to self")
			}
		}
		knowAfter := 0.0
		for _, e := range know.Entries() {
			knowAfter += know.Load(e.Rank)
		}
		return math.Abs((total-after)-sent) < 1e-9 &&
			math.Abs((knowAfter-before)-sent) < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickProposalsUnique: a task is proposed for transfer at most once.
func TestQuickProposalsUnique(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Tempered()
		cfg.Passes = 0
		know := NewKnowledge(16)
		for r := 0; r < 8; r++ {
			know.Add(Rank(r), rng.Float64())
		}
		count := int(n%50) + 1
		tasks := make([]Task, count)
		total := 0.0
		for i := range tasks {
			tasks[i] = Task{ID: TaskID(i), Load: rng.Float64()}
			total += tasks[i].Load
		}
		props, _, _ := RunTransfer(10, tasks, total, total/32, know, &cfg, rng)
		seen := map[TaskID]bool{}
		for _, p := range props {
			if seen[p.Task] {
				return false
			}
			seen[p.Task] = true
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCMFValid: for arbitrary knowledge and averages, a built CMF is
// non-decreasing, ends at exactly 1, and has no negative mass.
func TestQuickCMFValid(t *testing.T) {
	f := func(loads []uint8, aveRaw uint8, modified bool) bool {
		if len(loads) == 0 {
			return true
		}
		if len(loads) > 48 {
			loads = loads[:48]
		}
		know := NewKnowledge(len(loads) + 1)
		for i, l := range loads {
			know.Add(Rank(i), float64(l)/16)
		}
		kind := CMFOriginal
		if modified {
			kind = CMFModified
		}
		ave := float64(aveRaw)/32 + 0.01
		cmf, ok := BuildCMF(know, Rank(len(loads)), ave, kind)
		if !ok {
			return true
		}
		prev := 0.0
		for i := 0; i < cmf.Len(); i++ {
			if cmf.Prob(i) < -1e-12 || cmf.cum[i] < prev-1e-12 {
				return false
			}
			prev = cmf.cum[i]
		}
		return math.Abs(cmf.cum[cmf.Len()-1]-1) < 1e-12
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickOrderingsPermute: every ordering is a permutation for
// arbitrary loads and parameters.
func TestQuickOrderingsPermute(t *testing.T) {
	f := func(loads []uint8, aveRaw, selfRaw uint8, ordRaw uint8) bool {
		tasks := make([]Task, len(loads))
		for i, l := range loads {
			tasks[i] = Task{ID: TaskID(i), Load: float64(l) / 16}
		}
		ord := Ordering(ordRaw % 4)
		out := OrderTasks(tasks, float64(aveRaw)/16, float64(selfRaw)/4, ord)
		if len(out) != len(tasks) {
			return false
		}
		seen := make([]bool, len(tasks))
		for _, task := range out {
			if seen[task.ID] {
				return false
			}
			seen[task.ID] = true
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickKnowledgeMergeIdempotent: merging the same payload twice adds
// nothing the second time, and merge order does not change membership.
func TestQuickKnowledgeMergeIdempotent(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(vals []uint8) []RankLoad {
			out := make([]RankLoad, 0, len(vals))
			for _, v := range vals {
				out = append(out, RankLoad{Rank: Rank(v % 32), Load: float64(v)})
			}
			return out
		}
		pa, pb := mk(a), mk(b)

		k1 := NewKnowledge(32)
		k1.Merge(pa)
		k1.Merge(pb)
		if k1.Merge(pa) != 0 || k1.Merge(pb) != 0 {
			return false // idempotence
		}
		k2 := NewKnowledge(32)
		k2.Merge(pb)
		k2.Merge(pa)
		if k1.Len() != k2.Len() {
			return false
		}
		for _, e := range k1.Entries() {
			if !k2.Contains(e.Rank) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickAssignmentMoveSequence: any sequence of moves keeps the
// assignment structurally valid and conserves total load.
func TestQuickAssignmentMoveSequence(t *testing.T) {
	f := func(loads []uint8, moves []uint16) bool {
		if len(loads) == 0 {
			return true
		}
		const ranks = 7
		a := NewAssignment(ranks)
		total := 0.0
		for _, l := range loads {
			a.Add(float64(l)/8, Rank(int(l)%ranks))
			total += float64(l) / 8
		}
		for _, m := range moves {
			id := TaskID(int(m) % len(loads))
			to := Rank(int(m>>8) % ranks)
			a.Move(id, to)
		}
		if a.Validate() != nil {
			return false
		}
		return math.Abs(a.TotalLoad()-total) < 1e-6
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickObjectiveLowerBound: F(D) >= maxLoad/ave − h for any
// distribution, with equality by definition; and applying any single
// relaxed-criterion-accepted transfer never raises F.
func TestQuickObjectiveRelaxedNeverWorsens(t *testing.T) {
	f := func(loads []uint8, iRaw, xRaw uint8, lRaw uint16) bool {
		if len(loads) < 2 {
			return true
		}
		if len(loads) > 16 {
			loads = loads[:16]
		}
		fl := make([]float64, len(loads))
		for j, v := range loads {
			fl[j] = float64(v) / 8
		}
		i := int(iRaw) % len(fl)
		x := int(xRaw) % len(fl)
		if i == x {
			return true
		}
		l := float64(lRaw) / 1024
		if !(l > 0 && l < fl[i]-fl[x]) {
			return true // criterion rejects; nothing to check
		}
		before := Objective(fl, 1)
		fl[i] -= l
		fl[x] += l
		return Objective(fl, 1) <= before+1e-12
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEngineNeverWorsens: over random clustered workloads and
// configs, the engine's best distribution is never worse than the input.
func TestQuickEngineNeverWorsens(t *testing.T) {
	f := func(seed int64, relaxed bool, ordRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAssignment(16)
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			a.Add(rng.Float64(), Rank(rng.Intn(3)))
		}
		cfg := Grapevine()
		cfg.Rounds, cfg.Fanout = 4, 3
		cfg.Iterations = 3
		cfg.Order = Ordering(ordRaw % 4)
		cfg.Seed = seed
		if relaxed {
			cfg.Criterion = CriterionRelaxed
			cfg.CMF = CMFModified
		}
		eng, err := NewEngine(cfg)
		if err != nil {
			return false
		}
		res, err := eng.Run(a)
		if err != nil {
			return false
		}
		res.Apply(a)
		return res.FinalImbalance <= res.InitialImbalance+1e-12 &&
			a.Validate() == nil &&
			math.Abs(a.Imbalance()-res.FinalImbalance) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzOrderTasks drives the ordering algorithms with arbitrary packed
// inputs; they must always return a permutation and never panic.
func FuzzOrderTasks(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, 1.0, 10.0, uint8(2))
	f.Add([]byte{}, 0.0, 0.0, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, ave, self float64, ordRaw uint8) {
		if math.IsNaN(ave) || math.IsNaN(self) || math.IsInf(ave, 0) || math.IsInf(self, 0) {
			return
		}
		tasks := make([]Task, len(raw))
		for i, v := range raw {
			tasks[i] = Task{ID: TaskID(i), Load: float64(v)}
		}
		out := OrderTasks(tasks, ave, self, Ordering(ordRaw%4))
		if len(out) != len(tasks) {
			t.Fatal("length changed")
		}
		seen := make([]bool, len(tasks))
		for _, task := range out {
			if seen[task.ID] {
				t.Fatal("duplicate")
			}
			seen[task.ID] = true
		}
	})
}
