package core

import "sort"

// RankLoad is one entry of the gossip payload: an underloaded rank and
// its load as known to the sender.
type RankLoad struct {
	Rank Rank
	Load float64
}

// Knowledge is a rank's accumulated partial view of the underloaded
// ranks in the system: the set S^p and load map LOAD^p of the paper's
// notation, kept consistent by construction (|S^p| ≡ |LOAD^p()|).
//
// Entries are kept in insertion order so CMF construction and sampling
// are deterministic for a deterministic message order. Between resets the
// entry list is append-only, which lets Entries return a zero-copy
// snapshot: gossip payloads at scale would otherwise dominate allocation
// (footnote 2 of the paper discusses exactly this O(P) list-size
// concern).
type Knowledge struct {
	has     []bool    // indexed by rank
	load    []float64 // indexed by rank; valid where has[r]; updated by transfers
	entries []RankLoad
}

// NewKnowledge returns empty knowledge over numRanks ranks.
func NewKnowledge(numRanks int) *Knowledge {
	return &Knowledge{
		has:  make([]bool, numRanks),
		load: make([]float64, numRanks),
	}
}

// Add inserts rank r with load l if not yet known and reports whether
// the entry was new. An existing entry is left untouched: the first load
// learned for a rank wins, matching set-union semantics of Algorithm 1
// lines 16–17.
func (k *Knowledge) Add(r Rank, l float64) bool {
	if k.has[r] {
		return false
	}
	k.has[r] = true
	k.load[r] = l
	k.entries = append(k.entries, RankLoad{Rank: r, Load: l})
	return true
}

// Update overwrites the known load of rank r; r must already be known.
// The transfer stage uses it to account scheduled transfers (Algorithm 2
// line 12). Updates are visible through Load and the CMF but not through
// previously taken Entries snapshots, whose loads are frozen at gossip
// time — exactly the staleness in-flight messages would carry.
func (k *Knowledge) Update(r Rank, l float64) {
	if !k.has[r] {
		panic("core: Knowledge.Update of unknown rank")
	}
	k.load[r] = l
}

// Contains reports whether rank r is in S^p.
func (k *Knowledge) Contains(r Rank) bool { return k.has[r] }

// Load returns the known load of rank r; r must be known.
func (k *Knowledge) Load(r Rank) float64 {
	if !k.has[r] {
		panic("core: Knowledge.Load of unknown rank")
	}
	return k.load[r]
}

// Len returns |S^p|.
func (k *Knowledge) Len() int { return len(k.entries) }

// NumRanks returns the size of the rank space the knowledge covers.
func (k *Knowledge) NumRanks() int { return len(k.has) }

// Entries returns the knowledge as a payload slice in insertion order.
// The returned slice is an immutable snapshot until the next Reset: the
// Knowledge only ever appends past its length, so holders (in-flight
// messages within the current iteration) stay valid with no copying.
// Reset reuses the buffer, so snapshots must not outlive the iteration
// they were taken in.
func (k *Knowledge) Entries() []RankLoad { return k.entries[:len(k.entries):len(k.entries)] }

// Merge adds all unknown entries from the payload and returns the number
// of new entries (Algorithm 1 lines 16–17).
func (k *Knowledge) Merge(entries []RankLoad) int {
	added := 0
	for _, e := range entries {
		if k.Add(e.Rank, e.Load) {
			added++
		}
	}
	return added
}

// MaxLoad returns the largest known load (0 when empty), used by the
// modified CMF's l_s = max(l_ave, max LOAD^p).
func (k *Knowledge) MaxLoad() float64 {
	max := 0.0
	for _, e := range k.entries {
		if l := k.load[e.Rank]; l > max {
			max = l
		}
	}
	return max
}

// Canonicalize sorts the entries by rank, making the CMF built over them
// — and hence transfer-candidate sampling — independent of the order in
// which gossip messages happened to arrive. Asynchronous transports
// reorder deliveries (and fault injection reorders them aggressively), so
// the distributed balancer canonicalizes at the gossip/transfer stage
// boundary; the synchronous engine keeps raw insertion order, preserving
// its historical byte-identical outputs. Sorting reorders the backing
// array of previously taken Entries snapshots, so it must only be called
// at a quiescent point where no snapshot is in flight — the start of a
// transfer stage, after the gossip epoch has terminated, qualifies.
func (k *Knowledge) Canonicalize() {
	sort.Slice(k.entries, func(i, j int) bool { return k.entries[i].Rank < k.entries[j].Rank })
}

// Reset empties the knowledge for reuse in a new iteration. The entry
// buffer is truncated in place and reused, so snapshots taken before the
// reset become invalid: every driver must deliver (or drop) all in-flight
// messages of an iteration before resetting — the synchronous engine
// drains its queue to quiescence and the distributed balancer closes the
// iteration's epoch, so both satisfy this by construction.
func (k *Knowledge) Reset() {
	for _, e := range k.entries {
		k.has[e.Rank] = false
	}
	k.entries = k.entries[:0]
}
