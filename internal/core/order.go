package core

import "sort"

// OrderTasks implements ORDERTASKS (§V-E): it returns the traversal order
// in which the transfer stage considers tasks for migration. The input
// slice is not modified; the result is always a permutation of it.
//
// selfLoad is the rank's current load l^p and ave the global average
// l_ave; they parameterize the FewestMigrations and Lightest orders via
// the excess load l_ex = l^p − l_ave.
//
// Ties are broken by ascending task ID so the order is deterministic.
func OrderTasks(tasks []Task, ave, selfLoad float64, ord Ordering) []Task {
	out := append([]Task(nil), tasks...)
	OrderTasksInPlace(out, ave, selfLoad, ord)
	return out
}

// OrderTasksInPlace is OrderTasks sorting the caller's slice directly,
// for callers that own a reusable buffer (the transfer scratch). Every
// ordering breaks ties by ascending task ID, so the result is the same
// deterministic permutation regardless of the input order.
func OrderTasksInPlace(tasks []Task, ave, selfLoad float64, ord Ordering) {
	switch ord {
	case OrderArbitrary:
		sortByID(tasks)
	case OrderLoadIntensive:
		sortDescending(tasks)
	case OrderFewestMigrations:
		orderFewestMigrations(tasks, ave, selfLoad)
	case OrderLightest:
		orderLightest(tasks, ave, selfLoad)
	}
}

func sortByID(ts []Task) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
}

// sortDescending is Algorithm 4: most load-intensive tasks first.
func sortDescending(ts []Task) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Load != ts[j].Load {
			return ts[i].Load > ts[j].Load
		}
		return ts[i].ID < ts[j].ID
	})
}

func sortAscending(ts []Task) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Load != ts[j].Load {
			return ts[i].Load < ts[j].Load
		}
		return ts[i].ID < ts[j].ID
	})
}

// orderFewestMigrations is Algorithm 5. Any task with load above the
// excess l_ex can resolve the overload in a single migration; the
// lightest such task (the cutoff) goes first to minimize both the chance
// of rejection and the overload induced on the recipient. The rest
// follow as: tasks at or below the cutoff by descending load, then
// heavier tasks by ascending load.
func orderFewestMigrations(ts []Task, ave, selfLoad float64) {
	lex := selfLoad - ave
	cut, ok := cutoffLoad(ts, lex)
	if !ok {
		// No single task covers the excess (line 3): fall back to the
		// descending order of Algorithm 4.
		sortDescending(ts)
		return
	}
	splitSort(ts, cut)
}

// cutoffLoad returns the smallest task load strictly greater than lex
// (Algorithm 5 line 6) and whether one exists.
func cutoffLoad(ts []Task, lex float64) (float64, bool) {
	best, ok := 0.0, false
	for _, t := range ts {
		if t.Load > lex && (!ok || t.Load < best) {
			best, ok = t.Load, true
		}
	}
	return best, ok
}

// orderLightest is Algorithm 6. After sorting ascending, the marginal
// task is the one at which the ascending prefix sum first reaches the
// excess l_ex — the most load-intensive of the lightweight tasks that
// must all move for the rank to stop being overloaded. The final order
// is: tasks at or below the marginal load by descending load (so the
// marginal task is first), then heavier tasks by ascending load.
func orderLightest(ts []Task, ave, selfLoad float64) {
	lex := selfLoad - ave
	sortAscending(ts)
	sum, marg, found := 0.0, 0.0, false
	for _, t := range ts {
		sum += t.Load
		if sum >= lex {
			marg, found = t.Load, true
			break
		}
	}
	if !found {
		// The whole rank's load does not reach the excess (only possible
		// when lex exceeds the total, i.e. the rank is not actually
		// overloaded); keep the ascending order.
		return
	}
	splitSort(ts, marg)
}

// splitSort orders tasks with load <= pivot by descending load followed
// by tasks with load > pivot by ascending load — the comparator shared
// by Algorithms 5 and 6 (lines 7–11).
func splitSort(ts []Task, pivot float64) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		aLow, bLow := a.Load <= pivot, b.Load <= pivot
		switch {
		case aLow && !bLow:
			return true
		case !aLow && bLow:
			return false
		case aLow: // both low: descending
			if a.Load != b.Load {
				return a.Load > b.Load
			}
			return a.ID < b.ID
		default: // both high: ascending
			if a.Load != b.Load {
				return a.Load < b.Load
			}
			return a.ID < b.ID
		}
	})
}
