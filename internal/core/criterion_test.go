package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestCriterionOriginal(t *testing.T) {
	// Accept only if recipient + task < ave.
	if !CriterionOriginal.Evaluate(1, 2, 4, 100) {
		t.Error("1+2 < 4 should accept")
	}
	if CriterionOriginal.Evaluate(2, 2, 4, 100) {
		t.Error("2+2 == 4 should reject")
	}
	if CriterionOriginal.Evaluate(3, 2, 4, 100) {
		t.Error("3+2 > 4 should reject")
	}
}

func TestCriterionRelaxed(t *testing.T) {
	// Accept only if task < self - recipient, i.e. recipient + task < self.
	if !CriterionRelaxed.Evaluate(1, 2, 0, 4) {
		t.Error("2 < 4-1 should accept")
	}
	if CriterionRelaxed.Evaluate(2, 2, 0, 4) {
		t.Error("2 == 4-2 should reject")
	}
	if CriterionRelaxed.Evaluate(3, 2, 0, 4) {
		t.Error("2 > 4-3 should reject")
	}
}

func TestRelaxedStrictlyLooserThanOriginal(t *testing.T) {
	// For an overloaded sender (self > ave), any transfer the original
	// criterion accepts is also accepted by the relaxed one:
	// l_x + load < l_ave <= l^p.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		ave := rng.Float64() * 10
		self := ave + rng.Float64()*20 // overloaded
		lx := rng.Float64() * 15
		load := rng.Float64() * 15
		if CriterionOriginal.Evaluate(lx, load, ave, self) &&
			!CriterionRelaxed.Evaluate(lx, load, ave, self) {
			t.Fatalf("relaxed rejected what original accepted: lx=%g load=%g ave=%g self=%g",
				lx, load, ave, self)
		}
	}
}

// TestLemma1 verifies the mechanics of Lemma 1: if the relaxed criterion
// accepts a transfer (LOAD(o) < l_i − l_x with true recipient load l_x),
// then max(l_i − l, l_x + l) < l_i — neither endpoint of the transfer
// ends above the sender's prior load, so the global maximum cannot
// increase through this pair and F monotonically decreases over ranks at
// the former maximum.
func TestLemma1(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5000; trial++ {
		li := 1 + rng.Float64()*100 // sender load
		lx := rng.Float64() * li    // recipient load below sender
		l := rng.Float64() * li     // candidate task load
		if !(l < li-lx) || l <= 0 { // criterion must hold with positive load
			continue
		}
		after := math.Max(li-l, lx+l)
		if after >= li {
			t.Fatalf("Lemma 1 violated: li=%g lx=%g l=%g after=%g", li, lx, l, after)
		}
	}
}

// TestLemma1FullDistribution checks the distribution-level statement: a
// single relaxed-criterion transfer (with accurate knowledge) never
// increases the objective F(D) = l_max/l_ave − h; it strictly decreases
// F when the sender was the unique maximum.
func TestLemma1FullDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(10)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = rng.Float64() * 10
		}
		i := rng.Intn(n)
		x := rng.Intn(n)
		if x == i {
			continue
		}
		l := rng.Float64() * 10
		if !(l > 0 && l < loads[i]-loads[x]) {
			continue // criterion rejects
		}
		before := Objective(loads, 1)
		uniqueMax := true
		for j, v := range loads {
			if j != i && v >= loads[i] {
				uniqueMax = false
			}
		}
		loads[i] -= l
		loads[x] += l
		after := Objective(loads, 1)
		if after > before+1e-12 {
			t.Fatalf("F increased after accepted transfer: %g -> %g", before, after)
		}
		if uniqueMax && !(after < before-1e-15) {
			t.Fatalf("F did not strictly decrease from unique max: %g -> %g", before, after)
		}
	}
}

// TestLemma2 checks the converse: transferring a task from the maximum
// rank when the criterion fails (l >= l_i − l_x) never decreases F.
func TestLemma2(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(10)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = rng.Float64() * 10
		}
		// Make rank 0 the maximum.
		maxIdx := 0
		for j, v := range loads {
			if v > loads[maxIdx] {
				maxIdx = j
			}
		}
		loads[0], loads[maxIdx] = loads[maxIdx], loads[0]
		x := 1 + rng.Intn(n-1)
		// Pick a violating task load: l >= l_0 − l_x, but the task must
		// exist on rank 0, so l <= l_0.
		low := loads[0] - loads[x]
		if low < 0 {
			low = 0
		}
		if low > loads[0] {
			continue
		}
		l := low + rng.Float64()*(loads[0]-low)
		if l <= 0 {
			continue
		}
		before := Objective(loads, 1)
		loads[0] -= l
		loads[x] += l
		after := Objective(loads, 1)
		if after < before-1e-12 {
			t.Fatalf("Lemma 2 violated: F decreased %g -> %g", before, after)
		}
	}
}

func TestObjective(t *testing.T) {
	// loads 6,2,2,2: l_max/l_ave = 6/3 = 2; F = 2 - h.
	if got := Objective([]float64{6, 2, 2, 2}, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("Objective = %g, want 1", got)
	}
	if got := Objective(nil, 1); got != -1 {
		t.Errorf("Objective(nil) = %g, want -1", got)
	}
	if got := Objective([]float64{0, 0}, 1.5); got != -1.5 {
		t.Errorf("Objective(zeros) = %g, want -1.5", got)
	}
}

func TestCriterionAndKindStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{CriterionOriginal.String(), "original"},
		{CriterionRelaxed.String(), "relaxed"},
		{CMFOriginal.String(), "original"},
		{CMFModified.String(), "modified"},
		{OrderArbitrary.String(), "arbitrary"},
		{OrderFewestMigrations.String(), "fewest-migrations"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if Criterion(99).String() == "" || CMFKind(99).String() == "" || Ordering(99).String() == "" {
		t.Error("unknown enum values should still render")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Tempered()
	if err := good.Validate(); err != nil {
		t.Errorf("Tempered() invalid: %v", err)
	}
	if err := Grapevine().Validate(); err != nil {
		t.Errorf("Grapevine() invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Fanout = 0 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.Threshold = 0 },
		func(c *Config) { c.Trials = 0 },
		func(c *Config) { c.Iterations = 0 },
	}
	for i, mut := range bad {
		c := Tempered()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}
