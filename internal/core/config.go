package core

import (
	"fmt"
	"time"

	"temperedlb/internal/obs"
)

// Criterion selects the transfer acceptance test of Algorithm 2
// (EVALUATECRITERION, lines 33–39).
type Criterion int

const (
	// CriterionOriginal is the original GrapevineLB test (line 35):
	// accept moving task o to rank x only if l_x + LOAD(o) < l_ave.
	// It enforces strict monotonicity on every recipient and is shown in
	// §V-B to reject almost all transfers, trapping I in a local minimum.
	CriterionOriginal Criterion = iota

	// CriterionRelaxed is the paper's optimal criterion (line 37):
	// accept if LOAD(o) < l^p − l_x, i.e. the recipient ends up strictly
	// less loaded than the sender was before the transfer. Lemma 1 proves
	// the objective F monotonically decreases under it; Lemma 2 proves no
	// looser criterion can preserve that.
	CriterionRelaxed
)

// String returns the name used in tables and flags.
func (c Criterion) String() string {
	switch c {
	case CriterionOriginal:
		return "original"
	case CriterionRelaxed:
		return "relaxed"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Evaluate applies the criterion for a prospective transfer of a task
// with load taskLoad from a rank currently loaded selfLoad to a recipient
// believed (from gossip) to be loaded recipientLoad, with global average
// rank load ave. It reports whether the transfer should be accepted.
func (c Criterion) Evaluate(recipientLoad, taskLoad, ave, selfLoad float64) bool {
	switch c {
	case CriterionOriginal:
		return recipientLoad+taskLoad < ave
	case CriterionRelaxed:
		return taskLoad < selfLoad-recipientLoad
	default:
		return false
	}
}

// CMFKind selects how BUILDCMF (Algorithm 2, lines 21–32) normalizes the
// probability mass function over candidate recipients.
type CMFKind int

const (
	// CMFOriginal uses l_s = l_ave. Valid while every known recipient is
	// strictly underloaded; probabilities of ranks at or above the
	// average are clamped to zero.
	CMFOriginal CMFKind = iota

	// CMFModified uses l_s = max(l_ave, max known load) (line 25), the
	// paper's §V-C change that keeps the mass function non-negative once
	// the relaxed criterion lets recipients exceed the average.
	CMFModified
)

// String returns the name used in tables and flags.
func (k CMFKind) String() string {
	switch k {
	case CMFOriginal:
		return "original"
	case CMFModified:
		return "modified"
	default:
		return fmt.Sprintf("CMFKind(%d)", int(k))
	}
}

// Ordering selects the task traversal order of the transfer stage
// (ORDERTASKS, §V-E).
type Ordering int

const (
	// OrderArbitrary considers tasks by identifying index, the baseline
	// of the original algorithm (Algorithm 2 line 41).
	OrderArbitrary Ordering = iota

	// OrderLoadIntensive tries the most load-intensive tasks first
	// (Algorithm 4), the paper's straw-man.
	OrderLoadIntensive

	// OrderFewestMigrations aims to resolve the overload with the fewest
	// transfers (Algorithm 5): the lightest task that alone covers the
	// excess first, then lighter tasks descending, then heavier ascending.
	OrderFewestMigrations

	// OrderLightest aims for maximal acceptance odds (Algorithm 6): the
	// marginal task of the ascending prefix sum first, then lighter tasks
	// descending, then heavier ascending.
	OrderLightest
)

// String returns the name used in tables and flags.
func (o Ordering) String() string {
	switch o {
	case OrderArbitrary:
		return "arbitrary"
	case OrderLoadIntensive:
		return "load-intensive"
	case OrderFewestMigrations:
		return "fewest-migrations"
	case OrderLightest:
		return "lightest"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// ParseOrdering converts a flag string (as produced by Ordering.String)
// back to an Ordering.
func ParseOrdering(s string) (Ordering, error) {
	for _, o := range []Ordering{OrderArbitrary, OrderLoadIntensive, OrderFewestMigrations, OrderLightest} {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("core: unknown ordering %q", s)
}

// Config collects every knob of the TemperedLB algorithm family. The
// zero value is not useful; start from Tempered() or Grapevine().
type Config struct {
	// Fanout is the gossip branching factor f of Algorithm 1.
	Fanout int
	// Rounds is the number of gossip rounds k of Algorithm 1.
	Rounds int
	// Threshold is the relative imbalance threshold h: a rank keeps
	// proposing transfers while its load exceeds h·l_ave.
	Threshold float64

	// Criterion, CMF, Order select the transfer-stage variants.
	Criterion Criterion
	CMF       CMFKind
	Order     Ordering

	// RecomputeCMF rebuilds the CMF inside the transfer loop (line 7 of
	// Algorithm 2) so locally scheduled transfers immediately influence
	// recipient selection; the original algorithm builds it once (line 5).
	RecomputeCMF bool

	// Passes bounds repeated traversals of the task list within one
	// transfer-stage execution. Algorithm 2 as written makes a single
	// pass over O^p (Passes = 1), but the per-iteration rejection counts
	// the paper reports from LBAF (≈16 evaluations per task in §V-B)
	// imply the tool retries rejected tasks until a full pass accepts
	// nothing; Passes <= 0 selects that until-quiescence behaviour, the
	// default for both shipped configurations.
	Passes int

	// Trials and Iterations drive the refinement of Algorithm 3: each of
	// Trials restarts from the original assignment and runs Iterations
	// inform+transfer passes; the globally best distribution wins.
	Trials     int
	Iterations int

	// Seed makes every random choice reproducible. Distinct per-rank and
	// per-trial streams are derived from it.
	Seed int64

	// FloodForward, when true, forwards gossip on every received message
	// as literally written in Algorithm 1 (exponential message growth;
	// only sensible at small scale). When false (the default and what
	// practical implementations do) a rank forwards a given round's
	// knowledge at most once.
	FloodForward bool

	// PersistKnowledge keeps each rank's gossip knowledge across the
	// iterations of a trial instead of resetting it, trading staleness
	// for fewer messages. The paper resets; this is an ablation knob.
	PersistKnowledge bool

	// NegativeAcks enables the recipient-side veto of Menon's original
	// GrapevineLB that the paper chose not to employ (§V-A): a transfer
	// that would push the actual recipient above the average is bounced
	// back to the sender. Iterative refinement subsumes it; this knob
	// exists to quantify that claim.
	NegativeAcks bool

	// MaxGossipEntries caps the number of knowledge entries carried per
	// gossip message (0 = unlimited). Footnote 2 of the paper flags the
	// O(P) list size as a scalability pitfall and defers limited-
	// information balancing to future work; this implements it. Entries
	// are sampled uniformly from the sender's knowledge.
	MaxGossipEntries int

	// GossipDrop, in [0,1), makes the synchronous engine's simulated
	// transport lossy: each gossip message is discarded with this
	// probability before delivery, drawn from a dedicated seeded stream.
	// It is the engine-side mirror of the distributed runtime's fault
	// injection — gossip is the one protocol the engine simulates
	// asynchronously, and knowledge loss is exactly how transport loss
	// manifests there (transfers and collectives have no engine
	// counterpart to drop). Zero, the default, leaves the delivery loop
	// untouched and results bit-identical to earlier versions.
	GossipDrop float64

	// GossipDup, GossipDelayMin/GossipDelayMax and GossipSlowRanks extend
	// the engine's gossip transport to the full fault grammar the
	// distributed runtime accepts (comm.FaultSpec): duplicated deliveries,
	// a uniform per-message virtual latency band, and per-rank straggler
	// penalties added to every message a slow rank sends or receives.
	// Setting any of them switches gossip delivery from the legacy FIFO
	// queue to a virtual-time event queue ordered by delivery time (ties
	// by enqueue order, so an all-zero-delay spec reproduces FIFO order
	// exactly). Fault decisions are stateless hashes of the message index
	// under GossipFaultSeed (Seed when zero), so runs stay reproducible.
	// Retry knobs of the grammar have no engine counterpart — the engine
	// queue never loses a message except by explicit drop — and are
	// accepted as no-ops by the flag parsers.
	GossipDup       float64
	GossipDelayMin  time.Duration
	GossipDelayMax  time.Duration
	GossipSlowRanks map[int]time.Duration
	GossipFaultSeed int64

	// Stream, when non-nil, receives one obs.Snapshot frame per engine
	// iteration (plus an initial frame), carrying per-rank loads and the
	// cumulative gossip/transfer accounting. StreamTag overrides the
	// frame's Source field ("engine" when empty) so concurrent engines
	// can share one stream distinguishably. Nil costs one comparison per
	// iteration.
	Stream    *obs.Stream
	StreamTag string

	// CommBias, in [0,1), activates the communication-aware extension
	// (§VII future work) when a CommGraph is supplied to
	// Engine.RunWithComm: recipient selection blends the load-deficit
	// CMF with each candidate's communication affinity for the task,
	// p' = (1−CommBias)·p_cmf + CommBias·p_affinity, steering tasks
	// toward ranks hosting their communication partners.
	CommBias float64

	// Tracer, when non-nil, receives lb.run and lb.iteration span events
	// from the synchronous engine (the distributed balancer uses the
	// runtime's tracer instead). Nil — the default — costs one pointer
	// comparison per iteration.
	Tracer obs.Tracer
}

// Grapevine returns the configuration matching the original GrapevineLB
// algorithm of Menon & Kalé as described in §IV-B: original criterion and
// CMF, CMF built once, arbitrary task order, a single trial of a single
// inform+transfer pass.
func Grapevine() Config {
	return Config{
		Fanout:     6,
		Rounds:     10,
		Threshold:  1.0,
		Criterion:  CriterionOriginal,
		CMF:        CMFOriginal,
		Order:      OrderArbitrary,
		Passes:     1, // the literal single traversal of Algorithm 2
		Trials:     1,
		Iterations: 1,
		Seed:       1,
	}
}

// Tempered returns the paper's TemperedLB configuration as run in the
// EMPIRE evaluation (§VI-B): relaxed criterion, modified CMF recomputed
// during the transfer loop, Fewest Migrations ordering, 10 trials of 8
// iterations each.
func Tempered() Config {
	cfg := Grapevine()
	cfg.Criterion = CriterionRelaxed
	cfg.CMF = CMFModified
	cfg.RecomputeCMF = true
	cfg.Order = OrderFewestMigrations
	cfg.Trials = 10
	cfg.Iterations = 8
	cfg.Passes = 1
	return cfg
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Fanout < 1:
		return fmt.Errorf("core: fanout must be >= 1, got %d", c.Fanout)
	case c.Rounds < 1:
		return fmt.Errorf("core: rounds must be >= 1, got %d", c.Rounds)
	case c.Threshold <= 0:
		return fmt.Errorf("core: threshold must be > 0, got %g", c.Threshold)
	case c.Trials < 1:
		return fmt.Errorf("core: trials must be >= 1, got %d", c.Trials)
	case c.Iterations < 1:
		return fmt.Errorf("core: iterations must be >= 1, got %d", c.Iterations)
	case c.CommBias < 0 || c.CommBias >= 1:
		return fmt.Errorf("core: comm bias must be in [0,1), got %g", c.CommBias)
	case c.MaxGossipEntries < 0:
		return fmt.Errorf("core: max gossip entries must be >= 0, got %d", c.MaxGossipEntries)
	case c.GossipDrop < 0 || c.GossipDrop >= 1:
		return fmt.Errorf("core: gossip drop must be in [0,1), got %g", c.GossipDrop)
	case c.GossipDup < 0 || c.GossipDup >= 1:
		return fmt.Errorf("core: gossip dup must be in [0,1), got %g", c.GossipDup)
	case c.GossipDelayMin < 0 || c.GossipDelayMax < 0:
		return fmt.Errorf("core: gossip delays must be >= 0, got min %v max %v",
			c.GossipDelayMin, c.GossipDelayMax)
	case c.GossipDelayMax > 0 && c.GossipDelayMin > c.GossipDelayMax:
		return fmt.Errorf("core: gossip delay min %v exceeds max %v",
			c.GossipDelayMin, c.GossipDelayMax)
	}
	for r, d := range c.GossipSlowRanks {
		if r < 0 {
			return fmt.Errorf("core: gossip slow rank must be >= 0, got %d", r)
		}
		if d < 0 {
			return fmt.Errorf("core: gossip slow penalty must be >= 0, got %v", d)
		}
	}
	return nil
}
