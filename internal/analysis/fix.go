package analysis

import (
	"fmt"
	"os"
	"sort"
)

// TextEdit is one byte-range replacement in a source file. Start and
// End are byte offsets into the file; New replaces the range [Start,
// End). A deletion has empty New; an insertion has Start == End.
type TextEdit struct {
	Filename string `json:"file"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

// SuggestedFix is a machine-applicable repair attached to a
// Diagnostic. Fixes must be safe to apply blindly: `lbvet -fix` applies
// every suggested fix without asking, and the driver test requires the
// result to be clean on the second run (idempotence). Analyzers
// therefore only attach fixes whose correctness is locally decidable —
// deleting a dead directive, swapping a call for its sanctioned
// equivalent when the replacement package is already imported.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// ApplyFixes applies every suggested fix of diags to the files on disk,
// returning the number of fixes applied and the set of files rewritten.
// Edits are applied per file in descending offset order so earlier
// edits do not shift later ones; overlapping edits within one file are
// an error (no partial writes happen for that file).
func ApplyFixes(diags []Diagnostic) (applied int, files []string, err error) {
	byFile := make(map[string][]TextEdit)
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				byFile[e.Filename] = append(byFile[e.Filename], e)
			}
			applied++
		}
	}
	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		edits := byFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		// Identical edits (two diagnostics fixing the same spot) collapse;
		// genuinely overlapping distinct edits are refused.
		dedup := edits[:0]
		for i, e := range edits {
			if i > 0 && e == edits[i-1] {
				applied--
				continue
			}
			dedup = append(dedup, e)
		}
		edits = dedup
		for i := 1; i < len(edits); i++ {
			if edits[i].End > edits[i-1].Start {
				return 0, nil, fmt.Errorf("overlapping fixes in %s at offsets %d and %d", name, edits[i].Start, edits[i-1].Start)
			}
		}
		src, rerr := os.ReadFile(name)
		if rerr != nil {
			return 0, nil, rerr
		}
		out := src
		for _, e := range edits {
			if e.Start < 0 || e.End > len(src) || e.Start > e.End {
				return 0, nil, fmt.Errorf("fix range [%d,%d) out of bounds for %s (%d bytes)", e.Start, e.End, name, len(src))
			}
			out = append(out[:e.Start], append([]byte(e.New), out[e.End:]...)...)
		}
		info, serr := os.Stat(name)
		mode := os.FileMode(0o644)
		if serr == nil {
			mode = info.Mode()
		}
		if werr := os.WriteFile(name, out, mode); werr != nil {
			return 0, nil, werr
		}
		files = append(files, name)
	}
	return applied, files, nil
}
