package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// payloadBands maps a registering package to the PayloadID band it
// owns (codec.go: the runtime owns 1–31, balancer layers 32–63,
// applications ≥ 64). Band assignment is what keeps independently
// developed layers from colliding on ids.
func payloadBand(pkgPath string) (lo, hi int, name string) {
	switch {
	case matchesSegmentPath(pkgPath, "internal/amt"):
		return 1, 31, "runtime band 1–31"
	case matchesSegmentPath(pkgPath, "internal/lb"):
		return 32, 63, "balancer band 32–63"
	default:
		return 64, 1<<16 - 1, "application band ≥64"
	}
}

// codecValueMethods are the Encoder/Decoder methods that move payload
// data. Everything else on the codec types (Err, Remaining, Failf,
// Reset, Bytes) is bookkeeping and does not shape the wire format.
var codecValueMethods = map[string]bool{
	"U8": true, "U16": true, "U32": true, "U64": true,
	"I32": true, "I64": true, "F64": true, "Bool": true,
	"F64Slice": true, "Any": true,
}

// payloadReg is one RegisterPayload call observed anywhere in the
// module.
type payloadReg struct {
	id       int
	typeName string
	pkgPath  string
	pos      token.Pos
}

// payloadSend is one runtime send whose payload type is statically
// known.
type payloadSend struct {
	typeName string
	pos      token.Pos
}

// newPayloadcodec checks the wire-codec registry against the module's
// actual sends, module-wide (the registration usually lives in a
// different package than the send):
//
//   - every type passed as the data argument of Context.Send,
//     Context.SendObject, Collection.Send or Collection.Broadcast must
//     have a wire.RegisterPayload codec somewhere in the module —
//     otherwise the first run on a socket transport panics where the
//     in-memory transport silently worked;
//   - the registered id must sit in the registering package's band
//     (runtime 1–31, balancer 32–63, applications ≥64) and no id may be
//     registered twice;
//   - the encoder and decoder of one registration must move fields in
//     the same order: the sequence of Encoder value-method calls must
//     equal the sequence of Decoder value-method calls (for bodies with
//     branches, consecutive duplicates collapse first, so a
//     length-or-sentinel prefix like InformMsg's nil encoding
//     compares correctly). Field order is the wire format; a mismatch
//     breaks the decode-success ⇒ re-encode fixpoint the fuzzers pin.
//
// Scope: the whole module. Sends whose data argument is statically an
// interface value (forwarding helpers like Collection.Send's own body)
// are skipped — the concrete sites feeding them are checked instead.
// comm.Message is the transport's own framing envelope, not a payload,
// and is exempt. The module-wide pairing means a single-package run
// (`lbvet ./examples/...`) may miss registrations living elsewhere;
// `make lint` always runs the full module.
func newPayloadcodec() *Analyzer {
	a := &Analyzer{
		Name: "payloadcodec",
		Doc:  "pair every runtime-sent type with a registered, band-correct, field-order-symmetric wire codec",
	}
	var regs []payloadReg
	var sends []payloadSend
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		walkStack(pass.Pkg.Files, func(n ast.Node, _ []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if isRegisterPayloadCall(info, call) && len(call.Args) == 3 {
				regs = append(regs, checkRegistration(pass, call)...)
				return
			}
			if send, ok := sentPayload(info, call); ok {
				sends = append(sends, send)
			}
		})
	}
	a.Finish = func(report func(pos token.Pos, format string, args ...any)) {
		registered := make(map[string]bool, len(regs))
		byID := make(map[int][]payloadReg)
		for _, r := range regs {
			registered[r.typeName] = true
			byID[r.id] = append(byID[r.id], r)
		}
		ids := make([]int, 0, len(byID))
		for id := range byID {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			rs := byID[id]
			if len(rs) > 1 {
				sort.Slice(rs, func(i, j int) bool { return rs[i].pos < rs[j].pos })
				for _, dup := range rs[1:] {
					report(dup.pos,
						"payload id %d registered twice (also for %s): ids are the wire contract and must be unique",
						id, rs[0].typeName)
				}
			}
		}
		for _, s := range sends {
			if !registered[s.typeName] {
				report(s.pos,
					"%s is sent through the runtime but has no wire.RegisterPayload codec: it cannot cross a socket transport", s.typeName)
			}
		}
	}
	return a
}

// isRegisterPayloadCall reports whether call is
// wire.RegisterPayload[T](id, enc, dec) or the facade's
// RegisterWirePayload, unwrapping an explicit instantiation.
func isRegisterPayloadCall(info *types.Info, call *ast.CallExpr) bool {
	fun := call.Fun
	switch v := fun.(type) {
	case *ast.IndexExpr:
		fun = v.X
	case *ast.IndexListExpr:
		fun = v.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name == "RegisterWirePayload" {
		return true
	}
	if sel.Sel.Name != "RegisterPayload" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && strings.HasSuffix(pn.Imported().Path(), "internal/comm/wire")
}

// checkRegistration validates one RegisterPayload call in place (band,
// symmetry) and returns its registry record.
func checkRegistration(pass *Pass, call *ast.CallExpr) []payloadReg {
	info := pass.Pkg.Info
	// The payload type is the second parameter of the encoder argument —
	// robust whether or not the call is explicitly instantiated.
	encSig, _ := info.TypeOf(call.Args[1]).(*types.Signature)
	if encSig == nil || encSig.Params().Len() != 2 {
		return nil
	}
	payloadType := encSig.Params().At(1).Type()
	if _, isParam := payloadType.(*types.TypeParam); isParam {
		// The facade's generic passthrough, not a concrete registration.
		return nil
	}
	typeName := types.TypeString(payloadType, nil)

	reg := payloadReg{id: -1, typeName: typeName, pkgPath: pass.Pkg.Path, pos: call.Pos()}
	if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			reg.id = int(v)
			lo, hi, band := payloadBand(pass.Pkg.Path)
			if reg.id < lo || reg.id > hi {
				pass.Reportf(call.Args[0].Pos(),
					"payload id %d for %s is outside this package's %s", reg.id, typeName, band)
			}
		}
	}

	encSeq, encBranchy, encOK := codecCallSequence(pass, call.Args[1])
	decSeq, decBranchy, decOK := codecCallSequence(pass, call.Args[2])
	if encOK && decOK {
		e, d := encSeq, decSeq
		if encBranchy || decBranchy {
			e, d = collapseRuns(e), collapseRuns(d)
		}
		if !equalSeq(e, d) {
			pass.Reportf(call.Pos(),
				"codec for %s is asymmetric: encoder writes [%s] but decoder reads [%s] — field order is the wire format",
				typeName, strings.Join(e, " "), strings.Join(d, " "))
		}
	}
	return []payloadReg{reg}
}

// codecCallSequence extracts the source-order sequence of Encoder or
// Decoder value-method calls on fn's codec parameter. fn must be a
// function literal or a same-package function; otherwise ok is false
// and the symmetry check is skipped.
func codecCallSequence(pass *Pass, fn ast.Expr) (seq []string, branchy, ok bool) {
	info := pass.Pkg.Info
	var body *ast.BlockStmt
	var param types.Object
	switch v := fn.(type) {
	case *ast.FuncLit:
		body = v.Body
		if len(v.Type.Params.List) == 0 || len(v.Type.Params.List[0].Names) == 0 {
			return nil, false, false
		}
		param = info.Defs[v.Type.Params.List[0].Names[0]]
	case *ast.Ident:
		obj, _ := info.Uses[v].(*types.Func)
		if obj == nil {
			return nil, false, false
		}
		fd := funcDeclOf(pass.Pkg, obj)
		if fd == nil || fd.Body == nil {
			return nil, false, false
		}
		body = fd.Body
		params := paramObjects(info, fd)
		if len(params) == 0 {
			return nil, false, false
		}
		param = params[0]
	default:
		return nil, false, false
	}
	if param == nil {
		return nil, false, false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			branchy = true
		case *ast.CallExpr:
			sel, selOK := v.Fun.(*ast.SelectorExpr)
			if !selOK || !codecValueMethods[sel.Sel.Name] {
				return true
			}
			if id, idOK := sel.X.(*ast.Ident); idOK && info.ObjectOf(id) == param {
				seq = append(seq, sel.Sel.Name)
			}
		}
		return true
	})
	return seq, branchy, true
}

// funcDeclOf finds the declaration of obj in pkg.
func funcDeclOf(pkg *Package, obj *types.Func) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pkg.Info.Defs[fd.Name] == obj {
				return fd
			}
		}
	}
	return nil
}

// collapseRuns removes consecutive duplicates: [I64 U32 U32 I32] ->
// [I64 U32 I32].
func collapseRuns(seq []string) []string {
	var out []string
	for i, s := range seq {
		if i == 0 || s != seq[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sentPayload classifies call as a runtime send with a statically known
// payload type: a Send/SendObject/Broadcast method call on a Context or
// Collection receiver whose last argument's type is concrete.
func sentPayload(info *types.Info, call *ast.CallExpr) (payloadSend, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sendMethodNames[sel.Sel.Name] || len(call.Args) == 0 {
		return payloadSend{}, false
	}
	fn := methodOf(info, call)
	if fn == nil {
		return payloadSend{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return payloadSend{}, false
	}
	if name := namedTypeName(recv.Type()); name != "Context" && name != "Collection" {
		return payloadSend{}, false
	}
	data := call.Args[len(call.Args)-1]
	t := info.TypeOf(data)
	if t == nil {
		return payloadSend{}, false
	}
	t = types.Default(t)
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return payloadSend{}, false
	}
	if _, isParam := t.(*types.TypeParam); isParam {
		return payloadSend{}, false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "Message" && obj.Pkg() != nil && matchesSegmentPath(obj.Pkg().Path(), "internal/comm") {
			return payloadSend{}, false
		}
	}
	return payloadSend{typeName: types.TypeString(t, nil), pos: data.Pos()}, true
}
