package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixIdempotent copies the fixable fixture aside, runs the full
// analyzer set, applies every suggested fix, and requires the second
// run over the fixed sources to be completely clean — applying fixes
// twice must be a no-op. The fixture covers both fix producers: the
// nodeterminism time.Now -> clock.Now rewrite and the
// unusedsuppression directive deletions (standalone and trailing).
func TestFixIdempotent(t *testing.T) {
	tmp := t.TempDir()
	entries, err := os.ReadDir(filepath.Join("testdata", "fixable"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "fixable", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tmp, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Each pass needs a fresh loader: file contents change on disk and
	// the loader caches parsed packages.
	run := func() []Diagnostic {
		ld, err := NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		pkg := ld.LoadDir(tmp, "td/internal/core/fixable")
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("fixture does not typecheck: %v", pkg.TypeErrors)
		}
		runner := &Runner{Analyzers: Analyzers()}
		return runner.Run([]*Package{pkg})
	}

	diags := run()
	if len(diags) != 3 {
		t.Fatalf("got %d findings, want 3 (time.Now + two stale directives): %v", len(diags), diags)
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			t.Errorf("finding carries no fix: %s", d)
		}
	}
	applied, files, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 || len(files) != 1 {
		t.Errorf("applied %d fixes to %d files, want 3 to 1", applied, len(files))
	}

	fixed, err := os.ReadFile(filepath.Join(tmp, "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixed), "//lint:ignore") {
		t.Errorf("stale directives survived -fix:\n%s", fixed)
	}
	if !strings.Contains(string(fixed), "clock.Now().After(epoch)") {
		t.Errorf("time.Now call not rewritten to the clock funnel:\n%s", fixed)
	}

	second := run()
	if len(second) != 0 {
		t.Errorf("second run over fixed sources is not clean: %v", second)
	}
	applied, _, err = ApplyFixes(second)
	if err != nil || applied != 0 {
		t.Errorf("second apply did something: applied %d, err %v", applied, err)
	}
}
