package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// newSeedflow checks that every random source is constructed from a
// plumbed seed, not a literal or ambient value. The repo's determinism
// story rests on one convention: randomness enters through a seed field
// (Config.Seed, Spec.Seed, FaultSeed, ...) or a seed parameter, and is
// derived downward with core.SeededRNG / deriveSeed — never invented at
// the construction site. A literal `rand.NewSource(7)` buried in a
// driver silently pins behavior no flag can change, and a rank-derived
// seed (`NewSource(int64(rc.Rank()))`) cannot be replayed under a
// different configuration.
//
// Flagged constructions: rand.NewSource / rand/v2's NewPCG and
// NewChaCha8, composite literals of *Source-named types (splitmixSource),
// and calls into seed-accepting functions — a function whose name
// contains "Seeded" (first argument is the seed), or a same-package
// function whose call-graph summary (callgraph.go) shows a parameter
// flowing into a source construction; that summary propagation is what
// makes the check one call level deep, so `buildWorkload(11)` is caught
// even though the NewSource sits inside buildWorkload.
//
// An argument passes when it mentions a seed-named identifier or field
// (any name containing "seed", case-insensitive) or a numeric parameter
// of the enclosing function (the seed was plumbed in; the caller's call
// site is checked in turn, one level up).
//
// Scope: the whole module — cmd/* and examples/* included, since
// literal seeds in drivers are exactly the bug class — except
// internal/comm/wire (dial backoff jitter is not protocol-visible; the
// cross-transport identity tests enforce that) and this analysis
// package itself.
func newSeedflow() *Analyzer {
	a := &Analyzer{
		Name: "seedflow",
		Doc:  "require random sources to be constructed from plumbed seeds, not literals or ambient values",
	}
	a.Run = func(pass *Pass) {
		if matchesSegmentPath(pass.Pkg.Path, "internal/comm/wire") ||
			matchesSegmentPath(pass.Pkg.Path, "internal/analysis") {
			return
		}
		info := pass.Pkg.Info
		sums := summaries(pass.Pkg)
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				params := paramObjects(info, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					args := seedSinkArgs(info, n, sums)
					if len(args) == 0 {
						args = seededCallArgs(info, n)
					}
					for _, arg := range args {
						if seedDerived(info, arg, params) {
							continue
						}
						pass.Reportf(arg.Pos(),
							"random source seeded from %s, which carries no plumbed seed: derive it from a Config/Spec seed field or a seed parameter",
							types.ExprString(arg))
					}
					return true
				})
			}
		}
	}
	return a
}

// seededCallArgs returns the seed argument of a call to a
// "Seeded"-named function from another package (core.SeededRNG): the
// first argument. Same-package seed flows are resolved precisely via
// summaries; across packages the naming convention is the contract.
func seededCallArgs(info *types.Info, n ast.Node) []ast.Expr {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	callee := calleeFunc(info, call)
	if callee == nil || !strings.Contains(callee.Name(), "Seeded") {
		return nil
	}
	return call.Args[:1]
}

// seedDerived reports whether e is an acceptable seed expression: it
// mentions an identifier or field whose name contains "seed"
// (case-insensitive), or a numeric parameter of the enclosing function.
func seedDerived(info *types.Info, e ast.Expr, params []types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if strings.Contains(strings.ToLower(id.Name), "seed") {
			found = true
			return false
		}
		obj := info.ObjectOf(id)
		for _, p := range params {
			if p != nil && obj == p && isNumeric(p.Type()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	// A variadic stream-id parameter ([]int64) plumbs seeds exactly like
	// a scalar one.
	if s, ok := t.Underlying().(*types.Slice); ok {
		t = s.Elem()
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsUnsigned) != 0
}
