package analysis

// Analyzers returns a fresh instance of every project analyzer, in
// stable order. Instances carry module-level aggregation state, so a
// new set must be created for each Runner.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		newNodeterminism(),
		newMaporder(),
		newLockdiscipline(),
		newAtomicfields(),
		newScratchescape(),
		newCollectivesym(),
		newPayloadcodec(),
		newSeedflow(),
		newUnusedsuppression(),
	}
}
