package analysis

// unusedSuppressionName is the analyzer name under which the Runner
// reports stale //lint:ignore directives.
const unusedSuppressionName = "unusedsuppression"

// newUnusedsuppression flags every //lint:ignore directive that
// suppressed no diagnostic in the current run. A suppression is a
// documented exception to a contract; when a refactor removes the
// violation underneath it, the directive becomes a standing invitation
// to reintroduce the bug silently. This analyzer makes the allowlist
// monotonically shrinking: a directive either earns its keep on every
// run or is deleted (each finding carries a suggested fix removing the
// directive, applied by `lbvet -fix`).
//
// The check is implemented inside the Runner rather than as a Run/Finish
// pass, because usedness is only known after every other analyzer has
// reported and suppression has been applied; this Analyzer value exists
// so the check is selectable, listable and documented like the rest.
//
// Scope: the whole module. Only directives naming an analyzer in the
// current selection are judged — under `-only=maporder` a nodeterminism
// directive's usefulness is unknowable — and packages with type errors
// are exempt (no analyzer ran there). A finding is itself suppressible
// with //lint:ignore unusedsuppression <reason>, for directives kept
// deliberately (e.g. documenting a contract that only manifests under
// build tags).
func newUnusedsuppression() *Analyzer {
	return &Analyzer{
		Name: unusedSuppressionName,
		Doc:  "flag lint:ignore directives that no longer suppress any finding",
	}
}
