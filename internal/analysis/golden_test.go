package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The tests share one loader so the standard library is typechecked
// once; testdata packages are loaded into it under synthetic protocol
// import paths (protocolPackage matches on internal/... segments).
var (
	loaderOnce sync.Once
	testLd     *Loader
	testLdErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { testLd, testLdErr = NewLoader(".") })
	if testLdErr != nil {
		t.Fatal(testLdErr)
	}
	return testLd
}

// loadTestdata loads internal/analysis/testdata/<rel> as import path
// td/internal/core/<rel>, failing the test on typecheck errors.
func loadTestdata(t *testing.T, rel string) *Package {
	t.Helper()
	pkg := testLoader(t).LoadDir(filepath.Join("testdata", rel), "td/internal/core/"+rel)
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("testdata/%s does not typecheck: %v", rel, pkg.TypeErrors)
	}
	return pkg
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// wantsOf parses the `// want "substr"` expectations of every file in
// dir, keyed by line number.
func wantsOf(t *testing.T, dir string) map[int]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRE.FindStringSubmatch(sc.Text()); m != nil {
				wants[line] = m[1]
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// TestGolden runs each analyzer over its positive and negative testdata
// packages: every `// want` expectation must be matched by a finding on
// its line, every finding must be expected, and the negative package
// must be silent. unusedsuppression runs with the full analyzer set —
// it judges directives against what the other analyzers found, so a
// single-analyzer selection would never report anything.
func TestGolden(t *testing.T) {
	analyzersFor := func(t *testing.T, name string) []*Analyzer {
		if name == "unusedsuppression" {
			return Analyzers()
		}
		return []*Analyzer{analyzerByName(t, name)}
	}
	for _, name := range []string{
		"nodeterminism", "maporder", "lockdiscipline", "atomicfields", "scratchescape",
		"collectivesym", "payloadcodec", "seedflow", "unusedsuppression",
	} {
		t.Run(name+"/pos", func(t *testing.T) {
			pkg := loadTestdata(t, name+"/pos")
			runner := &Runner{Analyzers: analyzersFor(t, name)}
			diags := runner.Run([]*Package{pkg})
			wants := wantsOf(t, pkg.Dir)
			if len(wants) == 0 {
				t.Fatalf("no // want expectations in %s", pkg.Dir)
			}
			matched := make(map[int]bool)
			for _, d := range diags {
				want, ok := wants[d.Pos.Line]
				if !ok {
					t.Errorf("unexpected finding: %s", d)
					continue
				}
				if !strings.Contains(d.Message, want) {
					t.Errorf("line %d: got %q, want substring %q", d.Pos.Line, d.Message, want)
				}
				matched[d.Pos.Line] = true
			}
			for line, want := range wants {
				if !matched[line] {
					t.Errorf("line %d: expected finding matching %q, got none", line, want)
				}
			}
		})
		t.Run(name+"/neg", func(t *testing.T) {
			pkg := loadTestdata(t, name+"/neg")
			runner := &Runner{Analyzers: analyzersFor(t, name)}
			for _, d := range runner.Run([]*Package{pkg}) {
				t.Errorf("false positive: %s", d)
			}
		})
	}
}

// TestProtocolScoping loads the nodeterminism positive package under
// import paths the analyzer must not guard — a non-protocol utility
// path, and the internal/comm/wire carve-out (the socket transport
// legitimately reads the clock for dial backoff and RTT measurement) —
// and requires silence on both.
func TestProtocolScoping(t *testing.T) {
	for name, importPath := range map[string]string{
		"util": "td/util/ndscope",
		"wire": "td/internal/comm/wire",
	} {
		t.Run(name, func(t *testing.T) {
			pkg := testLoader(t).LoadDir(filepath.Join("testdata", "nodeterminism", "pos"), importPath)
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture does not typecheck: %v", pkg.TypeErrors)
			}
			runner := &Runner{Analyzers: []*Analyzer{analyzerByName(t, "nodeterminism")}}
			for _, d := range runner.Run([]*Package{pkg}) {
				t.Errorf("finding outside protocol packages: %s", d)
			}
		})
	}
}
