package analysis

import (
	"go/ast"
	"go/types"
)

// collectiveNames are the methods of the runtime's amt.Context that
// every rank of a job must call in the identical order: the tree
// collectives and their entry points. A call to any of these is a
// synchronization point — a rank that skips one deadlocks the job.
var collectiveNames = map[string]bool{
	"Barrier":          true,
	"AllReduce":        true,
	"AllReduceVec":     true,
	"AllReduceSummary": true,
	"AllGather":        true,
	"Broadcast":        true,
	"treeCollective":   true,
}

// rankLocalSources are the zero-argument amt.Context accessors whose
// results differ between ranks of the same job (or may be nil on some
// ranks and not others): rank identity and the per-process
// observability attachments. Values derived from these must never steer
// a collective call.
var rankLocalSources = map[string]bool{
	"Rank":    true,
	"Stream":  true,
	"Tracer":  true,
	"Metrics": true,
}

// isCollectiveCall reports whether call invokes a collective: a method
// named in collectiveNames on a receiver whose named type is Context
// (the runtime context; fixture packages model it with a local stub of
// the same name). Collection.Broadcast is deliberately excluded — it is
// a point-to-point fan-out, not a synchronization point.
func isCollectiveCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !collectiveNames[sel.Sel.Name] {
		return false
	}
	fn := methodOf(info, call)
	if fn == nil {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return namedTypeName(recv.Type()) == "Context"
}

// isRankLocalSource reports whether call reads rank-local state: a
// zero-argument method named in rankLocalSources.
func isRankLocalSource(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !rankLocalSources[sel.Sel.Name] || len(call.Args) != 0 {
		return false
	}
	// Must be a method call, not a package-qualified function.
	return methodOf(info, call) != nil
}

// funcSummary is the per-function digest the intra-package call graph
// exposes to analyzers, so collectivesym and seedflow see one call
// level deep without a whole-program analysis:
//
//   - collective: the first collective call in the body, if any. A call
//     to a function with a non-nil collective is itself a
//     synchronization point for the caller.
//   - rankReturn: some return statement's value reads a rank-local
//     source directly, so the function's result carries rank taint to
//     its callers.
//   - seedParams: parameter indices that flow into the construction of
//     a random source (rand.NewSource / NewPCG / a *Source composite
//     literal), directly or through another function of the same
//     package. Call sites must feed these from a plumbed seed.
type funcSummary struct {
	collective *ast.CallExpr
	rankReturn bool
	seedParams map[int]bool
}

// summaries computes (and caches on the package) the funcSummary of
// every function declared in pkg, keyed by its *types.Func. Seed-flow
// marks are propagated to a fixed point within the package, so a
// wrapper like SeededRNG -> newRNG -> composite literal resolves.
func summaries(pkg *Package) map[*types.Func]*funcSummary {
	if pkg.funcSummaries != nil {
		return pkg.funcSummaries
	}
	info := pkg.Info
	sums := make(map[*types.Func]*funcSummary)
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls[obj] = fd
			sums[obj] = &funcSummary{seedParams: make(map[int]bool)}
		}
	}
	for obj, fd := range decls {
		s := sums[obj]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if s.collective == nil && isCollectiveCall(info, call) {
				s.collective = call
			}
			return true
		})
		for _, ret := range returnStmts(fd.Body) {
			for _, res := range ret.Results {
				if exprReadsRankLocal(info, res) {
					s.rankReturn = true
				}
			}
		}
	}
	// Seed-flow fixed point: a parameter is a seed parameter when it
	// appears inside a direct source-construction expression, or is
	// passed to a seed parameter of another function in this package.
	for changed := true; changed; {
		changed = false
		for obj, fd := range decls {
			s := sums[obj]
			params := paramObjects(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				for _, arg := range seedSinkArgs(info, n, sums) {
					for idx, p := range params {
						// Only numeric parameters count as seed plumbing:
						// a config struct mentioned in a seed expression
						// (cfg.Seed) does not make the whole struct a seed.
						if p == nil || !isNumeric(p.Type()) {
							continue
						}
						if !s.seedParams[idx] && exprMentionsObject(info, arg, p) {
							s.seedParams[idx] = true
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	pkg.funcSummaries = sums
	return sums
}

// seedSinkArgs returns the argument expressions of n that must be
// seed-derived: the arguments of rand.NewSource / rand/v2 NewPCG /
// NewChaCha8, the field values of a composite literal whose type name
// contains "Source" (splitmixSource), and arguments in seed-parameter
// positions of a same-package call per sums.
func seedSinkArgs(info *types.Info, n ast.Node, sums map[*types.Func]*funcSummary) []ast.Expr {
	switch v := n.(type) {
	case *ast.CallExpr:
		for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
			if name, ok := pkgFunc(info, v, randPkg); ok {
				switch name {
				case "NewSource", "NewPCG", "NewChaCha8":
					return v.Args
				}
			}
		}
		if callee := calleeFunc(info, v); callee != nil {
			if s := sums[callee]; s != nil && len(s.seedParams) > 0 {
				var args []ast.Expr
				for idx, arg := range v.Args {
					if s.seedParams[idx] {
						args = append(args, arg)
					}
				}
				return args
			}
		}
	case *ast.CompositeLit:
		if !sourceTypeName(namedTypeName(info.TypeOf(v))) {
			return nil
		}
		var args []ast.Expr
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				args = append(args, kv.Value)
			} else {
				args = append(args, el)
			}
		}
		return args
	}
	return nil
}

// sourceTypeName reports whether a named type models a random source by
// naming convention (splitmixSource, Source, ...).
func sourceTypeName(name string) bool {
	return name != "" && (name == "Source" ||
		len(name) > 6 && name[len(name)-6:] == "Source" ||
		len(name) > 6 && name[len(name)-6:] == "source")
}

// calleeFunc resolves the called function or method object of call, or
// nil for builtins, function values and interface calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if fn := methodOf(info, call); fn != nil {
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// paramObjects returns the declared parameter objects of fd in order,
// flattening grouped parameters (a, b int64).
func paramObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

// exprMentionsObject reports whether e contains an identifier resolving
// to obj.
func exprMentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprReadsRankLocal reports whether e contains a direct rank-local
// source call (rc.Rank(), rc.Stream(), ...).
func exprReadsRankLocal(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isRankLocalSource(info, call) {
			found = true
		}
		return !found
	})
	return found
}

// returnStmts collects every return statement of body, excluding those
// inside nested function literals.
func returnStmts(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, v)
		}
		return true
	})
	return out
}
