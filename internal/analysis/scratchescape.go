package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// isScratchSelector reports whether sel selects a reusable scratch
// buffer: a field whose name ends in "Buf" or "buf", contains
// "scratch", is the runtime's drain buffer "batch", or any field of a
// struct whose type name contains "Scratch" (TransferScratch,
// engineScratch). These are the engine-held buffers PR 2 introduced to
// keep the hot path allocation-free; their contract is single-owner
// reuse, so a reference escaping the owner aliases memory the next call
// overwrites.
func isScratchSelector(info *types.Info, sel *ast.SelectorExpr) bool {
	f := fieldOf(info, sel)
	if f == nil {
		return false
	}
	name := f.Name()
	lower := strings.ToLower(name)
	if strings.HasSuffix(lower, "buf") || strings.Contains(lower, "scratch") || name == "batch" {
		return true
	}
	if owner := namedTypeName(info.TypeOf(sel.X)); strings.Contains(owner, "Scratch") {
		return true
	}
	return false
}

// newScratchescape flags scratch buffers escaping their owner: returned
// from a function (directly or resliced), captured by a `go` closure,
// or stored into a package-level variable. Returning a scratch slice is
// occasionally the documented API contract ("valid until the next
// call") — those sites carry a //lint:ignore scratchescape directive
// citing the contract; anything else is a latent aliasing bug of the
// kind the PR 2 buffer reuse made possible.
//
// Scope: the whole module with no carve-outs; the name heuristic
// (isScratchSelector) is itself the limiter, firing only on fields
// following the engine's scratch-buffer naming conventions.
func newScratchescape() *Analyzer {
	a := &Analyzer{
		Name: "scratchescape",
		Doc:  "flag engine-held scratch buffers escaping via returns, goroutines, or globals",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		walkStack(pass.Pkg.Files, func(n ast.Node, stack []ast.Node) {
			switch v := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range v.Results {
					if sel, ok := unwrapSlice(res).(*ast.SelectorExpr); ok && isScratchSelector(info, sel) {
						pass.Reportf(res.Pos(),
							"scratch buffer %s escapes via return: the next reuse overwrites it under the caller", types.ExprString(sel))
					}
				}
			case *ast.GoStmt:
				lit, ok := v.Call.Fun.(*ast.FuncLit)
				if !ok {
					return
				}
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					sel, ok := m.(*ast.SelectorExpr)
					if !ok || !isScratchSelector(info, sel) {
						return true
					}
					if root := rootIdent(sel); root != nil && !declaredWithin(info, root, lit) {
						pass.Reportf(sel.Pos(),
							"scratch buffer %s captured by goroutine: it races with the owner's reuse", types.ExprString(sel))
					}
					return true
				})
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(v.Rhs) {
						continue
					}
					obj := info.ObjectOf(id)
					if obj == nil || obj.Parent() == nil || obj.Parent() != pass.Pkg.Types.Scope() {
						continue
					}
					if sel, ok := unwrapSlice(v.Rhs[i]).(*ast.SelectorExpr); ok && isScratchSelector(info, sel) {
						pass.Reportf(v.Pos(),
							"scratch buffer %s stored in package-level %s: it outlives the owner's reuse cycle", types.ExprString(sel), id.Name)
					}
				}
			}
		})
	}
	return a
}

// unwrapSlice strips reslicing and parens: st.buf[:n] -> st.buf.
func unwrapSlice(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.SliceExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return e
		}
	}
}
