package analysis

import "testing"

// TestLoadAllSmoke loads and typechecks the whole module; every package
// must come back clean (the tree is expected to compile).
func TestLoadAllSmoke(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: %d type errors, first: %v", p.Path, len(p.TypeErrors), p.TypeErrors[0])
		}
	}
}
