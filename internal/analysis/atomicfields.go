package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicFuncNames are the sync/atomic package-level operations whose
// first argument addresses the word being operated on.
var atomicFuncNames = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true,
	"AddUintptr": true, "LoadInt32": true, "LoadInt64": true,
	"LoadUint32": true, "LoadUint64": true, "LoadUintptr": true,
	"LoadPointer": true, "StoreInt32": true, "StoreInt64": true,
	"StoreUint32": true, "StoreUint64": true, "StoreUintptr": true,
	"StorePointer": true, "SwapInt32": true, "SwapInt64": true,
	"SwapUint32": true, "SwapUint64": true, "SwapUintptr": true,
	"SwapPointer": true, "CompareAndSwapInt32": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true,
	"CompareAndSwapPointer": true,
}

// newAtomicfields flags struct fields that are accessed both through
// sync/atomic functions and through plain loads or stores anywhere in
// the module. Mixing the two breaks the happens-before edges the atomic
// accesses were supposed to provide (the plain access races with every
// atomic one). Fields of the atomic.Int64-style wrapper types cannot be
// mixed this way and are ignored — this analyzer exists for the
// address-based atomic.{Add,Load,Store}* idiom that obs.Metrics and the
// transport counters started from. Aggregation is module-wide: the
// atomic access may live in one package and the plain access in
// another, so findings are reported from the Finish hook.
//
// Scope: the whole module with no carve-outs — a racy mixed access in
// an example is as wrong as one in the runtime.
func newAtomicfields() *Analyzer {
	a := &Analyzer{
		Name: "atomicfields",
		Doc:  "flag struct fields accessed both via sync/atomic and via plain loads/stores",
	}
	atomicUse := make(map[*types.Var][]token.Pos)
	plainUse := make(map[*types.Var][]token.Pos)
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		// Selector nodes consumed as &x.f arguments of atomic calls;
		// they must not be double-counted as plain uses.
		viaAtomic := make(map[*ast.SelectorExpr]bool)
		walkStack(pass.Pkg.Files, func(n ast.Node, _ []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			name, ok := pkgFunc(info, call, "sync/atomic")
			if !ok || !atomicFuncNames[name] || len(call.Args) == 0 {
				return
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return
			}
			if f := fieldOf(info, sel); f != nil {
				viaAtomic[sel] = true
				atomicUse[f] = append(atomicUse[f], sel.Pos())
			}
		})
		walkStack(pass.Pkg.Files, func(n ast.Node, _ []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || viaAtomic[sel] {
				return
			}
			f := fieldOf(info, sel)
			if f == nil {
				return
			}
			// Wrapper-typed fields (atomic.Int64 etc.) have no plain
			// access mode worth tracking; their method calls all go
			// through the atomic API.
			if t := f.Type(); t != nil {
				if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Path() == "sync/atomic" {
					return
				}
			}
			plainUse[f] = append(plainUse[f], sel.Pos())
		})
	}
	a.Finish = func(report func(pos token.Pos, format string, args ...any)) {
		for f := range atomicUse {
			for _, pos := range plainUse[f] {
				report(pos,
					"field %s is accessed with sync/atomic elsewhere but read/written plainly here: every access must go through sync/atomic", f.Name())
			}
		}
	}
	return a
}
