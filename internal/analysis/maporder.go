package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newMaporder flags `range` over a map whose body feeds order-sensitive
// sinks: appending to a slice declared outside the loop, accumulating
// into a float, or sending a message. Go randomizes map iteration order
// per run, floating-point addition is not associative, and message
// order is protocol-visible — so each of these makes output depend on
// the map's hash seed. The sanctioned idiom collects the keys and sorts
// them before consuming (see rankState.sumLoad and the topology-fixed
// combine order of the tree collectives); an append whose target is
// sorted by a later statement of the same block is therefore exempt.
//
// Scope: the whole module, cmd/* and examples/* included — map-order
// nondeterminism corrupts reproducibility wherever it appears, and the
// collect-then-sort exemption already covers the legitimate pattern.
func newMaporder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "flag order-sensitive accumulation or sends inside map iteration",
	}
	a.Run = func(pass *Pass) {
		walkStack(pass.Pkg.Files, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			checkMapRangeBody(pass, rs, stack)
		})
	}
	return a
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, stack, v)
		default:
			if isSendCall(info, n) {
				pass.Reportf(n.Pos(),
					"message send inside range over map %s: send order follows randomized map order; iterate sorted keys instead",
					types.ExprString(rs.X))
				return false
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, stack []ast.Node, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	for i, lhs := range as.Lhs {
		root := rootIdent(lhs)
		if root == nil || declaredWithin(info, root, rs) {
			continue
		}
		target := types.ExprString(lhs)
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			if i >= len(as.Rhs) {
				continue
			}
			// x = append(x, ...): order-sensitive unless x is sorted
			// by a later statement of the enclosing block.
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isAppendOf(info, call, target) {
				if !sortedAfter(pass, rs, stack, target) {
					pass.Reportf(as.Pos(),
						"append to %s inside range over map %s without sorting afterwards: element order follows randomized map order",
						target, types.ExprString(rs.X))
				}
				continue
			}
			// x = x + e on floats.
			if bin, ok := as.Rhs[i].(*ast.BinaryExpr); ok && isFloat(pass.TypeOf(lhs)) &&
				(bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) &&
				(types.ExprString(bin.X) == target || types.ExprString(bin.Y) == target) {
				pass.Reportf(as.Pos(),
					"float accumulation into %s inside range over map %s: FP combine order follows randomized map order; sum over sorted keys",
					target, types.ExprString(rs.X))
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isFloat(pass.TypeOf(lhs)) {
				pass.Reportf(as.Pos(),
					"float accumulation into %s inside range over map %s: FP combine order follows randomized map order; sum over sorted keys",
					target, types.ExprString(rs.X))
			}
		}
	}
}

// isAppendOf reports whether call is append(target, ...).
func isAppendOf(info *types.Info, call *ast.CallExpr, target string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return len(call.Args) > 0 && types.ExprString(call.Args[0]) == target
}

// sortedAfter reports whether a statement after rs in its enclosing
// block sorts (or canonicalizes) target: a call into the sort or slices
// package, or a method named Sort or Canonicalize, mentioning the exact
// target expression. This recognizes the collect-then-sort idiom.
func sortedAfter(pass *Pass, rs *ast.RangeStmt, stack []ast.Node, target string) bool {
	info := pass.Pkg.Info
	// Locate the innermost enclosing block and the statement within it
	// that contains rs.
	for si := len(stack) - 1; si >= 0; si-- {
		block, ok := stack[si].(*ast.BlockStmt)
		if !ok {
			continue
		}
		after := false
		for _, stmt := range block.List {
			if stmt.Pos() <= rs.Pos() && rs.End() <= stmt.End() {
				after = true
				continue
			}
			if !after {
				continue
			}
			if stmtSorts(info, stmt, target) {
				return true
			}
		}
		return false
	}
	return false
}

func stmtSorts(info *types.Info, stmt ast.Stmt, target string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sortingCall := false
		if name, ok := pkgFunc(info, call, "sort"); ok && name != "Search" {
			sortingCall = true
		} else if _, ok := pkgFunc(info, call, "slices"); ok {
			sortingCall = true
		} else if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Sort" || sel.Sel.Name == "Canonicalize") {
			sortingCall = true
			if types.ExprString(sel.X) == target {
				found = true
				return false
			}
		}
		if sortingCall {
			for _, arg := range call.Args {
				if types.ExprString(arg) == target {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
