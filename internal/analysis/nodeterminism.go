package analysis

import (
	"go/ast"
)

// forbiddenTimeFuncs are the wall-clock reads banned from protocol
// packages. time.Until and time.Since read the clock exactly like
// time.Now; the sanctioned replacements live in internal/clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// draws that consume the process-global generator. Constructors
// (New, NewSource, NewZipf, NewPCG, NewChaCha8) are fine: they build
// the private, seeded streams the protocol requires.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

// newNodeterminism forbids nondeterminism sources in the protocol
// packages (core, lb, amt, comm, termination): wall-clock reads
// (time.Now / time.Since / time.Until — route them through
// internal/clock, which documents the two sanctioned purposes) and
// global math/rand draws (use a per-rank seeded *rand.Rand, e.g.
// core.SeededRNG). The protocol's bit-determinism under faults —
// proved by the chaos suite — survives only while no decision reads
// ambient entropy.
func newNodeterminism() *Analyzer {
	a := &Analyzer{
		Name: "nodeterminism",
		Doc:  "forbid wall-clock reads and global math/rand draws in protocol packages",
	}
	a.Run = func(pass *Pass) {
		if !protocolPackage(pass.Pkg.Path) {
			return
		}
		walkStack(pass.Pkg.Files, func(n ast.Node, _ []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if name, ok := pkgFunc(pass.Pkg.Info, call, "time"); ok && forbiddenTimeFuncs[name] {
				pass.Reportf(call.Pos(),
					"wall-clock read time.%s in protocol package: use internal/clock (observability stamps and retry pacing only)", name)
				return
			}
			for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := pkgFunc(pass.Pkg.Info, call, randPkg); ok && globalRandFuncs[name] {
					pass.Reportf(call.Pos(),
						"global %s.%s in protocol package: draw from a per-rank seeded *rand.Rand (core.SeededRNG) instead", randPkg, name)
					return
				}
			}
		})
	}
	return a
}
