package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// forbiddenTimeFuncs are the wall-clock reads banned from protocol
// packages. time.Until and time.Since read the clock exactly like
// time.Now; the sanctioned replacements live in internal/clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// draws that consume the process-global generator. Constructors
// (New, NewSource, NewZipf, NewPCG, NewChaCha8) are fine: they build
// the private, seeded streams the protocol requires.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

// newNodeterminism forbids nondeterminism sources in the protocol
// packages: wall-clock reads (time.Now / time.Since / time.Until —
// route them through internal/clock, which documents the two sanctioned
// purposes) and global math/rand draws (use a per-rank seeded
// *rand.Rand, e.g. core.SeededRNG). The protocol's bit-determinism
// under faults — proved by the chaos suite — survives only while no
// decision reads ambient entropy.
//
// Scope: the protocol packages (internal/core, internal/lb,
// internal/amt, internal/comm, internal/termination, internal/serve)
// plus examples/* — the examples are executable protocol documentation
// and must replay exactly like the protocol itself. Carve-outs:
// internal/comm/wire (dial backoff, RTT measurement and write deadlines
// legitimately read the wall clock below the protocol; see
// protocolPackage) and cmd/* (lbnode's startup timeouts and lbtop's
// dashboard refresh are operator I/O, not protocol decisions — the
// protocol work those commands trigger lives in internal/ and is
// covered there).
//
// When the offending file already imports internal/clock, the finding
// carries a suggested fix rewriting time.X to the clock funnel's
// equivalent (applied by `lbvet -fix`).
func newNodeterminism() *Analyzer {
	a := &Analyzer{
		Name: "nodeterminism",
		Doc:  "forbid wall-clock reads and global math/rand draws in protocol packages and examples",
	}
	a.Run = func(pass *Pass) {
		if !protocolPackage(pass.Pkg.Path) && !matchesSegmentPath(pass.Pkg.Path, "examples") {
			return
		}
		for _, f := range pass.Pkg.Files {
			clockName := clockImportName(f)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := pkgFunc(pass.Pkg.Info, call, "time"); ok && forbiddenTimeFuncs[name] {
					msg := "wall-clock read time.%s in protocol package: use internal/clock (observability stamps and retry pacing only)"
					if clockName == "" {
						pass.Reportf(call.Pos(), msg, name)
						return true
					}
					funPos := pass.Pkg.Fset.Position(call.Fun.Pos())
					funEnd := pass.Pkg.Fset.Position(call.Fun.End())
					pass.ReportWithFix(call.Pos(), SuggestedFix{
						Message: "route through internal/clock",
						Edits: []TextEdit{{
							Filename: funPos.Filename,
							Start:    funPos.Offset,
							End:      funEnd.Offset,
							New:      clockName + "." + name,
						}},
					}, msg, name)
					return true
				}
				for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
					if name, ok := pkgFunc(pass.Pkg.Info, call, randPkg); ok && globalRandFuncs[name] {
						pass.Reportf(call.Pos(),
							"global %s.%s in protocol package: draw from a per-rank seeded *rand.Rand (core.SeededRNG) instead", randPkg, name)
						return true
					}
				}
				return true
			})
		}
	}
	return a
}

// clockImportName returns the local name under which f imports
// internal/clock, or "" when it does not. The suggested fix only
// rewrites time.X calls in files where the funnel is already in scope —
// adding imports is beyond a blindly-applicable edit.
func clockImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !strings.HasSuffix(path, "internal/clock") {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "clock"
	}
	return ""
}
