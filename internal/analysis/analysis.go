// Package analysis is a self-contained static-analysis framework for
// this module: a loader that parses and typechecks every package with
// nothing but the standard library (go/parser, go/ast, go/types — no
// golang.org/x/tools), a driver that runs project-specific analyzers
// over the loaded packages, and the analyzers themselves, which turn
// the repo's determinism and concurrency contracts (DESIGN.md §9) into
// machine-checked gates.
//
// The cmd/lbvet binary is the front end; `make lint` runs it over ./...
//
// Findings can be suppressed with a directive comment on the offending
// line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression is a documented exception to a
// contract, not an off switch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position. Fixes, when
// non-empty, are machine-applicable repairs applied by `lbvet -fix`.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// String renders the finding in the canonical `file:line: message
// [analyzer]` form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
}

// Analyzer is one project-specific check. Run is invoked once per
// loaded package; Finish, when non-nil, is invoked once after every
// package has been visited, for checks that need module-wide
// aggregation (atomicfields). Analyzers may carry state between Run
// calls, so a fresh set must be created per driver run (see Analyzers).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// Finish reports module-level findings after all packages ran.
	Finish func(report func(pos token.Pos, format string, args ...any))
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportWithFix records a finding at pos carrying a machine-applicable
// suggested fix.
func (p *Pass) ReportWithFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Runner drives a set of analyzers over loaded packages and applies
// suppression directives.
type Runner struct {
	Analyzers []*Analyzer
	// fset is taken from the first package; all packages of one Loader
	// share it.
	fset *token.FileSet
}

// typecheckAnalyzer is the pseudo-analyzer name under which load and
// typecheck failures are reported. A package that does not typecheck is
// itself a finding — the driver must never panic on one.
const typecheckAnalyzer = "typecheck"

// Run executes every analyzer over every package, collects the
// diagnostics, filters suppressed ones, and returns the remainder
// sorted by position. Packages that failed to typecheck contribute
// their type errors as `typecheck` diagnostics and are excluded from
// analysis (their type information is incomplete).
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	for _, pkg := range pkgs {
		if r.fset == nil {
			r.fset = pkg.Fset
		}
		if len(pkg.TypeErrors) > 0 {
			for _, err := range pkg.TypeErrors {
				diags = append(diags, typeErrorDiagnostic(pkg, err))
			}
			continue
		}
		for _, a := range r.Analyzers {
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, report: report})
		}
	}
	if r.fset == nil {
		r.fset = token.NewFileSet()
	}
	for _, a := range r.Analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		a.Finish(func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:      r.fset.Position(pos),
				Analyzer: name,
				Message:  fmt.Sprintf(format, args...),
			})
		})
	}

	directives, malformed := r.collectDirectives(pkgs)
	r.filterSuppressed(&diags, directives)
	if r.selectedByName(unusedSuppressionName) != nil {
		diags = append(diags, r.unusedDirectiveDiags(directives)...)
	}
	diags = append(diags, malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

func typeErrorDiagnostic(pkg *Package, err error) Diagnostic {
	d := Diagnostic{Analyzer: typecheckAnalyzer, Message: err.Error()}
	if te, ok := err.(types.Error); ok {
		d.Pos = te.Fset.Position(te.Pos)
		d.Message = te.Msg
	} else if d.Pos.Filename == "" {
		d.Pos = token.Position{Filename: pkg.Dir}
	}
	return d
}

// ignoreDirective is one parsed //lint:ignore comment, with enough
// position detail to judge whether it suppressed anything and to delete
// it mechanically when it did not.
type ignoreDirective struct {
	analyzer string
	file     string
	line     int
	pos      token.Position // of the comment's start
	end      token.Position // of the comment's end
	// used is set when the directive suppressed at least one diagnostic
	// of this run.
	used bool
	// broken marks directives in packages with type errors: no analyzer
	// ran there, so unusedness cannot be judged.
	broken bool
}

// collectDirectives parses every //lint:ignore comment of pkgs,
// returning the directives plus diagnostics for malformed ones (a
// directive without both analyzer and reason suppresses nothing and is
// itself a finding).
func (r *Runner) collectDirectives(pkgs []*Package) ([]*ignoreDirective, []Diagnostic) {
	var directives []*ignoreDirective
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, "lint:ignore") {
						continue
					}
					fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
					pos := pkg.Fset.Position(c.Pos())
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
						})
						continue
					}
					directives = append(directives, &ignoreDirective{
						analyzer: fields[0],
						file:     pos.Filename,
						line:     pos.Line,
						pos:      pos,
						end:      pkg.Fset.Position(c.End()),
						broken:   len(pkg.TypeErrors) > 0,
					})
				}
			}
		}
	}
	return directives, malformed
}

// filterSuppressed drops diagnostics covered by a directive on the same
// line or the line directly above, marking the covering directives
// used. It mutates diags in place.
func (r *Runner) filterSuppressed(diags *[]Diagnostic, directives []*ignoreDirective) {
	byLine := make(map[string]map[int][]*ignoreDirective)
	for _, d := range directives {
		if byLine[d.file] == nil {
			byLine[d.file] = make(map[int][]*ignoreDirective)
		}
		byLine[d.file][d.line] = append(byLine[d.file][d.line], d)
	}
	covering := func(d Diagnostic) *ignoreDirective {
		lines := byLine[d.Pos.Filename]
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range lines[line] {
				if dir.analyzer == d.Analyzer {
					return dir
				}
			}
		}
		return nil
	}
	kept := (*diags)[:0]
	for _, d := range *diags {
		if dir := covering(d); dir != nil {
			dir.used = true
			continue
		}
		kept = append(kept, d)
	}
	*diags = kept
}

// selectedByName returns the analyzer with the given name from this
// run's selection, or nil.
func (r *Runner) selectedByName(name string) *Analyzer {
	for _, a := range r.Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// unusedDirectiveDiags reports, under the unusedsuppression analyzer,
// every directive that suppressed nothing in this run. Only directives
// naming an analyzer in the current selection are judged (a `-only`
// run cannot know what the others would have found), and directives in
// packages with type errors are exempt. Each finding carries a
// suggested fix deleting the directive — the whole line when the
// comment stands alone, just the comment when it trails code. The
// unused findings are themselves suppressible by a directive naming
// unusedsuppression; such a meta-directive counts as used when it
// covers one.
func (r *Runner) unusedDirectiveDiags(directives []*ignoreDirective) []Diagnostic {
	var out []Diagnostic
	for _, dir := range directives {
		if dir.used || dir.broken || dir.analyzer == unusedSuppressionName {
			continue
		}
		if r.selectedByName(dir.analyzer) == nil {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: unusedSuppressionName,
			Message: fmt.Sprintf(
				"lint:ignore %s directive suppresses no finding: delete it (the allowlist only shrinks)", dir.analyzer),
			Fixes: []SuggestedFix{deleteDirectiveFix(dir)},
		})
	}
	// Meta-suppression pass: a //lint:ignore unusedsuppression <reason>
	// covering an unused finding keeps it out of the report.
	r.filterSuppressed(&out, directives)
	return out
}

// deleteDirectiveFix builds the edit removing dir from its file: the
// entire line when the comment is alone on it (including the trailing
// newline), otherwise the comment and the whitespace run before it.
func deleteDirectiveFix(dir *ignoreDirective) SuggestedFix {
	start, end := dir.pos.Offset, dir.end.Offset
	if src, err := os.ReadFile(dir.file); err == nil && end <= len(src) {
		lineStart := start
		for lineStart > 0 && src[lineStart-1] != '\n' {
			lineStart--
		}
		alone := strings.TrimSpace(string(src[lineStart:start])) == ""
		if alone {
			start = lineStart
			if end < len(src) && src[end] == '\n' {
				end++
			}
		} else {
			for start > lineStart && (src[start-1] == ' ' || src[start-1] == '\t') {
				start--
			}
		}
	}
	return SuggestedFix{
		Message: "delete the unused directive",
		Edits:   []TextEdit{{Filename: dir.file, Start: start, End: end}},
	}
}

// Select resolves a comma-separated -only list against the given
// analyzers, preserving registration order. An empty spec selects all;
// an unknown name is an error naming the valid set.
func Select(all []*Analyzer, only string) ([]*Analyzer, error) {
	if strings.TrimSpace(only) == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	names := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	var sel []*Analyzer
	for _, a := range all {
		if want[a.Name] {
			sel = append(sel, a)
		}
	}
	return sel, nil
}
