package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package of the module.
type Package struct {
	Path  string // import path, e.g. temperedlb/internal/core
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds every parse and typecheck error of the package.
	// Analyzers are not run over packages with errors: their type
	// information is incomplete, and the errors themselves are the
	// findings.
	TypeErrors []error

	// funcSummaries caches the intra-package call-graph summaries
	// (callgraph.go), computed lazily on first use.
	funcSummaries map[*types.Func]*funcSummary
}

// Loader parses and typechecks packages of one module with a single
// shared FileSet, resolving module-internal imports from source and
// standard-library imports through go/importer's source importer (the
// module has no external dependencies, so nothing else can appear).
//
// Test files (_test.go) are not loaded: the analyzers guard production
// protocol code, and tests legitimately use wall clocks, global
// randomness and unordered iteration.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	pkgs    map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package
	loading bool
}

// NewLoader locates the enclosing module of dir (via go.mod) and
// returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modPath: modPath,
		modRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*loadEntry),
	}, nil
}

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleRoot returns the module's root directory.
func (l *Loader) ModuleRoot() string { return l.modRoot }

func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			if name != "" {
				return strings.Trim(name, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// LoadAll discovers and loads every package under the module root,
// skipping testdata, hidden and underscore-prefixed directories.
// Packages are returned in import-path order. Load failures of a
// package are recorded on it, never returned as an error: a package
// that does not typecheck is a diagnostic, not a crash.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoSource(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs = append(pkgs, l.Load(path))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func hasGoSource(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load returns the package with the given module-internal import path,
// loading and typechecking it (and, recursively, its module-internal
// imports) on first use. Errors are recorded in the package's
// TypeErrors.
func (l *Loader) Load(path string) *Package {
	if e, ok := l.pkgs[path]; ok {
		return e.pkg
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return l.loadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)), path)
}

// LoadDir loads the single package in dir under the given import path,
// without requiring dir to live inside the module tree. The golden-file
// tests use it to typecheck testdata packages under synthetic protocol
// paths.
func (l *Loader) LoadDir(dir, asPath string) *Package {
	if e, ok := l.pkgs[asPath]; ok {
		return e.pkg
	}
	return l.loadDir(dir, asPath)
}

func (l *Loader) loadDir(dir, path string) *Package {
	entry := &loadEntry{loading: true}
	l.pkgs[path] = entry
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	entry.pkg = pkg
	defer func() { entry.loading = false }()

	entries, err := os.ReadDir(dir)
	if err != nil {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
		return pkg
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, fmt.Errorf("no Go source files in %s", dir))
		return pkg
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return pkg
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) { return l.importPkg(ipath) }),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	return pkg
}

// importPkg resolves one import during typechecking: module-internal
// paths recurse into the loader, everything else (the standard library)
// goes to the source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if e, ok := l.pkgs[path]; ok {
			if e.loading {
				return nil, fmt.Errorf("import cycle through %s", path)
			}
			return l.importedTypes(e.pkg)
		}
		return l.importedTypes(l.Load(path))
	}
	return l.std.Import(path)
}

func (l *Loader) importedTypes(pkg *Package) (*types.Package, error) {
	if pkg.Types == nil {
		return nil, fmt.Errorf("package %s failed to load", pkg.Path)
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("package %s has type errors", pkg.Path)
	}
	return pkg.Types, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
