package analysis

import (
	"go/ast"
	"go/types"
)

// newCollectivesym flags collective calls (Barrier, AllReduce,
// AllReduceVec, AllReduceSummary, AllGather, Broadcast, treeCollective
// — the synchronization points of amt.Context) that are reachable only
// under a branch conditioned on rank-local state: the rank identity
// (rc.Rank()) or the per-process observability attachments (rc.Stream(),
// rc.Tracer(), rc.Metrics()), which may be nil on some ranks and not on
// others. In the SPMD model every rank must execute the identical
// collective sequence; a rank that skips one leaves the others blocked
// in the tree forever. PR 7 shipped exactly this bug — the frame-stream
// AllGather ran only on ranks with a stream attached — and the fix is
// the sanctioned laundering idiom this analyzer recognizes: agree on
// the rank-local bit first,
//
//	streaming := stream != nil
//	streaming = rc.AllReduce(b2f(streaming), amt.ReduceMax) > 0
//	if streaming { loads := rc.AllGather(...) }   // now symmetric
//
// An assignment whose right-hand side contains a collective call
// launders its targets: the assigned value is, by construction, agreed
// across ranks. The check is intra-procedural with one level of
// call-graph depth: calling a same-package function that performs a
// collective, from under a tainted branch, is flagged too (the
// summaries come from callgraph.go). Taint tracking is source-order,
// last-write-wins.
//
// Scope: the whole module, cmd/* and examples/* included — any code
// driving the runtime can deadlock it. Function literals are analyzed
// with the taint state at their definition point (they typically run in
// place: rc.Epoch bodies, rt.Run bodies).
func newCollectivesym() *Analyzer {
	a := &Analyzer{
		Name: "collectivesym",
		Doc:  "flag collective calls guarded by rank-local state (rank identity, stream/tracer attachment)",
	}
	a.Run = func(pass *Pass) {
		sums := summaries(pass.Pkg)
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				s := &symScan{pass: pass, sums: sums, tainted: map[types.Object]bool{}}
				s.stmts(fd.Body.List)
			}
		}
	}
	return a
}

// symScan walks one function in source order, tracking which local
// variables carry rank-local taint and which enclosing branch
// conditions are tainted.
type symScan struct {
	pass *Pass
	sums map[*types.Func]*funcSummary
	// tainted marks variables whose current value derives from a
	// rank-local source. Assignment is last-write-wins; an assignment
	// whose RHS contains a collective call launders its targets.
	tainted map[types.Object]bool
	// conds is the stack of enclosing control conditions; reason is the
	// rendering of the tainted condition for the message.
	conds []condFrame
}

type condFrame struct {
	tainted bool
	reason  string
}

func (s *symScan) pushCond(tainted bool, reason string) {
	s.conds = append(s.conds, condFrame{tainted, reason})
}

func (s *symScan) popCond() { s.conds = s.conds[:len(s.conds)-1] }

// taintedCond returns the innermost tainted enclosing condition, if
// any.
func (s *symScan) taintedCond() (string, bool) {
	for i := len(s.conds) - 1; i >= 0; i-- {
		if s.conds[i].tainted {
			return s.conds[i].reason, true
		}
	}
	return "", false
}

// taintedExpr reports whether e reads rank-local state: a direct
// source call (rc.Rank()), a tainted variable, or a same-package call
// whose summary says its result derives from a rank-local source.
func (s *symScan) taintedExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	info := s.pass.Pkg.Info
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := info.ObjectOf(v); obj != nil && s.tainted[obj] {
				found = true
			}
		case *ast.CallExpr:
			if isRankLocalSource(info, v) {
				found = true
				return false
			}
			if callee := calleeFunc(info, v); callee != nil {
				if sum := s.sums[callee]; sum != nil && sum.rankReturn {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// containsCollective reports whether e contains a collective call or a
// same-package call to a function that performs one, returning the
// offending call and a description.
func (s *symScan) containsCollective(e ast.Expr) (*ast.CallExpr, string) {
	info := s.pass.Pkg.Info
	var hit *ast.CallExpr
	var desc string
	ast.Inspect(e, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCollectiveCall(info, call) {
			hit = call
			desc = "collective " + call.Fun.(*ast.SelectorExpr).Sel.Name
			return false
		}
		if callee := calleeFunc(info, call); callee != nil {
			if sum := s.sums[callee]; sum != nil && sum.collective != nil {
				hit = call
				inner := "a collective"
				if sel, ok := sum.collective.Fun.(*ast.SelectorExpr); ok {
					inner = "collective " + sel.Sel.Name
				}
				desc = "call to " + callee.Name() + ", which performs " + inner
				return false
			}
		}
		return true
	})
	return hit, desc
}

// checkExpr reports collective calls in e when an enclosing branch
// condition is tainted, then walks nested function literals (which
// inherit the current taint state — Epoch bodies and rt.Run closures
// execute in place).
func (s *symScan) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	if reason, ok := s.taintedCond(); ok {
		if call, desc := s.containsCollective(e); call != nil {
			s.pass.Reportf(call.Pos(),
				"%s is guarded by rank-local condition %s: every rank must reach every collective (agree first via AllReduce, then branch)",
				desc, reason)
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			s.stmts(lit.Body.List)
			return false
		}
		return true
	})
}

func (s *symScan) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *symScan) stmt(st ast.Stmt) {
	switch v := st.(type) {
	case *ast.ExprStmt:
		s.checkExpr(v.X)
	case *ast.AssignStmt:
		s.assign(v)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				taint := false
				for _, val := range vs.Values {
					s.checkExpr(val)
					if s.taintedExpr(val) {
						taint = true
					}
				}
				for _, name := range vs.Names {
					if obj := s.pass.Pkg.Info.Defs[name]; obj != nil {
						s.tainted[obj] = taint
					}
				}
			}
		}
	case *ast.IfStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.checkExpr(v.Cond)
		t := s.taintedExpr(v.Cond)
		s.pushCond(t, types.ExprString(v.Cond))
		s.stmts(v.Body.List)
		if v.Else != nil {
			s.stmt(v.Else)
		}
		s.popCond()
	case *ast.BlockStmt:
		s.stmts(v.List)
	case *ast.ForStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.checkExpr(v.Cond)
		t := s.taintedExpr(v.Cond)
		s.pushCond(t, types.ExprString(v.Cond))
		s.stmts(v.Body.List)
		if v.Post != nil {
			s.stmt(v.Post)
		}
		s.popCond()
	case *ast.RangeStmt:
		s.checkExpr(v.X)
		t := s.taintedExpr(v.X)
		s.pushCond(t, types.ExprString(v.X))
		s.stmts(v.Body.List)
		s.popCond()
	case *ast.SwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.checkExpr(v.Tag)
		t := s.taintedExpr(v.Tag)
		reason := ""
		if v.Tag != nil {
			reason = types.ExprString(v.Tag)
		}
		for _, c := range v.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			ct := t
			for _, ce := range cc.List {
				s.checkExpr(ce)
				if s.taintedExpr(ce) {
					ct = true
					reason = types.ExprString(ce)
				}
			}
			s.pushCond(ct, reason)
			s.stmts(cc.Body)
			s.popCond()
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.stmt(v.Assign)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					s.stmt(cc.Comm)
				}
				s.stmts(cc.Body)
			}
		}
	case *ast.GoStmt:
		s.checkExpr(v.Call)
	case *ast.DeferStmt:
		s.checkExpr(v.Call)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			s.checkExpr(e)
		}
	case *ast.SendStmt:
		s.checkExpr(v.Chan)
		s.checkExpr(v.Value)
	case *ast.IncDecStmt:
		s.checkExpr(v.X)
	case *ast.LabeledStmt:
		s.stmt(v.Stmt)
	}
}

// assign updates taint for an assignment: a RHS containing a collective
// call launders every target (the value is agreed by construction), a
// rank-local RHS taints them, anything else clears them.
func (s *symScan) assign(as *ast.AssignStmt) {
	info := s.pass.Pkg.Info
	laundered := false
	tainted := false
	for _, rhs := range as.Rhs {
		s.checkExpr(rhs)
		if call, _ := s.containsCollective(rhs); call != nil {
			laundered = true
		}
		if s.taintedExpr(rhs) {
			tainted = true
		}
	}
	for _, lhs := range as.Lhs {
		s.checkExpr(lhs)
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			continue
		}
		switch {
		case laundered:
			delete(s.tainted, obj)
		case tainted:
			s.tainted[obj] = true
		default:
			delete(s.tainted, obj)
		}
	}
}
