package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// walkStack traverses every file of the pass, invoking fn with each
// node and the stack of its ancestors (outermost first, not including
// the node itself).
func walkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// pkgFunc reports whether call invokes a package-level function of the
// package with import path pkgPath, returning its name. It resolves the
// qualifier through the type info, so aliased imports are handled.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// methodOf returns the called method's *types.Func when call is a
// method call, nil otherwise.
func methodOf(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	fn, _ := s.Obj().(*types.Func)
	return fn
}

// fieldOf resolves a selector expression to the struct field it
// selects, or nil when it selects something else (method, package
// member, …).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// rootIdent returns the leftmost identifier of a selector/index/slice
// chain (x in x.f.g[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object behind id was declared
// inside the node span [from.Pos(), from.End()).
func declaredWithin(info *types.Info, id *ast.Ident, from ast.Node) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= from.Pos() && obj.Pos() < from.End()
}

// namedTypeName returns the name of t's core named type after stripping
// pointers, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// protocolPackage reports whether path is one of the protocol packages
// whose determinism the nodeterminism analyzer guards. Matching is on
// path segments relative to any module prefix, so synthetic testdata
// paths like td/internal/core/x qualify too.
func protocolPackage(path string) bool {
	for _, p := range []string{
		"internal/core",
		"internal/lb",
		"internal/amt",
		"internal/comm",
		"internal/termination",
	} {
		i := strings.Index(path, p)
		if i < 0 {
			continue
		}
		if i > 0 && path[i-1] != '/' {
			continue
		}
		rest := path[i+len(p):]
		if rest == "" || rest[0] == '/' {
			return true
		}
	}
	return false
}

// sendMethodNames are the method names the maporder and lockdiscipline
// analyzers treat as message sends: the transport's and the runtime's
// outbound calls.
var sendMethodNames = map[string]bool{
	"Send":       true,
	"SendObject": true,
	"Broadcast":  true,
}

// isSendCall reports whether n is a message send: a channel send
// statement or a call to a send-named method.
func isSendCall(info *types.Info, n ast.Node) bool {
	switch v := n.(type) {
	case *ast.SendStmt:
		return true
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sendMethodNames[sel.Sel.Name] {
			// Method call (not a package-qualified function).
			if id, ok := sel.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return false
				}
			}
			return true
		}
	}
	return false
}
