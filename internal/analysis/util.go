package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// walkStack traverses every file of the pass, invoking fn with each
// node and the stack of its ancestors (outermost first, not including
// the node itself).
func walkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// pkgFunc reports whether call invokes a package-level function of the
// package with import path pkgPath, returning its name. It resolves the
// qualifier through the type info, so aliased imports are handled.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// methodOf returns the called method's *types.Func when call is a
// method call, nil otherwise.
func methodOf(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	fn, _ := s.Obj().(*types.Func)
	return fn
}

// fieldOf resolves a selector expression to the struct field it
// selects, or nil when it selects something else (method, package
// member, …).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// rootIdent returns the leftmost identifier of a selector/index/slice
// chain (x in x.f.g[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object behind id was declared
// inside the node span [from.Pos(), from.End()).
func declaredWithin(info *types.Info, id *ast.Ident, from ast.Node) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= from.Pos() && obj.Pos() < from.End()
}

// namedTypeName returns the name of t's core named type after stripping
// pointers, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// protocolPackage reports whether path is one of the protocol packages
// whose determinism the nodeterminism analyzer guards. Matching is on
// path segments relative to any module prefix, so synthetic testdata
// paths like td/internal/core/x qualify too.
//
// internal/serve is protocol: its per-phase trigger decisions must be
// rank-identical, exactly like the balancer underneath.
//
// internal/comm/wire is carved out: it sits below the protocol — dial
// backoff, RTT measurement and write deadlines legitimately read the
// wall clock, and none of that state feeds a protocol decision (the
// cross-transport identity test is the enforcement: results must be
// bit-identical to the clock-free in-memory transport).
func protocolPackage(path string) bool {
	if matchesSegmentPath(path, "internal/comm/wire") {
		return false
	}
	for _, p := range []string{
		"internal/core",
		"internal/lb",
		"internal/amt",
		"internal/comm",
		"internal/termination",
		"internal/serve",
	} {
		if matchesSegmentPath(path, p) {
			return true
		}
	}
	return false
}

// matchesSegmentPath reports whether p occurs in path on segment
// boundaries: preceded by start-of-string or '/', followed by
// end-of-string or '/'.
func matchesSegmentPath(path, p string) bool {
	for i := 0; ; i++ {
		j := strings.Index(path[i:], p)
		if j < 0 {
			return false
		}
		i += j
		if (i == 0 || path[i-1] == '/') &&
			(i+len(p) == len(path) || path[i+len(p)] == '/') {
			return true
		}
	}
}

// sendMethodNames are the method names the maporder and lockdiscipline
// analyzers treat as message sends: the transport's and the runtime's
// outbound calls.
var sendMethodNames = map[string]bool{
	"Send":       true,
	"SendObject": true,
	"Broadcast":  true,
}

// isSendCall reports whether n is a message send: a channel send
// statement or a call to a send-named method.
func isSendCall(info *types.Info, n ast.Node) bool {
	switch v := n.(type) {
	case *ast.SendStmt:
		return true
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sendMethodNames[sel.Sel.Name] {
			// Method call (not a package-qualified function).
			if id, ok := sel.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return false
				}
			}
			return true
		}
	}
	return false
}
