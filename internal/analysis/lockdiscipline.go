package analysis

import (
	"go/ast"
	"go/types"
)

// newLockdiscipline flags message sends made while a sync.Mutex or
// sync.RWMutex acquired in the same function is still held. A send can
// block arbitrarily (or re-enter code that wants the same lock), so the
// repo's transport layers release every lock before handing a message
// on — the PR 3 shutdown race (comm.Close racing delayed deliveries)
// was exactly a lock-ordering bug of this shape. The analysis is
// intra-procedural and path-insensitive: statements are scanned in
// source order with a held-lock set; branches that terminate (return,
// panic) do not leak their lock state past the branch.
//
// Scope: the whole module, cmd/* and examples/* included — any caller
// holding a lock across a send can wedge the transport, wherever it
// lives.
func newLockdiscipline() *Analyzer {
	a := &Analyzer{
		Name: "lockdiscipline",
		Doc:  "flag sends made while a mutex acquired in the same function is held",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				s := &lockScan{pass: pass, held: map[string]bool{}}
				s.stmts(fd.Body.List)
			}
		}
	}
	return a
}

type lockScan struct {
	pass *Pass
	// held maps the lock expression (e.g. "nw.delayMu") to true while
	// acquired; deferred unlocks do not release — the lock is held for
	// the rest of the function.
	held     map[string]bool
	deferred map[string]bool
}

func (s *lockScan) snapshot() map[string]bool {
	c := make(map[string]bool, len(s.held))
	for k, v := range s.held {
		c[k] = v
	}
	return c
}

func (s *lockScan) restore(m map[string]bool) { s.held = m }

// merge unions other into the current held set (conservative: held on
// any surviving path counts as held).
func (s *lockScan) merge(other map[string]bool) {
	for k, v := range other {
		if v {
			s.held[k] = true
		}
	}
}

func (s *lockScan) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *lockScan) stmt(st ast.Stmt) {
	switch v := st.(type) {
	case *ast.ExprStmt:
		s.expr(v.X)
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			s.expr(e)
		}
		for _, e := range v.Lhs {
			s.expr(e)
		}
	case *ast.SendStmt:
		s.checkSend(v)
		s.expr(v.Chan)
		s.expr(v.Value)
	case *ast.DeferStmt:
		if key, op, ok := s.lockOp(v.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// The lock stays held until function exit; remember it so an
			// explicit Unlock statement is not needed to balance it.
			if s.deferred == nil {
				s.deferred = map[string]bool{}
			}
			s.deferred[key] = true
			return
		}
		s.expr(v.Call)
	case *ast.GoStmt:
		// The goroutine body runs later, without this function's locks.
		save := s.snapshot()
		s.restore(map[string]bool{})
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			s.stmts(lit.Body.List)
		}
		s.restore(save)
	case *ast.BlockStmt:
		s.stmts(v.List)
	case *ast.IfStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.expr(v.Cond)
		before := s.snapshot()
		s.stmt(v.Body)
		afterThen := s.snapshot()
		thenTerm := terminates(v.Body)
		s.restore(before)
		elseTerm := false
		if v.Else != nil {
			s.stmt(v.Else)
			elseTerm = terminates(v.Else)
		}
		if elseTerm {
			s.restore(before)
		}
		if !thenTerm {
			s.merge(afterThen)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		if v.Cond != nil {
			s.expr(v.Cond)
		}
		s.stmt(v.Body)
		if v.Post != nil {
			s.stmt(v.Post)
		}
	case *ast.RangeStmt:
		s.expr(v.X)
		s.stmt(v.Body)
	case *ast.SwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		if v.Tag != nil {
			s.expr(v.Tag)
		}
		s.caseBodies(v.Body)
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			s.stmt(v.Init)
		}
		s.caseBodies(v.Body)
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				before := s.snapshot()
				if cc.Comm != nil {
					s.stmt(cc.Comm)
				}
				s.stmts(cc.Body)
				if terminatesStmts(cc.Body) {
					s.restore(before)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			s.expr(e)
		}
	case *ast.LabeledStmt:
		s.stmt(v.Stmt)
	case *ast.DeclStmt:
		ast.Inspect(v, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.exprShallow(e)
				return false
			}
			return true
		})
	}
}

func (s *lockScan) caseBodies(body *ast.BlockStmt) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			before := s.snapshot()
			s.stmts(cc.Body)
			if terminatesStmts(cc.Body) {
				s.restore(before)
			}
		}
	}
}

// expr walks an expression, updating lock state for Lock/Unlock calls
// and flagging sends while locks are held. Function literals are not
// descended into (they run elsewhere).
func (s *lockScan) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if key, op, ok := s.lockOp(v); ok {
				switch op {
				case "Lock", "RLock":
					s.held[key] = true
				case "Unlock", "RUnlock":
					delete(s.held, key)
				case "TryLock", "TryRLock":
					// Result-dependent; treat as acquired (conservative).
					s.held[key] = true
				}
				return true
			}
			s.checkSend(v)
		}
		return true
	})
}

// exprShallow records only lock operations (used for decl initializers).
func (s *lockScan) exprShallow(e ast.Expr) { s.expr(e) }

// checkSend reports n when it is a send and any lock is held.
func (s *lockScan) checkSend(n ast.Node) {
	if len(s.held) == 0 || !isSendCall(s.pass.Pkg.Info, n) {
		return
	}
	for key := range s.held {
		s.pass.Reportf(n.Pos(),
			"message send while %s is held: release the lock before handing the message to the transport", key)
		return
	}
}

// lockOp classifies call as a sync.Mutex/RWMutex method call, returning
// the receiver expression string and the method name.
func (s *lockScan) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	fn := methodOf(s.pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	if name := namedTypeName(recv.Type()); name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// terminates reports whether the statement always transfers control out
// (return, panic, continue/break/goto) on its final path.
func terminates(st ast.Stmt) bool {
	switch v := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminatesStmts(v.List)
	}
	return false
}

func terminatesStmts(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return terminates(list[len(list)-1])
}
