// Package fixable exercises every suggested-fix producer: a wall-clock
// read in a file that already imports internal/clock (nodeterminism
// rewrites it to the funnel) and two stale lint:ignore directives, one
// alone on its line, one trailing code (unusedsuppression deletes
// them). The driver test copies this package aside, applies the fixes,
// and requires the second run to be clean — -fix must be idempotent.
package fixable

import (
	"time"

	"temperedlb/internal/clock"
)

// epoch keeps the time import alive after -fix rewrites the calls.
var epoch = time.Unix(0, 0)

var _ = clock.Now

//lint:ignore maporder stale directive alone on its line
var counter int

func stale() bool {
	return time.Now().After(epoch) //lint:ignore atomicfields stale trailing directive
}
