// Fixture for the typecheck-failure test: this package must not
// typecheck, and the driver must turn that into a diagnostic, not a
// panic.
package broken

func f() int {
	return undefinedName
}
