// Negative cases: copying out of a scratch buffer, purely local use,
// and returning a non-scratch field.
package neg

type state struct {
	sendBuf []int
	results []int
}

func (s *state) copyOut() []int {
	out := make([]int, len(s.sendBuf))
	copy(out, s.sendBuf)
	return out
}

func (s *state) useLocally() int {
	s.sendBuf = append(s.sendBuf[:0], 1, 2, 3)
	n := 0
	for _, v := range s.sendBuf {
		n += v
	}
	return n
}

func (s *state) finalResults() []int {
	return s.results
}
