// Positive cases: scratch buffers escaping via returns, goroutine
// captures, and package-level stores.
package pos

type state struct {
	sendBuf []int
	permBuf []int
}

type TransferScratch struct {
	proposals []int
}

var leaked []int

func (s *state) escapeReturn() []int {
	s.sendBuf = s.sendBuf[:0]
	return s.sendBuf // want "scratch buffer s.sendBuf escapes via return"
}

func (s *state) escapeReslice() []int {
	return s.permBuf[:2] // want "scratch buffer s.permBuf escapes via return"
}

func (s *state) escapeGoroutine() {
	go func() {
		leaked = append(leaked, s.permBuf...) // want "scratch buffer s.permBuf captured by goroutine"
	}()
}

func (s *state) escapeGlobal() {
	leaked = s.sendBuf // want "scratch buffer s.sendBuf stored in package-level leaked"
}

func grab(ts *TransferScratch) []int {
	return ts.proposals // want "scratch buffer ts.proposals escapes via return"
}
