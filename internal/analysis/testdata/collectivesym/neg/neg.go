// Negative cases: symmetric collective use, data-dependent guards, and
// the sanctioned laundering idiom (agree on the rank-local bit via a
// collective, then branch on the agreed value).
package neg

type Context struct{}

func (*Context) Rank() int                           { return 0 }
func (*Context) Stream() *int                        { return nil }
func (*Context) Barrier()                            {}
func (*Context) AllReduce(v float64, op int) float64 { return v }
func (*Context) AllGather(v float64) []float64       { return nil }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Unconditional collectives are always symmetric.
func symmetric(rc *Context) {
	rc.Barrier()
	rc.AllGather(1)
}

// Rank-local branches are fine as long as no collective hides inside.
func leaderOnlyIO(rc *Context) {
	if rc.Rank() == 0 {
		println("leader")
	}
	rc.Barrier()
}

// A guard on replicated data is not rank-local.
func dataGuard(rc *Context, n int) {
	if n > 0 {
		rc.Barrier()
	}
}

// The laundering idiom: the AllReduce assignment makes streaming an
// agreed value, so branching on it is symmetric by construction.
func laundered(rc *Context) {
	streaming := rc.Stream() != nil
	streaming = rc.AllReduce(b2f(streaming), 1) > 0
	if streaming {
		rc.AllGather(1)
	}
}

// Reassignment from replicated data clears taint (last-write-wins).
func retainted(rc *Context, n int) {
	r := rc.Rank()
	_ = r
	r = n
	if r > 0 {
		rc.Barrier()
	}
}
