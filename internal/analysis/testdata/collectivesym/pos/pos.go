// Positive cases: collective calls reachable only under rank-local
// conditions. Context stubs the runtime context — the analyzer matches
// on the receiver's named type.
package pos

type Context struct{}

func (*Context) Rank() int                           { return 0 }
func (*Context) Stream() *int                        { return nil }
func (*Context) Barrier()                            {}
func (*Context) AllReduce(v float64, op int) float64 { return v }
func (*Context) AllGather(v float64) []float64       { return nil }

func run(f func()) { f() }

func directGuard(rc *Context) {
	if rc.Rank() == 0 {
		rc.Barrier() // want "collective Barrier is guarded by rank-local condition rc.Rank() == 0"
	}
}

func throughVariable(rc *Context) {
	leader := rc.Rank() == 0
	if leader {
		rc.AllGather(1) // want "collective AllGather is guarded by rank-local condition leader"
	}
}

func attachmentGuard(rc *Context) {
	if rc.Stream() != nil {
		rc.AllGather(2) // want "guarded by rank-local condition"
	}
}

// helper performs a collective; calling it from a tainted branch is the
// same deadlock one call level down.
func helper(rc *Context) { rc.Barrier() }

func throughHelper(rc *Context) {
	if rc.Rank() > 0 {
		helper(rc) // want "call to helper, which performs collective Barrier"
	}
}

// myRank's summary marks its result rank-local.
func myRank(rc *Context) int { return rc.Rank() }

func throughSummary(rc *Context) {
	if myRank(rc) == 0 {
		rc.Barrier() // want "guarded by rank-local condition"
	}
}

// Function literals inherit the taint state at their definition point:
// an Epoch-style body under a tainted branch still deadlocks.
func insideClosure(rc *Context) {
	if rc.Rank() == 0 {
		run(func() {
			rc.Barrier() // want "collective Barrier is guarded by rank-local condition"
		})
	}
}
