// Fixture for the malformed-directive test: the reason is mandatory, so
// the directive below is itself a finding and suppresses nothing.
package malformed

import "time"

func stamp() time.Time {
	//lint:ignore nodeterminism
	return time.Now()
}
