// Negative cases: the collect-then-sort idiom and order-insensitive
// accumulation must not be flagged.
package neg

import (
	"slices"
	"sort"
)

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func slicesSorted(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func intCount(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		n += len(vs) // integer addition is associative: order-insensitive
	}
	return n
}

func loopLocal(m map[string]float64) {
	for _, v := range m {
		double := v * 2 // declared inside the loop body
		_ = double
	}
}
