// Positive cases: order-sensitive sinks fed from map iteration.
package pos

type sender struct{}

func (sender) Send(int) {}

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside range over map m"
	}
	return out
}

func floatCompound(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation into total"
	}
	return total
}

func floatBinary(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "float accumulation into total"
	}
	return total
}

func sendInRange(m map[int]int, s sender) {
	for k := range m {
		s.Send(k) // want "message send inside range over map m"
	}
}
