// Negative cases: band-correct, symmetric, unique registrations paired
// with sends of the registered types; branchy codecs whose consecutive
// duplicate calls collapse before the symmetry comparison; forwarding
// helpers whose payload is statically an interface.
package neg

type Encoder struct{}

func (*Encoder) U32(uint32)  {}
func (*Encoder) U64(uint64)  {}
func (*Encoder) I64(int64)   {}
func (*Encoder) F64(float64) {}
func (*Encoder) Bool(bool)   {}

type Decoder struct{}

func (*Decoder) U32() uint32  { return 0 }
func (*Decoder) U64() uint64  { return 0 }
func (*Decoder) I64() int64   { return 0 }
func (*Decoder) F64() float64 { return 0 }
func (*Decoder) Bool() bool   { return false }

type wireAPI struct{}

func (wireAPI) RegisterWirePayload(id int, enc, dec any) {}

var wire wireAPI

type msg struct {
	Vals []float64
	B    int64
}

type pair struct{ Big bool }

func init() {
	// Straight-line codec: U32 F64 I64 on both sides (loops repeat a
	// value method; repetition count is data-dependent and not compared).
	wire.RegisterWirePayload(64,
		func(e *Encoder, v msg) {
			e.U32(uint32(len(v.Vals)))
			for _, x := range v.Vals {
				e.F64(x)
			}
			e.I64(v.B)
		},
		func(d *Decoder) msg {
			n := int(d.U32())
			out := msg{Vals: make([]float64, n)}
			for i := range out.Vals {
				out.Vals[i] = d.F64()
			}
			out.B = d.I64()
			return out
		})

	// Branchy encoder: [U64 U64 Bool] collapses to [U64 Bool], matching
	// the decoder.
	wire.RegisterWirePayload(65,
		func(e *Encoder, v pair) {
			if v.Big {
				e.U64(1)
				e.U64(2)
			} else {
				e.U64(3)
			}
			e.Bool(v.Big)
		},
		func(d *Decoder) pair {
			var p pair
			_ = d.U64()
			p.Big = d.Bool()
			return p
		})

	// Unnamed types register like named ones.
	wire.RegisterWirePayload(66,
		func(e *Encoder, v []float64) {
			e.U32(uint32(len(v)))
			for _, x := range v {
				e.F64(x)
			}
		},
		func(d *Decoder) []float64 {
			out := make([]float64, d.U32())
			for i := range out {
				out[i] = d.F64()
			}
			return out
		})
}

type Context struct{}

func (*Context) Send(to, h int, data any) {}

func sendRegistered(rc *Context, m msg) {
	rc.Send(1, 2, m)
	rc.Send(1, 2, []float64{1, 2})
}

// A forwarding helper's payload is statically an interface; the concrete
// call sites feeding it are checked instead.
func forward(rc *Context, data any) {
	rc.Send(1, 2, data)
}

// Send methods on other receivers are not runtime sends.
type socket struct{}

func (socket) Send(b []byte) {}

func raw(s socket) {
	s.Send([]byte("frame"))
}
