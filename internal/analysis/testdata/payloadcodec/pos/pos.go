// Positive cases: band violations, asymmetric codecs, duplicate ids,
// and sends of unregistered types. Encoder/Decoder and the wire
// registrar are local stubs — the analyzer matches RegisterWirePayload
// by name and reads the payload type off the encoder's signature. This
// package loads outside internal/amt and internal/lb, so it owns the
// application band (ids >= 64).
package pos

type Encoder struct{}

func (*Encoder) U32(uint32)  {}
func (*Encoder) U64(uint64)  {}
func (*Encoder) I64(int64)   {}
func (*Encoder) F64(float64) {}
func (*Encoder) Bool(bool)   {}

type Decoder struct{}

func (*Decoder) U32() uint32  { return 0 }
func (*Decoder) U64() uint64  { return 0 }
func (*Decoder) I64() int64   { return 0 }
func (*Decoder) F64() float64 { return 0 }
func (*Decoder) Bool() bool   { return false }

type wireAPI struct{}

func (wireAPI) RegisterWirePayload(id int, enc, dec any) {}

var wire wireAPI

type bandMsg struct{ A uint32 }

type skewMsg struct {
	A uint32
	B int64
}

type dupA struct{ V uint64 }

type dupB struct{ V uint64 }

func init() {
	// Id 7 sits in the runtime band; this package owns >= 64.
	wire.RegisterWirePayload(7, // want "outside this package's application band"
		func(e *Encoder, v bandMsg) { e.U32(v.A) },
		func(d *Decoder) bandMsg { return bandMsg{A: d.U32()} })

	// Encoder writes U32 I64, decoder reads U32 F64: field order is the
	// wire format.
	wire.RegisterWirePayload(64, // want "asymmetric: encoder writes"
		func(e *Encoder, v skewMsg) { e.U32(v.A); e.I64(v.B) },
		func(d *Decoder) skewMsg { return skewMsg{A: d.U32(), B: int64(d.F64())} })

	wire.RegisterWirePayload(70,
		func(e *Encoder, v dupA) { e.U64(v.V) },
		func(d *Decoder) dupA { return dupA{V: d.U64()} })
	wire.RegisterWirePayload(70, // want "registered twice"
		func(e *Encoder, v dupB) { e.U64(v.V) },
		func(d *Decoder) dupB { return dupB{V: d.U64()} })
}

type Context struct{}

func (*Context) Send(to, h int, data any) {}

type orphan struct{ X int }

func sendOrphan(rc *Context) {
	rc.Send(1, 2, orphan{X: 3}) // want "no wire.RegisterPayload codec"
}
