// Fixture for the suppression test: two identical violations, one
// covered by a directive. Exactly one finding must survive.
package ignore

import "time"

func stamps() (time.Time, time.Time) {
	//lint:ignore nodeterminism fixture: suppressed on the line below
	a := time.Now()
	b := time.Now()
	return a, b
}
