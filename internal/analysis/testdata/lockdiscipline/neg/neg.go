// Negative cases: the unlock-before-send discipline in its common
// shapes — straight-line, early-return branches, and goroutine handoff.
package neg

import "sync"

type conn struct{}

func (conn) Send(int) {}

type node struct {
	mu sync.Mutex
	c  conn
}

func (n *node) sendAfterUnlock() {
	n.mu.Lock()
	x := 1
	n.mu.Unlock()
	n.c.Send(x)
}

func (n *node) branchReturns(ok bool) {
	n.mu.Lock()
	if ok {
		n.mu.Unlock()
		n.c.Send(1)
		return
	}
	n.mu.Unlock()
}

func (n *node) goroutineSend() {
	n.mu.Lock()
	defer n.mu.Unlock()
	// The goroutine body runs after this function's locks are released.
	go func() { n.c.Send(2) }()
}
