// Positive cases: sends made while a same-function mutex is held.
package pos

import "sync"

type conn struct{}

func (conn) Send(int) {}

type node struct {
	mu sync.Mutex
	rw sync.RWMutex
	c  conn
	ch chan int
}

func (n *node) sendHeld() {
	n.mu.Lock()
	n.c.Send(1) // want "message send while n.mu is held"
	n.mu.Unlock()
}

func (n *node) deferHeld() {
	n.rw.RLock()
	defer n.rw.RUnlock()
	n.ch <- 5 // want "message send while n.rw is held"
}
