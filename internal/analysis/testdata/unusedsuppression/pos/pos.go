// Positive cases: lint:ignore directives that suppress nothing. The
// golden test runs the full analyzer set over this package, so both
// named analyzers are in the selection and the directives are judged.
package pos

//lint:ignore maporder stale: nothing below trips maporder anymore // want "lint:ignore maporder directive suppresses no finding"
var a = 1

func trailing() int {
	return a //lint:ignore nodeterminism stale trailing exception // want "lint:ignore nodeterminism directive suppresses no finding"
}
