// Negative cases: a live directive (it suppresses a real maporder
// finding) and a stale one covered by a meta-directive naming
// unusedsuppression. The golden test runs the full analyzer set and
// requires total silence.
package neg

type sender struct{}

func (sender) Send(int) {}

func sendInRange(m map[int]int, s sender) {
	for k := range m {
		//lint:ignore maporder fixture exercises a live suppression
		s.Send(k)
	}
}

//lint:ignore unusedsuppression demonstrating one-level meta-suppression
//lint:ignore atomicfields intentionally stale for the meta test
var keep = 1
