// Positive cases: random sources constructed from literals or ambient
// values instead of plumbed seeds.
package pos

import (
	"math/rand"
	randv2 "math/rand/v2"
)

type splitmixSource struct{ state uint64 }

func (s *splitmixSource) next() uint64 { s.state++; return s.state }

func literalSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "random source seeded from 42"
}

func literalPCG() *randv2.Rand {
	return randv2.New(randv2.NewPCG(1, 2)) // want "carries no plumbed seed"
}

func compositeLiteral() *splitmixSource {
	return &splitmixSource{state: 7} // want "random source seeded from 7"
}

// name is a parameter, but not a numeric one: deriving a seed from it
// is ambient, not plumbed.
func ambientValue(name string) *rand.Rand {
	return rand.New(rand.NewSource(int64(len(name)))) // want "carries no plumbed seed"
}

// build's s parameter flows into NewSource, so its call sites are
// checked one level up via the call-graph summary.
func build(n int, s int64) *rand.Rand {
	_ = n
	return rand.New(rand.NewSource(s))
}

func callerOfBuild() *rand.Rand {
	return build(3, 99) // want "random source seeded from 99"
}

// SeededStream follows the cross-package naming convention: the first
// argument of a Seeded-named function is a seed.
func SeededStream(seed int64) int64 { return seed * 2 }

func callerOfSeeded() int64 {
	return SeededStream(5) // want "random source seeded from 5"
}
