// Negative cases: every source construction traces back to a seed
// field, a seed-named identifier, or a numeric parameter of the
// enclosing function (the plumbing convention).
package neg

import "math/rand"

type splitmixSource struct{ state uint64 }

func (s *splitmixSource) next() uint64 { s.state++; return s.state }

type Config struct{ Seed int64 }

func fromField(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

func fromSeedParam(seed int64) *splitmixSource {
	return &splitmixSource{state: uint64(seed)}
}

// Any numeric parameter counts as plumbed: the caller's call site is
// checked in turn, one level up.
func fromNumericParam(trial int64) *rand.Rand {
	return rand.New(rand.NewSource(trial))
}

func derive(base, stream int64) int64 { return base ^ stream<<17 }

func viaDerivation(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(derive(cfg.Seed, 1)))
}

func SeededStream(seed int64) int64 { return seed * 2 }

func seededFromField(cfg Config) int64 {
	return SeededStream(cfg.Seed)
}

func build(n int, s int64) *rand.Rand {
	_ = n
	return rand.New(rand.NewSource(s))
}

func callerPlumbs(workloadSeed int64) *rand.Rand {
	return build(3, workloadSeed)
}
