// Positive case: a field touched by sync/atomic in one function and by
// a plain load in another.
package pos

import "sync/atomic"

type counter struct {
	hits int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits // want "field hits is accessed with sync/atomic elsewhere"
}
