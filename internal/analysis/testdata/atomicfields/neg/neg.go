// Negative cases: wrapper-typed fields (all access goes through the
// atomic API) and fields that are plain-only or lock-protected.
package neg

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits atomic.Int64
	mu   sync.Mutex
	n    int64
}

func (c *counter) inc() {
	c.hits.Add(1)
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) read() int64 {
	return c.hits.Load() + c.n
}
