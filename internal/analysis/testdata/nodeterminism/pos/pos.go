// Positive cases: every wall-clock read and global rand draw below must
// be flagged when the package is loaded under a protocol import path.
package pos

import (
	"math/rand"
	"time"
)

func clocks() time.Duration {
	start := time.Now()                    // want "wall-clock read time.Now"
	_ = time.Until(start.Add(time.Second)) // want "wall-clock read time.Until"
	return time.Since(start)               // want "wall-clock read time.Since"
}

func dice() int {
	rand.Shuffle(2, func(i, j int) {}) // want "global math/rand.Shuffle"
	return rand.Intn(6)                // want "global math/rand.Intn"
}
