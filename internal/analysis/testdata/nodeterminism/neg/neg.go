// Negative cases: seeded private streams and clock-free time arithmetic
// are the sanctioned idioms and must not be flagged.
package neg

import (
	"math/rand"
	"time"
)

func seeded() float64 {
	rng := rand.New(rand.NewSource(42)) // constructor: builds a private stream
	return rng.Float64()                // draw from the private stream
}

func durations(d time.Duration) time.Duration {
	return d + 5*time.Millisecond // duration arithmetic never reads the clock
}
