package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestTypecheckFailureIsDiagnostic loads a package that does not
// compile: the driver must report it under the typecheck
// pseudo-analyzer and skip analysis, never panic.
func TestTypecheckFailureIsDiagnostic(t *testing.T) {
	pkg := testLoader(t).LoadDir(filepath.Join("testdata", "broken"), "td/internal/core/broken")
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("fixture unexpectedly typechecks")
	}
	runner := &Runner{Analyzers: Analyzers()}
	diags := runner.Run([]*Package{pkg})
	if len(diags) == 0 {
		t.Fatal("expected a typecheck diagnostic, got none")
	}
	for _, d := range diags {
		if d.Analyzer != "typecheck" {
			t.Errorf("analyzer ran over a broken package: %s", d)
		}
	}
	if !strings.Contains(diags[0].Message, "undefinedName") {
		t.Errorf("diagnostic does not name the type error: %s", diags[0])
	}
}

// TestIgnoreSuppressesExactlyOne runs nodeterminism over a fixture with
// two identical violations, one covered by //lint:ignore: exactly the
// uncovered one must survive.
func TestIgnoreSuppressesExactlyOne(t *testing.T) {
	pkg := testLoader(t).LoadDir(filepath.Join("testdata", "ignore"), "td/internal/core/ignore")
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture does not typecheck: %v", pkg.TypeErrors)
	}
	runner := &Runner{Analyzers: []*Analyzer{analyzerByName(t, "nodeterminism")}}
	diags := runner.Run([]*Package{pkg})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1: %v", len(diags), diags)
	}
	if d := diags[0]; d.Analyzer != "nodeterminism" || !strings.Contains(d.Message, "time.Now") {
		t.Errorf("surviving finding is not the expected one: %s", d)
	}
}

// TestMalformedIgnoreDirective: a directive without a reason suppresses
// nothing and is itself reported.
func TestMalformedIgnoreDirective(t *testing.T) {
	pkg := testLoader(t).LoadDir(filepath.Join("testdata", "malformed"), "td/internal/core/malformed")
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture does not typecheck: %v", pkg.TypeErrors)
	}
	runner := &Runner{Analyzers: []*Analyzer{analyzerByName(t, "nodeterminism")}}
	diags := runner.Run([]*Package{pkg})
	var sawMalformed, sawFinding bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			sawMalformed = strings.Contains(d.Message, "malformed lint:ignore")
		case "nodeterminism":
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("malformed directive not reported: %v", diags)
	}
	if !sawFinding {
		t.Errorf("malformed directive suppressed the finding: %v", diags)
	}
}

// TestSelect covers the -only flag resolution: empty selects all, a
// known name selects it, an unknown name errors listing the valid set.
func TestSelect(t *testing.T) {
	all := Analyzers()
	sel, err := Select(all, "")
	if err != nil || len(sel) != len(all) {
		t.Errorf("empty spec: got %d analyzers, err %v; want all %d", len(sel), err, len(all))
	}
	sel, err = Select(all, "maporder")
	if err != nil || len(sel) != 1 || sel[0].Name != "maporder" {
		t.Errorf("single name: got %v, err %v", sel, err)
	}
	_, err = Select(all, "nosuch")
	if err == nil {
		t.Fatal("unknown analyzer did not error")
	}
	if !strings.Contains(err.Error(), `unknown analyzer "nosuch"`) ||
		!strings.Contains(err.Error(), "maporder") {
		t.Errorf("error does not name the unknown analyzer and the valid set: %v", err)
	}
}
