package comm

import (
	"sync"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	nw := NewNetwork(2)
	nw.Send(Message{From: 0, To: 1, Kind: 7, Data: "hello"})
	m, ok := nw.Recv(1)
	if !ok {
		t.Fatal("no message")
	}
	if m.From != 0 || m.Kind != 7 || m.Data != "hello" {
		t.Errorf("message mangled: %+v", m)
	}
	if _, ok := nw.Recv(1); ok {
		t.Error("spurious second message")
	}
}

func TestRecvEmptyNonBlocking(t *testing.T) {
	nw := NewNetwork(1)
	if _, ok := nw.Recv(0); ok {
		t.Error("Recv on empty inbox returned a message")
	}
}

func TestPerSenderFIFO(t *testing.T) {
	nw := NewNetwork(2)
	for i := 0; i < 100; i++ {
		nw.Send(Message{From: 0, To: 1, Data: i})
	}
	for i := 0; i < 100; i++ {
		m, ok := nw.Recv(1)
		if !ok || m.Data != i {
			t.Fatalf("out of order at %d: %+v", i, m)
		}
	}
}

func TestSeqAssigned(t *testing.T) {
	nw := NewNetwork(2)
	nw.Send(Message{From: 0, To: 1})
	nw.Send(Message{From: 0, To: 1})
	m1, _ := nw.Recv(1)
	m2, _ := nw.Recv(1)
	if m1.Seq >= m2.Seq {
		t.Errorf("sequence numbers not increasing: %d %d", m1.Seq, m2.Seq)
	}
}

func TestRecvWaitBlocksUntilSend(t *testing.T) {
	nw := NewNetwork(2)
	done := make(chan Message)
	go func() {
		m, _ := nw.RecvWait(1)
		done <- m
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("RecvWait returned before send")
	default:
	}
	nw.Send(Message{From: 0, To: 1, Data: 42})
	m := <-done
	if m.Data != 42 {
		t.Errorf("got %+v", m)
	}
}

func TestRecvWaitWakesOnClose(t *testing.T) {
	nw := NewNetwork(1)
	done := make(chan bool)
	go func() {
		_, ok := nw.RecvWait(0)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	nw.Close()
	if ok := <-done; ok {
		t.Error("RecvWait returned ok=true after close on empty inbox")
	}
}

func TestCloseDrainsQueuedMessages(t *testing.T) {
	nw := NewNetwork(1)
	nw.Send(Message{From: 0, To: 0, Data: 1})
	nw.Close()
	if m, ok := nw.RecvWait(0); !ok || m.Data != 1 {
		t.Error("queued message lost on close")
	}
	if _, ok := nw.RecvWait(0); ok {
		t.Error("phantom message after drain")
	}
}

func TestSendAfterClosePanics(t *testing.T) {
	nw := NewNetwork(1)
	nw.Close()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	nw.Send(Message{From: 0, To: 0})
}

func TestSendBadRankPanics(t *testing.T) {
	nw := NewNetwork(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	nw.Send(Message{From: 0, To: 5})
}

func TestNewNetworkValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNetwork(0)
}

func TestPendingAndTotalSent(t *testing.T) {
	nw := NewNetwork(2)
	if nw.Pending(1) != 0 {
		t.Error("pending nonzero at start")
	}
	nw.Send(Message{From: 0, To: 1})
	nw.Send(Message{From: 0, To: 1})
	if nw.Pending(1) != 2 {
		t.Errorf("Pending = %d", nw.Pending(1))
	}
	if nw.TotalSent() != 2 {
		t.Errorf("TotalSent = %d", nw.TotalSent())
	}
	nw.Recv(1)
	if nw.Pending(1) != 1 {
		t.Errorf("Pending after recv = %d", nw.Pending(1))
	}
}

func TestConcurrentSendersNoLoss(t *testing.T) {
	nw := NewNetwork(8)
	const perSender, senders = 500, 7
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				nw.Send(Message{From: from, To: 0, Data: i})
			}
		}(s)
	}
	received := make(chan int)
	go func() {
		count := 0
		lastPerSender := make(map[int]int)
		for count < perSender*senders {
			m, ok := nw.RecvWait(0)
			if !ok {
				break
			}
			// Per-sender FIFO must hold even under concurrency.
			if prev, seen := lastPerSender[m.From]; seen && m.Data.(int) != prev+1 {
				t.Errorf("sender %d out of order: %d after %d", m.From, m.Data, prev)
			}
			lastPerSender[m.From] = m.Data.(int)
			count++
		}
		received <- count
	}()
	wg.Wait()
	if got := <-received; got != perSender*senders {
		t.Errorf("received %d of %d", got, perSender*senders)
	}
}

func TestInboxCompaction(t *testing.T) {
	// Push and pop enough to trigger the compaction path repeatedly.
	nw := NewNetwork(1)
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i++ {
			nw.Send(Message{From: 0, To: 0, Data: round*200 + i})
		}
		for i := 0; i < 200; i++ {
			m, ok := nw.Recv(0)
			if !ok || m.Data != round*200+i {
				t.Fatalf("compaction corrupted order at %d/%d: %+v", round, i, m)
			}
		}
	}
}

func TestMeasureBytes(t *testing.T) {
	if n := MeasureBytes([]float64{1, 2, 3}); n <= 0 {
		t.Errorf("MeasureBytes = %d", n)
	}
	small := MeasureBytes([]byte{1})
	big := MeasureBytes(make([]byte, 10000))
	if big <= small {
		t.Errorf("sizes not monotone: %d vs %d", small, big)
	}
	// Unencodable values report 0.
	if n := MeasureBytes(func() {}); n != 0 {
		t.Errorf("MeasureBytes(func) = %d", n)
	}
}

func TestJitterDeliversEverything(t *testing.T) {
	nw := NewNetwork(2)
	nw.SetJitter(2 * time.Millisecond)
	const n = 300
	for i := 0; i < n; i++ {
		nw.Send(Message{From: 0, To: 1, Data: i})
	}
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		m, ok := nw.RecvWait(1)
		if !ok {
			t.Fatal("network closed early")
		}
		v := m.Data.(int)
		if seen[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		seen[v] = true
	}
	if _, ok := nw.Recv(1); ok {
		t.Error("phantom extra message")
	}
}

func TestCloseWaitsForDelayedDeliveries(t *testing.T) {
	// Regression: Close used to close the inboxes while jittered
	// deliveries were still sleeping in their goroutines, so receivers
	// draining after Close would miss them — counted messages silently
	// lost on shutdown.
	nw := NewNetwork(2)
	nw.SetJitter(3 * time.Millisecond)
	const n = 200
	for i := 0; i < n; i++ {
		nw.Send(Message{From: 0, To: 1, Data: i})
	}
	nw.Close()
	got := 0
	for {
		if _, ok := nw.RecvWait(1); !ok {
			break
		}
		got++
	}
	if got != n {
		t.Fatalf("drained %d of %d messages after Close", got, n)
	}
}

func TestPerKindCounters(t *testing.T) {
	nw := NewNetwork(2)
	for i := 0; i < 5; i++ {
		nw.Send(Message{From: 0, To: 1, Kind: 3})
	}
	for i := 0; i < 2; i++ {
		nw.Send(Message{From: 0, To: 1, Kind: 9})
	}
	if got := nw.SentByKind(3); got != 5 {
		t.Errorf("SentByKind(3) = %d, want 5", got)
	}
	if got := nw.SentByKind(9); got != 2 {
		t.Errorf("SentByKind(9) = %d, want 2", got)
	}
	if got := nw.SentByKind(4); got != 0 {
		t.Errorf("SentByKind(4) = %d, want 0", got)
	}
	if nw.TotalSent() != 7 {
		t.Errorf("TotalSent = %d", nw.TotalSent())
	}
	// Out-of-range kinds read as zero rather than panicking.
	if nw.SentByKind(-1) != 0 || nw.SentByKind(MaxKinds) != 0 {
		t.Error("out-of-range kind counters nonzero")
	}
}

func TestSendBadKindPanics(t *testing.T) {
	nw := NewNetwork(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	nw.Send(Message{From: 0, To: 0, Kind: MaxKinds})
}

// TestByteAccountingConcurrentSenders hammers one network from many
// sender goroutines with payloads of known estimated size and checks the
// per-kind byte totals add up exactly — the counters must not lose
// updates under contention.
func TestByteAccountingConcurrentSenders(t *testing.T) {
	nw := NewNetwork(4)
	nw.EnableByteAccounting()
	if !nw.ByteAccounting() {
		t.Fatal("byte accounting not enabled")
	}
	payload := "0123456789abcdef" // strings size as header + length
	per := EstimateBytes(payload)
	if per <= len(payload) {
		t.Fatalf("EstimateBytes(%q) = %d", payload, per)
	}
	const senders, each = 8, 400
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				nw.Send(Message{From: from % 4, To: (from + 1) % 4, Kind: Kind(from % 2), Data: payload})
			}
		}(s)
	}
	wg.Wait()
	want := int64(senders * each * per)
	if got := nw.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	if got := nw.BytesByKind(0) + nw.BytesByKind(1); got != want {
		t.Errorf("per-kind bytes = %d, want %d", got, want)
	}
	if got := nw.SentByKind(0) + nw.SentByKind(1); got != senders*each {
		t.Errorf("per-kind sends = %d, want %d", got, senders*each)
	}
}

// TestByteAccountingOffByDefault checks the byte counters stay zero (and
// no sizing work happens) unless explicitly enabled.
func TestByteAccountingOffByDefault(t *testing.T) {
	nw := NewNetwork(2)
	nw.Send(Message{From: 0, To: 1, Kind: 1, Data: make([]byte, 4096)})
	if nw.TotalBytes() != 0 {
		t.Errorf("TotalBytes = %d without byte accounting", nw.TotalBytes())
	}
	if nw.SentByKind(1) != 1 {
		t.Errorf("message counting must stay on: %d", nw.SentByKind(1))
	}
}

func TestEstimateBytes(t *testing.T) {
	type envelope struct {
		EpochID int64
		Data    any
	}
	cases := []struct {
		name string
		v    any
		min  int // estimates must be at least this
	}{
		{"nil", nil, 0},
		{"int", 42, 8},
		{"string", "hello", 5},
		{"float-slice", []float64{1, 2, 3}, 24},
		{"envelope-with-iface", envelope{EpochID: 7, Data: []float64{1, 2, 3, 4}}, 8 + 32},
		{"map", map[int]float64{1: 2, 3: 4}, 32},
		{"nested-ptr", &envelope{Data: "x"}, 9},
	}
	for _, tc := range cases {
		if got := EstimateBytes(tc.v); got < tc.min {
			t.Errorf("%s: EstimateBytes = %d, want >= %d", tc.name, got, tc.min)
		}
	}
	// Gob would refuse the interface field without registration; the
	// estimator must handle it. Compare behaviours explicitly.
	env := envelope{EpochID: 1, Data: []float64{1, 2, 3}}
	if MeasureBytes(env) != 0 {
		t.Log("gob learned to encode unregistered interfaces; estimator still fine")
	}
	if EstimateBytes(env) <= 24 {
		t.Errorf("estimator too small for envelope: %d", EstimateBytes(env))
	}
	// Cycles terminate.
	type node struct{ Next *node }
	a, b := &node{}, &node{}
	a.Next, b.Next = b, a
	if got := EstimateBytes(a); got <= 0 {
		t.Errorf("cyclic estimate = %d", got)
	}
	// Shared pointers counted once: two refs to one big struct should be
	// far smaller than twice the standalone size.
	big := &struct{ Buf [1024]byte }{}
	double := EstimateBytes([]*struct{ Buf [1024]byte }{big, big})
	single := EstimateBytes(big)
	if double >= 2*single {
		t.Errorf("shared pointer double-counted: pair %d vs single %d", double, single)
	}
}
