package comm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates message classes at the transport level so the
// runtime can route control traffic (termination tokens, collectives)
// separately from user/epoch traffic.
type Kind int32

// Message is one active-message envelope.
type Message struct {
	From, To int
	Kind     Kind
	Handler  int32 // runtime handler id, meaningful for user kinds
	Seq      int64 // per-sender sequence number, set by Send
	Data     any
}

// MaxKinds bounds the Kind value space for the per-kind accounting
// arrays; the runtime uses a dozen kinds, so a fixed array keeps the
// counters allocation-free and index-addressable.
const MaxKinds = 32

// Network connects n ranks with reliable, per-sender-FIFO, asynchronous
// delivery. Sends never block (inboxes are unbounded); receives may.
//
// The network always counts messages per kind (one atomic add per send).
// Payload byte accounting — sizing every message's Data with the
// reflection-based EstimateBytes — is opt-in via EnableByteAccounting
// because the walk costs far more than the send itself.
type Network struct {
	n       int
	inboxes []*inbox
	sent    atomic.Int64
	seq     []atomic.Int64
	closed  atomic.Bool
	jitter  time.Duration
	jrng    atomic.Uint64

	sentKind  [MaxKinds]atomic.Int64
	bytesKind [MaxKinds]atomic.Int64
	countB    atomic.Bool
}

// NewNetwork creates a network of n ranks.
func NewNetwork(n int) *Network {
	if n < 1 {
		panic(fmt.Sprintf("comm: NewNetwork: n must be >= 1, got %d", n))
	}
	nw := &Network{
		n:       n,
		inboxes: make([]*inbox, n),
		seq:     make([]atomic.Int64, n),
	}
	for i := range nw.inboxes {
		nw.inboxes[i] = newInbox()
	}
	return nw
}

// SetJitter makes every delivery wait a uniformly random duration up to
// max before landing in the destination inbox, modeling network latency
// variance. Per-sender FIFO is intentionally NOT preserved under jitter
// — the point is to stress ordering assumptions (the runtime's
// termination detection and location forwarding must tolerate arbitrary
// interleavings). Set before any traffic flows; zero disables.
func (nw *Network) SetJitter(max time.Duration) {
	nw.jitter = max
	nw.jrng.Store(0x9e3779b97f4a7c15)
}

// NumRanks returns the number of ranks.
func (nw *Network) NumRanks() int { return nw.n }

// Send enqueues the message to its destination inbox. It never blocks.
// Sending on a closed network panics: it indicates a runtime shutdown
// ordering bug.
func (nw *Network) Send(m Message) {
	if m.To < 0 || m.To >= nw.n {
		panic(fmt.Sprintf("comm: Send to rank %d out of [0,%d)", m.To, nw.n))
	}
	if nw.closed.Load() {
		panic("comm: Send on closed network")
	}
	if m.Kind < 0 || m.Kind >= MaxKinds {
		panic(fmt.Sprintf("comm: Send with kind %d out of [0,%d)", m.Kind, MaxKinds))
	}
	m.Seq = nw.seq[m.From].Add(1)
	nw.sent.Add(1)
	nw.sentKind[m.Kind].Add(1)
	if nw.countB.Load() {
		nw.bytesKind[m.Kind].Add(int64(EstimateBytes(m.Data)))
	}
	if nw.jitter > 0 {
		// xorshift over an atomic word keeps the delay stream cheap and
		// lock-free across concurrent senders.
		x := nw.jrng.Add(0x9e3779b97f4a7c15)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		delay := time.Duration(x % uint64(nw.jitter))
		go func() {
			time.Sleep(delay)
			nw.inboxes[m.To].push(m)
		}()
		return
	}
	nw.inboxes[m.To].push(m)
}

// TotalSent returns the number of messages sent on the network so far.
func (nw *Network) TotalSent() int64 { return nw.sent.Load() }

// EnableByteAccounting turns on per-kind payload byte accounting: every
// subsequent Send sizes its Data with EstimateBytes. Counts accumulated
// before enabling are unaffected (their bytes were never measured).
func (nw *Network) EnableByteAccounting() { nw.countB.Store(true) }

// ByteAccounting reports whether payload sizing is enabled.
func (nw *Network) ByteAccounting() bool { return nw.countB.Load() }

// SentByKind returns the number of messages of the given kind sent so
// far.
func (nw *Network) SentByKind(k Kind) int64 {
	if k < 0 || k >= MaxKinds {
		return 0
	}
	return nw.sentKind[k].Load()
}

// BytesByKind returns the accumulated payload bytes of the given kind;
// zero unless byte accounting was enabled before the traffic flowed.
func (nw *Network) BytesByKind(k Kind) int64 {
	if k < 0 || k >= MaxKinds {
		return 0
	}
	return nw.bytesKind[k].Load()
}

// TotalBytes sums the accounted payload bytes over all kinds.
func (nw *Network) TotalBytes() int64 {
	total := int64(0)
	for k := range nw.bytesKind {
		total += nw.bytesKind[k].Load()
	}
	return total
}

// Recv pops the next message for rank without blocking; ok is false when
// the inbox is empty.
func (nw *Network) Recv(rank int) (Message, bool) {
	return nw.inboxes[rank].pop()
}

// RecvWait pops the next message for rank, blocking until one arrives or
// the network is closed (ok=false).
func (nw *Network) RecvWait(rank int) (Message, bool) {
	return nw.inboxes[rank].popWait()
}

// Pending returns the number of queued messages for rank.
func (nw *Network) Pending(rank int) int {
	return nw.inboxes[rank].len()
}

// Close wakes all blocked receivers; subsequent RecvWait calls drain
// remaining messages and then report ok=false.
func (nw *Network) Close() {
	nw.closed.Store(true)
	for _, ib := range nw.inboxes {
		ib.close()
	}
}

// inbox is an unbounded MPSC queue with blocking pop.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	head   int
	closed bool
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(m Message) {
	ib.mu.Lock()
	ib.queue = append(ib.queue, m)
	ib.mu.Unlock()
	ib.cond.Signal()
}

func (ib *inbox) pop() (Message, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.popLocked()
}

func (ib *inbox) popWait() (Message, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		if m, ok := ib.popLocked(); ok {
			return m, true
		}
		if ib.closed {
			return Message{}, false
		}
		ib.cond.Wait()
	}
}

func (ib *inbox) popLocked() (Message, bool) {
	if ib.head >= len(ib.queue) {
		return Message{}, false
	}
	m := ib.queue[ib.head]
	ib.queue[ib.head] = Message{} // release references
	ib.head++
	// Compact once the dead prefix dominates.
	if ib.head > 64 && ib.head*2 >= len(ib.queue) {
		n := copy(ib.queue, ib.queue[ib.head:])
		ib.queue = ib.queue[:n]
		ib.head = 0
	}
	return m, true
}

func (ib *inbox) len() int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return len(ib.queue) - ib.head
}

func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// MeasureBytes gob-encodes v and returns the wire size, the byte
// accounting used for migration-volume statistics. Types must be
// gob-encodable; errors report a size of 0.
func MeasureBytes(v any) int {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0
	}
	return buf.Len()
}
