package comm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"temperedlb/internal/clock"
)

// Kind discriminates message classes at the transport level so the
// runtime can route control traffic (termination tokens, collectives)
// separately from user/epoch traffic.
type Kind int32

// Message is one active-message envelope.
type Message struct {
	From, To int
	Kind     Kind
	Handler  int32 // runtime handler id, meaningful for user kinds
	Seq      int64 // per-sender sequence number, set by Send
	MsgID    int64 // reliability id, set by layers that dedup/retransmit (0 = none)
	Data     any
}

// MaxKinds bounds the Kind value space for the per-kind accounting
// arrays; the runtime uses a dozen kinds, so a fixed array keeps the
// counters allocation-free and index-addressable.
const MaxKinds = 32

// Network connects n ranks with reliable, per-sender-FIFO, asynchronous
// delivery. Sends never block (inboxes are unbounded); receives may.
//
// The network always counts messages per kind (one atomic add per send).
// Payload byte accounting — sizing every message's Data with the
// reflection-based EstimateBytes — is opt-in via EnableByteAccounting
// because the walk costs far more than the send itself.
type Network struct {
	n       int
	inboxes []*inbox
	sent    atomic.Int64
	seq     []atomic.Int64
	closed  atomic.Bool
	plan    atomic.Pointer[FaultPlan]

	// lo/hi bound the local rank range [lo,hi); messages to ranks
	// outside it are handed to forward (a partial network's uplink to
	// its wire transport) after sequence stamping, accounting and fault
	// injection — so a rank's fault dice are rolled exactly once, at the
	// sending process, whatever transport carries the message. The full
	// in-memory network has lo=0, hi=n, forward=nil.
	lo, hi  int
	forward func(Message)

	// delayMu fences delayed-delivery registration against Close:
	// readers (senders scheduling a delayed copy) join the inflight
	// group under the read lock, and Close flips closed under the write
	// lock, so once Close holds the lock no new in-flight delivery can
	// appear and inflight.Wait() observes them all.
	delayMu  sync.RWMutex
	inflight sync.WaitGroup

	sentKind  [MaxKinds]atomic.Int64
	bytesKind [MaxKinds]atomic.Int64
	dropKind  [MaxKinds]atomic.Int64
	dupKind   [MaxKinds]atomic.Int64
	countB    atomic.Bool
}

// NewNetwork creates a network of n ranks, all of them local.
func NewNetwork(n int) *Network {
	return NewPartialNetwork(n, 0, n, nil)
}

// NewPartialNetwork creates the local slice [lo,hi) of an n-rank
// network. Sends to local destinations behave exactly as on a full
// network; sends to any other rank are stamped, accounted and
// fault-filtered here and then handed to forward, which must carry them
// to the process hosting the destination (see the wire package). The
// receiving side delivers them via Inject. forward may be nil only for
// the full range.
func NewPartialNetwork(n, lo, hi int, forward func(Message)) *Network {
	if n < 1 {
		panic(fmt.Sprintf("comm: NewPartialNetwork: n must be >= 1, got %d", n))
	}
	if lo < 0 || hi > n || lo >= hi {
		panic(fmt.Sprintf("comm: NewPartialNetwork: bad local range [%d,%d) of %d ranks", lo, hi, n))
	}
	if forward == nil && (lo != 0 || hi != n) {
		panic("comm: NewPartialNetwork: partial range needs a forward hook")
	}
	nw := &Network{
		n:       n,
		lo:      lo,
		hi:      hi,
		forward: forward,
		inboxes: make([]*inbox, hi-lo),
		seq:     make([]atomic.Int64, n),
	}
	for i := range nw.inboxes {
		nw.inboxes[i] = newInbox()
	}
	return nw
}

// LocalRange returns the half-open rank range [lo,hi) whose inboxes
// live in this process.
func (nw *Network) LocalRange() (lo, hi int) { return nw.lo, nw.hi }

// inbox returns the local inbox of rank, panicking on a rank this
// partial network does not host — always a routing bug.
func (nw *Network) inbox(rank int) *inbox {
	if rank < nw.lo || rank >= nw.hi {
		panic(fmt.Sprintf("comm: rank %d is not local to [%d,%d)", rank, nw.lo, nw.hi))
	}
	return nw.inboxes[rank-nw.lo]
}

// deliver lands a stamped message: local destinations go straight to
// their inbox, remote ones to the forward hook.
func (nw *Network) deliver(m Message) {
	if m.To >= nw.lo && m.To < nw.hi {
		nw.inboxes[m.To-nw.lo].push(m)
		return
	}
	nw.forward(m)
}

// Inject delivers a message that arrived from a remote peer straight
// into its local destination inbox. It bypasses sequence stamping,
// accounting and fault injection — the sending process applied all
// three before the message crossed the wire — so it must never be used
// for locally originated traffic. Unlike Send it is permitted on a
// closed network: a remote delivery racing shutdown is enqueued (and
// discarded with the inboxes) rather than treated as a protocol bug,
// because the closing side cannot stop its peers instantaneously.
func (nw *Network) Inject(m Message) {
	nw.inbox(m.To).push(m)
}

// SetJitter makes every delivery wait a uniformly random duration up to
// max before landing in the destination inbox, modeling network latency
// variance. Per-sender FIFO is intentionally NOT preserved under jitter
// — the point is to stress ordering assumptions (the runtime's
// termination detection and location forwarding must tolerate arbitrary
// interleavings). It is sugar for a delay-only fault plan. Must be set
// before any traffic flows (enforced: setting it after a Send panics);
// zero disables.
func (nw *Network) SetJitter(max time.Duration) {
	if max < 0 {
		panic("comm: SetJitter: negative jitter")
	}
	if max == 0 {
		nw.SetFaultPlan(nil)
		return
	}
	nw.SetFaultPlan(&FaultPlan{Seed: 0x5eed, DelayMax: max})
}

// SetFaultPlan installs (or, with nil, removes) the fault schedule every
// subsequent delivery is subjected to. The plan is copied; see FaultPlan
// for the semantics. Like SetJitter it must be called before any
// traffic flows — fault decisions are keyed by per-sender sequence
// numbers, so swapping plans mid-traffic would make runs unreproducible
// and race with in-flight accounting; calling it after a Send panics.
func (nw *Network) SetFaultPlan(p *FaultPlan) {
	if nw.TotalSent() > 0 {
		panic("comm: SetFaultPlan/SetJitter after traffic has flowed")
	}
	if !p.active() {
		nw.plan.Store(nil)
		return
	}
	p.validate()
	nw.plan.Store(p.clone())
}

// NumRanks returns the number of ranks.
func (nw *Network) NumRanks() int { return nw.n }

// Send enqueues the message to its destination inbox. It never blocks.
// Sending on a closed network panics: it indicates a runtime shutdown
// ordering bug.
func (nw *Network) Send(m Message) {
	if m.To < 0 || m.To >= nw.n {
		panic(fmt.Sprintf("comm: Send to rank %d out of [0,%d)", m.To, nw.n))
	}
	if nw.closed.Load() {
		panic("comm: Send on closed network")
	}
	if m.Kind < 0 || m.Kind >= MaxKinds {
		panic(fmt.Sprintf("comm: Send with kind %d out of [0,%d)", m.Kind, MaxKinds))
	}
	m.Seq = nw.seq[m.From].Add(1)
	nw.sent.Add(1)
	nw.sentKind[m.Kind].Add(1)
	if nw.countB.Load() {
		nw.bytesKind[m.Kind].Add(int64(EstimateBytes(m.Data)))
	}
	if p := nw.plan.Load(); p != nil {
		nw.faultedDeliver(p, m)
		return
	}
	nw.deliver(m)
}

// faultedDeliver applies the fault plan to one message: it may be
// dropped, delivered once or twice, and each delivered copy may be
// delayed. All decisions are pure functions of (plan seed, sender,
// per-sender sequence), so concurrent senders share no fault state.
func (nw *Network) faultedDeliver(p *FaultPlan, m Message) {
	if pr := p.Drop[m.Kind]; pr > 0 && faultUniform(p.Seed, m.From, m.Seq, saltDrop) < pr {
		nw.dropKind[m.Kind].Add(1)
		return
	}
	nw.deliverCopy(p, m, saltDelay)
	if pr := p.Dup[m.Kind]; pr > 0 && faultUniform(p.Seed, m.From, m.Seq, saltDup) < pr {
		nw.dupKind[m.Kind].Add(1)
		nw.deliverCopy(p, m, saltDupDelay)
	}
}

// deliverCopy lands one copy of m, immediately or after its drawn delay.
func (nw *Network) deliverCopy(p *FaultPlan, m Message, salt uint64) {
	delay := p.delayFor(m, salt)
	if delay <= 0 {
		nw.deliver(m)
		return
	}
	nw.deliverLater(m, delay)
}

// deliverLater schedules a delayed delivery, registering it with the
// in-flight group so Close waits for it instead of racing it (delayed
// messages used to be silently lost when the network closed while they
// slept).
func (nw *Network) deliverLater(m Message, delay time.Duration) {
	nw.delayMu.RLock()
	if nw.closed.Load() {
		// Close has already begun and may have finished waiting: deliver
		// synchronously so the message is at least queued, mirroring an
		// undelayed send racing Close.
		nw.delayMu.RUnlock()
		nw.deliver(m)
		return
	}
	nw.inflight.Add(1)
	nw.delayMu.RUnlock()
	go func() {
		defer nw.inflight.Done()
		time.Sleep(delay)
		nw.deliver(m)
	}()
}

// TotalSent returns the number of messages sent on the network so far.
func (nw *Network) TotalSent() int64 { return nw.sent.Load() }

// EnableByteAccounting turns on per-kind payload byte accounting: every
// subsequent Send sizes its Data with EstimateBytes. Counts accumulated
// before enabling are unaffected (their bytes were never measured).
func (nw *Network) EnableByteAccounting() { nw.countB.Store(true) }

// ByteAccounting reports whether payload sizing is enabled.
func (nw *Network) ByteAccounting() bool { return nw.countB.Load() }

// SentByKind returns the number of messages of the given kind sent so
// far.
func (nw *Network) SentByKind(k Kind) int64 {
	if k < 0 || k >= MaxKinds {
		return 0
	}
	return nw.sentKind[k].Load()
}

// DroppedByKind returns the number of messages of the given kind the
// fault plan has dropped so far.
func (nw *Network) DroppedByKind(k Kind) int64 {
	if k < 0 || k >= MaxKinds {
		return 0
	}
	return nw.dropKind[k].Load()
}

// DuplicatedByKind returns the number of messages of the given kind the
// fault plan has duplicated so far (each counted once, however many
// copies landed).
func (nw *Network) DuplicatedByKind(k Kind) int64 {
	if k < 0 || k >= MaxKinds {
		return 0
	}
	return nw.dupKind[k].Load()
}

// TotalDropped sums the fault-plan drops over all kinds.
func (nw *Network) TotalDropped() int64 {
	total := int64(0)
	for k := range nw.dropKind {
		total += nw.dropKind[k].Load()
	}
	return total
}

// TotalDuplicated sums the fault-plan duplications over all kinds.
func (nw *Network) TotalDuplicated() int64 {
	total := int64(0)
	for k := range nw.dupKind {
		total += nw.dupKind[k].Load()
	}
	return total
}

// BytesByKind returns the accumulated payload bytes of the given kind;
// zero unless byte accounting was enabled before the traffic flowed.
func (nw *Network) BytesByKind(k Kind) int64 {
	if k < 0 || k >= MaxKinds {
		return 0
	}
	return nw.bytesKind[k].Load()
}

// TotalBytes sums the accounted payload bytes over all kinds.
func (nw *Network) TotalBytes() int64 {
	total := int64(0)
	for k := range nw.bytesKind {
		total += nw.bytesKind[k].Load()
	}
	return total
}

// Recv pops the next message for rank without blocking; ok is false when
// the inbox is empty.
func (nw *Network) Recv(rank int) (Message, bool) {
	return nw.inbox(rank).pop()
}

// RecvBatch drains every currently queued message for rank into buf and
// returns the extended slice, without blocking. The whole burst costs
// one lock acquisition instead of one per message, and passing the
// previous call's buf (resliced to [:0]) makes the steady state
// allocation-free. The caller should zero consumed entries it no longer
// needs so payload references are released.
func (nw *Network) RecvBatch(rank int, buf []Message) []Message {
	return nw.inbox(rank).popBatch(buf)
}

// RecvWait pops the next message for rank, blocking until one arrives or
// the network is closed (ok=false).
func (nw *Network) RecvWait(rank int) (Message, bool) {
	return nw.inbox(rank).popWait()
}

// RecvWaitTimeout is RecvWait with a deadline: it returns timedOut=true
// (and ok=false) when d elapses with no message and the network still
// open. The runtime's retransmission pump uses it; the fault-free path
// never calls it, so the timer cost is confined to faulted runs.
func (nw *Network) RecvWaitTimeout(rank int, d time.Duration) (m Message, ok, timedOut bool) {
	return nw.inbox(rank).popWaitTimeout(d)
}

// Pending returns the number of queued messages for rank.
func (nw *Network) Pending(rank int) int {
	return nw.inbox(rank).len()
}

// Close wakes all blocked receivers; subsequent RecvWait calls drain
// remaining messages and then report ok=false. Close first waits for
// every in-flight delayed delivery to land, so messages a fault plan
// (or jitter) was still holding are drained by receivers rather than
// silently lost. Close is idempotent; concurrent calls may return
// before the first caller has finished closing the inboxes.
func (nw *Network) Close() {
	nw.delayMu.Lock()
	first := nw.closed.CompareAndSwap(false, true)
	nw.delayMu.Unlock()
	if !first {
		return
	}
	nw.inflight.Wait()
	for _, ib := range nw.inboxes {
		ib.close()
	}
}

// Closed reports whether Close has been called.
func (nw *Network) Closed() bool { return nw.closed.Load() }

// inbox is an unbounded MPSC queue with blocking pop.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	head   int
	closed bool

	// timer is popWaitTimeout's single reusable deadline timer; lazily
	// created on the first timed wait and Reset on every subsequent one
	// instead of allocating an AfterFunc per call (hot in the reliable
	// layer's retransmission pump). Guarded by mu.
	timer *time.Timer
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(m Message) {
	ib.mu.Lock()
	ib.queue = append(ib.queue, m)
	ib.mu.Unlock()
	ib.cond.Signal()
}

func (ib *inbox) pop() (Message, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.popLocked()
}

func (ib *inbox) popWait() (Message, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		if m, ok := ib.popLocked(); ok {
			return m, true
		}
		if ib.closed {
			return Message{}, false
		}
		ib.cond.Wait()
	}
}

// popWaitTimeout is popWait with a deadline. The third result is true
// when the deadline expired with the inbox empty and still open. The
// deadline rides the inbox's single reusable timer, whose callback
// broadcasts on the condition variable; each inbox has a single
// consumer, so the wakeup cannot be stolen by another waiter, and a
// stale callback from a Stop that lost the race merely causes one
// spurious re-check of the loop condition.
func (ib *inbox) popWaitTimeout(d time.Duration) (Message, bool, bool) {
	deadline := clock.Now().Add(d)
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.timer == nil {
		ib.timer = time.AfterFunc(d, func() {
			ib.mu.Lock()
			defer ib.mu.Unlock()
			ib.cond.Broadcast()
		})
	} else {
		ib.timer.Reset(d)
	}
	defer ib.timer.Stop()
	for {
		if m, ok := ib.popLocked(); ok {
			return m, true, false
		}
		if ib.closed {
			return Message{}, false, false
		}
		if !clock.Now().Before(deadline) {
			return Message{}, false, true
		}
		ib.cond.Wait()
	}
}

func (ib *inbox) popLocked() (Message, bool) {
	if ib.head >= len(ib.queue) {
		return Message{}, false
	}
	m := ib.queue[ib.head]
	ib.queue[ib.head] = Message{} // release references
	ib.head++
	// Compact once the dead prefix dominates.
	if ib.head > 64 && ib.head*2 >= len(ib.queue) {
		n := copy(ib.queue, ib.queue[ib.head:])
		ib.queue = ib.queue[:n]
		ib.head = 0
	}
	return m, true
}

// popBatch appends every queued message to buf under one lock and
// resets the queue, retaining its capacity. Internal references are
// cleared so the inbox never pins delivered payloads.
func (ib *inbox) popBatch(buf []Message) []Message {
	ib.mu.Lock()
	if ib.head < len(ib.queue) {
		buf = append(buf, ib.queue[ib.head:]...)
	}
	clear(ib.queue)
	ib.queue = ib.queue[:0]
	ib.head = 0
	ib.mu.Unlock()
	return buf
}

func (ib *inbox) len() int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return len(ib.queue) - ib.head
}

func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

// MeasureBytes gob-encodes v and returns the wire size, the byte
// accounting used for migration-volume statistics. Types must be
// gob-encodable; errors report a size of 0.
func MeasureBytes(v any) int {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0
	}
	return buf.Len()
}
