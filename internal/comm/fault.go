package comm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// FaultSpec is the kind-agnostic, flag-level description of a fault
// plan: what users type after -faults. The runtime layer decides which
// message kinds the scalar probabilities apply to (protocol control
// traffic — termination tokens, acks, collectives — stays reliable) and
// consumes the retry tuning; the transport consumes the rest via Plan.
//
// The zero value is the empty spec: no faults, no retry tuning.
type FaultSpec struct {
	// Seed drives every fault decision. Decisions are a pure function of
	// (Seed, sender, per-sender transport sequence number, decision
	// salt), so a fixed spec yields the same drop/duplicate/delay choice
	// for the k-th message a rank sends, independent of scheduling.
	Seed int64

	// Drop and Dup are per-message probabilities in [0,1) of dropping a
	// message, respectively of delivering one extra copy.
	Drop, Dup float64

	// DelayMin and DelayMax bound the random extra delivery latency
	// window, generalizing Network.SetJitter (which is DelayMin=0,
	// DelayMax=jitter). DelayMax==DelayMin pins a constant delay.
	DelayMin, DelayMax time.Duration

	// SlowRanks adds a fixed straggler penalty to every delivery sent by
	// or destined to the listed ranks, on top of the window above.
	SlowRanks map[int]time.Duration

	// RetryBase and RetryCap tune the runtime's retransmission timeout
	// (initial value and exponential-backoff cap). The transport ignores
	// them; zero means the runtime default.
	RetryBase, RetryCap time.Duration
}

// Empty reports whether the spec injects no faults at all (retry tuning
// alone does not count: with nothing to recover from it is inert).
func (sp FaultSpec) Empty() bool {
	return sp.Drop == 0 && sp.Dup == 0 && sp.DelayMin == 0 && sp.DelayMax == 0 &&
		len(sp.SlowRanks) == 0
}

// Validate checks the spec's ranges. Rank bounds are checked against n
// when n > 0 (pass 0 when the rank count is not known yet).
func (sp FaultSpec) Validate(n int) error {
	switch {
	case sp.Drop < 0 || sp.Drop >= 1:
		return fmt.Errorf("comm: fault drop probability must be in [0,1), got %g", sp.Drop)
	case sp.Dup < 0 || sp.Dup >= 1:
		return fmt.Errorf("comm: fault dup probability must be in [0,1), got %g", sp.Dup)
	case sp.DelayMin < 0 || sp.DelayMax < 0:
		return fmt.Errorf("comm: fault delays must be >= 0, got [%v,%v]", sp.DelayMin, sp.DelayMax)
	case sp.DelayMax < sp.DelayMin:
		return fmt.Errorf("comm: fault delay window inverted: [%v,%v]", sp.DelayMin, sp.DelayMax)
	case sp.RetryBase < 0 || sp.RetryCap < 0:
		return fmt.Errorf("comm: retry tuning must be >= 0")
	}
	for r, d := range sp.SlowRanks {
		if r < 0 || (n > 0 && r >= n) {
			return fmt.Errorf("comm: slow rank %d out of range", r)
		}
		if d < 0 {
			return fmt.Errorf("comm: slow rank %d penalty must be >= 0, got %v", r, d)
		}
	}
	return nil
}

// Plan compiles the spec into a transport fault plan. Drop and Dup apply
// only to the listed kinds; the delay window and straggler penalties
// apply to every kind (latency hits control traffic too — the protocols
// must tolerate that, and the existing jitter chaos tests prove they
// do).
func (sp FaultSpec) Plan(kinds ...Kind) *FaultPlan {
	p := &FaultPlan{
		Seed:     sp.Seed,
		DelayMin: sp.DelayMin,
		DelayMax: sp.DelayMax,
	}
	for _, k := range kinds {
		p.Drop[k] = sp.Drop
		p.Dup[k] = sp.Dup
	}
	if len(sp.SlowRanks) > 0 {
		p.SlowRanks = make(map[int]time.Duration, len(sp.SlowRanks))
		for r, d := range sp.SlowRanks {
			p.SlowRanks[r] = d
		}
	}
	return p
}

// String renders the spec in the -faults flag grammar.
func (sp FaultSpec) String() string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if sp.Drop > 0 {
		add(fmt.Sprintf("drop=%g", sp.Drop))
	}
	if sp.Dup > 0 {
		add(fmt.Sprintf("dup=%g", sp.Dup))
	}
	if sp.DelayMin > 0 {
		add(fmt.Sprintf("delaymin=%v", sp.DelayMin))
	}
	if sp.DelayMax > 0 {
		add(fmt.Sprintf("delay=%v", sp.DelayMax))
	}
	if sp.Seed != 0 {
		add(fmt.Sprintf("seed=%d", sp.Seed))
	}
	ranks := make([]int, 0, len(sp.SlowRanks))
	for r := range sp.SlowRanks {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		add(fmt.Sprintf("slow=%d:%v", r, sp.SlowRanks[r]))
	}
	if sp.RetryBase > 0 {
		add(fmt.Sprintf("retry=%v", sp.RetryBase))
	}
	if sp.RetryCap > 0 {
		add(fmt.Sprintf("retrycap=%v", sp.RetryCap))
	}
	return strings.Join(parts, ",")
}

// ParseFaultSpec parses the -faults flag grammar: comma-separated
// key=value pairs from
//
//	drop=0.01 dup=0.01 delay=5ms delaymin=1ms seed=42
//	slow=3:2ms (repeatable) retry=2ms retrycap=64ms
//
// An empty string parses to the empty spec. Ranges are validated
// (without rank bounds; callers with a known rank count should
// re-Validate).
func ParseFaultSpec(s string) (FaultSpec, error) {
	var sp FaultSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return sp, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return sp, fmt.Errorf("comm: fault spec %q: want key=value", field)
		}
		var err error
		switch key {
		case "drop":
			sp.Drop, err = strconv.ParseFloat(val, 64)
		case "dup":
			sp.Dup, err = strconv.ParseFloat(val, 64)
		case "delay":
			sp.DelayMax, err = time.ParseDuration(val)
		case "delaymin":
			sp.DelayMin, err = time.ParseDuration(val)
		case "seed":
			sp.Seed, err = strconv.ParseInt(val, 10, 64)
		case "slow":
			rankStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return sp, fmt.Errorf("comm: fault spec slow=%q: want rank:duration", val)
			}
			var r int
			var d time.Duration
			if r, err = strconv.Atoi(rankStr); err == nil {
				if d, err = time.ParseDuration(durStr); err == nil {
					if sp.SlowRanks == nil {
						sp.SlowRanks = make(map[int]time.Duration)
					}
					sp.SlowRanks[r] = d
				}
			}
		case "retry":
			sp.RetryBase, err = time.ParseDuration(val)
		case "retrycap":
			sp.RetryCap, err = time.ParseDuration(val)
		default:
			return sp, fmt.Errorf("comm: fault spec: unknown key %q", key)
		}
		if err != nil {
			return sp, fmt.Errorf("comm: fault spec %q: %v", field, err)
		}
	}
	return sp, sp.Validate(0)
}

// FaultPlan is the transport-level fault schedule: per-kind drop and
// duplication probabilities plus a delivery delay window and per-rank
// straggler penalties. Install with Network.SetFaultPlan before any
// traffic flows; a nil plan (the default) costs Send one pointer load.
//
// Dropping or duplicating a kind is only safe when the layer above
// recovers: the amt runtime retransmits and deduplicates its epoch
// kinds and refuses plans that touch its control kinds.
type FaultPlan struct {
	Seed               int64
	Drop, Dup          [MaxKinds]float64
	DelayMin, DelayMax time.Duration
	SlowRanks          map[int]time.Duration
}

// active reports whether the plan can affect any delivery at all.
func (p *FaultPlan) active() bool {
	if p == nil {
		return false
	}
	if p.DelayMin > 0 || p.DelayMax > 0 || len(p.SlowRanks) > 0 {
		return true
	}
	for k := range p.Drop {
		if p.Drop[k] > 0 || p.Dup[k] > 0 {
			return true
		}
	}
	return false
}

func (p *FaultPlan) validate() {
	for k := range p.Drop {
		if p.Drop[k] < 0 || p.Drop[k] >= 1 || p.Dup[k] < 0 || p.Dup[k] >= 1 {
			panic(fmt.Sprintf("comm: SetFaultPlan: kind %d probabilities out of [0,1)", k))
		}
	}
	if p.DelayMin < 0 || p.DelayMax < p.DelayMin {
		panic(fmt.Sprintf("comm: SetFaultPlan: bad delay window [%v,%v]", p.DelayMin, p.DelayMax))
	}
	for r, d := range p.SlowRanks {
		if d < 0 {
			panic(fmt.Sprintf("comm: SetFaultPlan: slow rank %d penalty %v < 0", r, d))
		}
	}
}

// clone deep-copies the plan so later caller mutations cannot race Send.
func (p *FaultPlan) clone() *FaultPlan {
	c := *p
	if len(p.SlowRanks) > 0 {
		c.SlowRanks = make(map[int]time.Duration, len(p.SlowRanks))
		for r, d := range p.SlowRanks {
			c.SlowRanks[r] = d
		}
	}
	return &c
}

// Decision salts: each fault question about the same message draws an
// independent word from the hash.
const (
	saltDrop uint64 = 1 + iota
	saltDup
	saltDelay
	saltDupDelay
)

// faultWord hashes (seed, sender, per-sender sequence, salt) into a
// uniform 64-bit word — a stateless splitmix-style finalizer, so
// concurrent senders need no shared RNG state and a retransmission
// (which gets a fresh transport sequence number) gets a fresh decision.
func faultWord(seed int64, from int, seq int64, salt uint64) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(from+1)*0xff51afd7ed558ccd ^
		uint64(seq)*0xc4ceb9fe1a85ec53 ^ salt*0x2545f4914f6cdd1d
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// faultUniform maps a fault word to [0,1).
func faultUniform(seed int64, from int, seq int64, salt uint64) float64 {
	return float64(faultWord(seed, from, seq, salt)>>11) / (1 << 53)
}

// delayFor draws the delivery delay for one copy of m: a uniform draw
// from the window plus the straggler penalties of the endpoints.
func (p *FaultPlan) delayFor(m Message, salt uint64) time.Duration {
	d := p.DelayMin
	if w := p.DelayMax - p.DelayMin; w > 0 {
		d += time.Duration(faultWord(p.Seed, m.From, m.Seq, salt) % uint64(w))
	}
	if len(p.SlowRanks) > 0 {
		d += p.SlowRanks[m.From] + p.SlowRanks[m.To]
	}
	return d
}
