package comm

import "reflect"

// EstimateBytes approximates the wire size of an arbitrary payload by
// walking it with reflection: fixed-size kinds count their in-memory
// width, strings and slices their headers plus contents, maps a
// per-entry overhead plus keys and values. Unlike MeasureBytes it needs
// no gob registration, so it can size the runtime's envelopes whose
// interface-typed fields hold arbitrary application data — that is what
// the transport's byte accounting uses. Shared pointers are counted
// once; cyclic structures terminate.
func EstimateBytes(v any) int {
	if v == nil {
		return 0
	}
	seen := map[uintptr]bool{}
	return sizeOf(reflect.ValueOf(v), seen)
}

const (
	ptrSize       = 8
	sliceHeader   = 3 * ptrSize
	stringHeader  = 2 * ptrSize
	ifaceHeader   = 2 * ptrSize
	mapEntryExtra = ptrSize // bucket bookkeeping per entry, roughly
)

func sizeOf(v reflect.Value, seen map[uintptr]bool) int {
	switch v.Kind() {
	case reflect.Bool, reflect.Int8, reflect.Uint8:
		return 1
	case reflect.Int16, reflect.Uint16:
		return 2
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 4
	case reflect.Int64, reflect.Uint64, reflect.Float64,
		reflect.Int, reflect.Uint, reflect.Uintptr:
		return 8
	case reflect.Complex64:
		return 8
	case reflect.Complex128:
		return 16
	case reflect.String:
		return stringHeader + v.Len()
	case reflect.Slice:
		if v.IsNil() {
			return sliceHeader
		}
		n := sliceHeader
		if elemFixed(v.Type().Elem()) {
			return n + v.Len()*int(v.Type().Elem().Size())
		}
		for i := 0; i < v.Len(); i++ {
			n += sizeOf(v.Index(i), seen)
		}
		return n
	case reflect.Array:
		if elemFixed(v.Type().Elem()) {
			return int(v.Type().Size())
		}
		n := 0
		for i := 0; i < v.Len(); i++ {
			n += sizeOf(v.Index(i), seen)
		}
		return n
	case reflect.Map:
		if v.IsNil() {
			return ptrSize
		}
		n := ptrSize
		iter := v.MapRange()
		for iter.Next() {
			n += mapEntryExtra + sizeOf(iter.Key(), seen) + sizeOf(iter.Value(), seen)
		}
		return n
	case reflect.Struct:
		n := 0
		for i := 0; i < v.NumField(); i++ {
			n += sizeOf(v.Field(i), seen)
		}
		return n
	case reflect.Pointer:
		if v.IsNil() {
			return ptrSize
		}
		if p := v.Pointer(); seen[p] {
			return ptrSize
		} else {
			seen[p] = true
		}
		return ptrSize + sizeOf(v.Elem(), seen)
	case reflect.Interface:
		if v.IsNil() {
			return ifaceHeader
		}
		return ifaceHeader + sizeOf(v.Elem(), seen)
	default:
		// Chan, Func, UnsafePointer: count the word, contents are not
		// meaningful on a wire anyway.
		return ptrSize
	}
}

// elemFixed reports whether a type's size is fully captured by
// Type.Size() — no indirection to chase.
func elemFixed(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return elemFixed(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !elemFixed(t.Field(i).Type) {
				return false
			}
		}
		return true
	}
	return false
}
