package comm

import "time"

// Transport is the pluggable message substrate underneath the AMT
// runtime. The in-memory Network is the reference implementation; the
// wire package's socket transport embeds a partial Network and forwards
// remote traffic over TCP or Unix domain sockets. The runtime holds a
// Transport, never a concrete type, so the protocol stack above cannot
// observe which one it is running on — the cross-transport identity
// tests pin that down to the bit level.
//
// Semantics every implementation must provide:
//
//   - Send never blocks and stamps a per-sender sequence number; fault
//     plans (SetFaultPlan) are applied exactly once, at the sending
//     side, keyed by that sequence number.
//   - Per-sender FIFO order is preserved for undelayed deliveries.
//   - Recv* methods serve only ranks inside LocalRange; a transport
//     hosting a slice of a larger job forwards everything else.
//   - Close drains: no message accepted by Send before Close may be
//     lost because of Close (delayed deliveries land, outbound wire
//     queues flush before the connection drops).
type Transport interface {
	// NumRanks returns the total rank count of the job, across every
	// process participating in it.
	NumRanks() int
	// LocalRange returns the contiguous half-open rank range [lo, hi)
	// hosted by this transport instance. The in-memory Network hosts
	// every rank: (0, NumRanks).
	LocalRange() (lo, hi int)

	Send(Message)
	Recv(rank int) (Message, bool)
	RecvBatch(rank int, buf []Message) []Message
	RecvWait(rank int) (Message, bool)
	RecvWaitTimeout(rank int, d time.Duration) (m Message, ok, timedOut bool)
	Pending(rank int) int

	Close()
	Closed() bool

	SetFaultPlan(*FaultPlan)
	SetJitter(max time.Duration)

	EnableByteAccounting()
	ByteAccounting() bool
	TotalSent() int64
	SentByKind(Kind) int64
	BytesByKind(Kind) int64
	DroppedByKind(Kind) int64
	DuplicatedByKind(Kind) int64
	TotalDropped() int64
	TotalDuplicated() int64
	TotalBytes() int64
}

// The in-memory Network is the reference Transport.
var _ Transport = (*Network)(nil)

// WireStats are the cross-process counters of a socket-backed
// transport: encoded frames and payload bytes in each direction, the
// number of connected peer processes, and redials (connection attempts
// beyond the first per peer). All counters are cumulative.
type WireStats struct {
	FramesOut, BytesOut int64
	FramesIn, BytesIn   int64
	Peers               int64
	Redials             int64
	// QueueHighWater is the deepest per-peer writer queue observed (in
	// messages, across all peers) — the early-warning gauge for a peer
	// that has stopped draining.
	QueueHighWater int64
}

// WireStater is implemented by transports that move bytes between
// processes; the runtime folds the stats into its metrics registry and
// observability frames. The in-memory Network does not implement it.
type WireStater interface {
	WireStats() WireStats
}

// RTTHinter is implemented by transports that can estimate the round
// trip time to their slowest peer. The runtime folds the estimate into
// the default retransmission timeout of its reliability layer, so
// retries pace to real network latency instead of the in-memory
// defaults.
type RTTHinter interface {
	RTTHint() time.Duration
}
