package comm

import (
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	sp, err := ParseFaultSpec("drop=0.01,dup=0.02,delay=5ms,delaymin=1ms,seed=42,slow=3:2ms,retry=2ms,retrycap=64ms")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultSpec{
		Seed: 42, Drop: 0.01, Dup: 0.02,
		DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond,
		SlowRanks: map[int]time.Duration{3: 2 * time.Millisecond},
		RetryBase: 2 * time.Millisecond, RetryCap: 64 * time.Millisecond,
	}
	if sp.Seed != want.Seed || sp.Drop != want.Drop || sp.Dup != want.Dup ||
		sp.DelayMin != want.DelayMin || sp.DelayMax != want.DelayMax ||
		sp.RetryBase != want.RetryBase || sp.RetryCap != want.RetryCap ||
		len(sp.SlowRanks) != 1 || sp.SlowRanks[3] != 2*time.Millisecond {
		t.Fatalf("parsed %+v, want %+v", sp, want)
	}
	// The String rendering round-trips.
	back, err := ParseFaultSpec(sp.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != sp.String() {
		t.Fatalf("round trip %q != %q", back.String(), sp.String())
	}

	if sp, err := ParseFaultSpec("  "); err != nil || !sp.Empty() {
		t.Fatalf("blank spec: %+v, %v", sp, err)
	}
	for _, bad := range []string{
		"drop", "drop=x", "drop=1.5", "dup=-1", "delay=8", "wat=1",
		"slow=3", "slow=a:1ms", "slow=0:-1ms", "delaymin=5ms,delay=1ms",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("ParseFaultSpec(%q): expected error", bad)
		}
	}
}

func TestFaultSpecValidateRankBounds(t *testing.T) {
	sp := FaultSpec{SlowRanks: map[int]time.Duration{5: time.Millisecond}}
	if err := sp.Validate(0); err != nil {
		t.Fatalf("unbounded validation rejected rank 5: %v", err)
	}
	if err := sp.Validate(4); err == nil {
		t.Fatal("rank 5 of 4 accepted")
	}
}

// drainAll closes the network and collects every message queued for rank.
func drainAll(nw *Network, rank int) []Message {
	nw.Close()
	var out []Message
	for {
		m, ok := nw.RecvWait(rank)
		if !ok {
			return out
		}
		out = append(out, m)
	}
}

func TestFaultPlanDropIsSeededAndDeterministic(t *testing.T) {
	run := func() (delivered map[int]bool, dropped int64) {
		nw := NewNetwork(2)
		plan := &FaultPlan{Seed: 7}
		plan.Drop[0] = 0.3
		nw.SetFaultPlan(plan)
		for i := 0; i < 400; i++ {
			nw.Send(Message{From: 0, To: 1, Data: i})
		}
		delivered = make(map[int]bool)
		for _, m := range drainAll(nw, 1) {
			delivered[m.Data.(int)] = true
		}
		return delivered, nw.TotalDropped()
	}
	d1, n1 := run()
	d2, n2 := run()
	if n1 == 0 || len(d1) == 400 {
		t.Fatalf("drop plan dropped nothing (%d dropped, %d delivered)", n1, len(d1))
	}
	if int64(400-len(d1)) != n1 {
		t.Fatalf("dropped counter %d != missing %d", n1, 400-len(d1))
	}
	if n1 != n2 || len(d1) != len(d2) {
		t.Fatalf("runs differ: %d/%d vs %d/%d", n1, len(d1), n2, len(d2))
	}
	for v := range d1 {
		if !d2[v] {
			t.Fatalf("message %d delivered in run 1 but dropped in run 2", v)
		}
	}
	if got := nwDropOther(t); got != 0 {
		t.Fatalf("unrelated kind dropped %d", got)
	}
}

// nwDropOther checks that a kind outside the plan's drop set is
// untouched.
func nwDropOther(t *testing.T) int64 {
	nw := NewNetwork(2)
	plan := &FaultPlan{Seed: 7}
	plan.Drop[0] = 0.9
	nw.SetFaultPlan(plan)
	for i := 0; i < 100; i++ {
		nw.Send(Message{From: 0, To: 1, Kind: 2, Data: i})
	}
	if got := len(drainAll(nw, 1)); got != 100 {
		t.Fatalf("kind 2 lost messages: %d of 100", got)
	}
	return nw.DroppedByKind(2)
}

func TestFaultPlanDuplication(t *testing.T) {
	nw := NewNetwork(2)
	plan := &FaultPlan{Seed: 11}
	plan.Dup[0] = 0.5
	nw.SetFaultPlan(plan)
	const n = 300
	for i := 0; i < n; i++ {
		nw.Send(Message{From: 0, To: 1, Data: i})
	}
	copies := make(map[int]int)
	for _, m := range drainAll(nw, 1) {
		copies[m.Data.(int)]++
	}
	dups := nw.TotalDuplicated()
	if dups == 0 {
		t.Fatal("dup plan duplicated nothing")
	}
	total, doubled := 0, int64(0)
	for v := 0; v < n; v++ {
		c := copies[v]
		if c < 1 || c > 2 {
			t.Fatalf("message %d delivered %d times", v, c)
		}
		total += c
		if c == 2 {
			doubled++
		}
	}
	if doubled != dups || int64(total) != int64(n)+dups {
		t.Fatalf("copies %d, doubled %d, dup counter %d", total, doubled, dups)
	}
	if got := nw.DuplicatedByKind(0); got != dups {
		t.Fatalf("DuplicatedByKind(0) = %d, want %d", got, dups)
	}
}

func TestFaultPlanDelayAndSlowRanksDeliverEverything(t *testing.T) {
	nw := NewNetwork(3)
	nw.SetFaultPlan(&FaultPlan{
		Seed:     3,
		DelayMin: 500 * time.Microsecond,
		DelayMax: 2 * time.Millisecond,
		SlowRanks: map[int]time.Duration{
			2: time.Millisecond,
		},
	})
	const n = 100
	start := time.Now()
	for i := 0; i < n; i++ {
		nw.Send(Message{From: 0, To: 1, Data: i})
		nw.Send(Message{From: 0, To: 2, Data: i})
	}
	got1 := len(drainAll(nw, 1))
	got2 := 0
	for {
		if _, ok := nw.RecvWait(2); !ok {
			break
		}
		got2++
	}
	if got1 != n || got2 != n {
		t.Fatalf("delivered %d/%d and %d/%d", got1, n, got2, n)
	}
	// Every delivery waited at least DelayMin (and the straggler rank at
	// least DelayMin + its penalty), so the drain cannot complete
	// instantly.
	if elapsed := time.Since(start); elapsed < 500*time.Microsecond {
		t.Fatalf("drain finished in %v, delays not applied", elapsed)
	}
}

func TestSetFaultPlanAfterTrafficPanics(t *testing.T) {
	nw := NewNetwork(2)
	nw.Send(Message{From: 0, To: 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic installing a fault plan after traffic")
		}
	}()
	nw.SetFaultPlan(&FaultPlan{DelayMax: time.Millisecond})
}

func TestSetJitterAfterTrafficPanics(t *testing.T) {
	nw := NewNetwork(2)
	nw.Send(Message{From: 0, To: 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic setting jitter after traffic")
		}
	}()
	nw.SetJitter(time.Millisecond)
}

func TestSetFaultPlanValidatesRanges(t *testing.T) {
	nw := NewNetwork(2)
	plan := &FaultPlan{}
	plan.Drop[0] = 1.0
	defer func() {
		if recover() == nil {
			t.Error("expected panic on drop probability 1.0")
		}
	}()
	nw.SetFaultPlan(plan)
}

func TestEmptyFaultPlanIsInert(t *testing.T) {
	nw := NewNetwork(2)
	nw.SetFaultPlan(&FaultPlan{Seed: 99}) // active() is false: stored as nil
	for i := 0; i < 50; i++ {
		nw.Send(Message{From: 0, To: 1, Data: i})
	}
	// Per-sender FIFO holds exactly as without any plan.
	for i := 0; i < 50; i++ {
		m, ok := nw.Recv(1)
		if !ok || m.Data.(int) != i {
			t.Fatalf("message %d out of order or missing (%v, %v)", i, m.Data, ok)
		}
	}
	if nw.TotalDropped() != 0 || nw.TotalDuplicated() != 0 {
		t.Fatal("empty plan produced faults")
	}
}

func TestRecvWaitTimeout(t *testing.T) {
	nw := NewNetwork(2)
	if _, ok, timedOut := nw.RecvWaitTimeout(1, 2*time.Millisecond); ok || !timedOut {
		t.Fatalf("empty inbox: ok=%v timedOut=%v", ok, timedOut)
	}
	nw.Send(Message{From: 0, To: 1, Data: 9})
	m, ok, timedOut := nw.RecvWaitTimeout(1, time.Second)
	if !ok || timedOut || m.Data.(int) != 9 {
		t.Fatalf("queued message: ok=%v timedOut=%v data=%v", ok, timedOut, m.Data)
	}
	// A message arriving mid-wait wakes the receiver before the deadline.
	go func() {
		time.Sleep(2 * time.Millisecond)
		nw.Send(Message{From: 0, To: 1, Data: 10})
	}()
	m, ok, timedOut = nw.RecvWaitTimeout(1, 5*time.Second)
	if !ok || timedOut || m.Data.(int) != 10 {
		t.Fatalf("mid-wait message: ok=%v timedOut=%v data=%v", ok, timedOut, m.Data)
	}
	nw.Close()
	if _, ok, timedOut := nw.RecvWaitTimeout(1, time.Second); ok || timedOut {
		t.Fatalf("closed network: ok=%v timedOut=%v", ok, timedOut)
	}
}
