package wire

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"

	"temperedlb/internal/comm"
)

// testPayload exercises every encoder primitive, including the
// nil-vs-empty slice distinction and a nested Any.
type testPayload struct {
	A     int64
	B     []float64
	Flag  bool
	Inner any
}

type innerPayload struct {
	X float64
}

var registerTestPayloads = sync.OnceFunc(func() {
	RegisterPayload(200, func(e *Encoder, p testPayload) {
		e.I64(p.A)
		e.F64Slice(p.B)
		e.Bool(p.Flag)
		e.Any(p.Inner)
	}, func(d *Decoder) testPayload {
		return testPayload{
			A:     d.I64(),
			B:     d.F64Slice(),
			Flag:  d.Bool(),
			Inner: d.Any(),
		}
	})
	RegisterPayload(201, func(e *Encoder, p innerPayload) {
		e.F64(p.X)
	}, func(d *Decoder) innerPayload {
		return innerPayload{X: d.F64()}
	})
})

// frameBody strips the length word and the version+type header from a
// single encoded frame, returning the body a readFrame caller would
// hand to DecodeMessage.
func frameBody(t *testing.T, frame []byte) []byte {
	t.Helper()
	if len(frame) < 4+frameHeaderLen {
		t.Fatalf("frame too short: %d bytes", len(frame))
	}
	return frame[4+frameHeaderLen:]
}

func TestMessageRoundTrip(t *testing.T) {
	registerTestPayloads()
	msgs := []comm.Message{
		{From: 0, To: 1, Kind: comm.Kind(0), Handler: 7, Seq: 1, MsgID: 42, Data: nil},
		{From: 3, To: 0, Kind: comm.Kind(2), Handler: -1, Seq: 99, MsgID: -5,
			Data: testPayload{A: -12345, B: []float64{1.5, math.Inf(1), math.Copysign(0, -1)}, Flag: true,
				Inner: innerPayload{X: 2.25}}},
		{From: 1, To: 2, Kind: comm.Kind(5), Handler: 0, Seq: 0, MsgID: 0,
			Data: testPayload{A: 0, B: []float64{}, Flag: false}},
		{From: 2, To: 3, Kind: comm.Kind(1), Handler: 3, Seq: 8, MsgID: 9,
			Data: testPayload{A: 1, B: nil, Flag: true}},
	}
	for i, m := range msgs {
		frame := AppendMessage(nil, m)
		got, err := DecodeMessage(frameBody(t, frame), 4)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("msg %d: round trip mismatch:\n got %+v\nwant %+v", i, got, m)
		}
		// nil-vs-empty must survive, not just DeepEqual-match.
		if tp, ok := m.Data.(testPayload); ok {
			gp := got.Data.(testPayload)
			if (tp.B == nil) != (gp.B == nil) {
				t.Errorf("msg %d: nil-vs-empty slice not preserved: sent nil=%v got nil=%v", i, tp.B == nil, gp.B == nil)
			}
		}
	}
}

func TestEncodingDeterministic(t *testing.T) {
	registerTestPayloads()
	m := comm.Message{From: 1, To: 0, Kind: 3, Handler: 2, Seq: 17, MsgID: 4,
		Data: testPayload{A: 7, B: []float64{3.14}, Flag: true, Inner: innerPayload{X: -1}}}
	a := AppendMessage(nil, m)
	b := AppendMessage(nil, m)
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodings of the same message differ:\n%x\n%x", a, b)
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	registerTestPayloads()
	m := comm.Message{From: 0, To: 1, Kind: 1, Seq: 1, MsgID: 1}
	good := frameBody(t, AppendMessage(nil, m))

	cases := []struct {
		name  string
		body  []byte
		ranks int
	}{
		{"truncated", good[:len(good)-3], 2},
		{"empty", nil, 2},
		{"trailing garbage", append(append([]byte(nil), good...), 0xFF), 2},
		{"from out of range", frameBody(t, AppendMessage(nil, comm.Message{From: 5, To: 1})), 2},
		{"to out of range", frameBody(t, AppendMessage(nil, comm.Message{From: 0, To: 2})), 2},
		{"kind out of range", frameBody(t, AppendMessage(nil, comm.Message{From: 0, To: 1, Kind: comm.MaxKinds})), 2},
	}
	for _, tc := range cases {
		if _, err := DecodeMessage(tc.body, tc.ranks); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}

	// Unknown payload id must error, never panic.
	var e Encoder
	start := beginFrame(&e, frameMessage)
	e.U32(0)
	e.U32(1)
	e.U16(0)
	e.I32(0)
	e.I64(1)
	e.I64(1)
	e.U16(9999) // unregistered payload id
	body := frameBody(t, endFrame(&e, start))
	if _, err := DecodeMessage(body, 2); err == nil {
		t.Error("unknown payload id: want error, got nil")
	}
}

func TestEncodeUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("encoding an unregistered payload type should panic")
		}
	}()
	type nobody struct{ X int }
	var e Encoder
	e.Any(nobody{1})
}

func TestHelloRoundTrip(t *testing.T) {
	h := helloBody{JobID: 0xDEADBEEF, Ranks: 12, Nodes: 3, Node: 2, Lo: 8, Hi: 12}
	frame := appendHello(nil, h)
	got, err := decodeHello(frame[4+frameHeaderLen:])
	if err != nil {
		t.Fatalf("decode hello: %v", err)
	}
	if got != h {
		t.Fatalf("hello round trip: got %+v want %+v", got, h)
	}
	if _, err := decodeHello(frame[4+frameHeaderLen : len(frame)-2]); err == nil {
		t.Error("truncated hello: want error")
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0x01})
	d.U64() // fails: only 1 byte
	if d.Err() == nil {
		t.Fatal("want truncation error")
	}
	first := d.Err()
	if v := d.U32(); v != 0 {
		t.Errorf("read after error should return zero, got %d", v)
	}
	if d.Err() != first {
		t.Error("sticky error was overwritten")
	}
}

func TestF64SliceLengthBomb(t *testing.T) {
	// A claimed length far beyond the buffer must error before
	// allocating.
	var e Encoder
	e.U32(1 << 30)
	d := NewDecoder(e.Bytes())
	if v := d.F64Slice(); v != nil || d.Err() == nil {
		t.Fatalf("length bomb: want nil+error, got %d entries, err=%v", len(v), d.Err())
	}
}

func TestSplitRanks(t *testing.T) {
	cases := []struct {
		n, m int
		want []NodeSpec
	}{
		{4, 1, []NodeSpec{{Node: 0, Lo: 0, Hi: 4}}},
		{4, 2, []NodeSpec{{Node: 0, Lo: 0, Hi: 2}, {Node: 1, Lo: 2, Hi: 4}}},
		{5, 2, []NodeSpec{{Node: 0, Lo: 0, Hi: 3}, {Node: 1, Lo: 3, Hi: 5}}},
		{3, 3, []NodeSpec{{Node: 0, Lo: 0, Hi: 1}, {Node: 1, Lo: 1, Hi: 2}, {Node: 2, Lo: 2, Hi: 3}}},
	}
	for _, tc := range cases {
		got := SplitRanks(tc.n, tc.m)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitRanks(%d,%d) = %+v, want %+v", tc.n, tc.m, got, tc.want)
		}
	}
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {2, 3}} {
		func() {
			defer func() { recover() }()
			SplitRanks(bad[0], bad[1])
			t.Errorf("SplitRanks(%d,%d) should panic", bad[0], bad[1])
		}()
	}
}

func TestParsePeers(t *testing.T) {
	specs, err := ParsePeers("# comment\n1 127.0.0.1:9002\n\n0 127.0.0.1:9001\n", 4, 2)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []NodeSpec{
		{Node: 0, Lo: 0, Hi: 2, Addr: "127.0.0.1:9001"},
		{Node: 1, Lo: 2, Hi: 4, Addr: "127.0.0.1:9002"},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("got %+v want %+v", specs, want)
	}
	for name, content := range map[string]string{
		"missing node":   "0 a:1\n",
		"duplicate node": "0 a:1\n0 b:2\n",
		"bad index":      "7 a:1\n0 b:2\n",
		"malformed line": "0 a:1 extra\n1 b:2\n",
	} {
		if _, err := ParsePeers(content, 4, 2); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
