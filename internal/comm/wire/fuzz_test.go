package wire

import (
	"bufio"
	"bytes"
	"testing"

	"temperedlb/internal/comm"
)

// FuzzDecodeMessage asserts the message-body decoder errors — never
// panics, never over-allocates — on arbitrary input. Seeded with valid
// encodings so the fuzzer starts from the interesting part of the
// input space.
func FuzzDecodeMessage(f *testing.F) {
	registerTestPayloads()
	f.Add([]byte(nil))
	f.Add(frameBodyRaw(AppendMessage(nil, comm.Message{From: 0, To: 1, Kind: 1, Seq: 1, MsgID: 1})))
	f.Add(frameBodyRaw(AppendMessage(nil, comm.Message{From: 1, To: 0, Kind: 2, Seq: 3, MsgID: 4,
		Data: testPayload{A: 5, B: []float64{1, 2, 3}, Flag: true, Inner: innerPayload{X: 9}}})))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := DecodeMessage(body, 8)
		if err == nil {
			// A successful decode must re-encode to the same body.
			again := frameBodyRaw(AppendMessage(nil, m))
			if !bytes.Equal(again, body) {
				t.Fatalf("decode/encode not a fixpoint:\n in %x\nout %x", body, again)
			}
		}
	})
}

// FuzzReadFrame asserts the stream framer errors — never panics — on
// truncated, oversized and garbage byte streams.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendMessage(nil, comm.Message{From: 0, To: 1, Kind: 1, Seq: 1, MsgID: 1}))
	f.Add(appendBye(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})             // length 2^32-1: over the limit
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})             // length 0: under the header
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, 0x63, 0x02}) // wrong version
	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReader(bytes.NewReader(stream))
		for {
			_, _, err := readFrame(br, nil)
			if err != nil {
				return
			}
		}
	})
}

func frameBodyRaw(frame []byte) []byte { return frame[4+frameHeaderLen:] }
