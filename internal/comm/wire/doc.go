// Package wire carries the comm.Transport contract across OS process
// boundaries: a length-prefixed, versioned binary codec over TCP or
// Unix-domain sockets, with per-peer connection management, dial
// backoff and a graceful close-drain. Where the in-memory Network
// plays the role of the paper's MPI layer inside one process, this
// package plays it between processes — cmd/lbnode hosts one Transport
// per process and a balancing job spans as many machines as the
// rendezvous map names. The codec is hand-rolled rather than
// gob/protobuf so the byte layout is deterministic (fixed field order,
// big-endian, explicit version byte) and the frame decoder can be
// fuzzed against truncation, oversizing and garbage without ever
// panicking.
//
// The Transport embeds a partial in-memory Network for its local rank
// range, so sequence stamping, byte accounting and fault injection are
// exactly the single-process code paths; only messages whose
// destination rank lives elsewhere are encoded and shipped. That
// layering is what keeps DistResult bit-identical across
// memory/unix/tcp (TestCrossTransportIdentity): the protocol stack
// cannot observe which substrate it runs on, and the amt reliability
// layer makes wire-level reordering and loss invisible above it.
// Payload types cross the wire through an explicit registry
// (RegisterPayload) with fixed PayloadIDs — 1–31 runtime, 32–63
// balancer, 64+ applications — never by reflection.
//
// # Concurrency
//
// Send runs on the calling rank's goroutine and only appends to a
// per-peer queue under that peer's lock; a dedicated writer goroutine
// per peer owns the socket, so Send never blocks on the network and no
// socket write ever happens under a lock. One reader goroutine per
// inbound connection decodes frames and injects them into the local
// Network, which is the same cross-goroutine boundary as the
// single-process case. Close drains writers (flush, BYE, half-close),
// then readers (until peer BYEs), bounded by DrainTimeout; any fatal
// wire error tears the whole transport down so blocked ranks observe a
// closed network instead of hanging on a dead peer.
package wire
