package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"

	"temperedlb/internal/comm"
)

// Version is the wire protocol version carried in every frame header.
// Bump it on ANY change to the frame layout, the message body layout,
// or the meaning of an assigned payload id; peers speaking different
// versions refuse each other at the first frame rather than
// misinterpreting bytes.
const Version = 1

// Frame types. A frame is: u32 body length (big-endian, covering the
// two header bytes and the body) | u8 version | u8 type | body.
const (
	frameHello   byte = 1 + iota // handshake: job geometry, sent once per connection
	frameMessage                 // one comm.Message
	frameBye                     // orderly end-of-stream marker; no body
)

// MaxFrameSize bounds a frame's declared length. The runtime's
// messages are tiny (envelopes plus a knowledge vector or an object
// state); anything approaching this limit is a corrupt or hostile
// stream and is rejected before allocation.
const MaxFrameSize = 1 << 24

// maxPayloadDepth bounds Any-payload nesting so a crafted frame cannot
// recurse the decoder into stack exhaustion. Real traffic nests twice
// (envelope → application payload).
const maxPayloadDepth = 32

// frameHeaderLen is the byte length of the version+type header counted
// inside the frame's declared length.
const frameHeaderLen = 2

// PayloadID names a registered payload codec on the wire. IDs are part
// of the protocol: the same type must carry the same id in every
// process of a job (and changing an assignment is a Version bump).
// Id 0 is reserved for nil. The runtime owns 1–31, the balancer layers
// 32–63; applications must register at 64 and above.
type PayloadID uint16

// payloadEntry is one registered codec, with the typed encode/decode
// functions wrapped to any.
type payloadEntry struct {
	id  PayloadID
	typ reflect.Type
	enc func(*Encoder, any)
	dec func(*Decoder) any
}

var (
	regMu     sync.RWMutex
	regByType = map[reflect.Type]*payloadEntry{}
	regByID   = map[PayloadID]*payloadEntry{}
)

// RegisterPayload installs the wire codec for payload type T under the
// given id. Both ends of a job must register the same types under the
// same ids (normally via package init, so importing the package that
// owns the type is enough). Registering a duplicate id or type panics:
// payload identity is protocol, not configuration.
//
// The encode function must emit a deterministic byte sequence — fixed
// field order, fixed widths — because transport bytes feed accounting
// that experiments compare across runs.
func RegisterPayload[T any](id PayloadID, enc func(*Encoder, T), dec func(*Decoder) T) {
	if id == 0 {
		panic("wire: RegisterPayload: id 0 is reserved for nil payloads")
	}
	var zero T
	typ := reflect.TypeOf(zero)
	if typ == nil {
		panic("wire: RegisterPayload: T must not be an interface type")
	}
	e := &payloadEntry{
		id:  id,
		typ: typ,
		enc: func(en *Encoder, v any) { enc(en, v.(T)) },
		dec: func(d *Decoder) any { return dec(d) },
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, dup := regByID[id]; dup {
		panic(fmt.Sprintf("wire: payload id %d already registered for %v", id, prev.typ))
	}
	if prev, dup := regByType[typ]; dup {
		panic(fmt.Sprintf("wire: payload type %v already registered as id %d", typ, prev.id))
	}
	regByID[id] = e
	regByType[typ] = e
}

func lookupType(t reflect.Type) *payloadEntry {
	regMu.RLock()
	defer regMu.RUnlock()
	return regByType[t]
}

func lookupID(id PayloadID) *payloadEntry {
	regMu.RLock()
	defer regMu.RUnlock()
	return regByID[id]
}

// Encoder appends big-endian fixed-width fields to a buffer. The zero
// value is ready to use; Bytes returns the accumulated encoding.
// Encoders are not goroutine-safe.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer (owned by the encoder until Reset).
func (e *Encoder) Bytes() []byte {
	//lint:ignore scratchescape documented contract: the slice is owned by the encoder until Reset
	return e.buf
}

// Reset truncates the encoder, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) U8(v uint8)   { e.buf = append(e.buf, v) }
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *Encoder) I32(v int32)  { e.U32(uint32(v)) }
func (e *Encoder) I64(v int64)  { e.U64(uint64(v)) }

// F64 encodes the exact IEEE-754 bits, so a float survives the wire
// bit-identically (including negative zero and NaN payloads).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64Slice encodes a []float64 preserving nil-versus-empty: the length
// word is 0 for nil and len+1 otherwise. The distinction is protocol —
// a nil collective payload means "barrier", an empty one is a real
// zero-width result.
func (e *Encoder) F64Slice(v []float64) {
	if v == nil {
		e.U32(0)
		return
	}
	e.U32(uint32(len(v)) + 1)
	for _, f := range v {
		e.F64(f)
	}
}

// Any encodes a registered payload value prefixed by its PayloadID, or
// id 0 for nil. Unregistered types panic with the registration hint:
// sending such a value is a deploy-time wiring bug, not a runtime
// condition to recover from.
func (e *Encoder) Any(v any) {
	if v == nil {
		e.U16(0)
		return
	}
	ent := lookupType(reflect.TypeOf(v))
	if ent == nil {
		panic(fmt.Sprintf("wire: no payload codec registered for %T; register it with wire.RegisterPayload (application ids start at 64)", v))
	}
	e.U16(uint16(ent.id))
	ent.enc(e, v)
}

// Decoder reads the Encoder's format back with a sticky error: the
// first failed read records the error and every subsequent read
// returns a zero value without advancing. Decoding malformed input is
// therefore always safe — check Err once at the end. Decoders never
// panic on truncated, oversized or garbage input.
type Decoder struct {
	b     []byte
	off   int
	depth int
	err   error
}

// NewDecoder decodes the given buffer.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Failf records a decoding error from a registered payload codec (for
// validation the primitive readers cannot express, e.g. a claimed
// element count exceeding the remaining bytes). Like every decoder
// error it is sticky: the first one wins.
func (d *Decoder) Failf(format string, args ...any) { d.fail(format, args...) }

// take returns the next n bytes, or nil after recording a truncation
// error.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated input: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *Decoder) I32() int32   { return int32(d.U32()) }
func (d *Decoder) I64() int64   { return int64(d.U64()) }
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool accepts only the canonical encodings 0 and 1, keeping the wire
// format one-to-one: every value has exactly one byte sequence.
func (d *Decoder) Bool() bool {
	switch b := d.U8(); b {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool byte %d (want 0 or 1)", b)
		return false
	}
}

// F64Slice decodes F64Slice's nil-preserving layout, validating the
// claimed length against the remaining bytes before allocating.
func (d *Decoder) F64Slice() []float64 {
	word := d.U32()
	if word == 0 || d.err != nil {
		return nil
	}
	n := int(word - 1)
	if n*8 > d.Remaining() {
		d.fail("float slice of %d entries exceeds %d remaining bytes", n, d.Remaining())
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.F64()
	}
	return v
}

// Any decodes one registered payload (or nil for id 0). Unknown ids
// and over-deep nesting are recorded as errors, never panics.
func (d *Decoder) Any() any {
	if d.err != nil {
		return nil
	}
	d.depth++
	defer func() { d.depth-- }()
	if d.depth > maxPayloadDepth {
		d.fail("payload nesting deeper than %d", maxPayloadDepth)
		return nil
	}
	id := PayloadID(d.U16())
	if id == 0 || d.err != nil {
		return nil
	}
	ent := lookupID(id)
	if ent == nil {
		d.fail("unknown payload id %d (peer registered a codec this binary lacks?)", id)
		return nil
	}
	return ent.dec(d)
}

// AppendMessage appends one complete message frame (header included)
// for m to buf and returns the extended slice. The message body layout
// is, in order: u32 From, u32 To, u16 Kind, i32 Handler, i64 Seq,
// i64 MsgID, then the Any-encoded Data. Encoding is deterministic:
// equal messages produce equal bytes.
func AppendMessage(buf []byte, m comm.Message) []byte {
	var e Encoder
	e.buf = buf
	start := beginFrame(&e, frameMessage)
	e.U32(uint32(m.From))
	e.U32(uint32(m.To))
	e.U16(uint16(m.Kind))
	e.I32(m.Handler)
	e.I64(m.Seq)
	e.I64(m.MsgID)
	e.Any(m.Data)
	return endFrame(&e, start)
}

// DecodeMessage decodes a message frame body (the bytes after the
// version and type header). It errors — never panics — on truncated,
// oversized, trailing-garbage or unregistered-payload input.
func DecodeMessage(body []byte, totalRanks int) (comm.Message, error) {
	d := NewDecoder(body)
	var m comm.Message
	m.From = int(d.U32())
	m.To = int(d.U32())
	m.Kind = comm.Kind(d.U16())
	m.Handler = d.I32()
	m.Seq = d.I64()
	m.MsgID = d.I64()
	m.Data = d.Any()
	if d.err != nil {
		return comm.Message{}, d.err
	}
	if d.Remaining() != 0 {
		return comm.Message{}, fmt.Errorf("wire: %d trailing bytes after message", d.Remaining())
	}
	if m.From < 0 || m.From >= totalRanks || m.To < 0 || m.To >= totalRanks {
		return comm.Message{}, fmt.Errorf("wire: message endpoints %d->%d outside [0,%d)", m.From, m.To, totalRanks)
	}
	if m.Kind < 0 || m.Kind >= comm.MaxKinds {
		return comm.Message{}, fmt.Errorf("wire: message kind %d outside [0,%d)", m.Kind, comm.MaxKinds)
	}
	return m, nil
}

// helloBody is the decoded handshake frame: the sender's identity and
// its view of the job geometry. Every field is validated against the
// receiver's own configuration before any message flows.
type helloBody struct {
	JobID  uint64
	Ranks  int
	Nodes  int
	Node   int
	Lo, Hi int
}

func appendHello(buf []byte, h helloBody) []byte {
	var e Encoder
	e.buf = buf
	start := beginFrame(&e, frameHello)
	e.U64(h.JobID)
	e.U32(uint32(h.Ranks))
	e.U32(uint32(h.Nodes))
	e.U32(uint32(h.Node))
	e.U32(uint32(h.Lo))
	e.U32(uint32(h.Hi))
	return endFrame(&e, start)
}

func decodeHello(body []byte) (helloBody, error) {
	d := NewDecoder(body)
	h := helloBody{
		JobID: d.U64(),
		Ranks: int(d.U32()),
		Nodes: int(d.U32()),
		Node:  int(d.U32()),
		Lo:    int(d.U32()),
		Hi:    int(d.U32()),
	}
	if d.err != nil {
		return helloBody{}, d.err
	}
	if d.Remaining() != 0 {
		return helloBody{}, fmt.Errorf("wire: %d trailing bytes after hello", d.Remaining())
	}
	return h, nil
}

// appendBye appends the empty-body BYE frame.
func appendBye(buf []byte) []byte {
	var e Encoder
	e.buf = buf
	start := beginFrame(&e, frameBye)
	return endFrame(&e, start)
}

// beginFrame reserves the length word and writes the version+type
// header; endFrame backpatches the length.
func beginFrame(e *Encoder, ftype byte) int {
	start := len(e.buf)
	e.U32(0) // length placeholder
	e.U8(Version)
	e.U8(ftype)
	return start
}

func endFrame(e *Encoder, start int) []byte {
	binary.BigEndian.PutUint32(e.buf[start:], uint32(len(e.buf)-start-4))
	//lint:ignore scratchescape documented contract: the frame aliases the encoder's buffer until Reset
	return e.buf
}
