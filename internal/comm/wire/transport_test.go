package wire

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"temperedlb/internal/comm"
)

func testClusterEcho(t *testing.T, network string) {
	registerTestPayloads()
	const ranks, nodes = 6, 3
	c, err := NewCluster(network, ranks, nodes, 0x77)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Close()

	// Every rank sends one payload-bearing message to every other rank;
	// every rank must receive ranks-1 messages, each intact.
	for _, tr := range c.Transports {
		lo, hi := tr.LocalRange()
		for from := lo; from < hi; from++ {
			for to := 0; to < ranks; to++ {
				if to == from {
					continue
				}
				tr.Send(comm.Message{From: from, To: to, Kind: 1, Handler: int32(from),
					Data: testPayload{A: int64(from*100 + to), B: []float64{float64(to)}, Flag: true}})
			}
		}
	}
	for _, tr := range c.Transports {
		lo, hi := tr.LocalRange()
		for r := lo; r < hi; r++ {
			seen := map[int]bool{}
			for len(seen) < ranks-1 {
				m, ok, timedOut := tr.RecvWaitTimeout(r, 5*time.Second)
				if timedOut || !ok {
					t.Fatalf("%s: rank %d: got %d/%d messages then timed out (err=%v)", network, r, len(seen), ranks-1, tr.Err())
				}
				if m.To != r {
					t.Fatalf("rank %d received message for %d", r, m.To)
				}
				p, ok := m.Data.(testPayload)
				if !ok || p.A != int64(m.From*100+r) || len(p.B) != 1 || p.B[0] != float64(r) || !p.Flag {
					t.Fatalf("rank %d: corrupted payload from %d: %+v", r, m.From, m.Data)
				}
				if seen[m.From] {
					t.Fatalf("rank %d: duplicate from %d", r, m.From)
				}
				seen[m.From] = true
			}
		}
	}
	for _, tr := range c.Transports {
		st := tr.WireStats()
		if st.Peers != nodes-1 {
			t.Errorf("peers = %d, want %d", st.Peers, nodes-1)
		}
		if st.FramesOut == 0 || st.BytesOut == 0 || st.FramesIn == 0 || st.BytesIn == 0 {
			t.Errorf("wire stats not counting: %+v", st)
		}
	}
}

func TestClusterEchoUnix(t *testing.T) { testClusterEcho(t, "unix") }
func TestClusterEchoTCP(t *testing.T)  { testClusterEcho(t, "tcp") }

// TestCloseDrain is the no-message-loss contract: everything accepted
// by Send before Close — including fault-delayed deliveries — must
// reach the remote inbox, because the closing side flushes its
// outbound queues and delayed goroutines before its BYE, and the
// receiving side keeps injecting until that BYE arrives.
func TestCloseDrain(t *testing.T) {
	const ranks, nodes, burst = 2, 2, 2000
	c, err := NewCluster("unix", ranks, nodes, 0x88)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Close()
	sender, receiver := c.Transports[0], c.Transports[1]

	// A fault plan that delays some traffic stresses the drain: Close
	// must wait out the sleeping delivery goroutines too.
	spec, err := comm.ParseFaultSpec("delay=2ms,delaymin=1ms,seed=9")
	if err != nil {
		t.Fatalf("fault spec: %v", err)
	}
	sender.SetFaultPlan(spec.Plan())

	for i := 0; i < burst; i++ {
		sender.Send(comm.Message{From: 0, To: 1, Kind: 1, Handler: int32(i)})
	}
	closed := make(chan struct{})
	go func() { sender.Close(); close(closed) }()

	got := make([]bool, burst)
	count := 0
	for count < burst {
		m, ok, timedOut := receiver.RecvWaitTimeout(1, 10*time.Second)
		if timedOut || !ok {
			t.Fatalf("lost messages on close: got %d/%d (sender err=%v)", count, burst, sender.Err())
		}
		if got[m.Handler] {
			t.Fatalf("duplicate message %d", m.Handler)
		}
		got[m.Handler] = true
		count++
	}
	// Receiver's own Close sends its BYE, releasing the sender's drain.
	receiver.Close()
	select {
	case <-closed:
	case <-time.After(15 * time.Second):
		t.Fatal("sender Close did not complete after receiver closed")
	}
	if err := sender.Err(); err != nil {
		t.Fatalf("sender failed during drain: %v", err)
	}
}

// TestVersionMismatch proves a peer speaking a different protocol
// version is refused at the first frame with a diagnosable error.
func TestVersionMismatch(t *testing.T) {
	tr, err := New(Config{Network: "tcp", Ranks: 2, Nodes: 2, Self: 0})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer tr.Close()

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	hello := appendHello(nil, helloBody{Ranks: 2, Nodes: 2, Node: 1, Lo: 1, Hi: 2})
	hello[4] = Version + 1 // corrupt the version byte
	if _, err := conn.Write(hello); err != nil {
		t.Fatalf("write: %v", err)
	}
	waitForErr(t, tr, "version mismatch")
}

// TestGeometryMismatch proves two jobs that disagree on -ranks/-nodes
// cannot silently interconnect.
func TestGeometryMismatch(t *testing.T) {
	tr, err := New(Config{Network: "tcp", Ranks: 4, Nodes: 2, Self: 0})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	defer tr.Close()

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.Write(appendHello(nil, helloBody{Ranks: 8, Nodes: 2, Node: 1, Lo: 4, Hi: 8}))
	waitForErr(t, tr, "geometry mismatch")
}

func waitForErr(t *testing.T, tr *Transport, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := tr.Err(); err != nil {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("transport failed with %v, want %q", err, want)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("transport never recorded the %q error", want)
}

// TestRendezvous runs the coordinator protocol end to end: N clients
// check in concurrently (in arbitrary order, some before the
// coordinator publishes) and all receive the identical sorted map.
func TestRendezvous(t *testing.T) {
	const nodes = 4
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()

	serveDone := make(chan error, 1)
	go func() {
		_, err := ServeRendezvous(ln, nodes, 10*time.Second)
		serveDone <- err
	}()

	var wg sync.WaitGroup
	maps := make([][]NodeSpec, nodes)
	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			self := NodeSpec{Node: i, Lo: i * 2, Hi: i*2 + 2, Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
			maps[i], errs[i] = Rendezvous("tcp", addr, self, 10*time.Second)
		}(i)
	}
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i := 0; i < nodes; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		if len(maps[i]) != nodes {
			t.Fatalf("node %d got %d specs", i, len(maps[i]))
		}
		for j, s := range maps[i] {
			if s.Node != j || s.Addr != fmt.Sprintf("127.0.0.1:%d", 9000+j) {
				t.Fatalf("node %d spec %d: %+v", i, j, s)
			}
		}
	}
}

// TestRendezvousRefusesBadNode checks the coordinator rejects an
// out-of-range node id with an error the client surfaces, while the
// job's real nodes still complete.
func TestRendezvousRefusesBadNode(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	go ServeRendezvous(ln, 2, 10*time.Second)

	if _, err := Rendezvous("tcp", addr, NodeSpec{Node: 7, Addr: "x"}, 5*time.Second); err == nil {
		t.Fatal("out-of-range node id: want refusal")
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := Rendezvous("tcp", addr, NodeSpec{Node: i, Addr: "x"}, 5*time.Second); err != nil {
				t.Errorf("node %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

// TestWriterQueueSoftCapFailsLoud is the regression test for the
// unbounded-writer-queue bug: a peer whose writer never drains (stalled
// process, dead TCP window) used to grow its queue silently until this
// process OOMed. Now crossing Config.MaxQueue records a fatal transport
// error, and the deepest queue observed is exported via
// WireStats.QueueHighWater. The peer is hand-built with no writeLoop —
// the deterministic stand-in for a fully stalled writer — so the test
// needs no timing assumptions.
func TestWriterQueueSoftCapFailsLoud(t *testing.T) {
	tr, err := New(Config{Network: "tcp", Ranks: 2, Nodes: 2, Self: 0, MaxQueue: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tr.Close()

	ours, theirs := net.Pipe()
	defer ours.Close()
	defer theirs.Close()
	p := &peer{t: tr, node: 1, conn: ours, done: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	close(p.done) // no writeLoop: Close must not wait for one

	for i := 0; i < 8; i++ {
		p.enqueue(comm.Message{From: 0, To: 1})
		if err := tr.Err(); err != nil {
			t.Fatalf("enqueue %d within the cap failed the transport: %v", i+1, err)
		}
	}
	p.enqueue(comm.Message{From: 0, To: 1}) // 9th message crosses MaxQueue 8

	err = tr.Err()
	if err == nil {
		t.Fatal("queue overflow did not fail the transport")
	}
	if !strings.Contains(err.Error(), "MaxQueue") || !strings.Contains(err.Error(), "node 1") {
		t.Errorf("overflow error does not name the cap and peer: %v", err)
	}
	if hw := tr.WireStats().QueueHighWater; hw != 9 {
		t.Errorf("QueueHighWater = %d, want 9", hw)
	}
}

// TestWriterQueueCapDisabled: a negative MaxQueue restores the pre-cap
// behaviour (grow without failing) while still tracking the high-water
// stat for operators who prefer to watch it themselves.
func TestWriterQueueCapDisabled(t *testing.T) {
	tr, err := New(Config{Network: "tcp", Ranks: 2, Nodes: 2, Self: 0, MaxQueue: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tr.Close()

	ours, theirs := net.Pipe()
	defer ours.Close()
	defer theirs.Close()
	p := &peer{t: tr, node: 1, conn: ours, done: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	close(p.done)

	for i := 0; i < 100; i++ {
		p.enqueue(comm.Message{From: 0, To: 1})
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("disabled cap still failed the transport: %v", err)
	}
	if hw := tr.WireStats().QueueHighWater; hw != 100 {
		t.Errorf("QueueHighWater = %d, want 100", hw)
	}
}
