package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cluster is a set of socket transports for one job, all hosted in the
// current process. It exists for tests and for `lbplay -transport=unix`
// style demos: the protocol stack sees genuinely separate partial
// networks talking through the OS socket layer, without the
// orchestration cost of separate processes. Production jobs run one
// Transport per process via cmd/lbnode instead.
type Cluster struct {
	Transports []*Transport
	dir        string
}

// NewCluster listens, exchanges addresses, and connects `nodes`
// transports covering `ranks` ranks over the given network ("tcp" or
// "unix"). Unix sockets live in a fresh temp directory that Close
// removes. On any error, everything already started is torn down.
func NewCluster(network string, ranks, nodes int, jobID uint64) (*Cluster, error) {
	c := &Cluster{}
	if network == "unix" {
		// Socket paths must stay under the ~104-byte sun_path limit, so
		// use the system temp dir rather than a caller-provided one.
		dir, err := os.MkdirTemp("", "lbw")
		if err != nil {
			return nil, err
		}
		c.dir = dir
	}
	for i := 0; i < nodes; i++ {
		cfg := Config{
			Network: network,
			Ranks:   ranks, Nodes: nodes, Self: i,
			JobID: jobID,
		}
		if network == "unix" {
			cfg.Listen = filepath.Join(c.dir, fmt.Sprintf("n%d.sock", i))
		}
		t, err := New(cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster node %d: %w", i, err)
		}
		c.Transports = append(c.Transports, t)
	}
	specs := SplitRanks(ranks, nodes)
	for i, t := range c.Transports {
		specs[i].Addr = t.Addr()
	}
	errs := make(chan error, nodes)
	for _, t := range c.Transports {
		go func(t *Transport) { errs <- t.Connect(specs) }(t)
	}
	for range c.Transports {
		if err := <-errs; err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Close closes every transport concurrently — each node's drain waits
// for its peers' BYE frames, so sequential closes would serialize on
// DrainTimeout — and removes the socket directory. Idempotent.
func (c *Cluster) Close() {
	var wg sync.WaitGroup
	for _, t := range c.Transports {
		if t == nil {
			continue
		}
		wg.Add(1)
		go func(t *Transport) {
			defer wg.Done()
			t.Close()
		}(t)
	}
	wg.Wait()
	if c.dir != "" {
		os.RemoveAll(c.dir)
		c.dir = ""
	}
}
