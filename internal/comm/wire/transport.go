package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"temperedlb/internal/comm"
)

// NodeSpec describes one process of a job: its node index, the
// contiguous global rank range it hosts, and the address its transport
// listens on.
type NodeSpec struct {
	Node int    `json:"node"`
	Lo   int    `json:"lo"` // global rank range [Lo,Hi)
	Hi   int    `json:"hi"`
	Addr string `json:"addr"`
}

// SplitRanks partitions n ranks over m nodes into contiguous,
// near-even ranges (the first n%m nodes get one extra rank). Every
// process of a job must derive its range from this function so the
// rank→node map needs no negotiation beyond addresses.
func SplitRanks(n, m int) []NodeSpec {
	if n < 1 || m < 1 || m > n {
		panic(fmt.Sprintf("wire: SplitRanks(%d, %d): need 1 <= nodes <= ranks", n, m))
	}
	specs := make([]NodeSpec, m)
	base, extra := n/m, n%m
	lo := 0
	for i := range specs {
		size := base
		if i < extra {
			size++
		}
		specs[i] = NodeSpec{Node: i, Lo: lo, Hi: lo + size}
		lo += size
	}
	return specs
}

// Config parameterizes one node's transport.
type Config struct {
	// Network is "tcp" or "unix".
	Network string
	// Ranks is the job's total rank count; Nodes the process count;
	// Self this process's node index. The local rank range is
	// SplitRanks(Ranks, Nodes)[Self].
	Ranks, Nodes, Self int
	// Listen is the address to listen on. Empty defaults to
	// "127.0.0.1:0" for tcp; it is required for unix.
	Listen string
	// JobID guards against cross-job connections: peers with a
	// different JobID are refused at handshake. Zero disables the check
	// only if both sides use zero.
	JobID uint64
	// DialTimeout bounds the total dial-plus-backoff budget per peer
	// (default 15s — peers may not have started listening yet).
	DialTimeout time.Duration
	// ConnectTimeout bounds Connect's wait for every peer's inbound
	// handshake (default 30s).
	ConnectTimeout time.Duration
	// DrainTimeout bounds the graceful close-drain: how long Close
	// waits for outbound queues to flush and for every peer's BYE
	// before force-closing connections (default 10s).
	DrainTimeout time.Duration
	// MaxQueue is the soft cap on any one peer's writer queue, in
	// messages. A peer that stops draining (stalled process, dead TCP
	// window) would otherwise grow its queue without bound until this
	// process OOMs; crossing the cap instead fails the transport loudly
	// with a queue-overflow error. 0 uses DefaultMaxQueue; negative
	// disables the cap (the pre-cap behaviour, kept for tooling that
	// prefers to watch the high-water stat itself).
	MaxQueue int
	// Logf receives connection-lifecycle and failure lines; nil is
	// silent.
	Logf func(format string, args ...any)
}

func (cfg *Config) setDefaults() error {
	switch cfg.Network {
	case "tcp":
		if cfg.Listen == "" {
			cfg.Listen = "127.0.0.1:0"
		}
	case "unix":
		if cfg.Listen == "" {
			return errors.New("wire: unix transport needs an explicit Listen socket path")
		}
	default:
		return fmt.Errorf("wire: unknown network %q (want tcp or unix)", cfg.Network)
	}
	if cfg.Ranks < 1 || cfg.Nodes < 1 || cfg.Nodes > cfg.Ranks {
		return fmt.Errorf("wire: bad geometry: %d ranks over %d nodes", cfg.Ranks, cfg.Nodes)
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Nodes {
		return fmt.Errorf("wire: self node %d outside [0,%d)", cfg.Self, cfg.Nodes)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 15 * time.Second
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 30 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return nil
}

// Transport is a comm.Transport that hosts a contiguous slice of a
// job's ranks in this process and carries everything else over TCP or
// Unix-domain sockets. It embeds a partial comm.Network, so local
// traffic, sequence stamping, accounting and fault injection are
// byte-for-byte the in-memory implementation; only delivery to remote
// ranks differs.
//
// Lifecycle: New (listen) → Connect (full mesh handshake) → hand to
// amt.New via WithTransport → Close (graceful drain). Each ordered
// peer pair uses two unidirectional connections — the dialer writes,
// the accepter reads — so no tie-breaking is needed and per-connection
// byte order gives per-sender FIFO for free.
type Transport struct {
	*comm.Network
	cfg    Config
	lo, hi int

	ln       net.Listener
	addr     string
	nodes    []NodeSpec // set by Connect, indexed by node id
	rankNode []int      // global rank → node id

	peers []*peer // indexed by node id; nil at Self and before Connect

	mu       sync.Mutex
	inbound  map[int]net.Conn // node id → accepted (read) connection
	inCond   *sync.Cond
	accepted []net.Conn // every accepted conn, for force-close

	readerWG sync.WaitGroup
	closing  atomic.Bool
	closed   atomic.Bool
	failErr  atomic.Pointer[error]

	framesOut, bytesOut atomic.Int64
	framesIn, bytesIn   atomic.Int64
	redials             atomic.Int64
	connectedPeers      atomic.Int64
	rttMax              atomic.Int64 // nanoseconds, max peer dial round trip
	queueHighWater      atomic.Int64 // deepest writer queue seen, any peer
}

// DefaultMaxQueue is the writer-queue soft cap when Config.MaxQueue is
// zero: deep enough that a healthy peer is never tripped by a send
// burst (the protocol's per-epoch traffic is orders of magnitude
// smaller), shallow enough to fail long before queued messages threaten
// process memory.
const DefaultMaxQueue = 1 << 17

// peer owns the outbound connection to one remote node: an unbounded
// queue drained by a writer goroutine, so Send never blocks on the
// socket. The writer flushes whenever it catches up with the queue and
// ends the stream with a BYE frame once drain begins.
type peer struct {
	t    *Transport
	node int

	mu    sync.Mutex
	cond  *sync.Cond
	queue []comm.Message
	bye   bool

	conn net.Conn
	done chan struct{}
}

// New validates the configuration and starts listening; remote ranks
// are not reachable until Connect. The bound address (useful with
// tcp port 0) is available via Addr immediately.
func New(cfg Config) (*Transport, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	spec := SplitRanks(cfg.Ranks, cfg.Nodes)[cfg.Self]
	ln, err := net.Listen(cfg.Network, cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s %s: %w (address already in use? stale unix socket?)", cfg.Network, cfg.Listen, err)
	}
	t := &Transport{
		cfg:     cfg,
		lo:      spec.Lo,
		hi:      spec.Hi,
		ln:      ln,
		addr:    ln.Addr().String(),
		inbound: map[int]net.Conn{},
	}
	t.inCond = sync.NewCond(&t.mu)
	t.Network = comm.NewPartialNetwork(cfg.Ranks, spec.Lo, spec.Hi, t.forwardRemote)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's bound address.
func (t *Transport) Addr() string { return t.addr }

// Err returns the first fatal transport error (lost peer, handshake
// refusal, decode failure), or nil. A non-nil Err means the transport
// shut itself down; runs in flight will observe a closed network.
func (t *Transport) Err() error {
	if p := t.failErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Connect installs the job's rank→address map and establishes the full
// mesh: it dials every other node (with backoff — peers may start in
// any order), sends the handshake, and waits until every peer has
// dialed us back. After Connect returns nil the transport is ready for
// Run.
func (t *Transport) Connect(nodes []NodeSpec) error {
	if len(nodes) != t.cfg.Nodes {
		return fmt.Errorf("wire: Connect got %d node specs, want %d", len(nodes), t.cfg.Nodes)
	}
	specs := append([]NodeSpec(nil), nodes...)
	sort.Slice(specs, func(i, j int) bool { return specs[i].Node < specs[j].Node })
	want := SplitRanks(t.cfg.Ranks, t.cfg.Nodes)
	for i, s := range specs {
		if s.Node != i {
			return fmt.Errorf("wire: node specs not a permutation of 0..%d (got node %d at position %d)", t.cfg.Nodes-1, s.Node, i)
		}
		if s.Lo != want[i].Lo || s.Hi != want[i].Hi {
			return fmt.Errorf("wire: node %d announces ranks [%d,%d), want [%d,%d) — peers disagree on -ranks/-nodes", i, s.Lo, s.Hi, want[i].Lo, want[i].Hi)
		}
		if s.Addr == "" {
			return fmt.Errorf("wire: node %d has no address", i)
		}
	}
	if self := specs[t.cfg.Self]; self.Addr != t.addr {
		// Tolerate equivalent spellings only when the spec was taken
		// verbatim from our own announcement; otherwise flag the mismatch.
		t.cfg.Logf("wire: note: self address in map is %s, listening on %s", self.Addr, t.addr)
	}
	t.nodes = specs
	t.rankNode = make([]int, t.cfg.Ranks)
	for _, s := range specs {
		for r := s.Lo; r < s.Hi; r++ {
			t.rankNode[r] = s.Node
		}
	}
	t.peers = make([]*peer, t.cfg.Nodes)

	// Dial every peer concurrently; each failure is fatal for Connect.
	errs := make([]error, t.cfg.Nodes)
	var wg sync.WaitGroup
	for i := range specs {
		if i == t.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			errs[node] = t.dialPeer(node)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Close()
			return err
		}
	}

	// Wait for every peer's inbound handshake.
	deadline := time.Now().Add(t.cfg.ConnectTimeout)
	timer := time.AfterFunc(t.cfg.ConnectTimeout, func() { t.inCond.Broadcast() })
	defer timer.Stop()
	t.mu.Lock()
	for len(t.inbound) < t.cfg.Nodes-1 {
		if err := t.Err(); err != nil {
			t.mu.Unlock()
			t.Close()
			return err
		}
		if time.Now().After(deadline) {
			missing := t.missingPeersLocked()
			t.mu.Unlock()
			t.Close()
			return fmt.Errorf("wire: node %d: peer timeout: no handshake from nodes %v within %v (peer not started? wrong address in map?)", t.cfg.Self, missing, t.cfg.ConnectTimeout)
		}
		t.inCond.Wait()
	}
	t.mu.Unlock()
	t.cfg.Logf("wire: node %d connected: %d peers, ranks [%d,%d) local", t.cfg.Self, t.cfg.Nodes-1, t.lo, t.hi)
	return nil
}

// missingPeersLocked lists node ids that have not handshaken yet.
func (t *Transport) missingPeersLocked() []int {
	var missing []int
	for i := 0; i < t.cfg.Nodes; i++ {
		if i == t.cfg.Self {
			continue
		}
		if _, ok := t.inbound[i]; !ok {
			missing = append(missing, i)
		}
	}
	return missing
}

// dialPeer establishes the outbound (write) connection to one node,
// retrying with capped exponential backoff until DialTimeout: job
// processes start in arbitrary order, so early connection refusals are
// expected, not errors.
func (t *Transport) dialPeer(node int) error {
	spec := t.nodes[node]
	var (
		conn    net.Conn
		err     error
		backoff = 25 * time.Millisecond
	)
	start := time.Now()
	deadline := start.Add(t.cfg.DialTimeout)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			t.redials.Add(1)
		}
		attemptStart := time.Now()
		conn, err = net.DialTimeout(t.cfg.Network, spec.Addr, time.Until(deadline))
		if err == nil {
			if rtt := time.Since(attemptStart); rtt > time.Duration(t.rttMax.Load()) {
				t.rttMax.Store(int64(rtt))
			}
			break
		}
		if t.closing.Load() {
			return fmt.Errorf("wire: dial node %d: transport closed", node)
		}
		if !time.Now().Add(backoff).Before(deadline) {
			return fmt.Errorf("wire: dial node %d at %s: %w (gave up after %v)", node, spec.Addr, err, time.Since(start))
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
	hello := appendHello(nil, helloBody{
		JobID: t.cfg.JobID, Ranks: t.cfg.Ranks, Nodes: t.cfg.Nodes,
		Node: t.cfg.Self, Lo: t.lo, Hi: t.hi,
	})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return fmt.Errorf("wire: handshake to node %d: %w", node, err)
	}
	p := &peer{t: t, node: node, conn: conn, done: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	t.peers[node] = p
	t.connectedPeers.Add(1)
	go p.writeLoop()
	return nil
}

// acceptLoop accepts inbound (read) connections for the transport's
// lifetime. Each must open with a valid HELLO before any message is
// honored.
func (t *Transport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.accepted = append(t.accepted, conn)
		t.mu.Unlock()
		go t.handshakeInbound(conn)
	}
}

// handshakeInbound validates a new inbound connection's HELLO and, on
// success, starts its read loop. Any handshake failure — version or
// geometry mismatch, garbage, a stray client — is fatal for the whole
// transport: the listener is job-private (loopback or a unix socket),
// so an invalid connection means the job is miswired, and failing
// loudly beats proceeding half-connected.
func (t *Transport) handshakeInbound(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(t.cfg.ConnectTimeout))
	br := bufio.NewReader(conn)
	ftype, body, err := readFrame(br, nil)
	if err != nil {
		t.fail(fmt.Errorf("wire: inbound handshake from %v: %w", conn.RemoteAddr(), err))
		conn.Close()
		return
	}
	if ftype != frameHello {
		t.fail(fmt.Errorf("wire: inbound connection from %v opened with frame type %d, want HELLO", conn.RemoteAddr(), ftype))
		conn.Close()
		return
	}
	h, err := decodeHello(body)
	if err != nil {
		t.fail(fmt.Errorf("wire: inbound handshake from %v: %w", conn.RemoteAddr(), err))
		conn.Close()
		return
	}
	if err := t.checkHello(h); err != nil {
		t.fail(err)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	t.mu.Lock()
	if _, dup := t.inbound[h.Node]; dup {
		t.mu.Unlock()
		t.fail(fmt.Errorf("wire: node %d handshook twice (duplicate -node index in the job?)", h.Node))
		conn.Close()
		return
	}
	t.inbound[h.Node] = conn
	t.mu.Unlock()
	t.inCond.Broadcast()
	t.readerWG.Add(1)
	go t.readLoop(h.Node, conn, br)
}

// checkHello validates a peer's announced geometry against ours.
func (t *Transport) checkHello(h helloBody) error {
	if h.JobID != t.cfg.JobID {
		return fmt.Errorf("wire: job id mismatch: peer %#x, ours %#x (two jobs sharing an address?)", h.JobID, t.cfg.JobID)
	}
	if h.Ranks != t.cfg.Ranks || h.Nodes != t.cfg.Nodes {
		return fmt.Errorf("wire: geometry mismatch: peer says %d ranks / %d nodes, ours %d / %d", h.Ranks, h.Nodes, t.cfg.Ranks, t.cfg.Nodes)
	}
	if h.Node < 0 || h.Node >= t.cfg.Nodes || h.Node == t.cfg.Self {
		return fmt.Errorf("wire: peer announces node id %d (ours is %d of %d)", h.Node, t.cfg.Self, t.cfg.Nodes)
	}
	want := SplitRanks(t.cfg.Ranks, t.cfg.Nodes)[h.Node]
	if h.Lo != want.Lo || h.Hi != want.Hi {
		return fmt.Errorf("wire: node %d announces ranks [%d,%d), want [%d,%d)", h.Node, h.Lo, h.Hi, want.Lo, want.Hi)
	}
	return nil
}

// readLoop decodes message frames from one peer until its BYE (orderly
// shutdown), a transport-wide close, or an error (fatal: a lost peer
// wedges the collective protocol, so fail fast and loudly rather than
// hang the epoch).
func (t *Transport) readLoop(node int, conn net.Conn, br *bufio.Reader) {
	defer t.readerWG.Done()
	var buf []byte
	for {
		ftype, body, err := readFrame(br, buf)
		if err != nil {
			if t.closing.Load() {
				return
			}
			t.fail(fmt.Errorf("wire: connection from node %d lost before BYE: %w", node, err))
			return
		}
		buf = body[:0]
		switch ftype {
		case frameBye:
			return
		case frameMessage:
			m, err := DecodeMessage(body, t.cfg.Ranks)
			if err != nil {
				t.fail(fmt.Errorf("wire: bad frame from node %d: %w", node, err))
				return
			}
			if m.To < t.lo || m.To >= t.hi {
				t.fail(fmt.Errorf("wire: node %d misrouted a message for rank %d to node %d (hosts [%d,%d))", node, m.To, t.cfg.Self, t.lo, t.hi))
				return
			}
			t.framesIn.Add(1)
			t.bytesIn.Add(int64(len(body)) + 4 + frameHeaderLen)
			t.Network.Inject(m)
		default:
			t.fail(fmt.Errorf("wire: unknown frame type %d from node %d", ftype, node))
			return
		}
	}
}

// forwardRemote is the partial network's uplink: it runs on the
// sending rank's goroutine (or a delayed-delivery goroutine) after
// stamping, accounting and fault dice, and only enqueues — the per-peer
// writer goroutine owns the socket.
func (t *Transport) forwardRemote(m comm.Message) {
	p := t.peers[t.rankNode[m.To]]
	if p == nil {
		panic(fmt.Sprintf("wire: send to rank %d before Connect established node %d", m.To, t.rankNode[m.To]))
	}
	p.enqueue(m)
}

func (p *peer) enqueue(m comm.Message) {
	p.mu.Lock()
	p.queue = append(p.queue, m)
	depth := int64(len(p.queue))
	p.mu.Unlock()
	p.cond.Signal()
	for {
		hw := p.t.queueHighWater.Load()
		if depth <= hw || p.t.queueHighWater.CompareAndSwap(hw, depth) {
			break
		}
	}
	if cap := p.t.cfg.MaxQueue; cap > 0 && depth > int64(cap) {
		p.t.fail(fmt.Errorf("wire: writer queue to node %d overflowed the soft cap (%d queued > MaxQueue %d): peer is not draining", p.node, depth, cap))
	}
}

// beginBye asks the writer to flush everything queued and end the
// stream; it returns immediately.
func (p *peer) beginBye() {
	p.mu.Lock()
	p.bye = true
	p.mu.Unlock()
	p.cond.Signal()
}

// writeLoop drains the queue into the socket, flushing whenever it
// catches up, and finishes with BYE + flush + write-side close once
// drain is requested and the queue is empty. Socket writes happen
// outside the queue lock.
func (p *peer) writeLoop() {
	defer close(p.done)
	bw := bufio.NewWriter(p.conn)
	var batch []comm.Message
	var buf []byte
	dead := false
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.bye {
			p.cond.Wait()
		}
		batch = append(batch[:0], p.queue...)
		clear(p.queue)
		p.queue = p.queue[:0]
		finish := p.bye
		p.mu.Unlock()

		if !dead {
			for i := range batch {
				buf = AppendMessage(buf[:0], batch[i])
				if _, err := bw.Write(buf); err != nil {
					p.t.fail(fmt.Errorf("wire: write to node %d: %w", p.node, err))
					dead = true
					break
				}
				p.t.framesOut.Add(1)
				p.t.bytesOut.Add(int64(len(buf)))
			}
		}
		clear(batch)
		if finish {
			if !dead {
				if _, err := bw.Write(appendBye(nil)); err == nil {
					bw.Flush()
				}
				type closeWriter interface{ CloseWrite() error }
				if cw, ok := p.conn.(closeWriter); ok {
					cw.CloseWrite()
				}
			}
			return
		}
		if !dead {
			if err := bw.Flush(); err != nil {
				p.t.fail(fmt.Errorf("wire: flush to node %d: %w", p.node, err))
				dead = true
			}
		}
	}
}

// fail records the first fatal error and tears the transport down
// asynchronously, so every rank blocked in a receive observes a closed
// network (a loud panic) instead of hanging forever on a dead peer.
func (t *Transport) fail(err error) {
	if t.closing.Load() {
		return
	}
	if !t.failErr.CompareAndSwap(nil, &err) {
		return
	}
	t.cfg.Logf("wire: fatal: %v", err)
	go t.Close()
}

// Close drains and shuts down. The sequence guarantees the close-drain
// contract — nothing accepted by Send before Close is lost on our
// account:
//
//  1. close the embedded network: local Sends now panic, in-flight
//     delayed deliveries (including remote-bound ones) are waited for,
//     local inboxes wake their receivers;
//  2. ask every peer writer to flush its queue, append BYE and close
//     the write side; wait for them (bounded by DrainTimeout via write
//     deadlines);
//  3. stop accepting, then wait — again bounded by DrainTimeout — for
//     every peer's BYE so late inbound messages (acks, duplicates) are
//     still injected while our process is alive;
//  4. force-close whatever is left.
//
// Close is idempotent and safe to call from any goroutine.
func (t *Transport) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	t.closing.Store(true)
	t.Network.Close()

	deadline := time.Now().Add(t.cfg.DrainTimeout)
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.conn.SetWriteDeadline(deadline)
		p.beginBye()
	}
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		select {
		case <-p.done:
		case <-time.After(time.Until(deadline)):
			p.conn.Close() // writer is stuck; abort it
			<-p.done
		}
	}

	t.ln.Close()
	t.inCond.Broadcast()

	readersDone := make(chan struct{})
	go func() {
		t.readerWG.Wait()
		close(readersDone)
	}()
	select {
	case <-readersDone:
	case <-time.After(time.Until(deadline)):
		t.cfg.Logf("wire: node %d: drain timeout; force-closing inbound connections", t.cfg.Self)
	}

	t.mu.Lock()
	conns := append([]net.Conn(nil), t.accepted...)
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	<-readersDone
}

// WireStats implements comm.WireStater.
func (t *Transport) WireStats() comm.WireStats {
	return comm.WireStats{
		FramesOut:      t.framesOut.Load(),
		BytesOut:       t.bytesOut.Load(),
		FramesIn:       t.framesIn.Load(),
		BytesIn:        t.bytesIn.Load(),
		Peers:          t.connectedPeers.Load(),
		Redials:        t.redials.Load(),
		QueueHighWater: t.queueHighWater.Load(),
	}
}

// RTTHint implements comm.RTTHinter: the slowest peer's connection
// setup time, the transport's best cheap estimate of one round trip.
func (t *Transport) RTTHint() time.Duration {
	return time.Duration(t.rttMax.Load())
}

// readFrame reads one length-prefixed frame from br, reusing buf for
// the body when it fits. It validates the length bounds and the
// protocol version before returning the body.
func readFrame(br *bufio.Reader, buf []byte) (ftype byte, body []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := int(uint32(lenBuf[0])<<24 | uint32(lenBuf[1])<<16 | uint32(lenBuf[2])<<8 | uint32(lenBuf[3]))
	if n < frameHeaderLen {
		return 0, nil, fmt.Errorf("frame length %d shorter than header", n)
	}
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("frame length %d exceeds limit %d", n, MaxFrameSize)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, nil, fmt.Errorf("truncated frame: %w", err)
	}
	if v := buf[0]; v != Version {
		return 0, nil, fmt.Errorf("protocol version mismatch: peer speaks v%d, this binary v%d (mixed builds in one job?)", v, Version)
	}
	return buf[1], buf[frameHeaderLen:], nil
}
