package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Rank→address rendezvous. A job needs every process to know every
// other process's listen address before Connect can build the mesh.
// Two mechanisms are provided, both producing the same []NodeSpec:
//
//   - a static peers file (ParsePeersFile): addresses are fixed up
//     front, e.g. by a job script or by convention;
//   - a coordinator (ServeRendezvous + Rendezvous): each node dials a
//     well-known address, announces itself, and receives the full map
//     once everyone has checked in. The protocol is JSON lines — one
//     NodeSpec from each client, one NodeSpec array back — chosen for
//     debuggability over `nc`; the deterministic binary codec is not
//     needed here because rendezvous happens before the protocol clock
//     starts and carries no protocol state.

// ParsePeersFile reads a static rendezvous map: one "<node> <addr>"
// pair per line, blank lines and #-comments ignored. Rank ranges are
// derived from SplitRanks(ranks, nodes), so the file only pins
// addresses. Every node in [0,nodes) must appear exactly once.
func ParsePeersFile(path string, ranks, nodes int) ([]NodeSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParsePeers(string(data), ranks, nodes)
}

// ParsePeers is ParsePeersFile on in-memory content.
func ParsePeers(content string, ranks, nodes int) ([]NodeSpec, error) {
	specs := SplitRanks(ranks, nodes)
	seen := make([]bool, nodes)
	for lineNo, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("peers file line %d: want \"<node> <addr>\", got %q", lineNo+1, line)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil || node < 0 || node >= nodes {
			return nil, fmt.Errorf("peers file line %d: node index %q outside [0,%d)", lineNo+1, fields[0], nodes)
		}
		if seen[node] {
			return nil, fmt.Errorf("peers file line %d: node %d listed twice", lineNo+1, node)
		}
		seen[node] = true
		specs[node].Addr = fields[1]
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("peers file missing node %d (want all of 0..%d)", i, nodes-1)
		}
	}
	return specs, nil
}

// ServeRendezvous runs a one-shot coordinator on ln: it accepts
// connections until `nodes` distinct NodeSpec announcements have
// arrived, then writes the full sorted map back on every connection
// and closes them. It returns the map it distributed. The listener is
// closed on return. Announcements with duplicate node ids are rejected
// with an error line and their connection closed; the coordinator
// keeps waiting for the real peer.
func ServeRendezvous(ln net.Listener, nodes int, timeout time.Duration) ([]NodeSpec, error) {
	defer ln.Close()
	if timeout > 0 {
		if tl, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			tl.SetDeadline(time.Now().Add(timeout))
		}
	}
	var (
		mu    sync.Mutex
		specs []NodeSpec
		conns = map[int]net.Conn{}
	)
	for len(conns) < nodes {
		conn, err := ln.Accept()
		if err != nil {
			mu.Lock()
			got := len(conns)
			mu.Unlock()
			return nil, fmt.Errorf("rendezvous: accept failed with %d/%d nodes checked in: %w", got, nodes, err)
		}
		var spec NodeSpec
		dec := json.NewDecoder(bufio.NewReader(conn))
		if err := dec.Decode(&spec); err != nil {
			fmt.Fprintf(conn, `{"error":%q}`+"\n", err.Error())
			conn.Close()
			continue
		}
		mu.Lock()
		if spec.Node < 0 || spec.Node >= nodes {
			mu.Unlock()
			fmt.Fprintf(conn, `{"error":"node index %d outside [0,%d)"}`+"\n", spec.Node, nodes)
			conn.Close()
			continue
		}
		if _, dup := conns[spec.Node]; dup {
			mu.Unlock()
			fmt.Fprintf(conn, `{"error":"node %d already checked in"}`+"\n", spec.Node)
			conn.Close()
			continue
		}
		conns[spec.Node] = conn
		specs = append(specs, spec)
		mu.Unlock()
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Node < specs[j].Node })
	payload, err := json.Marshal(specs)
	if err != nil {
		return nil, err
	}
	payload = append(payload, '\n')
	for _, conn := range conns {
		conn.Write(payload)
		conn.Close()
	}
	return specs, nil
}

// Rendezvous announces self to a coordinator at addr (started with
// ServeRendezvous or cmd/lbcoord) and blocks until the full node map
// comes back. Dialing retries with backoff until timeout, since the
// coordinator may start after the nodes.
func Rendezvous(network, addr string, self NodeSpec, timeout time.Duration) ([]NodeSpec, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	backoff := 25 * time.Millisecond
	var lastErr error
	for time.Now().Before(deadline) {
		specs, err := rendezvousOnce(network, addr, self, deadline)
		if err == nil {
			return specs, nil
		}
		lastErr = err
		// A refused dial means the coordinator is not up yet; anything
		// after a successful dial is a protocol error worth surfacing.
		var perr *protocolError
		if errors.As(err, &perr) {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
	return nil, fmt.Errorf("rendezvous: no coordinator at %s %s within %v: %w", network, addr, timeout, lastErr)
}

// protocolError marks rendezvous failures that retrying cannot fix.
type protocolError struct{ err error }

func (e *protocolError) Error() string { return e.err.Error() }
func (e *protocolError) Unwrap() error { return e.err }

func rendezvousOnce(network, addr string, self NodeSpec, deadline time.Time) ([]NodeSpec, error) {
	conn, err := net.DialTimeout(network, addr, time.Until(deadline))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	enc := json.NewEncoder(conn)
	if err := enc.Encode(self); err != nil {
		return nil, &protocolError{fmt.Errorf("rendezvous: announce: %w", err)}
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return nil, &protocolError{fmt.Errorf("rendezvous: waiting for node map: %w", err)}
	}
	var specs []NodeSpec
	if err := json.Unmarshal(line, &specs); err != nil {
		var coordErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(line, &coordErr) == nil && coordErr.Error != "" {
			return nil, &protocolError{fmt.Errorf("rendezvous: coordinator refused: %s", coordErr.Error)}
		}
		return nil, &protocolError{fmt.Errorf("rendezvous: bad node map: %w", err)}
	}
	return specs, nil
}
