// Package comm provides the in-memory message transport underneath the
// AMT runtime: per-rank unbounded inboxes with blocking and non-blocking
// receive, per-sender FIFO ordering, and optional payload byte
// accounting. It substitutes for the MPI layer of the paper's vt runtime;
// everything above it (active messages, epochs, termination detection,
// collectives) is implemented for real on top of this transport.
//
// # Concurrency
//
// The inboxes are the concurrency boundary of the whole distributed
// stack and are fully goroutine-safe: any goroutine may Send to any
// rank while that rank's goroutine blocks in Recv, and per-sender FIFO
// order is preserved. Everything layered above (amt, termination, the
// distributed balancer) relies on this package for cross-rank safety
// and keeps its own state single-goroutine.
package comm
