// Package comm provides the in-memory message transport underneath the
// AMT runtime: per-rank unbounded inboxes with blocking, non-blocking
// and batched receive (RecvBatch drains a whole burst under one lock
// acquisition), per-sender FIFO ordering, and optional payload byte
// accounting. Deadline waits reuse a single timer per inbox rather than
// arming a fresh one per call, so retry-heavy fault runs do not churn
// the timer heap. It substitutes for the MPI layer of the paper's vt runtime;
// everything above it (active messages, epochs, termination detection,
// collectives) is implemented for real on top of this transport.
//
// The transport doubles as a fault harness: a FaultPlan (built from a
// FaultSpec, parsed by ParseFaultSpec) makes it drop, duplicate, delay
// or straggle messages under stateless seeded per-message decisions, so
// a given plan injects the same faults on every run regardless of
// goroutine scheduling. An absent plan leaves the fault-free fast path
// untouched. Recovery is not this package's job — internal/amt layers
// ack/retry and deduplication on top (see DESIGN.md §7).
//
// # Concurrency
//
// The inboxes are the concurrency boundary of the whole distributed
// stack and are fully goroutine-safe: any goroutine may Send to any
// rank while that rank's goroutine blocks in Recv, and per-sender FIFO
// order is preserved. Everything layered above (amt, termination, the
// distributed balancer) relies on this package for cross-rank safety
// and keeps its own state single-goroutine.
package comm
