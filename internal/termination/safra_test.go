package termination

import (
	"math/rand"
	"testing"
)

// ringSim simulates n ranks exchanging basic messages plus the Safra
// token over a serialized message pool, validating the detector against
// ground truth (no undelivered basic messages at detection time).
type ringSim struct {
	t        *testing.T
	n        int
	det      []*Detector
	inFlight [][]int // basic messages pending per destination (payload = hops budget)
	tokenAt  int     // rank holding/destined for the token, -1 when none
	tokenIn  *Token  // token in flight toward tokenAt
	rng      *rand.Rand
}

func newRingSim(t *testing.T, n int, seed int64) *ringSim {
	s := &ringSim{t: t, n: n, rng: rand.New(rand.NewSource(seed)), tokenAt: -1}
	s.det = make([]*Detector, n)
	s.inFlight = make([][]int, n)
	for i := range s.det {
		s.det[i] = New(i, n)
	}
	return s
}

func (s *ringSim) send(from, to, hops int) {
	s.det[from].OnSend()
	s.inFlight[to] = append(s.inFlight[to], hops)
}

func (s *ringSim) pendingTotal() int {
	total := 0
	for _, q := range s.inFlight {
		total += len(q)
	}
	return total
}

// step delivers one random pending basic message (possibly triggering a
// forward) or moves the token. Returns false when terminated.
func (s *ringSim) step() bool {
	// Deliver a random basic message if any (messages preempt token
	// handling, modeling an asynchronous schedule).
	if total := s.pendingTotal(); total > 0 && s.rng.Intn(3) != 0 {
		pick := s.rng.Intn(total)
		for to := range s.inFlight {
			if pick < len(s.inFlight[to]) {
				hops := s.inFlight[to][pick]
				s.inFlight[to] = append(s.inFlight[to][:pick], s.inFlight[to][pick+1:]...)
				s.det[to].OnReceive()
				if hops > 0 { // activity spawns more messages
					s.send(to, s.rng.Intn(s.n), hops-1)
				}
				return true
			}
			pick -= len(s.inFlight[to])
		}
	}
	// Token hop: deliver in-flight token, then let a passive holder act.
	if s.tokenIn != nil {
		s.det[s.tokenAt].OnToken(*s.tokenIn)
		s.tokenIn = nil
	}
	for r := 0; r < s.n; r++ {
		// A rank is passive here iff it has no pending deliveries.
		if s.det[r].HoldsToken() && len(s.inFlight[r]) == 0 {
			tok, next, send := s.det[r].TryHandOff()
			if send {
				s.tokenAt = next
				s.tokenIn = &tok
				return true
			}
			if s.det[r].Terminated() {
				if got := s.pendingTotal(); got != 0 {
					s.t.Fatalf("termination declared with %d undelivered messages", got)
				}
				return false
			}
		}
	}
	return true
}

func TestSafraDetectsTermination(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		s := newRingSim(t, n, int64(n))
		// Seed some cascading traffic.
		for i := 0; i < n*3; i++ {
			s.send(s.rng.Intn(n), s.rng.Intn(n), 4)
		}
		steps := 0
		for s.step() {
			steps++
			if steps > 1_000_000 {
				t.Fatalf("n=%d: no termination after %d steps", n, steps)
			}
		}
	}
}

func TestSafraQuietSystemTerminatesQuickly(t *testing.T) {
	s := newRingSim(t, 5, 1)
	steps := 0
	for s.step() {
		steps++
		if steps > 10_000 {
			t.Fatal("quiet system did not terminate")
		}
	}
	// Two waves around a 5-ring plus bookkeeping.
	if steps > 50 {
		t.Errorf("quiet termination took %d steps", steps)
	}
}

func TestSafraNeverEarly(t *testing.T) {
	// Heavy cascading traffic: detection must always wait out the last
	// message (checked inside step()).
	for seed := int64(0); seed < 20; seed++ {
		s := newRingSim(t, 6, seed)
		for i := 0; i < 30; i++ {
			s.send(s.rng.Intn(6), s.rng.Intn(6), 6)
		}
		steps := 0
		for s.step() {
			steps++
			if steps > 1_000_000 {
				t.Fatal("no termination")
			}
		}
	}
}

func TestSafraSingleRank(t *testing.T) {
	d := New(0, 1)
	if !d.HoldsToken() {
		t.Fatal("rank 0 must start with the token")
	}
	// First hand-off starts wave 2 and... with n=1 the next hop is rank 0
	// itself, so the detector should conclude on the evaluation path.
	steps := 0
	for !d.Terminated() {
		tok, next, send := d.TryHandOff()
		if send {
			if next != 0 {
				t.Fatalf("n=1 token sent to %d", next)
			}
			d.OnToken(tok)
		}
		if steps++; steps > 10 {
			t.Fatal("single rank did not terminate")
		}
	}
}

func TestSafraReset(t *testing.T) {
	d := New(0, 3)
	d.OnSend()
	d.OnReceive()
	d.Reset()
	if d.Terminated() {
		t.Error("terminated after reset")
	}
	if !d.HoldsToken() {
		t.Error("rank 0 must hold token after reset")
	}
	d1 := New(1, 3)
	d1.Reset()
	if d1.HoldsToken() {
		t.Error("rank 1 must not hold token after reset")
	}
}

func TestSafraDuplicateTokenPanics(t *testing.T) {
	d := New(1, 3)
	d.OnToken(Token{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate token")
		}
	}()
	d.OnToken(Token{})
}

func TestSafraBadRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(3, 3)
}

func TestColorString(t *testing.T) {
	if White.String() != "white" || Black.String() != "black" {
		t.Error("color names wrong")
	}
}
