package termination

import (
	"math/rand"
	"testing"
)

// ringSim simulates n ranks exchanging basic messages plus the Safra
// token over a serialized message pool, validating the detector against
// ground truth (no undelivered basic messages at detection time).
type ringSim struct {
	t        *testing.T
	n        int
	det      []*Detector
	inFlight [][]int // basic messages pending per destination (payload = hops budget)
	tokenAt  int     // rank holding/destined for the token, -1 when none
	tokenIn  *Token  // token in flight toward tokenAt
	rng      *rand.Rand
}

func newRingSim(t *testing.T, n int, seed int64) *ringSim {
	s := &ringSim{t: t, n: n, rng: rand.New(rand.NewSource(seed)), tokenAt: -1}
	s.det = make([]*Detector, n)
	s.inFlight = make([][]int, n)
	for i := range s.det {
		s.det[i] = New(i, n)
	}
	return s
}

func (s *ringSim) send(from, to, hops int) {
	s.det[from].OnSend()
	s.inFlight[to] = append(s.inFlight[to], hops)
}

func (s *ringSim) pendingTotal() int {
	total := 0
	for _, q := range s.inFlight {
		total += len(q)
	}
	return total
}

// step delivers one random pending basic message (possibly triggering a
// forward) or moves the token. Returns false when terminated.
func (s *ringSim) step() bool {
	// Deliver a random basic message if any (messages preempt token
	// handling, modeling an asynchronous schedule).
	if total := s.pendingTotal(); total > 0 && s.rng.Intn(3) != 0 {
		pick := s.rng.Intn(total)
		for to := range s.inFlight {
			if pick < len(s.inFlight[to]) {
				hops := s.inFlight[to][pick]
				s.inFlight[to] = append(s.inFlight[to][:pick], s.inFlight[to][pick+1:]...)
				s.det[to].OnReceive()
				if hops > 0 { // activity spawns more messages
					s.send(to, s.rng.Intn(s.n), hops-1)
				}
				return true
			}
			pick -= len(s.inFlight[to])
		}
	}
	// Token hop: deliver in-flight token, then let a passive holder act.
	if s.tokenIn != nil {
		s.det[s.tokenAt].OnToken(*s.tokenIn)
		s.tokenIn = nil
	}
	for r := 0; r < s.n; r++ {
		// A rank is passive here iff it has no pending deliveries.
		if s.det[r].HoldsToken() && len(s.inFlight[r]) == 0 {
			tok, next, send := s.det[r].TryHandOff()
			if send {
				s.tokenAt = next
				s.tokenIn = &tok
				return true
			}
			if s.det[r].Terminated() {
				if got := s.pendingTotal(); got != 0 {
					s.t.Fatalf("termination declared with %d undelivered messages", got)
				}
				return false
			}
		}
	}
	return true
}

func TestSafraDetectsTermination(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		s := newRingSim(t, n, int64(n))
		// Seed some cascading traffic.
		for i := 0; i < n*3; i++ {
			s.send(s.rng.Intn(n), s.rng.Intn(n), 4)
		}
		steps := 0
		for s.step() {
			steps++
			if steps > 1_000_000 {
				t.Fatalf("n=%d: no termination after %d steps", n, steps)
			}
		}
	}
}

func TestSafraQuietSystemTerminatesQuickly(t *testing.T) {
	s := newRingSim(t, 5, 1)
	steps := 0
	for s.step() {
		steps++
		if steps > 10_000 {
			t.Fatal("quiet system did not terminate")
		}
	}
	// Two waves around a 5-ring plus bookkeeping.
	if steps > 50 {
		t.Errorf("quiet termination took %d steps", steps)
	}
}

func TestSafraNeverEarly(t *testing.T) {
	// Heavy cascading traffic: detection must always wait out the last
	// message (checked inside step()).
	for seed := int64(0); seed < 20; seed++ {
		s := newRingSim(t, 6, seed)
		for i := 0; i < 30; i++ {
			s.send(s.rng.Intn(6), s.rng.Intn(6), 6)
		}
		steps := 0
		for s.step() {
			steps++
			if steps > 1_000_000 {
				t.Fatal("no termination")
			}
		}
	}
}

func TestSafraSingleRank(t *testing.T) {
	d := New(0, 1)
	if !d.HoldsToken() {
		t.Fatal("rank 0 must start with the token")
	}
	// First hand-off starts wave 2 and... with n=1 the next hop is rank 0
	// itself, so the detector should conclude on the evaluation path.
	steps := 0
	for !d.Terminated() {
		tok, next, send := d.TryHandOff()
		if send {
			if next != 0 {
				t.Fatalf("n=1 token sent to %d", next)
			}
			d.OnToken(tok)
		}
		if steps++; steps > 10 {
			t.Fatal("single rank did not terminate")
		}
	}
}

func TestSafraReset(t *testing.T) {
	d := New(0, 3)
	d.OnSend()
	d.OnReceive()
	d.Reset()
	if d.Terminated() {
		t.Error("terminated after reset")
	}
	if !d.HoldsToken() {
		t.Error("rank 0 must hold token after reset")
	}
	d1 := New(1, 3)
	d1.Reset()
	if d1.HoldsToken() {
		t.Error("rank 1 must not hold token after reset")
	}
}

// ackMsg is one copy of a basic message on the lossy wire of ackRingSim.
type ackMsg struct {
	id, from, to, hops int
}

// ackRingSim validates the ack-based (sender-credit) accounting variant
// — OnSend/OnDeliver/OnAck — against ground truth over a channel that
// drops and duplicates basic messages. Acknowledgments are reliable
// (the runtime exempts control kinds from fault injection) and the
// receiver deduplicates, mirroring internal/amt's reliability layer.
type ackRingSim struct {
	t       *testing.T
	n       int
	det     []*Detector
	rng     *rand.Rand
	nextID  int
	flight  []ackMsg       // undelivered basic-message copies
	acks    []ackMsg       // acknowledgments in flight (to = original sender)
	pending map[int]ackMsg // unacked sends by id
	seen    map[int]bool   // delivered ids (receiver dedup)
	tokenAt int
	tokenIn *Token
}

func newAckRingSim(t *testing.T, n int, seed int64) *ackRingSim {
	s := &ackRingSim{t: t, n: n, rng: rand.New(rand.NewSource(seed)),
		pending: make(map[int]ackMsg), seen: make(map[int]bool), tokenAt: -1}
	s.det = make([]*Detector, n)
	for i := range s.det {
		s.det[i] = New(i, n)
	}
	return s
}

func (s *ackRingSim) send(from, to, hops int) {
	s.nextID++
	m := ackMsg{id: s.nextID, from: from, to: to, hops: hops}
	s.det[from].OnSend()
	s.pending[m.id] = m
	s.transmit(m)
}

// transmit puts 0 (drop), 1, or 2 (duplicate) copies on the wire.
func (s *ackRingSim) transmit(m ackMsg) {
	if s.rng.Float64() < 0.3 { // dropped
		return
	}
	s.flight = append(s.flight, m)
	if s.rng.Float64() < 0.3 { // duplicated
		s.flight = append(s.flight, m)
	}
}

// passive reports whether rank r has no queued deliveries.
func (s *ackRingSim) passive(r int) bool {
	for _, m := range s.flight {
		if m.to == r {
			return false
		}
	}
	for _, a := range s.acks {
		if a.to == r {
			return false
		}
	}
	return true
}

func (s *ackRingSim) step() bool {
	switch pick := s.rng.Intn(4); {
	case pick == 0 && len(s.flight) > 0: // deliver a basic-message copy
		i := s.rng.Intn(len(s.flight))
		m := s.flight[i]
		s.flight = append(s.flight[:i], s.flight[i+1:]...)
		if !s.seen[m.id] {
			s.seen[m.id] = true
			s.det[m.to].OnDeliver()
			if m.hops > 0 {
				s.send(m.to, s.rng.Intn(s.n), m.hops-1)
			}
		}
		// Every delivered copy is (re-)acknowledged, reliably.
		s.acks = append(s.acks, ackMsg{id: m.id, to: m.from})
		return true
	case pick == 1 && len(s.acks) > 0: // deliver an acknowledgment
		i := s.rng.Intn(len(s.acks))
		a := s.acks[i]
		s.acks = append(s.acks[:i], s.acks[i+1:]...)
		if p, ok := s.pending[a.id]; ok { // first ack retires the credit
			delete(s.pending, a.id)
			s.det[p.from].OnAck()
		}
		return true
	case pick == 2 && len(s.pending) > 0 && s.rng.Intn(4) == 0:
		// A sender times out and retransmits an unacked message.
		for _, p := range s.pending {
			s.transmit(p)
			break
		}
		return true
	}
	// Token hop: deliver the in-flight token, then let a passive holder
	// act.
	if s.tokenIn != nil {
		s.det[s.tokenAt].OnToken(*s.tokenIn)
		s.tokenIn = nil
	}
	for r := 0; r < s.n; r++ {
		if s.det[r].HoldsToken() && s.passive(r) {
			tok, next, send := s.det[r].TryHandOff()
			if send {
				s.tokenAt = next
				s.tokenIn = &tok
				return true
			}
			if s.det[r].Terminated() {
				if len(s.pending) != 0 {
					s.t.Fatalf("termination declared with %d unacked messages", len(s.pending))
				}
				return false
			}
		}
	}
	return true
}

func TestSafraAckVariantUnderDropsAndDups(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := newAckRingSim(t, 6, seed)
		for i := 0; i < 24; i++ {
			s.send(s.rng.Intn(6), s.rng.Intn(6), 5)
		}
		steps := 0
		for s.step() {
			steps++
			if steps > 5_000_000 {
				t.Fatalf("seed %d: no termination after %d steps", seed, steps)
			}
		}
	}
}

func TestSafraResetClearsWave(t *testing.T) {
	// Regression: Reset used to leave the previous epoch's token on
	// non-zero ranks, so Wave() reported the old wave count instead of
	// the documented 0 until the first probe of the new epoch arrived.
	d := New(2, 4)
	d.OnToken(Token{Color: White, Wave: 7})
	if _, _, send := d.TryHandOff(); !send {
		t.Fatal("holder must forward the token")
	}
	d.Reset()
	if got := d.Wave(); got != 0 {
		t.Fatalf("Wave() after Reset on rank 2 = %d, want 0", got)
	}
	// Rank 0 restarts with its fresh wave-1 token.
	d0 := New(0, 4)
	if _, _, send := d0.TryHandOff(); !send { // launches wave 2
		t.Fatal("rank 0 must launch a wave")
	}
	d0.Reset()
	if got := d0.Wave(); got != 1 {
		t.Fatalf("Wave() after Reset on rank 0 = %d, want 1", got)
	}
}

func TestSafraDuplicateTokenPanics(t *testing.T) {
	d := New(1, 3)
	d.OnToken(Token{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate token")
		}
	}()
	d.OnToken(Token{})
}

func TestSafraBadRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(3, 3)
}

func TestColorString(t *testing.T) {
	if White.String() != "white" || Black.String() != "black" {
		t.Error("color names wrong")
	}
}
