package termination

import "fmt"

// Color is a process or token color in Safra's algorithm. White means
// "no basic message received since the last token visit"; black taints
// the current wave.
type Color int

const (
	White Color = iota
	Black
)

// String renders the color.
func (c Color) String() string {
	if c == White {
		return "white"
	}
	return "black"
}

// Token is the probe circulating around the ring.
type Token struct {
	// Count accumulates the message-balance counters of visited ranks.
	Count int
	// Color is black if any visited rank was black.
	Color Color
	// Wave numbers successive probe rounds, for diagnostics.
	Wave int
}

// Detector is the per-rank state of Safra's algorithm. It is not
// goroutine-safe: the owning rank's scheduler must drive it.
//
// Protocol, for rank p of n on a ring (token travels p → p−1 mod n,
// initiated by rank 0):
//
//   - Sending a basic message: OnSend (counter++).
//   - Receiving a basic message: OnReceive (counter--, the rank turns
//     black).
//   - When passive and holding the token, the rank calls TryHandOff:
//     rank 0 inspects the completed wave and either reports termination
//     or starts a new wave; other ranks accumulate their counter and
//     color into the token, whiten, and pass it on.
type Detector struct {
	rank, n  int
	counter  int
	color    Color
	hasToken bool
	token    Token
	done     bool
}

// New creates the detector for one rank; rank 0 starts holding the
// initial token.
func New(rank, n int) *Detector {
	if n < 1 || rank < 0 || rank >= n {
		panic(fmt.Sprintf("termination: bad rank %d of %d", rank, n))
	}
	d := &Detector{rank: rank, n: n}
	if rank == 0 {
		d.hasToken = true
		d.token = Token{Color: White, Wave: 1}
	}
	return d
}

// OnSend records a basic (epoch) message send.
func (d *Detector) OnSend() { d.counter++ }

// OnReceive records a basic (epoch) message receipt; the rank blackens.
func (d *Detector) OnReceive() {
	d.counter--
	d.color = Black
}

// OnDeliver records processing of a basic message under the ack-based
// (sender-credit) accounting variant: the receiving rank blackens but
// does not touch its counter — the matching decrement happens on the
// SENDER when the acknowledgment comes back (OnAck). With this pairing
// each counter equals the rank's number of unacknowledged sends, so
// counters never go negative and the wave rule (all white, summed count
// zero) detects quiescence even when the transport drops or duplicates
// messages, provided the runtime deduplicates deliveries and
// retransmits unacknowledged sends.
func (d *Detector) OnDeliver() { d.color = Black }

// OnAck records the first acknowledgment of one of this rank's basic
// sends under the ack-based accounting variant: the credit issued by
// OnSend is retired and the rank blackens (its counter changed since
// the token last passed). Duplicate acknowledgments must not be
// reported.
func (d *Detector) OnAck() {
	d.counter--
	d.color = Black
}

// OnToken records arrival of the probe token.
func (d *Detector) OnToken(t Token) {
	if d.hasToken {
		panic("termination: duplicate token")
	}
	d.hasToken = true
	d.token = t
}

// HoldsToken reports whether this rank currently holds the probe.
func (d *Detector) HoldsToken() bool { return d.hasToken }

// Wave returns the wave number of the most recent token this rank has
// seen — the per-epoch "token rounds to quiescence" statistic of the
// observability layer. It is 0 on ranks the first wave has not reached
// yet; on rank 0 it counts the waves launched, and at termination it is
// the total number of probe rounds the epoch needed.
func (d *Detector) Wave() int { return d.token.Wave }

// Terminated reports whether rank 0 has concluded global termination.
// Only rank 0 ever reports true; it must then announce termination to
// the other ranks out of band.
func (d *Detector) Terminated() bool { return d.done }

// TryHandOff is called by the scheduler whenever the rank is passive (no
// local work, no queued basic messages). If the rank holds the token it
// either (rank 0) finishes a wave — detecting termination or launching a
// new wave — or (other ranks) forwards the accumulated token. The
// returned next is the rank to send the token to when send is true.
func (d *Detector) TryHandOff() (t Token, next int, send bool) {
	if !d.hasToken || d.done {
		return Token{}, 0, false
	}
	if d.rank == 0 {
		// A wave completes when the token returns to rank 0. The system
		// has terminated iff the wave was white everywhere, rank 0 is
		// white, and the global message balance is zero.
		if d.token.Wave > 1 && d.token.Color == White && d.color == White && d.token.Count+d.counter == 0 {
			d.done = true
			d.hasToken = false
			return Token{}, 0, false
		}
		// Start a new wave.
		d.color = White
		d.hasToken = false
		return Token{Count: 0, Color: White, Wave: d.token.Wave + 1}, d.prev(), true
	}
	// Accumulate and forward.
	t = d.token
	t.Count += d.counter
	if d.color == Black {
		t.Color = Black
	}
	d.color = White
	d.hasToken = false
	return t, d.prev(), true
}

// prev returns the ring predecessor, the token's next hop.
func (d *Detector) prev() int { return (d.rank + d.n - 1) % d.n }

// Reset restores the detector for a new epoch.
func (d *Detector) Reset() {
	d.counter = 0
	d.color = White
	d.done = false
	d.hasToken = d.rank == 0
	if d.rank == 0 {
		d.token = Token{Color: White, Wave: 1}
	} else {
		// Drop the previous epoch's token so Wave() reports 0 until the
		// new epoch's first probe arrives, as documented.
		d.token = Token{}
	}
}
