// Package termination implements distributed termination detection for
// the AMT runtime's epochs: Safra's ring-based extension of Dijkstra's
// algorithm, which tolerates asynchronous message passing. The paper's
// vt runtime relies on exactly this class of algorithm to detect when
// "all causally related gossip messages have been received and
// processed" (§IV-B).
//
// The detector supports two accounting modes. The classic one pairs
// OnSend with OnReceive (counter per message in flight). Under a lossy
// transport the runtime instead pairs OnSend with OnAck — the counter
// tracks unacknowledged sends, and OnDeliver merely blackens the
// receiver — so the ring only whitens once every counted message has
// been delivered and acknowledged exactly once, no matter how many
// transport-level drops, duplicates or retransmissions occurred.
//
// # Concurrency
//
// Each rank holds its own Detector, driven exclusively by that rank's
// goroutine as it sends, receives and goes idle; detectors communicate
// only via token messages on the comm transport's goroutine-safe
// inboxes. No detector state is shared between goroutines.
package termination
