// Package termination implements distributed termination detection for
// the AMT runtime's epochs: Safra's ring-based extension of Dijkstra's
// algorithm, which tolerates asynchronous message passing. The paper's
// vt runtime relies on exactly this class of algorithm to detect when
// "all causally related gossip messages have been received and
// processed" (§IV-B).
//
// # Concurrency
//
// Each rank holds its own Detector, driven exclusively by that rank's
// goroutine as it sends, receives and goes idle; detectors communicate
// only via token messages on the comm transport's goroutine-safe
// inboxes. No detector state is shared between goroutines.
package termination
