package temperedlb_test

import (
	"fmt"
	"strings"

	"temperedlb"
)

// A sweep fans a grid of configurations over one workload; the parallel
// runner produces byte-identical output because every run owns its
// seeded random streams.
func ExampleRunSweepParallel() {
	spec := temperedlb.VBWorkload(1)
	spec.NumRanks, spec.LoadedRanks, spec.NumTasks = 64, 4, 500
	base := temperedlb.Tempered()
	base.Trials, base.Iterations = 2, 3
	configs := temperedlb.GossipSweepConfigs(base, []int{2, 4}, []int{2, 4})

	serial, _ := temperedlb.RunSweep("fanout/rounds", spec, configs)
	parallel, _ := temperedlb.RunSweepParallel("fanout/rounds", spec, configs, 4)

	var s, p strings.Builder
	serial.Render(&s)
	parallel.Render(&p)
	fmt.Printf("%d points, parallel identical: %v\n", len(configs), s.String() == p.String())
	// Output: 4 points, parallel identical: true
}

// The distributed balancer runs the same decision logic as real active
// messages on the AMT runtime: register the handlers, then call it
// collectively from every rank with that rank's local object loads.
func ExampleRunDistributedLB() {
	rt := temperedlb.NewRuntime(4)
	lbh := temperedlb.RegisterLBHandlers(rt, 20)
	var improved bool
	rt.Run(func(rc *temperedlb.RankContext) {
		loads := map[temperedlb.ObjectID]float64{}
		if rc.Rank() == 0 { // all work starts on one rank
			for i := 0; i < 32; i++ {
				loads[rc.CreateObject(i)] = 1
			}
		}
		rc.Barrier()
		cfg := temperedlb.Tempered()
		cfg.Trials, cfg.Iterations, cfg.Rounds = 2, 3, 3
		res, err := temperedlb.RunDistributedLB(rc, lbh, cfg, loads)
		if err != nil {
			panic(err)
		}
		if rc.Rank() == 0 {
			improved = res.FinalImbalance < res.InitialImbalance
		}
	})
	fmt.Println("improved:", improved)
	// Output: improved: true
}

// Hook a trace recorder into the synchronous engine via Config.Tracer:
// each run emits an lb.run span plus one lb.iteration span per
// refinement iteration.
func ExampleNewTraceRecorder() {
	rec := temperedlb.NewTraceRecorder()
	cfg := temperedlb.Tempered()
	cfg.Trials, cfg.Iterations = 1, 4
	cfg.Tracer = rec

	a := temperedlb.NewAssignment(8)
	for i := 0; i < 64; i++ {
		a.Add(1.0, 0)
	}
	eng, _ := temperedlb.NewEngine(cfg)
	if _, err := eng.Run(a); err != nil {
		panic(err)
	}
	// 2 events bracket the run; each iteration adds a begin/end pair.
	fmt.Println("events:", rec.Len())
	// Output: events: 10
}
