package temperedlb

import (
	"temperedlb/internal/lbaf"
)

// Experiment-harness surface: the LBAF sweep and comparison runners that
// regenerate the paper's §V-B/§V-D tables and knob sweeps. The *Parallel
// variants fan the independent configuration runs across a worker pool;
// because every run owns its seeded random streams, the results are
// byte-identical at any worker count.
type (
	// SweepConfig is one labelled configuration of a sweep grid.
	SweepConfig = lbaf.SweepConfig
	// Sweep is the result of running a configuration grid over one
	// workload: a summary row per configuration.
	Sweep = lbaf.Sweep
	// SweepPoint is one row of a Sweep.
	SweepPoint = lbaf.SweepPoint
	// IterationTable is the paper-style per-iteration accounting table
	// (§V-B layout) of one engine run.
	IterationTable = lbaf.Table
	// Comparison pairs the original-criterion and relaxed-criterion
	// tables over the identical initial distribution (§V-D).
	Comparison = lbaf.Comparison
)

// RunSweep runs every configuration serially over the workload described
// by spec and summarizes each run as one sweep row.
func RunSweep(title string, spec WorkloadSpec, configs []SweepConfig) (Sweep, error) {
	return lbaf.RunSweep(title, spec, configs)
}

// RunSweepParallel is RunSweep fanned across up to `workers` concurrent
// engine runs (0 means GOMAXPROCS, 1 runs serially). Output is identical
// at any worker count.
func RunSweepParallel(title string, spec WorkloadSpec, configs []SweepConfig, workers int) (Sweep, error) {
	return lbaf.RunSweepParallel(title, spec, configs, workers)
}

// GossipSweepConfigs builds the fanout × rounds grid for the information
// propagation stage (Algorithm 1's knobs).
func GossipSweepConfigs(base Config, fanouts, rounds []int) []SweepConfig {
	return lbaf.GossipSweepConfigs(base, fanouts, rounds)
}

// RefinementSweepConfigs builds the trials × iterations grid for the
// refinement loop (Algorithm 3's knobs).
func RefinementSweepConfigs(base Config, trials, iters []int) []SweepConfig {
	return lbaf.RefinementSweepConfigs(base, trials, iters)
}

// RunComparison generates the workload described by spec and runs the
// §V-D comparison: the original criterion versus the relaxed criterion
// with the modified CMF, on the identical initial distribution.
func RunComparison(spec WorkloadSpec, base Config) (Comparison, error) {
	return lbaf.RunComparison(spec, base)
}

// RunComparisonParallel runs the §V-D comparison on an existing
// assignment with up to `workers` concurrent engine runs (0 means
// GOMAXPROCS). Output is identical at any worker count.
func RunComparisonParallel(a *Assignment, base Config, workers int) (Comparison, error) {
	return lbaf.RunComparisonOnParallel(a, base, workers)
}
