// Machine-readable benchmark emission: `make bench-json` (or BENCH_JSON=1
// go test -run TestWriteBenchJSON) reruns a fixed set of leaf benchmark
// configurations through testing.Benchmark and writes BENCH_lb.json, the
// perf trajectory future PRs diff against. The set deliberately includes
// an engine run with a tracer attached so observability overhead is part
// of the recorded trajectory.
package temperedlb_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"temperedlb"
	"temperedlb/internal/amt"
	"temperedlb/internal/analysis"
	"temperedlb/internal/core"
	"temperedlb/internal/lbaf"
	"temperedlb/internal/obs"
	"temperedlb/internal/serve"
	"temperedlb/internal/workload"
)

// benchRecord is one BENCH_lb.json row.
type benchRecord struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

type benchFile struct {
	GoVersion  string        `json:"go_version"`
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// benchJSONSuite lists the leaf configurations recorded in
// BENCH_lb.json. Keep names stable across PRs: the file is a trajectory,
// and renaming a row severs its history.
func benchJSONSuite() []struct {
	name string
	fn   func(b *testing.B)
} {
	engineSpec := func() *core.Assignment {
		a, err := workload.Generate(benchVBSpec())
		if err != nil {
			panic(err)
		}
		return a
	}
	engineCfg := func() core.Config {
		cfg := core.Tempered()
		cfg.Trials, cfg.Iterations = 2, 4
		cfg.Rounds, cfg.Fanout = 6, 4
		return cfg
	}
	runEngine := func(b *testing.B, cfg core.Config) {
		a := engineSpec()
		eng, err := core.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(a); err != nil {
				b.Fatal(err)
			}
		}
	}
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"table_vb", func(b *testing.B) {
			spec, cfg := benchVBSpec(), benchLBAFConfig()
			for i := 0; i < b.N; i++ {
				if _, err := lbaf.RunIterationTable("§V-B", spec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"table_vd", func(b *testing.B) {
			spec := benchVBSpec()
			cfg := benchLBAFConfig()
			cfg.Criterion = core.CriterionRelaxed
			cfg.CMF = core.CMFModified
			cfg.RecomputeCMF = true
			for i := 0; i < b.N; i++ {
				if _, err := lbaf.RunIterationTable("§V-D", spec, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"engine_tempered", func(b *testing.B) {
			runEngine(b, engineCfg())
		}},
		{"engine_tempered_traced", func(b *testing.B) {
			cfg := engineCfg()
			cfg.Tracer = obs.NewRecorder()
			runEngine(b, cfg)
		}},
		{"distributed_lb_16ranks", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := temperedlb.NewRuntime(16)
				h := temperedlb.RegisterLBHandlers(rt, 1)
				rt.Run(func(rc *temperedlb.RankContext) {
					loads := map[temperedlb.ObjectID]float64{}
					if rc.Rank() < 2 {
						for j := 0; j < 64; j++ {
							loads[rc.CreateObject(j)] = 0.5 + float64(j%7)/7
						}
					}
					rc.Barrier()
					cfg := temperedlb.Tempered()
					cfg.Trials, cfg.Iterations, cfg.Rounds = 2, 3, 4
					if _, err := temperedlb.RunDistributedLB(rc, h, cfg, loads); err != nil {
						b.Error(err)
					}
				})
			}
		}},
		{"distributed_lb_16ranks_observed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec := temperedlb.NewTraceRecorder()
				rt := temperedlb.NewRuntime(16, temperedlb.WithTracer(rec), temperedlb.WithMetrics())
				h := temperedlb.RegisterLBHandlers(rt, 1)
				rt.Run(func(rc *temperedlb.RankContext) {
					loads := map[temperedlb.ObjectID]float64{}
					if rc.Rank() < 2 {
						for j := 0; j < 64; j++ {
							loads[rc.CreateObject(j)] = 0.5 + float64(j%7)/7
						}
					}
					rc.Barrier()
					cfg := temperedlb.Tempered()
					cfg.Trials, cfg.Iterations, cfg.Rounds = 2, 3, 4
					if _, err := temperedlb.RunDistributedLB(rc, h, cfg, loads); err != nil {
						b.Error(err)
					}
				})
			}
		}},
		{"distributed_lb_1024ranks_tree", func(b *testing.B) {
			// Paper-scale collective path: the cost here is dominated by
			// the k-ary tree sweeps and termination detection, which is
			// exactly the trajectory the tree refactor must hold.
			for i := 0; i < b.N; i++ {
				rt := temperedlb.NewRuntime(1024)
				h := temperedlb.RegisterLBHandlers(rt, 1)
				rt.Run(func(rc *temperedlb.RankContext) {
					loads := map[temperedlb.ObjectID]float64{}
					if rc.Rank() < 2 {
						for j := 0; j < 64; j++ {
							loads[rc.CreateObject(j)] = 0.5 + float64(j%7)/7
						}
					}
					rc.Barrier()
					cfg := temperedlb.Tempered()
					cfg.Trials, cfg.Iterations, cfg.Rounds = 1, 2, 2
					if _, err := temperedlb.RunDistributedLB(rc, h, cfg, loads); err != nil {
						b.Error(err)
					}
				})
			}
		}},
		{"serve_trigger_eval_256obj", func(b *testing.B) {
			// One op = the per-phase service overhead a rank pays between
			// running tasks and (maybe) invoking the balancer: fold a
			// 256-object phase observation into the Holt level+trend
			// model, sum next-phase predictions in sorted-id order (the
			// rank's collective contribution), and evaluate the forecast
			// trigger. The collectives themselves are covered by the
			// distributed_lb rows; this row is the serve-layer cost only.
			model := amt.NewLoadModel(0.5)
			model.SetTrend(0.3)
			ids := make([]amt.ObjectID, 256)
			for j := range ids {
				ids[j] = amt.MakeObjectID(core.Rank(j%16), int64(j+1))
			}
			stats := amt.PhaseStats{Loads: make(map[amt.ObjectID]float64, len(ids))}
			trig := &serve.Forecast{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats.Total = 0
				for j, id := range ids {
					l := 1 + float64((j+i)%7)
					stats.Loads[id] = l
					stats.Total += l
				}
				model.Observe(stats)
				pred := 0.0
				for _, id := range model.IDs() {
					pred += model.Predict(id)
				}
				trig.Decide(serve.Summary{
					Phase: i, Max: stats.Total * 1.2, Avg: stats.Total,
					PredMax: pred * 1.2, PredAvg: pred, LBCost: 1e12,
				})
			}
		}},
		{"lbvet_full_module", func(b *testing.B) {
			// One op = the full static-analysis gate `make lint` pays on
			// every CI run: parse and typecheck the whole module (stdlib
			// via the source importer included) and run all nine
			// analyzers. A fresh loader per op keeps the summary and
			// package caches cold, like a real invocation.
			for i := 0; i < b.N; i++ {
				ld, err := analysis.NewLoader(".")
				if err != nil {
					b.Fatal(err)
				}
				pkgs, err := ld.LoadAll()
				if err != nil {
					b.Fatal(err)
				}
				runner := &analysis.Runner{Analyzers: analysis.Analyzers()}
				if diags := runner.Run(pkgs); len(diags) != 0 {
					b.Fatalf("lint findings: %v", diags)
				}
			}
		}},
		{"orderings_fewest_migrations_10k", func(b *testing.B) {
			tasks := make([]core.Task, 10_000)
			total := 0.0
			for i := range tasks {
				tasks[i] = core.Task{ID: core.TaskID(i), Load: float64((i*2654435761)%1000) / 100}
				total += tasks[i].Load
			}
			for i := 0; i < b.N; i++ {
				core.OrderTasks(tasks, total/400, total, core.OrderFewestMigrations)
			}
		}},
	}
}

// TestWriteBenchJSON regenerates BENCH_lb.json. Skipped unless BENCH_JSON
// is set: the run takes a while and must not slow down the tier-1 suite.
func TestWriteBenchJSON(t *testing.T) {
	if os.Getenv("BENCH_JSON") == "" {
		t.Skip("set BENCH_JSON=1 (or run `make bench-json`) to regenerate BENCH_lb.json")
	}
	out := benchFile{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
	}
	for _, bm := range benchJSONSuite() {
		fn := bm.fn
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		out.Benchmarks = append(out.Benchmarks, benchRecord{
			Name:        bm.name,
			N:           res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		t.Logf("%-34s %12d ns/op %10d B/op %8d allocs/op (n=%d)",
			bm.name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp(), res.N)
	}
	f, err := os.Create("BENCH_lb.json")
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
