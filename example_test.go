package temperedlb_test

import (
	"fmt"

	"temperedlb"
)

// The basic engine flow: build an overdecomposed workload, run the
// balancer, apply the chosen moves.
func ExampleNewEngine() {
	a := temperedlb.NewAssignment(8)
	for i := 0; i < 64; i++ {
		a.Add(1.0, 0) // everything on rank 0
	}
	eng, _ := temperedlb.NewEngine(temperedlb.Tempered())
	res, _ := eng.Run(a)
	res.Apply(a)
	fmt.Printf("I: %.0f -> %.0f\n", res.InitialImbalance, res.FinalImbalance)
	// Output: I: 7 -> 0
}

// Strategies share one interface; any of them can drive the same
// workload.
func ExampleStrategy() {
	a := temperedlb.NewAssignment(4)
	for i := 0; i < 16; i++ {
		a.Add(1.0, temperedlb.Rank(i%2)) // two ranks loaded, two idle
	}
	plan, _ := temperedlb.NewGreedyLB().Rebalance(a)
	plan.Apply(a)
	fmt.Printf("I after %s: %.0f\n", "GreedyLB", plan.FinalImbalance)
	// Output: I after GreedyLB: 0
}

// The imbalance metric of the paper (Eq. 1).
func ExampleImbalance() {
	fmt.Printf("%.1f\n", temperedlb.Imbalance([]float64{6, 2, 2, 2}))
	fmt.Printf("%.1f\n", temperedlb.Imbalance([]float64{3, 3, 3, 3}))
	// Output:
	// 1.0
	// 0.0
}

// GrapevineLB is a configuration of the same engine; the paper's
// configurations differ only in Config fields.
func ExampleGrapevine() {
	gv := temperedlb.Grapevine()
	tp := temperedlb.Tempered()
	fmt.Println(gv.Criterion, "vs", tp.Criterion)
	fmt.Println(gv.Order, "vs", tp.Order)
	// Output:
	// original vs relaxed
	// arbitrary vs fewest-migrations
}

// The communication-aware extension steers tasks toward ranks hosting
// their partners.
func ExampleCommGraph() {
	a := temperedlb.NewAssignment(4)
	t0 := a.Add(1, 0)
	t1 := a.Add(1, 0)
	g := temperedlb.NewCommGraph(2)
	g.Connect(t0, t1, 5.0)
	// Both on rank 0: no remote traffic yet.
	fmt.Printf("%.0f\n", g.RemoteVolume(a.Owners()))
	a.Move(t1, 3)
	fmt.Printf("%.0f\n", g.RemoteVolume(a.Owners()))
	// Output:
	// 0
	// 5
}
