package temperedlb

import "temperedlb/internal/comm/wire"

// WireEncoder and WireDecoder alias the wire codec's encoder and
// decoder so applications can register payload codecs without importing
// internal packages. Field order is the wire format: encoder and
// decoder must move the same fields in the same order (the payloadcodec
// lint check enforces this).
type (
	WireEncoder = wire.Encoder
	WireDecoder = wire.Decoder

	// WirePayloadID identifies a registered payload codec. The id space
	// is banded: the runtime owns 1–31, balancer layers 32–63, and
	// applications must register at 64 or above.
	WirePayloadID = wire.PayloadID
)

// RegisterWirePayload registers an application payload codec, making
// values of type T sendable across the socket transports (Unix, TCP).
// Applications must use ids ≥ 64; the in-memory transport needs no
// codec, but registering one keeps the program transport-agnostic.
// Registration typically happens in an init function, mirroring
// encoding/gob's Register. Panics on a duplicate id, like the
// underlying registry.
func RegisterWirePayload[T any](id WirePayloadID, enc func(*WireEncoder, T), dec func(*WireDecoder) T) {
	wire.RegisterPayload(id, enc, dec)
}
