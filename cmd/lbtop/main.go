// Command lbtop is a terminal dashboard for the observability stream:
// it follows a -serve endpoint's NDJSON frame stream (or replays a
// recorded frame file) and redraws per-rank loads, the imbalance
// sparkline, message rates and fault counters in place. All layout
// lives in internal/dash as a pure function, so everything below is
// transport and cursor control.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"temperedlb/internal/dash"
	"temperedlb/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbtop: ")
	var (
		url     = flag.String("url", "", "base URL of a -serve endpoint, e.g. http://localhost:6060")
		replay  = flag.String("replay", "", "render a recorded NDJSON frame file instead of connecting")
		once    = flag.Bool("once", false, "render a single page and exit (no screen clearing)")
		refresh = flag.Duration("refresh", 250*time.Millisecond, "minimum interval between redraws")
		width   = flag.Int("width", dash.DefaultWidth, "dashboard line width")
		ascii   = flag.Bool("ascii", false, "restrict the intensity ramps to ASCII")
		window  = flag.Int("window", 64, "frames kept for the sparkline window")
		source  = flag.String("source", "", "only render frames from this source (useful when several trackers share a stream)")
	)
	flag.Parse()
	if (*url == "") == (*replay == "") {
		log.Fatal("exactly one of -url or -replay is required")
	}
	model := dash.Model{Width: *width, ASCII: *ascii}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		frames, err := obs.ReadSnapshots(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		model.Frames = clipWindow(filterSource(frames, *source), *window)
		printPage(dash.Render(model), false)
		return
	}

	base := strings.TrimSuffix(*url, "/")
	if *once {
		resp, err := http.Get(base + "/frames")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		frames, err := obs.ReadSnapshots(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		model.Frames = clipWindow(filterSource(frames, *source), *window)
		printPage(dash.Render(model), false)
		return
	}

	resp, err := http.Get(base + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s/stream: %s", base, resp.Status)
	}
	follow(resp.Body, model, *source, *window, *refresh)
}

// follow consumes the endless NDJSON stream, redrawing at most once per
// refresh interval; the final state is drawn when the server goes away.
func follow(r io.Reader, model dash.Model, source string, window int, refresh time.Duration) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lastDraw := time.Time{}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var f obs.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			log.Fatalf("malformed frame: %v", err)
		}
		if source != "" && f.Source != source {
			continue
		}
		model.Frames = clipWindow(append(model.Frames, f), window)
		if time.Since(lastDraw) >= refresh {
			printPage(dash.Render(model), true)
			lastDraw = time.Now()
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	if len(model.Frames) > 0 {
		printPage(dash.Render(model), true)
	}
	log.Print("stream closed")
}

// filterSource keeps only frames from the named source ("" keeps all).
func filterSource(frames []obs.Snapshot, source string) []obs.Snapshot {
	if source == "" {
		return frames
	}
	out := frames[:0:0]
	for _, f := range frames {
		if f.Source == source {
			out = append(out, f)
		}
	}
	return out
}

// clipWindow keeps the newest n frames.
func clipWindow(frames []obs.Snapshot, n int) []obs.Snapshot {
	if n > 0 && len(frames) > n {
		frames = frames[len(frames)-n:]
	}
	return frames
}

// printPage writes one dashboard page; with clear it homes the cursor
// and erases below first, so successive pages redraw in place.
func printPage(lines []string, clear bool) {
	var b strings.Builder
	if clear {
		b.WriteString("\x1b[H\x1b[J")
	}
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
}
